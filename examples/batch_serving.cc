/**
 * @file
 * Batched serving: simulate a mixed fleet of attention requests — the
 * shape of traffic a deployed PADE device sees — through the
 * multi-threaded batch runtime.
 *
 *   $ ./batch_serving [--requests 24] [--threads 0] [--seed 42]
 *
 * The batch mixes prefill and decode across the paper's benchmark
 * models and datasets. The same batch runs twice, on 1 worker and on
 * all cores, to show that (a) the aggregate is bit-for-bit identical
 * regardless of thread count, and (b) the wall-clock scales with the
 * machine.
 */

#include <algorithm>
#include <cstdio>
#include <string>
#include <vector>

#include "bench/common.h"
#include "runtime/batch_driver.h"
#include "runtime/thread_pool.h"

using namespace pade;
using namespace pade::bench;

namespace {

/** A rotating mix of the paper's serving-relevant workloads. */
std::vector<SimRequest>
buildFleet(int n, uint64_t seed)
{
    struct Mix
    {
        ModelConfig model;
        DatasetConfig ds;
        bool decode;
    };
    const std::vector<Mix> mixes = {
        {llama2_7b(), dsMmlu(), false},
        {llama3_8b(), dsWikitext2(), false},
        {qwen_7b(), dsMbpp(), false},
        {llama2_7b(), dsDolly(), true},
        {llama3_8b(), dsPg19(), true},
    };
    std::vector<SimRequest> fleet;
    fleet.reserve(static_cast<size_t>(n));
    for (int i = 0; i < n; i++) {
        const Mix &m = mixes[static_cast<size_t>(i) % mixes.size()];
        SimRequest req{m.model, m.ds};
        req.decode = m.decode;
        req.decode_steps = m.decode ? 64 : 1;
        req.seed = seed + static_cast<uint64_t>(i);
        req.max_sim_seq = 1024;
        fleet.push_back(req);
    }
    return fleet;
}

} // namespace

int
main(int argc, char **argv)
{
    Cli cli(argc, argv);
    const int n = static_cast<int>(cli.getInt("requests", 24));
    const int threads = static_cast<int>(cli.getInt("threads", 0));
    const uint64_t seed =
        static_cast<uint64_t>(cli.getInt("seed", 42));
    banner("Batched serving on the PADE batch runtime");

    const std::vector<SimRequest> fleet = buildFleet(n, seed);
    const ArchConfig arch;

    const BatchResult seq =
        BatchDriver(BatchOptions{.threads = 1}).run(arch, fleet);
    const int workers =
        threads > 0 ? threads : ThreadPool::hardwareThreads();
    const BatchResult par =
        BatchDriver(BatchOptions{.threads = workers}).run(arch, fleet);

    Table t;
    t.header({"#", "model", "dataset", "mode", "sim time (us)",
              "energy (uJ)", "keep%", "mass"});
    for (size_t i = 0; i < par.results.size(); i++) {
        const RequestResult &r = par.results[i];
        if (!r.ok) {
            t.row({std::to_string(i), fleet[i].model.name,
                   fleet[i].dataset.name, "FAILED", r.error, "", "",
                   ""});
            continue;
        }
        const RunMetrics &m = r.outcome.total;
        t.row({std::to_string(i), fleet[i].model.name,
               fleet[i].dataset.name,
               fleet[i].decode ? "decode" : "prefill",
               Table::num(m.time_ns / 1e3, 1),
               Table::num(m.energy.total() / 1e6, 1),
               Table::pct(m.prune.keepRate()),
               Table::num(r.outcome.retained_mass, 3)});
    }
    t.print();

    const bool identical =
        seq.aggregate.time_ns == par.aggregate.time_ns &&
        seq.aggregate.energy.total() == par.aggregate.energy.total() &&
        seq.aggregate.dram_bytes == par.aggregate.dram_bytes;
    std::printf(
        "\nfleet: %d requests, %d ok, %d failed; aggregate sim time "
        "%.2f ms, energy %.2f mJ, DRAM %.1f MB, min retained mass "
        "%.3f\n",
        n, par.completed, par.failed, par.aggregate.time_ns / 1e6,
        par.aggregate.energy.total() / 1e9,
        static_cast<double>(par.aggregate.dram_bytes) / 1e6,
        par.retained_mass_min);
    std::printf("host wall-clock: sequential %.1f ms, %d workers "
                "%.1f ms (%.2fx); aggregates %s across thread "
                "counts\n",
                seq.wall_ms, workers, par.wall_ms,
                seq.wall_ms / std::max(par.wall_ms, 1e-9),
                identical ? "bit-identical" : "DIVERGED");
    // Nonzero on divergence OR any failed request, so scripted runs
    // (CI smoke test) catch a broken simulator, not just a
    // nondeterministic one.
    return (identical && par.failed == 0 && seq.failed == 0) ? 0 : 1;
}

/**
 * @file
 * Continuous-batching serving demo: a Poisson arrival trace of mixed
 * prefill+decode requests served through the incremental KV-cache
 * engine (`ContinuousBatcher` on the shared `ThreadPool`), with the
 * cross-session prefix cache on (requests share seeded prompt
 * prefixes, so later arrivals adopt the pages earlier ones built).
 *
 *   $ ./batch_serving [--requests 24] [--rate 200] [--slots 4]
 *                     [--threads 0] [--layers 1]
 *                     [--coschedule on|off] [--seed 42]
 *                     [--trace out.json] [--stats stats.json]
 *
 * --coschedule off falls back to the per-session nested fan-out (one
 * parallelFor per session per engine round) instead of the default
 * cross-session round co-scheduler; outputs are bit-identical either
 * way, only scheduling (and the bubble ratio in --stats) changes.
 * --layers deepens each session's pipeline, which is what gives the
 * co-scheduler units to merge.
 *
 * The same trace is served twice — on 1 worker and on all cores — to
 * show that (a) every decoded token AND every scored prefill output
 * is bit-for-bit identical regardless of thread count (the
 * per-session computation is sequential and seeded; only latency is
 * a host measurement), and (b) wall-clock and tail latency improve
 * with the machine.
 *
 * Telemetry artifacts (docs/OBSERVABILITY.md): --trace writes a
 * Chrome trace_event JSON of the multi-worker run (open in
 * chrome://tracing or https://ui.perfetto.dev) and --stats writes the
 * run's metric-registry delta — pipeline-bubble ratio, KV bytes per
 * token, prefix-cache hit counters. --trace alone also writes the
 * stats next to it (<trace>.stats.json), so one flag produces both
 * artifacts.
 *
 * Exit status is nonzero if the two runs' token checksums diverge or
 * any request fails to finish, so CI can smoke-test the scheduler.
 */

#include <algorithm>
#include <cstdio>
#include <string>
#include <vector>

#include "bench/common.h"
#include "serving/continuous_batcher.h"
#include "serving/report_format.h"
#include "workload/generator.h"

using namespace pade;
using namespace pade::bench;

int
main(int argc, char **argv)
{
    Cli cli(argc, argv);
    const int n = static_cast<int>(cli.getInt("requests", 24));
    const double rate = cli.getDouble("rate", 200.0);
    const int slots = static_cast<int>(cli.getInt("slots", 4));
    const int threads = static_cast<int>(cli.getInt("threads", 0));
    const int layers = static_cast<int>(cli.getInt("layers", 1));
    const bool coschedule = cli.get("coschedule", "on") != "off";
    const uint64_t seed =
        static_cast<uint64_t>(cli.getInt("seed", 42));
    const std::string trace_file = cli.get("trace", "");
    std::string stats_file = cli.get("stats", "");
    if (stats_file.empty() && !trace_file.empty())
        stats_file = trace_file + ".stats.json";
    banner("Continuous batching on the PADE serving engine");

    TraceSpec ts;
    ts.num_requests = n;
    ts.rate_per_s = rate;
    ts.prompt_min = 64;
    ts.prompt_max = 512;
    ts.decode_min = 8;
    ts.decode_max = 48;
    // Two shared-prefix families: page-aligned 128-token prefixes so
    // the prefix cache has real hits to count in the stats snapshot.
    ts.prefix_groups = 2;
    ts.prefix_tokens = 128;
    ts.seed = seed;
    const std::vector<ServingRequest> trace = poissonArrivalTrace(ts);

    BatcherOptions opt;
    opt.max_active = slots;
    opt.head_dim = 64;
    opt.prefill_chunk = 128;
    // 64-token pages make the 128-token prefixes exactly two shared
    // pages; prefix caching is numerically transparent (see
    // serving/continuous_batcher.h), so both runs keep it on.
    opt.page_tokens = 64;
    opt.prefix_cache = true;
    opt.layers = layers;
    opt.coschedule = coschedule;

    opt.threads = 1;
    const ServingReport seq = ContinuousBatcher(opt).run(trace);
    const int workers =
        threads > 0 ? threads : ThreadPool::hardwareThreads();
    opt.threads = workers;
    opt.trace_file = trace_file; // only the parallel run is traced
    const ServingReport par = ContinuousBatcher(opt).run(trace);

    Table t;
    t.header({"#", "arrive ms", "prompt", "steps", "queue ms",
              "ttft ms", "latency ms"});
    for (std::size_t i = 0; i < par.sessions.size(); i++) {
        const SessionStats &s = par.sessions[i];
        t.row({std::to_string(i), Table::num(s.arrival_ms, 1),
               std::to_string(s.prompt_len),
               std::to_string(s.decode_steps),
               Table::num(s.admit_ms - s.arrival_ms, 1),
               Table::num(s.first_token_ms - s.arrival_ms, 1),
               Table::num(s.finish_ms - s.arrival_ms, 1)});
    }
    t.print();

    std::printf("\n%s", formatServingReport("1 worker ", seq).c_str());
    char label[32];
    std::snprintf(label, sizeof(label), "%d workers", workers);
    std::printf("%s", formatServingReport(label, par).c_str());

    if (!stats_file.empty()) {
        std::FILE *f = std::fopen(stats_file.c_str(), "wb");
        if (f) {
            std::fwrite(par.telemetry.data(), 1,
                        par.telemetry.size(), f);
            std::fputc('\n', f);
            std::fclose(f);
            std::printf("stats snapshot    : %s\n",
                        stats_file.c_str());
        }
    }
    if (!trace_file.empty())
        std::printf("chrome trace      : %s (chrome://tracing or "
                    "ui.perfetto.dev)\n",
                    trace_file.c_str());

    // Real completion gate: every prompt token prefilled and every
    // requested token decoded, in both runs, per the trace itself.
    uint64_t want_prefill = 0;
    uint64_t want_decode = 0;
    for (const ServingRequest &r : trace) {
        want_prefill += static_cast<uint64_t>(r.prompt_len);
        want_decode += static_cast<uint64_t>(r.decode_steps);
    }
    const bool identical = seq.checksum == par.checksum &&
        seq.prefill_checksum == par.prefill_checksum;
    const bool complete = par.tokens_decoded == want_decode &&
        seq.tokens_decoded == want_decode &&
        par.tokens_prefilled == want_prefill &&
        seq.tokens_prefilled == want_prefill;
    std::printf("\nwall-clock: %.1f ms -> %.1f ms (%.2fx); token "
                "streams %s across thread counts\n",
                seq.wall_ms, par.wall_ms,
                seq.wall_ms / std::max(par.wall_ms, 1e-9),
                identical ? "bit-identical" : "DIVERGED");
    return (identical && complete) ? 0 : 1;
}

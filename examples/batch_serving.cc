/**
 * @file
 * Continuous-batching serving demo: a Poisson arrival trace of mixed
 * prefill+decode requests served through the incremental KV-cache
 * engine (`ContinuousBatcher` on the shared `ThreadPool`).
 *
 *   $ ./batch_serving [--requests 24] [--rate 200] [--slots 4]
 *                     [--threads 0] [--seed 42]
 *
 * The same trace is served twice — on 1 worker and on all cores — to
 * show that (a) every decoded token AND every scored prefill output
 * is bit-for-bit identical regardless of thread count (the
 * per-session computation is sequential and seeded; only latency is
 * a host measurement), and (b) wall-clock and tail latency improve
 * with the machine.
 *
 * Exit status is nonzero if the two runs' token checksums diverge or
 * any request fails to finish, so CI can smoke-test the scheduler.
 */

#include <algorithm>
#include <cstdio>
#include <string>
#include <vector>

#include "bench/common.h"
#include "serving/continuous_batcher.h"
#include "workload/generator.h"

using namespace pade;
using namespace pade::bench;

int
main(int argc, char **argv)
{
    Cli cli(argc, argv);
    const int n = static_cast<int>(cli.getInt("requests", 24));
    const double rate = cli.getDouble("rate", 200.0);
    const int slots = static_cast<int>(cli.getInt("slots", 4));
    const int threads = static_cast<int>(cli.getInt("threads", 0));
    const uint64_t seed =
        static_cast<uint64_t>(cli.getInt("seed", 42));
    banner("Continuous batching on the PADE serving engine");

    TraceSpec ts;
    ts.num_requests = n;
    ts.rate_per_s = rate;
    ts.prompt_min = 64;
    ts.prompt_max = 512;
    ts.decode_min = 8;
    ts.decode_max = 48;
    ts.seed = seed;
    const std::vector<ServingRequest> trace = poissonArrivalTrace(ts);

    BatcherOptions opt;
    opt.max_active = slots;
    opt.head_dim = 64;
    opt.prefill_chunk = 128;

    opt.threads = 1;
    const ServingReport seq = ContinuousBatcher(opt).run(trace);
    const int workers =
        threads > 0 ? threads : ThreadPool::hardwareThreads();
    opt.threads = workers;
    const ServingReport par = ContinuousBatcher(opt).run(trace);

    Table t;
    t.header({"#", "arrive ms", "prompt", "steps", "queue ms",
              "ttft ms", "latency ms"});
    for (std::size_t i = 0; i < par.sessions.size(); i++) {
        const SessionStats &s = par.sessions[i];
        t.row({std::to_string(i), Table::num(s.arrival_ms, 1),
               std::to_string(s.prompt_len),
               std::to_string(s.decode_steps),
               Table::num(s.admit_ms - s.arrival_ms, 1),
               Table::num(s.first_token_ms - s.arrival_ms, 1),
               Table::num(s.finish_ms - s.arrival_ms, 1)});
    }
    t.print();

    auto emitReport = [](const char *name, const ServingReport &r) {
        std::printf(
            "%s: %llu prefill + %llu decode tokens, %d rounds, "
            "peak %d sessions / %.1f MB KV; decode %.0f tok/s; "
            "latency p50/p95/p99 = %.1f/%.1f/%.1f ms, "
            "ttft p50/p99 = %.1f/%.1f ms\n",
            name,
            static_cast<unsigned long long>(r.tokens_prefilled),
            static_cast<unsigned long long>(r.tokens_decoded),
            r.rounds, r.peak_active,
            static_cast<double>(r.peak_cache_bytes) / 1e6,
            r.decode_tok_per_s, r.latency_ms.p50, r.latency_ms.p95,
            r.latency_ms.p99, r.ttft_ms.p50, r.ttft_ms.p99);
    };
    std::printf("\n");
    emitReport("1 worker ", seq);
    char buf[32];
    std::snprintf(buf, sizeof(buf), "%d workers", workers);
    emitReport(buf, par);

    // Real completion gate: every prompt token prefilled and every
    // requested token decoded, in both runs, per the trace itself.
    uint64_t want_prefill = 0;
    uint64_t want_decode = 0;
    for (const ServingRequest &r : trace) {
        want_prefill += static_cast<uint64_t>(r.prompt_len);
        want_decode += static_cast<uint64_t>(r.decode_steps);
    }
    const bool identical = seq.checksum == par.checksum &&
        seq.prefill_checksum == par.prefill_checksum;
    const bool complete = par.tokens_decoded == want_decode &&
        seq.tokens_decoded == want_decode &&
        par.tokens_prefilled == want_prefill &&
        seq.tokens_prefilled == want_prefill;
    std::printf("\nwall-clock: %.1f ms -> %.1f ms (%.2fx); token "
                "streams %s across thread counts\n",
                seq.wall_ms, par.wall_ms,
                seq.wall_ms / std::max(par.wall_ms, 1e-9),
                identical ? "bit-identical" : "DIVERGED");
    return (identical && complete) ? 0 : 1;
}

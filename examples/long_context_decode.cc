/**
 * @file
 * Long-context autoregressive decoding (the paper's §VI-F scenario),
 * in two views:
 *
 *  1. the modelled accelerator: per-token time/energy/DRAM of PADE
 *     vs. dense decoding at growing context length;
 *  2. the host serving engine: the same decode loop actually executed
 *     through `KvCache` + `DecodeEngine`, comparing the incremental
 *     append-only cache against re-packing the full KV history every
 *     token (what the seed code effectively did).
 *
 * Calibration invariant: the operating point is calibrated ONCE and
 * shared across context lengths. `calibrateAlpha` caps its
 * calibration head at min(seq, max_sim_seq, 8192) keys, and alpha
 * tracks the *score distribution* (model concentration, dataset
 * locality) — not the context length; the generator even separates
 * vital tokens slightly more at longer contexts, so a fixed-context
 * calibration is conservative. The seed version of this example
 * re-calibrated per context with identical knobs — two of its three
 * searches ran on bit-identical capped inputs — which tripled the
 * example's startup cost for no change in alpha.
 *
 *   $ ./long_context_decode [--steps 8] [--max-seq 16384] [--seed 2]
 */

#include <algorithm>
#include <cstdio>
#include <string>

#include "bench/common.h"

using namespace pade;
using namespace pade::bench;

int
main(int argc, char **argv)
{
    Cli cli(argc, argv);
    const int steps = static_cast<int>(cli.getInt("steps", 8));
    const uint64_t seed = static_cast<uint64_t>(cli.getInt("seed", 2));
    const int max_seq =
        static_cast<int>(cli.getInt("max-seq", 16384));

    // ------------------------------------------------------------------
    // Calibration, hoisted: one operating-point search shared by every
    // context length below (see the invariant in the file comment).
    // ------------------------------------------------------------------
    SimRequest calib_req{llama2_7b(), {"ctx", max_seq, "longctx", 0.7}};
    calib_req.decode = true;
    calib_req.seed = seed;
    calib_req.max_sim_seq = max_seq;
    const OperatingPoints pts = calibratePoints(calib_req);

    Table t("per-token decode attention cost (Llama2-7B, modelled)");
    t.header({"context", "design", "time/tok (us)", "energy/tok (uJ)",
              "DRAM/tok (MB)", "dram%"});

    for (int s : {4096, 8192, 16384}) {
        SimRequest req{llama2_7b(), {"ctx", s, "longctx", 0.7}};
        req.decode = true;
        req.decode_steps = steps;
        req.seed = seed;
        req.max_sim_seq = max_seq;

        const SimOutcome sparse = runPade(ArchConfig{}, req,
                                          pts.alpha_standard);
        ArchConfig dense_cfg;
        dense_cfg.enable_guard = false;
        const SimOutcome dense = runPade(dense_cfg, req, 1.0);

        auto emit = [&t, s, steps](const char *name,
                                   const RunMetrics &m) {
            t.row({std::to_string(s), name,
                   Table::num(m.time_ns * 1e-3 / steps, 1),
                   Table::num(m.energy.total() * 1e-6 / steps, 1),
                   Table::num(m.dram_bytes / 1048576.0 / steps, 2),
                   Table::pct(m.energy.dram_pj / m.energy.total())});
        };
        emit("Dense", dense.total);
        emit("PADE", sparse.total);
    }
    t.print();
    std::printf("DRAM dominates decode energy (paper: >85%%); PADE's "
                "per-token cost grows far slower with context than "
                "dense decoding.\n");

    // ------------------------------------------------------------------
    // The serving engine actually decoding on this host: incremental
    // KvCache vs. full re-pack per token.
    // ------------------------------------------------------------------
    PadeConfig cfg;
    cfg.alpha = pts.alpha_standard;
    cfg.radius = kCalibRadius;

    Table ts("host decode: incremental KvCache vs per-token re-pack");
    ts.header({"context", "append us/tok", "cached us/tok",
               "repack us/tok", "repack/", "keep%", "pages", "KV MB"});
    for (int ctx : {2048, 4096, 8192}) {
        if (ctx > max_seq)
            continue;
        ServingDecodePoint pt;
        pt.ctx = ctx;
        pt.steps = steps;
        pt.locality = 0.7;
        pt.seed = seed;
        const ServingDecodeCost r = measureServingDecode(pt, cfg);
        ts.row({std::to_string(ctx),
                Table::num(r.append_us_per_tok, 2),
                Table::num(r.cached_us_per_tok, 1),
                Table::num(r.repack_us_per_tok, 1),
                Table::num(r.repack_us_per_tok /
                               std::max(r.cached_us_per_tok, 1e-9),
                           1),
                Table::pct(r.keep_rate), std::to_string(r.pages),
                Table::num(static_cast<double>(r.cache_bytes) / 1e6,
                           1)});
    }
    ts.print();
    std::printf("The append-only cache packs one token per step "
                "(O(bits*head_dim), context-independent), so a "
                "cached step costs just the guarded scan both paths "
                "share; re-packing pays the whole history again "
                "every token, an overhead that keeps widening with "
                "context (see the repack/ column).\n");
    return 0;
}

/**
 * @file
 * Long-context autoregressive decoding (the paper's §VI-F scenario):
 * PADE streams each head's KV history bit-serially and terminates
 * early, so per-token energy barely grows with context length, while
 * dense decoding pays the full KV sweep every step.
 *
 *   $ ./long_context_decode [--steps 4] [--max-seq 16384]
 */

#include <cstdio>

#include "bench/common.h"

using namespace pade;
using namespace pade::bench;

int
main(int argc, char **argv)
{
    Cli cli(argc, argv);
    const int steps = static_cast<int>(cli.getInt("steps", 4));

    Table t("per-token decode attention cost (Llama2-7B)");
    t.header({"context", "design", "time/tok (us)", "energy/tok (uJ)",
              "DRAM/tok (MB)", "dram%"});

    for (int s : {4096, 8192, 16384}) {
        SimRequest req{llama2_7b(), {"ctx", s, "longctx", 0.7}};
        req.decode = true;
        req.decode_steps = steps;
        req.seed = cli.getInt("seed", 2);
        req.max_sim_seq = static_cast<int>(cli.getInt("max-seq",
                                                      16384));

        const OperatingPoints pts = calibratePoints(req);
        const SimOutcome sparse = runPade(ArchConfig{}, req,
                                          pts.alpha_standard);
        ArchConfig dense_cfg;
        dense_cfg.enable_guard = false;
        const SimOutcome dense = runPade(dense_cfg, req, 1.0);

        auto emit = [&t, s, steps](const char *name,
                                   const RunMetrics &m) {
            t.row({std::to_string(s), name,
                   Table::num(m.time_ns * 1e-3 / steps, 1),
                   Table::num(m.energy.total() * 1e-6 / steps, 1),
                   Table::num(m.dram_bytes / 1048576.0 / steps, 2),
                   Table::pct(m.energy.dram_pj / m.energy.total())});
        };
        emit("Dense", dense.total);
        emit("PADE", sparse.total);
    }
    t.print();
    std::printf("DRAM dominates decode energy (paper: >85%%); PADE's "
                "per-token cost grows far slower with context than "
                "dense decoding.\n");
    return 0;
}

/**
 * @file
 * Whole-model prefill: simulate PADE accelerating the attention of a
 * full LLM prefill (all layers and heads) and compare against the
 * dense ASIC and the H100 model — the scenario of the paper's Figs.
 * 18/21.
 *
 *   $ ./llm_prefill [--model Llama2-7B] [--seq 2048]
 */

#include <cstdio>

#include "bench/common.h"

using namespace pade;
using namespace pade::bench;

int
main(int argc, char **argv)
{
    Cli cli(argc, argv);
    const std::string model_name = cli.get("model", "Llama2-7B");
    const ModelConfig model = modelByName(model_name);
    DatasetConfig ds = dsWikitext2();
    ds.seq_len = static_cast<int>(cli.getInt("seq", 2048));

    SimRequest req{model, ds};
    req.seed = cli.getInt("seed", 1);
    req.max_sim_seq = 4096;

    std::printf("prefill: %s, S=%d (%d layers x %d heads, GQA=%s)\n",
                model.name.c_str(), ds.seq_len, model.layers,
                model.heads, model.isGqa() ? "yes" : "no");

    const OperatingPoints pts = calibratePoints(req);
    std::printf("calibrated operating points: standard alpha=%.2f, "
                "aggressive alpha=%.2f (radius %.0f)\n",
                pts.alpha_standard, pts.alpha_aggressive,
                kCalibRadius);

    const SimOutcome std_run = runPade(ArchConfig{}, req,
                                       pts.alpha_standard);
    const SimOutcome agg_run = runPade(ArchConfig{}, req,
                                       pts.alpha_aggressive);

    ArchConfig dense_cfg;
    dense_cfg.enable_guard = false;
    const SimOutcome dense = runPade(dense_cfg, req, 1.0);
    const RunMetrics gpu = gpuModelAttention(model, ds, GpuOptions{});

    Table t("whole-model attention totals");
    t.header({"design", "time (ms)", "energy (mJ)", "DRAM (MB)",
              "GOPS/W", "mass"});
    auto emit = [&t](const char *name, const RunMetrics &m,
                     double mass) {
        t.row({name, Table::num(m.time_ns * 1e-6, 2),
               Table::num(m.energy.total() * 1e-9, 2),
               Table::num(m.dram_bytes / 1048576.0, 1),
               Table::num(m.gopsPerW(), 0),
               mass > 0 ? Table::num(mass, 4) : "-"});
    };
    emit("H100 (dense)", gpu, -1);
    emit("Dense ASIC", dense.total, -1);
    emit("PADE standard", std_run.total, std_run.retained_mass);
    emit("PADE aggressive", agg_run.total, agg_run.retained_mass);
    t.print();

    std::printf("PADE standard vs dense ASIC: %.1fx faster, %.1fx "
                "less energy\n",
                dense.total.time_ns / std_run.total.time_ns,
                dense.total.energy.total() /
                std_run.total.energy.total());
    return 0;
}

/**
 * @file
 * Model-granularity GQA serving demo: one transformer layer's
 * attention — `heads` query heads grouped onto `kv_heads` shared KV
 * caches — served end to end through `LayerEngine`: scored chunked
 * prefill of the prompt, then grouped autoregressive decode.
 *
 *   $ ./model_serving [--heads 8] [--kv-heads 2] [--head-dim 64]
 *                     [--prompt 96] [--steps 16] [--chunk 32]
 *                     [--bits 8] [--threads 0] [--seed 42]
 *
 * Two exactness gates make this a CI smoke for the whole
 * model-granularity stack (exit status is nonzero if either fails):
 *
 *  1. every decoded output row is bit-identical to the
 *     per-head-private-cache oracle — each query head decoding
 *     against its own copy of its group's KV stream through the
 *     single-query engine (the PR 5 acceptance contract);
 *  2. the grouped decode checksum is identical with and without the
 *     KV-head ThreadPool fan-out.
 *
 * The report also shows what the sharing buys: KV bytes scale with
 * kv_heads (an 8:1 group stores 1/8th the pages) and the per-token
 * plane table is built once per KV head instead of once per query
 * head.
 */

#include <algorithm>
#include <bit>
#include <cstdio>
#include <vector>

#include "bench/common.h"
#include "common/rng.h"
#include "serving/kv_cache.h"
#include "serving/layer_engine.h"
#include "serving/report_format.h"
#include "workload/generator.h"

using namespace pade;
using namespace pade::bench;

namespace {

uint64_t
mix(uint64_t acc, const MatrixF &m)
{
    for (int r = 0; r < m.rows(); r++)
        for (float v : m.row(r)) {
            uint64_t state = acc + std::bit_cast<uint32_t>(v);
            acc = splitMix64(state);
        }
    return acc;
}

/** Serve the whole layer; returns the decode-output checksum. */
uint64_t
serveLayer(const LayerWorkload &lw, const LayerEngineConfig &lc,
           int chunk, ThreadPool *pool, std::size_t *kv_bytes,
           uint64_t *prefill_checksum)
{
    std::vector<float> v_scales;
    std::vector<float> logit_scales;
    for (const QuantizedHead &g : lw.groups) {
        v_scales.push_back(g.v.params.scale);
        logit_scales.push_back(g.logit_scale);
    }
    LayerEngine layer(lc, v_scales);

    MatrixI8 k_stage(lc.kv_heads, lc.head_dim);
    MatrixI8 v_stage(lc.kv_heads, lc.head_dim);
    MatrixI8 q_stage(lc.heads, lc.head_dim);
    MatrixF out(lc.heads, lc.head_dim);

    const int prompt = lw.spec.prompt_len;
    uint64_t prefill_sum = 0;
    for (int base = 0; base < prompt; base += chunk) {
        const int n = std::min(chunk, prompt - base);
        for (int t = 0; t < n; t++) {
            lw.stageKv(base + t, k_stage, v_stage);
            layer.appendToken(k_stage, v_stage);
        }
        for (int t = 0; t < n; t++) {
            const int pos = base + t;
            lw.stageQueries(pos, q_stage);
            layer.prefillPosition(q_stage, pos, prompt, logit_scales,
                                  out, pool);
            prefill_sum = mix(prefill_sum, out);
        }
    }

    uint64_t decode_sum = 0;
    for (int t = 0; t < lw.spec.decode_steps; t++) {
        const int pos = prompt + t;
        lw.stageKv(pos, k_stage, v_stage);
        layer.appendToken(k_stage, v_stage);
        lw.stageQueries(pos, q_stage);
        layer.decode(q_stage, logit_scales, out, pool);
        decode_sum = mix(decode_sum, out);
    }

    if (kv_bytes)
        *kv_bytes = layer.bytesUsed();
    if (prefill_checksum)
        *prefill_checksum = prefill_sum;
    return decode_sum;
}

} // namespace

int
main(int argc, char **argv)
{
    Cli cli(argc, argv);
    LayerSpec spec;
    spec.heads = static_cast<int>(cli.getInt("heads", 8));
    spec.kv_heads = static_cast<int>(cli.getInt("kv-heads", 2));
    spec.head_dim = static_cast<int>(cli.getInt("head-dim", 64));
    spec.prompt_len = static_cast<int>(cli.getInt("prompt", 96));
    spec.decode_steps = static_cast<int>(cli.getInt("steps", 16));
    spec.bits = static_cast<int>(cli.getInt("bits", 8));
    spec.seed = static_cast<uint64_t>(cli.getInt("seed", 42));
    const int chunk = static_cast<int>(cli.getInt("chunk", 32));
    const int threads = static_cast<int>(cli.getInt("threads", 0));
    banner("Model-granularity GQA serving on the PADE engine");

    if (spec.heads % spec.kv_heads != 0) {
        std::fprintf(stderr, "heads must be a multiple of kv-heads\n");
        return 1;
    }
    const LayerWorkload lw = generateLayerWorkload(spec);

    LayerEngineConfig lc;
    lc.heads = spec.heads;
    lc.kv_heads = spec.kv_heads;
    lc.head_dim = spec.head_dim;
    lc.bits = spec.bits;

    std::printf("layer: %d query heads on %d KV heads (group %d), "
                "head_dim %d, prompt %d (+%d decode), chunk %d\n\n",
                spec.heads, spec.kv_heads, spec.groupSize(),
                spec.head_dim, spec.prompt_len, spec.decode_steps,
                chunk);

    // Grouped execution, serial and pooled.
    std::size_t grouped_bytes = 0;
    uint64_t prefill_sum = 0;
    const uint64_t serial_sum =
        serveLayer(lw, lc, chunk, nullptr, &grouped_bytes,
                   &prefill_sum);
    ThreadPool pool(threads);
    const uint64_t pooled_sum =
        serveLayer(lw, lc, chunk, &pool, nullptr, nullptr);

    // Per-head-private-cache oracle: every query head decodes through
    // the single-query engine against its own copy of the KV stream.
    std::vector<float> out(static_cast<std::size_t>(spec.head_dim));
    MatrixF oracle_out(spec.heads, spec.head_dim);
    uint64_t oracle_sum = 0;
    std::size_t oracle_bytes = 0;
    {
        std::vector<KvCache> caches;
        std::vector<DecodeEngine> engines;
        for (int h = 0; h < spec.heads; h++) {
            KvCacheConfig kc;
            kc.head_dim = spec.head_dim;
            kc.bits = spec.bits;
            kc.v_scale = lw.groupOf(h).v.params.scale;
            caches.emplace_back(kc);
            engines.emplace_back(lc.pade);
        }
        for (int pos = 0; pos < spec.positions(); pos++) {
            for (int h = 0; h < spec.heads; h++) {
                const QuantizedHead &g = lw.groupOf(h);
                caches[static_cast<std::size_t>(h)].appendToken(
                    g.k.values.row(pos), g.v.values.row(pos));
            }
            if (pos < spec.prompt_len)
                continue;
            for (int h = 0; h < spec.heads; h++) {
                const QuantizedHead &g = lw.groupOf(h);
                engines[static_cast<std::size_t>(h)].step(
                    caches[static_cast<std::size_t>(h)],
                    g.q.values.row(lw.queryRow(h, pos)),
                    g.logit_scale, out);
                std::ranges::copy(out, oracle_out.row(h).begin());
            }
            oracle_sum = mix(oracle_sum, oracle_out);
        }
        for (const KvCache &c : caches)
            oracle_bytes += c.bytesUsed();
    }

    const bool oracle_ok = serial_sum == oracle_sum;
    const bool pool_ok = serial_sum == pooled_sum;
    char note[48];
    std::printf("%s\n",
                formatChecksumLine("decode checksum", serial_sum,
                                   "grouped")
                    .c_str());
    std::printf("%s\n",
                formatChecksumLine("oracle checksum", oracle_sum,
                                   oracle_ok ? "bit-identical"
                                             : "DIVERGED")
                    .c_str());
    std::printf("%s\n",
                formatChecksumLine("pooled checksum", pooled_sum,
                                   pool_ok ? "bit-identical"
                                           : "DIVERGED")
                    .c_str());
    std::snprintf(note, sizeof(note), "scored, %d positions",
                  spec.prompt_len);
    std::printf("%s\n",
                formatChecksumLine("prefill checksum", prefill_sum,
                                   note)
                    .c_str());
    std::printf("\nKV residency      : %.2f MB shared (%d caches) vs "
                "%.2f MB private (%d caches) — %.1fx\n",
                static_cast<double>(grouped_bytes) / 1e6,
                spec.kv_heads,
                static_cast<double>(oracle_bytes) / 1e6, spec.heads,
                static_cast<double>(oracle_bytes) /
                    static_cast<double>(grouped_bytes));
    std::printf("plane tables      : built once per KV head (%d) and "
                "reused by all %d query heads\n",
                spec.kv_heads, spec.heads);
    return (oracle_ok && pool_ok) ? 0 : 1;
}

/**
 * @file
 * Quickstart: run PADE's predictor-free sparse attention end to end on
 * one synthetic head and inspect what the algorithm did.
 *
 *   $ ./quickstart [--seq 2048] [--alpha 0.6] [--radius 5]
 *
 * Walks through the full public API: generate a workload, quantize it
 * (INT8 + key bit planes), run the fused BSF pipeline, compare against
 * the dense oracle, then replay the trace on the cycle-level
 * accelerator model.
 */

#include <cstdio>

#include "arch/pade_accelerator.h"
#include "attention/metrics.h"
#include "attention/reference.h"
#include "common/cli.h"
#include "core/pade_attention.h"
#include "workload/generator.h"

using namespace pade;

int
main(int argc, char **argv)
{
    Cli cli(argc, argv);

    // 1. A synthetic attention head with LLM-like score structure.
    WorkloadSpec spec;
    spec.seq_len = static_cast<int>(cli.getInt("seq", 2048));
    spec.query_len = 8;
    spec.head_dim = 128;
    spec.concentration = 1.25;
    spec.locality = 0.6;
    spec.seed = cli.getInt("seed", 1);
    const AttentionHead head = generateHead(spec);

    // 2. Quantize: INT8 operands, keys decomposed into bit planes.
    const QuantizedHead qh = quantizeHead(head);
    std::printf("workload: S=%d H=%d, logit scale %.2e\n",
                spec.seq_len, spec.head_dim, qh.logit_scale);

    // 3. Run predictor-free sparse attention (BUI-GF + BS + ISTA).
    PadeConfig cfg;
    cfg.alpha = cli.getDouble("alpha", 0.7);
    cfg.radius = cli.getDouble("radius", 10.0);
    const PadeResult res = padeAttention(qh, cfg);

    std::printf("\nPADE functional run (alpha=%.2f, radius=%.1f):\n",
                cfg.alpha, cfg.radius);
    std::printf("  keys retained     : %lu / %lu (%.1f%%)\n",
                (unsigned long)res.stats.keys_retained,
                (unsigned long)res.stats.keys_total,
                100.0 * res.stats.keepRate());
    std::printf("  bit planes touched: %.2f of %d per key\n",
                res.stats.avgPlanesPerKey(),
                qh.k_planes.numPlanes());
    std::printf("  plane-work saved  : %.1f%%\n",
                100.0 * res.stats.planeReduction());
    std::printf("  BS selected ops   : %lu (naive would be %lu)\n",
                (unsigned long)res.stats.ops_bs,
                (unsigned long)res.stats.ops_naive);

    // 4. Accuracy against the dense FP32 oracle.
    const MatrixF ref = denseAttention(head.q, head.k, head.v,
                                       head.scale);
    const MatrixF logits = attentionLogits(head.q, head.k, head.scale);
    std::printf("\naccuracy vs dense FP32:\n");
    std::printf("  retained softmax mass: %.4f\n",
                retainedMass(logits, res.keep));
    std::printf("  output relative error: %.4f\n",
                relativeError(res.out, ref));
    std::printf("  output cosine        : %.5f\n",
                cosineSimilarity(res.out, ref));

    // 5. Replay on the cycle-level accelerator (Table III config).
    PadeAccelerator accel;
    const RunMetrics m = accel.runHead(qh);
    std::printf("\ncycle-level accelerator (one 8-query block):\n");
    std::printf("  time        : %.0f ns (%.0f cycles @800MHz)\n",
                m.time_ns, m.cycles);
    std::printf("  DRAM traffic: %.1f KB (row-hit %.0f%%)\n",
                m.dram_bytes / 1024.0, 100.0 * m.row_hit_rate);
    std::printf("  energy      : %.1f uJ (dram %.0f%%)\n",
                m.energy.total() * 1e-6,
                100.0 * m.energy.dram_pj / m.energy.total());
    std::printf("  efficiency  : %.0f GOPS/W (dense-equivalent)\n",
                m.gopsPerW());
    return 0;
}

/**
 * @file
 * Interactive accuracy/sparsity explorer: sweep the guard band
 * (alpha x radius) on any model/dataset preset and print the achieved
 * retained mass, output error, keep rate and plane reduction — the
 * tool you would use to pick an operating point for a new workload.
 *
 *   $ ./accuracy_explorer [--model Qwen-7B] [--dataset mmlu]
 */

#include <cstdio>

#include "attention/metrics.h"
#include "attention/reference.h"
#include "bench/common.h"

using namespace pade;
using namespace pade::bench;

int
main(int argc, char **argv)
{
    Cli cli(argc, argv);
    const ModelConfig model = modelByName(cli.get("model",
                                                  "Llama2-7B"));
    const std::string ds_name = cli.get("dataset", "wiki2");
    DatasetConfig ds = dsWikitext2();
    if (ds_name == "mmlu")
        ds = dsMmlu();
    else if (ds_name == "mbpp")
        ds = dsMbpp();
    else if (ds_name == "dolly")
        ds = dsDolly();

    SimRequest req{model, ds};
    req.seed = cli.getInt("seed", 1);
    const AttentionHead head = calibrationHead(req, 4096);
    const QuantizedHead qh = quantizeHead(head);
    const MatrixF ref = denseAttention(head.q, head.k, head.v,
                                       head.scale);
    const MatrixF logits = attentionLogits(head.q, head.k, head.scale);

    std::printf("%s on %s (S=%d simulated at %d)\n",
                model.name.c_str(), ds.name.c_str(), ds.seq_len,
                head.k.rows());

    Table t;
    t.header({"margin (logits)", "mass", "score est", "out err",
              "keep", "planes/key"});
    for (double margin : {1.0, 2.0, 3.0, 5.0, 7.0, 10.0}) {
        PadeConfig cfg;
        cfg.alpha = margin / 10.0;
        cfg.radius = 10.0;
        const PadeResult res = padeAttention(qh, cfg);
        const double mass = retainedMass(logits, res.keep);
        t.row({Table::num(margin, 1), Table::num(mass, 4),
               Table::num(1000.0 * taskScoreFromMass(mass), 0),
               Table::num(relativeError(res.out, ref), 4),
               Table::pct(res.stats.keepRate()),
               Table::num(res.stats.avgPlanesPerKey(), 2)});
    }
    t.print();
    std::printf("pick the smallest margin whose score estimate meets "
                "your budget; the paper's default is alpha 0.5-0.6 x "
                "radius 5.\n");
    return 0;
}

/**
 * @file
 * Cross-session prefix index: a radix trie mapping prompt-prefix
 * content to shared, ref-counted KV pages.
 *
 * Thousands of concurrent sessions often share a prompt prefix (the
 * system prompt, few-shot examples, a common document). Without
 * sharing, every session re-packs, re-PlaneWorks, and re-scores that
 * prefix privately — prefill compute and KV bytes both scale with
 * sessions instead of with *distinct* prefixes. This index is the
 * vLLM-style fix at PADE granularity: sessions whose prompts share a
 * prefix map read-only onto the same `KvPage`s (packed key planes +
 * dequantized values + the cached PlaneWork table), so a hot prefix
 * is packed and scored once for the whole fleet.
 *
 * Keying: the trie is page-granular. A prompt's identity is its
 * *chain hash* sequence — `chain[d]` hashes page d's token content
 * (all layers, all KV heads, keys and values) mixed with
 * `chain[d-1]`, so equal chains at depth d mean equal prompt content
 * through page d with overwhelming probability, and a node's path is
 * fully determined by its own key. Trie node at depth d stores one
 * `shared_ptr<const KvPage>` per stream (layer x kv_head, row-major).
 * Sharing whole pages only is what makes the pages immutable (a full
 * page is never appended to — the KvCache contract); a prefix that
 * ends mid-page diverges by private re-append, the copy-on-write
 * fork point.
 *
 * Why the pages are sound cache values: `BitPlaneSet::revision()`
 * gives every page's plane set a process-unique content token, so
 * the `PadeWorkspace`/DecodeEngine plane-table reuse keyed on
 * (pointer, revision) treats a shared page identically in every
 * adopter — one PlaneWork table, scored once, bit-identical
 * everywhere. The index never mutates a published page, so a node's
 * revision is stable for its lifetime.
 *
 * Ref-counting: `acquire()` marks every matched node as read by one
 * more session; `release()` undoes exactly that (PADE_CHECKed — a
 * refcount underflow means a session double-released and some other
 * session's pages may be evicted under it). Eviction (`max_bytes`
 * budget, LRU leaf-first) only ever removes nodes with zero readers;
 * page *memory* additionally survives until the last adopter's
 * KvCache drops its shared_ptr — eviction unmaps a prefix from
 * future lookups, it never frees bytes under a live reader.
 *
 * Thread safety: internal. One index is shared by every slot of a
 * batcher run, and sessions step on pool workers, so all public
 * methods serialize on one annotated pade::Mutex (clang
 * -Wthread-safety proves the discipline; the TSan CI leg watches it
 * race). Lookups are rare (one per admitted session) and the
 * critical sections are pointer walks — the mutex is nowhere near
 * the per-token hot path.
 */

#ifndef PADE_SERVING_PREFIX_INDEX_H
#define PADE_SERVING_PREFIX_INDEX_H

#include <cstddef>
#include <cstdint>
#include <memory>
#include <span>
#include <unordered_map>
#include <vector>

#include "common/thread_annotations.h"
#include "runtime/mutex.h"
#include "serving/kv_cache.h"

namespace pade {

/** Configuration of one prefix index. */
struct PrefixIndexOptions
{
    /**
     * Shared pages per trie node: one per (layer, kv_head) stream,
     * row-major by layer. Every publish/acquire must agree.
     */
    int streams = 1;
    /** Shared-page byte budget; 0 = unbounded. Publishing past the
     *  budget evicts unreferenced LRU leaves (never live readers). */
    std::size_t max_bytes = 0;
};

/** Result of one acquire(): the longest matched prefix. */
struct PrefixMatch
{
    /** Matched depth in pages (0 = miss). */
    int pages = 0;
    /**
     * Matched shared pages, depth-major then stream: entry
     * d * streams + s is page-depth d of stream s. Size
     * pages * streams.
     */
    std::vector<std::shared_ptr<const KvPage>> shared;
};

/** Observability counters (monotonic except bytes/nodes). */
struct PrefixIndexStats
{
    uint64_t lookups = 0;      //!< acquire() calls
    uint64_t hit_pages = 0;    //!< pages matched over all lookups
    uint64_t miss_lookups = 0; //!< acquires matching zero pages
    uint64_t published = 0;    //!< nodes newly registered
    uint64_t rejected = 0;     //!< publishes of already-known nodes
    uint64_t evictions = 0;    //!< nodes removed by the byte budget
    std::size_t bytes = 0;     //!< shared bytes currently indexed
    int nodes = 0;             //!< trie nodes currently resident
};

/**
 * Radix trie of shared prompt-prefix pages. See file comment for the
 * keying, ref-counting, and eviction disciplines.
 */
class PrefixIndex
{
  public:
    explicit PrefixIndex(PrefixIndexOptions opt = {});
    ~PrefixIndex();

    PrefixIndex(const PrefixIndex &) = delete;
    PrefixIndex &operator=(const PrefixIndex &) = delete;

    const PrefixIndexOptions &options() const { return opt_; }

    /**
     * Longest-prefix lookup: match @p chain against the trie and
     * take a reader reference on every matched node. A non-empty
     * match MUST eventually be released with the same chain and the
     * returned depth, or its nodes become unevictable.
     */
    PrefixMatch acquire(std::span<const uint64_t> chain)
        PADE_EXCLUDES(mu_);

    /**
     * Drop the reader references of a prior acquire() that matched
     * @p depth pages of @p chain. Releasing more than was acquired
     * is a PADE_CHECK abort (refcount underflow).
     */
    void release(std::span<const uint64_t> chain, int depth)
        PADE_EXCLUDES(mu_);

    /**
     * Register shared pages for every depth of @p chain:
     * @p pages holds chain.size() * streams entries, depth-major
     * (the layout PrefixMatch::shared uses). Depths already present
     * are skipped — first publisher wins, and concurrent publishers
     * of one prefix converge on the first's pages. Returns the
     * number of newly registered nodes. Publishing may evict
     * unreferenced LRU leaves to honor max_bytes.
     */
    int publish(std::span<const uint64_t> chain,
                std::span<const std::shared_ptr<const KvPage>> pages)
        PADE_EXCLUDES(mu_);

    /** Current counters (copied under the lock). */
    PrefixIndexStats stats() const PADE_EXCLUDES(mu_);

    /** Reader count of the node at depth chain.size() - 1, or -1
     *  when absent (test/observability hook). */
    int readersOf(std::span<const uint64_t> chain) const
        PADE_EXCLUDES(mu_);

  private:
    struct Node
    {
        uint64_t key = 0; //!< chain hash at this depth
        int depth = 0;
        Node *parent = nullptr;
        std::unordered_map<uint64_t, std::unique_ptr<Node>> children;
        std::vector<std::shared_ptr<const KvPage>> pages;
        std::size_t bytes = 0;   //!< sum of kvPageBytes(pages)
        int readers = 0;         //!< live acquire() references
        uint64_t last_use = 0;   //!< logical LRU tick
    };

    /** Walk the matched path of @p chain; nullptr-terminated early
     *  on the first absent child. Returns matched nodes in depth
     *  order. */
    void walk(std::span<const uint64_t> chain,
              std::vector<Node *> &out) const PADE_REQUIRES(mu_);

    /** Evict unreferenced LRU leaves until bytes_ <= max_bytes (or
     *  nothing evictable remains). */
    void evictToBudget() PADE_REQUIRES(mu_);

    PrefixIndexOptions opt_;
    mutable Mutex mu_;
    std::unordered_map<uint64_t, std::unique_ptr<Node>>
        roots_ PADE_GUARDED_BY(mu_);
    uint64_t tick_ PADE_GUARDED_BY(mu_) = 0;
    PrefixIndexStats stats_ PADE_GUARDED_BY(mu_);
};

} // namespace pade

#endif // PADE_SERVING_PREFIX_INDEX_H

#include "serving/prefix_index.h"

#include <algorithm>

#include "common/check.h"
#include "obs/telemetry.h"

namespace pade {

namespace {

// Registry mirror of PrefixIndexStats (docs/OBSERVABILITY.md): the
// struct is per-index and handed back via stats(); these counters
// fold every index in the process into the one stats snapshot the
// batcher exports.
struct PrefixMetrics
{
    obs::Counter &lookups;
    obs::Counter &hit_pages;
    obs::Counter &miss_lookups;
    obs::Counter &published;
    obs::Counter &rejected;
    obs::Counter &evictions;

    static PrefixMetrics &
    get()
    {
        static PrefixMetrics m{
            obs::Registry::instance().counter("prefix.lookups"),
            obs::Registry::instance().counter("prefix.hit_pages"),
            obs::Registry::instance().counter("prefix.miss_lookups"),
            obs::Registry::instance().counter("prefix.published"),
            obs::Registry::instance().counter("prefix.rejected"),
            obs::Registry::instance().counter("prefix.evictions"),
        };
        return m;
    }
};

} // namespace

PrefixIndex::PrefixIndex(PrefixIndexOptions opt) : opt_(opt)
{
    PADE_CHECK_GE(opt_.streams, 1);
}

PrefixIndex::~PrefixIndex() = default;

void
PrefixIndex::walk(std::span<const uint64_t> chain,
                  std::vector<Node *> &out) const
{
    out.clear();
    const std::unordered_map<uint64_t, std::unique_ptr<Node>> *level =
        &roots_;
    for (uint64_t key : chain) {
        const auto it = level->find(key);
        if (it == level->end())
            break;
        out.push_back(it->second.get());
        level = &it->second->children;
    }
}

PrefixMatch
PrefixIndex::acquire(std::span<const uint64_t> chain)
{
    MutexLock lock(mu_);
    stats_.lookups++;

    std::vector<Node *> path;
    walk(chain, path);
    PrefixMatch match;
    match.pages = static_cast<int>(path.size());
    match.shared.reserve(path.size() *
                         static_cast<std::size_t>(opt_.streams));
    tick_++;
    for (Node *node : path) {
        node->readers++;
        node->last_use = tick_;
        match.shared.insert(match.shared.end(), node->pages.begin(),
                            node->pages.end());
    }
    stats_.hit_pages += static_cast<uint64_t>(match.pages);
    if (match.pages == 0)
        stats_.miss_lookups++;
    if constexpr (obs::kTelemetryEnabled) {
        PrefixMetrics &m = PrefixMetrics::get();
        m.lookups.add(1);
        m.hit_pages.add(static_cast<uint64_t>(match.pages));
        if (match.pages == 0)
            m.miss_lookups.add(1);
    }
    return match;
}

void
PrefixIndex::release(std::span<const uint64_t> chain, int depth)
{
    PADE_CHECK_GE(depth, 0);
    if (depth == 0)
        return;
    MutexLock lock(mu_);

    std::vector<Node *> path;
    walk(chain, path);
    // The released path must still exist in full: eviction never
    // removes a node with readers > 0, so a missing node here means
    // the caller released a chain it never acquired (or released
    // twice) — exactly the underflow this CHECK exists to catch.
    PADE_CHECK_LE(depth, static_cast<int>(path.size()));
    for (int d = 0; d < depth; d++) {
        Node *node = path[static_cast<std::size_t>(d)];
        PADE_CHECK_GT(node->readers, 0);
        node->readers--;
    }
}

int
PrefixIndex::publish(
    std::span<const uint64_t> chain,
    std::span<const std::shared_ptr<const KvPage>> pages)
{
    PADE_CHECK_EQ(pages.size(), chain.size() *
                  static_cast<std::size_t>(opt_.streams));
    MutexLock lock(mu_);

    int fresh = 0;
    tick_++;
    std::unordered_map<uint64_t, std::unique_ptr<Node>> *level =
        &roots_;
    Node *parent = nullptr;
    for (std::size_t d = 0; d < chain.size(); d++) {
        auto it = level->find(chain[d]);
        if (it == level->end()) {
            auto node = std::make_unique<Node>();
            node->key = chain[d];
            node->depth = static_cast<int>(d);
            node->parent = parent;
            node->pages.assign(
                pages.begin() + static_cast<std::ptrdiff_t>(
                                    d * opt_.streams),
                pages.begin() + static_cast<std::ptrdiff_t>(
                                    (d + 1) * opt_.streams));
            for (const auto &p : node->pages) {
                PADE_CHECK(p != nullptr);
                PADE_CHECK(p->full());
                node->bytes += kvPageBytes(*p);
            }
            node->last_use = tick_;
            stats_.bytes += node->bytes;
            stats_.nodes++;
            stats_.published++;
            if constexpr (obs::kTelemetryEnabled)
                PrefixMetrics::get().published.add(1);
            fresh++;
            it = level->emplace(chain[d], std::move(node)).first;
        } else {
            // First publisher wins: concurrent sessions building the
            // same prefix converge on one page set. The chain hash
            // already attests content equality; re-registering is a
            // no-op beyond the LRU touch.
            stats_.rejected++;
            if constexpr (obs::kTelemetryEnabled)
                PrefixMetrics::get().rejected.add(1);
            it->second->last_use = tick_;
        }
        parent = it->second.get();
        level = &parent->children;
    }
    if (opt_.max_bytes > 0)
        evictToBudget();
    return fresh;
}

void
PrefixIndex::evictToBudget()
{
    while (stats_.bytes > opt_.max_bytes) {
        // Leaf-first LRU: only a node with no children may go (an
        // interior eviction would orphan deeper matches), and only
        // with zero readers (a live acquire() must never lose its
        // pages' index entry under it — the pages themselves are
        // additionally pinned by the readers' shared_ptrs).
        Node *victim = nullptr;
        std::vector<std::unordered_map<
            uint64_t, std::unique_ptr<Node>> *> stack{&roots_};
        while (!stack.empty()) {
            auto *level = stack.back();
            stack.pop_back();
            for (auto &[key, node] : *level) {
                if (node->children.empty()) {
                    if (node->readers == 0 &&
                        (!victim ||
                         node->last_use < victim->last_use))
                        victim = node.get();
                } else {
                    stack.push_back(&node->children);
                }
            }
        }
        if (!victim)
            return; // everything evictable is in use; run over budget
        stats_.bytes -= victim->bytes;
        stats_.nodes--;
        stats_.evictions++;
        if constexpr (obs::kTelemetryEnabled)
            PrefixMetrics::get().evictions.add(1);
        auto *level =
            victim->parent ? &victim->parent->children : &roots_;
        level->erase(victim->key);
    }
}

PrefixIndexStats
PrefixIndex::stats() const
{
    MutexLock lock(mu_);
    return stats_;
}

int
PrefixIndex::readersOf(std::span<const uint64_t> chain) const
{
    MutexLock lock(mu_);
    std::vector<Node *> path;
    walk(chain, path);
    if (chain.empty() || path.size() != chain.size())
        return -1;
    return path.back()->readers;
}

} // namespace pade

#include "serving/model_engine.h"

#include <algorithm>
#include <chrono>
#include <utility>

#include "common/check.h"
#include "obs/telemetry.h"
#include "obs/trace.h"
#include "runtime/thread_pool.h"

namespace pade {

namespace {

// Pipeline-utilization telemetry (ROADMAP item 2, now observable):
// every pipelined round records the wall time the *width* of the
// round could have used (min(pool threads, flights) x round wall) and
// the time its units actually computed. The bubble ratio of any
// snapshot delta is then
//     1 - model.unit_busy_us / model.round_capacity_us
// — 0 when every lane of every round was full, approaching 1 as the
// pipeline starves (fill/drain phases, cores > flights).
struct ModelMetrics
{
    obs::Counter &rounds;
    obs::Counter &units;
    obs::Counter &unit_busy_us;
    obs::Counter &round_capacity_us;

    static ModelMetrics &
    get()
    {
        static ModelMetrics m{
            obs::Registry::instance().counter("model.rounds"),
            obs::Registry::instance().counter("model.units"),
            obs::Registry::instance().counter("model.unit_busy_us"),
            obs::Registry::instance().counter(
                "model.round_capacity_us"),
        };
        return m;
    }
};

int64_t
microsSince(std::chrono::steady_clock::time_point t0)
{
    return std::chrono::duration_cast<std::chrono::microseconds>(
               std::chrono::steady_clock::now() - t0)
        .count();
}

} // namespace

ModelEngine::ModelEngine(const ModelEngineConfig &cfg,
                         std::span<const float> v_scales,
                         std::span<const float> logit_scales,
                         Stager stager, Sink sink)
    : cfg_(cfg), v_scales_(v_scales.begin(), v_scales.end()),
      logit_scales_(logit_scales.begin(), logit_scales.end()),
      stager_(std::move(stager)), sink_(std::move(sink))
{
    PADE_CHECK_GE(cfg_.layers, 1);
    const auto kv = static_cast<std::size_t>(cfg_.layer.kv_heads);
    PADE_CHECK_EQ(v_scales_.size(),
                  static_cast<std::size_t>(cfg_.layers) * kv);
    PADE_CHECK_EQ(logit_scales_.size(),
                  static_cast<std::size_t>(cfg_.layers) * kv);
    PADE_CHECK(stager_ != nullptr);
    PADE_CHECK(sink_ != nullptr);

    layers_.reserve(static_cast<std::size_t>(cfg_.layers));
    stage_k_.reserve(static_cast<std::size_t>(cfg_.layers));
    stage_v_.reserve(static_cast<std::size_t>(cfg_.layers));
    stage_q_.reserve(static_cast<std::size_t>(cfg_.layers));
    for (int l = 0; l < cfg_.layers; l++) {
        layers_.emplace_back(
            cfg_.layer,
            std::span<const float>(v_scales_)
                .subspan(static_cast<std::size_t>(l) * kv, kv));
        stage_k_.emplace_back(cfg_.layer.kv_heads, cfg_.layer.head_dim);
        stage_v_.emplace_back(cfg_.layer.kv_heads, cfg_.layer.head_dim);
        stage_q_.emplace_back(cfg_.layer.heads, cfg_.layer.head_dim);
    }
}

void
ModelEngine::feed(int pos, int prompt_len)
{
    // Contiguous feed from the frontier keeps every layer's append
    // sequence gapless — the property the whole cache layer assumes.
    PADE_CHECK_EQ(pos, fed_);
    PADE_CHECK_GE(prompt_len, 0);
    fed_++;
    queue_.push_back(Job{pos, prompt_len});
}

ModelEngine::Flight
ModelEngine::takeFlight(const Job &job)
{
    Flight f;
    if (!spares_.empty()) {
        f = std::move(spares_.back());
        spares_.pop_back();
    } else {
        f.outs.reserve(static_cast<std::size_t>(cfg_.layers));
        for (int l = 0; l < cfg_.layers; l++)
            f.outs.emplace_back(cfg_.layer.heads, cfg_.layer.head_dim);
        f.steps.resize(static_cast<std::size_t>(cfg_.layers));
    }
    f.job = job;
    f.age = 0;
    return f;
}

void
ModelEngine::runUnit(Flight &f, int l, ThreadPool *pool)
{
    const auto li = static_cast<std::size_t>(l);
    MatrixI8 &k = stage_k_[li];
    MatrixI8 &v = stage_v_[li];
    MatrixI8 &q = stage_q_[li];
    stager_(l, f.job.pos, k, v, q);

    LayerEngine &layer = layers_[li];
    layer.appendToken(k, v);
    const auto kv = static_cast<std::size_t>(cfg_.layer.kv_heads);
    const std::span<const float> scales =
        std::span<const float>(logit_scales_).subspan(li * kv, kv);
    if (f.job.pos < f.job.prompt_len) {
        f.steps[li] = layer.prefillPosition(q, f.job.pos,
                                            f.job.prompt_len, scales,
                                            f.outs[li], pool);
    } else {
        f.steps[li] = layer.decode(q, scales, f.outs[li], pool);
        layer.evict();
    }
}

void
ModelEngine::retire(Flight &&f)
{
    TokenResult result;
    result.pos = f.job.pos;
    result.prompt_len = f.job.prompt_len;
    result.outs = f.outs;
    result.steps = f.steps;
    sink_(result);
    completed_++;
    spares_.push_back(std::move(f));
}

int
ModelEngine::collectUnits()
{
    PADE_CHECK(!round_open_);
    if (!cfg_.pipeline) {
        // Serial reference schedule: one whole-token unit per round.
        // (flight_ holds at most this one entry in serial mode.)
        if (queue_.empty())
            return 0;
        flight_.push_back(takeFlight(queue_.front()));
        queue_.pop_front();
        round_open_ = true;
        return 1;
    }
    if (queue_.empty() && flight_.empty())
        return 0;
    if (!queue_.empty()) {
        flight_.push_back(takeFlight(queue_.front()));
        queue_.pop_front();
    }
    round_open_ = true;
    return static_cast<int>(flight_.size());
}

void
ModelEngine::runCollectedUnit(int u, ThreadPool *pool)
{
    PADE_DCHECK(round_open_);
    Flight &f = flight_[static_cast<std::size_t>(u)];
    if (!cfg_.pipeline) {
        for (int l = 0; l < cfg_.layers; l++)
            runUnit(f, l, pool);
        return;
    }
    if constexpr (obs::kTelemetryEnabled) {
        const obs::ScopedSpan span(
            "model.unit", {{"layer", f.age}, {"pos", f.job.pos}});
        const auto t0 = std::chrono::steady_clock::now();
        runUnit(f, f.age, pool);
        ModelMetrics::get().unit_busy_us.add(
            static_cast<uint64_t>(microsSince(t0)));
    } else {
        runUnit(f, f.age, pool);
    }
}

void
ModelEngine::completeRound()
{
    PADE_CHECK(round_open_);
    round_open_ = false;
    if (!cfg_.pipeline) {
        Flight f = std::move(flight_.front());
        flight_.pop_front();
        retire(std::move(f));
        return;
    }
    // Post-barrier, on the caller: age everyone, retire the front
    // when its last layer just ran. At most one token can retire per
    // round (ages are distinct), and it is always the oldest — tokens
    // leave in feed order.
    for (Flight &f : flight_)
        f.age++;
    while (!flight_.empty() && flight_.front().age == cfg_.layers) {
        Flight f = std::move(flight_.front());
        flight_.pop_front();
        retire(std::move(f));
    }
}

bool
ModelEngine::advance(ThreadPool *pool)
{
    const int n = collectUnits();
    if (n == 0)
        return false;
    if (!cfg_.pipeline) {
        runCollectedUnit(0, pool);
        completeRound();
        return true;
    }

    // The systolic round: every in-flight token at its own layer.
    // Ages are pairwise distinct (strictly decreasing front to back),
    // so the units touch disjoint engines/buffers — see file comment.
    const obs::ScopedSpan round_span("model.round",
                                     {{"flights", n}});
    const bool fanout = pool && pool->threadCount() > 1 && n > 1;
    int width = 1;
    if constexpr (obs::kTelemetryEnabled) {
        if (fanout) {
            // Honest capacity width: workers this round can actually
            // claim, not min(threads, n). When the pool is shared —
            // the per-session batcher fans sessions over the same
            // pool that runs these units — most workers are busy
            // with OTHER sessions' rounds, and charging their time
            // as idle capacity would overstate the bubble ratio.
            // Subtract the occupants seen at round start (minus this
            // caller's own slot when it runs inside a pool task).
            const int busy_others = std::max(
                0,
                pool->busyWorkers() - (ThreadPool::inTask() ? 1 : 0));
            width =
                std::clamp(pool->threadCount() - busy_others, 1, n);
        }
    }
    const auto round_t0 = std::chrono::steady_clock::now();
    const auto unit = [&](int i) { runCollectedUnit(i, pool); };
    if (fanout)
        parallelFor(*pool, n, unit);
    else
        for (int i = 0; i < n; i++)
            unit(i);
    if constexpr (obs::kTelemetryEnabled) {
        ModelMetrics &m = ModelMetrics::get();
        m.rounds.add(1);
        m.units.add(static_cast<uint64_t>(n));
        m.round_capacity_us.add(
            static_cast<uint64_t>(width) *
            static_cast<uint64_t>(microsSince(round_t0)));
    }
    completeRound();
    return true;
}

void
ModelEngine::drain(ThreadPool *pool)
{
    while (advance(pool)) {
    }
}

void
ModelEngine::adoptPrefixPages(
    std::span<const std::shared_ptr<const KvPage>> pages)
{
    // Adoption splices pages at the frontier; with tokens in flight
    // the frontier would move under them.
    PADE_CHECK(queue_.empty() && flight_.empty());
    const auto kv = static_cast<std::size_t>(cfg_.layer.kv_heads);
    PADE_CHECK_EQ(pages.size(),
                  static_cast<std::size_t>(cfg_.layers) * kv);
    for (int l = 0; l < cfg_.layers; l++)
        layers_[static_cast<std::size_t>(l)].adoptSharedPages(
            pages.subspan(static_cast<std::size_t>(l) * kv, kv));
    fed_ += cfg_.layer.page_tokens;
}

void
ModelEngine::sharePrefixPages(
    int page, std::vector<std::shared_ptr<const KvPage>> &out) const
{
    for (const LayerEngine &layer : layers_)
        layer.sharePages(page, out);
}

PruneStats
ModelEngine::stats() const
{
    PruneStats sum;
    for (const LayerEngine &layer : layers_)
        sum += layer.stats();
    return sum;
}

std::size_t
ModelEngine::bytesUsed() const
{
    std::size_t bytes = 0;
    for (const LayerEngine &layer : layers_)
        bytes += layer.bytesUsed();
    return bytes;
}

} // namespace pade

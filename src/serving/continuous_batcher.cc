#include "serving/continuous_batcher.h"

#include <algorithm>
#include <bit>
#include <cassert>
#include <chrono>
#include <memory>
#include <optional>

#include "common/rng.h"
#include "runtime/thread_pool.h"
#include "serving/decode_engine.h"
#include "serving/kv_cache.h"

namespace pade {

namespace {

/** Mix one 32-bit word into a running checksum. */
uint64_t
mixChecksum(uint64_t acc, uint32_t word)
{
    uint64_t state = acc + word;
    return splitMix64(state);
}

/** One in-flight request: its workload, KV state, and timeline. */
struct Session
{
    Session(const ServingRequest &r, std::size_t idx, double admit,
            const BatcherOptions &opt)
        : req(&r), index(idx), admit_ms(admit), engine(opt.pade)
    {
    }

    const ServingRequest *req;
    std::size_t index;
    double admit_ms;
    double first_token_ms = -1.0;
    int prefilled = 0;
    int decoded = 0;
    uint64_t checksum = 0;

    std::optional<QuantizedHead> head;
    std::optional<KvCache> cache;
    DecodeEngine engine;
    std::vector<float> out;

    /**
     * Finished = materialized, whole prompt prefilled, every token
     * decoded. The prefill clause matters for decode_steps == 0
     * (prefill-only) requests, which must still do their prompt work
     * before eviction.
     */
    bool
    done() const
    {
        return head.has_value() && prefilled >= req->prompt_len &&
            decoded >= req->decode_steps;
    }
};

/**
 * Advance one session by one scheduling unit. Runs on a pool worker;
 * sessions are independent, so no synchronization is needed.
 */
void
stepSession(Session &s, const BatcherOptions &opt)
{
    const ServingRequest &req = *s.req;

    if (!s.head) {
        // Unit 1: materialize the session workload. The head spans
        // prompt + decode positions; key/value rows stream into the
        // cache below, query row t drives decode step t. Quantization
        // scales are fixed once here, so incremental packing is
        // bit-identical to packing the full history at any step.
        WorkloadSpec spec;
        spec.seq_len = req.prompt_len + req.decode_steps;
        spec.query_len = req.decode_steps;
        spec.head_dim = opt.head_dim;
        spec.concentration = opt.concentration;
        spec.locality = opt.locality;
        spec.seed = req.seed;
        s.head.emplace(quantizeHead(generateHead(spec), opt.bits));

        KvCacheConfig kc;
        kc.head_dim = opt.head_dim;
        kc.bits = opt.bits;
        kc.page_tokens = opt.page_tokens;
        kc.subgroup = opt.pade.subgroup;
        kc.muxes = opt.pade.muxes;
        kc.v_scale = s.head->v.params.scale;
        s.cache.emplace(kc);
        s.out.resize(static_cast<std::size_t>(opt.head_dim));
        return;
    }

    if (s.prefilled < req.prompt_len) {
        // Unit 2..k: prefill one chunk of prompt tokens (pack-only;
        // chunking keeps long prompts from starving decode slots).
        const int n = std::min(opt.prefill_chunk,
                               req.prompt_len - s.prefilled);
        for (int t = 0; t < n; t++) {
            const int pos = s.prefilled + t;
            s.cache->appendToken(s.head->k.values.row(pos),
                                 s.head->v.values.row(pos));
        }
        s.prefilled += n;
        return;
    }

    // Decode one token: append its KV row, then run the guarded
    // incremental attention step over the whole cache.
    const int t = s.decoded;
    const int pos = req.prompt_len + t;
    s.cache->appendToken(s.head->k.values.row(pos),
                         s.head->v.values.row(pos));
    s.engine.step(*s.cache, s.head->q.values.row(t),
                  s.head->logit_scale, s.out);
    for (float v : s.out)
        s.checksum = mixChecksum(s.checksum, std::bit_cast<uint32_t>(v));
    s.decoded++;
}

} // namespace

ContinuousBatcher::ContinuousBatcher(BatcherOptions opt) : opt_(opt)
{
    assert(opt_.max_active > 0 && opt_.prefill_chunk > 0);
}

ServingReport
ContinuousBatcher::run(std::span<const ServingRequest> trace) const
{
    const auto run_t0 = std::chrono::steady_clock::now();

    ServingReport report;
    report.sessions.resize(trace.size());
    for (std::size_t i = 0; i + 1 < trace.size(); i++)
        assert(trace[i].arrival_ms <= trace[i + 1].arrival_ms);

    ThreadPool pool(opt_.threads);
    std::vector<std::unique_ptr<Session>> active;
    active.reserve(static_cast<std::size_t>(opt_.max_active));
    std::size_t next = 0;
    double now_ms = 0.0;

    std::vector<double> latency;
    std::vector<double> ttft;
    latency.reserve(trace.size());
    ttft.reserve(trace.size());

    while (next < trace.size() || !active.empty()) {
        // Admit every arrived request while slots are free.
        while (next < trace.size() &&
               static_cast<int>(active.size()) < opt_.max_active &&
               trace[next].arrival_ms <= now_ms) {
            active.push_back(std::make_unique<Session>(
                trace[next], next, now_ms, opt_));
            next++;
        }
        report.peak_active = std::max(
            report.peak_active, static_cast<int>(active.size()));

        if (active.empty()) {
            // Idle: jump the virtual clock to the next arrival.
            assert(next < trace.size());
            now_ms = std::max(now_ms, trace[next].arrival_ms);
            continue;
        }

        // One scheduling round: every active session advances by one
        // unit, concurrently. The round's host wall time advances the
        // virtual clock, so latency reflects actual machine speed and
        // parallelism.
        const auto t0 = std::chrono::steady_clock::now();
        parallelFor(pool, static_cast<int>(active.size()), [&](int i) {
            stepSession(*active[static_cast<std::size_t>(i)], opt_);
        });
        now_ms += std::chrono::duration<double, std::milli>(
            std::chrono::steady_clock::now() - t0).count();
        report.rounds++;

        // Post-round bookkeeping on the scheduler thread.
        std::size_t cache_bytes = 0;
        for (auto &s : active) {
            if (s->decoded >= 1 && s->first_token_ms < 0.0)
                s->first_token_ms = now_ms;
            if (s->cache)
                cache_bytes += s->cache->bytesUsed();
        }
        report.peak_cache_bytes =
            std::max(report.peak_cache_bytes, cache_bytes);

        // Evict finished sessions: record the timeline, free the KV
        // pages, release the slot.
        for (std::size_t i = 0; i < active.size();) {
            Session &s = *active[i];
            if (!s.done()) {
                i++;
                continue;
            }
            SessionStats &st = report.sessions[s.index];
            st.arrival_ms = s.req->arrival_ms;
            st.admit_ms = s.admit_ms;
            st.first_token_ms = s.first_token_ms;
            st.finish_ms = now_ms;
            st.prompt_len = s.req->prompt_len;
            st.decode_steps = s.req->decode_steps;
            st.checksum = s.checksum;

            report.tokens_prefilled +=
                static_cast<uint64_t>(s.prefilled);
            report.tokens_decoded += static_cast<uint64_t>(s.decoded);
            report.checksum ^= s.checksum;
            latency.push_back(st.finish_ms - st.arrival_ms);
            // Prefill-only sessions never decode a token; they count
            // toward latency but not TTFT.
            if (s.first_token_ms >= 0.0)
                ttft.push_back(st.first_token_ms - st.arrival_ms);

            active.erase(active.begin() +
                         static_cast<std::ptrdiff_t>(i));
        }
    }

    report.latency_ms = Percentiles::of(latency);
    report.ttft_ms = Percentiles::of(ttft);
    report.makespan_ms = now_ms;
    report.wall_ms = std::chrono::duration<double, std::milli>(
        std::chrono::steady_clock::now() - run_t0).count();
    report.decode_tok_per_s = report.wall_ms > 0.0
        ? static_cast<double>(report.tokens_decoded) /
            (report.wall_ms / 1000.0)
        : 0.0;
    return report;
}

} // namespace pade

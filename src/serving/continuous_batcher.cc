#include "serving/continuous_batcher.h"

#include <algorithm>
#include <bit>
#include <chrono>
#include <memory>
#include <optional>

#include <cinttypes>
#include <cmath>
#include <cstdio>
#include <string>

#include "common/check.h"
#include "common/rng.h"
#include "common/thread_annotations.h"
#include "obs/telemetry.h"
#include "obs/trace.h"
#include "runtime/mutex.h"
#include "runtime/thread_pool.h"
#include "serving/model_engine.h"

namespace pade {

namespace {

/** Mix one 32-bit word into a running checksum. */
uint64_t
mixChecksum(uint64_t acc, uint32_t word)
{
    uint64_t state = acc + word;
    return splitMix64(state);
}

/** Mix a whole output matrix (all heads of one position). */
uint64_t
mixMatrix(uint64_t acc, const MatrixF &m)
{
    for (int r = 0; r < m.rows(); r++)
        for (float v : m.row(r))
            acc = mixChecksum(acc, std::bit_cast<uint32_t>(v));
    return acc;
}

/** Appends a JSON-legal number (non-finite would break json.tool). */
void
appendJsonNumber(std::string &out, double v)
{
    if (!std::isfinite(v))
        v = 0.0;
    char buf[40];
    std::snprintf(buf, sizeof buf, "%.17g", v);
    out += buf;
}

/**
 * The ServingReport::telemetry blob: the run's registry delta plus
 * the derived ratios ROADMAP items 2 and 4 asked for, one JSON
 * document. Well-formed in every build; all-zero when telemetry is
 * compiled out.
 */
std::string
telemetryReportJson(const obs::MetricsSnapshot &delta,
                    const ServingReport &report)
{
    std::string out;
    out.reserve(2048);
    out += "{\"schema\":\"pade-serving-telemetry-v1\",\"enabled\":";
    out += obs::kTelemetryEnabled ? "true" : "false";
    out += ",\"derived\":{\"pipeline_bubble_ratio\":";
    appendJsonNumber(out, report.pipeline_bubble_ratio);
    out += ",\"kv_bytes_per_token\":";
    appendJsonNumber(out, report.kv_bytes_per_token);
    char buf[64];
    std::snprintf(buf, sizeof buf,
                  ",\"prefix_lookups\":%" PRIu64,
                  delta.counter("prefix.lookups"));
    out += buf;
    std::snprintf(buf, sizeof buf,
                  ",\"prefix_hit_pages\":%" PRIu64,
                  delta.counter("prefix.hit_pages"));
    out += buf;
    std::snprintf(buf, sizeof buf,
                  ",\"prefix_evictions\":%" PRIu64,
                  delta.counter("prefix.evictions"));
    out += buf;
    std::snprintf(buf, sizeof buf, ",\"pool_steals\":%" PRIu64,
                  delta.counter("pool.steals"));
    out += buf;
    out += "},\"metrics\":";
    out += delta.toJson();
    out += '}';
    return out;
}

/** One in-flight request: its workload, KV state, and timeline. */
struct Session
{
    Session(const ServingRequest &r, std::size_t idx, double admit,
            int seq)
        : req(&r), index(idx), admit_ms(admit), admit_seq(seq)
    {
    }

    const ServingRequest *req;
    std::size_t index;
    double admit_ms;
    int admit_seq;
    double first_token_ms = -1.0;
    int prefilled = 0; //!< prompt tokens done (adopted + scored)
    int decoded = 0;
    uint64_t checksum = 0;
    uint64_t prefill_checksum = 0;

    std::optional<ModelWorkload> work;
    std::optional<ModelEngine> engine;

    // Prefix-cache state: the prompt's page chain, how many of its
    // nodes this session holds reader refs on (to release at
    // eviction), and what adoption saved.
    std::vector<uint64_t> chain;
    int chain_acquired = 0;
    bool published = false;
    int prefix_hit_tokens = 0;
    std::size_t prefix_bytes_saved = 0;

    /**
     * Finished = materialized, whole prompt prefilled+scored, every
     * token decoded. The prefill clause matters for decode_steps == 0
     * (prefill-only) requests, which must still do their prompt work
     * before eviction.
     */
    bool
    done() const
    {
        return engine.has_value() && prefilled >= req->prompt_len &&
            decoded >= req->decode_steps;
    }
};

/**
 * Accounting shared by every session of one scheduling round. The
 * per-session step results are disjoint, but the round-wide resident
 * KV byte total is genuinely concurrent state: each worker folds its
 * session's bytesUsed() in as it finishes stepping, under the mutex.
 * size_t addition commutes, so the total is deterministic for any
 * thread count. Guarded members + MutexLock keep the access pattern
 * provable by -Wthread-safety and visible to TSan.
 */
struct RoundAccounting
{
    Mutex mu;
    /** Resident KV bytes summed over the round's sessions. */
    std::size_t cache_bytes PADE_GUARDED_BY(mu) = 0;

    void
    add(std::size_t bytes) PADE_EXCLUDES(mu)
    {
        MutexLock lock(mu);
        cache_bytes += bytes;
    }
    std::size_t
    total() PADE_EXCLUDES(mu)
    {
        MutexLock lock(mu);
        return cache_bytes;
    }
};

/**
 * Unit 1 of every session: materialize its whole-model workload
 * (static quantization scales, prefix-pure rows; see ModelWorkload)
 * and pipelined engine, then adopt any prefix pages an earlier
 * session already published. Runs on a pool worker in both
 * scheduling modes; touches only the session and the (internally
 * mutex'd) prefix index.
 */
void
materializeSession(Session &s, const BatcherOptions &opt,
                   PrefixIndex *index)
{
    const ServingRequest &req = *s.req;
    {
        const obs::ScopedSpan span(
            "batcher.materialize",
            {{"request", static_cast<int64_t>(s.index)}});
        ModelSpec spec;
        spec.layers = opt.layers;
        spec.heads = opt.heads;
        spec.kv_heads = opt.kv_heads;
        spec.head_dim = opt.head_dim;
        spec.prompt_len = req.prompt_len;
        spec.decode_steps = req.decode_steps;
        spec.bits = opt.bits;
        spec.prefix_len = req.prefix_len;
        spec.prefix_seed = req.prefix_seed;
        spec.concentration = opt.concentration;
        spec.locality = opt.locality;
        spec.seed = req.seed;
        s.work.emplace(spec);

        ModelEngineConfig mc;
        mc.layers = opt.layers;
        mc.pipeline = opt.pipeline;
        mc.layer.heads = opt.heads;
        mc.layer.kv_heads = opt.kv_heads;
        mc.layer.head_dim = opt.head_dim;
        mc.layer.bits = opt.bits;
        mc.layer.page_tokens = opt.page_tokens;
        mc.layer.pade = opt.pade;
        mc.layer.retention = opt.retention;
        const std::size_t streams =
            static_cast<std::size_t>(opt.layers) *
            static_cast<std::size_t>(opt.kv_heads);
        const std::vector<float> v_scales(streams, s.work->vScale());
        const std::vector<float> logit_scales(streams,
                                              s.work->logitScale());
        Session *self = &s;
        s.engine.emplace(
            mc, v_scales, logit_scales,
            [self](int layer, int pos, MatrixI8 &k, MatrixI8 &v,
                   MatrixI8 &q) {
                self->work->stageKv(layer, pos, k, v);
                self->work->stageQueries(layer, pos, q);
            },
            [self](const TokenResult &tr) {
                // Canonical emission order (feed order; layers
                // ascending within a token) in both schedules, so
                // sequential mixing is schedule-invariant. Prefix
                // positions are skipped entirely on a cache hit, so
                // they must not feed the checksum on a miss either.
                const ServingRequest &r = *self->req;
                if (tr.pos >= r.prompt_len) {
                    for (const MatrixF &out : tr.outs)
                        self->checksum =
                            mixMatrix(self->checksum, out);
                } else if (tr.pos >= r.prefix_len) {
                    for (const MatrixF &out : tr.outs)
                        self->prefill_checksum =
                            mixMatrix(self->prefill_checksum, out);
                }
            });

        if (index && req.prefix_len >= opt.page_tokens) {
            s.chain = s.work->prefixPageChain(opt.page_tokens);
            PrefixMatch match = index->acquire(s.chain);
            s.chain_acquired = match.pages;
            for (int d = 0; d < match.pages; d++)
                s.engine->adoptPrefixPages(
                    std::span<const std::shared_ptr<const KvPage>>(
                        match.shared)
                        .subspan(static_cast<std::size_t>(d) * streams,
                                 streams));
            s.prefilled = match.pages * opt.page_tokens;
            s.prefix_hit_tokens = s.prefilled;
            for (const auto &page : match.shared)
                s.prefix_bytes_saved += kvPageBytes(*page);
        }
    }
}

/**
 * Once a session's own prefix pages are complete, publish them for
 * later arrivals — unless the whole chain was adopted, in which case
 * the index already has them. Called right after the session's
 * prefilled count advances, in both scheduling modes.
 */
void
maybePublishPrefix(Session &s, const BatcherOptions &opt,
                   PrefixIndex *index)
{
    if (!index || s.published || s.chain.empty() ||
        s.prefilled < s.req->prefix_len)
        return;
    s.published = true;
    if (s.chain_acquired < static_cast<int>(s.chain.size())) {
        std::vector<std::shared_ptr<const KvPage>> pages;
        pages.reserve(s.chain.size() *
                      static_cast<std::size_t>(opt.layers) *
                      static_cast<std::size_t>(opt.kv_heads));
        for (std::size_t d = 0; d < s.chain.size(); d++)
            s.engine->sharePrefixPages(static_cast<int>(d), pages);
        index->publish(s.chain, pages);
    }
}

/**
 * Positions a resident session feeds its engine this round: one
 * prefill chunk while the prompt is unfinished, one decode token
 * after. Returns the number of *prompt* tokens fed (0 = decode); the
 * caller advances prefilled/decoded once the engine has drained.
 */
int
feedRoundPositions(Session &s, const BatcherOptions &opt)
{
    const ServingRequest &req = *s.req;
    if (s.prefilled < req.prompt_len) {
        const int n = std::min(opt.prefill_chunk,
                               req.prompt_len - s.prefilled);
        for (int t = 0; t < n; t++)
            s.engine->feed(s.prefilled + t, req.prompt_len);
        return n;
    }
    s.engine->feed(req.prompt_len + s.decoded, req.prompt_len);
    return 0;
}

/**
 * Advance one session by one scheduling unit — the per-session
 * (non-co-scheduled) path. Runs on a pool worker; sessions touch
 * disjoint state, so the sharing surface is the pool itself (the
 * in-session fan-outs nest on it — parallelFor's caller work-stealing
 * keeps that deadlock-free) and the mutex-guarded round accounting.
 */
void
stepSession(Session &s, const BatcherOptions &opt, ThreadPool *pool,
            RoundAccounting &round, PrefixIndex *index)
{
    const ServingRequest &req = *s.req;
    // Fold this session's resident bytes into the round total on the
    // way out, whatever unit ran (including early returns below).
    // Adopted prefix pages count once per adopter — the total is the
    // bytes sessions *reference*, the saving is reported separately.
    struct BytesOnExit
    {
        Session &s;
        RoundAccounting &round;
        ~BytesOnExit()
        {
            if (s.engine)
                round.add(s.engine->bytesUsed());
        }
    } bytes_on_exit{s, round};

    if (!s.engine) {
        materializeSession(s, opt, index);
        return;
    }

    if (s.prefilled < req.prompt_len) {
        const obs::ScopedSpan span(
            "batcher.prefill_chunk",
            {{"request", static_cast<int64_t>(s.index)},
             {"pos", s.prefilled}});
        // Unit 2..k: one prefill chunk — feed the chunk's positions
        // into the pipeline and drain it: appends and guarded causal
        // scoring of up to `layers` positions overlap on the pool,
        // bit-identical to the serial layer loop for any chunking
        // (tile-by-tile over the ISTA order of the full prompt).
        const int n = feedRoundPositions(s, opt);
        s.engine->drain(pool);
        s.prefilled += n;
        maybePublishPrefix(s, opt, index);
        return;
    }

    // Decode one token through every layer: append its KV rows, run
    // the grouped guarded attention step over every (shared) cache,
    // then let the retention policy reclaim aged-out pages.
    const obs::ScopedSpan span(
        "batcher.decode_token",
        {{"request", static_cast<int64_t>(s.index)},
         {"token", s.decoded}});
    feedRoundPositions(s, opt);
    s.engine->drain(pool);
    s.decoded++;
}

// Global-round telemetry of the co-scheduler: the same
// model.rounds / model.units / model.round_capacity_us counters
// ModelEngine::advance() feeds in per-session mode, recorded once per
// WAVE here because only the batcher knows the global round width.
// (runCollectedUnit still records model.unit_busy_us per unit, so the
// bubble ratio derivation is mode-independent.)
struct WaveMetrics
{
    obs::Counter &rounds;
    obs::Counter &units;
    obs::Counter &round_capacity_us;

    static WaveMetrics &
    get()
    {
        static WaveMetrics m{
            obs::Registry::instance().counter("model.rounds"),
            obs::Registry::instance().counter("model.units"),
            obs::Registry::instance().counter(
                "model.round_capacity_us"),
        };
        return m;
    }
};

/**
 * One co-scheduled batcher round: the same session-level schedule as
 * the per-session path — every active session advances by exactly one
 * unit (materialize, prefill chunk, or decode token) — but the engine
 * work is executed as global WAVES. Each wave opens one pipeline
 * round per engine with pending work (ModelEngine::collectUnits) and
 * runs the union of all their units through a single pool-wide
 * parallelFor; waves repeat until every engine has drained, exactly
 * like per-session drain() loops advance().
 *
 * Bit-identity with per-session scheduling, for any thread/slot
 * count: each engine sees exactly the round sequence its own drain()
 * would run (collectUnits admits identically, completeRound retires
 * identically, in feed order); units of one engine's round touch
 * disjoint layers (the PR 7 argument) and units of distinct sessions
 * touch disjoint sessions — so the flat wave list has no two units
 * sharing mutable state, and execution order cannot matter. All
 * post-unit bookkeeping (prefilled/decoded advance, prefix publish,
 * byte folding) happens on the scheduler thread at the same schedule
 * points the per-session path reaches them.
 */
/** Scratch reused across coscheduleRound calls: the wave loop runs
 *  thousands of rounds per trace, and re-allocating its four small
 *  vectors every round is measurable against microsecond units. */
struct CoscheduleScratch
{
    struct RoundPlan
    {
        Session *s;
        int prefill_n; //!< prompt tokens fed (0 = decode token)
    };
    struct UnitRef
    {
        ModelEngine *engine;
        int unit;
    };
    std::vector<Session *> fresh;
    std::vector<RoundPlan> plans;
    std::vector<UnitRef> units;
    std::vector<ModelEngine *> open;
};

void
coscheduleRound(std::vector<std::unique_ptr<Session>> &active,
                const BatcherOptions &opt, ThreadPool &pool,
                RoundAccounting &round, PrefixIndex *index,
                CoscheduleScratch &scratch)
{
    // Plan on the scheduler thread: fresh sessions owe a materialize
    // unit; resident sessions feed this round's positions (cheap
    // queue pushes) and owe pipeline units to the waves below.
    using RoundPlan = CoscheduleScratch::RoundPlan;
    using UnitRef = CoscheduleScratch::UnitRef;
    std::vector<Session *> &fresh = scratch.fresh;
    std::vector<RoundPlan> &plans = scratch.plans;
    fresh.clear();
    plans.clear();
    fresh.reserve(active.size());
    plans.reserve(active.size());
    for (const auto &sp : active) {
        Session &s = *sp;
        if (!s.engine) {
            fresh.push_back(&s);
            continue;
        }
        plans.push_back(RoundPlan{&s, feedRoundPositions(s, opt)});
    }

    // Materialize the round's fresh sessions in one fan-out. Workload
    // generation is not pipeline work, so it stays outside the wave
    // loop and its capacity accounting — as in per-session mode.
    if (!fresh.empty()) {
        const auto mat = [&](int i) {
            materializeSession(*fresh[static_cast<std::size_t>(i)],
                               opt, index);
        };
        if (pool.threadCount() > 1 && fresh.size() > 1)
            parallelFor(pool, static_cast<int>(fresh.size()), mat);
        else
            for (std::size_t i = 0; i < fresh.size(); i++)
                mat(static_cast<int>(i));
    }

    // The waves. Per iteration: open one round per engine with
    // pending work, run every collected unit in one parallelFor, then
    // complete the rounds on this thread (ages/retirement — the sink
    // calls — in session order, deterministically).
    std::vector<UnitRef> &units = scratch.units;
    std::vector<ModelEngine *> &open = scratch.open;
    for (;;) {
        units.clear();
        open.clear();
        for (const RoundPlan &p : plans) {
            ModelEngine &e = *p.s->engine;
            const int n = e.collectUnits();
            if (n == 0)
                continue;
            open.push_back(&e);
            for (int u = 0; u < n; u++)
                units.push_back(UnitRef{&e, u});
        }
        const int total = static_cast<int>(units.size());
        if (total == 0)
            break;
        {
            const obs::ScopedSpan wave_span(
                "model.round",
                {{"flights", static_cast<int64_t>(total)},
                 {"sessions",
                  static_cast<int64_t>(open.size())}});
            // Waves are fine-grained (one layer of one token per
            // unit), so fan out only as wide as the HARDWARE can
            // execute: an oversubscribed pool would wake sleeping
            // workers for microsecond units and pay a context switch
            // each — on a 1-core host the whole wave runs inline on
            // this thread instead. Pure scheduling choice; unit
            // outputs are order-independent within a wave (disjoint
            // sessions/layers), so this cannot perturb results.
            const int lanes = std::min(pool.threadCount(),
                                       ThreadPool::hardwareThreads());
            // Nested KV-head fan-out only helps while the wave itself
            // undersubscribes those lanes; saturated waves run their
            // units' reductions inline. A function of the wave shape
            // only — outputs are bit-identical either way (the
            // parallelReduceOrdered contract), so this cannot perturb
            // results, only overhead.
            ThreadPool *nested = total < lanes ? &pool : nullptr;
            const auto unit = [&](int i) {
                const UnitRef &u =
                    units[static_cast<std::size_t>(i)];
                u.engine->runCollectedUnit(u.unit, nested);
            };
            const auto t0 = std::chrono::steady_clock::now();
            if (lanes > 1 && total > 1)
                parallelFor(pool, total, unit);
            else
                for (int i = 0; i < total; i++)
                    unit(i);
            if constexpr (obs::kTelemetryEnabled) {
                WaveMetrics &m = WaveMetrics::get();
                m.rounds.add(1);
                m.units.add(static_cast<uint64_t>(total));
                const auto wall_us = static_cast<uint64_t>(
                    std::chrono::duration_cast<
                        std::chrono::microseconds>(
                        std::chrono::steady_clock::now() - t0)
                        .count());
                // Wave width: lanes the hardware could really fill —
                // an oversubscribed pool (threads > cores) cannot
                // compute more than `cores` unit-seconds per second,
                // and charging phantom lanes as idle capacity would
                // inflate the bubble ratio on small hosts.
                const int width = std::min(
                    {pool.threadCount(),
                     ThreadPool::hardwareThreads(), total});
                m.round_capacity_us.add(
                    static_cast<uint64_t>(width) * wall_us);
            }
        }
        for (ModelEngine *e : open)
            e->completeRound();
    }

    // Post-round bookkeeping at the same schedule point the
    // per-session path reaches after its unit, then the byte fold
    // (scheduler-thread sequential — RoundAccounting still commutes,
    // so the total matches per-session mode exactly).
    for (const RoundPlan &p : plans) {
        if (p.prefill_n > 0) {
            p.s->prefilled += p.prefill_n;
            maybePublishPrefix(*p.s, opt, index);
        } else {
            p.s->decoded++;
        }
    }
    for (const auto &sp : active)
        if (sp->engine)
            round.add(sp->engine->bytesUsed());
}

} // namespace

ContinuousBatcher::ContinuousBatcher(BatcherOptions opt) : opt_(opt)
{
    // Admission invariants: a misconfigured batcher must die at
    // construction in every build type, not serve garbage — these
    // are PADE_CHECKs, not asserts, so Release servers fail loudly.
    PADE_CHECK_GT(opt_.max_active, 0);
    PADE_CHECK_GT(opt_.prefill_chunk, 0);
    PADE_CHECK_GE(opt_.layers, 1);
    PADE_CHECK_GE(opt_.heads, 1);
    PADE_CHECK_GE(opt_.kv_heads, 1);
    PADE_CHECK_EQ(opt_.heads % opt_.kv_heads, 0);
}

ServingReport
ContinuousBatcher::run(std::span<const ServingRequest> trace) const
{
    const auto run_t0 = std::chrono::steady_clock::now();

    // Bracket the run in metric snapshots: the delta isolates this
    // run's activity from process-lifetime totals (earlier runs,
    // tests in the same binary). Tracing turns on only when a trace
    // file was requested — recording is otherwise one relaxed load
    // per span site.
    const obs::MetricsSnapshot metrics_before =
        obs::Registry::instance().snapshot();
    if (!opt_.trace_file.empty())
        obs::setTraceEnabled(true);

    ServingReport report;
    report.sessions.resize(trace.size());
    // The admission loop's virtual-clock jumps assume a time-sorted
    // trace; an unsorted one would starve arrivals forever.
    for (std::size_t i = 0; i + 1 < trace.size(); i++)
        PADE_CHECK_LE(trace[i].arrival_ms, trace[i + 1].arrival_ms);

    ThreadPool pool(opt_.threads);
    // One prefix index per run, shared by every slot (internally
    // mutex'd; see serving/prefix_index.h). Streams = layers x
    // kv_heads pages per trie node, row-major by layer — the layout
    // ModelEngine::sharePrefixPages emits.
    std::optional<PrefixIndex> prefix_index;
    if (opt_.prefix_cache) {
        PrefixIndexOptions pio;
        pio.streams = opt_.layers * opt_.kv_heads;
        pio.max_bytes = opt_.prefix_cache_bytes;
        prefix_index.emplace(pio);
    }
    std::vector<std::unique_ptr<Session>> active;
    active.reserve(static_cast<std::size_t>(opt_.max_active));
    std::size_t next = 0;
    // Arrived-but-unadmitted trace indices, drained by priority.
    std::vector<std::size_t> pending;
    int admit_seq = 0;
    double now_ms = 0.0;

    CoscheduleScratch cosched_scratch;
    std::vector<double> latency;
    std::vector<double> ttft;
    std::vector<double> tpot;
    latency.reserve(trace.size());
    ttft.reserve(trace.size());
    tpot.reserve(trace.size());

    while (next < trace.size() || !pending.empty() ||
           !active.empty()) {
        // Stage every arrived request, then admit by priority (higher
        // first), trace order breaking ties — a deterministic policy
        // independent of thread count or round timing jitter in the
        // sense that equal virtual clocks admit equal sets.
        while (next < trace.size() &&
               trace[next].arrival_ms <= now_ms)
            pending.push_back(next++);
        while (!pending.empty() &&
               static_cast<int>(active.size()) < opt_.max_active) {
            const auto best = std::min_element(
                pending.begin(), pending.end(),
                [&](std::size_t a, std::size_t b) {
                    if (trace[a].priority != trace[b].priority)
                        return trace[a].priority > trace[b].priority;
                    return a < b;
                });
            const std::size_t idx = *best;
            pending.erase(best);
            obs::traceInstant(
                "batcher.admit",
                {{"request", static_cast<int64_t>(idx)},
                 {"priority", trace[idx].priority}});
            active.push_back(std::make_unique<Session>(
                trace[idx], idx, now_ms, admit_seq++));
        }
        report.peak_active = std::max(
            report.peak_active, static_cast<int>(active.size()));

        if (active.empty()) {
            // Idle: free slots exist, so pending must be drained —
            // jump the virtual clock to the next arrival. A violation
            // here means the admission loop wedged; fail loudly
            // rather than spin forever.
            PADE_CHECK(pending.empty() && next < trace.size());
            now_ms = std::max(now_ms, trace[next].arrival_ms);
            continue;
        }

        // One scheduling round: every active session advances by one
        // unit, concurrently. The round's host wall time advances the
        // virtual clock, so latency reflects actual machine speed and
        // parallelism.
        const auto t0 = std::chrono::steady_clock::now();
        const obs::ScopedSpan round_span(
            "batcher.round",
            {{"active", static_cast<int64_t>(active.size())},
             {"round", report.rounds}});
        RoundAccounting round;
        PrefixIndex *index = prefix_index ? &*prefix_index : nullptr;
        if (opt_.coschedule) {
            coscheduleRound(active, opt_, pool, round, index,
                            cosched_scratch);
        } else {
            parallelFor(
                pool, static_cast<int>(active.size()), [&](int i) {
                    stepSession(*active[static_cast<std::size_t>(i)],
                                opt_, &pool, round, index);
                });
        }
        now_ms += opt_.fixed_round_ms >= 0.0
                      ? opt_.fixed_round_ms
                      : std::chrono::duration<double, std::milli>(
                            std::chrono::steady_clock::now() - t0)
                            .count();
        report.rounds++;

        // Post-round bookkeeping on the scheduler thread. The round's
        // KV byte total was folded in concurrently as sessions
        // finished stepping (RoundAccounting); first-token times need
        // the round-end virtual clock, so they stay here.
        for (auto &s : active) {
            if (s->decoded >= 1 && s->first_token_ms < 0.0)
                s->first_token_ms = now_ms;
        }
        report.peak_cache_bytes =
            std::max(report.peak_cache_bytes, round.total());

        // Evict finished sessions: record the timeline, free the KV
        // pages, release the slot.
        for (std::size_t i = 0; i < active.size();) {
            Session &s = *active[i];
            if (!s.done()) {
                i++;
                continue;
            }
            SessionStats &st = report.sessions[s.index];
            st.arrival_ms = s.req->arrival_ms;
            st.admit_ms = s.admit_ms;
            st.admit_seq = s.admit_seq;
            st.priority = s.req->priority;
            st.first_token_ms = s.first_token_ms;
            st.finish_ms = now_ms;
            st.prompt_len = s.req->prompt_len;
            st.decode_steps = s.req->decode_steps;
            st.prefix_len = s.req->prefix_len;
            st.prefix_hit_tokens = s.prefix_hit_tokens;
            st.checksum = s.checksum;
            st.prefill_checksum = s.prefill_checksum;

            // Drop the session's reader refs so its prefix nodes
            // become evictable again (the pages themselves die with
            // the last referencing cache).
            if (prefix_index && s.chain_acquired > 0)
                prefix_index->release(s.chain, s.chain_acquired);

            report.tokens_prefilled +=
                static_cast<uint64_t>(s.prefilled);
            report.tokens_decoded += static_cast<uint64_t>(s.decoded);
            report.tokens_prefix_hit +=
                static_cast<uint64_t>(s.prefix_hit_tokens);
            report.prefix_bytes_saved += s.prefix_bytes_saved;
            report.checksum ^= s.checksum;
            report.prefill_checksum ^= s.prefill_checksum;
            latency.push_back(st.finish_ms - st.arrival_ms);
            // Prefill-only sessions never decode a token; they count
            // toward latency but not TTFT (nor TPOT, which further
            // needs a second token to measure a gap).
            if (s.first_token_ms >= 0.0)
                ttft.push_back(st.first_token_ms - st.arrival_ms);
            if (s.first_token_ms >= 0.0 && s.decoded >= 2)
                tpot.push_back((st.finish_ms - st.first_token_ms) /
                               static_cast<double>(s.decoded - 1));
            if constexpr (obs::kTelemetryEnabled) {
                // Per-session latency series as histograms (µs):
                // snapshot deltas carry the distribution shape even
                // where the report object itself is unavailable.
                obs::Registry::instance()
                    .histogram("serving.latency_us")
                    .record(latency.back() * 1000.0);
                if (s.first_token_ms >= 0.0)
                    obs::Registry::instance()
                        .histogram("serving.ttft_us")
                        .record(ttft.back() * 1000.0);
                if (!tpot.empty() && s.first_token_ms >= 0.0 &&
                    s.decoded >= 2)
                    obs::Registry::instance()
                        .histogram("serving.tpot_us")
                        .record(tpot.back() * 1000.0);
            }
            obs::traceInstant(
                "batcher.finish",
                {{"request", static_cast<int64_t>(s.index)},
                 {"decoded", s.decoded}});

            active.erase(active.begin() +
                         static_cast<std::ptrdiff_t>(i));
        }
    }

    if (prefix_index)
        report.prefix = prefix_index->stats();
    report.latency_ms = Percentiles::of(latency);
    report.ttft_ms = Percentiles::of(ttft);
    report.tpot_ms = Percentiles::of(tpot);
    report.makespan_ms = now_ms;
    report.wall_ms = std::chrono::duration<double, std::milli>(
        std::chrono::steady_clock::now() - run_t0).count();
    report.decode_tok_per_s = report.wall_ms > 0.0
        ? static_cast<double>(report.tokens_decoded) /
            (report.wall_ms / 1000.0)
        : 0.0;

    // Close the telemetry bracket: derive the run-level ratios from
    // the metric delta, serialize the blob, flush the trace. Values
    // stay zero when PADE_TELEMETRY=OFF (the counters never move).
    const obs::MetricsSnapshot metrics_delta =
        obs::MetricsSnapshot::delta(
            metrics_before, obs::Registry::instance().snapshot());
    const double busy_us = static_cast<double>(
        metrics_delta.counter("model.unit_busy_us"));
    const double capacity_us = static_cast<double>(
        metrics_delta.counter("model.round_capacity_us"));
    if (capacity_us > 0.0)
        report.pipeline_bubble_ratio =
            std::clamp(1.0 - busy_us / capacity_us, 0.0, 1.0);
    // Tokens the run appended *privately* (prefix-adopted pages are
    // aliased, not appended), at model granularity: one position =
    // layers x kv_heads cache appends, all counted in bytes_appended.
    const double appended_tokens = static_cast<double>(
        report.tokens_prefilled - report.tokens_prefix_hit +
        report.tokens_decoded);
    if (appended_tokens > 0.0)
        report.kv_bytes_per_token =
            static_cast<double>(
                metrics_delta.counter("kv.bytes_appended")) /
            appended_tokens;
    report.telemetry = telemetryReportJson(metrics_delta, report);
    if (!opt_.trace_file.empty()) {
        obs::setTraceEnabled(false);
        obs::writeChromeTrace(opt_.trace_file);
    }
    return report;
}

} // namespace pade

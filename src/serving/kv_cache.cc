#include "serving/kv_cache.h"

namespace pade {

KvCache::Page::Page(const KvCacheConfig &cfg)
    : planes(cfg.head_dim, cfg.bits, cfg.page_tokens),
      values(cfg.page_tokens, cfg.head_dim)
{
    work.reserve(static_cast<std::size_t>(cfg.page_tokens) * cfg.bits);
}

KvCache::KvCache(const KvCacheConfig &cfg) : cfg_(cfg)
{
    PADE_CHECK_GT(cfg_.head_dim, 0);
    PADE_CHECK_GT(cfg_.page_tokens, 0);
    PADE_CHECK_GE(cfg_.bits, 2);
    PADE_CHECK_LE(cfg_.bits, 8);
}

void
KvCache::appendToken(std::span<const int8_t> k_row,
                     std::span<const int8_t> v_row)
{
    PADE_CHECK_EQ(static_cast<int>(k_row.size()), cfg_.head_dim);
    PADE_CHECK_EQ(static_cast<int>(v_row.size()), cfg_.head_dim);

    if (pages_.empty() ||
        pages_.back().planes.numRows() == cfg_.page_tokens)
        pages_.emplace_back(cfg_);
    Page &page = pages_.back();

    const int row = page.planes.numRows();
    page.planes.appendToken(k_row);

    // The exact float expression padeAttention's value stage sees
    // (dequantize(): scale * int8), so incremental softmax
    // accumulation is bit-identical to the batch path.
    auto vout = page.values.row(row);
    for (int d = 0; d < cfg_.head_dim; d++)
        vout[d] = cfg_.v_scale * v_row[d];

    // PlaneWork is query-independent: computing it here amortizes the
    // per-call table rebuild padeAttention pays, once per token.
    for (int r = 0; r < cfg_.bits; r++)
        page.work.push_back(planeWork(page.planes, row, r,
                                      cfg_.subgroup, cfg_.muxes));
    tokens_++;
}

void
KvCache::dropPagesBefore(int token)
{
    PADE_CHECK_GE(token, 0);
    // Whole pages only: the page containing `token` (and any partial
    // tail) always survives. token / page_tokens is the first page
    // with a row >= token, so everything strictly below it is dead.
    const int target = std::min(token, tokens_) / cfg_.page_tokens;
    while (first_live_page_ < target && !pages_.empty()) {
        pages_.pop_front();
        first_live_page_++;
    }
}

std::size_t
KvCache::bytesUsed() const
{
    if (pages_.empty())
        return 0;
    // Pages allocate/reserve their full fixed capacity at creation
    // (values eagerly, planes and work via reserve), so resident
    // memory is a per-page constant. Read the plane geometry off a
    // live page rather than re-deriving BitPlaneSet's layout — the
    // stride is that class's implementation detail.
    const BitPlaneSet &planes = pages_.front().planes;
    const std::size_t per_page =
        static_cast<std::size_t>(cfg_.page_tokens) *
        (static_cast<std::size_t>(planes.numPlanes()) *
             planes.planeStride() * sizeof(uint64_t) +
         static_cast<std::size_t>(cfg_.head_dim) * sizeof(float) +
         static_cast<std::size_t>(cfg_.bits) * sizeof(PlaneWork));
    return pages_.size() * per_page;
}

} // namespace pade

#include "serving/kv_cache.h"

#include <algorithm>

#include "obs/telemetry.h"

namespace pade {

namespace {

// Byte-flow telemetry (docs/OBSERVABILITY.md): where KV memory goes —
// appended privately, aliased from the prefix index, or reclaimed by
// eviction. Page-granular by design: bytes move at page granularity
// (a page's storage is committed when the page opens).
struct KvMetrics
{
    obs::Counter &tokens_appended;
    obs::Counter &pages_opened;
    obs::Counter &bytes_appended;
    obs::Counter &pages_adopted;
    obs::Counter &bytes_shared;
    obs::Counter &pages_reclaimed;
    obs::Counter &bytes_reclaimed;

    static KvMetrics &
    get()
    {
        static KvMetrics m{
            obs::Registry::instance().counter("kv.tokens_appended"),
            obs::Registry::instance().counter("kv.pages_opened"),
            obs::Registry::instance().counter("kv.bytes_appended"),
            obs::Registry::instance().counter("kv.pages_adopted"),
            obs::Registry::instance().counter("kv.bytes_shared"),
            obs::Registry::instance().counter("kv.pages_reclaimed"),
            obs::Registry::instance().counter("kv.bytes_reclaimed"),
        };
        return m;
    }
};

} // namespace

KvPage::KvPage(const KvCacheConfig &config)
    : cfg(config), planes(config.head_dim, config.bits,
                          config.page_tokens),
      values(config.page_tokens, config.head_dim)
{
    work.reserve(static_cast<std::size_t>(config.page_tokens) *
                 config.bits);
}

std::size_t
kvPageBytes(const KvPage &page)
{
    return static_cast<std::size_t>(page.cfg.page_tokens) *
        (static_cast<std::size_t>(page.planes.numPlanes()) *
             page.planes.planeStride() * sizeof(uint64_t) +
         static_cast<std::size_t>(page.cfg.head_dim) * sizeof(float) +
         static_cast<std::size_t>(page.cfg.bits) * sizeof(PlaneWork));
}

KvCache::KvCache(const KvCacheConfig &cfg) : cfg_(cfg)
{
    PADE_CHECK_GT(cfg_.head_dim, 0);
    PADE_CHECK_GT(cfg_.page_tokens, 0);
    PADE_CHECK_GE(cfg_.bits, 2);
    PADE_CHECK_LE(cfg_.bits, 8);
}

void
KvCache::appendToken(std::span<const int8_t> k_row,
                     std::span<const int8_t> v_row)
{
    PADE_CHECK_EQ(static_cast<int>(k_row.size()), cfg_.head_dim);
    PADE_CHECK_EQ(static_cast<int>(v_row.size()), cfg_.head_dim);

    // The mutable tail is the only writable page. It goes away when
    // it fills (full pages are immutable — the sharing contract), when
    // a shared page was adopted, or when eviction popped it.
    if (!tail_ || tail_->full()) {
        tail_ = std::make_shared<KvPage>(cfg_);
        pages_.push_back(tail_);
        if constexpr (obs::kTelemetryEnabled) {
            KvMetrics::get().pages_opened.add(1);
            KvMetrics::get().bytes_appended.add(kvPageBytes(*tail_));
        }
    }
    if constexpr (obs::kTelemetryEnabled)
        KvMetrics::get().tokens_appended.add(1);
    KvPage &page = *tail_;

    const int row = page.used();
    page.planes.appendToken(k_row);

    // The exact float expression padeAttention's value stage sees
    // (dequantize(): scale * int8), so incremental softmax
    // accumulation is bit-identical to the batch path.
    auto vout = page.values.row(row);
    for (int d = 0; d < cfg_.head_dim; d++)
        vout[d] = cfg_.v_scale * v_row[d];

    // PlaneWork is query-independent: computing it here amortizes the
    // per-call table rebuild padeAttention pays, once per token.
    for (int r = 0; r < cfg_.bits; r++)
        page.work.push_back(planeWork(page.planes, row, r,
                                      cfg_.subgroup, cfg_.muxes));
    tokens_++;
}

void
KvCache::adoptSharedPage(std::shared_ptr<const KvPage> page)
{
    PADE_CHECK(page != nullptr);
    // Adoption is only legal at a page boundary (no partial private
    // tail to splice around) and for a bit-compatible page: the
    // packed planes, dequantized values, and PlaneWork entries were
    // all derived under the producer's config, so every field must
    // match for the alias to be numerically transparent.
    PADE_CHECK_EQ(tokens_ % cfg_.page_tokens, 0);
    PADE_CHECK(page->full());
    PADE_CHECK_EQ(page->cfg.head_dim, cfg_.head_dim);
    PADE_CHECK_EQ(page->cfg.bits, cfg_.bits);
    PADE_CHECK_EQ(page->cfg.page_tokens, cfg_.page_tokens);
    PADE_CHECK_EQ(page->cfg.subgroup, cfg_.subgroup);
    PADE_CHECK_EQ(page->cfg.muxes, cfg_.muxes);
    PADE_CHECK(page->cfg.v_scale == cfg_.v_scale);

    if constexpr (obs::kTelemetryEnabled) {
        KvMetrics::get().pages_adopted.add(1);
        KvMetrics::get().bytes_shared.add(kvPageBytes(*page));
    }
    pages_.push_back(std::move(page));
    tail_.reset(); // the back page is shared: never writable
    tokens_ += cfg_.page_tokens;
}

std::shared_ptr<const KvPage>
KvCache::sharePage(int page) const
{
    PADE_CHECK_GE(page, first_live_page_);
    PADE_CHECK_LT(page, numPages());
    const auto &slot =
        pages_[static_cast<std::size_t>(page - first_live_page_)];
    PADE_CHECK(slot != nullptr);
    // Only full pages are immutable; sharing the mutable tail would
    // let a later append mutate another cache's (or the index's) view.
    PADE_CHECK(slot->full());
    return slot;
}

void
KvCache::dropPagesBefore(int token)
{
    PADE_CHECK_GE(token, 0);
    // Whole pages only: the page containing `token` (and any partial
    // tail) always survives. token / page_tokens is the first page
    // with a row >= token, so everything strictly below it is dead.
    const int target = std::min(token, tokens_) / cfg_.page_tokens;
    while (first_live_page_ < target && !pages_.empty()) {
        if (pages_.front().get() == tail_.get())
            tail_.reset(); // evicting the append frontier itself
        if constexpr (obs::kTelemetryEnabled) {
            if (pages_.front()) {
                KvMetrics::get().pages_reclaimed.add(1);
                KvMetrics::get().bytes_reclaimed.add(
                    kvPageBytes(*pages_.front()));
            }
        }
        pages_.pop_front();
        first_live_page_++;
    }
}

void
KvCache::dropPagesIn(int first_token, int last_token)
{
    PADE_CHECK_GE(first_token, 0);
    PADE_CHECK_GE(last_token, first_token);
    // A page dies only when EVERY one of its tokens lies inside
    // [first_token, last_token). The final slot — the append frontier
    // — always survives so appendToken never resurrects a reclaimed
    // slot; front pages are dropPagesBefore's territory but are
    // accepted here too (the slot nulls in place, indices hold).
    const int last = std::min(last_token, tokens_);
    const int first_page =
        (first_token + cfg_.page_tokens - 1) / cfg_.page_tokens;
    const int end_page = last / cfg_.page_tokens; // exclusive
    const int lo = std::max(first_page, first_live_page_);
    const int hi = std::min(end_page, numPages() - 1);
    for (int p = lo; p < hi; p++) {
        auto &slot =
            pages_[static_cast<std::size_t>(p - first_live_page_)];
        if constexpr (obs::kTelemetryEnabled) {
            if (slot) {
                KvMetrics::get().pages_reclaimed.add(1);
                KvMetrics::get().bytes_reclaimed.add(
                    kvPageBytes(*slot));
            }
        }
        slot.reset();
    }
}

int
KvCache::livePages() const
{
    int live = 0;
    for (const auto &slot : pages_)
        live += slot != nullptr;
    return live;
}

std::size_t
KvCache::bytesUsed() const
{
    std::size_t bytes = 0;
    for (const auto &slot : pages_)
        if (slot)
            bytes += kvPageBytes(*slot);
    return bytes;
}

} // namespace pade

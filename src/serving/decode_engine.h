/**
 * @file
 * Incremental PADE attention over a paged KV cache — single-query,
 * grouped-query (GQA), and scored chunked-prefill execution.
 *
 * One DecodeEngine owns the reusable state of one KV-head stream
 * (packed query planes, online-softmax accumulator, scan-order /
 * retained-id buffers, per-query-head scratch) and runs the exact
 * `padeAttention` algorithm — BSF plane streaming, BUI-GF guarded
 * termination, ISTA stage-fused softmax·V — against the tokens of a
 * `KvCache`.
 *
 * Three entry points share one inner loop:
 *
 *  - step(): one query row attends over every cached token (the PR 4
 *    decode contract, unchanged);
 *  - stepGroup(): a block of heads/kv_heads grouped query rows
 *    attends over the ONE shared cache of their KV head. The scan is
 *    key-outer / query-head-inner, so the per-key page lookup, packed
 *    plane row, and cached PlaneWork entries are fetched once and
 *    reused across the whole group — the per-token plane table is a
 *    KV-head property, never re-derived per query head;
 *  - prefillGroup(): the grouped rows are *prompt* positions. The key
 *    scan runs over the ISTA order of the FULL prompt length with a
 *    causal skip at the query position, so chunk-by-chunk prefill
 *    visits, retains, and tiles keys in exactly the order a
 *    whole-prompt causal `padeAttention` call would.
 *
 * Exactness contracts (enforced by tests/test_serving.cc and
 * tests/test_layer_engine.cc for kScalar / kPopcount / kSimd):
 *
 *  - step() over a cache holding rows 0..S-1 produces the same output
 *    row, keep mask, planes-consumed trace, retained-id list, and
 *    PruneStats deltas, bit for bit, as a from-scratch pack + batch
 *    `padeAttention` call with a single query;
 *  - stepGroup() is bit-identical, per query head, to running step()
 *    for that head against its own private copy of the cache — the
 *    grouped loop shares lookups, never arithmetic state;
 *  - prefillGroup() across any chunking is bit-identical, per query
 *    head, to one whole-prompt `padeAttention` call with
 *    `cfg.causal = true`.
 *
 * The kernel seam is the same as batch attention:
 * `PadeConfig::qk_kernel` is resolved through `resolveQkKernel()`
 * every step, so kScalar / kPopcount / kSimd (and the PADE_QK_KERNEL
 * override) all apply unchanged.
 *
 * Complexity: a full-history step is O(context) (every cached token
 * is scanned). A retention-windowed step is O(sink + recency) —
 * independent of context length — because both the scan order and
 * the scratch-clearing are generated over the live window only (see
 * RetentionPolicy below); us/token stays flat as the stream grows.
 */

#ifndef PADE_SERVING_DECODE_ENGINE_H
#define PADE_SERVING_DECODE_ENGINE_H

#include <algorithm>
#include <cstdint>
#include <span>
#include <vector>

#include "attention/online_softmax.h"
#include "common/check.h"
#include "core/bui.h"
#include "core/guard_filter.h"
#include "core/pade_attention.h"
#include "core/simd/qk_avx2.h"
#include "serving/kv_cache.h"
#include "tensor/matrix.h"

namespace pade {

/**
 * StreamingLLM-style sink + recency retention window.
 *
 * When active (recency_tokens > 0), a decode scan only visits tokens
 * inside the retained window — the first `sink_tokens` positions (the
 * attention sinks StreamingLLM keeps alive) plus the trailing
 * `recency_tokens` positions — and `applyRetention()` reclaims KV
 * pages that fall wholly outside it. Retained-window decode over an
 * un-evicted cache is bit-identical to full-history decode whenever
 * the window covers the whole history (the no-eviction parity test).
 *
 * Page reclamation only happens from the front of the stream
 * (KvCache::dropPagesBefore), so memory is actually returned when
 * sink_tokens tokens fit inside pages that also hold live recency
 * tokens — in practice, when sink_tokens == 0 (pure sliding window)
 * or the stream is short. With sinks pinned in page 0, the policy
 * still skips the dead middle's *scoring* — the plane deltas, guard
 * checks, and PlaneWork accounting that dominate per-token cost.
 *
 * Iteration is windowed too: when the policy is active, each step
 * generates only the live subsequence of the ISTA scan order (the
 * sink/recency overload of istaScanOrderInto()) and clears only the
 * scratch entries its previous step wrote, so per-token cost is
 * O(sink + recency) regardless of context length — the dead middle
 * costs nothing, not even a skip test or memset. The windowed order
 * is the exact subsequence the full order's per-key window skip
 * would visit, so outputs stay bit-identical to full-order decode,
 * and bit-identical to an UN-windowed engine whenever the window
 * covers the whole stream (the no-eviction parity test).
 */
struct RetentionPolicy
{
    int sink_tokens = 0;    //!< head-of-stream tokens always kept
    int recency_tokens = 0; //!< trailing window; 0 disables the policy

    bool enabled() const { return recency_tokens > 0; }

    /** True when token @p token of a @p size -token stream is kept. */
    bool
    keeps(int token, int size) const
    {
        return token < sink_tokens || token >= size - recency_tokens;
    }

    /** First token of the recency window (eviction horizon). */
    int
    horizon(int size) const
    {
        return std::max(0, size - recency_tokens);
    }

    /**
     * Tokens strictly below this bound are dead AND unpinned: pages
     * before it may be dropped. 0 (nothing evictable) whenever sink
     * tokens pin the head of the stream.
     */
    int
    evictableBefore(int size) const
    {
        return sink_tokens > 0 ? 0 : horizon(size);
    }
};

/** Per-step accounting returned by the decode/prefill entry points. */
struct DecodeStep
{
    int keys = 0;        //!< tokens scanned per query head this step
    int retained = 0;    //!< retentions summed over the group's heads
    uint64_t planes = 0; //!< bit planes consumed this step (group sum)
};

/**
 * Reusable incremental decoder for one KV-head stream and the query
 * heads grouped onto it.
 */
class DecodeEngine
{
  public:
    explicit DecodeEngine(PadeConfig cfg = {},
                          RetentionPolicy retention = {});

    const PadeConfig &config() const { return cfg_; }
    const RetentionPolicy &retention() const { return retention_; }

    /**
     * Run one guarded decode step: the query @p q (int8, head_dim
     * values) attends over every cached token; the attention output
     * lands in @p out (head_dim floats).
     *
     * @param logit_scale integer-score -> logit factor
     *        (sQ * sK / sqrt(H), QuantizedHead::logit_scale)
     */
    DecodeStep step(const KvCache &cache, std::span<const int8_t> q,
                    float logit_scale, std::span<float> out);

    /**
     * Grouped-query decode: rows q_row0 .. q_row0+group-1 of @p q are
     * the group's query heads (all sharing this engine's KV head);
     * each attends over every cached token, writing output rows
     * out_row0 .. out_row0+group-1 of @p out. Per head, bit-identical
     * to step() against a private copy of the cache.
     */
    DecodeStep stepGroup(const KvCache &cache, const MatrixI8 &q,
                         int q_row0, int group, float logit_scale,
                         MatrixF &out, int out_row0);

    /**
     * Scored chunked prefill of one prompt position: the group's
     * query rows sit at absolute position @p qpos of a @p prompt_len
     * -token prompt whose tokens up to at least qpos are already in
     * the cache. Keys are visited in the ISTA order of the FULL
     * prompt with a causal skip past qpos, so any chunking reproduces
     * the whole-prompt causal padeAttention result bit for bit.
     */
    DecodeStep prefillGroup(const KvCache &cache, const MatrixI8 &q,
                            int q_row0, int group, int qpos,
                            int prompt_len, float logit_scale,
                            MatrixF &out, int out_row0);

    /**
     * Reclaim cache pages the retention policy has aged out (no-op
     * when the policy is disabled). Sink-free windows free from the
     * stream front; sink-pinned streams free the dead *middle* —
     * whole pages lying strictly between the pinned sink tokens and
     * the recency horizon — via KvCache::dropPagesIn, so retention
     * actually returns memory even when page 0 must stay resident.
     */
    void
    applyRetention(KvCache &cache) const
    {
        if (!retention_.enabled())
            return;
        const int size = cache.size();
        cache.dropPagesBefore(retention_.evictableBefore(size));
        // Dead middle exists only once the recency horizon has moved
        // past the pinned sinks (early in a stream it hasn't).
        if (retention_.sink_tokens > 0 &&
            retention_.horizon(size) > retention_.sink_tokens)
            cache.dropPagesIn(retention_.sink_tokens,
                              retention_.horizon(size));
    }

    /** Pruning statistics accumulated across all steps (group sums). */
    const PruneStats &stats() const { return stats_; }

    /** Query heads of the last step (1 for step()). */
    int lastGroup() const { return group_; }

    /** Retained token ids of head @p g last step, in scan order. */
    std::span<const int>
    lastRetained(int g = 0) const
    {
        return headRef(g).retained;
    }
    /** Planes consumed per token by head @p g last step: value r
     *  means planes 0..r-1 were consumed before retention/pruning;
     *  0 means the token was never visited (causally masked, outside
     *  the retention window, or evicted) — matching padeAttention's
     *  PadeResult::planes row. */
    std::span<const uint8_t>
    lastPlanes(int g = 0) const
    {
        return headRef(g).planes;
    }
    /** Keep mask of head @p g last step (1 = retained). */
    std::span<const uint8_t>
    lastKeep(int g = 0) const
    {
        return headRef(g).keep;
    }

  private:
    /** Per-query-head scratch, persistent across steps (grow-only). */
    struct HeadState
    {
        QueryPlanes qplanes;
        simd::QPlaneView qview{};
        BuiTable bui;
        GuardFilter guard{1.0, 0.0, 1.0};
        std::vector<int> retained;
        std::vector<int64_t> retained_scores;
        std::vector<uint8_t> planes;
        std::vector<uint8_t> keep;
        /** Positions the last windowed step may have written into
         *  planes/keep — what the next step must undo instead of a
         *  full-length clear (unused by full-history engines, which
         *  re-assign the whole span). */
        std::vector<int> touched;
    };

    const HeadState &
    headRef(int g) const
    {
        PADE_DCHECK(g >= 0 && g < group_);
        return heads_[static_cast<std::size_t>(g)];
    }

    /**
     * Shared inner loop: the queries staged in qs_ attend over cached
     * tokens j <= qpos, visited in istaScanOrder(order_len) order,
     * writing the rows staged in outs_.
     */
    DecodeStep runGroup(const KvCache &cache, int qpos, int order_len,
                        float logit_scale);

    PadeConfig cfg_;
    RetentionPolicy retention_;
    PruneStats stats_;
    int group_ = 0; //!< heads of the last step

    // Reusable buffers: after the first step at a given context
    // length and group size, the scan path allocates nothing.
    std::vector<std::span<const int8_t>> qs_;
    std::vector<std::span<float>> outs_;
    std::vector<HeadState> heads_;
    OnlineSoftmaxRow softmax_{0};
    std::vector<int> order_;
    std::vector<float> tile_scores_;
    std::vector<std::span<const float>> tile_rows_;
};

} // namespace pade

#endif // PADE_SERVING_DECODE_ENGINE_H

/**
 * @file
 * Single-query incremental PADE attention over a paged KV cache.
 *
 * One DecodeEngine owns a decode session's reusable state (packed
 * query planes, online-softmax accumulator, scan-order / retained-id
 * buffers) and runs the exact `padeAttention` algorithm — BSF plane
 * streaming, BUI-GF guarded termination, ISTA stage-fused softmax·V —
 * for one query row against every token in a `KvCache`.
 *
 * Exactness contract (enforced by tests/test_serving.cc for all three
 * QK kernels): `step()` over a cache holding rows 0..S-1 produces the
 * same output row, keep mask, planes-consumed trace, retained-id list,
 * and PruneStats deltas, bit for bit, as a from-scratch
 * `BitPlaneSet` pack of those rows plus a `padeAttention` call with a
 * single query. The only difference is cost: the cache already holds
 * the packed history and its PlaneWork table, so a step does
 * O(S) scan work but zero re-packing.
 *
 * The kernel seam is the same as batch attention:
 * `PadeConfig::qk_kernel` is resolved through `resolveQkKernel()`
 * every step, so kScalar / kPopcount / kSimd (and the PADE_QK_KERNEL
 * override) all apply unchanged.
 */

#ifndef PADE_SERVING_DECODE_ENGINE_H
#define PADE_SERVING_DECODE_ENGINE_H

#include <cstdint>
#include <span>
#include <vector>

#include "attention/online_softmax.h"
#include "core/pade_attention.h"
#include "serving/kv_cache.h"

namespace pade {

/** Per-step accounting returned by DecodeEngine::step(). */
struct DecodeStep
{
    int keys = 0;              //!< tokens scanned (cache size)
    int retained = 0;          //!< tokens surviving the guard filter
    uint64_t planes = 0;       //!< bit planes consumed this step
};

/**
 * Reusable incremental decoder for one attention-head stream.
 */
class DecodeEngine
{
  public:
    explicit DecodeEngine(PadeConfig cfg = {});

    const PadeConfig &config() const { return cfg_; }

    /**
     * Run one guarded decode step: the query @p q (int8, head_dim
     * values) attends over every cached token; the attention output
     * lands in @p out (head_dim floats).
     *
     * @param logit_scale integer-score -> logit factor
     *        (sQ * sK / sqrt(H), QuantizedHead::logit_scale)
     */
    DecodeStep step(const KvCache &cache, std::span<const int8_t> q,
                    float logit_scale, std::span<float> out);

    /** Pruning statistics accumulated across all steps. */
    const PruneStats &stats() const { return stats_; }

    /** Retained token ids of the last step, in ISTA scan order. */
    std::span<const int> lastRetained() const { return retained_; }
    /** Planes consumed per token last step: value r means planes
     *  0..r-1 were consumed before retention/pruning (every token is
     *  visited, so entries are >= 1 — matching padeAttention's
     *  PadeResult::planes row for a single uncausal query). */
    std::span<const uint8_t> lastPlanes() const { return planes_; }
    /** Keep mask of the last step (1 = retained). */
    std::span<const uint8_t> lastKeep() const { return keep_; }

  private:
    PadeConfig cfg_;
    PruneStats stats_;

    // Reusable per-step buffers: after the first step at a given
    // context length, step() allocates nothing on the scan path.
    QueryPlanes qplanes_;
    OnlineSoftmaxRow softmax_{0};
    std::vector<int> order_;
    std::vector<int> retained_;
    std::vector<int64_t> retained_scores_;
    std::vector<uint8_t> planes_;
    std::vector<uint8_t> keep_;
    std::vector<float> tile_scores_;
    std::vector<std::span<const float>> tile_rows_;
};

} // namespace pade

#endif // PADE_SERVING_DECODE_ENGINE_H

#include "serving/decode_engine.h"

#include <algorithm>
#include <cassert>

#include "core/bui.h"
#include "core/guard_filter.h"
#include "core/simd/qk_avx2.h"

namespace pade {

DecodeEngine::DecodeEngine(PadeConfig cfg) : cfg_(cfg)
{
}

DecodeStep
DecodeEngine::step(const KvCache &cache, std::span<const int8_t> q,
                   float logit_scale, std::span<float> out)
{
    const KvCacheConfig &kc = cache.config();
    const int s = cache.size();
    const int h = kc.head_dim;
    const int bits = kc.bits;
    assert(static_cast<int>(q.size()) == h);
    assert(static_cast<int>(out.size()) == h);
    // The cached PlaneWork entries were computed with the cache's GSAT
    // geometry; the stats are only comparable to padeAttention when
    // the algorithm config agrees.
    assert(cfg_.subgroup == kc.subgroup && cfg_.muxes == kc.muxes);

    // Same per-call dispatch decision as padeAttention: config request
    // + PADE_QK_KERNEL override + capability clamp.
    const QkKernel kernel = resolveQkKernel(cfg_.qk_kernel);
    const bool packed_qk = kernel != QkKernel::kScalar;
    if (packed_qk)
        qplanes_.assign(q);
    const bool simd_qk = kernel == QkKernel::kSimd;
    const simd::QPlaneView qview =
        simd_qk ? qplanes_.simdView() : simd::QPlaneView{};

    const BuiTable bui = computeBuiTable(q, bits);
    GuardFilter guard(cfg_.alpha, cfg_.radius, logit_scale);

    istaScanOrderInto(s, cfg_.tile_bc, cfg_.head_tail, order_);
    planes_.assign(static_cast<std::size_t>(s), 0);
    keep_.assign(static_cast<std::size_t>(s), 0);
    retained_.clear();
    retained_scores_.clear();

    DecodeStep res;
    res.keys = s;
    const uint64_t planes_before = stats_.planes_processed;

    // The padeAttention inner loop, with the global key index mapped
    // onto (page, page-local row). A single query at the stream tail
    // sees every cached token, so no causal skip applies.
    for (int j : order_) {
        const int page = cache.pageOf(j);
        const int local = cache.rowOf(j);
        const BitPlaneSet &kp = cache.pagePlanes(page);
        const PlaneWork *wrow = cache.pageWork(page).data() +
            static_cast<std::size_t>(local) * bits;
        stats_.keys_total++;
        stats_.planes_total += static_cast<uint64_t>(bits);

        int64_t score = 0;
        bool pruned = false;
        for (int r = 0; r < bits; r++) {
            score += simd_qk
                ? static_cast<int64_t>(kp.planeWeight(r)) *
                    simd::maskedSumAvx2(qview,
                                        kp.plane(local, r).data(),
                                        kp.wordsPerPlane())
                : packed_qk ? planeDelta(qplanes_, kp, local, r)
                            : planeDeltaScalar(q, kp, local, r);
            planes_[static_cast<std::size_t>(j)] =
                static_cast<uint8_t>(r + 1);
            stats_.planes_processed++;

            const PlaneWork &w = wrow[r];
            stats_.ops_bs += static_cast<uint64_t>(w.selected_bs);
            stats_.ops_naive += static_cast<uint64_t>(w.selected_naive);

            guard.observe(score + bui.lower(r));
            if (cfg_.guard_enabled &&
                guard.shouldPrune(score + bui.upper(r))) {
                pruned = true;
                break;
            }
        }
        if (!pruned) {
            keep_[static_cast<std::size_t>(j)] = 1;
            stats_.keys_retained++;
            retained_.push_back(j);
            retained_scores_.push_back(score);
        }
    }
    stats_.threshold_updates += guard.updates();
    res.retained = static_cast<int>(retained_.size());
    res.planes = stats_.planes_processed - planes_before;

    // ISTA value stage over the retained tokens, tiled by Bc in scan
    // order — the identical float sequence to padeAttention's
    // update(scores, vf, ids) path, with value rows gathered from the
    // cache pages instead of one contiguous matrix.
    softmax_.reset(h);
    tile_scores_.resize(static_cast<std::size_t>(cfg_.tile_bc));
    for (std::size_t base = 0; base < retained_.size();
         base += static_cast<std::size_t>(cfg_.tile_bc)) {
        const std::size_t hi =
            std::min(retained_.size(),
                     base + static_cast<std::size_t>(cfg_.tile_bc));
        const std::size_t n = hi - base;
        tile_rows_.resize(n);
        for (std::size_t t = 0; t < n; t++) {
            tile_scores_[t] = logit_scale *
                static_cast<float>(retained_scores_[base + t]);
            tile_rows_[t] = cache.valueRow(retained_[base + t]);
        }
        softmax_.update(
            std::span<const float>(tile_scores_).first(n), tile_rows_);
    }
    stats_.max_updates += softmax_.maxUpdates();
    stats_.rescale_ops += softmax_.rescaleOps();
    softmax_.finalizeInto(out);
    return res;
}

} // namespace pade

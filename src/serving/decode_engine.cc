#include "serving/decode_engine.h"

#include "common/check.h"
#include "core/bit_serial.h"
#include "obs/telemetry.h"

namespace pade {

namespace {

// Per-step decode telemetry: pruning effectiveness and kernel
// dispatch mix (docs/OBSERVABILITY.md). References cached once; the
// recording cost is a handful of relaxed adds per *step*, never per
// key.
struct DecodeMetrics
{
    obs::Counter &steps;
    obs::Counter &keys_scanned;
    obs::Counter &keys_retained;
    obs::Counter &planes_consumed;
    obs::Counter &planes_total;
    obs::Counter &dispatch_scalar;
    obs::Counter &dispatch_popcount;
    obs::Counter &dispatch_simd;

    static DecodeMetrics &
    get()
    {
        static DecodeMetrics m{
            obs::Registry::instance().counter("decode.steps"),
            obs::Registry::instance().counter("decode.keys_scanned"),
            obs::Registry::instance().counter("decode.keys_retained"),
            obs::Registry::instance().counter(
                "decode.planes_consumed"),
            obs::Registry::instance().counter("decode.planes_total"),
            obs::Registry::instance().counter("qk.dispatch_scalar"),
            obs::Registry::instance().counter("qk.dispatch_popcount"),
            obs::Registry::instance().counter("qk.dispatch_simd"),
        };
        return m;
    }
};

} // namespace

DecodeEngine::DecodeEngine(PadeConfig cfg, RetentionPolicy retention)
    : cfg_(cfg), retention_(retention)
{
    PADE_CHECK_GE(retention_.sink_tokens, 0);
    PADE_CHECK_GE(retention_.recency_tokens, 0);
}

DecodeStep
DecodeEngine::step(const KvCache &cache, std::span<const int8_t> q,
                   float logit_scale, std::span<float> out)
{
    qs_.assign(1, q);
    outs_.assign(1, out);
    // A decode query sits at the stream tail: it sees every cached
    // token, and the scan order spans exactly the cache.
    return runGroup(cache, cache.size() - 1, cache.size(),
                    logit_scale);
}

DecodeStep
DecodeEngine::stepGroup(const KvCache &cache, const MatrixI8 &q,
                        int q_row0, int group, float logit_scale,
                        MatrixF &out, int out_row0)
{
    PADE_CHECK_GE(group, 1);
    qs_.resize(static_cast<std::size_t>(group));
    outs_.resize(static_cast<std::size_t>(group));
    for (int g = 0; g < group; g++) {
        qs_[static_cast<std::size_t>(g)] = q.row(q_row0 + g);
        outs_[static_cast<std::size_t>(g)] = out.row(out_row0 + g);
    }
    return runGroup(cache, cache.size() - 1, cache.size(),
                    logit_scale);
}

DecodeStep
DecodeEngine::prefillGroup(const KvCache &cache, const MatrixI8 &q,
                           int q_row0, int group, int qpos,
                           int prompt_len, float logit_scale,
                           MatrixF &out, int out_row0)
{
    PADE_CHECK_GE(group, 1);
    PADE_CHECK_GE(qpos, 0);
    PADE_CHECK_LT(qpos, prompt_len);
    // The chunk containing qpos must already be appended; later
    // prompt tokens may or may not be — the causal skip masks both
    // the not-yet-cached tail and the in-cache tokens past qpos.
    PADE_CHECK_GT(cache.size(), qpos);
    qs_.resize(static_cast<std::size_t>(group));
    outs_.resize(static_cast<std::size_t>(group));
    for (int g = 0; g < group; g++) {
        qs_[static_cast<std::size_t>(g)] = q.row(q_row0 + g);
        outs_[static_cast<std::size_t>(g)] = out.row(out_row0 + g);
    }
    return runGroup(cache, qpos, prompt_len, logit_scale);
}

DecodeStep
DecodeEngine::runGroup(const KvCache &cache, int qpos, int order_len,
                       float logit_scale)
{
    const KvCacheConfig &kc = cache.config();
    const int h = kc.head_dim;
    const int bits = kc.bits;
    const int g = static_cast<int>(qs_.size());
    for (const auto &q : qs_)
        PADE_CHECK_EQ(static_cast<int>(q.size()), h);
    for (const auto &o : outs_)
        PADE_CHECK_EQ(static_cast<int>(o.size()), h);
    // The cached PlaneWork entries were computed with the cache's GSAT
    // geometry; the stats are only comparable to padeAttention when
    // the algorithm config agrees.
    PADE_CHECK_EQ(cfg_.subgroup, kc.subgroup);
    PADE_CHECK_EQ(cfg_.muxes, kc.muxes);

    // Same per-call dispatch decision as padeAttention: config request
    // + PADE_QK_KERNEL override + capability clamp.
    const QkKernel kernel = resolveQkKernel(cfg_.qk_kernel);
    const bool packed_qk = kernel != QkKernel::kScalar;
    const bool simd_qk = kernel == QkKernel::kSimd;
    if constexpr (obs::kTelemetryEnabled) {
        DecodeMetrics &m = DecodeMetrics::get();
        m.steps.add(1);
        (simd_qk         ? m.dispatch_simd
             : packed_qk ? m.dispatch_popcount
                         : m.dispatch_scalar)
            .add(1);
    }

    // Stage per-head query state once per step. Everything below the
    // key loop reads it; nothing rebuilds per key.
    if (static_cast<int>(heads_.size()) < g)
        heads_.resize(static_cast<std::size_t>(g));
    group_ = g;
    for (int gi = 0; gi < g; gi++) {
        HeadState &hs = heads_[static_cast<std::size_t>(gi)];
        if (packed_qk)
            hs.qplanes.assign(qs_[static_cast<std::size_t>(gi)]);
        hs.qview =
            simd_qk ? hs.qplanes.simdView() : simd::QPlaneView{};
        hs.bui = computeBuiTable(qs_[static_cast<std::size_t>(gi)],
                                 bits);
        hs.guard = GuardFilter(cfg_.alpha, cfg_.radius, logit_scale);
        hs.retained.clear();
        hs.retained_scores.clear();
    }

    const bool windowed = retention_.enabled();
    // The retention window is relative to the stream AS THE QUERY
    // SEES IT — tokens 0..qpos — not to the append frontier. During
    // chunked prefill the cache may already hold tokens past qpos;
    // anchoring the recency window at qpos + 1 keeps prefill outputs
    // independent of the chunking (and for decode, qpos + 1 == s).
    const int stream_len = qpos + 1;

    // Scan order + planes/keep scratch. Full-history engines pay the
    // O(order_len) order walk and scratch memset a batch padeAttention
    // call would pay. Retention-windowed engines generate only the
    // live subsequence (sink + recency, bit-identical to walking the
    // full order with the per-key window skip) and, instead of
    // clearing whole planes/keep spans, undo only the entries their
    // own previous step could have written — every write lands inside
    // that step's scan order, recorded in HeadState::touched — so the
    // whole step is O(window), not O(context). The buffers stay
    // full-length (grow-only, zero-filled) to preserve the
    // lastPlanes()/lastKeep() contract that untouched tokens read 0.
    if (!windowed) {
        for (int gi = 0; gi < g; gi++) {
            HeadState &hs = heads_[static_cast<std::size_t>(gi)];
            hs.planes.assign(static_cast<std::size_t>(order_len), 0);
            hs.keep.assign(static_cast<std::size_t>(order_len), 0);
        }
        istaScanOrderInto(order_len, cfg_.tile_bc, cfg_.head_tail,
                          order_);
    } else {
        for (int gi = 0; gi < g; gi++) {
            HeadState &hs = heads_[static_cast<std::size_t>(gi)];
            for (int j : hs.touched) {
                const auto sj = static_cast<std::size_t>(j);
                if (sj < hs.planes.size()) {
                    hs.planes[sj] = 0;
                    hs.keep[sj] = 0;
                }
            }
            if (static_cast<int>(hs.planes.size()) < order_len) {
                hs.planes.resize(static_cast<std::size_t>(order_len),
                                 0);
                hs.keep.resize(static_cast<std::size_t>(order_len),
                               0);
            }
        }
        istaScanOrderInto(order_len, cfg_.tile_bc, cfg_.head_tail,
                          retention_.sink_tokens,
                          retention_.horizon(stream_len), order_);
        // Conservative write-set: the scan below only writes at
        // positions of order_ (causal/evicted skips leave zeros, and
        // re-clearing a zero is harmless).
        for (int gi = 0; gi < g; gi++)
            heads_[static_cast<std::size_t>(gi)].touched.assign(
                order_.begin(), order_.end());
    }

    DecodeStep res;
    const uint64_t planes_before = stats_.planes_processed;
    const uint64_t planes_total_before = stats_.planes_total;

    // The padeAttention inner loop, key-outer / query-head-inner: the
    // (page, row) mapping, the packed plane row, and the cached
    // PlaneWork entries are KV-head state — resolved once per key and
    // reused by every query head of the group. Skips (causal,
    // evicted) happen before any stats, exactly like padeAttention's
    // causal skip; the retention window needs no skip here because a
    // windowed order_ already excludes dead-middle keys.
    for (int j : order_) {
        if (j > qpos)
            continue; // causal / not yet prefilled
        if (!cache.pageLive(cache.pageOf(j)))
            continue; // front-dropped or middle-reclaimed pages
        const int page = cache.pageOf(j);
        const int local = cache.rowOf(j);
        const BitPlaneSet &kp = cache.pagePlanes(page);
        const PlaneWork *wrow = cache.pageWork(page).data() +
            static_cast<std::size_t>(local) * bits;
        res.keys++;

        for (int gi = 0; gi < g; gi++) {
            HeadState &hs = heads_[static_cast<std::size_t>(gi)];
            stats_.keys_total++;
            stats_.planes_total += static_cast<uint64_t>(bits);

            int64_t score = 0;
            bool pruned = false;
            for (int r = 0; r < bits; r++) {
                score += simd_qk
                    ? static_cast<int64_t>(kp.planeWeight(r)) *
                        simd::maskedSumAvx2(hs.qview,
                                            kp.plane(local, r).data(),
                                            kp.wordsPerPlane())
                    : packed_qk
                    ? planeDelta(hs.qplanes, kp, local, r)
                    : planeDeltaScalar(
                          qs_[static_cast<std::size_t>(gi)], kp,
                          local, r);
                hs.planes[static_cast<std::size_t>(j)] =
                    static_cast<uint8_t>(r + 1);
                stats_.planes_processed++;

                const PlaneWork &w = wrow[r];
                stats_.ops_bs +=
                    static_cast<uint64_t>(w.selected_bs);
                stats_.ops_naive +=
                    static_cast<uint64_t>(w.selected_naive);

                hs.guard.observe(score + hs.bui.lower(r));
                if (cfg_.guard_enabled &&
                    hs.guard.shouldPrune(score + hs.bui.upper(r))) {
                    pruned = true;
                    break;
                }
            }
            if (!pruned) {
                hs.keep[static_cast<std::size_t>(j)] = 1;
                stats_.keys_retained++;
                hs.retained.push_back(j);
                hs.retained_scores.push_back(score);
            }
        }
    }
    for (int gi = 0; gi < g; gi++) {
        stats_.threshold_updates +=
            heads_[static_cast<std::size_t>(gi)].guard.updates();
        res.retained += static_cast<int>(
            heads_[static_cast<std::size_t>(gi)].retained.size());
    }
    res.planes = stats_.planes_processed - planes_before;
    if constexpr (obs::kTelemetryEnabled) {
        DecodeMetrics &m = DecodeMetrics::get();
        // Per-query-head totals, matching PruneStats semantics: the
        // prune ratio is 1 - planes_consumed / planes_total and the
        // retention ratio keys_retained / keys_scanned, both
        // recoverable from any snapshot delta.
        m.keys_scanned.add(static_cast<uint64_t>(res.keys) *
                           static_cast<uint64_t>(g));
        m.keys_retained.add(static_cast<uint64_t>(res.retained));
        m.planes_consumed.add(res.planes);
        m.planes_total.add(stats_.planes_total -
                           planes_total_before);
    }

    // ISTA value stage per head, tiled by Bc in scan order — the
    // identical float sequence to padeAttention's
    // update(scores, vf, ids) path, with value rows gathered from the
    // cache pages instead of one contiguous matrix. Heads run
    // sequentially through the one shared accumulator; reset() re-arms
    // it without allocation.
    tile_scores_.resize(static_cast<std::size_t>(cfg_.tile_bc));
    for (int gi = 0; gi < g; gi++) {
        HeadState &hs = heads_[static_cast<std::size_t>(gi)];
        softmax_.reset(h);
        for (std::size_t base = 0; base < hs.retained.size();
             base += static_cast<std::size_t>(cfg_.tile_bc)) {
            const std::size_t hi = std::min(
                hs.retained.size(),
                base + static_cast<std::size_t>(cfg_.tile_bc));
            const std::size_t n = hi - base;
            tile_rows_.resize(n);
            for (std::size_t t = 0; t < n; t++) {
                tile_scores_[t] = logit_scale *
                    static_cast<float>(
                        hs.retained_scores[base + t]);
                tile_rows_[t] =
                    cache.valueRow(hs.retained[base + t]);
            }
            softmax_.update(
                std::span<const float>(tile_scores_).first(n),
                tile_rows_);
        }
        stats_.max_updates += softmax_.maxUpdates();
        stats_.rescale_ops += softmax_.rescaleOps();
        softmax_.finalizeInto(outs_[static_cast<std::size_t>(gi)]);
    }
    return res;
}

} // namespace pade

/**
 * @file
 * Model-granularity attention execution: one engine per transformer
 * layer, owning one KV cache per KV head and fanning heads/kv_heads
 * grouped query heads over each shared cache (GQA).
 *
 * PR 4's serving objects were one-attention-head streams; real
 * serving runs whole models, and the memory budget of modern LLMs is
 * dominated by grouped-query attention — `ModelConfig::kv_heads <
 * heads` means several query heads share one K/V stream. LayerEngine
 * makes that sharing structural:
 *
 *  - exactly `kv_heads` KvCaches exist, so KV memory scales with
 *    kv_heads, not heads (an 8:1 group stores 1/8th the pages);
 *  - each cache's per-token PlaneWork table is computed once at
 *    append and reused by every query head of the group
 *    (DecodeEngine::stepGroup's key-outer scan) — the plane table is
 *    a KV-head property, never re-derived per query head;
 *  - prefill *scores*: prefillChunk() runs guarded causal attention
 *    tile-by-tile as prompt chunks are appended, bit-identical to a
 *    whole-prompt `padeAttention(causal)` call per query head.
 *
 * KV heads are independent, so decode/prefill fan them across a
 * ThreadPool; aggregation uses parallelReduceOrdered, which folds
 * per-KV-head results in ascending KV-head order on the caller —
 * outputs and statistics are bit-identical for every thread count.
 *
 * Thread safety: there is deliberately no mutex in this class. All
 * mutable state is partitioned per KV head (one KvCache + DecodeEngine
 * per stream), the pool fan-out gives each worker exactly one
 * partition, and the barrier inside parallelFor orders every fan-out
 * against the caller's next mutation. Concurrent use of ONE LayerEngine
 * from several caller threads is not supported — that serialization
 * belongs to the owner (ContinuousBatcher advances a session from one
 * worker per round). The TSan CI leg runs this fan-out under
 * contention (tests/test_concurrency_stress.cc).
 *
 * Head layout convention (shared with LayerWorkload): global query
 * head h belongs to KV head h / groupSize(), and matrices passed to
 * decode()/prefillChunk() hold head h's row at index h — so a KV
 * head's group occupies the contiguous row block
 * [kv * groupSize(), (kv+1) * groupSize()).
 */

#ifndef PADE_SERVING_LAYER_ENGINE_H
#define PADE_SERVING_LAYER_ENGINE_H

#include <cstddef>
#include <memory>
#include <span>
#include <vector>

#include "core/pade_attention.h"
#include "serving/decode_engine.h"
#include "serving/kv_cache.h"
#include "tensor/matrix.h"

namespace pade {

class ThreadPool;

/** Geometry and algorithm configuration of one layer engine. */
struct LayerEngineConfig
{
    int heads = 1;    //!< query heads
    int kv_heads = 1; //!< K/V streams; must divide heads
    int head_dim = 64;
    int bits = 8;          //!< key bit-plane width
    int page_tokens = 256; //!< KvCache page capacity
    PadeConfig pade;       //!< decode/prefill algorithm config
    RetentionPolicy retention; //!< optional sink+recency eviction

    int groupSize() const { return heads / kv_heads; }
};

/** Aggregate accounting of one layer-wide decode/prefill call. */
struct LayerStep
{
    int keys = 0;        //!< tokens scanned per query head
    int retained = 0;    //!< retentions summed over all query heads
    uint64_t planes = 0; //!< bit planes consumed, summed
};

/**
 * One transformer layer's attention engine: kv_heads shared caches,
 * heads query streams grouped onto them.
 */
class LayerEngine
{
  public:
    /**
     * @param v_scales per-KV-head value dequantization scale
     *        (Quantized::params.scale of each group's V), size
     *        kv_heads.
     */
    LayerEngine(const LayerEngineConfig &cfg,
                std::span<const float> v_scales);

    const LayerEngineConfig &config() const { return cfg_; }
    int groupSize() const { return cfg_.groupSize(); }
    /** Tokens appended to every KV-head cache. */
    int size() const { return tokens_; }

    /**
     * Append one token position: row kv of @p k / @p v is KV head
     * kv's key/value row (kv_heads x head_dim int8 matrices).
     */
    void appendToken(const MatrixI8 &k, const MatrixI8 &v);

    /**
     * Splice one FULL shared page per KV head in at the append
     * frontier (prefix adoption; entry kv of @p pages goes to KV head
     * kv's cache). Advances the token count by one page worth. Legal
     * only at a page boundary — see KvCache::adoptSharedPage for the
     * compatibility contract.
     */
    void adoptSharedPages(
        std::span<const std::shared_ptr<const KvPage>> pages);

    /**
     * Append every KV head's reference for FULL page @p page to
     * @p out (prefix publication; kv_heads entries, ascending).
     */
    void
    sharePages(int page,
               std::vector<std::shared_ptr<const KvPage>> &out) const;

    /**
     * Decode one token for every query head: row h of @p q is head
     * h's query; head h's attention output lands in row h of @p out
     * (heads x head_dim). @p logit_scales has one entry per KV head
     * (quantization is per KV-head group).
     *
     * @param pool optional pool to fan KV heads across; outputs are
     *        bit-identical with or without it.
     */
    LayerStep decode(const MatrixI8 &q,
                     std::span<const float> logit_scales, MatrixF &out,
                     ThreadPool *pool = nullptr);

    /**
     * Scored prefill of one prompt position @p qpos (all of whose
     * prompt tokens up to qpos are appended): row h of @p q is head
     * h's query at that position; outputs land row-aligned in @p out.
     * Bit-identical, per head and for any chunking, to whole-prompt
     * causal padeAttention (see DecodeEngine::prefillGroup).
     */
    LayerStep prefillPosition(const MatrixI8 &q, int qpos,
                              int prompt_len,
                              std::span<const float> logit_scales,
                              MatrixF &out, ThreadPool *pool = nullptr);

    /** Apply the retention policy's page eviction to every cache. */
    void evict();

    const KvCache &
    cache(int kv) const
    {
        return caches_[static_cast<std::size_t>(kv)];
    }
    DecodeEngine &
    engine(int kv)
    {
        return engines_[static_cast<std::size_t>(kv)];
    }
    const DecodeEngine &
    engine(int kv) const
    {
        return engines_[static_cast<std::size_t>(kv)];
    }

    /**
     * Pruning statistics summed over KV-head engines, folded in
     * ascending KV-head order (deterministic reduction).
     */
    PruneStats stats() const;

    /** Resident KV bytes across all caches. */
    std::size_t bytesUsed() const;

  private:
    LayerStep runHeads(const MatrixI8 &q,
                       std::span<const float> logit_scales,
                       MatrixF &out, ThreadPool *pool, int qpos,
                       int prompt_len);

    LayerEngineConfig cfg_;
    std::vector<KvCache> caches_;
    std::vector<DecodeEngine> engines_;
    int tokens_ = 0;
};

} // namespace pade

#endif // PADE_SERVING_LAYER_ENGINE_H

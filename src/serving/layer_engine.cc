#include "serving/layer_engine.h"

#include "common/check.h"
#include "runtime/thread_pool.h"

namespace pade {

LayerEngine::LayerEngine(const LayerEngineConfig &cfg,
                         std::span<const float> v_scales)
    : cfg_(cfg)
{
    PADE_CHECK_GE(cfg_.heads, 1);
    PADE_CHECK_GE(cfg_.kv_heads, 1);
    PADE_CHECK_EQ(cfg_.heads % cfg_.kv_heads, 0);
    PADE_CHECK_EQ(static_cast<int>(v_scales.size()), cfg_.kv_heads);

    caches_.reserve(static_cast<std::size_t>(cfg_.kv_heads));
    engines_.reserve(static_cast<std::size_t>(cfg_.kv_heads));
    for (int kv = 0; kv < cfg_.kv_heads; kv++) {
        KvCacheConfig kc;
        kc.head_dim = cfg_.head_dim;
        kc.bits = cfg_.bits;
        kc.page_tokens = cfg_.page_tokens;
        kc.subgroup = cfg_.pade.subgroup;
        kc.muxes = cfg_.pade.muxes;
        kc.v_scale = v_scales[static_cast<std::size_t>(kv)];
        caches_.emplace_back(kc);
        engines_.emplace_back(cfg_.pade, cfg_.retention);
    }
}

void
LayerEngine::appendToken(const MatrixI8 &k, const MatrixI8 &v)
{
    PADE_CHECK_EQ(k.rows(), cfg_.kv_heads);
    PADE_CHECK_EQ(v.rows(), cfg_.kv_heads);
    PADE_CHECK_EQ(k.cols(), cfg_.head_dim);
    PADE_CHECK_EQ(v.cols(), cfg_.head_dim);
    for (int kv = 0; kv < cfg_.kv_heads; kv++)
        caches_[static_cast<std::size_t>(kv)].appendToken(k.row(kv),
                                                          v.row(kv));
    tokens_++;
}

void
LayerEngine::adoptSharedPages(
    std::span<const std::shared_ptr<const KvPage>> pages)
{
    PADE_CHECK_EQ(static_cast<int>(pages.size()), cfg_.kv_heads);
    for (int kv = 0; kv < cfg_.kv_heads; kv++)
        caches_[static_cast<std::size_t>(kv)].adoptSharedPage(
            pages[static_cast<std::size_t>(kv)]);
    tokens_ += cfg_.page_tokens;
}

void
LayerEngine::sharePages(
    int page, std::vector<std::shared_ptr<const KvPage>> &out) const
{
    for (int kv = 0; kv < cfg_.kv_heads; kv++)
        out.push_back(
            caches_[static_cast<std::size_t>(kv)].sharePage(page));
}

LayerStep
LayerEngine::runHeads(const MatrixI8 &q,
                      std::span<const float> logit_scales,
                      MatrixF &out, ThreadPool *pool, int qpos,
                      int prompt_len)
{
    PADE_CHECK_EQ(q.rows(), cfg_.heads);
    PADE_CHECK_EQ(q.cols(), cfg_.head_dim);
    PADE_CHECK_EQ(out.rows(), cfg_.heads);
    PADE_CHECK_EQ(out.cols(), cfg_.head_dim);
    PADE_CHECK_EQ(static_cast<int>(logit_scales.size()), cfg_.kv_heads);
    const int group = cfg_.groupSize();

    // One KV head's work: its group of query rows against its shared
    // cache. prompt_len < 0 selects decode semantics (attend the
    // whole cache).
    auto headStep = [&](int kv) {
        DecodeEngine &eng = engines_[static_cast<std::size_t>(kv)];
        const KvCache &c = caches_[static_cast<std::size_t>(kv)];
        const float scale =
            logit_scales[static_cast<std::size_t>(kv)];
        return prompt_len < 0
            ? eng.stepGroup(c, q, kv * group, group, scale, out,
                            kv * group)
            : eng.prefillGroup(c, q, kv * group, group, qpos,
                               prompt_len, scale, out, kv * group);
    };
    const auto fold = [](LayerStep &acc, const DecodeStep &st) {
        acc.keys = st.keys; // identical across KV heads (same cache
                            // size, same window)
        acc.retained += st.retained;
        acc.planes += st.planes;
    };

    // KV heads are fully independent (disjoint caches, engines, and
    // output rows), so they fan across the pool; the fold runs on the
    // caller in ascending KV-head order either way, keeping every
    // aggregate bit-identical for any thread count.
    if (pool && pool->threadCount() > 1 && cfg_.kv_heads > 1)
        return parallelReduceOrdered(*pool, cfg_.kv_heads, LayerStep{},
                                     headStep, fold);
    LayerStep acc;
    for (int kv = 0; kv < cfg_.kv_heads; kv++)
        fold(acc, headStep(kv));
    return acc;
}

LayerStep
LayerEngine::decode(const MatrixI8 &q,
                    std::span<const float> logit_scales, MatrixF &out,
                    ThreadPool *pool)
{
    PADE_CHECK_GT(tokens_, 0);
    return runHeads(q, logit_scales, out, pool, /*qpos=*/-1,
                    /*prompt_len=*/-1);
}

LayerStep
LayerEngine::prefillPosition(const MatrixI8 &q, int qpos,
                             int prompt_len,
                             std::span<const float> logit_scales,
                             MatrixF &out, ThreadPool *pool)
{
    PADE_CHECK_GE(qpos, 0);
    PADE_CHECK_LT(qpos, prompt_len);
    PADE_CHECK_GT(tokens_, qpos);
    return runHeads(q, logit_scales, out, pool, qpos, prompt_len);
}

void
LayerEngine::evict()
{
    for (int kv = 0; kv < cfg_.kv_heads; kv++)
        engines_[static_cast<std::size_t>(kv)].applyRetention(
            caches_[static_cast<std::size_t>(kv)]);
}

PruneStats
LayerEngine::stats() const
{
    PruneStats sum;
    for (const DecodeEngine &e : engines_)
        sum += e.stats();
    return sum;
}

std::size_t
LayerEngine::bytesUsed() const
{
    std::size_t bytes = 0;
    for (const KvCache &c : caches_)
        bytes += c.bytesUsed();
    return bytes;
}

} // namespace pade

/**
 * @file
 * Whole-model serving engine: `layers` LayerEngines composed into one
 * session, with the layer loop software-pipelined across a ThreadPool.
 *
 * A transformer forward pass visits every layer per token. Run
 * serially, layer l+1 idles while layer l scores — on a pool that
 * leaves most workers starved whenever kv_heads < threads. This
 * engine instead runs the layer loop as a systolic pipeline over
 * *tokens*: each advance() round processes up to `layers` in-flight
 * tokens concurrently, token t at layer l while token t+1 is at layer
 * l-1 (layer l's decode for one token overlaps layer l+1's append for
 * the previous one). A token enters the pipeline per round and
 * retires `layers` rounds later.
 *
 * Why the pipelined schedule is bit-identical to the serial
 * layer-by-layer reference, for any thread count:
 *
 *  - In-flight tokens always sit at *distinct* layers (ages are
 *    strictly decreasing from the oldest flight to the newest, one
 *    round apart), so the round's concurrent units touch disjoint
 *    LayerEngines, disjoint staging buffers, and disjoint output
 *    rows — there is nothing to race on, which the TSan CI leg and
 *    tests/test_concurrency_stress.cc watch at runtime.
 *  - Each layer still sees tokens in exact feed order (token t's unit
 *    at layer l runs in round t + l, t's successor in round t+1+l),
 *    so every KvCache append sequence — and therefore every plane
 *    table, guard threshold, and PruneStats counter — is the sequence
 *    the serial schedule produces.
 *  - Within a unit, the KV-head fan-out reduces via
 *    parallelReduceOrdered (ascending KV-head order on the caller),
 *    the established barrier discipline of LayerEngine.
 *  - Token results are emitted on the advance() caller *after* the
 *    round barrier, oldest flight first — completed tokens surface in
 *    feed order in both schedules, so the sink sees one canonical
 *    emission sequence.
 *
 * Workload note: K/V/Q rows come from the caller's Stager (a pure
 * function of (layer, position) in the synthetic workloads), not from
 * the previous layer's activations — attention state (KV caches,
 * pruning decisions) is what the library models, not the MLP data
 * path. The pipeline's correctness argument only relies on staging
 * being callable for distinct layers concurrently.
 *
 * Prefix sharing: adoptPrefixPages() splices published, immutable KV
 * pages (one per layer x KV head) at the append frontier, so a
 * session whose prompt starts with an already-served prefix skips
 * packing AND scoring those pages; sharePrefixPages() exports this
 * session's pages for publication (see serving/prefix_index.h).
 * Shared pages carry their cached PlaneWork and BitPlaneSet revision,
 * so every adopter scores them through the same plane tables.
 *
 * Thread safety: none at the class surface — one session advances
 * from one caller thread (the batcher steps each session from a
 * single worker per round); internal fan-outs own their barriers.
 * The collectUnits()/runCollectedUnit()/completeRound() split keeps
 * the same contract one level up: collect/complete run on the
 * scheduling thread, while runCollectedUnit() calls for DISTINCT
 * units of one open round may run concurrently (they touch disjoint
 * layers/buffers) — the seam ContinuousBatcher's cross-session
 * co-scheduler fans a whole fleet of sessions through.
 */

#ifndef PADE_SERVING_MODEL_ENGINE_H
#define PADE_SERVING_MODEL_ENGINE_H

#include <cstddef>
#include <deque>
#include <functional>
#include <memory>
#include <span>
#include <vector>

#include "serving/layer_engine.h"
#include "tensor/matrix.h"

namespace pade {

class ThreadPool;

/** Geometry and scheduling configuration of one model engine. */
struct ModelEngineConfig
{
    int layers = 1;          //!< transformer layers
    LayerEngineConfig layer; //!< per-layer geometry/algorithm config
    /** false = serial layer-by-layer reference schedule (the oracle
     *  the differential fuzz harness compares against). */
    bool pipeline = true;
};

/** One retired token, emitted to the sink in feed order. */
struct TokenResult
{
    int pos = 0;        //!< absolute position of the token
    int prompt_len = 0; //!< prompt length it was fed with
    /** Per-layer attention outputs (layers entries, heads x
     *  head_dim). Valid only during the sink call. */
    std::span<const MatrixF> outs;
    /** Per-layer scan accounting, same indexing. */
    std::span<const LayerStep> steps;
};

/**
 * `layers` LayerEngines pipelined over tokens. See file comment for
 * the schedule and its determinism argument.
 */
class ModelEngine
{
  public:
    /**
     * Row source: fill k/v (kv_heads x head_dim) and q (heads x
     * head_dim) for (layer, pos). Must be safe to call for distinct
     * layers concurrently.
     */
    using Stager = std::function<void(int layer, int pos, MatrixI8 &k,
                                      MatrixI8 &v, MatrixI8 &q)>;
    /** Retired-token consumer; runs on the advance() caller. */
    using Sink = std::function<void(const TokenResult &)>;

    /**
     * @param v_scales     per-stream V dequant scales, layers *
     *                     kv_heads entries row-major by layer.
     * @param logit_scales per-stream int-score -> logit factors, same
     *                     indexing.
     */
    ModelEngine(const ModelEngineConfig &cfg,
                std::span<const float> v_scales,
                std::span<const float> logit_scales, Stager stager,
                Sink sink);

    const ModelEngineConfig &config() const { return cfg_; }
    int layerCount() const { return cfg_.layers; }

    LayerEngine &
    layer(int l)
    {
        return layers_[static_cast<std::size_t>(l)];
    }
    const LayerEngine &
    layer(int l) const
    {
        return layers_[static_cast<std::size_t>(l)];
    }

    /**
     * Enqueue position @p pos (prompt position when pos < prompt_len,
     * decode step otherwise). Positions must be fed contiguously from
     * the adopted-prefix frontier (PADE_CHECKed).
     */
    void feed(int pos, int prompt_len);

    /**
     * Run one pipeline round: admit at most one queued token into
     * flight, process every in-flight token at its layer (fanned
     * across @p pool when given), then retire tokens whose last layer
     * completed. Serial mode (pipeline = false) runs one whole token
     * through all layers instead. Returns false when nothing was left
     * to do. Exactly collectUnits() + runCollectedUnit(0..n-1) +
     * completeRound(), plus the per-round fan-out and capacity
     * telemetry a self-contained round owns.
     */
    bool advance(ThreadPool *pool = nullptr);

    /**
     * Co-scheduling split of advance(), for a caller that merges the
     * ready units of MANY sessions into one global fan-out (see
     * ContinuousBatcher's co-scheduler): collectUnits() opens a round
     * — admitting at most one queued token into flight exactly as
     * advance() would — and returns the number of independent units
     * (0 = drained, no round opened). The caller may then run units
     * 0..n-1 in ANY order or concurrently (they touch disjoint layers
     * and buffers — the advance() disjointness argument unchanged)
     * and must finish with completeRound(), which ages the pipeline
     * and retires completed tokens on the calling thread, in feed
     * order. Serial mode yields one whole-token unit per round. A
     * round opened by collectUnits() must be completed before the
     * next collectUnits()/advance() (PADE_CHECKed); unit-level busy
     * telemetry is recorded here, round/capacity accounting is the
     * caller's (it knows the global round width).
     */
    int collectUnits();
    /** Run unit @p u of the round collectUnits() opened; @p pool fans
     *  the unit's internal KV-head reduction only. */
    void runCollectedUnit(int u, ThreadPool *pool = nullptr);
    void completeRound();

    /** advance() until queue and pipeline are empty. */
    void drain(ThreadPool *pool = nullptr);

    /** Tokens fed (or adopted) so far == the next feedable position. */
    int fed() const { return fed_; }
    /** Tokens retired through the sink. */
    int completed() const { return completed_; }
    /** Tokens queued or in flight. */
    int
    pending() const
    {
        return static_cast<int>(queue_.size() + flight_.size());
    }

    /**
     * Adopt one page depth of published prefix: layers * kv_heads
     * full pages row-major by layer (the layout sharePrefixPages and
     * PrefixMatch use), spliced into every layer's caches. Legal only
     * before any token is fed past the frontier and only at page
     * boundaries; advances fed() by page_tokens.
     */
    void adoptPrefixPages(
        std::span<const std::shared_ptr<const KvPage>> pages);

    /**
     * Export page @p page of every (layer, kv_head) cache for
     * publication, appending layers * kv_heads refs row-major by
     * layer to @p out. Pages must be full (PADE_CHECKed in KvCache).
     */
    void sharePrefixPages(
        int page,
        std::vector<std::shared_ptr<const KvPage>> &out) const;

    /** Pruning statistics folded over layers in ascending order. */
    PruneStats stats() const;

    /** Resident KV bytes over all layers (shared pages included). */
    std::size_t bytesUsed() const;

  private:
    struct Job
    {
        int pos = 0;
        int prompt_len = 0;
    };
    /** One in-flight token: its job, current layer (age), and
     *  per-layer results. Buffers recycle through spares_. */
    struct Flight
    {
        Job job;
        int age = 0;
        std::vector<MatrixF> outs;
        std::vector<LayerStep> steps;
    };

    Flight takeFlight(const Job &job);
    /** Process flight @p f at layer @p l: stage, append, score. */
    void runUnit(Flight &f, int l, ThreadPool *pool);
    void retire(Flight &&f);

    ModelEngineConfig cfg_;
    std::vector<float> v_scales_;
    std::vector<float> logit_scales_;
    Stager stager_;
    Sink sink_;

    std::vector<LayerEngine> layers_;
    // Per-layer staging buffers: safe because each round assigns at
    // most one flight to any layer.
    std::vector<MatrixI8> stage_k_;
    std::vector<MatrixI8> stage_v_;
    std::vector<MatrixI8> stage_q_;

    std::deque<Job> queue_;
    /** Ages strictly decrease front to back (front = oldest). */
    std::deque<Flight> flight_;
    std::vector<Flight> spares_;
    int fed_ = 0;
    int completed_ = 0;
    /** True between collectUnits() and completeRound(). */
    bool round_open_ = false;
};

} // namespace pade

#endif // PADE_SERVING_MODEL_ENGINE_H

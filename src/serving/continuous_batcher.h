/**
 * @file
 * Continuous-batching serving loop over model-granularity sessions.
 *
 * The batcher turns the library from a per-head simulator into a
 * request-level serving engine: requests arrive on a (Poisson) trace,
 * are admitted into a bounded set of active *sessions*, and every
 * scheduling round advances each active session by one unit of work —
 * workload materialization, a scored prefill chunk, or one decoded
 * token — fanned across a ThreadPool. By default the fan-out is
 * *co-scheduled* (`BatcherOptions::coschedule`): the round collects
 * every session's ready pipeline units into one flat list per wave
 * and runs a single pool-wide parallelFor over all of them, so the
 * host saturates on sessions x layers units even when each session
 * alone could not fill it; the per-session nested-parallelFor
 * schedule remains available as the differential oracle and is
 * bit-identical by construction. Finished sessions are evicted
 * immediately (their KV pages freed), opening the slot for the next
 * queued request: the continuous-batching discipline, as opposed to
 * static batching where a batch drains at the pace of its longest
 * member.
 *
 * Sessions are whole *models*, not single layers: each owns a
 * `ModelEngine` — `layers` LayerEngines, each one `KvCache` per KV
 * head shared by heads/kv_heads grouped query heads (GQA) — and every
 * prefill/decode unit drains the engine's software pipeline, so token
 * t's layer-l work overlaps token t+1's layer-(l-1) work on the pool
 * (serving/model_engine.h proves that schedule bit-identical to the
 * serial layer loop). Prefill *scores*: each prefill round feeds a
 * chunk of prompt positions through every layer, bit-identical to
 * whole-prompt padeAttention (prefill outputs feed
 * `SessionStats::prefill_checksum`; decode outputs feed `checksum`).
 *
 * Cross-session prefix caching (`BatcherOptions::prefix_cache`): one
 * PrefixIndex is shared by all slots of a run. At materialization a
 * session looks its prompt's prefix page chain up and adopts every
 * matched page read-only — skipping the packing *and* the scored
 * prefill of those tokens; after its own prefix completes it
 * publishes the pages for later arrivals. Because workload prefix
 * rows are pure functions of the prefix stream and quantization
 * scales are static (workload/generator.h, ModelWorkload), an
 * adopted page is byte-identical to the page the session would have
 * built — decode outputs, and therefore `checksum`, do not depend on
 * whether a prefix hit occurred, and `prefill_checksum` mixes only
 * positions >= the request's prefix_len so both checksums stay
 * thread-count- and timing-invariant.
 *
 * Admission order: priority first (higher `ServingRequest::priority`
 * wins), arrival/trace order as the tie-break — deterministic for any
 * thread count. `SessionStats::admit_seq` records the resulting
 * global admission sequence.
 *
 * Concurrency: sessions advance on pool workers and touch disjoint
 * state; the one genuinely shared mutable object of a round is its
 * RoundAccounting (resident-KV-byte total), guarded by an annotated
 * pade::Mutex (PADE_GUARDED_BY — see common/thread_annotations.h) so
 * clang's -Wthread-safety proves the locking and the TSan CI leg
 * watches it at runtime. Admission invariants (slot count, prefill
 * chunk, GQA divisibility, trace monotonicity) are PADE_CHECKs:
 * violations abort in Release servers, not only in test builds.
 *
 * Clock model: admission and latency run on a virtual clock that
 * advances by each round's measured host wall time, and jumps forward
 * to the next arrival when the engine is idle. Token *outputs* (and
 * the report checksums) are bit-deterministic for any thread count —
 * each session's computation is sequential and seeded, and the
 * in-session KV-head fan-out reduces in fixed order — while latency
 * *values* are host timings and therefore noisy; tests assert the
 * former and only shape properties of the latter.
 */

#ifndef PADE_SERVING_CONTINUOUS_BATCHER_H
#define PADE_SERVING_CONTINUOUS_BATCHER_H

#include <cstddef>
#include <cstdint>
#include <span>
#include <string>
#include <vector>

#include "arch/run_metrics.h"
#include "core/pade_attention.h"
#include "serving/decode_engine.h"
#include "serving/prefix_index.h"
#include "workload/generator.h"

namespace pade {

/** Scheduling and per-session workload knobs. */
struct BatcherOptions
{
    int threads = 0;       //!< pool workers; 0 = hardware threads
    int max_active = 4;    //!< concurrent sessions (slots)
    int prefill_chunk = 64; //!< prompt tokens appended+scored per round
    int layers = 1;        //!< transformer layers per session
    int heads = 1;         //!< query heads per layer
    int kv_heads = 1;      //!< shared K/V streams (< heads => GQA)
    int head_dim = 64;     //!< per-head geometry
    int bits = 8;
    int page_tokens = 256; //!< KvCache page capacity
    /** false = serial layer-by-layer schedule (the reference the
     *  pipelined engine is differentially tested against). */
    bool pipeline = true;
    /**
     * Cross-session round co-scheduling: merge every active session's
     * ready pipeline units into one flat list per wave and fan the
     * whole fleet through a SINGLE parallelFor, instead of one nested
     * parallelFor per session per engine round. Keeps wide hosts full
     * when any one session can only expose `layers` units, and
     * replaces sessions x rounds barriers per batcher round with
     * rounds barriers. Bit-identical to per-session scheduling for
     * any thread/slot count — units of distinct sessions touch
     * disjoint state, and each engine still sees exactly its own
     * round sequence (the ModelEngine collectUnits()/completeRound()
     * contract). false = the per-session schedule, kept as the
     * differential oracle.
     */
    bool coschedule = true;
    /** Share full prefix KV pages across sessions via a PrefixIndex. */
    bool prefix_cache = false;
    /** Shared-page byte budget of the index; 0 = unbounded. */
    std::size_t prefix_cache_bytes = 0;
    /** Virtual milliseconds each scheduling round advances the
     *  admission clock. Negative (the default) uses the round's real
     *  host wall time, so latency percentiles reflect machine speed —
     *  but then WHICH sessions are co-resident depends on timing, and
     *  co-residency-derived results (peak_cache_bytes, peak_active,
     *  prefix-publish order) are not reproducible across runs or
     *  thread counts. Tests asserting schedule invariants set a fixed
     *  value to make the admission schedule a pure function of the
     *  trace. */
    double fixed_round_ms = -1.0;
    double concentration = 1.0; //!< workload-generator knobs
    double locality = 0.5;
    PadeConfig pade;       //!< decode algorithm configuration
    RetentionPolicy retention; //!< optional sink+recency KV eviction
    /**
     * Non-empty: enable span recording for the run and write the
     * Chrome trace_event JSON (chrome://tracing / Perfetto) here at
     * the end. Spans cover batcher rounds, per-session units
     * (materialize / prefill chunk / decode token), and ModelEngine
     * pipeline stages; admissions and evictions are instant events.
     * See docs/OBSERVABILITY.md.
     */
    std::string trace_file;
};

/** Per-request timeline, index-aligned with the input trace. */
struct SessionStats
{
    double arrival_ms = 0.0;
    double admit_ms = 0.0;       //!< slot granted (queueing ends)
    int admit_seq = -1;          //!< global admission order (0-based)
    int priority = 0;            //!< scheduling class of the request
    /** First decoded token done; -1 for prefill-only requests
     *  (decode_steps == 0), which are excluded from ttft_ms. */
    double first_token_ms = 0.0;
    double finish_ms = 0.0;      //!< last token done, session evicted
    int prompt_len = 0;
    int decode_steps = 0;
    int prefix_len = 0;        //!< shared-prefix tokens of the request
    /** Prompt tokens adopted from the prefix cache (0 on miss or when
     *  caching is off) — timing-dependent, unlike the checksums. */
    int prefix_hit_tokens = 0;
    uint64_t checksum = 0;         //!< mixed bits of decoded outputs
    /** Mixed bits of prefill outputs at positions >= prefix_len
     *  (prefix positions are excluded so hits and misses agree). */
    uint64_t prefill_checksum = 0;
};

/** Aggregate of one serving run. */
struct ServingReport
{
    std::vector<SessionStats> sessions;
    Percentiles latency_ms; //!< finish - arrival
    Percentiles ttft_ms;    //!< time to first token
    /** Time per output token after the first ((finish - first_token)
     *  / (decoded - 1)); sessions decoding < 2 tokens are excluded. */
    Percentiles tpot_ms;
    double wall_ms = 0.0;     //!< real host wall of the run loop
    double makespan_ms = 0.0; //!< final virtual-clock value
    uint64_t tokens_prefilled = 0;
    uint64_t tokens_decoded = 0;
    double decode_tok_per_s = 0.0; //!< decoded tokens / real wall
    int rounds = 0;
    int peak_active = 0;           //!< most simultaneous sessions
    std::size_t peak_cache_bytes = 0; //!< max resident KV bytes
    /** Prompt tokens served from the prefix cache instead of being
     *  packed and scored (subset of tokens_prefilled). */
    uint64_t tokens_prefix_hit = 0;
    /** KV bytes adopters did not have to materialize privately. */
    std::size_t prefix_bytes_saved = 0;
    /** Prefix-index counters at run end (zeros when caching is off). */
    PrefixIndexStats prefix;
    /** XOR of session decode checksums: thread-count invariant. */
    uint64_t checksum = 0;
    /** XOR of session prefill checksums: thread-count invariant. */
    uint64_t prefill_checksum = 0;
    /**
     * Fraction of the run's pipeline round capacity (round width x
     * round wall, summed; width = workers the round could actually
     * claim — pool occupancy-derived per-session, min(threads, units)
     * for co-scheduled waves) that no unit computed in:
     * 1 - model.unit_busy_us / model.round_capacity_us over the run's
     * metric delta. 0 when the library was built without telemetry
     * (PADE_TELEMETRY=OFF) — the counters never move.
     */
    double pipeline_bubble_ratio = 0.0;
    /** KV bytes committed per token the run appended privately
     *  (page-granular; all layers and KV heads of the model). 0
     *  without telemetry. */
    double kv_bytes_per_token = 0.0;
    /**
     * The run's metric delta as a JSON document
     * ({"schema":"pade-serving-telemetry-v1","enabled":...,
     * "derived":{...},"metrics":{...}}); always well-formed, all
     * zeros when built with PADE_TELEMETRY=OFF. Exported verbatim by
     * examples/batch_serving --stats and bench/perf_suite.
     */
    std::string telemetry;
};

/**
 * Runs serving traces; stateless between run() calls (options only).
 */
class ContinuousBatcher
{
  public:
    explicit ContinuousBatcher(BatcherOptions opt = {});

    /**
     * Serve @p trace to completion. Arrival times must be
     * non-decreasing (poissonArrivalTrace() guarantees it).
     */
    ServingReport run(std::span<const ServingRequest> trace) const;

  private:
    BatcherOptions opt_;
};

} // namespace pade

#endif // PADE_SERVING_CONTINUOUS_BATCHER_H

/**
 * @file
 * Continuous-batching serving loop over incremental decode sessions.
 *
 * The batcher turns the library from a per-head simulator into a
 * request-level serving engine: requests arrive on a (Poisson) trace,
 * are admitted into a bounded set of active *sessions*, and every
 * scheduling round advances each active session by one unit of work —
 * workload materialization, a prefill chunk, or one decoded token —
 * fanned across a ThreadPool. Finished sessions are evicted
 * immediately (their KV pages freed), opening the slot for the next
 * queued request: the continuous-batching discipline, as opposed to
 * static batching where a batch drains at the pace of its longest
 * member.
 *
 * Each session owns a `KvCache` + `DecodeEngine` pair, so per-token
 * work is the incremental O(bits * head_dim) append plus the guarded
 * scan — never a re-pack of the history.
 *
 * Clock model: admission and latency run on a virtual clock that
 * advances by each round's measured host wall time, and jumps forward
 * to the next arrival when the engine is idle. Token *outputs* (and
 * the report checksum) are bit-deterministic for any thread count —
 * each session's computation is sequential and seeded — while latency
 * *values* are host timings and therefore noisy; tests assert the
 * former and only shape properties of the latter.
 */

#ifndef PADE_SERVING_CONTINUOUS_BATCHER_H
#define PADE_SERVING_CONTINUOUS_BATCHER_H

#include <cstddef>
#include <cstdint>
#include <span>
#include <vector>

#include "arch/run_metrics.h"
#include "core/pade_attention.h"
#include "workload/generator.h"

namespace pade {

/** Scheduling and per-session workload knobs. */
struct BatcherOptions
{
    int threads = 0;       //!< pool workers; 0 = hardware threads
    int max_active = 4;    //!< concurrent sessions (slots)
    int prefill_chunk = 64; //!< prompt tokens appended per round
    int head_dim = 64;     //!< per-session attention head geometry
    int bits = 8;
    int page_tokens = 256; //!< KvCache page capacity
    double concentration = 1.0; //!< workload-generator knobs
    double locality = 0.5;
    PadeConfig pade;       //!< decode algorithm configuration
};

/** Per-request timeline, index-aligned with the input trace. */
struct SessionStats
{
    double arrival_ms = 0.0;
    double admit_ms = 0.0;       //!< slot granted (queueing ends)
    /** First decoded token done; -1 for prefill-only requests
     *  (decode_steps == 0), which are excluded from ttft_ms. */
    double first_token_ms = 0.0;
    double finish_ms = 0.0;      //!< last token done, session evicted
    int prompt_len = 0;
    int decode_steps = 0;
    uint64_t checksum = 0;       //!< mixed bits of every output token
};

/** Aggregate of one serving run. */
struct ServingReport
{
    std::vector<SessionStats> sessions;
    Percentiles latency_ms; //!< finish - arrival
    Percentiles ttft_ms;    //!< time to first token
    double wall_ms = 0.0;     //!< real host wall of the run loop
    double makespan_ms = 0.0; //!< final virtual-clock value
    uint64_t tokens_prefilled = 0;
    uint64_t tokens_decoded = 0;
    double decode_tok_per_s = 0.0; //!< decoded tokens / real wall
    int rounds = 0;
    int peak_active = 0;           //!< most simultaneous sessions
    std::size_t peak_cache_bytes = 0; //!< max resident KV bytes
    /** XOR of session checksums: thread-count invariant. */
    uint64_t checksum = 0;
};

/**
 * Runs serving traces; stateless between run() calls (options only).
 */
class ContinuousBatcher
{
  public:
    explicit ContinuousBatcher(BatcherOptions opt = {});

    /**
     * Serve @p trace to completion. Arrival times must be
     * non-decreasing (poissonArrivalTrace() guarantees it).
     */
    ServingReport run(std::span<const ServingRequest> trace) const;

  private:
    BatcherOptions opt_;
};

} // namespace pade

#endif // PADE_SERVING_CONTINUOUS_BATCHER_H

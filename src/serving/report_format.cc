#include "serving/report_format.h"

#include <cinttypes>
#include <cstdarg>
#include <cstdio>

namespace pade {

namespace {

void
appendf(std::string &out, const char *fmt, ...)
    __attribute__((format(printf, 2, 3)));

void
appendf(std::string &out, const char *fmt, ...)
{
    char buf[256];
    va_list ap;
    va_start(ap, fmt);
    std::vsnprintf(buf, sizeof buf, fmt, ap);
    va_end(ap);
    out += buf;
}

} // namespace

std::string
formatPercentiles(const Percentiles &p)
{
    std::string out;
    appendf(out, "p50/p95/p99 = %.1f/%.1f/%.1f ms", p.p50, p.p95,
            p.p99);
    if (p.count >= 1000)
        appendf(out, ", p999 = %.1f ms", p.p999);
    appendf(out, " (mean %.1f, max %.1f, n=%" PRId64 ")", p.mean,
            p.max, p.count);
    return out;
}

std::string
formatServingReport(std::string_view label, const ServingReport &r)
{
    const auto lbl = static_cast<int>(label.size());
    const char *l = label.data();
    std::string out;
    appendf(out,
            "%.*s: %" PRIu64 " prefill + %" PRIu64
            " decode tokens, %d rounds, peak %d sessions / %.1f MB "
            "KV; decode %.0f tok/s\n",
            lbl, l, r.tokens_prefilled, r.tokens_decoded, r.rounds,
            r.peak_active,
            static_cast<double>(r.peak_cache_bytes) / 1e6,
            r.decode_tok_per_s);
    appendf(out, "%.*s: latency %s\n", lbl, l,
            formatPercentiles(r.latency_ms).c_str());
    appendf(out, "%.*s: ttft    %s\n", lbl, l,
            formatPercentiles(r.ttft_ms).c_str());
    if (r.tpot_ms.count > 0)
        appendf(out, "%.*s: tpot    %s\n", lbl, l,
                formatPercentiles(r.tpot_ms).c_str());
    if (r.tokens_prefix_hit > 0)
        appendf(out,
                "%.*s: prefix cache %" PRIu64
                " tokens adopted, %.1f MB not rebuilt\n",
                lbl, l, r.tokens_prefix_hit,
                static_cast<double>(r.prefix_bytes_saved) / 1e6);
    if (!r.telemetry.empty() && r.kv_bytes_per_token > 0.0)
        appendf(out,
                "%.*s: pipeline bubble %.1f%%, %.0f KV bytes/token\n",
                lbl, l, r.pipeline_bubble_ratio * 100.0,
                r.kv_bytes_per_token);
    return out;
}

std::string
formatChecksumLine(std::string_view label, uint64_t checksum,
                   std::string_view note)
{
    std::string out;
    appendf(out, "%-18.*s: %016" PRIx64 " (%.*s)",
            static_cast<int>(label.size()), label.data(), checksum,
            static_cast<int>(note.size()), note.data());
    return out;
}

} // namespace pade

/**
 * @file
 * Append-only bit-plane KV cache for incremental decoding, with
 * ref-counted page sharing and optional-page middle reclamation.
 *
 * Autoregressive serving appends exactly one (key, value) row per
 * decode step, but the seed code re-quantized and re-packed the entire
 * KV history each step. This cache keeps the history resident across
 * steps in fixed-capacity *pages*:
 *
 *  - keys live as `BitPlaneSet` pages grown with
 *    `BitPlaneSet::appendToken()`, so packing a new token costs
 *    O(bits * head_dim) regardless of the history length and is
 *    bit-identical to a from-scratch pack of the same rows (the
 *    storage contract the AVX2 QK backend relies on — 32-byte-aligned
 *    plane rows with zero padding — holds page by page);
 *  - values live as dequantized float rows (the exact
 *    `scale * int8` floats `padeAttention`'s value stage consumes);
 *  - the query-independent per-(token, plane) `PlaneWork` accounting
 *    is computed once at append time instead of once per decode step
 *    — amortizing what `padeAttention` rebuilds per call.
 *
 * Pages are fixed at `page_tokens` rows and reserved up front
 * (`AlignedAllocator` storage), so an append never moves previously
 * stored planes: spans handed out by the accessors stay valid across
 * appendToken() calls.
 *
 * Page sharing (cross-session prefix caching): pages are held through
 * `std::shared_ptr<KvPage>`, so a FULL page can be mapped read-only
 * into several caches at once — `sharePage()` hands out a reference,
 * `adoptSharedPage()` splices one in at the append frontier. Full
 * pages are immutable by construction (appendToken only ever writes
 * the partial tail page, and a full page can never become the tail
 * again), which is what makes the aliasing safe: no copy-on-write
 * machinery is needed because a shared page is never written. A
 * prompt prefix that ends mid-page diverges by *copying*: the adopter
 * re-appends the partial page's tokens privately — that private tail
 * is the copy-on-write fork point. Shared pages carry their cached
 * PlaneWork table with them, so the scoring-side work of a hot prefix
 * is computed once for every reader. The last owner (cache or
 * PrefixIndex entry) to let go frees the page — refcounts are the
 * shared_ptr's, so a page can never be freed under a live reader.
 *
 * Page liveness (middle reclamation): the deque stores *optional*
 * slots — a null slot is a page reclaimed from the middle of the
 * stream. `dropPagesBefore()` frees whole pages from the front (the
 * sliding-window primitive); `dropPagesIn()` frees fully-dead pages
 * anywhere behind the append frontier, which is what lets
 * StreamingLLM sink-pinned streams return the dead middle between the
 * pinned sinks and the recency window (previously those pages stayed
 * resident forever). Token indices are stable across both: eviction
 * frees storage but never renumbers. `pageLive()` is the scan-side
 * query; handing out a span from a dead slot is a PADE_CHECK abort in
 * every build type.
 *
 * Thread safety: external. One cache belongs to one KV-head stream:
 * appendToken()/dropPagesBefore()/dropPagesIn()/adoptSharedPage()
 * mutate and must be serialized by the owner, while the const
 * accessors are safe to share across concurrent readers *between*
 * mutations — the GQA decode path leans on exactly that (every query
 * head of a group scans the one shared cache; LayerEngine serializes
 * appends against decode rounds). Readers of a *shared* page in other
 * caches are likewise safe: the page is full, hence never mutated.
 * There is deliberately no internal mutex: a lock per page access
 * would sit on the per-token hot path.
 *
 * Invariant checking: page liveness and append-shape violations are
 * PADE_CHECKs (armed in Release — a span handed out for a dropped
 * page means reading freed memory); per-token index arithmetic inside
 * the hot scan is PADE_DCHECK (test builds compile with -UNDEBUG).
 */

#ifndef PADE_SERVING_KV_CACHE_H
#define PADE_SERVING_KV_CACHE_H

#include <cstddef>
#include <cstdint>
#include <deque>
#include <memory>
#include <span>
#include <vector>

#include "common/check.h"
#include "core/bit_serial.h"
#include "quant/bitplane.h"
#include "tensor/matrix.h"

namespace pade {

/** Geometry and quantization parameters fixed at cache creation. */
struct KvCacheConfig
{
    int head_dim = 128;
    int bits = 8;          //!< key bit-plane width (2..8)
    int page_tokens = 256; //!< tokens per page (fixed capacity)
    /**
     * GSAT sub-group geometry baked into the cached PlaneWork
     * entries; must match the PadeConfig the decode engine runs with
     * (asserted there).
     */
    int subgroup = 8;
    int muxes = 4;
    /** Value dequantization scale: float row = v_scale * int8 row. */
    float v_scale = 1.0f;
};

/**
 * One fixed-capacity KV page: packed key planes, dequantized value
 * rows, and the per-(row, plane) PlaneWork table. Pages record the
 * geometry they were built with so adoption into another cache can
 * verify compatibility — sharing a page whose quantization scale or
 * GSAT geometry differs would be a silent numerical divergence, so
 * `adoptSharedPage` PADE_CHECKs every field.
 */
struct KvPage
{
    explicit KvPage(const KvCacheConfig &cfg);

    KvCacheConfig cfg;           //!< geometry fingerprint at creation
    BitPlaneSet planes;          //!< keys, page-local rows
    MatrixF values;              //!< dequantized V rows
    std::vector<PlaneWork> work; //!< used * bits entries

    /** Rows appended so far; full() pages are immutable. */
    int used() const { return planes.numRows(); }
    bool full() const { return used() == cfg.page_tokens; }
};

/**
 * Resident bytes of one page (planes + values + work table). Pages
 * allocate/reserve their full fixed capacity up front, so this is a
 * per-geometry constant, independent of used().
 */
std::size_t kvPageBytes(const KvPage &page);

/**
 * Append-only paged KV store for one attention head's decode stream.
 */
class KvCache
{
  public:
    explicit KvCache(const KvCacheConfig &cfg);

    const KvCacheConfig &config() const { return cfg_; }

    /** Tokens appended so far (evicted tokens still count). */
    int size() const { return tokens_; }
    /** Logical pages ever opened (dropped pages included). */
    int
    numPages() const
    {
        return first_live_page_ + static_cast<int>(pages_.size());
    }
    /** Pages still resident (dropped and reclaimed slots excluded). */
    int livePages() const;

    /**
     * First token whose page slot still exists (reclaimed middle
     * slots may sit above it — pageLive() is the per-page truth).
     * Token indices are stable across eviction — dropPagesBefore()
     * frees storage but never renumbers — so consumers skip tokens
     * below this bound instead of re-indexing.
     */
    int firstLiveToken() const
    {
        return first_live_page_ * cfg_.page_tokens;
    }

    /**
     * Free every page whose tokens all precede @p token (whole pages
     * only; the page containing @p token survives). Spans handed out
     * for surviving pages stay valid; accessors for dropped tokens
     * assert. This is the eviction primitive behind sliding-window /
     * StreamingLLM retention (see RetentionPolicy in decode_engine.h).
     */
    void dropPagesBefore(int token);

    /**
     * Free every page lying wholly inside [@p first_token,
     * @p last_token) — the middle-reclamation primitive. The slot
     * stays in the deque (null) so later pages keep their indices;
     * the append-frontier tail page always survives. Composes with
     * sink-pinned retention: pages between the pinned sinks and the
     * recency window become reclaimable instead of resident-forever.
     */
    void dropPagesIn(int first_token, int last_token);

    /** True when @p page has not been dropped or reclaimed. */
    bool
    pageLive(int page) const
    {
        if (page < first_live_page_ || page >= numPages())
            return false;
        return pages_[static_cast<std::size_t>(
                   page - first_live_page_)] != nullptr;
    }

    /** Page holding token @p token. */
    int
    pageOf(int token) const
    {
        PADE_DCHECK(token >= 0 && token < tokens_);
        return token / cfg_.page_tokens;
    }
    /** Row of token @p token inside its page. */
    int
    rowOf(int token) const
    {
        PADE_DCHECK(token >= 0 && token < tokens_);
        return token % cfg_.page_tokens;
    }

    /**
     * Append one token: pack the key row's bit planes into the tail
     * page (opening a new page when full), dequantize the value row,
     * and precompute the per-plane PlaneWork. O(bits * head_dim).
     */
    void appendToken(std::span<const int8_t> k_row,
                     std::span<const int8_t> v_row);

    /**
     * Splice a FULL shared page in at the append frontier (prefix
     * adoption). Only legal at a page boundary — the cache must hold
     * no partial tail — and only for a page whose geometry and
     * quantization scale match this cache exactly (PADE_CHECKed; a
     * mismatched adoption would silently corrupt decode outputs).
     * The page is aliased, not copied: readers of this cache and of
     * every other adopter observe the producer's packed planes,
     * dequantized values, and cached PlaneWork.
     */
    void adoptSharedPage(std::shared_ptr<const KvPage> page);

    /**
     * Hand out a reference to FULL page @p page for sharing (prefix
     * publication). Full pages are immutable, so the alias is safe
     * for the page's lifetime; the shared_ptr keeps it alive past
     * this cache's own eviction.
     */
    std::shared_ptr<const KvPage> sharePage(int page) const;

    /** Packed key planes of page @p page (page-local row indices). */
    const BitPlaneSet &
    pagePlanes(int page) const
    {
        return livePage(page).planes;
    }

    /** Dequantized value row of global token @p token. */
    std::span<const float>
    valueRow(int token) const
    {
        return livePage(pageOf(token)).values.row(rowOf(token));
    }

    /** Cached PlaneWork of (token, plane). */
    const PlaneWork &
    work(int token, int plane) const
    {
        PADE_DCHECK(plane >= 0 && plane < cfg_.bits);
        const KvPage &p = livePage(pageOf(token));
        return p.work[static_cast<std::size_t>(rowOf(token)) *
                          cfg_.bits +
                      plane];
    }

    /**
     * All cached PlaneWork of page @p page: row r's planes start at
     * offset r * bits. The decode scan fetches this once per key
     * (alongside pagePlanes) instead of re-deriving (page, row) per
     * plane.
     */
    std::span<const PlaneWork>
    pageWork(int page) const
    {
        return livePage(page).work;
    }

    /**
     * Resident bytes across live pages (planes + values + work
     * table). Pages allocate their full fixed capacity up front, so
     * this steps by kvPageBytes() per live page. Shared pages are
     * counted by every cache referencing them — system-wide savings
     * from sharing are reported by the prefix-cache layer, which
     * knows the adoption count.
     */
    std::size_t bytesUsed() const;

  private:
    /**
     * Page @p page, which must not have been dropped or reclaimed.
     * Liveness is a PADE_CHECK, armed in every build type: serving a
     * span from a dead page is a read of freed memory, and
     * retention-policy bugs must abort a Release server at the
     * boundary rather than corrupt its outputs.
     */
    const KvPage &
    livePage(int page) const
    {
        PADE_CHECK_GE(page, first_live_page_);
        PADE_CHECK_LT(page, numPages());
        const auto &slot = pages_[static_cast<std::size_t>(
            page - first_live_page_)];
        PADE_CHECK(slot != nullptr);
        return *slot;
    }

    KvCacheConfig cfg_;
    /**
     * Resident page slots, front-dropped by dropPagesBefore and
     * middle-nulled by dropPagesIn: deque slot i holds logical page
     * first_live_page_ + i, or nullptr when that page was reclaimed.
     * Deque: slot addresses are stable across appends, and pop_front
     * leaves the survivors' addresses untouched. shared_ptr: pages
     * adopted by other caches (or pinned by the PrefixIndex) survive
     * this cache's eviction.
     */
    std::deque<std::shared_ptr<const KvPage>> pages_;
    /** The append frontier; null iff pages_ is empty. Owned mutably
     *  by this cache alone — it aliases pages_.back() until that
     *  page fills, and a full page is never written again. */
    std::shared_ptr<KvPage> tail_;
    int first_live_page_ = 0;
    int tokens_ = 0;
};

} // namespace pade

#endif // PADE_SERVING_KV_CACHE_H

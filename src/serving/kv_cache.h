/**
 * @file
 * Append-only bit-plane KV cache for incremental decoding.
 *
 * Autoregressive serving appends exactly one (key, value) row per
 * decode step, but the seed code re-quantized and re-packed the entire
 * KV history each step. This cache keeps the history resident across
 * steps in fixed-capacity *pages*:
 *
 *  - keys live as `BitPlaneSet` pages grown with
 *    `BitPlaneSet::appendToken()`, so packing a new token costs
 *    O(bits * head_dim) regardless of the history length and is
 *    bit-identical to a from-scratch pack of the same rows (the
 *    storage contract the AVX2 QK backend relies on — 32-byte-aligned
 *    plane rows with zero padding — holds page by page);
 *  - values live as dequantized float rows (the exact
 *    `scale * int8` floats `padeAttention`'s value stage consumes);
 *  - the query-independent per-(token, plane) `PlaneWork` accounting
 *    is computed once at append time instead of once per decode step
 *    — amortizing what `padeAttention` rebuilds per call.
 *
 * Pages are fixed at `page_tokens` rows and reserved up front
 * (`AlignedAllocator` storage), so an append never moves previously
 * stored planes: spans handed out by the accessors stay valid across
 * appendToken() calls. Pages live in a deque for stable addresses.
 *
 * Thread safety: external. One cache belongs to one KV-head stream:
 * appendToken()/dropPagesBefore() mutate and must be serialized by
 * the owner, while the const accessors are safe to share across
 * concurrent readers *between* mutations — the GQA decode path leans
 * on exactly that (every query head of a group scans the one shared
 * cache; LayerEngine serializes appends against decode rounds). There
 * is deliberately no internal mutex: a lock per page access would sit
 * on the per-token hot path.
 *
 * Invariant checking: page liveness and append-shape violations are
 * PADE_CHECKs (armed in Release — a span handed out for a dropped
 * page means reading freed memory); per-token index arithmetic inside
 * the hot scan is PADE_DCHECK (test builds compile with -UNDEBUG).
 */

#ifndef PADE_SERVING_KV_CACHE_H
#define PADE_SERVING_KV_CACHE_H

#include <cstddef>
#include <cstdint>
#include <deque>
#include <span>
#include <vector>

#include "common/check.h"
#include "core/bit_serial.h"
#include "quant/bitplane.h"
#include "tensor/matrix.h"

namespace pade {

/** Geometry and quantization parameters fixed at cache creation. */
struct KvCacheConfig
{
    int head_dim = 128;
    int bits = 8;          //!< key bit-plane width (2..8)
    int page_tokens = 256; //!< tokens per page (fixed capacity)
    /**
     * GSAT sub-group geometry baked into the cached PlaneWork
     * entries; must match the PadeConfig the decode engine runs with
     * (asserted there).
     */
    int subgroup = 8;
    int muxes = 4;
    /** Value dequantization scale: float row = v_scale * int8 row. */
    float v_scale = 1.0f;
};

/**
 * Append-only paged KV store for one attention head's decode stream.
 */
class KvCache
{
  public:
    explicit KvCache(const KvCacheConfig &cfg);

    const KvCacheConfig &config() const { return cfg_; }

    /** Tokens appended so far (evicted tokens still count). */
    int size() const { return tokens_; }
    /** Logical pages ever opened (dropped pages included). */
    int
    numPages() const
    {
        return first_live_page_ + static_cast<int>(pages_.size());
    }
    /** Pages still resident (numPages() minus dropped pages). */
    int livePages() const { return static_cast<int>(pages_.size()); }

    /**
     * First token whose page is still resident. Token indices are
     * stable across eviction — dropPagesBefore() frees storage but
     * never renumbers — so consumers skip tokens below this bound
     * instead of re-indexing.
     */
    int firstLiveToken() const
    {
        return first_live_page_ * cfg_.page_tokens;
    }

    /**
     * Free every page whose tokens all precede @p token (whole pages
     * only; the page containing @p token survives). Spans handed out
     * for surviving pages stay valid; accessors for dropped tokens
     * assert. This is the eviction primitive behind sliding-window /
     * StreamingLLM retention (see RetentionPolicy in decode_engine.h).
     */
    void dropPagesBefore(int token);

    /** Page holding token @p token. */
    int
    pageOf(int token) const
    {
        PADE_DCHECK(token >= 0 && token < tokens_);
        return token / cfg_.page_tokens;
    }
    /** Row of token @p token inside its page. */
    int
    rowOf(int token) const
    {
        PADE_DCHECK(token >= 0 && token < tokens_);
        return token % cfg_.page_tokens;
    }

    /**
     * Append one token: pack the key row's bit planes into the tail
     * page (opening a new page when full), dequantize the value row,
     * and precompute the per-plane PlaneWork. O(bits * head_dim).
     */
    void appendToken(std::span<const int8_t> k_row,
                     std::span<const int8_t> v_row);

    /** Packed key planes of page @p page (page-local row indices). */
    const BitPlaneSet &
    pagePlanes(int page) const
    {
        return livePage(page).planes;
    }

    /** Dequantized value row of global token @p token. */
    std::span<const float>
    valueRow(int token) const
    {
        return livePage(pageOf(token)).values.row(rowOf(token));
    }

    /** Cached PlaneWork of (token, plane). */
    const PlaneWork &
    work(int token, int plane) const
    {
        PADE_DCHECK(plane >= 0 && plane < cfg_.bits);
        const Page &p = livePage(pageOf(token));
        return p.work[static_cast<std::size_t>(rowOf(token)) *
                          cfg_.bits +
                      plane];
    }

    /**
     * All cached PlaneWork of page @p page: row r's planes start at
     * offset r * bits. The decode scan fetches this once per key
     * (alongside pagePlanes) instead of re-deriving (page, row) per
     * plane.
     */
    std::span<const PlaneWork>
    pageWork(int page) const
    {
        return livePage(page).work;
    }

    /**
     * Resident bytes across all pages (planes + values + work
     * table). Pages allocate their full fixed capacity up front, so
     * this steps by one page worth of bytes per page_tokens appends.
     */
    std::size_t bytesUsed() const;

  private:
    struct Page
    {
        explicit Page(const KvCacheConfig &cfg);

        BitPlaneSet planes;          //!< keys, page-local rows
        MatrixF values;              //!< dequantized V rows
        std::vector<PlaneWork> work; //!< used * bits entries
    };

    /**
     * Page @p page, which must not have been dropped. Liveness is a
     * PADE_CHECK, armed in every build type: serving a span from a
     * dropped page is a read of freed memory, and retention-policy
     * bugs must abort a Release server at the boundary rather than
     * corrupt its outputs.
     */
    const Page &
    livePage(int page) const
    {
        PADE_CHECK_GE(page, first_live_page_);
        PADE_CHECK_LT(page, numPages());
        return pages_[static_cast<std::size_t>(page -
                                               first_live_page_)];
    }

    KvCacheConfig cfg_;
    /**
     * Resident pages, front-dropped by eviction: deque slot i holds
     * logical page first_live_page_ + i. Deque: page addresses are
     * stable across appends, and pop_front leaves the survivors'
     * addresses untouched.
     */
    std::deque<Page> pages_;
    int first_live_page_ = 0;
    int tokens_ = 0;
};

} // namespace pade

#endif // PADE_SERVING_KV_CACHE_H

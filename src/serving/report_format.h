/**
 * @file
 * One shared text formatter for serving results. The example programs
 * (batch_serving, model_serving) and any future CLI print
 * ServingReport summaries, percentile lines, and checksum gates
 * through these helpers instead of each keeping its own printf block
 * — one place decides what a report looks like, so adding a field
 * (as PR 9 did with tpot/p999) edits one function.
 */

#ifndef PADE_SERVING_REPORT_FORMAT_H
#define PADE_SERVING_REPORT_FORMAT_H

#include <cstdint>
#include <string>
#include <string_view>

#include "arch/run_metrics.h"
#include "serving/continuous_batcher.h"

namespace pade {

/**
 * Compact tail summary: "p50/p95/p99 = a/b/c ms (mean m, max M,
 * n=k)". p999 is appended only when the set is large enough for it to
 * differ from max (count >= 1000) — the usual serving-demo sample
 * sizes would print a duplicate of max.
 */
std::string formatPercentiles(const Percentiles &p);

/**
 * Multi-line run summary of @p r, each line prefixed with @p label:
 * token totals and rounds, peak residency, throughput, latency/TTFT/
 * TPOT percentile lines, and — when the report carries telemetry —
 * the derived pipeline-bubble and KV-bytes-per-token ratios.
 */
std::string formatServingReport(std::string_view label,
                                const ServingReport &r);

/**
 * One checksum gate line: "<label>: <16-hex checksum> (<note>)",
 * aligned for stacking several gates.
 */
std::string formatChecksumLine(std::string_view label,
                               uint64_t checksum,
                               std::string_view note);

} // namespace pade

#endif // PADE_SERVING_REPORT_FORMAT_H

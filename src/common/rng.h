/**
 * @file
 * Deterministic pseudo-random number generation for workloads and tests.
 *
 * We implement xoshiro256** (Blackman & Vigna) seeded through SplitMix64,
 * which gives reproducible, high-quality streams without dragging in
 * <random> engine/state portability concerns. All workload generation in
 * the repository flows through this class so experiments are bit-for-bit
 * repeatable across platforms.
 */

#ifndef PADE_COMMON_RNG_H
#define PADE_COMMON_RNG_H

#include <cmath>
#include <cstdint>

namespace pade {

/** SplitMix64 step; used for seeding and as a cheap standalone mixer. */
inline uint64_t
splitMix64(uint64_t &state)
{
    uint64_t z = (state += 0x9e3779b97f4a7c15ULL);
    z = (z ^ (z >> 30)) * 0xbf58476d1ce4e5b9ULL;
    z = (z ^ (z >> 27)) * 0x94d049bb133111ebULL;
    return z ^ (z >> 31);
}

/**
 * xoshiro256** generator with convenience distributions.
 *
 * Not cryptographic; intended for simulation workloads only.
 */
class Rng
{
  public:
    /** Construct from a 64-bit seed (expanded via SplitMix64). */
    explicit Rng(uint64_t seed = 0x5eed5eed5eed5eedULL)
    {
        uint64_t sm = seed;
        for (auto &word : state_)
            word = splitMix64(sm);
    }

    /** Next raw 64-bit value. */
    uint64_t
    next()
    {
        const uint64_t result = rotl(state_[1] * 5, 7) * 9;
        const uint64_t t = state_[1] << 17;
        state_[2] ^= state_[0];
        state_[3] ^= state_[1];
        state_[1] ^= state_[2];
        state_[0] ^= state_[3];
        state_[2] ^= t;
        state_[3] = rotl(state_[3], 45);
        return result;
    }

    /** Uniform double in [0, 1). */
    double
    uniform()
    {
        return (next() >> 11) * 0x1.0p-53;
    }

    /** Uniform double in [lo, hi). */
    double
    uniform(double lo, double hi)
    {
        return lo + (hi - lo) * uniform();
    }

    /** Uniform integer in [0, n) ; n must be > 0. */
    uint64_t
    below(uint64_t n)
    {
        return next() % n;
    }

    /** Uniform integer in [lo, hi] inclusive. */
    int64_t
    range(int64_t lo, int64_t hi)
    {
        return lo + static_cast<int64_t>(below(
            static_cast<uint64_t>(hi - lo + 1)));
    }

    /** Standard normal via Box-Muller (one value per call). */
    double
    gaussian()
    {
        if (have_cached_) {
            have_cached_ = false;
            return cached_;
        }
        double u1 = 0.0;
        while (u1 <= 1e-12)
            u1 = uniform();
        const double u2 = uniform();
        const double r = std::sqrt(-2.0 * std::log(u1));
        const double theta = 6.283185307179586476925286766559 * u2;
        cached_ = r * std::sin(theta);
        have_cached_ = true;
        return r * std::cos(theta);
    }

    /** Normal with given mean / stddev. */
    double
    gaussian(double mean, double stddev)
    {
        return mean + stddev * gaussian();
    }

    /** Bernoulli draw with probability p of returning true. */
    bool
    bernoulli(double p)
    {
        return uniform() < p;
    }

    /** Exponential with rate lambda (> 0). */
    double
    exponential(double lambda)
    {
        double u = 0.0;
        while (u <= 1e-12)
            u = uniform();
        return -std::log(u) / lambda;
    }

  private:
    static uint64_t
    rotl(uint64_t x, int k)
    {
        return (x << k) | (x >> (64 - k));
    }

    uint64_t state_[4];
    double cached_ = 0.0;
    bool have_cached_ = false;
};

} // namespace pade

#endif // PADE_COMMON_RNG_H

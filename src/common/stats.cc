#include "common/stats.h"

#include <cmath>
#include <sstream>

#include "common/math_util.h"

namespace pade {

void
Distribution::sample(double v)
{
    if (count_ == 0) {
        min_ = v;
        max_ = v;
    } else {
        min_ = std::min(min_, v);
        max_ = std::max(max_, v);
    }
    count_++;
    sum_ += v;
    sum_sq_ += v * v;
}

void
Distribution::reset()
{
    count_ = 0;
    sum_ = 0.0;
    sum_sq_ = 0.0;
    min_ = 0.0;
    max_ = 0.0;
}

double
Distribution::mean() const
{
    return count_ ? sum_ / static_cast<double>(count_) : 0.0;
}

double
Distribution::stddev() const
{
    if (count_ < 2)
        return 0.0;
    const double n = static_cast<double>(count_);
    const double var = std::max(0.0, sum_sq_ / n - (sum_ / n) * (sum_ / n));
    return std::sqrt(var);
}

Scalar &
StatGroup::scalar(const std::string &name)
{
    return scalars_[name];
}

Distribution &
StatGroup::distribution(const std::string &name)
{
    return dists_[name];
}

double
StatGroup::get(const std::string &name) const
{
    auto it = scalars_.find(name);
    return it == scalars_.end() ? 0.0 : it->second.value();
}

bool
StatGroup::has(const std::string &name) const
{
    return scalars_.count(name) != 0;
}

void
StatGroup::reset()
{
    for (auto &kv : scalars_)
        kv.second.reset();
    for (auto &kv : dists_)
        kv.second.reset();
}

void
StatGroup::mergeFrom(const StatGroup &other)
{
    for (const auto &kv : other.scalars_)
        scalars_[kv.first] += kv.second.value();
}

std::string
StatGroup::dump() const
{
    std::ostringstream os;
    for (const auto &kv : scalars_)
        os << name_ << "." << kv.first << " = " << kv.second.value()
           << "\n";
    for (const auto &kv : dists_) {
        os << name_ << "." << kv.first << " = {mean="
           << kv.second.mean() << ", min=" << kv.second.min()
           << ", max=" << kv.second.max() << ", n=" << kv.second.count()
           << "}\n";
    }
    return os.str();
}

double
geoMean(const std::vector<double> &v)
{
    if (v.empty())
        return 0.0;
    double log_sum = 0.0;
    for (double x : v)
        log_sum += std::log(x);
    return std::exp(log_sum / static_cast<double>(v.size()));
}

} // namespace pade

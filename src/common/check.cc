#include "common/check.h"

#include <cstdio>
#include <cstdlib>

namespace pade {
namespace detail {

void
checkFailed(const char *file, int line, const char *expr,
            const std::string &msg)
{
    // Single fprintf so concurrent failures don't interleave words;
    // stderr is unbuffered enough that the message survives abort().
    std::fprintf(stderr, "PADE_CHECK failed: %s%s at %s:%d\n", expr,
                 msg.c_str(), file, line);
    std::fflush(stderr);
    std::abort();
}

} // namespace detail
} // namespace pade

/**
 * @file
 * Small math helpers shared across the simulator and the core library.
 */

#ifndef PADE_COMMON_MATH_UTIL_H
#define PADE_COMMON_MATH_UTIL_H

#include <algorithm>
#include <cassert>
#include <cstdint>
#include <vector>

namespace pade {

/** Integer ceiling division for non-negative operands. */
constexpr int64_t
ceilDiv(int64_t a, int64_t b)
{
    assert(b > 0);
    return (a + b - 1) / b;
}

/** Round @p a up to the next multiple of @p b. */
constexpr int64_t
roundUp(int64_t a, int64_t b)
{
    return ceilDiv(a, b) * b;
}

/** Clamp @p v into [lo, hi]. */
template <typename T>
constexpr T
clampTo(T v, T lo, T hi)
{
    return std::min(std::max(v, lo), hi);
}

/** Saturating cast of a float to int8 range. */
inline int8_t
saturateInt8(float v)
{
    const float r = v < 0.0f ? v - 0.5f : v + 0.5f;
    return static_cast<int8_t>(clampTo(static_cast<int>(r), -128, 127));
}

/** Population count of a 64-bit word. */
constexpr int
popcount64(uint64_t v)
{
    return __builtin_popcountll(v);
}

/** True iff @p v is a power of two (v > 0). */
constexpr bool
isPow2(uint64_t v)
{
    return v != 0 && (v & (v - 1)) == 0;
}

/** log2 of a power of two. */
constexpr int
log2Exact(uint64_t v)
{
    assert(isPow2(v));
    return 63 - __builtin_clzll(v);
}

/** Arithmetic mean of a vector (0 for empty). */
inline double
mean(const std::vector<double> &v)
{
    if (v.empty())
        return 0.0;
    double s = 0.0;
    for (double x : v)
        s += x;
    return s / static_cast<double>(v.size());
}

/** Geometric mean of strictly positive values (0 for empty). */
double geoMean(const std::vector<double> &v);

} // namespace pade

#endif // PADE_COMMON_MATH_UTIL_H

/**
 * @file
 * Runtime contract checks that stay armed in Release builds.
 *
 * The library's load-bearing invariants — KV-cache page liveness,
 * bit-plane storage alignment, batcher admission configuration — were
 * plain assert()s, which compile away under the default Release
 * (-DNDEBUG) build: exactly the configuration a serving deployment
 * runs. A violated invariant then corrupts state silently instead of
 * failing at the boundary. This header provides the graded
 * replacement:
 *
 *  - PADE_CHECK(cond): always on, every build type. Prints the failed
 *    expression with file:line to stderr and aborts. Use at subsystem
 *    boundaries and for invariants whose violation would corrupt
 *    state or read freed memory — the cost is one predictable branch.
 *  - PADE_CHECK_EQ/NE/LT/LE/GT/GE(a, b): PADE_CHECK for comparisons;
 *    prints both operand values on failure, so a dead report tells
 *    you *which* page/shape/count was wrong.
 *  - PADE_DCHECK / PADE_DCHECK_* : compiled out under NDEBUG, armed in
 *    Debug builds and in test translation units (which build with
 *    -UNDEBUG). Use on hot paths (per-token, per-plane accessors)
 *    where a Release branch per element is not free.
 *
 * Failure handling is a deliberate abort(), not an exception: a
 * violated invariant means the process state can no longer be
 * trusted, and abort() produces a core/sanitizer report at the point
 * of violation instead of an unwound stack far from it.
 */

#ifndef PADE_COMMON_CHECK_H
#define PADE_COMMON_CHECK_H

#include <ostream>
#include <sstream>
#include <string>
#include <type_traits>

namespace pade {
namespace detail {

/** Prints "PADE_CHECK failed: <expr><msg> at <file>:<line>", aborts. */
[[noreturn]] void checkFailed(const char *file, int line,
                              const char *expr,
                              const std::string &msg = std::string());

/**
 * Stream a checked operand; char-like integers print numerically
 * (an int8_t page index must show as -3, not as a control byte).
 */
template <typename T>
void
printOperand(std::ostream &os, const T &v)
{
    if constexpr (std::is_same_v<T, signed char> ||
                  std::is_same_v<T, unsigned char> ||
                  std::is_same_v<T, char>)
        os << static_cast<int>(v);
    else
        os << v;
}

template <typename A, typename B>
[[noreturn]] void
checkOpFailed(const char *file, int line, const char *expr, const A &a,
              const B &b)
{
    std::ostringstream os;
    os << " (";
    printOperand(os, a);
    os << " vs ";
    printOperand(os, b);
    os << ")";
    checkFailed(file, line, expr, os.str());
}

} // namespace detail
} // namespace pade

#if defined(__GNUC__) || defined(__clang__)
#define PADE_CHECK_LIKELY(x) __builtin_expect(!!(x), 1)
#else
#define PADE_CHECK_LIKELY(x) (!!(x))
#endif

/** Always-on invariant check: abort with expr + file:line on failure. */
#define PADE_CHECK(cond)                                              \
    (PADE_CHECK_LIKELY(cond)                                          \
         ? static_cast<void>(0)                                       \
         : ::pade::detail::checkFailed(__FILE__, __LINE__, #cond))

/**
 * Comparison check printing both operands on failure. Operands are
 * evaluated exactly once.
 */
#define PADE_CHECK_OP(a, op, b)                                       \
    do {                                                              \
        auto &&pade_chk_a_ = (a);                                     \
        auto &&pade_chk_b_ = (b);                                     \
        if (!PADE_CHECK_LIKELY(pade_chk_a_ op pade_chk_b_))           \
            ::pade::detail::checkOpFailed(__FILE__, __LINE__,         \
                                          #a " " #op " " #b,          \
                                          pade_chk_a_, pade_chk_b_);  \
    } while (false)

#define PADE_CHECK_EQ(a, b) PADE_CHECK_OP(a, ==, b)
#define PADE_CHECK_NE(a, b) PADE_CHECK_OP(a, !=, b)
#define PADE_CHECK_LT(a, b) PADE_CHECK_OP(a, <, b)
#define PADE_CHECK_LE(a, b) PADE_CHECK_OP(a, <=, b)
#define PADE_CHECK_GT(a, b) PADE_CHECK_OP(a, >, b)
#define PADE_CHECK_GE(a, b) PADE_CHECK_OP(a, >=, b)

/**
 * Debug-only checks: armed when NDEBUG is not defined (Debug builds
 * and test translation units, which compile with -UNDEBUG), compiled
 * out of the Release hot path like assert().
 */
#ifdef NDEBUG
#define PADE_DCHECK(cond) static_cast<void>(0)
#define PADE_DCHECK_EQ(a, b) static_cast<void>(0)
#define PADE_DCHECK_NE(a, b) static_cast<void>(0)
#define PADE_DCHECK_LT(a, b) static_cast<void>(0)
#define PADE_DCHECK_LE(a, b) static_cast<void>(0)
#define PADE_DCHECK_GT(a, b) static_cast<void>(0)
#define PADE_DCHECK_GE(a, b) static_cast<void>(0)
#else
#define PADE_DCHECK(cond) PADE_CHECK(cond)
#define PADE_DCHECK_EQ(a, b) PADE_CHECK_EQ(a, b)
#define PADE_DCHECK_NE(a, b) PADE_CHECK_NE(a, b)
#define PADE_DCHECK_LT(a, b) PADE_CHECK_LT(a, b)
#define PADE_DCHECK_LE(a, b) PADE_CHECK_LE(a, b)
#define PADE_DCHECK_GT(a, b) PADE_CHECK_GT(a, b)
#define PADE_DCHECK_GE(a, b) PADE_CHECK_GE(a, b)
#endif

#endif // PADE_COMMON_CHECK_H

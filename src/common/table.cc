#include "common/table.h"

#include <algorithm>
#include <cstdio>
#include <sstream>

namespace pade {

void
Table::header(std::vector<std::string> cells)
{
    header_ = std::move(cells);
}

void
Table::row(std::vector<std::string> cells)
{
    rows_.push_back(std::move(cells));
}

std::string
Table::num(double v, int precision)
{
    char buf[64];
    std::snprintf(buf, sizeof(buf), "%.*f", precision, v);
    return buf;
}

std::string
Table::mult(double v, int precision)
{
    char buf[64];
    std::snprintf(buf, sizeof(buf), "%.*fx", precision, v);
    return buf;
}

std::string
Table::pct(double fraction, int precision)
{
    char buf[64];
    std::snprintf(buf, sizeof(buf), "%.*f%%", precision,
                  fraction * 100.0);
    return buf;
}

std::string
Table::render() const
{
    // Column widths over header + all rows.
    std::vector<size_t> width;
    auto grow = [&width](const std::vector<std::string> &cells) {
        if (width.size() < cells.size())
            width.resize(cells.size(), 0);
        for (size_t i = 0; i < cells.size(); i++)
            width[i] = std::max(width[i], cells[i].size());
    };
    grow(header_);
    for (const auto &r : rows_)
        grow(r);

    std::ostringstream os;
    if (!caption_.empty())
        os << caption_ << "\n";

    auto emit = [&os, &width](const std::vector<std::string> &cells) {
        for (size_t i = 0; i < width.size(); i++) {
            const std::string &c = i < cells.size() ? cells[i] : "";
            os << c << std::string(width[i] - c.size(), ' ');
            if (i + 1 < width.size())
                os << "  ";
        }
        os << "\n";
    };

    if (!header_.empty()) {
        emit(header_);
        size_t total = 0;
        for (size_t w : width)
            total += w + 2;
        os << std::string(total > 2 ? total - 2 : total, '-') << "\n";
    }
    for (const auto &r : rows_)
        emit(r);
    return os.str();
}

void
Table::print() const
{
    std::fputs(render().c_str(), stdout);
    std::fputc('\n', stdout);
}

} // namespace pade

/**
 * @file
 * Minimal over-aligned allocator for SIMD-friendly containers.
 *
 * std::vector<T> only guarantees alignof(std::max_align_t) (16 bytes
 * on x86-64); the AVX2 QK backend wants every bit-plane row to start
 * on a 32-byte boundary so plane loads are aligned vector loads. The
 * allocator delegates to the C++17 aligned operator new/delete, so it
 * composes with sanitizers and custom global allocators.
 */

#ifndef PADE_COMMON_ALIGNED_H
#define PADE_COMMON_ALIGNED_H

#include <cstddef>
#include <new>

namespace pade {

/**
 * STL allocator yielding storage aligned to @p Align bytes.
 *
 * @tparam T element type; Align must be a power of two and at least
 *         alignof(T).
 */
template <typename T, std::size_t Align>
struct AlignedAllocator
{
    static_assert(Align >= alignof(T) && (Align & (Align - 1)) == 0,
                  "Align must be a power of two covering alignof(T)");

    using value_type = T;

    AlignedAllocator() = default;
    template <typename U>
    AlignedAllocator(const AlignedAllocator<U, Align> &)
    {}

    template <typename U>
    struct rebind
    {
        using other = AlignedAllocator<U, Align>;
    };

    T *
    allocate(std::size_t n)
    {
        return static_cast<T *>(::operator new(
            n * sizeof(T), std::align_val_t(Align)));
    }

    void
    deallocate(T *p, std::size_t) noexcept
    {
        ::operator delete(p, std::align_val_t(Align));
    }

    friend bool
    operator==(const AlignedAllocator &, const AlignedAllocator &)
    {
        return true;
    }
};

} // namespace pade

#endif // PADE_COMMON_ALIGNED_H

/**
 * @file
 * Minimal command-line flag parser for benches and examples.
 *
 * Supports "--name=value" and "--name value" forms plus boolean
 * "--flag". Unrecognized flags are reported via errors().
 */

#ifndef PADE_COMMON_CLI_H
#define PADE_COMMON_CLI_H

#include <cstdint>
#include <map>
#include <string>
#include <vector>

namespace pade {

/** Parsed command-line flags with typed accessors and defaults. */
class Cli
{
  public:
    Cli(int argc, char **argv);

    /** String flag with default. */
    std::string get(const std::string &name,
                    const std::string &def = "") const;
    /** Integer flag with default. */
    int64_t getInt(const std::string &name, int64_t def) const;
    /** Double flag with default. */
    double getDouble(const std::string &name, double def) const;
    /** Boolean flag: present without value, or =true/=false. */
    bool getBool(const std::string &name, bool def = false) const;

    /** True if the flag was provided. */
    bool has(const std::string &name) const;

    /** Positional (non-flag) arguments. */
    const std::vector<std::string> &positional() const
    {
        return positional_;
    }

  private:
    std::map<std::string, std::string> flags_;
    std::vector<std::string> positional_;
};

} // namespace pade

#endif // PADE_COMMON_CLI_H

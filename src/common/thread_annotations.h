/**
 * @file
 * Clang thread-safety-analysis attribute macros.
 *
 * Clang's `-Wthread-safety` turns locking discipline into a
 * compile-time property: members tagged PADE_GUARDED_BY(mu) may only
 * be touched while `mu` is held, functions tagged PADE_REQUIRES(mu)
 * may only be called with it held, and the analysis proves both at
 * every call site. The serving stack fans whole GQA layers across the
 * work-stealing ThreadPool, and the planned pipelined ModelEngine
 * will overlap decode and append rounds — this layer is the static
 * race detector that polices that growth before TSan ever runs.
 *
 * The macros expand to GNU attributes under clang and to nothing
 * everywhere else, so gcc builds are unaffected. The analysis only
 * understands annotated capability types: libstdc++'s std::mutex
 * carries no attributes, which is why src/runtime/mutex.h wraps it in
 * an annotated pade::Mutex — always lock through those wrappers in
 * annotated code.
 *
 * Naming follows the modern capability-based spelling of the clang
 * docs (https://clang.llvm.org/docs/ThreadSafetyAnalysis.html);
 * legacy spellings (lockable, guarded_var, ...) are intentionally not
 * exposed.
 */

#ifndef PADE_COMMON_THREAD_ANNOTATIONS_H
#define PADE_COMMON_THREAD_ANNOTATIONS_H

#if defined(__clang__)
#define PADE_THREAD_ANNOTATION(x) __attribute__((x))
#else
#define PADE_THREAD_ANNOTATION(x) // no-op off clang
#endif

/** Marks a type as a capability (a mutex-like object). */
#define PADE_CAPABILITY(x) PADE_THREAD_ANNOTATION(capability(x))

/** Marks an RAII type that acquires in its ctor / releases in dtor. */
#define PADE_SCOPED_CAPABILITY PADE_THREAD_ANNOTATION(scoped_lockable)

/** Data member readable/writable only while @p x is held. */
#define PADE_GUARDED_BY(x) PADE_THREAD_ANNOTATION(guarded_by(x))

/** Pointer member whose *pointee* is protected by @p x. */
#define PADE_PT_GUARDED_BY(x) PADE_THREAD_ANNOTATION(pt_guarded_by(x))

/** Caller must hold the capability (exclusively). */
#define PADE_REQUIRES(...) \
    PADE_THREAD_ANNOTATION(requires_capability(__VA_ARGS__))

/** Caller must hold the capability at least shared. */
#define PADE_REQUIRES_SHARED(...) \
    PADE_THREAD_ANNOTATION(requires_shared_capability(__VA_ARGS__))

/** Function acquires the capability and holds it on return. */
#define PADE_ACQUIRE(...) \
    PADE_THREAD_ANNOTATION(acquire_capability(__VA_ARGS__))

/** Shared-mode PADE_ACQUIRE. */
#define PADE_ACQUIRE_SHARED(...) \
    PADE_THREAD_ANNOTATION(acquire_shared_capability(__VA_ARGS__))

/** Function releases the capability (which must be held on entry). */
#define PADE_RELEASE(...) \
    PADE_THREAD_ANNOTATION(release_capability(__VA_ARGS__))

/** Shared-mode PADE_RELEASE. */
#define PADE_RELEASE_SHARED(...) \
    PADE_THREAD_ANNOTATION(release_shared_capability(__VA_ARGS__))

/** Function acquires iff it returns @p ret (try_lock shape). */
#define PADE_TRY_ACQUIRE(...) \
    PADE_THREAD_ANNOTATION(try_acquire_capability(__VA_ARGS__))

/** Caller must NOT hold the capability (deadlock guard). */
#define PADE_EXCLUDES(...) \
    PADE_THREAD_ANNOTATION(locks_excluded(__VA_ARGS__))

/** Asserts (at runtime) that the capability is held; analysis trusts it. */
#define PADE_ASSERT_CAPABILITY(x) \
    PADE_THREAD_ANNOTATION(assert_capability(x))

/** Function returns a reference to the given capability. */
#define PADE_RETURN_CAPABILITY(x) PADE_THREAD_ANNOTATION(lock_returned(x))

/** Declares a lock-acquisition ordering between two capabilities. */
#define PADE_ACQUIRED_BEFORE(...) \
    PADE_THREAD_ANNOTATION(acquired_before(__VA_ARGS__))
#define PADE_ACQUIRED_AFTER(...) \
    PADE_THREAD_ANNOTATION(acquired_after(__VA_ARGS__))

/**
 * Escape hatch: disables the analysis for one function. Reserve for
 * code whose safety argument the analysis cannot express (document
 * why at every use site); see docs/STATIC_ANALYSIS.md for the
 * suppression policy.
 */
#define PADE_NO_THREAD_SAFETY_ANALYSIS \
    PADE_THREAD_ANNOTATION(no_thread_safety_analysis)

#endif // PADE_COMMON_THREAD_ANNOTATIONS_H

/**
 * @file
 * Lightweight named-statistics registry, in the spirit of gem5's stats
 * package but sized for this project: scalar counters, accumulating
 * energies, and simple distributions, all addressable by dotted names.
 *
 * Every architectural component owns a StatGroup; the top-level simulator
 * aggregates them into a single report that the bench harnesses print.
 */

#ifndef PADE_COMMON_STATS_H
#define PADE_COMMON_STATS_H

#include <cstdint>
#include <map>
#include <string>
#include <utility>
#include <vector>

namespace pade {

/** A scalar statistic: counter or accumulator. */
class Scalar
{
  public:
    Scalar() = default;

    void operator+=(double v) { value_ += v; }
    void operator++(int) { value_ += 1.0; }
    void set(double v) { value_ = v; }
    void reset() { value_ = 0.0; }
    double value() const { return value_; }

  private:
    double value_ = 0.0;
};

/** Running distribution: min / max / mean / stddev / count. */
class Distribution
{
  public:
    void sample(double v);
    void reset();

    uint64_t count() const { return count_; }
    double min() const { return count_ ? min_ : 0.0; }
    double max() const { return count_ ? max_ : 0.0; }
    double mean() const;
    double stddev() const;

  private:
    uint64_t count_ = 0;
    double sum_ = 0.0;
    double sum_sq_ = 0.0;
    double min_ = 0.0;
    double max_ = 0.0;
};

/**
 * A named group of statistics. Components create named scalars and
 * distributions; groups can be dumped or merged for reporting.
 */
class StatGroup
{
  public:
    explicit StatGroup(std::string name) : name_(std::move(name)) {}

    /** Get-or-create a scalar statistic. */
    Scalar &scalar(const std::string &name);
    /** Get-or-create a distribution statistic. */
    Distribution &distribution(const std::string &name);

    /** Read a scalar's value; 0 if absent. */
    double get(const std::string &name) const;
    /** True if a scalar with this name exists. */
    bool has(const std::string &name) const;

    /** Reset all statistics in the group. */
    void reset();

    /** Merge another group's scalars into this one (summing). */
    void mergeFrom(const StatGroup &other);

    const std::string &name() const { return name_; }
    const std::map<std::string, Scalar> &scalars() const
    {
        return scalars_;
    }

    /** Render "name.stat = value" lines. */
    std::string dump() const;

  private:
    std::string name_;
    std::map<std::string, Scalar> scalars_;
    std::map<std::string, Distribution> dists_;
};

} // namespace pade

#endif // PADE_COMMON_STATS_H

/**
 * @file
 * ASCII table printer used by the bench harnesses to emit paper-style
 * tables and figure series on stdout.
 */

#ifndef PADE_COMMON_TABLE_H
#define PADE_COMMON_TABLE_H

#include <string>
#include <utility>
#include <vector>

namespace pade {

/**
 * Column-aligned ASCII table. Add a header row and data rows of strings
 * or doubles; render() right-pads columns and draws a separator.
 */
class Table
{
  public:
    /** Construct with an optional caption printed above the table. */
    explicit Table(std::string caption = "") : caption_(std::move(caption))
    {}

    /** Set the header row. */
    void header(std::vector<std::string> cells);
    /** Append a data row of preformatted strings. */
    void row(std::vector<std::string> cells);

    /** Format a double with @p precision decimals. */
    static std::string num(double v, int precision = 3);
    /** Format a double as a "1.23x" multiplier string. */
    static std::string mult(double v, int precision = 2);
    /** Format a fraction as "12.3%". */
    static std::string pct(double fraction, int precision = 1);

    /** Render the table to a string. */
    std::string render() const;
    /** Render and print to stdout. */
    void print() const;

  private:
    std::string caption_;
    std::vector<std::string> header_;
    std::vector<std::vector<std::string>> rows_;
};

} // namespace pade

#endif // PADE_COMMON_TABLE_H

#include "attention/metrics.h"

#include <algorithm>
#include <cassert>
#include <cmath>
#include <numeric>

#include "attention/reference.h"

namespace pade {

double
relativeError(const MatrixF &a, const MatrixF &b)
{
    assert(a.rows() == b.rows() && a.cols() == b.cols());
    double num = 0.0;
    double den = 0.0;
    for (int i = 0; i < a.rows(); i++) {
        for (int j = 0; j < a.cols(); j++) {
            const double e = static_cast<double>(a.at(i, j)) - b.at(i, j);
            num += e * e;
            den += static_cast<double>(b.at(i, j)) * b.at(i, j);
        }
    }
    return den > 0.0 ? std::sqrt(num / den) : std::sqrt(num);
}

double
cosineSimilarity(const MatrixF &a, const MatrixF &b)
{
    assert(a.rows() == b.rows() && a.cols() == b.cols());
    double total = 0.0;
    int counted = 0;
    for (int i = 0; i < a.rows(); i++) {
        double dot = 0.0;
        double na = 0.0;
        double nb = 0.0;
        for (int j = 0; j < a.cols(); j++) {
            dot += static_cast<double>(a.at(i, j)) * b.at(i, j);
            na += static_cast<double>(a.at(i, j)) * a.at(i, j);
            nb += static_cast<double>(b.at(i, j)) * b.at(i, j);
        }
        if (na > 0.0 && nb > 0.0) {
            total += dot / std::sqrt(na * nb);
            counted++;
        }
    }
    return counted ? total / counted : 1.0;
}

double
retainedMass(const MatrixF &logits, const Matrix<uint8_t> &keep)
{
    assert(logits.rows() == keep.rows() && logits.cols() == keep.cols());
    double total = 0.0;
    for (int i = 0; i < logits.rows(); i++) {
        std::vector<float> probs(logits.row(i).begin(),
                                 logits.row(i).end());
        softmaxRow(probs);
        double mass = 0.0;
        for (int j = 0; j < logits.cols(); j++)
            if (keep.at(i, j))
                mass += probs[j];
        total += mass;
    }
    return logits.rows() ? total / logits.rows() : 1.0;
}

double
topkRecall(const MatrixF &logits, const Matrix<uint8_t> &keep, int k)
{
    assert(logits.rows() == keep.rows() && logits.cols() == keep.cols());
    if (logits.cols() == 0 || logits.rows() == 0)
        return 1.0;
    k = std::min(k, logits.cols());
    double total = 0.0;
    std::vector<int> idx(logits.cols());
    for (int i = 0; i < logits.rows(); i++) {
        std::iota(idx.begin(), idx.end(), 0);
        auto row = logits.row(i);
        std::partial_sort(idx.begin(), idx.begin() + k, idx.end(),
                          [&row](int a, int b) {
                              return row[a] > row[b];
                          });
        int hit = 0;
        for (int t = 0; t < k; t++)
            if (keep.at(i, idx[t]))
                hit++;
        total += static_cast<double>(hit) / k;
    }
    return total / logits.rows();
}

double
prunedFraction(const Matrix<uint8_t> &keep)
{
    if (keep.size() == 0)
        return 0.0;
    uint64_t kept = 0;
    for (int i = 0; i < keep.rows(); i++)
        for (uint8_t v : keep.row(i))
            kept += v ? 1 : 0;
    return 1.0 - static_cast<double>(kept) /
           static_cast<double>(keep.size());
}

double
taskScoreFromMass(double retained_mass)
{
    // Piecewise mapping: losing softmax mass m costs roughly
    // proportional task score once past a small tolerance. Calibrated
    // anchor points: mass 1.0 -> 1.0, 0.999 -> ~0.9995, 0.99 -> ~0.995,
    // 0.9 -> ~0.94, 0.5 -> ~0.30.
    const double m = std::clamp(retained_mass, 0.0, 1.0);
    const double loss = 1.0 - m;
    const double penalty = 0.5 * loss + 1.8 * loss * loss;
    return std::max(0.0, 1.0 - penalty);
}

} // namespace pade

#include "attention/online_softmax.h"

#include <cassert>
#include <cmath>
#include <limits>

namespace pade {

OnlineSoftmaxRow::OnlineSoftmaxRow(int dim)
    : dim_(dim), m_(-std::numeric_limits<float>::infinity()),
      acc_(dim, 0.0f)
{
}

void
OnlineSoftmaxRow::reset(int dim)
{
    dim_ = dim;
    m_ = -std::numeric_limits<float>::infinity();
    l_ = 0.0f;
    acc_.assign(static_cast<size_t>(dim), 0.0f);
    max_updates_ = 0;
    rescale_ops_ = 0;
}

void
OnlineSoftmaxRow::absorbMax(float tile_max)
{
    const float new_m = std::max(m_, tile_max);
    if (new_m > m_ && l_ > 0.0f) {
        // Rescale the accumulator: one subtraction + exp, then a
        // scalar-vector multiply on O and one on l (paper lines 11-12).
        const float correction = std::exp(m_ - new_m);
        for (float &a : acc_)
            a *= correction;
        l_ *= correction;
        max_updates_++;
        rescale_ops_ += static_cast<uint64_t>(2 * dim_ + 2);
    } else if (new_m > m_) {
        max_updates_ += (m_ !=
            -std::numeric_limits<float>::infinity()) ? 1 : 0;
    }
    m_ = new_m;
}

void
OnlineSoftmaxRow::accumulate(float score, std::span<const float> vrow)
{
    assert(static_cast<int>(vrow.size()) == dim_);
    const float p = std::exp(score - m_);
    l_ += p;
    for (int d = 0; d < dim_; d++)
        acc_[d] += p * vrow[d];
}

void
OnlineSoftmaxRow::update(std::span<const float> scores,
                         const std::vector<std::span<const float>> &values)
{
    assert(scores.size() == values.size());
    if (scores.empty())
        return;

    float tile_max = scores[0];
    for (float s : scores)
        tile_max = std::max(tile_max, s);
    absorbMax(tile_max);

    for (size_t t = 0; t < scores.size(); t++)
        accumulate(scores[t], values[t]);
}

void
OnlineSoftmaxRow::update(std::span<const float> scores,
                         const MatrixF &values, std::span<const int> ids)
{
    assert(scores.size() == ids.size());
    if (scores.empty())
        return;

    float tile_max = scores[0];
    for (float s : scores)
        tile_max = std::max(tile_max, s);
    absorbMax(tile_max);

    for (size_t t = 0; t < scores.size(); t++)
        accumulate(scores[t], values.row(ids[t]));
}

void
OnlineSoftmaxRow::update(std::span<const float> scores,
                         const MatrixF &values, int first_row)
{
    if (scores.empty())
        return;

    float tile_max = scores[0];
    for (float s : scores)
        tile_max = std::max(tile_max, s);
    absorbMax(tile_max);

    for (size_t t = 0; t < scores.size(); t++)
        accumulate(scores[t],
                   values.row(first_row + static_cast<int>(t)));
}

std::vector<float>
OnlineSoftmaxRow::finalize() const
{
    std::vector<float> out(acc_);
    if (l_ > 0.0f)
        for (float &v : out)
            v /= l_;
    return out;
}

void
OnlineSoftmaxRow::finalizeInto(std::span<float> out) const
{
    assert(static_cast<int>(out.size()) == dim_);
    if (l_ > 0.0f) {
        for (int d = 0; d < dim_; d++)
            out[d] = acc_[d] / l_;
    } else {
        for (int d = 0; d < dim_; d++)
            out[d] = acc_[d];
    }
}

MatrixF
flashAttention(const MatrixF &q, const MatrixF &k, const MatrixF &v,
               float scale, int tile_size)
{
    assert(tile_size > 0 && k.rows() == v.rows());
    MatrixF out(q.rows(), v.cols());

    OnlineSoftmaxRow acc(v.cols());
    std::vector<float> scores(static_cast<size_t>(tile_size));
    for (int i = 0; i < q.rows(); i++) {
        acc.reset(v.cols());
        auto qrow = q.row(i);
        for (int base = 0; base < k.rows(); base += tile_size) {
            const int hi = std::min(k.rows(), base + tile_size);
            for (int j = base; j < hi; j++) {
                float s = 0.0f;
                auto krow = k.row(j);
                for (int d = 0; d < k.cols(); d++)
                    s += qrow[d] * krow[d];
                scores[static_cast<size_t>(j - base)] = s * scale;
            }
            acc.update(std::span<const float>(scores)
                           .first(static_cast<size_t>(hi - base)),
                       v, base);
        }
        acc.finalizeInto(out.row(i));
    }
    return out;
}

std::vector<int>
headTailOrder(int num_tiles)
{
    std::vector<int> order;
    order.reserve(num_tiles);
    int head = 0;
    int tail = num_tiles - 1;
    bool take_head = true;
    while (head <= tail) {
        if (take_head)
            order.push_back(head++);
        else
            order.push_back(tail--);
        take_head = !take_head;
    }
    return order;
}

} // namespace pade

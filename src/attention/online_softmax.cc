#include "attention/online_softmax.h"

#include <cassert>
#include <cmath>
#include <limits>

namespace pade {

OnlineSoftmaxRow::OnlineSoftmaxRow(int dim)
    : dim_(dim), m_(-std::numeric_limits<float>::infinity()),
      acc_(dim, 0.0f)
{
}

void
OnlineSoftmaxRow::update(std::span<const float> scores,
                         const std::vector<std::span<const float>> &values)
{
    assert(scores.size() == values.size());
    if (scores.empty())
        return;

    float tile_max = scores[0];
    for (float s : scores)
        tile_max = std::max(tile_max, s);

    const float new_m = std::max(m_, tile_max);
    if (new_m > m_ && l_ > 0.0f) {
        // Rescale the accumulator: one subtraction + exp, then a
        // scalar-vector multiply on O and one on l (paper lines 11-12).
        const float correction = std::exp(m_ - new_m);
        for (float &a : acc_)
            a *= correction;
        l_ *= correction;
        max_updates_++;
        rescale_ops_ += static_cast<uint64_t>(2 * dim_ + 2);
    } else if (new_m > m_) {
        max_updates_ += (m_ !=
            -std::numeric_limits<float>::infinity()) ? 1 : 0;
    }
    m_ = new_m;

    for (size_t t = 0; t < scores.size(); t++) {
        const float p = std::exp(scores[t] - m_);
        l_ += p;
        auto vrow = values[t];
        assert(static_cast<int>(vrow.size()) == dim_);
        for (int d = 0; d < dim_; d++)
            acc_[d] += p * vrow[d];
    }
}

std::vector<float>
OnlineSoftmaxRow::finalize() const
{
    std::vector<float> out(acc_);
    if (l_ > 0.0f)
        for (float &v : out)
            v /= l_;
    return out;
}

MatrixF
flashAttention(const MatrixF &q, const MatrixF &k, const MatrixF &v,
               float scale, int tile_size)
{
    assert(tile_size > 0 && k.rows() == v.rows());
    MatrixF out(q.rows(), v.cols());

    for (int i = 0; i < q.rows(); i++) {
        OnlineSoftmaxRow acc(v.cols());
        auto qrow = q.row(i);
        for (int base = 0; base < k.rows(); base += tile_size) {
            const int hi = std::min(k.rows(), base + tile_size);
            std::vector<float> scores;
            std::vector<std::span<const float>> vals;
            for (int j = base; j < hi; j++) {
                float s = 0.0f;
                auto krow = k.row(j);
                for (int d = 0; d < k.cols(); d++)
                    s += qrow[d] * krow[d];
                scores.push_back(s * scale);
                vals.push_back(v.row(j));
            }
            acc.update(scores, vals);
        }
        auto rowv = acc.finalize();
        for (int d = 0; d < v.cols(); d++)
            out.at(i, d) = rowv[d];
    }
    return out;
}

std::vector<int>
headTailOrder(int num_tiles)
{
    std::vector<int> order;
    order.reserve(num_tiles);
    int head = 0;
    int tail = num_tiles - 1;
    bool take_head = true;
    while (head <= tail) {
        if (take_head)
            order.push_back(head++);
        else
            order.push_back(tail--);
        take_head = !take_head;
    }
    return order;
}

} // namespace pade

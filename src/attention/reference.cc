#include "attention/reference.h"

#include <cassert>
#include <cmath>
#include <limits>

namespace pade {

void
softmaxRow(std::span<float> row)
{
    if (row.empty())
        return;
    float mx = row[0];
    for (float v : row)
        mx = std::max(mx, v);
    float sum = 0.0f;
    for (float &v : row) {
        v = std::exp(v - mx);
        sum += v;
    }
    if (sum <= 0.0f)
        return;
    for (float &v : row)
        v /= sum;
}

MatrixF
attentionLogits(const MatrixF &q, const MatrixF &k, float scale)
{
    MatrixF s = matmulBt<float, float, float>(q, k);
    for (int i = 0; i < s.rows(); i++)
        for (float &v : s.row(i))
            v *= scale;
    return s;
}

namespace {

constexpr float kNegInf = -std::numeric_limits<float>::infinity();

/** Apply a causal mask assuming queries occupy the last Sq positions. */
void
applyCausal(MatrixF &s, int sk)
{
    const int sq = s.rows();
    for (int i = 0; i < sq; i++) {
        // Query i sits at absolute position sk - sq + i.
        const int pos = sk - sq + i;
        for (int j = pos + 1; j < sk; j++)
            s.at(i, j) = kNegInf;
    }
}

MatrixF
softmaxTimesV(MatrixF s, const MatrixF &v)
{
    for (int i = 0; i < s.rows(); i++)
        softmaxRow(s.row(i));
    return matmul<float, float, float>(s, v);
}

} // namespace

MatrixF
denseAttention(const MatrixF &q, const MatrixF &k, const MatrixF &v,
               float scale, bool causal)
{
    assert(k.rows() == v.rows());
    MatrixF s = attentionLogits(q, k, scale);
    if (causal)
        applyCausal(s, k.rows());
    return softmaxTimesV(std::move(s), v);
}

MatrixF
int8Attention(const MatrixF &q, const MatrixF &k, const MatrixF &v,
              float scale, bool causal)
{
    const Quantized qq = quantizeSymmetric(q, 8);
    const Quantized kq = quantizeSymmetric(k, 8);
    const Quantized vq = quantizeSymmetric(v, 8);

    MatrixI32 si = matmulBt<int8_t, int8_t, int32_t>(qq.values,
                                                     kq.values);
    MatrixF s(si.rows(), si.cols());
    const float deq = qq.params.scale * kq.params.scale * scale;
    for (int i = 0; i < s.rows(); i++)
        for (int j = 0; j < s.cols(); j++)
            s.at(i, j) = deq * static_cast<float>(si.at(i, j));
    if (causal)
        applyCausal(s, k.rows());

    const MatrixF vf = dequantize(vq);
    return softmaxTimesV(std::move(s), vf);
}

MatrixF
maskedAttention(const MatrixF &q, const MatrixF &k, const MatrixF &v,
                float scale, const Matrix<uint8_t> &keep)
{
    assert(keep.rows() == q.rows() && keep.cols() == k.rows());
    MatrixF s = attentionLogits(q, k, scale);
    for (int i = 0; i < s.rows(); i++)
        for (int j = 0; j < s.cols(); j++)
            if (!keep.at(i, j))
                s.at(i, j) = kNegInf;
    return softmaxTimesV(std::move(s), v);
}

} // namespace pade

/**
 * @file
 * Reference attention implementations: FP32 dense softmax attention and
 * the INT8 functional baseline the paper calibrates accuracy against.
 * These serve as the oracle for every sparse method in the repository.
 */

#ifndef PADE_ATTENTION_REFERENCE_H
#define PADE_ATTENTION_REFERENCE_H

#include <cstdint>
#include <span>
#include <vector>

#include "quant/quantizer.h"
#include "tensor/matrix.h"

namespace pade {

/** In-place numerically stable softmax over a row. */
void softmaxRow(std::span<float> row);

/**
 * Dense attention O = softmax(Q K^T * scale) V in FP32.
 *
 * @param q (Sq x H) queries
 * @param k (Sk x H) keys
 * @param v (Sk x H) values
 * @param scale logit scale, typically 1/sqrt(H)
 * @param causal apply causal mask with queries aligned to the last
 *        Sq positions of the key sequence
 */
MatrixF denseAttention(const MatrixF &q, const MatrixF &k,
                       const MatrixF &v, float scale,
                       bool causal = false);

/** Raw logit matrix S = Q K^T * scale (no softmax). */
MatrixF attentionLogits(const MatrixF &q, const MatrixF &k, float scale);

/**
 * INT8 functional attention: Q/K/V quantized symmetrically, logits
 * dequantized before an FP32 softmax (matching the paper's INT8 baseline
 * where non-linear ops stay in high precision).
 */
MatrixF int8Attention(const MatrixF &q, const MatrixF &k,
                      const MatrixF &v, float scale,
                      bool causal = false);

/**
 * Masked dense attention: rows of @p keep flag which keys participate
 * per query row. Used to evaluate any pruning decision functionally.
 */
MatrixF maskedAttention(const MatrixF &q, const MatrixF &k,
                        const MatrixF &v, float scale,
                        const Matrix<uint8_t> &keep);

} // namespace pade

#endif // PADE_ATTENTION_REFERENCE_H

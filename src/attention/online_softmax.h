/**
 * @file
 * FlashAttention-style online softmax accumulator.
 *
 * ISTA (paper §IV-C) builds on exactly this recurrence: tiles of scores
 * arrive one block at a time; a running max m, denominator l and output
 * accumulator O are rescaled whenever the max grows. The class also
 * counts "max update" events so the head-tail interleaving experiment
 * (paper Fig. 10) can quantify the redundant rescale work it removes.
 */

#ifndef PADE_ATTENTION_ONLINE_SOFTMAX_H
#define PADE_ATTENTION_ONLINE_SOFTMAX_H

#include <cstdint>
#include <span>
#include <vector>

#include "tensor/matrix.h"

namespace pade {

/**
 * Online softmax state for a single query row.
 */
class OnlineSoftmaxRow
{
  public:
    /** @param dim output (value) dimensionality. */
    explicit OnlineSoftmaxRow(int dim);

    /**
     * Re-arm for a new query row of dimensionality @p dim. Reuses the
     * accumulator storage, so resetting is allocation-free once the
     * capacity has been reached (the workspace-reuse contract of
     * padeAttention).
     */
    void reset(int dim);

    /**
     * Fold in one tile of scores and their value rows.
     *
     * @param scores logits of this tile (already scaled)
     * @param values value rows, values[t] belongs to scores[t]
     */
    void update(std::span<const float> scores,
                const std::vector<std::span<const float>> &values);

    /**
     * Allocation-free tile update: scores[t] pairs with row ids[t] of
     * @p values. This is the form the fused ISTA hot path uses — the
     * caller passes its retained-id list directly instead of
     * materializing a vector of row spans per tile.
     */
    void update(std::span<const float> scores, const MatrixF &values,
                std::span<const int> ids);

    /**
     * Allocation-free tile update over contiguous value rows:
     * scores[t] pairs with row first_row + t.
     */
    void update(std::span<const float> scores, const MatrixF &values,
                int first_row);

    /** Finalize: O / l. Valid once at least one score arrived. */
    std::vector<float> finalize() const;

    /** Allocation-free finalize into @p out (size must equal dim). */
    void finalizeInto(std::span<float> out) const;

    /** Number of tiles whose arrival grew the running max. */
    uint64_t maxUpdates() const { return max_updates_; }
    /** Total rescale multiply-adds spent on max updates (2*dim each). */
    uint64_t rescaleOps() const { return rescale_ops_; }
    /** Current running max (for tests). */
    float runningMax() const { return m_; }
    /** Current denominator (for tests). */
    float denominator() const { return l_; }

  private:
    /** Grow the running max to cover @p tile_max, rescaling O and l. */
    void absorbMax(float tile_max);
    /** Fold one exp-weighted value row into the accumulator. */
    void accumulate(float score, std::span<const float> vrow);

    int dim_;
    float m_;
    float l_ = 0.0f;
    std::vector<float> acc_;
    uint64_t max_updates_ = 0;
    uint64_t rescale_ops_ = 0;
};

/**
 * Tiled dense attention via online softmax (FlashAttention recurrence),
 * used as a cross-check oracle for ISTA.
 *
 * @param tile_size keys per tile (Bc)
 */
MatrixF flashAttention(const MatrixF &q, const MatrixF &k,
                       const MatrixF &v, float scale, int tile_size);

/**
 * Generate the head-tail interleaved tile visit order of ISTA:
 * 0, T-1, 1, T-2, ... (initial region first, then the recent region,
 * then post-initial, repeating). For T <= 2 this equals natural order.
 */
std::vector<int> headTailOrder(int num_tiles);

} // namespace pade

#endif // PADE_ATTENTION_ONLINE_SOFTMAX_H

/**
 * @file
 * Accuracy proxies for sparse attention.
 *
 * We cannot run the paper's pretrained LLMs offline, so every accuracy
 * experiment reports faithful functional proxies measured against the
 * dense INT8 oracle (see DESIGN.md §3):
 *  - output relative error / cosine similarity of attention outputs,
 *  - retained softmax mass (probability captured by unpruned keys),
 *  - top-k agreement between sparse and dense attention distributions.
 * The mapping from retained mass to a task-score delta is documented in
 * EXPERIMENTS.md and implemented in taskScoreFromMass().
 */

#ifndef PADE_ATTENTION_METRICS_H
#define PADE_ATTENTION_METRICS_H

#include <cstdint>
#include <span>
#include <vector>

#include "tensor/matrix.h"

namespace pade {

/** Relative Frobenius error ||a - b|| / ||b|| (b = reference). */
double relativeError(const MatrixF &a, const MatrixF &b);

/** Mean row-wise cosine similarity between two matrices. */
double cosineSimilarity(const MatrixF &a, const MatrixF &b);

/**
 * Softmax probability mass retained by a keep mask, averaged over rows.
 *
 * @param logits (Sq x Sk) attention logits (scaled)
 * @param keep   (Sq x Sk) 1 = key retained
 */
double retainedMass(const MatrixF &logits, const Matrix<uint8_t> &keep);

/**
 * Fraction of the dense top-k keys that the mask retains, averaged over
 * rows (recall of vital tokens).
 */
double topkRecall(const MatrixF &logits, const Matrix<uint8_t> &keep,
                  int k);

/** Fraction of (query, key) pairs pruned by the mask. */
double prunedFraction(const Matrix<uint8_t> &keep);

/**
 * Map retained softmax mass to an estimated relative task-score
 * multiplier in (0, 1]. Calibrated so that mass >= 0.999 keeps score
 * parity with the INT8 baseline ("0% loss") and mass ~0.99 costs about
 * one point ("1% loss"), matching the paper's standard/aggressive
 * operating points.
 */
double taskScoreFromMass(double retained_mass);

} // namespace pade

#endif // PADE_ATTENTION_METRICS_H

#include "arch/v_pu.h"

#include <algorithm>

#include "common/math_util.h"
#include "core/rars.h"
#include "energy/tech.h"
#include "memory/layout.h"

namespace pade {

VPuResult
simulateVPu(const ArchConfig &cfg, const QuantizedHead &head,
            const std::vector<std::vector<int>> &retained,
            uint64_t rescale_ops, HbmModel &hbm, uint64_t v_base,
            double start_ns)
{
    VPuResult res;
    const int h = head.v.values.cols();
    const int p = static_cast<int>(retained.size());
    const double ns_per_cycle = tech::kNsPerCycle;
    const double sram_per_byte = 0.6;

    // V fetch schedule: RARS greedy vs naive left-to-right.
    const RarsSchedule naive = scheduleNaive(retained,
                                             cfg.vpu_vs_per_round);
    const RarsSchedule sched = cfg.enable_rars ?
        scheduleRars(retained, cfg.vpu_vs_per_round) : naive;
    res.v_loads = sched.loads;
    res.v_loads_naive = naive.loads;

    // Fetch and compute timelines are decoupled: V vectors stream
    // (double-buffered staging) while the output-stationary array
    // consumes whatever is resident; the stage finishes when both the
    // fetch schedule and the MAC work are done.
    double fetch_t = start_ns;
    double fetch_done = start_ns;
    uint64_t total_retained = 0;
    for (const auto &row : retained)
        total_retained += row.size();

    for (const auto &round : sched.rounds) {
        for (int v : round) {
            const HbmAccess acc = hbm.read(
                rowMajorAddress(v_base, v, h), h, fetch_t);
            fetch_done = std::max(fetch_done, acc.complete_ns);
            fetch_t = std::max(fetch_t, acc.issue_ns);
            res.sram_pj += 2.0 * h * sram_per_byte; // stage + read
        }
    }

    // Systolic work: every retained (row, key) pair streams H MACs
    // through the rows x cols array; pipeline bubbles between rounds
    // cost ~10%. Online-softmax rescales (reduced by head-tail
    // interleaving) ride the same datapath.
    const double mac_cycles = 1.1 *
        static_cast<double>(total_retained) * h /
        (static_cast<double>(cfg.vpu_rows) * cfg.vpu_cols);
    const double rescale_cycles =
        static_cast<double>(rescale_ops) / cfg.vpu_cols;
    res.busy_cycles += mac_cycles + rescale_cycles;
    res.compute_pj += static_cast<double>(rescale_ops) *
        tech::kFp32AddPj;
    double t = std::max(fetch_done, start_ns +
                        (mac_cycles + rescale_cycles) * ns_per_cycle);

    // Score spill when ISTA tiling is disabled: all row scores must be
    // buffered before pruning completes; overflow goes to DRAM and
    // comes back.
    if (!cfg.enable_ista) {
        const uint64_t score_bytes = 2ULL * head.k.values.rows() * p;
        // Without tile-level decisions, scores stage in the small
        // score-FIFO region rather than the tiled working set.
        const uint64_t budget = 24 * 1024;
        if (score_bytes > budget) {
            res.spill_bytes = 2 * (score_bytes - budget);
            uint64_t addr = v_base + (1ULL << 30);
            uint64_t remaining = res.spill_bytes;
            while (remaining > 0) {
                const uint32_t chunk = static_cast<uint32_t>(
                    std::min<uint64_t>(remaining, 1024));
                t = hbm.read(addr, chunk, t).complete_ns;
                addr += chunk;
                remaining -= chunk;
            }
        }
    }

    // Systolic MACs: every retained (key, row) pair multiplies its
    // probability with an H-wide V row.
    res.vpu_mac_pj = static_cast<double>(total_retained) * h *
        tech::kInt8MacPj;
    // APM: one FP16 exponential per retained score.
    res.apm_pj = static_cast<double>(total_retained) *
        tech::kFp16ExpPj;
    res.compute_pj += res.vpu_mac_pj + res.apm_pj;

    // Output writeback: P x H FP16 through SRAM to DRAM.
    const uint64_t out_bytes = static_cast<uint64_t>(p) * h * 2;
    res.sram_pj += out_bytes * sram_per_byte;
    hbm.read(v_base + (1ULL << 31), static_cast<uint32_t>(
        std::max<uint64_t>(out_bytes, 1)), t);

    res.makespan_ns = t - start_ns;
    return res;
}

} // namespace pade

#include "arch/run_metrics.h"

#include <algorithm>
#include <cmath>
#include <vector>

namespace pade {

namespace {

/** Nearest-rank: the ceil(q * n)-th smallest sample (1-based). */
double
nearestRank(const std::vector<double> &sorted, double q)
{
    const std::size_t n = sorted.size();
    std::size_t rank = static_cast<std::size_t>(
        std::ceil(q * static_cast<double>(n)));
    rank = std::clamp<std::size_t>(rank, 1, n);
    return sorted[rank - 1];
}

} // namespace

Percentiles
Percentiles::of(std::span<const double> samples)
{
    Percentiles p;
    if (samples.empty())
        return p;
    std::vector<double> sorted(samples.begin(), samples.end());
    std::sort(sorted.begin(), sorted.end());
    p.p50 = nearestRank(sorted, 0.50);
    p.p95 = nearestRank(sorted, 0.95);
    p.p99 = nearestRank(sorted, 0.99);
    p.p999 = nearestRank(sorted, 0.999);
    p.max = sorted.back();
    p.count = static_cast<int64_t>(sorted.size());
    double sum = 0.0;
    for (const double v : sorted)
        sum += v;
    p.mean = sum / static_cast<double>(sorted.size());
    return p;
}

} // namespace pade

#include "arch/pade_accelerator.h"

#include <algorithm>

#include "arch/qk_pu.h"
#include "arch/v_pu.h"
#include "common/math_util.h"
#include "energy/tech.h"

namespace pade {

RunMetrics
RunMetrics::scaled(double f) const
{
    RunMetrics m = *this;
    m.qk_cycles *= f;
    m.v_cycles *= f;
    m.cycles *= f;
    m.time_ns *= f;
    m.useful_ops *= f;
    m.dram_bytes = static_cast<uint64_t>(
        static_cast<double>(m.dram_bytes) * f);
    m.sram_bytes = static_cast<uint64_t>(
        static_cast<double>(m.sram_bytes) * f);
    m.busy_cycles *= f;
    m.dram_stall_cycles *= f;
    m.intra_pe_stall_cycles *= f;
    m.inter_pe_stall_cycles *= f;
    m.bit_shift_cycles *= f;

    m.energy.compute_pj *= f;
    m.energy.sram_pj *= f;
    m.energy.dram_pj *= f;
    m.energy.other_pj *= f;
    for (auto &kv : m.energy.modules)
        kv.second *= f;

    m.prune.planes_processed = static_cast<uint64_t>(
        static_cast<double>(m.prune.planes_processed) * f);
    m.prune.planes_total = static_cast<uint64_t>(
        static_cast<double>(m.prune.planes_total) * f);
    m.prune.keys_retained = static_cast<uint64_t>(
        static_cast<double>(m.prune.keys_retained) * f);
    m.prune.keys_total = static_cast<uint64_t>(
        static_cast<double>(m.prune.keys_total) * f);
    m.prune.ops_bs = static_cast<uint64_t>(
        static_cast<double>(m.prune.ops_bs) * f);
    m.prune.ops_naive = static_cast<uint64_t>(
        static_cast<double>(m.prune.ops_naive) * f);
    return m;
}

RunMetrics &
RunMetrics::operator+=(const RunMetrics &o)
{
    // Intensive ratios first: cycle-weighted mean over both runs.
    const double w0 = cycles;
    const double w1 = o.cycles;
    const double wsum = w0 + w1;
    if (wsum > 0.0) {
        utilization = (utilization * w0 + o.utilization * w1) / wsum;
        bw_utilization =
            (bw_utilization * w0 + o.bw_utilization * w1) / wsum;
        row_hit_rate =
            (row_hit_rate * w0 + o.row_hit_rate * w1) / wsum;
    }

    qk_cycles += o.qk_cycles;
    v_cycles += o.v_cycles;
    cycles += o.cycles;
    time_ns += o.time_ns;
    useful_ops += o.useful_ops;
    energy += o.energy;
    dram_bytes += o.dram_bytes;
    sram_bytes += o.sram_bytes;
    busy_cycles += o.busy_cycles;
    dram_stall_cycles += o.dram_stall_cycles;
    intra_pe_stall_cycles += o.intra_pe_stall_cycles;
    inter_pe_stall_cycles += o.inter_pe_stall_cycles;
    bit_shift_cycles += o.bit_shift_cycles;

    prune.planes_processed += o.prune.planes_processed;
    prune.planes_total += o.prune.planes_total;
    prune.keys_retained += o.prune.keys_retained;
    prune.keys_total += o.prune.keys_total;
    prune.ops_bs += o.prune.ops_bs;
    prune.ops_naive += o.prune.ops_naive;
    prune.max_updates += o.prune.max_updates;
    prune.rescale_ops += o.prune.rescale_ops;
    prune.threshold_updates += o.prune.threshold_updates;
    return *this;
}

PadeAccelerator::PadeAccelerator(ArchConfig cfg) : cfg_(cfg)
{
}

RunMetrics
PadeAccelerator::runHead(const QuantizedHead &head)
{
    const int p = head.q.values.rows();
    const int s = head.k.values.rows();
    const int h = head.v.values.cols();
    const int bits = head.k_planes.numPlanes();

    // 1. Functional pass: pruning trace + retained sets + outputs.
    PadeConfig algo = cfg_.algo;
    algo.guard_enabled = cfg_.enable_guard;
    algo.head_tail = cfg_.enable_head_tail && cfg_.enable_ista;
    const PadeResult fn = padeAttention(head, algo);

    // 2. Replay through the hardware models on one HBM timeline.
    HbmModel hbm(cfg_.hbm);
    const KAddressMap kmap(cfg_.k_layout, s, head.k_planes.planeBytes(),
                           bits, 0);
    const uint64_t v_base = roundUp(
        static_cast<int64_t>(kmap.regionBytes()), 4096);

    const std::vector<int> order = istaScanOrder(s, algo.tile_bc,
                                                 algo.head_tail);
    const QkPuResult qk = simulateQkPu(cfg_, head, fn.planes, order,
                                       hbm, kmap, 0.0);

    // ISTA overlaps the value stage with QK speculation (staggered
    // pipeline; V trails the retained-tile production); without tiling
    // the value stage waits for the full score row.
    const double v_start = cfg_.enable_ista ?
        qk.makespan_ns * 0.3 : qk.makespan_ns;

    uint64_t rescale = fn.stats.rescale_ops;
    const VPuResult v = simulateVPu(cfg_, head, fn.retained, rescale,
                                    hbm, v_base, v_start);

    // 3. Aggregate.
    RunMetrics m;
    m.qk_cycles = qk.makespan_ns * tech::kCyclesPerNs;
    m.v_cycles = v.makespan_ns * tech::kCyclesPerNs;
    m.time_ns = std::max(qk.makespan_ns, v_start + v.makespan_ns);
    m.cycles = m.time_ns * tech::kCyclesPerNs;

    // Dense-equivalent useful work: QK^T and P*V MACs (x2 ops each).
    uint64_t visible_pairs = 0;
    if (algo.causal) {
        for (int i = 0; i < p; i++)
            visible_pairs += static_cast<uint64_t>(s - p + i + 1);
    } else {
        visible_pairs = static_cast<uint64_t>(p) * s;
    }
    m.useful_ops = 4.0 * static_cast<double>(visible_pairs) * h;

    m.energy.add("pe_lane", qk.pe_lane_pj,
                 &EnergyBreakdown::compute_pj);
    m.energy.add("scoreboard", qk.scoreboard_pj,
                 &EnergyBreakdown::compute_pj);
    m.energy.add("decision_unit", qk.decision_pj,
                 &EnergyBreakdown::compute_pj);
    m.energy.add("bui", qk.bui_pj, &EnergyBreakdown::compute_pj);
    m.energy.add("schedulers", qk.scheduler_pj,
                 &EnergyBreakdown::compute_pj);
    m.energy.add("vpu", v.vpu_mac_pj, &EnergyBreakdown::compute_pj);
    m.energy.add("apm", v.apm_pj, &EnergyBreakdown::compute_pj);
    m.energy.add("vpu_rescale",
                 v.compute_pj - v.vpu_mac_pj - v.apm_pj,
                 &EnergyBreakdown::compute_pj);
    m.energy.add("buffers", qk.sram_pj + v.sram_pj,
                 &EnergyBreakdown::sram_pj);
    m.energy.add("dram", hbm.energyPj(), &EnergyBreakdown::dram_pj);
    // Top control / NoC overhead plus idle power over the makespan.
    m.energy.add("others", 0.05 * m.energy.compute_pj,
                 &EnergyBreakdown::other_pj);
    m.energy.add("static", tech::kAsicIdlePjPerNs * m.time_ns,
                 &EnergyBreakdown::other_pj);

    m.dram_bytes = hbm.busBytes();
    m.bw_utilization = hbm.bandwidthUtilization(m.time_ns);
    m.row_hit_rate = hbm.rowHitRate();
    m.sram_bytes = static_cast<uint64_t>(
        (qk.sram_pj + v.sram_pj) / 0.6);

    m.busy_cycles = qk.busy_cycles + v.busy_cycles;
    m.dram_stall_cycles = qk.dram_stall_cycles;
    m.intra_pe_stall_cycles = qk.intra_pe_stall_cycles;
    m.inter_pe_stall_cycles = qk.inter_pe_stall_cycles;
    m.bit_shift_cycles = qk.bit_shift_cycles;

    const int bundles = cfg_.shared_k ? 1 : p;
    const double lane_slots = static_cast<double>(bundles) *
        cfg_.lanes_per_row * std::max(m.qk_cycles, 1.0);
    m.utilization = std::min(1.0, qk.busy_cycles / lane_slots);

    m.prune = fn.stats;
    return m;
}

} // namespace pade

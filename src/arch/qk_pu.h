/**
 * @file
 * Cycle-level model of the Query-Key Processing Unit (paper Fig. 11):
 * 8 rows x 16 bit-wise PE lanes with scoreboards, fed by the HBM model
 * through a configurable K layout. The model replays the functional
 * pruning trace (planes consumed per key) through a discrete-event
 * simulation of the lanes:
 *
 *  - keys are sharded round-robin over lanes in ISTA scan order;
 *  - each in-flight key occupies one scoreboard entry and has at most
 *    one outstanding bit-plane request;
 *  - with OOE the lane computes whichever loaded plane is ready while
 *    others are in flight; without OOE it blocks in order (the paper's
 *    Fig. 8(c)(d) exposed-latency behaviour);
 *  - per-plane compute cycles come from the GSAT work model: 1 cycle
 *    with BS, popcount-bound without (BitWave-style imbalance);
 *  - without result reuse, every bit round refetches all prior planes
 *    (the redundant-access behaviour the scoreboard PE eliminates).
 */

#ifndef PADE_ARCH_QK_PU_H
#define PADE_ARCH_QK_PU_H

#include <cstdint>
#include <vector>

#include "arch/arch_config.h"
#include "arch/run_metrics.h"
#include "memory/hbm.h"
#include "memory/layout.h"
#include "workload/generator.h"

namespace pade {

/** Timing/energy outcome of the QK stage. */
struct QkPuResult
{
    double makespan_ns = 0.0;
    double busy_cycles = 0.0;
    double dram_stall_cycles = 0.0;
    double intra_pe_stall_cycles = 0.0;
    double inter_pe_stall_cycles = 0.0;
    double bit_shift_cycles = 0.0;
    double compute_pj = 0.0;
    double sram_pj = 0.0;
    /** Finer module split for the Fig. 20 pie. */
    double pe_lane_pj = 0.0;
    double scoreboard_pj = 0.0;
    double decision_pj = 0.0;
    double bui_pj = 0.0;
    double scheduler_pj = 0.0;
};

/**
 * Simulate the QK-PU over one head's pruning trace.
 *
 * @param cfg architecture configuration
 * @param head quantized operands (for plane geometry and work counts)
 * @param planes (P x S) planes consumed per (query row, key)
 * @param order key scan order (ISTA order used by the functional run)
 * @param hbm shared HBM model (accumulates traffic/time)
 * @param kmap K address map (layout policy)
 * @param start_ns simulation start time on the HBM timeline
 */
QkPuResult simulateQkPu(const ArchConfig &cfg, const QuantizedHead &head,
                        const Matrix<uint8_t> &planes,
                        const std::vector<int> &order, HbmModel &hbm,
                        const KAddressMap &kmap, double start_ns);

} // namespace pade

#endif // PADE_ARCH_QK_PU_H

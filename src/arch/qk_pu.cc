#include "arch/qk_pu.h"

#include <algorithm>
#include <array>
#include <cassert>
#include <deque>
#include <unordered_map>

#include "common/math_util.h"
#include "core/bit_serial.h"
#include "energy/tech.h"

namespace pade {

namespace {

/** Extra per-plane cycles for weighted shift-and-accumulate. */
constexpr double kBitShiftCyclesPerPlane = 0.2;

/**
 * Prefetch FIFO depth without OOE: a simple double-buffered lane can
 * overlap a few upcoming keys' first planes, but cannot reorder around
 * a stalled key the way the scoreboard-driven OOE engine can.
 */
constexpr int kInorderWindow = 4;

/** One key's bit-serial job on a lane. */
struct KeyTask
{
    int key = 0;
    int needed_planes = 0;
    /** Rows still active at plane r (for energy scaling). */
    std::array<uint8_t, 8> active{};
    /** Prefetched per-plane ready times (independent-fetch mode). */
    std::vector<double> plane_ready;
};

/** Lane state for the discrete-event replay. */
struct Lane
{
    double t_ns = 0.0;
    std::deque<int> pending;      //!< indices into the task vector
    struct Inflight
    {
        int task = 0;
        int plane = 0;
        double ready_ns = 0.0;
    };
    std::vector<Inflight> inflight;
    double busy_cycles = 0.0;
    double stall_cycles = 0.0;
    double intra_cycles = 0.0;
    double shift_cycles = 0.0;

    bool
    done() const
    {
        return pending.empty() && inflight.empty();
    }
};

} // namespace

QkPuResult
simulateQkPu(const ArchConfig &cfg, const QuantizedHead &head,
             const Matrix<uint8_t> &planes, const std::vector<int> &order,
             HbmModel &hbm, const KAddressMap &kmap, double start_ns)
{
    const int p = planes.rows();
    const int s = planes.cols();
    const int h = head.k.values.cols();
    const int plane_bytes = head.k_planes.planeBytes();
    const int bits = head.k_planes.numPlanes();
    const int passes = static_cast<int>(ceilDiv(h, cfg.lane_dim));

    QkPuResult res;

    // With the guard enabled, fetching plane r+1 depends on plane r's
    // pruning decision (the paper's Challenge 2); without it, every
    // plane is known-needed and streams latency-free.
    const bool dependent_fetch = cfg.enable_guard;

    // Build task bundles: shared-K prefill uses one bundle whose plane
    // demand is the max over rows; decode streams per-row keys.
    const int bundles = cfg.shared_k ? 1 : p;
    std::vector<std::vector<KeyTask>> tasks(bundles);
    for (int b = 0; b < bundles; b++) {
        auto &list = tasks[b];
        list.reserve(s);
        for (int j : order) {
            KeyTask task;
            task.key = j;
            if (cfg.shared_k) {
                for (int i = 0; i < p; i++) {
                    const int pl = planes.at(i, j);
                    task.needed_planes = std::max(task.needed_planes,
                                                  pl);
                    for (int r = 0; r < pl && r < 8; r++)
                        task.active[r]++;
                }
            } else {
                task.needed_planes = planes.at(b, j);
                for (int r = 0; r < task.needed_planes && r < 8; r++)
                    task.active[r] = 1;
            }
            if (task.needed_planes > 0)
                list.push_back(task);
        }
    }

    // Shard tasks over lanes (round-robin in scan order).
    const int lanes_total = bundles * cfg.lanes_per_row;
    std::vector<Lane> lanes(lanes_total);
    std::vector<std::vector<KeyTask> *> lane_tasks(lanes_total);
    for (int b = 0; b < bundles; b++) {
        for (size_t idx = 0; idx < tasks[b].size(); idx++) {
            const int lane_id = b * cfg.lanes_per_row +
                static_cast<int>(idx % cfg.lanes_per_row);
            lanes[lane_id].pending.push_back(static_cast<int>(idx));
        }
        for (int l = 0; l < cfg.lanes_per_row; l++)
            lane_tasks[b * cfg.lanes_per_row + l] = &tasks[b];
    }
    for (auto &lane : lanes)
        lane.t_ns = start_ns;

    const int max_inflight = cfg.enable_ooe ? cfg.scoreboard_entries :
        (dependent_fetch ? kInorderWindow : cfg.scoreboard_entries);
    const double ns_per_cycle = tech::kNsPerCycle;
    const double sram_per_byte = 0.6; // KV buffer ~ 320 KB class

    // Burst-coalescing cache: adjacent keys' planes share DRAM bursts
    // in the plane-major layout; the BS scheduler merges such requests
    // (paper: "enabling memory request merging"). Holds burst-id ->
    // completion time. Bypassed when result reuse is off (those
    // refetches are the modelled inefficiency).
    std::unordered_map<uint64_t, double> burst_cache;
    const uint64_t burst = static_cast<uint64_t>(
        hbm.config().burst_bytes);

    auto fetchBytes = [&](uint64_t addr, uint32_t bytes, double now,
                          bool coalesce) {
        if (!coalesce) {
            const HbmAccess acc = hbm.read(addr, bytes, now);
            res.sram_pj += bytes * sram_per_byte; // stage into KV SRAM
            return acc.complete_ns;
        }
        double ready = now;
        const uint64_t first = addr / burst;
        const uint64_t last = (addr + bytes - 1) / burst;
        for (uint64_t bid = first; bid <= last; bid++) {
            auto it = burst_cache.find(bid);
            if (it != burst_cache.end()) {
                ready = std::max(ready, it->second);
                continue;
            }
            const HbmAccess acc = hbm.read(bid * burst,
                                           hbm.config().burst_bytes,
                                           now);
            burst_cache[bid] = acc.complete_ns;
            res.sram_pj += hbm.config().burst_bytes * sram_per_byte;
            ready = std::max(ready, acc.complete_ns);
        }
        return ready;
    };

    auto issue = [&](Lane &lane, int bundle, int task_idx, int plane) {
        KeyTask &task = (*lane_tasks[bundle])[task_idx];
        if (!dependent_fetch) {
            // Known-needed planes stream from the start of the run
            // (pure prefetch; channel occupancy paces the stream).
            if (task.plane_ready.empty()) {
                task.plane_ready.resize(task.needed_planes);
                for (int r = 0; r < task.needed_planes; r++) {
                    task.plane_ready[r] = fetchBytes(
                        kmap.address(task.key, r),
                        static_cast<uint32_t>(plane_bytes), start_ns,
                        true);
                }
            }
            lane.inflight.push_back({task_idx, plane,
                                     task.plane_ready[plane]});
            return;
        }
        // Dependent fetch: one outstanding plane per key. The MSB
        // plane of every key is known-needed, so the stream prefetcher
        // issues it from the start; deeper planes wait for the pruning
        // decision. Without result reuse the PE refetches all prior
        // planes each round (paper §V-C motivation).
        const uint64_t addr = kmap.address(task.key, plane);
        const uint32_t bytes = cfg.result_reuse ?
            static_cast<uint32_t>(plane_bytes) :
            static_cast<uint32_t>(plane_bytes) * (plane + 1);
        const double when = plane == 0 ? start_ns : lane.t_ns;
        const double ready = fetchBytes(addr, bytes, when,
                                        cfg.result_reuse);
        lane.inflight.push_back({task_idx, plane, ready});
    };

    // Discrete-event loop: always advance the earliest non-done lane.
    while (true) {
        Lane *next = nullptr;
        int next_bundle = 0;
        for (int l = 0; l < lanes_total; l++) {
            if (lanes[l].done())
                continue;
            if (!next || lanes[l].t_ns < next->t_ns) {
                next = &lanes[l];
                next_bundle = l / cfg.lanes_per_row;
            }
        }
        if (!next)
            break;
        Lane &lane = *next;

        // Refill scoreboard slots with new keys' first planes.
        while (static_cast<int>(lane.inflight.size()) < max_inflight &&
               !lane.pending.empty()) {
            const int task_idx = lane.pending.front();
            lane.pending.pop_front();
            issue(lane, next_bundle, task_idx, 0);
        }

        // Earliest-ready inflight plane.
        int ready = -1;
        double best_ready = 0.0;
        for (size_t k = 0; k < lane.inflight.size(); k++) {
            const auto &inf = lane.inflight[k];
            if (ready < 0 || inf.ready_ns < best_ready) {
                ready = static_cast<int>(k);
                best_ready = inf.ready_ns;
            }
        }
        assert(ready >= 0);

        if (best_ready > lane.t_ns) {
            // Nothing loaded yet: stall until the earliest plane lands.
            lane.stall_cycles += (best_ready - lane.t_ns) /
                ns_per_cycle;
            lane.t_ns = best_ready;
        }

        const auto inf = lane.inflight[ready];
        lane.inflight.erase(lane.inflight.begin() + ready);
        const KeyTask &task = (*lane_tasks[next_bundle])[inf.task];

        const PlaneWork work = planeWork(head.k_planes, task.key,
                                         inf.plane, cfg.subgroup,
                                         cfg.muxes);
        const int per_pass = cfg.enable_bs ? work.cycles_bs :
            work.cycles_naive;
        const int selected = cfg.enable_bs ? work.selected_bs :
            work.selected_naive;
        const double cycles = static_cast<double>(per_pass) * passes;

        // Imbalance beyond a perfectly balanced redistribution of the
        // same selected bits over all mux slots.
        const int groups = static_cast<int>(
            ceilDiv(std::min(h, cfg.lane_dim), cfg.subgroup));
        const double ideal = std::max<double>(
            passes,
            static_cast<double>(ceilDiv(selected,
                                        groups * cfg.muxes)));
        lane.intra_cycles += std::max(0.0, cycles - ideal);

        lane.busy_cycles += cycles;
        lane.shift_cycles += kBitShiftCyclesPerPlane;
        lane.t_ns += (cycles + kBitShiftCyclesPerPlane) * ns_per_cycle;

        // Energy: every still-active row computes this plane on its
        // own lane copy; the staged plane is broadcast-read once.
        const int active = cfg.shared_k ? task.active[inf.plane] : 1;
        res.sram_pj += plane_bytes * sram_per_byte;
        res.pe_lane_pj += active *
            (selected * tech::kBitSerialAddPj + tech::kShiftAccPj);
        res.scoreboard_pj += active *
            (tech::kScoreboardRdPj + tech::kScoreboardWrPj);
        res.decision_pj += active * 2.0 * tech::kCmp32Pj;
        res.scheduler_pj += active * tech::kCmp32Pj; // BS mode select

        if (inf.plane + 1 < task.needed_planes)
            issue(lane, next_bundle, inf.task, inf.plane + 1);
    }

    // Makespan and inter-lane imbalance.
    double end_ns = start_ns;
    for (const auto &lane : lanes)
        end_ns = std::max(end_ns, lane.t_ns);
    for (const auto &lane : lanes) {
        res.busy_cycles += lane.busy_cycles;
        res.dram_stall_cycles += lane.stall_cycles;
        res.intra_pe_stall_cycles += lane.intra_cycles;
        res.bit_shift_cycles += lane.shift_cycles;
        res.inter_pe_stall_cycles += (end_ns - lane.t_ns) /
            ns_per_cycle;
    }
    res.makespan_ns = end_ns - start_ns;

    // Query-side energy: BUI LUT generation (p rows x bits interval
    // pairs, one adder pass over H each) plus threshold updates.
    res.bui_pj += static_cast<double>(p) *
        (h * tech::kInt8AddPj + bits * 2.0 * tech::kInt32AddPj);
    res.compute_pj = res.pe_lane_pj + res.scoreboard_pj +
        res.decision_pj + res.bui_pj + res.scheduler_pj;
    return res;
}

} // namespace pade

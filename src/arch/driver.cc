#include "arch/driver.h"

#include <algorithm>
#include <cmath>

#include "attention/metrics.h"
#include "attention/reference.h"
#include "common/math_util.h"

namespace pade {

namespace {

WorkloadSpec
specFor(const SimRequest &req, int query_len, int sim_seq)
{
    WorkloadSpec spec = WorkloadSpec::fromPresets(req.model,
                                                  req.dataset,
                                                  query_len, req.seed);
    spec.seq_len = sim_seq;
    spec.qat_uniform = req.qat;
    return spec;
}

} // namespace

double
modelScaleFactor(const SimRequest &req, int simulated_seq,
                 int block_queries)
{
    // The sampled block covers `block_queries` queries against
    // `simulated_seq` keys; key-side cost is linear, so a full stream
    // costs seq_len / simulated_seq sampled blocks.
    const double per_stream = static_cast<double>(req.dataset.seq_len) /
        std::max(simulated_seq, 1);
    const int group = req.model.heads / std::max(req.model.kv_heads, 1);

    if (req.decode) {
        // Every decode step runs one query against every head's own
        // KV stream, for every layer.
        return static_cast<double>(req.decode_steps) *
            req.model.heads * req.model.layers * per_stream;
    }
    // Prefill: per layer and KV stream, every query token passes
    // through a block; GQA multiplies the queries sharing one stream.
    // The 0.5 accounts for the causal mask (a query at position t sees
    // t keys, S/2 on average), applied uniformly across designs.
    const double blocks_per_stream = std::ceil(
        static_cast<double>(req.dataset.seq_len) * group /
        std::max(block_queries, 1));
    return 0.5 * static_cast<double>(req.model.layers) *
        req.model.kv_heads * blocks_per_stream * per_stream;
}

SimOutcome
simulatePade(const ArchConfig &cfg, const SimRequest &req)
{
    SimOutcome out;
    ArchConfig arch = cfg;
    arch.algo.alpha = req.alpha;
    arch.algo.radius = req.radius;
    arch.shared_k = !req.decode;

    const int sim_seq = std::min(req.dataset.seq_len, req.max_sim_seq);
    out.simulated_seq = sim_seq;
    const int query_len = req.decode ? 1 : arch.pe_rows;

    const WorkloadSpec spec = specFor(req, query_len, sim_seq);
    const AttentionHead head = generateHead(spec);
    const QuantizedHead qh = quantizeHead(head, req.bits);

    PadeAccelerator accel(arch);
    out.block = accel.runHead(qh);

    // Accuracy proxy and retained-key union from the functional trace.
    uint64_t retained_union = 0;
    {
        PadeConfig algo = arch.algo;
        algo.guard_enabled = arch.enable_guard;
        const PadeResult fn = padeAttention(qh, algo);
        const MatrixF logits = attentionLogits(head.q, head.k,
                                               head.scale);
        out.retained_mass = retainedMass(logits, fn.keep);
        for (int j = 0; j < fn.keep.cols(); j++) {
            for (int i = 0; i < fn.keep.rows(); i++) {
                if (fn.keep.at(i, j)) {
                    retained_union++;
                    break;
                }
            }
        }
    }

    // Scale the sampled block to the full model.
    const double f = modelScaleFactor(req, sim_seq, query_len);
    out.total = out.block.scaled(f);

    // Cross-block retained-KV caching (prefill only): the 320 KB KV
    // buffer keeps the retained tokens' bit planes and V rows resident
    // across the query blocks of one KV stream (paper §VI-C: "12.8k
    // tokens under typical sparsity"), so subsequent blocks refetch
    // only the non-retained bulk. Applied as a DRAM-traffic correction
    // on the scaled totals (timing left conservative).
    if (!req.decode && cfg.enable_ista && f > 1.0) {
        const int h = req.model.head_dim;
        const int plane_bytes = (h + 7) / 8;
        const double per_key_bytes =
            static_cast<double>(req.bits) * plane_bytes + h;
        double cacheable = retained_union * per_key_bytes;
        cacheable = std::min(
            cacheable, static_cast<double>(cfg.kv_buffer_bytes));
        const double frac = std::min(
            0.9, cacheable /
            std::max(1.0, static_cast<double>(out.block.dram_bytes)));
        const int group = req.model.heads /
            std::max(req.model.kv_heads, 1);
        const double blocks = std::ceil(
            static_cast<double>(req.dataset.seq_len) * group /
            std::max(query_len, 1));
        const double reuse = frac * (blocks - 1.0) / blocks;
        const double saved_bytes =
            static_cast<double>(out.total.dram_bytes) * reuse;
        out.total.dram_bytes -= static_cast<uint64_t>(saved_bytes);
        const double saved_pj = saved_bytes * 8.0 *
            cfg.hbm.energy_pj_per_bit;
        out.total.energy.dram_pj -= saved_pj;
        out.total.energy.modules["dram"] -= saved_pj;
    }
    if (req.decode) {
        // Eight decode streams run concurrently on the eight PE rows.
        const double row_par = std::min(8, req.model.heads);
        out.total.time_ns /= row_par;
        out.total.cycles /= row_par;
        out.total.qk_cycles /= row_par;
        out.total.v_cycles /= row_par;
    }
    out.scale_factor = f;

    // Intensive metrics keep their block values.
    out.total.utilization = out.block.utilization;
    out.total.bw_utilization = out.block.bw_utilization;
    out.total.row_hit_rate = out.block.row_hit_rate;
    return out;
}

double
calibrateAlpha(const SimRequest &req, double target_mass)
{
    const int sim_seq = std::min({req.dataset.seq_len, req.max_sim_seq,
                                  8192});
    const WorkloadSpec spec = specFor(req, 8, sim_seq);
    const AttentionHead head = generateHead(spec);
    const QuantizedHead qh = quantizeHead(head, req.bits);
    const MatrixF logits = attentionLogits(head.q, head.k, head.scale);

    // The binary search re-runs the functional algorithm ~12 times on
    // the same head: one workspace keeps those re-runs allocation-free
    // on the per-query path.
    PadeWorkspace ws;
    auto massAt = [&](double alpha) {
        PadeConfig algo;
        algo.alpha = alpha;
        algo.radius = req.radius;
        const PadeResult fn = padeAttention(qh, algo, &ws);
        return retainedMass(logits, fn.keep);
    };

    // Mass grows with alpha; binary-search the smallest alpha meeting
    // the target.
    double lo = 0.0;
    double hi = 1.0;
    if (massAt(lo) >= target_mass)
        return lo;
    for (int iter = 0; iter < 12; iter++) {
        const double mid = 0.5 * (lo + hi);
        if (massAt(mid) >= target_mass)
            hi = mid;
        else
            lo = mid;
    }
    return hi;
}

} // namespace pade

/**
 * @file
 * Hardware configuration of the PADE accelerator (paper Table III) plus
 * feature toggles used by the ablation studies. Every toggle maps to a
 * named mechanism in the paper:
 *
 *  - enable_guard     : BUI-GF token pruning (§IV-A)
 *  - result_reuse     : scoreboard-based result-reusable PE lane (§V-C);
 *                       off = every bit round reloads all prior planes
 *  - enable_bs        : bidirectional sparsity (§IV-B)
 *  - enable_ooe       : bit-wise out-of-order execution (§IV-B)
 *  - enable_ista      : tile-level pruning + online softmax (§IV-C);
 *                       off = full-row score buffering (spills)
 *  - enable_rars      : reuse-aware reorder scheduling of V (§V-E)
 *  - enable_head_tail : head-tail interleaved updating (§IV-C)
 */

#ifndef PADE_ARCH_ARCH_CONFIG_H
#define PADE_ARCH_ARCH_CONFIG_H

#include <cstdint>

#include "core/pade_attention.h"
#include "memory/hbm.h"
#include "memory/layout.h"

namespace pade {

/** Full architectural configuration; defaults mirror paper Table III. */
struct ArchConfig
{
    // QK-PU geometry.
    int pe_rows = 8;            //!< queries processed in parallel
    int lanes_per_row = 16;     //!< bit-wise PE lanes per row
    int lane_dim = 64;          //!< dot-product width of one lane issue
    int subgroup = 8;           //!< GSAT sub-group size
    int muxes = 4;              //!< muxes per sub-group
    int scoreboard_entries = 32;

    // V-PU geometry.
    int vpu_rows = 8;
    int vpu_cols = 16;
    int vpu_vs_per_round = 2;   //!< V vectors a score row takes per round

    // Buffers (Table III: 320 KB KV + 32 KB Q).
    uint64_t kv_buffer_bytes = 320 * 1024;
    uint64_t q_buffer_bytes = 32 * 1024;

    // Off-chip memory and layout.
    HbmConfig hbm;
    KLayout k_layout = KLayout::BitPlaneInterleaved;

    // Feature toggles (all on = full PADE).
    bool enable_guard = true;
    bool result_reuse = true;
    bool enable_bs = true;
    bool enable_ooe = true;
    bool enable_ista = true;
    bool enable_rars = true;
    bool enable_head_tail = true;

    /**
     * Prefill shares one K stream across all query rows of a head;
     * decode (paper §VI-F) streams distinct KV per head, so plane
     * fetches cannot be amortized across rows.
     */
    bool shared_k = true;

    // Algorithm parameters forwarded to the functional core.
    PadeConfig algo;

    int totalLanes() const { return pe_rows * lanes_per_row; }
};

} // namespace pade

#endif // PADE_ARCH_ARCH_CONFIG_H

/**
 * @file
 * Top-level PADE accelerator simulator: runs the functional algorithm,
 * replays its pruning trace through the QK-PU and V-PU cycle models
 * over a shared HBM2 timeline, and aggregates cycles/energy into
 * RunMetrics. One instance models one accelerator die (Table III).
 */

#ifndef PADE_ARCH_PADE_ACCELERATOR_H
#define PADE_ARCH_PADE_ACCELERATOR_H

#include "arch/arch_config.h"
#include "arch/run_metrics.h"
#include "workload/generator.h"

namespace pade {

/**
 * Cycle-level PADE accelerator.
 */
class PadeAccelerator
{
  public:
    explicit PadeAccelerator(ArchConfig cfg = {});

    /**
     * Simulate one query block (head.q rows, at most pe_rows for full
     * utilization) against one K/V stream.
     */
    RunMetrics runHead(const QuantizedHead &head);

    const ArchConfig &config() const { return cfg_; }

  private:
    ArchConfig cfg_;
};

} // namespace pade

#endif // PADE_ARCH_PADE_ACCELERATOR_H

/**
 * @file
 * Model of the Value Processing Unit (paper Fig. 11(a)): an 8x16 INT8
 * output-stationary systolic array, a 128-input FP16 exponent module
 * (APM), and the RARS scheduler that orders V-vector fetches.
 *
 * The V-PU consumes the retained-key lists of a query block. V loads
 * follow either the RARS greedy schedule or the naive left-to-right
 * schedule; each loaded V vector costs one DRAM row read plus SRAM
 * staging. When ISTA is disabled, full-row score buffering is modelled:
 * scores that exceed the on-chip score budget spill to DRAM and return.
 */

#ifndef PADE_ARCH_V_PU_H
#define PADE_ARCH_V_PU_H

#include <cstdint>
#include <vector>

#include "arch/arch_config.h"
#include "memory/hbm.h"
#include "workload/generator.h"

namespace pade {

/** Timing/energy outcome of the value stage. */
struct VPuResult
{
    double makespan_ns = 0.0;
    double busy_cycles = 0.0;
    double compute_pj = 0.0;  //!< systolic + APM + rescale
    double sram_pj = 0.0;
    double vpu_mac_pj = 0.0;
    double apm_pj = 0.0;
    uint64_t v_loads = 0;       //!< V vectors fetched from DRAM
    uint64_t v_loads_naive = 0; //!< what the naive order would fetch
    uint64_t spill_bytes = 0;   //!< score spill traffic (ISTA off)
};

/**
 * Simulate the value stage for one query block.
 *
 * @param retained retained key ids per query row
 * @param rescale_ops online-softmax rescale multiply-adds (from the
 *        functional trace; head-tail ordering lowers it)
 * @param v_base DRAM base address of the V region
 * @param start_ns when the stage may start issuing on the HBM timeline
 */
VPuResult simulateVPu(const ArchConfig &cfg, const QuantizedHead &head,
                      const std::vector<std::vector<int>> &retained,
                      uint64_t rescale_ops, HbmModel &hbm,
                      uint64_t v_base, double start_ns);

} // namespace pade

#endif // PADE_ARCH_V_PU_H

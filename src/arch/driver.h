/**
 * @file
 * Workload driver: maps (model, dataset) presets onto block-level
 * simulations of the PADE accelerator and scales one sampled query
 * block to the full model (layers x KV streams x query blocks), the
 * way the paper's evaluation reports whole-model attention runs.
 */

#ifndef PADE_ARCH_DRIVER_H
#define PADE_ARCH_DRIVER_H

#include <cstdint>

#include "arch/pade_accelerator.h"
#include "workload/model_config.h"

namespace pade {

/** One whole-model attention simulation request. */
struct SimRequest
{
    ModelConfig model;
    DatasetConfig dataset;
    bool decode = false;    //!< decode step (1 query, unshared K)
    int decode_steps = 1;   //!< autoregressive steps to account
    uint64_t seed = 1;
    double alpha = 0.55;    //!< BUI-GF guard-band fraction
    double radius = 5.0;    //!< guard radius in logit units
    int bits = 8;           //!< operand bit-width (8 or 4)
    bool qat = false;       //!< QAT-flattened distribution
    /**
     * Cap on the simulated key-sequence length; longer dataset
     * sequences are simulated at the cap and scaled linearly (keeps
     * 100k+ token runs tractable; the per-key behaviour is IID under
     * the generator so the extrapolation is faithful).
     */
    int max_sim_seq = 32768;
};

/** Outcome: full-model totals plus the raw sampled block. */
struct SimOutcome
{
    RunMetrics total;       //!< scaled to the whole model
    RunMetrics block;       //!< one simulated query block
    double retained_mass = 1.0; //!< accuracy proxy of the block
    double scale_factor = 1.0;
    int simulated_seq = 0;
};

/** Simulate PADE on a model/dataset pair. */
SimOutcome simulatePade(const ArchConfig &cfg, const SimRequest &req);

/**
 * Calibrate alpha so the retained softmax mass meets @p target_mass
 * (binary search over the functional algorithm only). Used to realize
 * the paper's "standard" (~0% loss) and "aggressive" (~1% loss)
 * operating points per workload.
 */
double calibrateAlpha(const SimRequest &req, double target_mass);

/** Number of query blocks the full model executes (scaling factor). */
double modelScaleFactor(const SimRequest &req, int simulated_seq,
                        int block_queries);

} // namespace pade

#endif // PADE_ARCH_DRIVER_H

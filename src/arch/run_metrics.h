/**
 * @file
 * Metrics emitted by one accelerator run: cycles, energy breakdown,
 * memory traffic, utilization, and the pruning statistics of the
 * underlying algorithm. All figure benches consume this structure.
 */

#ifndef PADE_ARCH_RUN_METRICS_H
#define PADE_ARCH_RUN_METRICS_H

#include <cstdint>
#include <span>

#include "core/pade_attention.h"
#include "energy/energy_model.h"

namespace pade {

/**
 * Tail-latency summary of a sample set (nearest-rank percentiles).
 * Serving metrics are distribution-shaped — a mean hides the tail the
 * paper's long-context decode scenario is about — so the batch runtime
 * and the continuous batcher report p50/p95/p99 alongside the totals.
 */
struct Percentiles
{
    double p50 = 0.0;
    double p95 = 0.0;
    double p99 = 0.0;
    double p999 = 0.0;
    double mean = 0.0;
    double max = 0.0;
    int64_t count = 0; //!< samples summarized (0 => all fields 0)

    /**
     * Nearest-rank percentiles of @p samples (order irrelevant; an
     * empty set yields all zeros). p99 of n samples is the
     * ceil(0.99 * n)-th smallest — the conventional nearest-rank
     * definition, so p100 would be the maximum; in particular every
     * percentile of a singleton set is that one sample, and p999
     * equals max until the set reaches 1000 samples.
     */
    static Percentiles of(std::span<const double> samples);
};

/** Outcome of simulating one attention workload on one design. */
struct RunMetrics
{
    // Timing.
    double qk_cycles = 0.0;     //!< QK-PU critical path
    double v_cycles = 0.0;      //!< V-PU critical path
    double cycles = 0.0;        //!< overall (staggered pipeline)
    double time_ns = 0.0;

    // Work and energy.
    double useful_ops = 0.0;    //!< value-level MAC-equivalent ops
    EnergyBreakdown energy;

    // Memory.
    uint64_t dram_bytes = 0;
    double bw_utilization = 0.0;
    double row_hit_rate = 0.0;
    uint64_t sram_bytes = 0;

    // Lane behaviour (Fig. 23(a)).
    double busy_cycles = 0.0;        //!< summed over lanes
    double dram_stall_cycles = 0.0;  //!< summed over lanes
    double intra_pe_stall_cycles = 0.0;
    double inter_pe_stall_cycles = 0.0;
    double utilization = 0.0;        //!< busy / (lanes * makespan)
    double bit_shift_cycles = 0.0;   //!< Fig. 18(a) overhead component

    // Algorithm trace.
    PruneStats prune;

    /** Energy efficiency in GOPS/W over the useful attention ops. */
    double
    gopsPerW() const
    {
        return energy.total() > 0.0 ?
            useful_ops / energy.total() * 1000.0 : 0.0;
    }
    /** Throughput in useful GOPS. */
    double
    gops() const
    {
        return time_ns > 0.0 ? useful_ops / time_ns : 0.0;
    }

    /** Scale every extensive quantity by @p f (heads/layers scaling). */
    RunMetrics scaled(double f) const;

    /**
     * Accumulate another run: extensive quantities add; intensive
     * ratios (utilization, bw_utilization, row_hit_rate) become the
     * cycle-weighted mean of the two runs. Used by the batch runtime
     * to aggregate many requests into fleet-level totals.
     */
    RunMetrics &operator+=(const RunMetrics &o);
};

} // namespace pade

#endif // PADE_ARCH_RUN_METRICS_H

/**
 * @file
 * Analytic HBM2 pseudo-channel model.
 *
 * Matches the paper's off-chip configuration (Table III): 16 x 64-bit
 * pseudo-channels at 2 Gb/s/pin (16 GB/s each, 256 GB/s aggregate),
 * BL = 4 x 64 b (32-byte bursts), tRC = 50 ns. We model per-channel
 * service occupancy, a one-entry open-row buffer per (channel, bank),
 * row hit/miss latencies, and 4 pJ/bit access energy (the paper's
 * normalization constant). This is an analytic queueing model in the
 * spirit of what Ramulator provides the authors, not a DDR protocol
 * simulator; it captures the row-locality and bandwidth effects the
 * paper's data-layout experiments (Figs. 22/23) rely on.
 */

#ifndef PADE_MEMORY_HBM_H
#define PADE_MEMORY_HBM_H

#include <cstdint>
#include <vector>

#include "common/stats.h"

namespace pade {

/** HBM2 configuration; defaults mirror paper Table III. */
struct HbmConfig
{
    int channels = 16;
    double channel_gbps = 16.0;   //!< GB/s per pseudo-channel
    int burst_bytes = 32;         //!< BL4 x 64 bit
    double t_rc_ns = 50.0;        //!< row-miss access latency
    double t_cl_ns = 17.0;        //!< row-hit access latency
    /**
     * Channel occupancy added by a row activation. Bank-level
     * parallelism overlaps most of tRC with other banks' transfers;
     * what remains on the channel is a tRRD-class gap. Column reads
     * to an open row pipeline at full bandwidth, so a hit occupies
     * only its transfer time.
     */
    double t_activate_ns = 8.0;
    int row_bytes = 1024;         //!< row-buffer size per bank
    int banks_per_channel = 16;
    double energy_pj_per_bit = 4.0;
    /** Address bits interleaved across channels at this granularity. */
    int channel_interleave_bytes = 256;
};

/** Outcome of a single read request. */
struct HbmAccess
{
    double issue_ns = 0.0;     //!< when the channel accepted it
    double complete_ns = 0.0;  //!< when the last burst returned
    uint64_t bursts = 0;
    bool row_hit = false;      //!< first burst hit the open row
};

/**
 * HBM2 model: issue reads, get completion times, accumulate stats.
 */
class HbmModel
{
  public:
    explicit HbmModel(HbmConfig cfg = {});

    /**
     * Read @p useful_bytes starting at @p addr, arriving at @p now_ns.
     * The transfer is rounded up to whole bursts; the difference is
     * recorded as over-fetch. Returns issue/complete timestamps.
     */
    HbmAccess read(uint64_t addr, uint32_t useful_bytes, double now_ns);

    /** Earliest time a new request on @p addr 's channel could start. */
    double channelFreeAt(uint64_t addr) const;

    /** Reset row buffers and channel clocks (stats preserved). */
    void flush();
    /** Reset everything including statistics. */
    void reset();

    const HbmConfig &config() const { return cfg_; }
    StatGroup &stats() { return stats_; }
    const StatGroup &stats() const { return stats_; }

    /** Total bytes moved on the bus (bursts x burst size). */
    uint64_t busBytes() const { return bus_bytes_; }
    /** Bytes the requester actually asked for. */
    uint64_t usefulBytes() const { return useful_bytes_; }
    /** Total access energy in pJ (bus bytes x pJ/bit). */
    double energyPj() const;
    /** Row-hit fraction over all bursts. */
    double rowHitRate() const;
    /**
     * Achieved-vs-peak bandwidth utilization given the span of time the
     * workload occupied, in ns.
     */
    double bandwidthUtilization(double elapsed_ns) const;

    int channelOf(uint64_t addr) const;
    int bankOf(uint64_t addr) const;
    uint64_t rowOf(uint64_t addr) const;

  private:
    HbmConfig cfg_;
    std::vector<double> channel_free_ns_;
    std::vector<uint64_t> open_row_;  //!< per (channel, bank); ~0 = none
    uint64_t bus_bytes_ = 0;
    uint64_t useful_bytes_ = 0;
    uint64_t row_hits_ = 0;
    uint64_t row_misses_ = 0;
    StatGroup stats_{"hbm"};
};

} // namespace pade

#endif // PADE_MEMORY_HBM_H

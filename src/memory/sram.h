/**
 * @file
 * On-chip SRAM buffer model with CACTI-flavoured energy and area
 * estimates. The paper allocates 320 KB for Key/Value buffers plus a
 * 32 KB query buffer (Table III) and reports buffer energy as one of the
 * three energy components in Fig. 21.
 */

#ifndef PADE_MEMORY_SRAM_H
#define PADE_MEMORY_SRAM_H

#include <cstdint>
#include <string>

namespace pade {

/**
 * A single SRAM buffer: capacity bookkeeping plus access accounting.
 */
class SramBuffer
{
  public:
    /**
     * @param name for reporting
     * @param capacity_bytes total capacity
     */
    SramBuffer(std::string name, uint64_t capacity_bytes);

    /** Account a read of @p bytes. */
    void read(uint64_t bytes);
    /** Account a write of @p bytes. */
    void write(uint64_t bytes);
    /** Reset counters. */
    void reset();

    uint64_t capacity() const { return capacity_; }
    uint64_t bytesRead() const { return bytes_read_; }
    uint64_t bytesWritten() const { return bytes_written_; }

    /** Dynamic energy in pJ for all recorded accesses. */
    double energyPj() const;
    /** Estimated macro area in mm^2 (28 nm). */
    double areaMm2() const;
    /** Per-byte read energy in pJ at this capacity (28 nm). */
    double readEnergyPerByte() const;

    const std::string &name() const { return name_; }

  private:
    std::string name_;
    uint64_t capacity_;
    uint64_t bytes_read_ = 0;
    uint64_t bytes_written_ = 0;
};

} // namespace pade

#endif // PADE_MEMORY_SRAM_H

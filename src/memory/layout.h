/**
 * @file
 * DRAM data-layout policies for the Key tensor (paper Fig. 22).
 *
 * PADE stores K bank-interleaved along the *bit* dimension: one DRAM
 * region holds the same bit plane of many consecutive keys, so streaming
 * a plane across keys produces sequential row-buffer hits and every
 * fetched burst carries only bits that the bit-serial front end needs.
 * The naive (value-major) layout stores all planes of a key adjacently:
 * fetching one plane of one key drags the neighbouring planes of the
 * same key inside the burst, which is wasted whenever that key is pruned
 * before those planes are consumed.
 */

#ifndef PADE_MEMORY_LAYOUT_H
#define PADE_MEMORY_LAYOUT_H

#include <cstdint>

namespace pade {

/** Key-tensor layout in DRAM. */
enum class KLayout
{
    BitPlaneInterleaved, //!< paper's layout: plane-major
    ValueMajor,          //!< naive layout: key-major
};

/**
 * Address generator for bit-plane reads of the K tensor.
 */
class KAddressMap
{
  public:
    /**
     * @param layout layout policy
     * @param seq_len number of keys
     * @param plane_bytes bytes of one bit plane of one key (ceil(H/8))
     * @param num_planes total planes (bit-width)
     * @param base base address of the K region
     */
    KAddressMap(KLayout layout, int seq_len, int plane_bytes,
                int num_planes, uint64_t base = 0);

    /** DRAM address of (key j, plane r). */
    uint64_t address(int key, int plane) const;

    /**
     * Useful bytes of a plane request under this layout. Always
     * plane_bytes; the over-fetch difference is produced by burst
     * rounding in the HBM model via address adjacency.
     */
    int planeBytes() const { return plane_bytes_; }

    KLayout layout() const { return layout_; }
    uint64_t regionBytes() const;

  private:
    KLayout layout_;
    int seq_len_;
    int plane_bytes_;
    int num_planes_;
    uint64_t base_;
};

/** Address of a value/query row (H-major contiguous, paper Fig. 22). */
uint64_t rowMajorAddress(uint64_t base, int row, int row_bytes);

} // namespace pade

#endif // PADE_MEMORY_LAYOUT_H

#include "memory/hbm.h"

#include <algorithm>
#include <cassert>

namespace pade {

HbmModel::HbmModel(HbmConfig cfg) : cfg_(cfg)
{
    assert(cfg_.channels > 0 && cfg_.banks_per_channel > 0);
    channel_free_ns_.assign(cfg_.channels, 0.0);
    open_row_.assign(
        static_cast<size_t>(cfg_.channels) * cfg_.banks_per_channel,
        ~0ULL);
}

int
HbmModel::channelOf(uint64_t addr) const
{
    return static_cast<int>(
        (addr / cfg_.channel_interleave_bytes) % cfg_.channels);
}

int
HbmModel::bankOf(uint64_t addr) const
{
    // Banks interleave above the channel bits at row granularity.
    return static_cast<int>(
        (addr / (static_cast<uint64_t>(cfg_.channel_interleave_bytes) *
                 cfg_.channels)) % cfg_.banks_per_channel);
}

uint64_t
HbmModel::rowOf(uint64_t addr) const
{
    // Rows live inside a channel: with channel interleaving, a
    // channel-local row of row_bytes covers row_bytes * channels of
    // the global address space.
    return addr / (static_cast<uint64_t>(cfg_.row_bytes) *
                   cfg_.channels);
}

HbmAccess
HbmModel::read(uint64_t addr, uint32_t useful_bytes, double now_ns)
{
    assert(useful_bytes > 0);
    const int ch = channelOf(addr);
    const int bank = bankOf(addr);
    const uint64_t row = rowOf(addr);
    const size_t rb_idx = static_cast<size_t>(ch) *
        cfg_.banks_per_channel + bank;

    const uint64_t bursts =
        (useful_bytes + cfg_.burst_bytes - 1) / cfg_.burst_bytes;
    const double burst_ns =
        cfg_.burst_bytes / cfg_.channel_gbps; // GB/s == bytes/ns

    const bool hit = open_row_[rb_idx] == row;
    const double access_ns = hit ? cfg_.t_cl_ns : cfg_.t_rc_ns;
    open_row_[rb_idx] = row;

    HbmAccess acc;
    acc.issue_ns = std::max(now_ns, channel_free_ns_[ch]);
    const double transfer_ns = static_cast<double>(bursts) * burst_ns;
    acc.complete_ns = acc.issue_ns + access_ns + transfer_ns;
    acc.bursts = bursts;
    acc.row_hit = hit;

    // Column reads to an open row pipeline back-to-back: the access
    // latency overlaps with later requests; only transfers (plus the
    // activation gap on a miss) occupy the channel.
    channel_free_ns_[ch] = acc.issue_ns + transfer_ns +
        (hit ? 0.0 : cfg_.t_activate_ns);

    bus_bytes_ += bursts * cfg_.burst_bytes;
    useful_bytes_ += useful_bytes;
    if (hit)
        row_hits_ += 1;
    else
        row_misses_ += 1;

    stats_.scalar("reads")++;
    stats_.scalar("bus_bytes").set(static_cast<double>(bus_bytes_));
    stats_.scalar("useful_bytes").set(
        static_cast<double>(useful_bytes_));
    return acc;
}

double
HbmModel::channelFreeAt(uint64_t addr) const
{
    return channel_free_ns_[channelOf(addr)];
}

void
HbmModel::flush()
{
    std::fill(channel_free_ns_.begin(), channel_free_ns_.end(), 0.0);
    std::fill(open_row_.begin(), open_row_.end(), ~0ULL);
}

void
HbmModel::reset()
{
    flush();
    bus_bytes_ = 0;
    useful_bytes_ = 0;
    row_hits_ = 0;
    row_misses_ = 0;
    stats_.reset();
}

double
HbmModel::energyPj() const
{
    return static_cast<double>(bus_bytes_) * 8.0 *
        cfg_.energy_pj_per_bit;
}

double
HbmModel::rowHitRate() const
{
    const uint64_t total = row_hits_ + row_misses_;
    return total ? static_cast<double>(row_hits_) / total : 0.0;
}

double
HbmModel::bandwidthUtilization(double elapsed_ns) const
{
    if (elapsed_ns <= 0.0)
        return 0.0;
    const double peak_bytes =
        cfg_.channels * cfg_.channel_gbps * elapsed_ns;
    return std::min(1.0, static_cast<double>(bus_bytes_) / peak_bytes);
}

} // namespace pade

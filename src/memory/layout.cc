#include "memory/layout.h"

#include <cassert>

namespace pade {

KAddressMap::KAddressMap(KLayout layout, int seq_len, int plane_bytes,
                         int num_planes, uint64_t base)
    : layout_(layout), seq_len_(seq_len), plane_bytes_(plane_bytes),
      num_planes_(num_planes), base_(base)
{
    assert(seq_len > 0 && plane_bytes > 0 && num_planes > 0);
}

uint64_t
KAddressMap::address(int key, int plane) const
{
    assert(key >= 0 && key < seq_len_);
    assert(plane >= 0 && plane < num_planes_);
    if (layout_ == KLayout::BitPlaneInterleaved) {
        // Plane-major: all keys' plane r contiguous.
        return base_ + (static_cast<uint64_t>(plane) * seq_len_ + key) *
            plane_bytes_;
    }
    // Value-major: all planes of key j contiguous.
    return base_ + (static_cast<uint64_t>(key) * num_planes_ + plane) *
        plane_bytes_;
}

uint64_t
KAddressMap::regionBytes() const
{
    return static_cast<uint64_t>(seq_len_) * num_planes_ * plane_bytes_;
}

uint64_t
rowMajorAddress(uint64_t base, int row, int row_bytes)
{
    return base + static_cast<uint64_t>(row) * row_bytes;
}

} // namespace pade

#include "memory/sram.h"

#include <cmath>

namespace pade {

SramBuffer::SramBuffer(std::string name, uint64_t capacity_bytes)
    : name_(std::move(name)), capacity_(capacity_bytes)
{
}

void
SramBuffer::read(uint64_t bytes)
{
    bytes_read_ += bytes;
}

void
SramBuffer::write(uint64_t bytes)
{
    bytes_written_ += bytes;
}

void
SramBuffer::reset()
{
    bytes_read_ = 0;
    bytes_written_ = 0;
}

double
SramBuffer::readEnergyPerByte() const
{
    // CACTI-flavoured scaling: energy/byte grows ~sqrt(capacity).
    // Anchor: a 32 KB macro at 28 nm reads at ~0.6 pJ/byte.
    const double kb = static_cast<double>(capacity_) / 1024.0;
    return 0.6 * std::sqrt(std::max(kb, 1.0) / 32.0);
}

double
SramBuffer::energyPj() const
{
    // Writes cost ~1.2x reads in small macros.
    const double per_byte = readEnergyPerByte();
    return per_byte * (static_cast<double>(bytes_read_) +
                       1.2 * static_cast<double>(bytes_written_));
}

double
SramBuffer::areaMm2() const
{
    // ~0.09 mm^2 per 32 KB at 28 nm including periphery (CACTI-like;
    // calibrated so the paper's 352 KB lands near its 23% area share).
    const double kb = static_cast<double>(capacity_) / 1024.0;
    return 0.09 * kb / 32.0;
}

} // namespace pade

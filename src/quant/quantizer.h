/**
 * @file
 * Symmetric integer post-training quantization (PTQ) used for attention
 * operands, mirroring the paper's INT8 baseline (weights/activations
 * quantized, softmax kept in higher precision).
 *
 * We also provide INT4 and a QAT-like variant that assumes a more uniform
 * value distribution (paper Fig. 26(a) observation: QAT flattens the
 * distribution, reducing exploitable sparsity).
 */

#ifndef PADE_QUANT_QUANTIZER_H
#define PADE_QUANT_QUANTIZER_H

#include <cstdint>

#include "tensor/matrix.h"

namespace pade {

/** Scale metadata for a symmetric per-tensor quantization. */
struct QuantParams
{
    /** Dequantization scale: real = scale * q. */
    float scale = 1.0f;
    /** Bit-width (4 or 8). */
    int bits = 8;

    /** Largest representable magnitude for this bit-width. */
    int qmax() const { return (1 << (bits - 1)) - 1; }
    int qmin() const { return -(1 << (bits - 1)); }
};

/** Result of quantizing a float matrix. */
struct Quantized
{
    MatrixI8 values; //!< int8 storage (int4 values also live here).
    QuantParams params;
};

/**
 * Symmetric per-tensor quantization with absmax calibration.
 *
 * @param m input matrix
 * @param bits 4 or 8
 * @return quantized values plus scale
 */
Quantized quantizeSymmetric(const MatrixF &m, int bits = 8);

/** Dequantize back to float. */
MatrixF dequantize(const Quantized &q);

/** Quantize a single float given params (saturating). */
int8_t quantizeValue(float v, const QuantParams &p);

/**
 * Relative L2 error || deq(quant(m)) - m || / || m ||. Used by tests and
 * by the accuracy-proxy experiments.
 */
double quantizationError(const MatrixF &m, int bits);

} // namespace pade

#endif // PADE_QUANT_QUANTIZER_H

#include "quant/bitplane.h"

#include <algorithm>
#include <atomic>
#include <bit>
#include <cstdint>

#include "common/check.h"
#include "common/math_util.h"
#include "core/simd/qk_avx2.h"
#include "core/simd/qk_dispatch.h"

namespace pade {
namespace {

/**
 * Hot-path (per-accessor) check of the storage contract the SIMD
 * backend relies on; debug builds only. The Release-armed version of
 * this invariant runs once per mutation (checkStorageAligned), where
 * the base pointer is (re)established.
 */
inline void
assertPlaneAligned(const uint64_t *p)
{
    PADE_DCHECK(reinterpret_cast<std::uintptr_t>(p) % 32 == 0);
    (void)p;
}

/**
 * Release-armed storage-contract check: the backing store the SIMD
 * kernels will load 32 bytes at a time must sit on a 32-byte
 * boundary. Misalignment here means AlignedAllocator (or a future
 * storage refactor) broke the contract — fail at the mutation that
 * established the pointer, in every build type.
 */
inline void
checkStorageAligned(const uint64_t *base)
{
    if (base != nullptr)
        PADE_CHECK_EQ(reinterpret_cast<std::uintptr_t>(base) % 32,
                      0u);
}

} // namespace

BitPlaneSet::BitPlaneSet(const MatrixI8 &m, int bits)
    : BitPlaneSet(m.cols(), bits, m.rows())
{
    for (int row = 0; row < m.rows(); row++)
        appendToken(m.row(row));
}

uint64_t
BitPlaneSet::nextRevision()
{
    // Relaxed is enough: the counter only needs uniqueness, not
    // ordering with respect to other memory operations.
    static std::atomic<uint64_t> counter{0};
    return counter.fetch_add(1, std::memory_order_relaxed) + 1;
}

BitPlaneSet::BitPlaneSet(int cols, int bits, int capacity_rows)
    : cols_(cols), bits_(bits), words_((cols + 63) / 64),
      stride_(planeStrideWords(words_)), revision_(nextRevision())
{
    PADE_CHECK_GE(bits_, 2);
    PADE_CHECK_LE(bits_, 8);
    PADE_CHECK_GE(cols_, 0);
    PADE_CHECK_GE(capacity_rows, 0);
    storage_.reserve(static_cast<std::size_t>(capacity_rows) * bits_ *
                     stride_);
    popcounts_.reserve(static_cast<std::size_t>(capacity_rows) * bits_);
    checkStorageAligned(storage_.data());
}

void
BitPlaneSet::appendToken(std::span<const int8_t> row)
{
    PADE_CHECK_EQ(static_cast<int>(row.size()), cols_);
    const int lo = -(1 << (bits_ - 1));
    const int hi = (1 << (bits_ - 1)) - 1;
    (void)lo;
    (void)hi;

    // Grow by one row block (bits_ planes of stride_ words each);
    // within the reserved capacity this never reallocates, and the new
    // words start zeroed so the alignment/zero-padding storage
    // contract holds for the appended row too.
    revision_ = nextRevision();
    const int row_idx = rows_++;
    storage_.resize(storage_.size() +
                        static_cast<std::size_t>(bits_) * stride_,
                    0);
    popcounts_.resize(popcounts_.size() + bits_, 0);
    checkStorageAligned(storage_.data());

    for (int col = 0; col < cols_; col++) {
        const int v = row[col];
        PADE_DCHECK(v >= lo && v <= hi);
        // Two's complement over the low `bits_` bits represents v
        // exactly when it is in range.
        const uint8_t u = static_cast<uint8_t>(v) &
            static_cast<uint8_t>((1u << bits_) - 1);
        for (int r = 0; r < bits_; r++) {
            const int bitpos = bits_ - 1 - r;
            if ((u >> bitpos) & 1u) {
                storage_[planeIndex(row_idx, r) + col / 64] |=
                    1ULL << (col % 64);
                popcounts_[static_cast<size_t>(row_idx) * bits_ + r]++;
            }
        }
    }
}

int
BitPlaneSet::planeWeight(int r) const
{
    PADE_DCHECK(r >= 0 && r < bits_);
    if (r == 0)
        return -(1 << (bits_ - 1));
    return 1 << (bits_ - 1 - r);
}

int
BitPlaneSet::remainingMagnitude(int r) const
{
    PADE_DCHECK(r >= 0 && r < bits_);
    return (1 << (bits_ - 1 - r)) - 1;
}

bool
BitPlaneSet::bit(int row, int r, int col) const
{
    PADE_DCHECK(col >= 0 && col < cols_);
    return (storage_[planeIndex(row, r) + col / 64] >> (col % 64)) & 1ULL;
}

std::span<const uint64_t>
BitPlaneSet::plane(int row, int r) const
{
    const uint64_t *p = storage_.data() + planeIndex(row, r);
    assertPlaneAligned(p);
    return {p, static_cast<size_t>(words_)};
}

std::span<const uint64_t>
BitPlaneSet::rowPlanes(int row) const
{
    PADE_DCHECK(row >= 0 && row < rows_);
    const uint64_t *p = storage_.data() + planeIndex(row, 0);
    assertPlaneAligned(p);
    return {p, static_cast<size_t>(bits_) * stride_};
}

int
BitPlaneSet::popcount(int row, int r) const
{
    PADE_DCHECK(row >= 0 && row < rows_ && r >= 0 && r < bits_);
    return popcounts_[static_cast<size_t>(row) * bits_ + r];
}

int
BitPlaneSet::reconstruct(int row, int col, int r) const
{
    int v = 0;
    for (int p = 0; p <= r; p++)
        if (bit(row, p, col))
            v += planeWeight(p);
    return v;
}

QueryPlanes::QueryPlanes(std::span<const int8_t> q, int bits)
{
    assign(q, bits);
}

void
QueryPlanes::assign(std::span<const int8_t> q, int bits)
{
    cols_ = static_cast<int>(q.size());
    words_ = (cols_ + 63) / 64;
    stride_ = planeStrideWords(words_);

    if (bits == 0) {
        // Minimal two's-complement width covering the value range:
        // v in [-2^{b-1}, 2^{b-1} - 1].
        int lo = 0;
        int hi = 0;
        for (int8_t v : q) {
            lo = std::min<int>(lo, v);
            hi = std::max<int>(hi, v);
        }
        bits = 1;
        while (lo < -(1 << (bits - 1)) || hi > (1 << (bits - 1)) - 1)
            bits++;
    }
    PADE_CHECK_GE(bits, 1);
    PADE_CHECK_LE(bits, 8);
    bits_ = bits;

    storage_.assign(static_cast<std::size_t>(bits_) * stride_, 0);
    checkStorageAligned(storage_.data());
    for (int col = 0; col < cols_; col++) {
        const uint8_t u = static_cast<uint8_t>(q[col]) &
            static_cast<uint8_t>((1u << bits_) - 1);
        for (int t = 0; t < bits_; t++) {
            if ((u >> (bits_ - 1 - t)) & 1u)
                storage_[static_cast<std::size_t>(t) * stride_ +
                         col / 64] |= 1ULL << (col % 64);
        }
    }

    // The byte value mirror is rebuilt lazily on first simdView() —
    // scalar/popcount executions never pay for it.
    values_valid_ = false;
}

void
QueryPlanes::buildValues() const
{
    // Byte mirror for the AVX2 value-domain kernel (see the header):
    // the sign-extended reconstruction of the packed planes, NOT the
    // raw assign() input, so plane-domain and value-domain sums agree
    // bit for bit even if a caller-forced narrow width truncated
    // values.
    values_.assign((static_cast<std::size_t>(cols_) + 31) / 32 * 32,
                   0);
    const int shift = 8 - bits_;
    for (int col = 0; col < cols_; col++) {
        unsigned u = 0;
        for (int t = 0; t < bits_; t++)
            u = (u << 1) | static_cast<unsigned>(bit(t, col));
        values_[col] = static_cast<int8_t>(
            static_cast<int8_t>(u << shift) >> shift);
    }
    values_valid_ = true;
}

int
QueryPlanes::planeWeight(int t) const
{
    PADE_DCHECK(t >= 0 && t < bits_);
    if (t == 0)
        return -(1 << (bits_ - 1));
    return 1 << (bits_ - 1 - t);
}

bool
QueryPlanes::bit(int t, int col) const
{
    PADE_DCHECK(col >= 0 && col < cols_);
    return (storage_[static_cast<std::size_t>(t) * stride_ +
                     col / 64] >> (col % 64)) & 1ULL;
}

std::span<const uint64_t>
QueryPlanes::plane(int t) const
{
    PADE_DCHECK(t >= 0 && t < bits_);
    const uint64_t *p =
        storage_.data() + static_cast<std::size_t>(t) * stride_;
    assertPlaneAligned(p);
    return {p, static_cast<std::size_t>(words_)};
}

simd::QPlaneView
QueryPlanes::simdView() const
{
    assertPlaneAligned(storage_.data());
    if (!values_valid_)
        buildValues();
    return {storage_.data(), values_.data(), stride_, bits_, cols_};
}

int64_t
QueryPlanes::maskedSumSimd(std::span<const uint64_t> mask) const
{
    PADE_DCHECK(static_cast<int>(mask.size()) == words_);
    if (!qkSimdAvailable())
        return maskedSum(mask);
    return simd::maskedSumAvx2(simdView(), mask.data(), words_);
}

int64_t
partialDot(std::span<const int8_t> q, const BitPlaneSet &keys, int row,
           int r)
{
    return partialDot(QueryPlanes(q), keys, row, r);
}

int64_t
partialDot(const QueryPlanes &q, const BitPlaneSet &keys, int row, int r)
{
    PADE_DCHECK(q.numCols() == keys.numCols());
    int64_t total = 0;
    for (int p = 0; p <= r; p++)
        total += static_cast<int64_t>(keys.planeWeight(p)) *
            q.maskedSum(keys.plane(row, p));
    return total;
}

int64_t
partialDotScalar(std::span<const int8_t> q, const BitPlaneSet &keys,
                 int row, int r)
{
    PADE_DCHECK(static_cast<int>(q.size()) == keys.numCols());
    int64_t total = 0;
    for (int p = 0; p <= r; p++) {
        int64_t plane_sum = 0;
        auto words = keys.plane(row, p);
        for (int w = 0; w < keys.wordsPerPlane(); w++) {
            uint64_t bits = words[w];
            while (bits) {
                const int b = __builtin_ctzll(bits);
                plane_sum += q[w * 64 + b];
                bits &= bits - 1;
            }
        }
        total += static_cast<int64_t>(keys.planeWeight(p)) * plane_sum;
    }
    return total;
}

int64_t
partialDotSimd(const QueryPlanes &q, const BitPlaneSet &keys, int row,
               int r)
{
    PADE_DCHECK(q.numCols() == keys.numCols());
    PADE_DCHECK(r >= 0 && r < keys.numPlanes());
    if (!qkSimdAvailable())
        return partialDot(q, keys, row, r);
    const simd::QPlaneView view = q.simdView();
    return simd::dotPlanesAvx2(view, keys.rowPlanes(row).data(),
                               keys.planeStride(), keys.numPlanes(),
                               r + 1, keys.wordsPerPlane());
}

int64_t
exactDot(std::span<const int8_t> q, const BitPlaneSet &keys, int row)
{
    return partialDot(q, keys, row, keys.numPlanes() - 1);
}

int64_t
exactDot(const QueryPlanes &q, const BitPlaneSet &keys, int row)
{
    return partialDot(q, keys, row, keys.numPlanes() - 1);
}

int64_t
exactDotScalar(std::span<const int8_t> q, const BitPlaneSet &keys,
               int row)
{
    return partialDotScalar(q, keys, row, keys.numPlanes() - 1);
}

int64_t
exactDotSimd(const QueryPlanes &q, const BitPlaneSet &keys, int row)
{
    return partialDotSimd(q, keys, row, keys.numPlanes() - 1);
}

} // namespace pade

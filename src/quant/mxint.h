/**
 * @file
 * MXINT-style micro-scaled group quantization (OCP Microscaling, 32-element
 * groups sharing a scale). The paper's Table II evaluates MXINT8 and
 * Fig. 25 shows how the BUI generalizes to group-wise scales: the overall
 * interval is the scale-weighted sum of per-group intervals.
 */

#ifndef PADE_QUANT_MXINT_H
#define PADE_QUANT_MXINT_H

#include <cstddef>
#include <vector>

#include "tensor/matrix.h"

namespace pade {

/** Group-quantized matrix: int8 mantissas + per (row, group) scales. */
struct MxQuantized
{
    MatrixI8 values;
    int group_size = 32;
    /** scales[row * groups_per_row + g] ; real = scale * q. */
    std::vector<float> scales;

    int groupsPerRow() const
    {
        return (values.cols() + group_size - 1) / group_size;
    }
    float
    scaleAt(int row, int group) const
    {
        return scales[static_cast<std::size_t>(row) * groupsPerRow() + group];
    }
};

/**
 * Quantize with per-group absmax scales (8-bit mantissas).
 *
 * @param m input
 * @param group_size elements sharing one scale (default 32, per OCP MX)
 */
MxQuantized mxQuantize(const MatrixF &m, int group_size = 32);

/** Dequantize back to float. */
MatrixF mxDequantize(const MxQuantized &q);

/** Relative L2 error of the MX round trip. */
double mxQuantizationError(const MatrixF &m, int group_size = 32);

} // namespace pade

#endif // PADE_QUANT_MXINT_H

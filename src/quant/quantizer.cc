#include "quant/quantizer.h"

#include <cmath>

#include "common/math_util.h"

namespace pade {

Quantized
quantizeSymmetric(const MatrixF &m, int bits)
{
    Quantized out;
    out.params.bits = bits;

    float absmax = 0.0f;
    for (int r = 0; r < m.rows(); r++)
        for (float v : m.row(r))
            absmax = std::max(absmax, std::fabs(v));

    const int qmax = out.params.qmax();
    out.params.scale = absmax > 0.0f ?
        absmax / static_cast<float>(qmax) : 1.0f;

    out.values = MatrixI8(m.rows(), m.cols());
    for (int r = 0; r < m.rows(); r++) {
        for (int c = 0; c < m.cols(); c++) {
            out.values.at(r, c) =
                quantizeValue(m.at(r, c), out.params);
        }
    }
    return out;
}

int8_t
quantizeValue(float v, const QuantParams &p)
{
    const float scaled = v / p.scale;
    const float rounded = std::nearbyint(scaled);
    const int clamped = clampTo(static_cast<int>(rounded), p.qmin(),
                                p.qmax());
    return static_cast<int8_t>(clamped);
}

MatrixF
dequantize(const Quantized &q)
{
    MatrixF out(q.values.rows(), q.values.cols());
    for (int r = 0; r < out.rows(); r++)
        for (int c = 0; c < out.cols(); c++)
            out.at(r, c) = q.params.scale * q.values.at(r, c);
    return out;
}

double
quantizationError(const MatrixF &m, int bits)
{
    const Quantized q = quantizeSymmetric(m, bits);
    const MatrixF d = dequantize(q);
    double num = 0.0;
    double den = 0.0;
    for (int r = 0; r < m.rows(); r++) {
        for (int c = 0; c < m.cols(); c++) {
            const double e = d.at(r, c) - m.at(r, c);
            num += e * e;
            den += static_cast<double>(m.at(r, c)) * m.at(r, c);
        }
    }
    return den > 0.0 ? std::sqrt(num / den) : 0.0;
}

} // namespace pade

/**
 * @file
 * Two's-complement bit-plane decomposition of integer Key matrices.
 *
 * PADE's bit-serial stage fusion (BSF) streams the Key matrix MSB-plane
 * first: plane r of a p-bit value b_{p-1}..b_0 holds bit (p-1-r) of every
 * element, so plane 0 is the sign plane with weight -2^{p-1} and plane r>0
 * has weight +2^{p-1-r}. Because every non-sign bit contributes a
 * non-negative amount, knowing planes 0..r bounds the remaining magnitude
 * by M_r = 2^{p-1-r} - 1 per element — the property the BUI (bit-wise
 * uncertainty interval) exploits.
 *
 * Planes are stored packed (64 bits/word) per (row, plane) with cached
 * popcounts, matching the accelerator's K-SRAM layout in which one SRAM
 * row holds the same bit plane across the hidden dimension (paper
 * Fig. 22).
 */

#ifndef PADE_QUANT_BITPLANE_H
#define PADE_QUANT_BITPLANE_H

#include <bit>
#include <cassert>
#include <cstddef>
#include <cstdint>
#include <span>
#include <vector>

#include "tensor/matrix.h"

namespace pade {

/**
 * Packed bit planes of an integer matrix (rows = keys/tokens).
 */
class BitPlaneSet
{
  public:
    /**
     * Decompose @p m into @p bits planes (MSB first).
     *
     * @param m int8 matrix; for bits < 8, all values must fit the range.
     * @param bits total bit-width p in [2, 8].
     */
    explicit BitPlaneSet(const MatrixI8 &m, int bits = 8);

    int numRows() const { return rows_; }
    int numCols() const { return cols_; }
    int numPlanes() const { return bits_; }
    int wordsPerPlane() const { return words_; }

    /** Signed weight of plane @p r: -2^{p-1} for r=0, else 2^{p-1-r}. */
    int planeWeight(int r) const;

    /**
     * Remaining-magnitude constant after planes 0..r are known:
     * M_r = 2^{p-1-r} - 1 (0 once every plane is processed).
     */
    int remainingMagnitude(int r) const;

    /** Bit of element (row, col) on plane r. */
    bool bit(int row, int r, int col) const;

    /** Packed words of plane r of @p row. */
    std::span<const uint64_t> plane(int row, int r) const;

    /** Cached popcount of plane r of @p row. */
    int popcount(int row, int r) const;

    /**
     * Partial reconstruction of element (row, col) using planes 0..r
     * with all unknown bits set to zero (the conservative value S^r
     * builds on).
     */
    int reconstruct(int row, int col, int r) const;

    /** Bytes of one plane of one row as stored in DRAM (ceil(H/8)). */
    int planeBytes() const { return (cols_ + 7) / 8; }

  private:
    std::size_t
    planeIndex(int row, int r) const
    {
        return (static_cast<std::size_t>(row) * bits_ + r) * words_;
    }

    int rows_ = 0;
    int cols_ = 0;
    int bits_ = 8;
    int words_ = 0;
    std::vector<uint64_t> storage_;
    std::vector<int> popcounts_;
};

/**
 * Bit-plane decomposition of a single query row, the Q-side dual of
 * BitPlaneSet.
 *
 * The per-plane sum the bit-serial kernels need,
 *   sum_{d : k_d = 1} q_d,
 * becomes word-parallel once the query is also plane-packed: with
 * q_d = sum_t qw_t * qbit_t(d) (two's complement over the query
 * planes), the sum equals
 *   sum_t qw_t * popcount(qplane_t AND kplane),
 * i.e. a handful of 64-bit AND+popcount operations instead of a walk
 * over every set key bit. The arithmetic is exact, so results are
 * bit-identical to the scalar accumulation.
 *
 * assign() reuses the packed storage, making repacking (once per query
 * row) allocation-free after the first call; it also narrows to the
 * minimal bit-width covering the row's value range, so e.g. INT4-range
 * queries cost 4 plane ANDs instead of 8.
 */
class QueryPlanes
{
  public:
    QueryPlanes() = default;

    /** Pack @p q; bits = 0 selects the minimal covering width. */
    explicit QueryPlanes(std::span<const int8_t> q, int bits = 0);

    /** Re-pack into the existing storage (no allocation on reuse). */
    void assign(std::span<const int8_t> q, int bits = 0);

    int numCols() const { return cols_; }
    int numPlanes() const { return bits_; }
    int wordsPerPlane() const { return words_; }

    /** Signed weight of plane @p t: -2^{b-1} for t=0, else 2^{b-1-t}. */
    int planeWeight(int t) const;

    /** Bit of element @p col on plane @p t (tests/debugging). */
    bool bit(int t, int col) const;

    /** Packed words of plane @p t. */
    std::span<const uint64_t> plane(int t) const;

    /**
     * Word-parallel sum of the query values selected by a key bit
     * mask: sum_{d : mask_d = 1} q_d. This is the primitive every
     * bit-serial plane delta reduces to; the mask is one packed key
     * plane. Weights are powers of two, so the per-plane popcounts
     * combine with shifts — no multiplies on the hot path.
     */
    int64_t
    maskedSum(std::span<const uint64_t> mask) const
    {
        assert(static_cast<int>(mask.size()) == words_);
        // Dispatch on the word count so the compiler keeps the mask
        // words in registers across all query planes (head dims up to
        // 256 take the unrolled paths).
        switch (words_) {
        case 1: return maskedSumW<1>(mask.data());
        case 2: return maskedSumW<2>(mask.data());
        case 3: return maskedSumW<3>(mask.data());
        case 4: return maskedSumW<4>(mask.data());
        default: break;
        }
        const uint64_t *qw = storage_.data();
        int64_t sum = 0;
        for (int t = 0; t < bits_; t++, qw += words_) {
            int64_t ones = 0;
            for (int w = 0; w < words_; w++)
                ones += std::popcount(qw[w] & mask[w]);
            sum += static_cast<int64_t>(planeWeight(t)) * ones;
        }
        return sum;
    }

  private:
    template <int W>
    int64_t
    maskedSumW(const uint64_t *mask) const
    {
        uint64_t k[W];
        for (int w = 0; w < W; w++)
            k[w] = mask[w];
        const uint64_t *qw = storage_.data();
        const auto ones = [&qw, &k]() {
            int64_t o = 0;
            for (int w = 0; w < W; w++)
                o += std::popcount(qw[w] & k[w]);
            return o;
        };
        // Sign plane (t = 0, weight -2^{b-1}) first, then the
        // non-negative planes with descending power-of-two weights.
        const int64_t neg = ones();
        qw += W;
        int64_t pos = 0;
        for (int t = 1; t < bits_; t++, qw += W)
            pos += ones() << (bits_ - 1 - t);
        return pos - (neg << (bits_ - 1));
    }

    int cols_ = 0;
    int bits_ = 0;
    int words_ = 0;
    std::vector<uint64_t> storage_;
};

/**
 * Partial dot product of a full-precision query row with the first
 * (r+1) bit planes of key @p row : S^r = sum_{p<=r} w_p * sum_{bit=1} q.
 * This is the score the scoreboard accumulates plane by plane.
 * Word-parallel: packs the query once and reduces to popcounts.
 */
int64_t partialDot(std::span<const int8_t> q, const BitPlaneSet &keys,
                   int row, int r);

/** partialDot over an already-packed query (the hot-path form). */
int64_t partialDot(const QueryPlanes &q, const BitPlaneSet &keys,
                   int row, int r);

/**
 * Scalar reference for partialDot: walks every set key bit with ctz.
 * Kept as the bit-exactness oracle for the popcount kernels.
 */
int64_t partialDotScalar(std::span<const int8_t> q,
                         const BitPlaneSet &keys, int row, int r);

/** Exact dot product via all planes (equals integer QK^T). */
int64_t exactDot(std::span<const int8_t> q, const BitPlaneSet &keys,
                 int row);

/** exactDot over an already-packed query (the hot-path form). */
int64_t exactDot(const QueryPlanes &q, const BitPlaneSet &keys,
                 int row);

/** Scalar reference for exactDot (see partialDotScalar). */
int64_t exactDotScalar(std::span<const int8_t> q, const BitPlaneSet &keys,
                       int row);

} // namespace pade

#endif // PADE_QUANT_BITPLANE_H

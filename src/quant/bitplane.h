/**
 * @file
 * Two's-complement bit-plane decomposition of integer Key matrices.
 *
 * PADE's bit-serial stage fusion (BSF) streams the Key matrix MSB-plane
 * first: plane r of a p-bit value b_{p-1}..b_0 holds bit (p-1-r) of every
 * element, so plane 0 is the sign plane with weight -2^{p-1} and plane r>0
 * has weight +2^{p-1-r}. Because every non-sign bit contributes a
 * non-negative amount, knowing planes 0..r bounds the remaining magnitude
 * by M_r = 2^{p-1-r} - 1 per element — the property the BUI (bit-wise
 * uncertainty interval) exploits.
 *
 * Planes are stored packed (64 bits/word) per (row, plane) with cached
 * popcounts, matching the accelerator's K-SRAM layout in which one SRAM
 * row holds the same bit plane across the hidden dimension (paper
 * Fig. 22).
 *
 * Storage contract shared by BitPlaneSet and QueryPlanes (what the
 * AVX2 backend in src/core/simd/ relies on): every plane row starts
 * on a 32-byte boundary (rows are kPlaneAlignWords words apart and
 * the backing store is 32-byte aligned), and the padding words
 * between the logical row length (wordsPerPlane()) and the aligned
 * stride are zero. Bits past the column count within the last logical
 * word are zero as well. plane() spans still cover exactly
 * wordsPerPlane() words, so word-walking consumers are unaffected by
 * the padding.
 */

#ifndef PADE_QUANT_BITPLANE_H
#define PADE_QUANT_BITPLANE_H

#include <bit>
#include <cstddef>
#include <cstdint>
#include <span>
#include <vector>

#include "common/aligned.h"
#include "common/check.h"
#include "tensor/matrix.h"

namespace pade {

namespace simd {
struct QPlaneView;
}

/** Plane rows start this many words apart (32 bytes: one YMM load). */
inline constexpr int kPlaneAlignWords = 4;

/** Round a word count up to the aligned plane stride. */
constexpr int
planeStrideWords(int words)
{
    return (words + kPlaneAlignWords - 1) / kPlaneAlignWords *
        kPlaneAlignWords;
}

/** Backing store of packed planes: 32-byte aligned uint64 words. */
using PlaneStore = std::vector<uint64_t, AlignedAllocator<uint64_t, 32>>;

/**
 * Packed bit planes of an integer matrix (rows = keys/tokens).
 */
class BitPlaneSet
{
  public:
    /**
     * Decompose @p m into @p bits planes (MSB first).
     *
     * @param m int8 matrix; for bits < 8, all values must fit the range.
     * @param bits total bit-width p in [2, 8].
     */
    explicit BitPlaneSet(const MatrixI8 &m, int bits = 8);

    /**
     * Empty set over @p cols columns, ready for incremental
     * appendToken() growth (the KV-cache construction path). When
     * @p capacity_rows > 0 the backing store is reserved up front, so
     * appends up to that capacity never reallocate — the fixed-page
     * contract src/serving/kv_cache.h builds on.
     */
    BitPlaneSet(int cols, int bits, int capacity_rows);

    /**
     * Append one token's @p row as a new bottom row, packing only that
     * row's bits: O(bits * cols) work, independent of the rows already
     * stored. Rows packed this way are bit-identical (plane words,
     * popcounts, padding) to the same rows packed by the matrix
     * constructor — the invariant the incremental-decode parity tests
     * enforce. @p row must hold exactly numCols() values in the
     * bit-width's range.
     */
    void appendToken(std::span<const int8_t> row);

    int numRows() const { return rows_; }
    int numCols() const { return cols_; }
    int numPlanes() const { return bits_; }
    int wordsPerPlane() const { return words_; }
    /** Allocated words between consecutive plane rows (32B multiple). */
    int planeStride() const { return stride_; }

    /**
     * Content identity token for derived-table caches. Drawn from a
     * process-wide counter at construction and advanced by every
     * appendToken(), so no two distinct contents ever share a
     * (pointer, revision) pair — even when a new set is allocated at
     * a freed set's address. PadeWorkspace keys its query-independent
     * PlaneWork table on this to skip the per-call rebuild when the
     * same planes are scored again (the GQA case: every query head of
     * a group scores the one shared KV-head plane set).
     */
    uint64_t revision() const { return revision_; }

    /**
     * All @c numPlanes() planes of @p row as one contiguous block:
     * plane r starts at offset r * planeStride(). This is the view
     * the fused SIMD dot kernel consumes (partialDotSimd/
     * exactDotSimd); the alignment/zero-padding contract of plane()
     * applies to every row in the block.
     */
    std::span<const uint64_t> rowPlanes(int row) const;

    /** Signed weight of plane @p r: -2^{p-1} for r=0, else 2^{p-1-r}. */
    int planeWeight(int r) const;

    /**
     * Remaining-magnitude constant after planes 0..r are known:
     * M_r = 2^{p-1-r} - 1 (0 once every plane is processed).
     */
    int remainingMagnitude(int r) const;

    /** Bit of element (row, col) on plane r. */
    bool bit(int row, int r, int col) const;

    /**
     * Packed words of plane r of @p row. The data pointer is 32-byte
     * aligned and the words from .size() up to the aligned stride are
     * readable and zero (see the storage contract in the file
     * comment).
     */
    std::span<const uint64_t> plane(int row, int r) const;

    /** Cached popcount of plane r of @p row. */
    int popcount(int row, int r) const;

    /**
     * Partial reconstruction of element (row, col) using planes 0..r
     * with all unknown bits set to zero (the conservative value S^r
     * builds on).
     */
    int reconstruct(int row, int col, int r) const;

    /** Bytes of one plane of one row as stored in DRAM (ceil(H/8)). */
    int planeBytes() const { return (cols_ + 7) / 8; }

  private:
    std::size_t
    planeIndex(int row, int r) const
    {
        return (static_cast<std::size_t>(row) * bits_ + r) * stride_;
    }

    /** Next unused revision token (see revision()). */
    static uint64_t nextRevision();

    int rows_ = 0;
    int cols_ = 0;
    int bits_ = 8;
    int words_ = 0;  //!< logical words per plane: ceil(cols / 64)
    int stride_ = 0; //!< allocated words per plane (32-byte multiple)
    uint64_t revision_ = 0;
    PlaneStore storage_;
    std::vector<int> popcounts_;
};

/**
 * Bit-plane decomposition of a single query row, the Q-side dual of
 * BitPlaneSet.
 *
 * The per-plane sum the bit-serial kernels need,
 *   sum_{d : k_d = 1} q_d,
 * becomes word-parallel once the query is also plane-packed: with
 * q_d = sum_t qw_t * qbit_t(d) (two's complement over the query
 * planes), the sum equals
 *   sum_t qw_t * popcount(qplane_t AND kplane),
 * i.e. a handful of 64-bit AND+popcount operations instead of a walk
 * over every set key bit. The arithmetic is exact, so results are
 * bit-identical to the scalar accumulation.
 *
 * assign() reuses the packed storage, making repacking (once per query
 * row) allocation-free after the first call; it also narrows to the
 * minimal bit-width covering the row's value range, so e.g. INT4-range
 * queries cost 4 plane ANDs instead of 8.
 *
 * Storage follows the same alignment contract as BitPlaneSet (32-byte
 * aligned plane rows, zero padding to the aligned stride) — the AVX2
 * maskedSumSimd() path depends on it for aligned full-width loads.
 */
class QueryPlanes
{
  public:
    QueryPlanes() = default;

    /** Pack @p q; bits = 0 selects the minimal covering width. */
    explicit QueryPlanes(std::span<const int8_t> q, int bits = 0);

    /** Re-pack into the existing storage (no allocation on reuse). */
    void assign(std::span<const int8_t> q, int bits = 0);

    int numCols() const { return cols_; }
    int numPlanes() const { return bits_; }
    int wordsPerPlane() const { return words_; }
    /** Allocated words between consecutive plane rows (32B multiple). */
    int planeStride() const { return stride_; }

    /**
     * Raw pointer view handed to the AVX2 kernels (packed planes plus
     * the byte value mirror, built lazily on the first call after
     * assign() so non-SIMD executions never pay for it). Only valid
     * while this object is alive and unmodified. Not thread-safe —
     * like the rest of QueryPlanes, one instance per worker thread.
     */
    simd::QPlaneView simdView() const;

    /** Signed weight of plane @p t: -2^{b-1} for t=0, else 2^{b-1-t}. */
    int planeWeight(int t) const;

    /** Bit of element @p col on plane @p t (tests/debugging). */
    bool bit(int t, int col) const;

    /**
     * Packed words of plane @p t; 32-byte-aligned data pointer, zero
     * padding up to the aligned stride past .size() (the BitPlaneSet
     * storage contract).
     */
    std::span<const uint64_t> plane(int t) const;

    /**
     * Word-parallel sum of the query values selected by a key bit
     * mask: sum_{d : mask_d = 1} q_d. This is the primitive every
     * bit-serial plane delta reduces to; the mask is one packed key
     * plane. Weights are powers of two, so the per-plane popcounts
     * combine with shifts — no multiplies on the hot path.
     *
     * @p mask must hold exactly wordsPerPlane() words; this baseline
     * kernel reads nothing past the span.
     */
    int64_t
    maskedSum(std::span<const uint64_t> mask) const
    {
        PADE_DCHECK_EQ(static_cast<int>(mask.size()), words_);
        // Dispatch on the word count so the compiler keeps the mask
        // words in registers across all query planes (head dims up to
        // 256 take the unrolled paths).
        switch (words_) {
        case 1: return maskedSumW<1>(mask.data());
        case 2: return maskedSumW<2>(mask.data());
        case 3: return maskedSumW<3>(mask.data());
        case 4: return maskedSumW<4>(mask.data());
        default: break;
        }
        const uint64_t *qw = storage_.data();
        int64_t sum = 0;
        for (int t = 0; t < bits_; t++, qw += stride_) {
            int64_t ones = 0;
            for (int w = 0; w < words_; w++)
                ones += std::popcount(qw[w] & mask[w]);
            sum += static_cast<int64_t>(planeWeight(t)) * ones;
        }
        return sum;
    }

    /**
     * maskedSum() through the AVX2 backend (QkKernel::kSimd). Exact
     * same value, bit for bit — the SIMD kernel counts the same set
     * bits with the same power-of-two weights, only wider. Falls back
     * to maskedSum() when the backend is compiled out or the CPU
     * lacks AVX2, so it is always safe to call. Like maskedSum(),
     * only the mask's own words are dereferenced (the tail chunk is
     * read with a masked load), so any caller span is legal.
     */
    int64_t maskedSumSimd(std::span<const uint64_t> mask) const;

  private:
    template <int W>
    int64_t
    maskedSumW(const uint64_t *mask) const
    {
        uint64_t k[W];
        for (int w = 0; w < W; w++)
            k[w] = mask[w];
        const uint64_t *qw = storage_.data();
        const auto ones = [&qw, &k]() {
            int64_t o = 0;
            for (int w = 0; w < W; w++)
                o += std::popcount(qw[w] & k[w]);
            return o;
        };
        // Sign plane (t = 0, weight -2^{b-1}) first, then the
        // non-negative planes with descending power-of-two weights.
        const int64_t neg = ones();
        qw += stride_;
        int64_t pos = 0;
        for (int t = 1; t < bits_; t++, qw += stride_)
            pos += ones() << (bits_ - 1 - t);
        return pos - (neg << (bits_ - 1));
    }

    int cols_ = 0;
    int bits_ = 0;
    int words_ = 0;  //!< logical words per plane: ceil(cols / 64)
    int stride_ = 0; //!< allocated words per plane (32-byte multiple)
    PlaneStore storage_;
    /** Rebuild values_ from the packed planes (lazy, see simdView). */
    void buildValues() const;

    /**
     * Byte mirror of the packed planes — element col is exactly the
     * plane reconstruction sum_t planeWeight(t) * bit(t, col) — kept
     * 32-byte aligned and zero-padded to a 32-byte boundary. Built
     * lazily by simdView() (mutable: a deferred cache of const
     * state): the AVX2 short-row kernel computes maskedSum directly
     * in the value domain (select bytes by mask,
     * vpmaddubsw-accumulate), touching one byte per element instead
     * of one plane bit per (plane, element). Never built when no
     * SIMD kernel runs.
     */
    mutable std::vector<int8_t, AlignedAllocator<int8_t, 32>> values_;
    mutable bool values_valid_ = false;
};

/**
 * Partial dot product of a full-precision query row with the first
 * (r+1) bit planes of key @p row : S^r = sum_{p<=r} w_p * sum_{bit=1} q.
 * This is the score the scoreboard accumulates plane by plane.
 * Word-parallel: packs the query once and reduces to popcounts.
 */
int64_t partialDot(std::span<const int8_t> q, const BitPlaneSet &keys,
                   int row, int r);

/** partialDot over an already-packed query (the hot-path form). */
int64_t partialDot(const QueryPlanes &q, const BitPlaneSet &keys,
                   int row, int r);

/**
 * Scalar reference for partialDot: walks every set key bit with ctz.
 * Kept as the bit-exactness oracle for the popcount and SIMD kernels.
 */
int64_t partialDotScalar(std::span<const int8_t> q,
                         const BitPlaneSet &keys, int row, int r);

/**
 * partialDot through the AVX2 backend (QkKernel::kSimd); bit-identical
 * to partialDot()/partialDotScalar(), falls back to the popcount
 * kernel when AVX2 is unavailable.
 */
int64_t partialDotSimd(const QueryPlanes &q, const BitPlaneSet &keys,
                       int row, int r);

/** Exact dot product via all planes (equals integer QK^T). */
int64_t exactDot(std::span<const int8_t> q, const BitPlaneSet &keys,
                 int row);

/** exactDot over an already-packed query (the hot-path form). */
int64_t exactDot(const QueryPlanes &q, const BitPlaneSet &keys,
                 int row);

/** Scalar reference for exactDot (see partialDotScalar). */
int64_t exactDotScalar(std::span<const int8_t> q, const BitPlaneSet &keys,
                       int row);

/** exactDot through the AVX2 backend (see partialDotSimd). */
int64_t exactDotSimd(const QueryPlanes &q, const BitPlaneSet &keys,
                     int row);

} // namespace pade

#endif // PADE_QUANT_BITPLANE_H

/**
 * @file
 * Two's-complement bit-plane decomposition of integer Key matrices.
 *
 * PADE's bit-serial stage fusion (BSF) streams the Key matrix MSB-plane
 * first: plane r of a p-bit value b_{p-1}..b_0 holds bit (p-1-r) of every
 * element, so plane 0 is the sign plane with weight -2^{p-1} and plane r>0
 * has weight +2^{p-1-r}. Because every non-sign bit contributes a
 * non-negative amount, knowing planes 0..r bounds the remaining magnitude
 * by M_r = 2^{p-1-r} - 1 per element — the property the BUI (bit-wise
 * uncertainty interval) exploits.
 *
 * Planes are stored packed (64 bits/word) per (row, plane) with cached
 * popcounts, matching the accelerator's K-SRAM layout in which one SRAM
 * row holds the same bit plane across the hidden dimension (paper
 * Fig. 22).
 */

#ifndef PADE_QUANT_BITPLANE_H
#define PADE_QUANT_BITPLANE_H

#include <cstddef>
#include <cstdint>
#include <span>
#include <vector>

#include "tensor/matrix.h"

namespace pade {

/**
 * Packed bit planes of an integer matrix (rows = keys/tokens).
 */
class BitPlaneSet
{
  public:
    /**
     * Decompose @p m into @p bits planes (MSB first).
     *
     * @param m int8 matrix; for bits < 8, all values must fit the range.
     * @param bits total bit-width p in [2, 8].
     */
    explicit BitPlaneSet(const MatrixI8 &m, int bits = 8);

    int numRows() const { return rows_; }
    int numCols() const { return cols_; }
    int numPlanes() const { return bits_; }
    int wordsPerPlane() const { return words_; }

    /** Signed weight of plane @p r: -2^{p-1} for r=0, else 2^{p-1-r}. */
    int planeWeight(int r) const;

    /**
     * Remaining-magnitude constant after planes 0..r are known:
     * M_r = 2^{p-1-r} - 1 (0 once every plane is processed).
     */
    int remainingMagnitude(int r) const;

    /** Bit of element (row, col) on plane r. */
    bool bit(int row, int r, int col) const;

    /** Packed words of plane r of @p row. */
    std::span<const uint64_t> plane(int row, int r) const;

    /** Cached popcount of plane r of @p row. */
    int popcount(int row, int r) const;

    /**
     * Partial reconstruction of element (row, col) using planes 0..r
     * with all unknown bits set to zero (the conservative value S^r
     * builds on).
     */
    int reconstruct(int row, int col, int r) const;

    /** Bytes of one plane of one row as stored in DRAM (ceil(H/8)). */
    int planeBytes() const { return (cols_ + 7) / 8; }

  private:
    std::size_t
    planeIndex(int row, int r) const
    {
        return (static_cast<std::size_t>(row) * bits_ + r) * words_;
    }

    int rows_ = 0;
    int cols_ = 0;
    int bits_ = 8;
    int words_ = 0;
    std::vector<uint64_t> storage_;
    std::vector<int> popcounts_;
};

/**
 * Partial dot product of a full-precision query row with the first
 * (r+1) bit planes of key @p row : S^r = sum_{p<=r} w_p * sum_{bit=1} q.
 * This is the score the scoreboard accumulates plane by plane.
 */
int64_t partialDot(std::span<const int8_t> q, const BitPlaneSet &keys,
                   int row, int r);

/** Exact dot product via all planes (equals integer QK^T). */
int64_t exactDot(std::span<const int8_t> q, const BitPlaneSet &keys,
                 int row);

} // namespace pade

#endif // PADE_QUANT_BITPLANE_H

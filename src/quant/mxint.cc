#include "quant/mxint.h"

#include <cmath>

#include "common/math_util.h"

namespace pade {

MxQuantized
mxQuantize(const MatrixF &m, int group_size)
{
    MxQuantized out;
    out.group_size = group_size;
    out.values = MatrixI8(m.rows(), m.cols());
    const int groups = (m.cols() + group_size - 1) / group_size;
    out.scales.assign(static_cast<size_t>(m.rows()) * groups, 1.0f);

    for (int r = 0; r < m.rows(); r++) {
        for (int g = 0; g < groups; g++) {
            const int lo = g * group_size;
            const int hi = std::min(m.cols(), lo + group_size);
            float absmax = 0.0f;
            for (int c = lo; c < hi; c++)
                absmax = std::max(absmax, std::fabs(m.at(r, c)));
            const float scale = absmax > 0.0f ? absmax / 127.0f : 1.0f;
            out.scales[static_cast<size_t>(r) * groups + g] = scale;
            for (int c = lo; c < hi; c++) {
                const float v = m.at(r, c) / scale;
                out.values.at(r, c) = static_cast<int8_t>(
                    clampTo(static_cast<int>(std::nearbyint(v)), -128,
                            127));
            }
        }
    }
    return out;
}

MatrixF
mxDequantize(const MxQuantized &q)
{
    MatrixF out(q.values.rows(), q.values.cols());
    const int groups = q.groupsPerRow();
    for (int r = 0; r < out.rows(); r++) {
        for (int c = 0; c < out.cols(); c++) {
            const float scale =
                q.scales[static_cast<size_t>(r) * groups +
                         c / q.group_size];
            out.at(r, c) = scale * q.values.at(r, c);
        }
    }
    return out;
}

double
mxQuantizationError(const MatrixF &m, int group_size)
{
    const MatrixF d = mxDequantize(mxQuantize(m, group_size));
    double num = 0.0;
    double den = 0.0;
    for (int r = 0; r < m.rows(); r++) {
        for (int c = 0; c < m.cols(); c++) {
            const double e = d.at(r, c) - m.at(r, c);
            num += e * e;
            den += static_cast<double>(m.at(r, c)) * m.at(r, c);
        }
    }
    return den > 0.0 ? std::sqrt(num / den) : 0.0;
}

} // namespace pade

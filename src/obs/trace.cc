#include "obs/trace.h"

#include <algorithm>
#include <chrono>
#include <cinttypes>
#include <cstdio>
#include <memory>
#include <vector>

#include "common/thread_annotations.h"
#include "runtime/mutex.h"

namespace pade::obs {

namespace {

/** Fixed-size record in a thread's ring buffer. */
struct TraceEvent
{
    const char *name = nullptr;
    char phase = 'X'; //!< 'X' complete, 'i' instant
    int64_t start_ns = 0;
    int64_t dur_ns = 0;
    int nargs = 0;
    TraceArg args[2] = {};
};

/**
 * One thread's event ring. The mutex is per-buffer and essentially
 * uncontended: the owning thread appends, and only export/clear from
 * another thread ever takes it concurrently.
 */
struct ThreadBuffer
{
    explicit ThreadBuffer(uint32_t tid_, std::size_t cap_)
        : tid(tid_), cap(cap_)
    {
    }

    const uint32_t tid;
    Mutex mu;
    std::size_t cap PADE_GUARDED_BY(mu);
    std::vector<TraceEvent> ring PADE_GUARDED_BY(mu);
    uint64_t total PADE_GUARDED_BY(mu) = 0; //!< ever recorded

    void
    record(const TraceEvent &e)
    {
        MutexLock lock(mu);
        if (ring.size() < cap)
            ring.push_back(e);
        else if (cap > 0)
            ring[total % cap] = e;
        ++total;
    }
};

/** Buffers of all threads, living and exited (shared ownership). */
struct TraceGlobal
{
    Mutex mu;
    std::vector<std::shared_ptr<ThreadBuffer>> buffers
        PADE_GUARDED_BY(mu);
    std::size_t capacity PADE_GUARDED_BY(mu) = 16384;
    std::atomic<uint32_t> next_tid{1};
    std::chrono::steady_clock::time_point epoch =
        std::chrono::steady_clock::now();
};

TraceGlobal &
global()
{
    static TraceGlobal *g = new TraceGlobal; // leaked: see Registry
    return *g;
}

ThreadBuffer &
localBuffer()
{
    thread_local std::shared_ptr<ThreadBuffer> buf = [] {
        TraceGlobal &g = global();
        const uint32_t tid =
            g.next_tid.fetch_add(1, std::memory_order_relaxed);
        MutexLock lock(g.mu);
        auto b = std::make_shared<ThreadBuffer>(tid, g.capacity);
        g.buffers.push_back(b);
        return b;
    }();
    return *buf;
}

} // namespace

namespace detail {

int64_t
traceNowNs()
{
    return std::chrono::duration_cast<std::chrono::nanoseconds>(
               std::chrono::steady_clock::now() - global().epoch)
        .count();
}

void
recordComplete(const char *name, int64_t start_ns, int64_t dur_ns,
               const TraceArg *args, int nargs)
{
    TraceEvent e;
    e.name = name;
    e.phase = 'X';
    e.start_ns = start_ns;
    e.dur_ns = dur_ns;
    e.nargs = std::min(nargs, 2);
    for (int i = 0; i < e.nargs; ++i)
        e.args[i] = args[i];
    localBuffer().record(e);
}

void
recordInstant(const char *name, const TraceArg *args, int nargs)
{
    TraceEvent e;
    e.name = name;
    e.phase = 'i';
    e.start_ns = traceNowNs();
    e.nargs = std::min(nargs, 2);
    for (int i = 0; i < e.nargs; ++i)
        e.args[i] = args[i];
    localBuffer().record(e);
}

} // namespace detail

void
setTraceEnabled(bool on)
{
    detail::g_trace_enabled.store(on, std::memory_order_relaxed);
}

void
clearTrace()
{
    TraceGlobal &g = global();
    MutexLock lock(g.mu);
    for (const auto &buf : g.buffers)
    {
        MutexLock bl(buf->mu);
        buf->ring.clear();
        buf->total = 0;
    }
}

void
setTraceCapacity(std::size_t events)
{
    TraceGlobal &g = global();
    MutexLock lock(g.mu);
    g.capacity = events;
    for (const auto &buf : g.buffers)
    {
        MutexLock bl(buf->mu);
        buf->cap = events;
        buf->ring.clear();
        buf->ring.shrink_to_fit();
        buf->total = 0;
    }
}

TraceStats
traceStats()
{
    TraceStats stats;
    TraceGlobal &g = global();
    MutexLock lock(g.mu);
    stats.threads = static_cast<int>(g.buffers.size());
    for (const auto &buf : g.buffers)
    {
        MutexLock bl(buf->mu);
        stats.recorded += buf->total;
        stats.dropped += buf->total - buf->ring.size();
    }
    return stats;
}

namespace {

void
appendEscaped(std::string &out, const char *s)
{
    for (; *s != '\0'; ++s)
    {
        if (*s == '"' || *s == '\\')
            out += '\\';
        if (static_cast<unsigned char>(*s) < 0x20)
            continue;
        out += *s;
    }
}

void
appendEvent(std::string &out, uint32_t tid, const TraceEvent &e)
{
    char buf[96];
    out += "{\"name\":\"";
    appendEscaped(out, e.name);
    out += "\",\"ph\":\"";
    out += e.phase;
    out += '"';
    if (e.phase == 'i')
        out += ",\"s\":\"t\""; // thread-scoped instant
    std::snprintf(buf, sizeof buf, ",\"ts\":%.3f",
                  static_cast<double>(e.start_ns) / 1000.0);
    out += buf;
    if (e.phase == 'X')
    {
        std::snprintf(buf, sizeof buf, ",\"dur\":%.3f",
                      static_cast<double>(e.dur_ns) / 1000.0);
        out += buf;
    }
    std::snprintf(buf, sizeof buf, ",\"pid\":1,\"tid\":%u", tid);
    out += buf;
    if (e.nargs > 0)
    {
        out += ",\"args\":{";
        for (int i = 0; i < e.nargs; ++i)
        {
            if (i > 0)
                out += ',';
            out += '"';
            appendEscaped(out, e.args[i].key);
            std::snprintf(buf, sizeof buf, "\":%" PRId64,
                          e.args[i].value);
            out += buf;
        }
        out += '}';
    }
    out += '}';
}

} // namespace

std::string
chromeTraceJson()
{
    struct Tagged
    {
        uint32_t tid;
        TraceEvent e;
    };
    std::vector<Tagged> events;
    {
        TraceGlobal &g = global();
        MutexLock lock(g.mu);
        for (const auto &buf : g.buffers)
        {
            MutexLock bl(buf->mu);
            for (const TraceEvent &e : buf->ring)
                events.push_back({buf->tid, e});
        }
    }
    std::sort(events.begin(), events.end(),
              [](const Tagged &a, const Tagged &b) {
                  if (a.e.start_ns != b.e.start_ns)
                      return a.e.start_ns < b.e.start_ns;
                  return a.tid < b.tid;
              });

    std::string out;
    out.reserve(events.size() * 96 + 64);
    out += "{\"traceEvents\":[";
    for (std::size_t i = 0; i < events.size(); ++i)
    {
        if (i > 0)
            out += ',';
        out += '\n';
        appendEvent(out, events[i].tid, events[i].e);
    }
    out += "\n],\"displayTimeUnit\":\"ms\"}\n";
    return out;
}

bool
writeChromeTrace(const std::string &path)
{
    const std::string json = chromeTraceJson();
    std::FILE *f = std::fopen(path.c_str(), "wb");
    if (f == nullptr)
        return false;
    const std::size_t n =
        std::fwrite(json.data(), 1, json.size(), f);
    const bool ok = n == json.size() && std::fclose(f) == 0;
    if (n != json.size())
        std::fclose(f);
    return ok;
}

} // namespace pade::obs

/**
 * @file
 * Scoped trace spans recorded into per-thread ring buffers and
 * exported as Chrome trace_event JSON (chrome://tracing, Perfetto).
 *
 * A span is (name, tid, start, duration, up to two integer args).
 * Recording is designed for coarse units — a batcher round, a
 * pipeline unit, a prefill chunk — not per-key loops:
 *
 *  - Tracing is off until setTraceEnabled(true); a disabled span is
 *    one relaxed atomic load (see ScopedSpan's constructor), so
 *    instrumented code pays ~nothing in normal operation.
 *  - An enabled span takes two steady_clock stamps and appends one
 *    fixed-size event to its *own thread's* ring buffer under that
 *    buffer's (uncontended) mutex. Buffers overwrite their oldest
 *    events when full and count the overwrites (TraceStats::dropped)
 *    — tracing never blocks or allocates on the hot path after the
 *    buffer exists.
 *  - Export walks all buffers (including those of exited threads —
 *    ownership is shared with a global list) and emits a single JSON
 *    document of "X" (complete) and "i" (instant) events with
 *    microsecond timestamps relative to the process trace epoch.
 *
 * Names and arg keys must be string literals (or otherwise outlive
 * the trace): events store the pointer, not a copy.
 *
 * Compiled out when the CMake option PADE_TELEMETRY is OFF: recording
 * inlines to nothing and the exporter produces a valid empty trace.
 */

#ifndef PADE_OBS_TRACE_H
#define PADE_OBS_TRACE_H

#include <atomic>
#include <cstddef>
#include <cstdint>
#include <initializer_list>
#include <string>

#include "obs/telemetry.h"

namespace pade::obs {

/** One named integer attached to a span or instant event. */
struct TraceArg
{
    const char *key; //!< string literal; stored by pointer
    int64_t value;
};

namespace detail {

inline std::atomic<bool> g_trace_enabled{false};

/** Outlined slow paths; only called when tracing is enabled. */
int64_t traceNowNs();
void recordComplete(const char *name, int64_t start_ns,
                    int64_t dur_ns, const TraceArg *args, int nargs);
void recordInstant(const char *name, const TraceArg *args, int nargs);

} // namespace detail

/** True after setTraceEnabled(true); relaxed read, hot-path safe. */
inline bool
traceEnabled()
{
#if PADE_TELEMETRY_ENABLED
    return detail::g_trace_enabled.load(std::memory_order_relaxed);
#else
    return false;
#endif
}

/** Turns span recording on or off process-wide. */
void setTraceEnabled(bool on);

/** Discards all recorded events (buffers stay registered). */
void clearTrace();

/**
 * Ring capacity, in events, applied to every buffer (existing
 * buffers are cleared and resized; cold, for tests and tools).
 * Default is 16384 events per thread (~1 MiB).
 */
void setTraceCapacity(std::size_t events);

/** Counts since the last clearTrace(). */
struct TraceStats
{
    uint64_t recorded = 0; //!< events ever recorded
    uint64_t dropped = 0;  //!< of those, overwritten by ring wrap
    int threads = 0;       //!< buffers registered
};

TraceStats traceStats();

/** Records a zero-duration "i" event (admission, eviction, ...). */
inline void
traceInstant(const char *name, std::initializer_list<TraceArg> args)
{
    if (traceEnabled())
        detail::recordInstant(name, args.begin(),
                              static_cast<int>(args.size()));
}

inline void
traceInstant(const char *name)
{
    traceInstant(name, {});
}

/**
 * RAII timer: records one complete ("X") event covering its own
 * lifetime. Cheap enough to leave in place permanently; see file
 * comment for the disabled-path cost.
 */
class ScopedSpan
{
  public:
    explicit ScopedSpan(const char *name) : ScopedSpan(name, {}) {}

    ScopedSpan(const char *name, std::initializer_list<TraceArg> args)
    {
        if (traceEnabled())
        {
            name_ = name;
            nargs_ = 0;
            for (const TraceArg &a : args)
            {
                if (nargs_ == kMaxArgs)
                    break;
                args_[nargs_++] = a;
            }
            start_ns_ = detail::traceNowNs();
        }
    }

    ~ScopedSpan()
    {
        if (name_ != nullptr && traceEnabled())
            detail::recordComplete(name_, start_ns_,
                                   detail::traceNowNs() - start_ns_,
                                   args_, nargs_);
    }

    ScopedSpan(const ScopedSpan &) = delete;
    ScopedSpan &operator=(const ScopedSpan &) = delete;

  private:
    static constexpr int kMaxArgs = 2;

    const char *name_ = nullptr; //!< null => disabled at entry
    int64_t start_ns_ = 0;
    TraceArg args_[kMaxArgs] = {};
    int nargs_ = 0;
};

/**
 * The whole trace as a Chrome trace_event JSON document:
 * {"traceEvents":[...],"displayTimeUnit":"ms"}. Events are sorted by
 * timestamp; valid (and empty) when nothing was recorded.
 */
std::string chromeTraceJson();

/** Writes chromeTraceJson() to @p path; false on I/O failure. */
bool writeChromeTrace(const std::string &path);

} // namespace pade::obs

#endif // PADE_OBS_TRACE_H

/**
 * @file
 * Process-wide metrics registry: named counters, gauges, and
 * fixed-bucket latency histograms, built for hot-path recording.
 *
 * Design constraints (docs/OBSERVABILITY.md):
 *
 *  - No hot-path locks. Every recording primitive is a relaxed
 *    atomic operation on a per-thread *shard* — a cache-line-padded
 *    cell selected by a thread-local index — so concurrent writers
 *    never contend on the same line. Readers aggregate across shards
 *    (sum of relaxed loads), which is exact for counters (no add is
 *    ever lost) and monotone-consistent for histograms: a snapshot
 *    taken concurrently with writers sees some prefix of each
 *    thread's recordings, never a torn value.
 *  - Registration is cold and lock-protected (annotated pade::Mutex):
 *    metric objects are heap-allocated, looked up by name, and never
 *    destroyed until process exit, so the references handed out by
 *    Registry::counter()/gauge()/histogram() stay valid forever and
 *    call sites cache them in function-local statics.
 *  - Compiled to no-ops when the CMake option PADE_TELEMETRY is OFF:
 *    only the *recording* inlines vanish (add/set/record become empty
 *    and the optimizer deletes the call); registry, snapshot, and
 *    JSON export always compile and report zeros, so tooling that
 *    consumes the artifacts works against either build. Query
 *    `kTelemetryEnabled` to branch on the mode at compile time.
 *
 * Naming convention: "subsystem.metric" in snake_case, with the unit
 * suffixed when the value is dimensional ("pool.idle_us",
 * "kv.bytes_appended"). Durations are recorded in microseconds.
 */

#ifndef PADE_OBS_TELEMETRY_H
#define PADE_OBS_TELEMETRY_H

#include <array>
#include <atomic>
#include <cstddef>
#include <cstdint>
#include <map>
#include <memory>
#include <string>
#include <string_view>
#include <utility>
#include <vector>

#include "common/thread_annotations.h"
#include "runtime/mutex.h"

#ifndef PADE_TELEMETRY_ENABLED
#define PADE_TELEMETRY_ENABLED 1
#endif

namespace pade::obs {

/** True when the library was built with telemetry recording. */
inline constexpr bool kTelemetryEnabled = PADE_TELEMETRY_ENABLED != 0;

namespace detail {

/** Writer shards per metric; power of two so the modulo is a mask. */
inline constexpr std::size_t kShards = 16;

/**
 * This thread's shard index in [0, kShards): assigned round-robin on
 * first use, cached thread-locally. Distinct live threads therefore
 * spread across cells; reuse after kShards threads only costs
 * contention, never correctness.
 */
std::size_t shardIndex();

/** One cache line of counter state; padded to defeat false sharing. */
struct alignas(64) CounterCell
{
    std::atomic<uint64_t> v{0};
};

} // namespace detail

/**
 * Monotone event counter. add() is one relaxed fetch_add on this
 * thread's shard; value() sums the shards.
 */
class Counter
{
  public:
    Counter() = default;
    Counter(const Counter &) = delete;
    Counter &operator=(const Counter &) = delete;

    void
    add(uint64_t delta = 1)
    {
#if PADE_TELEMETRY_ENABLED
        cells_[detail::shardIndex()].v.fetch_add(
            delta, std::memory_order_relaxed);
#else
        (void)delta;
#endif
    }

    /** Sum over shards; exact once writers have quiesced. */
    uint64_t value() const;

  private:
    std::array<detail::CounterCell, detail::kShards> cells_;
};

/**
 * Last-write-wins instantaneous value (queue depth, resident bytes).
 * Unsharded: a gauge is a single value by definition, and a relaxed
 * store is already contention-free.
 */
class Gauge
{
  public:
    Gauge() = default;
    Gauge(const Gauge &) = delete;
    Gauge &operator=(const Gauge &) = delete;

    void
    set(double v)
    {
#if PADE_TELEMETRY_ENABLED
        v_.store(v, std::memory_order_relaxed);
#else
        (void)v;
#endif
    }

    double
    value() const
    {
        return v_.load(std::memory_order_relaxed);
    }

  private:
    std::atomic<double> v_{0.0};
};

/**
 * Fixed-bucket histogram over non-negative samples with power-of-two
 * bucket edges: bucket 0 holds [0, 1), bucket b >= 1 holds
 * [2^(b-1), 2^b), and the last bucket absorbs everything above. The
 * geometry trades resolution for a recording path that is three
 * relaxed atomics plus a CAS-loop max — no allocation, no sorting —
 * at the cost of percentile *estimates* quantized to bucket upper
 * bounds (within 2x of the true nearest-rank value). Exact
 * count/sum/mean/max are tracked alongside.
 */
class Histogram
{
  public:
    static constexpr std::size_t kBuckets = 40;

    Histogram() = default;
    Histogram(const Histogram &) = delete;
    Histogram &operator=(const Histogram &) = delete;

    void
    record(double v)
    {
#if PADE_TELEMETRY_ENABLED
        Shard &s = shards_[detail::shardIndex() % kHistShards];
        s.buckets[bucketOf(v)].fetch_add(1, std::memory_order_relaxed);
        s.count.fetch_add(1, std::memory_order_relaxed);
        s.sum.fetch_add(v, std::memory_order_relaxed);
        double m = s.max.load(std::memory_order_relaxed);
        while (v > m && !s.max.compare_exchange_weak(
                            m, v, std::memory_order_relaxed))
        {
        }
#else
        (void)v;
#endif
    }

    /** Bucket index of @p v (0 for negatives and NaN). */
    static std::size_t bucketOf(double v);

    /** Inclusive upper edge of bucket @p b (1.0 for bucket 0). */
    static double bucketUpperBound(std::size_t b);

  private:
    friend class Registry;

    /** Fewer shards than Counter: a histogram shard is ~3 lines. */
    static constexpr std::size_t kHistShards = 8;

    struct alignas(64) Shard
    {
        std::array<std::atomic<uint64_t>, kBuckets> buckets{};
        std::atomic<uint64_t> count{0};
        std::atomic<double> sum{0.0};
        std::atomic<double> max{0.0};
    };

    std::array<Shard, kHistShards> shards_;
};

/** Aggregated (shard-summed) state of one histogram at one instant. */
struct HistogramStat
{
    uint64_t count = 0;
    double sum = 0.0;
    double max = 0.0;
    std::array<uint64_t, Histogram::kBuckets> buckets{};

    double
    mean() const
    {
        return count > 0 ? sum / static_cast<double>(count) : 0.0;
    }

    /**
     * Nearest-rank percentile estimate, quantized to the upper bound
     * of the bucket holding the ceil(q * count)-th sample; 0 when
     * empty.
     */
    double percentile(double q) const;
};

/**
 * Point-in-time copy of every registered metric, in name order.
 * Cheap to take (one pass of relaxed loads under the registry lock
 * for the *name list* only), comparable via delta() to isolate one
 * run's activity from process-lifetime totals.
 */
struct MetricsSnapshot
{
    std::vector<std::pair<std::string, uint64_t>> counters;
    std::vector<std::pair<std::string, double>> gauges;
    std::vector<std::pair<std::string, HistogramStat>> histograms;

    /** Counter value by name; 0 when absent. */
    uint64_t counter(std::string_view name) const;
    /** Histogram by name; nullptr when absent. */
    const HistogramStat *histogram(std::string_view name) const;

    /**
     * after - before, per metric: counters and histogram
     * counts/sums/buckets subtract (metrics absent from @p before
     * count from zero); gauges and histogram max are instantaneous
     * and taken from @p after unchanged.
     */
    static MetricsSnapshot delta(const MetricsSnapshot &before,
                                 const MetricsSnapshot &after);

    /**
     * Stable JSON object:
     *   {"schema":"pade-metrics-v1","enabled":...,
     *    "counters":{...},"gauges":{...},
     *    "histograms":{name:{count,sum,mean,max,p50,p95,p99,p999}}}
     * Keys appear in name order; parses under python3 -m json.tool.
     */
    std::string toJson() const;
};

/**
 * The process-wide metric namespace. Lookup interns the name on first
 * use and returns a reference that stays valid for the process
 * lifetime; call sites cache it (function-local static) so steady
 * state never touches the registry lock.
 */
class Registry
{
  public:
    static Registry &instance();

    Counter &counter(std::string_view name) PADE_EXCLUDES(mu_);
    Gauge &gauge(std::string_view name) PADE_EXCLUDES(mu_);
    Histogram &histogram(std::string_view name) PADE_EXCLUDES(mu_);

    /** Aggregate every metric; safe concurrently with writers. */
    MetricsSnapshot snapshot() const PADE_EXCLUDES(mu_);

  private:
    Registry() = default;

    mutable Mutex mu_;
    std::map<std::string, std::unique_ptr<Counter>, std::less<>>
        counters_ PADE_GUARDED_BY(mu_);
    std::map<std::string, std::unique_ptr<Gauge>, std::less<>>
        gauges_ PADE_GUARDED_BY(mu_);
    std::map<std::string, std::unique_ptr<Histogram>, std::less<>>
        histograms_ PADE_GUARDED_BY(mu_);
};

/** Registry::instance().snapshot().toJson() — the stats exporter. */
std::string statsSnapshotJson();

} // namespace pade::obs

#endif // PADE_OBS_TELEMETRY_H

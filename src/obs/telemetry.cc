#include "obs/telemetry.h"

#include <algorithm>
#include <bit>
#include <cinttypes>
#include <cmath>
#include <cstdio>

namespace pade::obs {

namespace detail {

std::size_t
shardIndex()
{
    static std::atomic<std::size_t> next{0};
    thread_local const std::size_t idx =
        next.fetch_add(1, std::memory_order_relaxed) % kShards;
    return idx;
}

} // namespace detail

uint64_t
Counter::value() const
{
    uint64_t sum = 0;
    for (const auto &cell : cells_)
        sum += cell.v.load(std::memory_order_relaxed);
    return sum;
}

std::size_t
Histogram::bucketOf(double v)
{
    // Catches NaN and negatives too: !(v >= 1.0) is true for both.
    if (!(v >= 1.0))
        return 0;
    // Values at or above 2^63 saturate into the last bucket anyway.
    constexpr double kHuge = 9.2e18;
    const uint64_t u =
        v >= kHuge ? ~uint64_t{0} : static_cast<uint64_t>(v);
    const std::size_t b = 64 - static_cast<std::size_t>(
        std::countl_zero(u | 1));
    return std::min(b, kBuckets - 1);
}

double
Histogram::bucketUpperBound(std::size_t b)
{
    if (b == 0)
        return 1.0;
    return std::ldexp(1.0, static_cast<int>(b));
}

double
HistogramStat::percentile(double q) const
{
    if (count == 0)
        return 0.0;
    const auto rank = static_cast<uint64_t>(std::ceil(
        std::clamp(q, 0.0, 1.0) * static_cast<double>(count)));
    uint64_t seen = 0;
    for (std::size_t b = 0; b < buckets.size(); ++b)
    {
        seen += buckets[b];
        if (seen >= std::max<uint64_t>(rank, 1))
            return Histogram::bucketUpperBound(b);
    }
    return Histogram::bucketUpperBound(buckets.size() - 1);
}

uint64_t
MetricsSnapshot::counter(std::string_view name) const
{
    for (const auto &[n, v] : counters)
        if (n == name)
            return v;
    return 0;
}

const HistogramStat *
MetricsSnapshot::histogram(std::string_view name) const
{
    for (const auto &[n, h] : histograms)
        if (n == name)
            return &h;
    return nullptr;
}

MetricsSnapshot
MetricsSnapshot::delta(const MetricsSnapshot &before,
                       const MetricsSnapshot &after)
{
    MetricsSnapshot d;
    d.counters.reserve(after.counters.size());
    for (const auto &[name, v] : after.counters)
        d.counters.emplace_back(name, v - before.counter(name));
    d.gauges = after.gauges;
    d.histograms.reserve(after.histograms.size());
    for (const auto &[name, h] : after.histograms)
    {
        HistogramStat hd = h;
        if (const HistogramStat *hb = before.histogram(name))
        {
            hd.count -= hb->count;
            hd.sum -= hb->sum;
            // max is absolute (cannot be subtracted); keep `after`'s.
            for (std::size_t b = 0; b < hd.buckets.size(); ++b)
                hd.buckets[b] -= hb->buckets[b];
        }
        d.histograms.emplace_back(name, hd);
    }
    return d;
}

namespace {

/** Appends a double as a JSON-legal number (non-finite becomes 0). */
void
appendNumber(std::string &out, double v)
{
    if (!std::isfinite(v))
        v = 0.0;
    char buf[40];
    std::snprintf(buf, sizeof buf, "%.17g", v);
    out += buf;
}

void
appendQuoted(std::string &out, std::string_view s)
{
    out += '"';
    // Metric names are code-controlled [a-z0-9._]; escape defensively
    // anyway so a stray name can never break the document.
    for (const char c : s)
    {
        if (c == '"' || c == '\\')
            out += '\\';
        if (static_cast<unsigned char>(c) < 0x20)
            continue;
        out += c;
    }
    out += '"';
}

} // namespace

std::string
MetricsSnapshot::toJson() const
{
    std::string out;
    out.reserve(1024);
    out += "{\"schema\":\"pade-metrics-v1\",\"enabled\":";
    out += kTelemetryEnabled ? "true" : "false";
    out += ",\"counters\":{";
    bool first = true;
    for (const auto &[name, v] : counters)
    {
        if (!first)
            out += ',';
        first = false;
        appendQuoted(out, name);
        char buf[24];
        std::snprintf(buf, sizeof buf, ":%" PRIu64, v);
        out += buf;
    }
    out += "},\"gauges\":{";
    first = true;
    for (const auto &[name, v] : gauges)
    {
        if (!first)
            out += ',';
        first = false;
        appendQuoted(out, name);
        out += ':';
        appendNumber(out, v);
    }
    out += "},\"histograms\":{";
    first = true;
    for (const auto &[name, h] : histograms)
    {
        if (!first)
            out += ',';
        first = false;
        appendQuoted(out, name);
        char buf[32];
        std::snprintf(buf, sizeof buf, ":{\"count\":%" PRIu64,
                      h.count);
        out += buf;
        out += ",\"sum\":";
        appendNumber(out, h.sum);
        out += ",\"mean\":";
        appendNumber(out, h.mean());
        out += ",\"max\":";
        appendNumber(out, h.max);
        out += ",\"p50\":";
        appendNumber(out, h.percentile(0.50));
        out += ",\"p95\":";
        appendNumber(out, h.percentile(0.95));
        out += ",\"p99\":";
        appendNumber(out, h.percentile(0.99));
        out += ",\"p999\":";
        appendNumber(out, h.percentile(0.999));
        out += '}';
    }
    out += "}}";
    return out;
}

Registry &
Registry::instance()
{
    static Registry *r = new Registry; // leaked: outlives all threads
    return *r;
}

Counter &
Registry::counter(std::string_view name)
{
    MutexLock lock(mu_);
    auto it = counters_.find(name);
    if (it == counters_.end())
        it = counters_
                 .emplace(std::string(name),
                          std::make_unique<Counter>())
                 .first;
    return *it->second;
}

Gauge &
Registry::gauge(std::string_view name)
{
    MutexLock lock(mu_);
    auto it = gauges_.find(name);
    if (it == gauges_.end())
        it = gauges_
                 .emplace(std::string(name), std::make_unique<Gauge>())
                 .first;
    return *it->second;
}

Histogram &
Registry::histogram(std::string_view name)
{
    MutexLock lock(mu_);
    auto it = histograms_.find(name);
    if (it == histograms_.end())
        it = histograms_
                 .emplace(std::string(name),
                          std::make_unique<Histogram>())
                 .first;
    return *it->second;
}

MetricsSnapshot
Registry::snapshot() const
{
    MetricsSnapshot snap;
    MutexLock lock(mu_);
    snap.counters.reserve(counters_.size());
    for (const auto &[name, c] : counters_)
        snap.counters.emplace_back(name, c->value());
    snap.gauges.reserve(gauges_.size());
    for (const auto &[name, g] : gauges_)
        snap.gauges.emplace_back(name, g->value());
    snap.histograms.reserve(histograms_.size());
    for (const auto &[name, h] : histograms_)
    {
        HistogramStat stat;
        for (const auto &shard : h->shards_)
        {
            stat.count +=
                shard.count.load(std::memory_order_relaxed);
            stat.sum += shard.sum.load(std::memory_order_relaxed);
            stat.max = std::max(
                stat.max,
                shard.max.load(std::memory_order_relaxed));
            for (std::size_t b = 0; b < Histogram::kBuckets; ++b)
                stat.buckets[b] += shard.buckets[b].load(
                    std::memory_order_relaxed);
        }
        snap.histograms.emplace_back(name, stat);
    }
    return snap;
}

std::string
statsSnapshotJson()
{
    return Registry::instance().snapshot().toJson();
}

} // namespace pade::obs

#include "energy/energy_model.h"

namespace pade {

EnergyBreakdown &
EnergyBreakdown::operator+=(const EnergyBreakdown &o)
{
    compute_pj += o.compute_pj;
    sram_pj += o.sram_pj;
    dram_pj += o.dram_pj;
    other_pj += o.other_pj;
    for (const auto &kv : o.modules)
        modules[kv.first] += kv.second;
    return *this;
}

double
gopsPerWatt(double useful_ops, double energy_pj)
{
    // GOPS/W == ops per nanojoule == (ops / pJ) * 1000.
    if (energy_pj <= 0.0)
        return 0.0;
    return useful_ops / energy_pj * 1000.0;
}

double
powerMw(double energy_pj, double time_ns)
{
    // pJ / ns == mW.
    if (time_ns <= 0.0)
        return 0.0;
    return energy_pj / time_ns;
}

} // namespace pade

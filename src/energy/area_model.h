/**
 * @file
 * Analytic area model of the PADE accelerator (paper Fig. 20: 4.53 mm^2
 * at TSMC 28 nm) and of the GSAT design-space exploration (Fig. 17(a)).
 *
 * The model composes unit areas of muxes/adders/registers per the
 * micro-architecture's structural counts, so DSE knobs (sub-group size,
 * scoreboard entries, lane count) move area the way the paper's RTL
 * synthesis would, and the default configuration lands on the paper's
 * module shares.
 */

#ifndef PADE_ENERGY_AREA_MODEL_H
#define PADE_ENERGY_AREA_MODEL_H

#include <map>
#include <string>

namespace pade {

/** Structural parameters that area depends on. */
struct AreaParams
{
    int pe_rows = 8;
    int lanes_per_row = 16;
    int lane_dim = 64;          //!< dot-product width per lane
    int subgroup_size = 8;      //!< GSAT accumulation sub-group
    int scoreboard_entries = 32;
    int scoreboard_bits = 45;
    int vpu_rows = 8;
    int vpu_cols = 16;
    int apm_inputs = 128;
    double buffer_kb = 352.0;   //!< total on-chip SRAM

    int totalLanes() const { return pe_rows * lanes_per_row; }
};

/** Per-module area report in mm^2. */
struct AreaReport
{
    std::map<std::string, double> modules;
    double total() const;
};

/** Compute the area breakdown for the given structural parameters. */
AreaReport padeArea(const AreaParams &p);

/**
 * GSAT-only area+power figure of merit versus sub-group size, for the
 * Fig. 17(a) DSE: smaller groups shrink muxes but add subtractors and
 * Qsum generators. Returns {area_mm2, power_mw} of one lane's GSAT.
 */
struct GsatCost
{
    double area_mm2 = 0.0;
    double power_mw = 0.0;
};
GsatCost gsatCost(int lane_dim, int subgroup_size);

} // namespace pade

#endif // PADE_ENERGY_AREA_MODEL_H

#include "energy/area_model.h"

#include <cmath>

namespace pade {

double
AreaReport::total() const
{
    double t = 0.0;
    for (const auto &kv : modules)
        t += kv.second;
    return t;
}

namespace {

// Unit-cost constants (mm^2) for 28 nm structural area composition.
// "Units" below are abstract gate-cost weights; kUnit converts them to
// mm^2 and is calibrated so the default configuration reproduces the
// paper's 4.53 mm^2 total with its Fig. 20 module shares.
constexpr double kUnit = 2.16e-5;
constexpr double kMuxUnit = 1.0;   //!< per (mux input x 8-bit) weight
constexpr double kAddUnit = 2.0;   //!< 8->16b adder weight
constexpr double kGroupFixed = 24.0; //!< subtractor + Qsum share
constexpr double kScoreboardBit = 0.91e-6;
constexpr double kDecisionPerLane = 7.4e-4;
constexpr double kBuiGenerator = 0.091;
constexpr double kBuiGfModule = 0.0164;
constexpr double kVpuMac = 0.0027;
constexpr double kApmInput = 0.0055;
constexpr double kVpuCtrl = 0.24;
constexpr double kSchedulers = 0.127;
constexpr double kOthersFrac = 0.033; //!< NoC, top control, misc.
constexpr double kSramPer32Kb = 0.09;

double
gsatUnits(int lane_dim, int g)
{
    const double groups = static_cast<double>(lane_dim) / g;
    const double half = g / 2.0;
    const double per_group = kMuxUnit * half * (half + 1.0) +
        kAddUnit * half + kGroupFixed;
    return groups * per_group;
}

} // namespace

GsatCost
gsatCost(int lane_dim, int subgroup_size)
{
    GsatCost c;
    c.area_mm2 = kUnit * gsatUnits(lane_dim, subgroup_size);
    // Dynamic power tracks switched capacitance ~ area at fixed
    // activity; leakage adds a small floor.
    c.power_mw = 120.0 * c.area_mm2 + 0.05;
    return c;
}

AreaReport
padeArea(const AreaParams &p)
{
    AreaReport rep;
    const int lanes = p.totalLanes();

    const double lane_gsat = gsatCost(p.lane_dim, p.subgroup_size)
        .area_mm2;
    // Shift-accumulate and lane-local control add ~25% on top of GSAT.
    rep.modules["pe_lane"] = lanes * lane_gsat * 1.25;

    rep.modules["scoreboard"] = lanes *
        static_cast<double>(p.scoreboard_entries) * p.scoreboard_bits *
        kScoreboardBit;
    rep.modules["decision_unit"] = lanes * kDecisionPerLane;
    rep.modules["bui_generator"] = kBuiGenerator;
    rep.modules["bui_gf_module"] = p.pe_rows * kBuiGfModule;

    rep.modules["vpu"] = p.vpu_rows * p.vpu_cols * kVpuMac +
        p.apm_inputs * kApmInput + kVpuCtrl;

    rep.modules["buffers"] = kSramPer32Kb * p.buffer_kb / 32.0;
    rep.modules["schedulers"] = kSchedulers;

    double partial = 0.0;
    for (const auto &kv : rep.modules)
        partial += kv.second;
    rep.modules["others"] = partial * kOthersFrac;
    return rep;
}

} // namespace pade

/**
 * @file
 * 28 nm technology constants used by every energy/area estimate.
 *
 * Values are Horowitz-style (ISSCC'14) per-op energies scaled from 45 nm
 * to a 28 nm HPC process (~0.6x dynamic energy), with the paper's own
 * normalizations where given (HBM at 4 pJ/bit, 800 MHz clock). Absolute
 * accuracy is not the goal — all experiments report ratios between
 * designs evaluated under the same constants, as the paper does.
 */

#ifndef PADE_ENERGY_TECH_H
#define PADE_ENERGY_TECH_H

namespace pade {
namespace tech {

/** Core clock (paper: all designs normalized to 800 MHz). */
constexpr double kClockGhz = 0.8;
constexpr double kCyclesPerNs = kClockGhz;
constexpr double kNsPerCycle = 1.0 / kClockGhz;

// Arithmetic energies, pJ per operation (28 nm).
constexpr double kInt8MacPj = 0.14;      //!< 8x8 multiply + 32b accum
constexpr double kInt4MacPj = 0.05;
constexpr double kInt8AddPj = 0.02;      //!< 8b add into 16b
constexpr double kInt32AddPj = 0.06;
/** One selected element through the GSAT: 5:1 mux + 8b add slice. */
constexpr double kBitSerialAddPj = 0.025;
/** Per-plane shift-and-accumulate of the weighted partial sum. */
constexpr double kShiftAccPj = 0.04;
constexpr double kFp16MacPj = 0.6;
constexpr double kFp16ExpPj = 2.2;       //!< APM LUT + multiply pipeline
constexpr double kFp32AddPj = 0.5;
constexpr double kCmp32Pj = 0.03;        //!< 32b comparator (decision)
constexpr double kMax32Pj = 0.03;        //!< max-tree node

// Register/scoreboard accesses, pJ.
constexpr double kScoreboardRdPj = 0.12; //!< 45b entry read
constexpr double kScoreboardWrPj = 0.15;
constexpr double kRegRdPerBytePj = 0.03;

// Predictor-specific ops for baseline models.
constexpr double kLogShiftPj = 0.03;     //!< SOFA log-domain shift-add
constexpr double kSortCmpPj = 0.05;      //!< top-k sorter compare-swap

/**
 * Idle power of an accelerator die of this class (clock tree +
 * leakage), in pJ/ns (= mW). Ties latency to energy the way the
 * paper's efficiency waterfall (Fig. 19) requires: mechanisms that
 * only improve utilization still improve energy efficiency.
 */
constexpr double kAsicIdlePjPerNs = 150.0;

/** H100 GPU model constants (SXM): used for paper's GPU comparison. */
constexpr double kGpuPeakTflopsFp16 = 989.0;  //!< dense FP16/BF16
constexpr double kGpuPeakTflopsInt8 = 1979.0; //!< INT8 TOPS
constexpr double kGpuHbmTBps = 3.35;
constexpr double kGpuPowerW = 700.0;
/**
 * Achieved fraction of peak compute for *attention* kernels under the
 * paper's measurement methodology (total inference incl. the decode
 * phase, batch sized per dataset). Calibrated to the paper's own
 * Fig. 19(b): its ~1.6 TOPS-class dense ASIC outperforms the H100 by
 * 1.5x on attention, implying ~1 TOPS effective GPU throughput
 * (decode-phase attention kernels are launch- and memory-bound at
 * these batch sizes). See EXPERIMENTS.md for the full justification.
 */
constexpr double kGpuAttnEfficiency = 0.0002;
/** Achieved fraction of peak DRAM bandwidth for attention kernels. */
constexpr double kGpuBwEfficiency = 0.35;
/** Efficiency of dense GEMMs (QKV projections, FFN) on the GPU. */
constexpr double kGpuGemmEfficiency = 0.55;

} // namespace tech
} // namespace pade

#endif // PADE_ENERGY_TECH_H

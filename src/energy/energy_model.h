/**
 * @file
 * Energy accounting: a breakdown by component class (compute, on-chip
 * buffer, DRAM, other) as the paper's stacked energy bars use, plus a
 * finer per-module map for the Fig. 20 power pie.
 */

#ifndef PADE_ENERGY_ENERGY_MODEL_H
#define PADE_ENERGY_ENERGY_MODEL_H

#include <map>
#include <string>

namespace pade {

/** Energy totals in pJ, split the way the paper's figures split them. */
struct EnergyBreakdown
{
    double compute_pj = 0.0;
    double sram_pj = 0.0;
    double dram_pj = 0.0;
    double other_pj = 0.0;

    /** Fine-grained per-module energies (module name -> pJ). */
    std::map<std::string, double> modules;

    double total() const
    {
        return compute_pj + sram_pj + dram_pj + other_pj;
    }

    /** Add @p pj to a named module and the given coarse bucket. */
    void
    add(const std::string &module, double pj, double EnergyBreakdown::*bucket)
    {
        modules[module] += pj;
        this->*bucket += pj;
    }

    EnergyBreakdown &operator+=(const EnergyBreakdown &o);
};

/** Energy efficiency in GOPS/W given useful ops and energy. */
double gopsPerWatt(double useful_ops, double energy_pj);

/** Average power in mW given energy (pJ) over time (ns). */
double powerMw(double energy_pj, double time_ns);

} // namespace pade

#endif // PADE_ENERGY_ENERGY_MODEL_H

#include "runtime/thread_pool.h"

#include <algorithm>
#include <chrono>
#include <cstddef>
#include <utility>

namespace pade {

int
ThreadPool::hardwareThreads()
{
    return static_cast<int>(
        std::max(1u, std::thread::hardware_concurrency()));
}

ThreadPool::ThreadPool(int threads)
{
    const int n = threads > 0 ? threads : hardwareThreads();
    workers_.reserve(static_cast<std::size_t>(n));
    for (int i = 0; i < n; i++)
        workers_.emplace_back([this] { workerLoop(); });
}

ThreadPool::~ThreadPool()
{
    {
        std::lock_guard<std::mutex> lock(mu_);
        stop_ = true;
    }
    cv_task_.notify_all();
    for (std::thread &w : workers_)
        w.join();
}

void
ThreadPool::submit(std::function<void()> task)
{
    {
        std::lock_guard<std::mutex> lock(mu_);
        queue_.push_back(std::move(task));
    }
    cv_task_.notify_one();
}

void
ThreadPool::waitIdle()
{
    std::unique_lock<std::mutex> lock(mu_);
    cv_idle_.wait(lock,
                  [this] { return queue_.empty() && active_ == 0; });
}

bool
ThreadPool::tryRunOne()
{
    std::function<void()> task;
    {
        std::lock_guard<std::mutex> lock(mu_);
        if (queue_.empty())
            return false;
        task = std::move(queue_.front());
        queue_.pop_front();
        active_++;
    }
    try {
        task();
    } catch (...) {
        // Same contract as workerLoop: failures surface through the
        // submitter's own channel.
    }
    {
        std::lock_guard<std::mutex> lock(mu_);
        active_--;
        if (queue_.empty() && active_ == 0)
            cv_idle_.notify_all();
    }
    return true;
}

void
ThreadPool::workerLoop()
{
    for (;;) {
        std::function<void()> task;
        {
            std::unique_lock<std::mutex> lock(mu_);
            cv_task_.wait(lock,
                          [this] { return stop_ || !queue_.empty(); });
            if (queue_.empty())
                return; // stop_ set and nothing left to drain
            task = std::move(queue_.front());
            queue_.pop_front();
            active_++;
        }
        try {
            task();
        } catch (...) {
            // Task-level failures are reported through the caller's
            // own channel (e.g. parallelFor / BatchDriver error
            // slots); a worker thread must survive regardless.
        }
        {
            std::lock_guard<std::mutex> lock(mu_);
            active_--;
            if (queue_.empty() && active_ == 0)
                cv_idle_.notify_all();
        }
    }
}

void
parallelFor(ThreadPool &pool, int n, const std::function<void(int)> &fn)
{
    if (n <= 0)
        return;

    struct State
    {
        std::mutex mu;
        std::condition_variable done;
        int remaining;
        std::exception_ptr error;
    };
    State st;
    st.remaining = n;

    for (int i = 0; i < n; i++) {
        pool.submit([&st, &fn, i] {
            std::exception_ptr err;
            try {
                fn(i);
            } catch (...) {
                err = std::current_exception();
            }
            std::lock_guard<std::mutex> lock(st.mu);
            if (err && !st.error)
                st.error = err;
            if (--st.remaining == 0)
                st.done.notify_all();
        });
    }

    // Help drain the queue instead of parking outright: if every
    // worker is itself blocked in a nested parallelFor, the waiters
    // collectively keep executing queued tasks, so nested fan-outs
    // on one pool make progress instead of deadlocking. The short
    // timed wait re-checks the queue for work enqueued after we
    // found it empty.
    for (;;) {
        {
            std::unique_lock<std::mutex> lock(st.mu);
            if (st.remaining == 0)
                break;
        }
        if (pool.tryRunOne())
            continue;
        std::unique_lock<std::mutex> lock(st.mu);
        st.done.wait_for(lock, std::chrono::milliseconds(2),
                         [&st] { return st.remaining == 0; });
    }
    if (st.error)
        std::rethrow_exception(st.error);
}

} // namespace pade

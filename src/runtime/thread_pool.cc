#include "runtime/thread_pool.h"

#include <algorithm>
#include <chrono>
#include <cstddef>
#include <utility>

#include "common/check.h"
#include "obs/telemetry.h"

namespace pade {

namespace {

// Pool-wide telemetry (docs/OBSERVABILITY.md). Registry references
// are process-lifetime stable, so each is resolved once and cached;
// steady-state recording is one relaxed atomic per event.
obs::Counter &
poolTasks()
{
    static obs::Counter &c =
        obs::Registry::instance().counter("pool.tasks");
    return c;
}

obs::Counter &
poolSteals()
{
    static obs::Counter &c =
        obs::Registry::instance().counter("pool.steals");
    return c;
}

obs::Counter &
poolIdleUs()
{
    static obs::Counter &c =
        obs::Registry::instance().counter("pool.idle_us");
    return c;
}

obs::Gauge &
poolQueueDepth()
{
    static obs::Gauge &g =
        obs::Registry::instance().gauge("pool.queue_depth");
    return g;
}

// Depth, not flag: a help-draining parallelFor waiter can nest (its
// stolen task runs another parallelFor that steals again), and the
// outer frame must still read as "in a task" when the inner one pops.
thread_local int g_pool_task_depth = 0;

/** Scoped busy_/task-depth bracket around one task execution. */
class TaskScope
{
  public:
    explicit TaskScope(std::atomic<int> &busy) : busy_(busy)
    {
        busy_.fetch_add(1, std::memory_order_relaxed);
        g_pool_task_depth++;
    }
    ~TaskScope()
    {
        g_pool_task_depth--;
        busy_.fetch_sub(1, std::memory_order_relaxed);
    }
    TaskScope(const TaskScope &) = delete;
    TaskScope &operator=(const TaskScope &) = delete;

  private:
    std::atomic<int> &busy_;
};

} // namespace

bool
ThreadPool::inTask()
{
    return g_pool_task_depth > 0;
}

int
ThreadPool::hardwareThreads()
{
    return static_cast<int>(
        std::max(1u, std::thread::hardware_concurrency()));
}

ThreadPool::ThreadPool(int threads)
{
    const int n = threads > 0 ? threads : hardwareThreads();
    workers_.reserve(static_cast<std::size_t>(n));
    for (int i = 0; i < n; i++)
        workers_.emplace_back([this] { workerLoop(); });
}

ThreadPool::~ThreadPool()
{
    {
        MutexLock lock(mu_);
        stop_ = true;
    }
    cv_task_.notifyAll();
    // Workers drain every task still queued before exiting (see
    // workerLoop), so destroying a pool with queued work completes
    // that work rather than dropping it — the contract
    // tests/test_runtime.cc pins down.
    for (std::thread &w : workers_)
        w.join();
}

void
ThreadPool::submit(std::function<void()> task)
{
    {
        MutexLock lock(mu_);
        queue_.push_back(std::move(task));
        poolQueueDepth().set(static_cast<double>(queue_.size()));
    }
    cv_task_.notifyOne();
}

void
ThreadPool::waitIdle()
{
    MutexLock lock(mu_);
    while (!isIdle())
        cv_idle_.wait(lock);
}

bool
ThreadPool::tryRunOne()
{
    std::function<void()> task;
    {
        MutexLock lock(mu_);
        if (queue_.empty())
            return false;
        task = std::move(queue_.front());
        queue_.pop_front();
        active_++;
    }
    // A successful tryRunOne is a "steal": a caller thread (typically
    // a parallelFor waiter) executing work a pool worker would
    // otherwise run — the numerator of help-drain effectiveness.
    poolSteals().add(1);
    try {
        const TaskScope scope(busy_);
        task();
    } catch (...) {
        // Same contract as workerLoop: failures surface through the
        // submitter's own channel.
    }
    {
        MutexLock lock(mu_);
        active_--;
        PADE_DCHECK_GE(active_, 0);
        if (isIdle())
            cv_idle_.notifyAll();
    }
    return true;
}

void
ThreadPool::workerLoop()
{
    for (;;) {
        std::function<void()> task;
        {
            MutexLock lock(mu_);
            if (!hasWorkOrStopped())
            {
                // Only stamp the clock when the worker actually
                // parks: the streaming case (work already queued)
                // must stay free of timer syscalls.
                const auto idle_from =
                    std::chrono::steady_clock::now();
                do
                    cv_task_.wait(lock);
                while (!hasWorkOrStopped());
                poolIdleUs().add(static_cast<uint64_t>(
                    std::chrono::duration_cast<
                        std::chrono::microseconds>(
                        std::chrono::steady_clock::now() - idle_from)
                        .count()));
            }
            if (queue_.empty())
                return; // stop_ set and nothing left to drain
            task = std::move(queue_.front());
            queue_.pop_front();
            active_++;
        }
        poolTasks().add(1);
        try {
            const TaskScope scope(busy_);
            task();
        } catch (...) {
            // Task-level failures are reported through the caller's
            // own channel (e.g. parallelFor / BatchDriver error
            // slots); a worker thread must survive regardless.
        }
        {
            MutexLock lock(mu_);
            active_--;
            PADE_DCHECK_GE(active_, 0);
            if (isIdle())
                cv_idle_.notifyAll();
        }
    }
}

void
parallelFor(ThreadPool &pool, int n, const std::function<void(int)> &fn)
{
    if (n <= 0)
        return;

    struct State
    {
        Mutex mu;
        CondVar done;
        int remaining PADE_GUARDED_BY(mu);
        std::exception_ptr error PADE_GUARDED_BY(mu);
    };
    State st;
    {
        MutexLock lock(st.mu);
        st.remaining = n;
    }

    for (int i = 0; i < n; i++) {
        pool.submit([&st, &fn, i] {
            std::exception_ptr err;
            try {
                fn(i);
            } catch (...) {
                err = std::current_exception();
            }
            MutexLock lock(st.mu);
            if (err && !st.error)
                st.error = err;
            if (--st.remaining == 0)
                st.done.notifyAll();
        });
    }

    // Help drain the queue instead of parking outright: if every
    // worker is itself blocked in a nested parallelFor, the waiters
    // collectively keep executing queued tasks, so nested fan-outs
    // on one pool make progress instead of deadlocking. The short
    // timed wait re-checks the queue for work enqueued after we
    // found it empty.
    for (;;) {
        {
            MutexLock lock(st.mu);
            if (st.remaining == 0)
                break;
        }
        if (pool.tryRunOne())
            continue;
        MutexLock lock(st.mu);
        if (st.remaining != 0)
            st.done.waitFor(lock, std::chrono::milliseconds(2));
    }

    std::exception_ptr error;
    {
        // Uncontended by now (remaining hit 0, every task released
        // st.mu), but the analysis — and TSan — want the read of
        // error under the same lock that guards the writes.
        MutexLock lock(st.mu);
        error = st.error;
    }
    if (error)
        std::rethrow_exception(error);
}

} // namespace pade

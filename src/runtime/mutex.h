/**
 * @file
 * Annotated synchronization primitives for clang thread-safety
 * analysis.
 *
 * The analysis (-Wthread-safety, see common/thread_annotations.h)
 * only tracks lock state through functions that carry acquire/release
 * attributes. libstdc++'s std::mutex / std::lock_guard /
 * std::condition_variable have none, so locking through them is
 * invisible to the analysis and every access to a PADE_GUARDED_BY
 * member would be (correctly) flagged. These thin wrappers delegate
 * straight to the std primitives — zero behavioral difference, no
 * extra state — and exist purely to make the locking protocol
 * checkable at compile time:
 *
 *  - Mutex: std::mutex with ACQUIRE/RELEASE-annotated lock()/unlock();
 *  - MutexLock: scoped lock (std::unique_lock underneath) whose
 *    constructor ACQUIREs and destructor RELEASEs;
 *  - CondVar: condition variable waiting on a MutexLock. Waits are
 *    annotated as lock-neutral (held on entry, held on return), which
 *    matches how the analysis reasons about guarded state across a
 *    wait: re-check the predicate after every wakeup.
 *
 * All concurrency code under src/ locks through these types; adding a
 * bare std::mutex to an annotated class defeats the analysis.
 */

#ifndef PADE_RUNTIME_MUTEX_H
#define PADE_RUNTIME_MUTEX_H

#include <chrono>
#include <condition_variable>
#include <mutex>

#include "common/thread_annotations.h"

namespace pade {

/** std::mutex with thread-safety-analysis attributes. */
class PADE_CAPABILITY("mutex") Mutex
{
  public:
    Mutex() = default;
    Mutex(const Mutex &) = delete;
    Mutex &operator=(const Mutex &) = delete;

    void lock() PADE_ACQUIRE() { mu_.lock(); }
    void unlock() PADE_RELEASE() { mu_.unlock(); }
    bool tryLock() PADE_TRY_ACQUIRE(true) { return mu_.try_lock(); }

    /** Underlying handle for CondVar / MutexLock; never lock it raw. */
    std::mutex &native() { return mu_; }

  private:
    std::mutex mu_;
};

/**
 * Scoped lock over a Mutex: acquires on construction, releases on
 * destruction (RAII, exception-safe). The annotated replacement for
 * std::lock_guard / std::unique_lock in this codebase.
 */
class PADE_SCOPED_CAPABILITY MutexLock
{
  public:
    explicit MutexLock(Mutex &mu) PADE_ACQUIRE(mu) : lock_(mu.native())
    {
    }
    ~MutexLock() PADE_RELEASE() {}

    MutexLock(const MutexLock &) = delete;
    MutexLock &operator=(const MutexLock &) = delete;

    /** Underlying handle handed to CondVar waits. */
    std::unique_lock<std::mutex> &native() { return lock_; }

  private:
    std::unique_lock<std::mutex> lock_;
};

/**
 * Condition variable waiting on a MutexLock.
 *
 * Deliberately predicate-free: the analysis cannot see that a wait
 * predicate runs under the lock, so callers write the standard
 *     while (!condition) cv.wait(lock);
 * loop instead, where `condition` reads guarded state in a scope the
 * analysis can verify. (A predicate lambda would be analyzed as an
 * unlocked function and flagged.)
 */
class CondVar
{
  public:
    CondVar() = default;
    CondVar(const CondVar &) = delete;
    CondVar &operator=(const CondVar &) = delete;

    /** Atomically release, sleep, re-acquire. Spurious wakeups apply. */
    void wait(MutexLock &lock) { cv_.wait(lock.native()); }

    /** wait() with a timeout; re-check the predicate either way. */
    template <typename Rep, typename Period>
    void
    waitFor(MutexLock &lock,
            const std::chrono::duration<Rep, Period> &timeout)
    {
        cv_.wait_for(lock.native(), timeout);
    }

    void notifyOne() { cv_.notify_one(); }
    void notifyAll() { cv_.notify_all(); }

  private:
    std::condition_variable cv_;
};

} // namespace pade

#endif // PADE_RUNTIME_MUTEX_H

#include "runtime/batch_driver.h"

#include <chrono>
#include <exception>
#include <utility>

#include "common/rng.h"
#include "runtime/thread_pool.h"

namespace pade {

BatchDriver::BatchDriver(BatchOptions opt) : opt_(opt)
{
    sim_ = [](const ArchConfig &arch, const SimRequest &req) {
        return simulatePade(arch, req);
    };
}

BatchDriver::BatchDriver(BatchOptions opt, Simulator sim)
    : opt_(opt), sim_(std::move(sim))
{
}

uint64_t
BatchDriver::seedFor(std::size_t index) const
{
    // Derived from (seed_base, index) only — never from scheduling —
    // so a batch reproduces bit-for-bit under any thread count.
    uint64_t state = opt_.seed_base +
        static_cast<uint64_t>(index) * 0x9e3779b97f4a7c15ULL;
    return splitMix64(state);
}

BatchResult
BatchDriver::run(const ArchConfig &arch,
                 const std::vector<SimRequest> &requests) const
{
    std::vector<BatchItem> items;
    items.reserve(requests.size());
    for (const SimRequest &req : requests)
        items.push_back({arch, req});
    return run(items);
}

BatchResult
BatchDriver::run(const std::vector<BatchItem> &items) const
{
    const auto t0 = std::chrono::steady_clock::now();

    BatchResult out;
    out.results.resize(items.size());
    if (!items.empty()) {
        ThreadPool pool(opt_.threads);
        parallelFor(pool, static_cast<int>(items.size()), [&](int i) {
            BatchItem item = items[static_cast<std::size_t>(i)];
            if (opt_.seed_base != 0)
                item.req.seed = seedFor(static_cast<std::size_t>(i));
            RequestResult &slot = out.results[static_cast<std::size_t>(i)];
            const auto req_t0 = std::chrono::steady_clock::now();
            try {
                slot.outcome = sim_(item.arch, item.req);
                slot.ok = true;
            } catch (const std::exception &e) {
                slot.error = e.what();
            } catch (...) {
                slot.error = "unknown exception";
            }
            slot.wall_ms = std::chrono::duration<double, std::milli>(
                std::chrono::steady_clock::now() - req_t0).count();
        });
    }

    // Aggregation runs after the barrier, in index order, so the
    // totals do not depend on worker interleaving.
    std::vector<double> service_ms;
    service_ms.reserve(out.results.size());
    for (const RequestResult &r : out.results) {
        if (!r.ok) {
            out.failed++;
            continue;
        }
        out.completed++;
        out.aggregate += r.outcome.total;
        service_ms.push_back(r.wall_ms);
        if (r.outcome.retained_mass < out.retained_mass_min)
            out.retained_mass_min = r.outcome.retained_mass;
    }
    out.latency_ms = Percentiles::of(service_ms);

    out.wall_ms = std::chrono::duration<double, std::milli>(
        std::chrono::steady_clock::now() - t0).count();
    return out;
}

} // namespace pade

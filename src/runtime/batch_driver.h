/**
 * @file
 * Batched whole-model simulation runtime: fans a vector of
 * SimRequests (optionally each with its own ArchConfig, for
 * design-space sweeps) across a thread pool and aggregates the
 * outcomes into fleet-level totals.
 *
 * Determinism contract: results are index-aligned with the input
 * batch, per-request seeds are derived only from (seed_base, index),
 * and aggregation always walks the batch in index order after every
 * worker has finished — so the aggregate is bit-for-bit identical for
 * any thread count, including 1.
 *
 * Failure contract: an exception thrown while simulating one request
 * is caught and recorded in that request's result slot; the remaining
 * requests still run and the pool never deadlocks.
 */

#ifndef PADE_RUNTIME_BATCH_DRIVER_H
#define PADE_RUNTIME_BATCH_DRIVER_H

#include <cstddef>
#include <cstdint>
#include <functional>
#include <string>
#include <vector>

#include "arch/arch_config.h"
#include "arch/driver.h"
#include "arch/run_metrics.h"

namespace pade {

/** One unit of batched work: a request plus the design to run it on. */
struct BatchItem
{
    ArchConfig arch;
    SimRequest req;
};

/** Knobs of the batch runtime. */
struct BatchOptions
{
    /** Worker threads; 0 picks ThreadPool::hardwareThreads(). */
    int threads = 0;
    /**
     * When nonzero, request i runs with seed splitMix64-derived from
     * (seed_base, i), overriding SimRequest::seed. Scheduling order
     * never enters the derivation, so any thread count reproduces the
     * same batch bit-for-bit.
     */
    uint64_t seed_base = 0;
};

/** Result slot of one request (index-aligned with the batch). */
struct RequestResult
{
    SimOutcome outcome;
    bool ok = false;
    std::string error;  //!< exception message when !ok
    /** Host wall-clock this request spent simulating (its own work
     *  only, not queueing — measured inside the worker task). */
    double wall_ms = 0.0;
};

/** Aggregate of one batch run. */
struct BatchResult
{
    std::vector<RequestResult> results;
    /** Sum of every successful request's whole-model totals. */
    RunMetrics aggregate;
    int completed = 0;
    int failed = 0;
    /** Minimum accuracy proxy across successful requests. */
    double retained_mass_min = 1.0;
    double wall_ms = 0.0;   //!< host wall-clock of the batch
    /**
     * Per-request service-time percentiles (successful requests'
     * RequestResult::wall_ms). The sample values are host timings and
     * thus noisy; the set of sampled requests is deterministic.
     */
    Percentiles latency_ms;
};

/**
 * Fans SimRequests across a worker pool and aggregates outcomes.
 * The simulator is injectable so tests can exercise the failure path
 * without constructing a pathological workload.
 */
class BatchDriver
{
  public:
    using Simulator =
        std::function<SimOutcome(const ArchConfig &, const SimRequest &)>;

    explicit BatchDriver(BatchOptions opt = {});
    BatchDriver(BatchOptions opt, Simulator sim);

    /** Run every request on one shared design. */
    BatchResult run(const ArchConfig &arch,
                    const std::vector<SimRequest> &requests) const;

    /** Run a heterogeneous batch (per-item designs; DSE sweeps). */
    BatchResult run(const std::vector<BatchItem> &items) const;

    /** Seed request i would run with (exposed for tests/logging). */
    uint64_t seedFor(std::size_t index) const;

  private:
    BatchOptions opt_;
    Simulator sim_;
};

} // namespace pade

#endif // PADE_RUNTIME_BATCH_DRIVER_H

/**
 * @file
 * Fixed-size worker pool with a shared task queue, used to fan
 * independent simulations (batch requests, calibration searches,
 * design-space sweeps) across cores. Tasks are opaque closures; all
 * ordering guarantees live with the caller, which keeps the pool
 * trivially exception-safe: a task that throws is caught at the
 * worker boundary, so one failing request can never wedge the pool.
 *
 * Locking goes through the annotated pade::Mutex/CondVar wrappers
 * (runtime/mutex.h) and every shared member carries PADE_GUARDED_BY,
 * so clang's -Wthread-safety proves the locking discipline at compile
 * time — the clang CI legs build with -Werror=thread-safety.
 */

#ifndef PADE_RUNTIME_THREAD_POOL_H
#define PADE_RUNTIME_THREAD_POOL_H

#include <atomic>
#include <cstddef>
#include <deque>
#include <exception>
#include <functional>
#include <thread>
#include <vector>

#include "common/thread_annotations.h"
#include "runtime/mutex.h"

namespace pade {

/** Fixed pool of worker threads draining a FIFO task queue. */
class ThreadPool
{
  public:
    /** @param threads worker count; 0 picks hardwareThreads(). */
    explicit ThreadPool(int threads = 0);
    ~ThreadPool();

    ThreadPool(const ThreadPool &) = delete;
    ThreadPool &operator=(const ThreadPool &) = delete;

    int threadCount() const { return static_cast<int>(workers_.size()); }

    /**
     * Enqueue a task. Exceptions escaping the task are swallowed at
     * the worker boundary; use parallelFor() when propagation is
     * needed.
     */
    void submit(std::function<void()> task) PADE_EXCLUDES(mu_);

    /** Block until the queue is empty and every worker is idle. */
    void waitIdle() PADE_EXCLUDES(mu_);

    /**
     * Pop and run one queued task on the calling thread; false when
     * the queue is empty. Lets a thread that is blocked on a subset
     * of tasks (parallelFor) keep the pool productive, which makes
     * nested parallelFor calls on one pool deadlock-free.
     */
    bool tryRunOne() PADE_EXCLUDES(mu_);

    /**
     * Threads currently executing a task of this pool — workers plus
     * help-draining callers (tryRunOne frames). A relaxed occupancy
     * probe for capacity accounting (e.g. the pipeline bubble ratio's
     * honest round width, docs/OBSERVABILITY.md), NOT a
     * synchronization primitive: the value may be stale by the time
     * the caller reads it.
     */
    int
    busyWorkers() const
    {
        return busy_.load(std::memory_order_relaxed);
    }

    /**
     * True while the calling thread is inside a pool task (a worker
     * executing a task, or any thread inside a tryRunOne help-drain
     * frame). Lets occupancy consumers subtract their own slot from
     * busyWorkers().
     */
    static bool inTask();

    /** Detected core count (at least 1). */
    static int hardwareThreads();

  private:
    void workerLoop() PADE_EXCLUDES(mu_);

    /** Wakeup condition of workerLoop's wait (task or shutdown). */
    bool
    hasWorkOrStopped() const PADE_REQUIRES(mu_)
    {
        return stop_ || !queue_.empty();
    }
    /** waitIdle()'s condition: nothing queued, nothing running. */
    bool
    isIdle() const PADE_REQUIRES(mu_)
    {
        return queue_.empty() && active_ == 0;
    }

    Mutex mu_;
    CondVar cv_task_;
    CondVar cv_idle_;
    std::deque<std::function<void()>> queue_ PADE_GUARDED_BY(mu_);
    /** Worker handles; written only by the ctor, joined by the dtor. */
    std::vector<std::thread> workers_;
    int active_ PADE_GUARDED_BY(mu_) = 0;
    /** Lock-free mirror of active_ for the busyWorkers() probe. */
    std::atomic<int> busy_{0};
    bool stop_ PADE_GUARDED_BY(mu_) = false;
};

/**
 * Run fn(0..n-1) on the pool and block until all complete. The first
 * exception thrown by any index is rethrown in the caller once every
 * task has finished (no task is cancelled, no worker is lost).
 *
 * While waiting, the caller helps drain the pool's queue
 * (ThreadPool::tryRunOne), so parallelFor may be called from inside
 * a pool task — nested fan-outs on one pool cannot deadlock.
 */
void parallelFor(ThreadPool &pool, int n,
                 const std::function<void(int)> &fn);

/**
 * parallelFor with a deterministic reduction: fn(i) runs on the pool
 * for i = 0..n-1 (any interleaving), then reduce(acc, result_i) folds
 * the results on the calling thread in ascending index order — so the
 * reduced value is bit-identical for every thread count even when the
 * reduction is not associative/commutative in floating point. This is
 * the aggregation discipline the model-granularity serving layer uses
 * to fan KV heads across the pool.
 */
template <typename T, typename Fn, typename Reduce>
T
parallelReduceOrdered(ThreadPool &pool, int n, T init, Fn &&fn,
                      Reduce &&reduce)
{
    std::vector<decltype(fn(0))> parts(static_cast<std::size_t>(n));
    parallelFor(pool, n,
                [&](int i) { parts[static_cast<std::size_t>(i)] = fn(i); });
    for (int i = 0; i < n; i++)
        reduce(init, parts[static_cast<std::size_t>(i)]);
    return init;
}

} // namespace pade

#endif // PADE_RUNTIME_THREAD_POOL_H

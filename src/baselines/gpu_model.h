/**
 * @file
 * Roofline model of the Nvidia H100 GPU running attention, matching
 * the paper's GPU comparison methodology (§VI-A): TensorRT-LLM with
 * FlashAttention3, dedicated GPU, dynamic power. Variants model the
 * paper's Fig. 18(b) software ports: BUI-GF pruning in software (no
 * bit-level early termination possible on GPU) with and without FA3
 * tiling, and the software sparse-attention methods of Fig. 15.
 */

#ifndef PADE_BASELINES_GPU_MODEL_H
#define PADE_BASELINES_GPU_MODEL_H

#include "arch/run_metrics.h"
#include "baselines/accelerators.h"

namespace pade {

/** GPU attention execution options. */
struct GpuOptions
{
    bool fa3 = true;       //!< FlashAttention-style tiling
    bool int8 = true;      //!< INT8 tensor-core path
    bool causal = true;    //!< causal prefill (halves the pair count)
    /** Fraction of PV work kept by software sparsity (1 = dense). */
    double keep_rate = 1.0;
    /**
     * Software predictor cost in full-QK-pass equivalents: BUI-GF on
     * GPU needs one full pass (no early termination), StreamingLLM ~0,
     * DoubleSparsity ~1/8 (channel subset), MInference ~1/16 (coarse
     * pattern search).
     */
    double predictor_pass_frac = 0.0;
    /** Gather/scatter inefficiency multiplier for sparse execution. */
    double sparse_overhead = 1.6;
    /**
     * Independent replicas batched on the chip (heads x layers x
     * sequences): flops and bytes scale, the roofline is applied to
     * the aggregate (the GPU overlaps heads across SMs).
     */
    double replicas = 1.0;
};

/** Simulate one attention block (p queries x s keys x h dims). */
RunMetrics gpuAttention(const AttentionDims &d, const GpuOptions &opt);

/** Convenience: dense FA3 INT8 H100 run (the paper's GPU baseline). */
RunMetrics gpuDense(const AttentionDims &d);

/** GPU + software BUI-GF (paper Fig. 18(b), with/without FA3). */
RunMetrics gpuBuiGf(const AttentionDims &d, double keep_rate, bool fa3);

/**
 * Whole-model GPU attention: prefill runs seq_len queries per head
 * (causal), decode runs @p decode_steps single-query steps; heads and
 * layers batch as replicas.
 */
RunMetrics gpuModelAttention(const ModelConfig &model,
                             const DatasetConfig &dataset,
                             GpuOptions opt, bool decode = false,
                             int decode_steps = 1);

} // namespace pade

#endif // PADE_BASELINES_GPU_MODEL_H

/**
 * @file
 * Functional sparsity predictors of the baseline designs.
 *
 * Every comparison in the paper is at matched accuracy ("0% / 1%
 * loss"), so each baseline's keep-set must come from *its own
 * mechanism*, evaluated on the same workload, with its budget knob
 * calibrated to the target retained softmax mass:
 *
 *  - Sanger: 4-bit MSB Q.K estimate, row threshold (margin knob)
 *  - DOTA: low-rank projected estimate, row threshold
 *  - Energon: progressive mix-precision filtering (2-bit funnel then
 *    4-bit margin)
 *  - SpAtten / DTATrans: top-k on the previous layer's accumulated
 *    scores — modelled as the true importance plus noise, with the
 *    noise removed when "finetuned"
 *  - SOFA: log-domain (leading-one) estimate + top-k
 *  - StreamingLLM: static sink + sliding window
 *  - MInference-style: sink + window + coarse block-level top-k
 *  - DoubleSparsity-style: channel-subset estimate + top-k
 *
 * Calibration helpers binary-search each knob for a retained-mass
 * target against the FP32 logits oracle.
 */

#ifndef PADE_BASELINES_PREDICTORS_H
#define PADE_BASELINES_PREDICTORS_H

#include <cstdint>
#include <functional>

#include "tensor/matrix.h"
#include "workload/generator.h"

namespace pade {

/** A predictor's keep decision plus its quality metrics. */
struct MaskOutcome
{
    Matrix<uint8_t> keep;
    double keep_rate = 1.0;     //!< kept fraction of (q, k) pairs
    double retained_mass = 1.0; //!< softmax mass under FP32 oracle
};

/** Sanger-style: low-bit estimate, keep if within margin of row max. */
MaskOutcome lowBitMask(const AttentionHead &head, int est_bits,
                       double margin);

/** DOTA-style: random-projection low-rank estimate with margin. */
MaskOutcome lowRankMask(const AttentionHead &head, int rank,
                        double margin, uint64_t seed = 99);

/**
 * Energon-style progressive filtering: a 2-bit pass keeps the top
 * @p funnel fraction, then a 4-bit pass applies @p margin.
 */
MaskOutcome progressiveMask(const AttentionHead &head, double funnel,
                            double margin);

/**
 * SpAtten/DTATrans-style: top-k per row on importance = true column
 * mass + Gaussian noise of @p noise_sigma (0 = finetuned quality).
 */
MaskOutcome noisyTopkMask(const AttentionHead &head, int k,
                          double noise_sigma, uint64_t seed = 7);

/** SOFA-style: leading-one (power-of-two) log-domain estimate, top-k. */
MaskOutcome logDomainTopkMask(const AttentionHead &head, int k);

/** StreamingLLM: static sink tokens + recency window. */
MaskOutcome streamingLlmMask(const AttentionHead &head, int sink,
                             int window);

/**
 * MInference-style: sink + window plus block-granular dynamic top
 * blocks (block size 64) from a coarse estimate.
 */
MaskOutcome minferenceMask(const AttentionHead &head, int sink,
                           int window, double block_frac);

/**
 * DoubleSparsity-style: estimate scores from @p channels of the head
 * dimension, then top-k per row.
 */
MaskOutcome doubleSparsityMask(const AttentionHead &head, int channels,
                               int k, uint64_t seed = 13);

/** Fill quality metrics of an externally produced mask. */
MaskOutcome finalizeMask(const AttentionHead &head,
                         Matrix<uint8_t> keep);

/**
 * Binary-search a monotone budget knob in [lo, hi] for the smallest
 * value whose mask reaches @p target_mass. Returns the knob value.
 */
double calibrateKnob(const std::function<MaskOutcome(double)> &fn,
                     double target_mass, double lo, double hi,
                     int iters = 10);

} // namespace pade

#endif // PADE_BASELINES_PREDICTORS_H

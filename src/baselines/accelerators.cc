#include "baselines/accelerators.h"

#include <cmath>
#include <stdexcept>

#include "energy/tech.h"

namespace pade {

namespace {

/**
 * Union factor: the executor fetches the union of the rows' retained
 * keys; vital tokens overlap heavily across the block's rows, so the
 * union is ~1.5x a single row's keep rate (bounded by 1).
 */
double
unionKeep(double keep_rate)
{
    return std::min(1.0, 1.5 * keep_rate);
}

/** Dense executor phase over a fraction of the keys. */
Phase
executorPhase(const AttentionDims &d, double keep, double key_frac)
{
    Phase ex;
    // QK^T on retained pairs plus P*V on retained pairs.
    ex.mac_ops = 2.0 * keep * d.pairs() * d.h;
    ex.mac_bits = d.exec_bits;
    // Softmax exponentials on retained scores.
    ex.special_pj = keep * d.pairs() * tech::kFp16ExpPj;
    ex.special_ops = keep * d.pairs() / 16.0;
    // K and V rows of the key-union at executor precision; Q + output.
    const double kv_bytes = 2.0 * key_frac * d.s * d.h *
        (d.exec_bits / 8.0);
    ex.dram_bytes = kv_bytes + 2.0 * d.p * d.h;
    ex.sram_bytes = 2.0 * ex.dram_bytes;
    return ex;
}

} // namespace

BaselineOutcome
denseAccelRun(const AttentionDims &d, const SubstrateParams &sub)
{
    SubstrateParams s = sub;
    if (s.compute_efficiency == 1.0)
        s.compute_efficiency = 0.75;
    BaselineOutcome out;
    out.keep_rate = 1.0;
    const Phase ex = executorPhase(d, 1.0, 1.0);
    out.metrics = combinePhases({{"executor", ex}}, s,
                                d.usefulOps());
    out.executor_pj = out.metrics.energy.total();
    return out;
}

BaselineOutcome
sangerRun(const AttentionDims &d, double keep_rate,
          const SubstrateParams &sub, int pred_bits)
{
    SubstrateParams s = sub;
    if (s.compute_efficiency == 1.0)
        s.compute_efficiency = 0.50; // pack-and-split imbalance
    BaselineOutcome out;
    out.keep_rate = keep_rate;

    Phase pred;
    pred.mac_ops = d.pairs() * d.h; // full low-bit QK^T
    pred.mac_bits = pred_bits;
    // Sanger's reconfigurable array time-multiplexes predictor and
    // executor; the 4-bit pass runs at the full-width rate.
    pred.width_packing = false;
    // Threshold compare per score + mask pack.
    pred.special_pj = d.pairs() * tech::kCmp32Pj;
    pred.special_ops = d.pairs() / 16.0;
    // The predictor streams the full K tensor at pred_bits plus Q.
    pred.dram_bytes = d.s * d.h * (pred_bits / 8.0) +
        d.p * d.h * (pred_bits / 8.0);
    pred.sram_bytes = 2.0 * pred.dram_bytes;

    const Phase ex = executorPhase(d, keep_rate,
                                   unionKeep(keep_rate));
    out.metrics = combinePhases({{"predictor", pred},
                                 {"executor", ex}},
                                s, d.usefulOps());
    out.predictor_pj = phaseEnergyPj(pred, s);
    out.executor_pj = phaseEnergyPj(ex, s);
    return out;
}

BaselineOutcome
dotaRun(const AttentionDims &d, double keep_rate, int rank,
        const SubstrateParams &sub)
{
    SubstrateParams s = sub;
    if (s.compute_efficiency == 1.0)
        s.compute_efficiency = 0.55;
    BaselineOutcome out;
    out.keep_rate = keep_rate;

    Phase pred;
    // Estimate scores in the low-rank space (4-bit multiplies in
    // DOTA's detector). The K-side projection (s*h*r) is computed
    // once per KV stream and amortized over its query blocks, so only
    // the Q-side projection and the low-rank QK land per block.
    pred.mac_ops = d.p * static_cast<double>(d.h) * rank +
        d.pairs() * rank;
    pred.mac_bits = 4;
    pred.special_pj = d.pairs() * tech::kCmp32Pj;
    pred.special_ops = d.pairs() / 16.0;
    // Projected K plus full K does not need refetch: detector reads
    // K once at 4 bits to project.
    pred.dram_bytes = d.s * d.h * 0.5 + d.s * rank;
    pred.sram_bytes = 2.0 * pred.dram_bytes;

    const Phase ex = executorPhase(d, keep_rate,
                                   unionKeep(keep_rate));
    out.metrics = combinePhases({{"predictor", pred},
                                 {"executor", ex}},
                                s, d.usefulOps());
    out.predictor_pj = phaseEnergyPj(pred, s);
    out.executor_pj = phaseEnergyPj(ex, s);
    return out;
}

BaselineOutcome
energonRun(const AttentionDims &d, double funnel, double keep_rate,
           const SubstrateParams &sub)
{
    SubstrateParams s = sub;
    if (s.compute_efficiency == 1.0)
        s.compute_efficiency = 0.50; // multi-round pipeline bubbles
    BaselineOutcome out;
    out.keep_rate = keep_rate;

    Phase round1;
    round1.mac_ops = d.pairs() * d.h;
    round1.mac_bits = 2;
    round1.dram_bytes = d.s * d.h * 0.25;
    round1.sram_bytes = 2.0 * round1.dram_bytes;
    round1.special_pj = d.pairs() * tech::kCmp32Pj;
    round1.special_ops = d.pairs() / 16.0;

    Phase round2;
    round2.mac_ops = funnel * d.pairs() * d.h;
    round2.mac_bits = 4;
    round2.dram_bytes = funnel * d.s * d.h * 0.5;
    round2.sram_bytes = 2.0 * round2.dram_bytes;
    round2.special_pj = funnel * d.pairs() * tech::kCmp32Pj;

    const Phase ex = executorPhase(d, keep_rate,
                                   unionKeep(keep_rate));
    out.metrics = combinePhases({{"predictor", round1},
                                 {"predictor2", round2},
                                 {"executor", ex}},
                                s, d.usefulOps());
    out.predictor_pj = phaseEnergyPj(round1, s) +
        phaseEnergyPj(round2, s);
    out.executor_pj = phaseEnergyPj(ex, s);
    // Merge the two predictor rounds for reporting.
    auto &mods = out.metrics.energy.modules;
    mods["predictor"] += mods["predictor2"];
    mods.erase("predictor2");
    return out;
}

BaselineOutcome
spattenRun(const AttentionDims &d, double keep_rate,
           const SubstrateParams &sub)
{
    SubstrateParams s = sub;
    if (s.compute_efficiency == 1.0)
        s.compute_efficiency = 0.60;
    BaselineOutcome out;
    out.keep_rate = keep_rate;

    // Guidance comes from previous-layer scores: no low-bit QK pass,
    // only accumulation and a top-k sort engine.
    Phase pred;
    pred.special_pj = d.pairs() * tech::kInt32AddPj +
        d.s * std::log2(std::max(2.0, static_cast<double>(d.s))) *
        tech::kSortCmpPj;
    pred.special_ops = d.pairs() / 16.0 +
        d.s * std::log2(std::max(2.0, static_cast<double>(d.s))) /
        16.0;
    pred.dram_bytes = d.s * 1.0; // importance vector spill/reload
    pred.sram_bytes = 2.0 * pred.dram_bytes;

    const Phase ex = executorPhase(d, keep_rate,
                                   unionKeep(keep_rate));
    out.metrics = combinePhases({{"predictor", pred},
                                 {"executor", ex}},
                                s, d.usefulOps());
    out.predictor_pj = phaseEnergyPj(pred, s);
    out.executor_pj = phaseEnergyPj(ex, s);
    return out;
}

BaselineOutcome
sofaRun(const AttentionDims &d, double keep_rate,
        const SubstrateParams &sub)
{
    SubstrateParams s = sub;
    if (s.compute_efficiency == 1.0)
        s.compute_efficiency = 0.65; // cross-stage tiling helps
    BaselineOutcome out;
    out.keep_rate = keep_rate;

    Phase pred;
    // Log-domain differential prediction: shift-adds over the full
    // pair space on 4-bit log-encoded K; a shift-add engine packs
    // about 2x the density of int8 MACs in the same area.
    pred.special_pj = d.pairs() * d.h * tech::kLogShiftPj +
        d.s * std::log2(std::max(2.0, static_cast<double>(d.s))) *
        tech::kSortCmpPj;
    pred.special_ops = d.pairs() * d.h / 2.0;
    pred.dram_bytes = d.s * d.h * 0.5 + d.p * d.h * 0.5;
    pred.sram_bytes = 2.0 * pred.dram_bytes;

    Phase ex = executorPhase(d, keep_rate, unionKeep(keep_rate));
    // Cross-stage coordinated tiling halves the executor's SRAM
    // traffic and avoids score spills.
    ex.sram_bytes *= 0.5;

    out.metrics = combinePhases({{"predictor", pred},
                                 {"executor", ex}},
                                s, d.usefulOps());
    out.predictor_pj = phaseEnergyPj(pred, s);
    out.executor_pj = phaseEnergyPj(ex, s);
    return out;
}

BaselineOutcome
runBaselineByName(const std::string &name, const AttentionDims &d,
                  double keep_rate, const SubstrateParams &sub)
{
    if (name == "Dense")
        return denseAccelRun(d, sub);
    if (name == "Sanger")
        return sangerRun(d, keep_rate, sub);
    if (name == "DOTA")
        return dotaRun(d, keep_rate, 16, sub);
    if (name == "Energon")
        return energonRun(d, 0.25, keep_rate, sub);
    if (name == "SpAtten" || name == "SpAtten*")
        return spattenRun(d, keep_rate, sub);
    if (name == "SOFA")
        return sofaRun(d, keep_rate, sub);
    throw std::out_of_range("unknown baseline: " + name);
}

} // namespace pade

/**
 * @file
 * Shared analytic cost substrate for the baseline accelerators.
 *
 * The paper normalizes every design to the same process (28 nm), clock
 * (800 MHz), PE-array area, SRAM capacity (352 KB) and HBM bandwidth
 * (256 GB/s @ 4 pJ/bit). We mirror that: each baseline is a sequence of
 * phases (predictor pass, executor pass, ...) costed against one
 * substrate with value-level MAC throughput equal to PADE's PE-array
 * area budget.
 */

#ifndef PADE_BASELINES_ANALYTIC_H
#define PADE_BASELINES_ANALYTIC_H

#include <string>
#include <utility>
#include <vector>

#include "arch/run_metrics.h"

namespace pade {

/** Area/bandwidth-normalized substrate (paper §VI-A). */
struct SubstrateParams
{
    /** INT8 value MACs per cycle in the shared PE-area budget. */
    double macs_per_cycle = 1024.0;
    double clock_ghz = 0.8;
    double bw_bytes_per_ns = 256.0; //!< 256 GB/s HBM
    double dram_pj_per_bit = 4.0;
    double sram_pj_per_byte = 0.6;
    /**
     * Achieved fraction of peak compute (load imbalance, scheduling
     * bubbles); set per design from its published utilization class.
     */
    double compute_efficiency = 1.0;
};

/** One execution phase: compute and memory demand. */
struct Phase
{
    double mac_ops = 0.0;      //!< MAC-equivalent operations
    double mac_bits = 8;       //!< operand width of those MACs
    /**
     * Whether narrow operands pack proportionally more lanes into the
     * area budget. Bit-parallel reconfigurable arrays (Sanger's
     * pack-and-split) run low-bit predictors at full-width rate.
     */
    bool width_packing = true;
    double special_pj = 0.0;   //!< non-MAC energy (exp, sort, shift)
    double special_ops = 0.0;  //!< non-MAC op count (for time)
    double dram_bytes = 0.0;
    double sram_bytes = 0.0;   //!< staged through on-chip buffers
};

/** Energy of one MAC at a given operand width (28 nm scaling). */
double macPj(double bits);

/** Time in ns for a phase on the substrate (compute/memory overlap). */
double phaseTimeNs(const Phase &ph, const SubstrateParams &sub);

/** Energy in pJ for a phase. */
double phaseEnergyPj(const Phase &ph, const SubstrateParams &sub);

/**
 * Fold a list of (name, phase) into RunMetrics; module names keep the
 * predictor/executor split the Fig. 2 analysis needs. Phases run
 * back-to-back (the stage-splitting pipeline the paper describes).
 */
RunMetrics
combinePhases(const std::vector<std::pair<std::string, Phase>> &phases,
              const SubstrateParams &sub, double useful_ops);

} // namespace pade

#endif // PADE_BASELINES_ANALYTIC_H

/**
 * @file
 * Behavioural cost models of the SOTA attention accelerators the paper
 * compares against (Table I, §VI): a dense ASIC, Sanger, DOTA, Energon,
 * SpAtten and SOFA. Each model follows its published mechanism on the
 * shared substrate; keep rates come from the functional predictors in
 * predictors.h calibrated at matched accuracy.
 */

#ifndef PADE_BASELINES_ACCELERATORS_H
#define PADE_BASELINES_ACCELERATORS_H

#include <string>

#include "arch/run_metrics.h"
#include "baselines/analytic.h"

namespace pade {

/** Block dimensions a baseline is evaluated on. */
struct AttentionDims
{
    int p = 8;        //!< query rows in the block
    int s = 2048;     //!< keys
    int h = 128;      //!< head dimension
    int exec_bits = 8;

    double pairs() const { return static_cast<double>(p) * s; }
    /** Dense-equivalent useful ops (QK^T + PV, 2 ops per MAC). */
    double usefulOps() const { return 4.0 * pairs() * h; }
};

/** Baseline run plus the predictor/executor energy split (Fig. 2). */
struct BaselineOutcome
{
    RunMetrics metrics;
    double predictor_pj = 0.0;
    double executor_pj = 0.0; //!< compute+mem energy of execution
    double keep_rate = 1.0;
};

/** Dense attention ASIC (no sparsity). */
BaselineOutcome denseAccelRun(const AttentionDims &d,
                              const SubstrateParams &sub = {});

/** Sanger: 4-bit MSB predictor + threshold, reconfigurable executor. */
BaselineOutcome sangerRun(const AttentionDims &d, double keep_rate,
                          const SubstrateParams &sub = {},
                          int pred_bits = 4);

/** DOTA: low-rank approximation predictor (rank r). */
BaselineOutcome dotaRun(const AttentionDims &d, double keep_rate,
                        int rank = 16,
                        const SubstrateParams &sub = {});

/** Energon: progressive mix-precision filtering (2-bit funnel + 4-bit). */
BaselineOutcome energonRun(const AttentionDims &d, double funnel,
                           double keep_rate,
                           const SubstrateParams &sub = {});

/**
 * SpAtten: cascade token pruning guided by previous-layer scores with
 * top-k sorting; no low-bit predictor pass, but un-finetuned guidance
 * needs a larger keep rate at matched accuracy (the caller calibrates
 * that through noisyTopkMask).
 */
BaselineOutcome spattenRun(const AttentionDims &d, double keep_rate,
                           const SubstrateParams &sub = {});

/** SOFA: log-domain predictor + top-k with cross-stage tiling. */
BaselineOutcome sofaRun(const AttentionDims &d, double keep_rate,
                        const SubstrateParams &sub = {});

/** Look up a baseline by paper name; keep/funnel knobs as applicable. */
BaselineOutcome runBaselineByName(const std::string &name,
                                  const AttentionDims &d,
                                  double keep_rate,
                                  const SubstrateParams &sub = {});

} // namespace pade

#endif // PADE_BASELINES_ACCELERATORS_H

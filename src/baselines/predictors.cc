#include "baselines/predictors.h"

#include <algorithm>
#include <cassert>
#include <cmath>
#include <numeric>

#include "attention/metrics.h"
#include "attention/reference.h"
#include "common/rng.h"
#include "quant/quantizer.h"

namespace pade {

namespace {

/** Keep mask from an estimate matrix: est >= rowmax(est) - margin. */
Matrix<uint8_t>
thresholdMask(const MatrixF &est, double margin)
{
    Matrix<uint8_t> keep(est.rows(), est.cols());
    for (int i = 0; i < est.rows(); i++) {
        float mx = est.at(i, 0);
        for (float v : est.row(i))
            mx = std::max(mx, v);
        const float cut = mx - static_cast<float>(margin);
        for (int j = 0; j < est.cols(); j++)
            keep.at(i, j) = est.at(i, j) >= cut ? 1 : 0;
    }
    return keep;
}

/** Keep mask of the per-row top-k entries of an estimate. */
Matrix<uint8_t>
topkMask(const MatrixF &est, int k)
{
    Matrix<uint8_t> keep(est.rows(), est.cols());
    k = std::min(k, est.cols());
    std::vector<int> idx(est.cols());
    for (int i = 0; i < est.rows(); i++) {
        std::iota(idx.begin(), idx.end(), 0);
        auto row = est.row(i);
        std::partial_sort(idx.begin(), idx.begin() + k, idx.end(),
                          [&row](int a, int b) {
                              return row[a] > row[b];
                          });
        for (int t = 0; t < k; t++)
            keep.at(i, idx[t]) = 1;
    }
    return keep;
}

} // namespace

MaskOutcome
finalizeMask(const AttentionHead &head, Matrix<uint8_t> keep)
{
    MaskOutcome out;
    const MatrixF logits = attentionLogits(head.q, head.k, head.scale);
    out.retained_mass = retainedMass(logits, keep);
    out.keep_rate = 1.0 - prunedFraction(keep);
    out.keep = std::move(keep);
    return out;
}

MaskOutcome
lowBitMask(const AttentionHead &head, int est_bits, double margin)
{
    const Quantized qq = quantizeSymmetric(head.q, est_bits);
    const Quantized kq = quantizeSymmetric(head.k, est_bits);
    MatrixI32 si = matmulBt<int8_t, int8_t, int32_t>(qq.values,
                                                     kq.values);
    MatrixF est(si.rows(), si.cols());
    const float deq = qq.params.scale * kq.params.scale * head.scale;
    for (int i = 0; i < si.rows(); i++)
        for (int j = 0; j < si.cols(); j++)
            est.at(i, j) = deq * static_cast<float>(si.at(i, j));
    return finalizeMask(head, thresholdMask(est, margin));
}

MaskOutcome
lowRankMask(const AttentionHead &head, int rank, double margin,
            uint64_t seed)
{
    const int h = head.q.cols();
    Rng rng(seed);
    // Random sign projection P (h x rank), scaled 1/sqrt(rank).
    MatrixF proj(h, rank);
    const float s = 1.0f / std::sqrt(static_cast<float>(rank));
    for (int d = 0; d < h; d++)
        for (int r = 0; r < rank; r++)
            proj.at(d, r) = rng.bernoulli(0.5) ? s : -s;

    const MatrixF qp = matmul<float, float, float>(head.q, proj);
    const MatrixF kp = matmul<float, float, float>(head.k, proj);
    MatrixF est = matmulBt<float, float, float>(qp, kp);
    for (int i = 0; i < est.rows(); i++)
        for (float &v : est.row(i))
            v *= head.scale;
    return finalizeMask(head, thresholdMask(est, margin));
}

MaskOutcome
progressiveMask(const AttentionHead &head, double funnel, double margin)
{
    assert(funnel > 0.0 && funnel <= 1.0);
    // Stage 1: 2-bit coarse estimate keeps the top `funnel` fraction.
    const Quantized q2 = quantizeSymmetric(head.q, 2);
    const Quantized k2 = quantizeSymmetric(head.k, 2);
    MatrixI32 s2 = matmulBt<int8_t, int8_t, int32_t>(q2.values,
                                                     k2.values);
    // Stage 2: 4-bit refinement with a margin threshold, applied only
    // to stage-1 survivors.
    const Quantized q4 = quantizeSymmetric(head.q, 4);
    const Quantized k4 = quantizeSymmetric(head.k, 4);
    const float deq4 = q4.params.scale * k4.params.scale * head.scale;

    const int s = head.k.rows();
    const int keep1 = std::max(1, static_cast<int>(funnel * s));
    Matrix<uint8_t> keep(head.q.rows(), s);
    std::vector<int> idx(s);
    for (int i = 0; i < head.q.rows(); i++) {
        std::iota(idx.begin(), idx.end(), 0);
        std::partial_sort(idx.begin(), idx.begin() + keep1, idx.end(),
                          [&s2, i](int a, int b) {
                              return s2.at(i, a) > s2.at(i, b);
                          });
        float mx = -1e30f;
        std::vector<float> refined(keep1);
        for (int t = 0; t < keep1; t++) {
            int64_t acc = 0;
            for (int d = 0; d < head.q.cols(); d++)
                acc += static_cast<int64_t>(q4.values.at(i, d)) *
                       k4.values.at(idx[t], d);
            refined[t] = deq4 * static_cast<float>(acc);
            mx = std::max(mx, refined[t]);
        }
        for (int t = 0; t < keep1; t++)
            if (refined[t] >= mx - margin)
                keep.at(i, idx[t]) = 1;
    }
    return finalizeMask(head, std::move(keep));
}

MaskOutcome
noisyTopkMask(const AttentionHead &head, int k, double noise_sigma,
              uint64_t seed)
{
    // "Previous layer" importance: true column probability mass plus
    // noise (layers differ, so un-finetuned guidance is noisy).
    const MatrixF logits = attentionLogits(head.q, head.k, head.scale);
    Rng rng(seed);
    MatrixF est(logits.rows(), logits.cols());
    for (int i = 0; i < logits.rows(); i++) {
        std::vector<float> probs(logits.row(i).begin(),
                                 logits.row(i).end());
        softmaxRow(probs);
        for (int j = 0; j < logits.cols(); j++) {
            const double lp = std::log(
                std::max(1e-20f, probs[j]));
            est.at(i, j) = static_cast<float>(
                lp + rng.gaussian(0.0, noise_sigma));
        }
    }
    return finalizeMask(head, topkMask(est, k));
}

MaskOutcome
logDomainTopkMask(const AttentionHead &head, int k)
{
    // Leading-one quantization: |x| -> 2^floor(log2|x|), sign kept.
    auto leadingOne = [](float v) {
        if (v == 0.0f)
            return 0.0f;
        const float mag = std::exp2(std::floor(std::log2(
            std::fabs(v))));
        return v > 0.0f ? mag : -mag;
    };
    MatrixF ql(head.q.rows(), head.q.cols());
    MatrixF kl(head.k.rows(), head.k.cols());
    for (int i = 0; i < head.q.rows(); i++)
        for (int d = 0; d < head.q.cols(); d++)
            ql.at(i, d) = leadingOne(head.q.at(i, d));
    for (int j = 0; j < head.k.rows(); j++)
        for (int d = 0; d < head.k.cols(); d++)
            kl.at(j, d) = leadingOne(head.k.at(j, d));
    MatrixF est = matmulBt<float, float, float>(ql, kl);
    return finalizeMask(head, topkMask(est, k));
}

MaskOutcome
streamingLlmMask(const AttentionHead &head, int sink, int window)
{
    const int s = head.k.rows();
    Matrix<uint8_t> keep(head.q.rows(), s);
    for (int i = 0; i < head.q.rows(); i++) {
        for (int j = 0; j < std::min(sink, s); j++)
            keep.at(i, j) = 1;
        for (int j = std::max(0, s - window); j < s; j++)
            keep.at(i, j) = 1;
    }
    return finalizeMask(head, std::move(keep));
}

MaskOutcome
minferenceMask(const AttentionHead &head, int sink, int window,
               double block_frac)
{
    const int s = head.k.rows();
    const int block = 64;
    const int nblocks = (s + block - 1) / block;
    const int keep_blocks = std::max(
        1, static_cast<int>(block_frac * nblocks));

    // Coarse estimate: mean-query dot per block (the "vertical-slash"
    // style pattern search).
    const MatrixF logits = attentionLogits(head.q, head.k, head.scale);
    Matrix<uint8_t> keep(head.q.rows(), s);
    std::vector<std::pair<float, int>> block_score(nblocks);
    for (int i = 0; i < head.q.rows(); i++) {
        for (int b = 0; b < nblocks; b++) {
            float sum = 0.0f;
            const int hi = std::min(s, (b + 1) * block);
            for (int j = b * block; j < hi; j++)
                sum += logits.at(i, j);
            block_score[b] = {sum / (hi - b * block), b};
        }
        std::partial_sort(block_score.begin(),
                          block_score.begin() + keep_blocks,
                          block_score.end(),
                          [](const auto &a, const auto &b) {
                              return a.first > b.first;
                          });
        for (int t = 0; t < keep_blocks; t++) {
            const int b = block_score[t].second;
            const int hi = std::min(s, (b + 1) * block);
            for (int j = b * block; j < hi; j++)
                keep.at(i, j) = 1;
        }
        for (int j = 0; j < std::min(sink, s); j++)
            keep.at(i, j) = 1;
        for (int j = std::max(0, s - window); j < s; j++)
            keep.at(i, j) = 1;
    }
    return finalizeMask(head, std::move(keep));
}

MaskOutcome
doubleSparsityMask(const AttentionHead &head, int channels, int k,
                   uint64_t seed)
{
    const int h = head.q.cols();
    channels = std::min(channels, h);
    // Pick the highest-magnitude key channels (offline calibration in
    // the real system); a seeded shuffle breaks ties.
    std::vector<double> mag(h, 0.0);
    for (int j = 0; j < head.k.rows(); j++)
        for (int d = 0; d < h; d++)
            mag[d] += std::fabs(head.k.at(j, d));
    std::vector<int> chan(h);
    std::iota(chan.begin(), chan.end(), 0);
    Rng rng(seed);
    for (int d = h - 1; d > 0; d--)
        std::swap(chan[d], chan[rng.below(d + 1)]);
    std::stable_sort(chan.begin(), chan.end(), [&mag](int a, int b) {
        return mag[a] > mag[b];
    });

    MatrixF est(head.q.rows(), head.k.rows());
    for (int i = 0; i < head.q.rows(); i++) {
        for (int j = 0; j < head.k.rows(); j++) {
            float acc = 0.0f;
            for (int c = 0; c < channels; c++)
                acc += head.q.at(i, chan[c]) * head.k.at(j, chan[c]);
            est.at(i, j) = acc;
        }
    }
    return finalizeMask(head, topkMask(est, k));
}

double
calibrateKnob(const std::function<MaskOutcome(double)> &fn,
              double target_mass, double lo, double hi, int iters)
{
    if (fn(lo).retained_mass >= target_mass)
        return lo;
    for (int i = 0; i < iters; i++) {
        const double mid = 0.5 * (lo + hi);
        if (fn(mid).retained_mass >= target_mass)
            hi = mid;
        else
            lo = mid;
    }
    return hi;
}

} // namespace pade

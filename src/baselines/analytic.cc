#include "baselines/analytic.h"

#include <cmath>

#include "common/math_util.h"
#include "energy/tech.h"

namespace pade {

double
macPj(double bits)
{
    // Anchored at INT8 = 0.14 pJ with ~(w/8)^1.7 energy scaling:
    // 16b ~0.45, 12b ~0.28, 4b ~0.04, 2b ~0.013.
    return tech::kInt8MacPj * std::pow(bits / 8.0, 1.7);
}

double
phaseTimeNs(const Phase &ph, const SubstrateParams &sub)
{
    // Low-bit MACs pack proportionally more lanes into the same area
    // (when the design supports packing).
    const double width_factor = ph.width_packing ?
        8.0 / std::max(ph.mac_bits, 1.0) : 1.0;
    const double macs_per_ns = sub.macs_per_cycle * width_factor *
        sub.clock_ghz;
    const double eff = clampTo(sub.compute_efficiency, 0.05, 1.0);
    const double compute_ns =
        (ph.mac_ops / std::max(macs_per_ns, 1e-9) +
         ph.special_ops / (sub.macs_per_cycle * sub.clock_ghz)) / eff;
    // Achieved DRAM bandwidth for these access patterns is well below
    // peak (row conflicts, read/write turnaround): ~60% is typical.
    const double mem_ns = ph.dram_bytes /
        std::max(0.6 * sub.bw_bytes_per_ns, 1e-9);
    return std::max(compute_ns, mem_ns);
}

double
phaseEnergyPj(const Phase &ph, const SubstrateParams &sub)
{
    return ph.mac_ops * macPj(ph.mac_bits) + ph.special_pj +
        ph.dram_bytes * 8.0 * sub.dram_pj_per_bit +
        ph.sram_bytes * sub.sram_pj_per_byte;
}

RunMetrics
combinePhases(const std::vector<std::pair<std::string, Phase>> &phases,
              const SubstrateParams &sub, double useful_ops)
{
    RunMetrics m;
    m.useful_ops = useful_ops;
    for (const auto &[name, ph] : phases) {
        m.time_ns += phaseTimeNs(ph, sub);
        m.dram_bytes += static_cast<uint64_t>(ph.dram_bytes);
        m.sram_bytes += static_cast<uint64_t>(ph.sram_bytes);
        m.energy.add(name,
                     ph.mac_ops * macPj(ph.mac_bits) + ph.special_pj,
                     &EnergyBreakdown::compute_pj);
        m.energy.add("dram", ph.dram_bytes * 8.0 * sub.dram_pj_per_bit,
                     &EnergyBreakdown::dram_pj);
        m.energy.add("buffers", ph.sram_bytes * sub.sram_pj_per_byte,
                     &EnergyBreakdown::sram_pj);
    }
    m.energy.add("static", tech::kAsicIdlePjPerNs * m.time_ns,
                 &EnergyBreakdown::other_pj);
    m.cycles = m.time_ns * sub.clock_ghz;
    m.qk_cycles = m.cycles;
    m.bw_utilization = m.time_ns > 0.0 ? std::min(
        1.0, static_cast<double>(m.dram_bytes) /
        (sub.bw_bytes_per_ns * m.time_ns)) : 0.0;
    return m;
}

} // namespace pade

#include "baselines/gpu_model.h"

#include <algorithm>
#include <cmath>

#include "energy/tech.h"
#include "workload/model_config.h"

namespace pade {

RunMetrics
gpuAttention(const AttentionDims &d, const GpuOptions &opt)
{
    RunMetrics m;
    const double causal_f = (opt.causal && d.p > 1) ? 0.5 : 1.0;
    const double pairs = causal_f * d.pairs();
    const double bytes_per_el = opt.int8 ? 1.0 : 2.0;

    // FLOPs: QK^T (2*p*s*h), PV on the kept fraction, softmax ~5 ops
    // per retained score, plus any software predictor pass.
    const double qk_flops = 2.0 * pairs * d.h;
    const double pv_flops = 2.0 * opt.keep_rate * pairs * d.h;
    const double softmax_flops = 5.0 * opt.keep_rate * pairs;
    const double predictor_flops = opt.predictor_pass_frac * qk_flops;
    // Gather/scatter inefficiency hits only the sparse (PV) side; the
    // dense QK pass runs at full tensor-core efficiency.
    const double sparse_penalty = opt.keep_rate < 1.0 ?
        opt.sparse_overhead : 1.0;
    double flops = predictor_flops + qk_flops +
        (pv_flops + softmax_flops) * sparse_penalty;

    // Bytes: FA-style tiling streams K/V once per query tile of ~256
    // rows; the untiled path additionally spills the S x S score
    // matrix twice (write + read around softmax).
    const double q_tiles = std::max(1.0, std::ceil(d.p / 256.0));
    double bytes = (2.0 * d.s * d.h * q_tiles * causal_f +
                    2.0 * d.p * d.h) * bytes_per_el;
    if (!opt.fa3)
        bytes += 2.0 * 2.0 * pairs; // fp16 scores out + in
    if (opt.predictor_pass_frac > 0.0)
        bytes += d.s * d.h * bytes_per_el * opt.predictor_pass_frac;

    flops *= opt.replicas;
    bytes *= opt.replicas;

    const double peak_flops_per_ns = (opt.int8 ?
        tech::kGpuPeakTflopsInt8 : tech::kGpuPeakTflopsFp16) * 1e3;
    const double compute_ns = flops /
        (peak_flops_per_ns * tech::kGpuAttnEfficiency);
    const double mem_ns = bytes /
        (tech::kGpuHbmTBps * 1e3 * tech::kGpuBwEfficiency);

    // Kernel-launch and framework overhead per block, amortized by
    // TensorRT-LLM batching (paper methodology excludes host time, so
    // keep this term small).
    const double overhead_ns = 2000.0;

    m.time_ns = std::max(compute_ns, mem_ns) + overhead_ns;
    m.cycles = m.time_ns; // 1 GHz-equivalent bookkeeping
    m.useful_ops = causal_f * d.usefulOps() * opt.replicas;
    m.dram_bytes = static_cast<uint64_t>(bytes);
    m.bw_utilization = std::min(
        1.0, bytes / (tech::kGpuHbmTBps * 1e3 * m.time_ns));

    // Dynamic power: measured active-minus-idle on a dedicated H100.
    // 1 W = 1000 pJ/ns.
    const double dynamic_w = 0.75 * tech::kGpuPowerW;
    const double energy_pj = dynamic_w * 1000.0 * m.time_ns;
    m.energy.add("gpu", energy_pj, &EnergyBreakdown::compute_pj);
    return m;
}

RunMetrics
gpuDense(const AttentionDims &d)
{
    GpuOptions opt;
    return gpuAttention(d, opt);
}

RunMetrics
gpuBuiGf(const AttentionDims &d, double keep_rate, bool fa3)
{
    GpuOptions opt;
    opt.fa3 = fa3;
    opt.keep_rate = keep_rate;
    // The GPU cannot terminate bit-serially: the full-precision QK
    // pass doubles as the detector; only mask bookkeeping is extra.
    opt.predictor_pass_frac = 0.05;
    return gpuAttention(d, opt);
}

RunMetrics
gpuModelAttention(const ModelConfig &model, const DatasetConfig &dataset,
                  GpuOptions opt, bool decode, int decode_steps)
{
    if (decode) {
        AttentionDims d{1, dataset.seq_len, model.head_dim, 8};
        opt.causal = false;
        opt.replicas = static_cast<double>(model.heads) *
            model.layers * decode_steps;
        return gpuAttention(d, opt);
    }
    AttentionDims d{dataset.seq_len, dataset.seq_len, model.head_dim,
                    8};
    opt.replicas = static_cast<double>(model.heads) * model.layers;
    return gpuAttention(d, opt);
}

} // namespace pade

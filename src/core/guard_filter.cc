#include "core/guard_filter.h"

#include <cassert>
#include <cmath>

namespace pade {

GuardFilter::GuardFilter(double alpha, double radius, double logit_scale)
{
    assert(alpha >= 0.0 && alpha <= 1.0);
    assert(radius >= 0.0);
    assert(logit_scale > 0.0);
    // Margin below the best lower bound, converted to integer scores.
    // T = max(LB) - alpha * radius (paper Eq. 4): alpha = 1 keeps the
    // full guard band (most conservative); smaller alpha raises the
    // threshold toward the max and prunes more aggressively, matching
    // the paper's Fig. 16(b) sweep direction.
    margin_int_ = static_cast<int64_t>(
        std::llround(alpha * radius / logit_scale));
}

void
GuardFilter::observe(int64_t lower_bound)
{
    if (!seen_ || lower_bound > max_lb_) {
        max_lb_ = lower_bound;
        seen_ = true;
        updates_++;
    }
}

int64_t
GuardFilter::threshold() const
{
    if (!seen_)
        return std::numeric_limits<int64_t>::min();
    // Saturating subtraction to avoid wraparound at the sentinel.
    const int64_t t = max_lb_ - margin_int_;
    return t > max_lb_ ? std::numeric_limits<int64_t>::min() : t;
}

bool
GuardFilter::shouldPrune(int64_t upper_bound) const
{
    return seen_ && upper_bound < threshold();
}

} // namespace pade

/**
 * @file
 * Reuse-Aware Reorder Scheduling (RARS) — paper §V-E, Fig. 13.
 *
 * After pruning, each retained score row needs an irregular subset of V
 * vectors. The V-PU loads a bounded number of V vectors per round and
 * each score row can consume a bounded number per round; a naive
 * left-to-right order reloads shared V vectors across rounds. RARS
 * greedily schedules V vectors by how many score rows can consume them
 * *this* round, deferring shared vectors when their consumers' round
 * slots are already full (which is what saves the reloads in the
 * paper's worked example: 11 loads -> 8).
 */

#ifndef PADE_CORE_RARS_H
#define PADE_CORE_RARS_H

#include <cstdint>
#include <vector>

namespace pade {

/** One scheduling outcome: V ids loaded per round. */
struct RarsSchedule
{
    std::vector<std::vector<int>> rounds;
    /** Total V-vector loads under this schedule. */
    uint64_t loads = 0;
};

/**
 * Naive left-to-right schedule: each score row consumes its next
 * @p per_score Vs (in index order) every round; the round's load set is
 * the union. Paper Fig. 13(a)(b).
 *
 * @param needs needs[s] = sorted V indices required by score row s
 * @param per_score V vectors one score row consumes per round
 */
RarsSchedule scheduleNaive(const std::vector<std::vector<int>> &needs,
                           int per_score);

/**
 * RARS greedy schedule (Fig. 13(c)-(e)): per round, repeatedly load the
 * V with the most consumers that still have round slots, breaking ties
 * toward Vs with *fewer* total remaining consumers so widely shared
 * vectors are issued in rounds where all their consumers can take them.
 */
RarsSchedule scheduleRars(const std::vector<std::vector<int>> &needs,
                          int per_score);

} // namespace pade

#endif // PADE_CORE_RARS_H

/**
 * @file
 * BUI-enabled Guarded Filtering (BUI-GF) — paper §IV-A, Fig. 7.
 *
 * Maintains the running max of score *lower bounds* for one query row
 * and derives the pruning threshold T = max(LB) - alpha * radius. A key
 * is pruned the moment its *upper* bound falls below T: softmax decay
 * (softmax(x0) < e^{-delta}) guarantees its contribution is negligible,
 * and the uncertainty interval guards against bit-serial estimation
 * error (the paper's Challenge 1).
 *
 * `radius` is specified in logit units (paper default 5, i.e. pruned
 * tokens contribute < e^-5 relative mass at alpha = 1); it is converted
 * into the integer score domain through the dequantization scale.
 */

#ifndef PADE_CORE_GUARD_FILTER_H
#define PADE_CORE_GUARD_FILTER_H

#include <cstdint>
#include <limits>

namespace pade {

/** Threshold state for one query row. */
class GuardFilter
{
  public:
    /**
     * @param alpha guard-band fraction in [0, 1]; 1 keeps the full
     *        radius (conservative), smaller values prune harder
     * @param radius guard band in logit units (paper default 5)
     * @param logit_scale integer-score -> logit conversion factor
     */
    GuardFilter(double alpha, double radius, double logit_scale);

    /** Fold a score lower bound into the row max (paper Step 0). */
    void observe(int64_t lower_bound);

    /** Current integer-domain threshold; -inf until first observe. */
    int64_t threshold() const;

    /** True if a key with this upper bound should be pruned. */
    bool shouldPrune(int64_t upper_bound) const;

    /** Number of threshold-raising updates (hardware activity). */
    uint64_t updates() const { return updates_; }

    int64_t maxLowerBound() const { return max_lb_; }

  private:
    int64_t margin_int_;
    int64_t max_lb_ = std::numeric_limits<int64_t>::min();
    bool seen_ = false;
    uint64_t updates_ = 0;
};

} // namespace pade

#endif // PADE_CORE_GUARD_FILTER_H

/**
 * @file
 * Functional PADE sparse attention — the paper's full algorithm stack
 * (BSF + BUI-GF + BS accounting + ISTA) in exact integer arithmetic.
 *
 * This is the library's primary public API. It consumes an INT8
 * quantized head (queries at full width, keys bit-serial) and produces
 * the attention output together with a pruning trace: per (query, key)
 * the number of bit planes consumed before termination, the final keep
 * mask, retained-key lists, and operation counts. The cycle-level
 * simulator in src/arch replays this trace through the modelled
 * hardware; the trace also drives every computation/memory-reduction
 * figure.
 */

#ifndef PADE_CORE_PADE_ATTENTION_H
#define PADE_CORE_PADE_ATTENTION_H

#include <cstdint>
#include <vector>

#include "attention/online_softmax.h"
#include "core/bit_serial.h"
#include "core/simd/qk_dispatch.h"
#include "tensor/matrix.h"
#include "workload/generator.h"

namespace pade {

class ThreadPool;

/** Algorithm configuration (paper defaults). */
struct PadeConfig
{
    double alpha = 0.55;   //!< guard-band fraction (Eq. 4)
    double radius = 5.0;   //!< guard band in logit units
    int tile_bc = 16;      //!< ISTA tile size Bc
    bool guard_enabled = true; //!< false = dense bit-serial (ablation)
    bool head_tail = true;     //!< head-tail interleaved tile order
    bool causal = false;       //!< causal mask (queries are the last
                               //!< query_len positions)
    int subgroup = 8;          //!< GSAT sub-group size
    int muxes = 4;             //!< GSAT muxes per sub-group
    /**
     * QK scoring kernel (see core/simd/qk_dispatch.h for the
     * three-way dispatch story). Defaults to the fastest available
     * backend — kSimd on AVX2 hardware, kPopcount otherwise; all
     * kernels are bit-identical. padeAttention resolves the request
     * through resolveQkKernel(), so the PADE_QK_KERNEL environment
     * variable overrides this field and an unavailable kSimd
     * degrades to kPopcount.
     */
    QkKernel qk_kernel = defaultQkKernel();
};

/**
 * Reusable scratch state of padeAttention. The per-query hot path is
 * allocation-free: every buffer it needs lives here and is resized
 * (never shrunk) once per call, so a caller that runs many heads —
 * the batch driver, calibration searches, the figure sweeps — passes
 * one workspace per worker thread and stops paying per-head/per-query
 * allocation churn. Default-constructed state is valid; padeAttention
 * creates a transient one when the caller passes none.
 */
struct PadeWorkspace
{
    /**
     * Optional pool for the up-front (key, plane) PlaneWork table;
     * the table is query-independent, embarrassingly parallel, and
     * computed eagerly once per head. Null computes it serially.
     */
    ThreadPool *pool = nullptr;

    QueryPlanes qplanes;             //!< packed current query row
    std::vector<PlaneWork> plane_work; //!< (key, plane) work table
    std::vector<int64_t> retained_scores; //!< exact retained scores
    std::vector<float> tile_scores; //!< ISTA tile logits
    OnlineSoftmaxRow softmax{0};    //!< value-stage accumulator

    /**
     * Cache key of the PlaneWork table currently in plane_work. The
     * table depends only on (key planes, GSAT geometry), so a repeated
     * padeAttention call over the same BitPlaneSet — the GQA pattern,
     * where every query head of a group scores one shared KV-head
     * plane set — reuses the table instead of rebuilding it.
     * BitPlaneSet::revision() is a process-unique content token, so a
     * (pointer, revision, subgroup, muxes) match can only mean
     * identical plane content.
     */
    const BitPlaneSet *plane_work_src = nullptr;
    uint64_t plane_work_revision = 0;
    int plane_work_subgroup = 0;
    int plane_work_muxes = 0;
    /** PlaneWork table (re)builds performed (reuse observability). */
    uint64_t plane_work_builds = 0;
};

/** Aggregate pruning / work statistics of one head execution. */
struct PruneStats
{
    uint64_t planes_processed = 0; //!< bit planes actually consumed
    uint64_t planes_total = 0;     //!< P * S_valid * bits (dense)
    uint64_t keys_retained = 0;
    uint64_t keys_total = 0;       //!< P * S_valid
    uint64_t ops_bs = 0;           //!< selected elements with BS
    uint64_t ops_naive = 0;        //!< ones-only selected elements
    uint64_t max_updates = 0;      //!< online-softmax max updates
    uint64_t rescale_ops = 0;      //!< rescale multiply-adds
    uint64_t threshold_updates = 0;

    /** Accumulate another execution's counters (all fields add). */
    PruneStats &operator+=(const PruneStats &o);

    double
    avgPlanesPerKey() const
    {
        return keys_total ? static_cast<double>(planes_processed) /
            keys_total : 0.0;
    }
    double
    keepRate() const
    {
        return keys_total ? static_cast<double>(keys_retained) /
            keys_total : 0.0;
    }
    /** Fraction of dense bit-plane work eliminated. */
    double
    planeReduction() const
    {
        return planes_total ? 1.0 -
            static_cast<double>(planes_processed) / planes_total : 0.0;
    }
};

/** Full result of one head execution. */
struct PadeResult
{
    MatrixF out;              //!< (P x H) attention output
    Matrix<uint8_t> keep;     //!< (P x S) final keep mask
    Matrix<uint8_t> planes;   //!< (P x S) planes consumed (0 = masked)
    /** Retained key ids per query row, in scan (ISTA) order. */
    std::vector<std::vector<int>> retained;
    PruneStats stats;
};

/**
 * Key scan order of ISTA: position tiles of @p tile keys, visited in
 * head-tail interleaved order when @p head_tail is set (0, T-1, 1,
 * T-2, ...), natural order otherwise; keys inside a tile keep natural
 * order.
 */
std::vector<int> istaScanOrder(int seq_len, int tile, bool head_tail);

/**
 * istaScanOrder() written into a reusable buffer — the form the
 * incremental decode engine calls once per step, so the order vector
 * stops allocating after the first step at a given context length.
 */
void istaScanOrderInto(int seq_len, int tile, bool head_tail,
                       std::vector<int> &out);

/**
 * Live-range overload for retention-windowed decode: the scan order
 * restricted to a StreamingLLM live set — keys j with
 * j < @p sink_tokens or j >= @p window_start — emitted as exactly the
 * subsequence of istaScanOrder(seq_len, tile, head_tail) those keys
 * form. A windowed scan is therefore bit-identical to walking the
 * full order with a per-key liveness skip, while generation costs
 * O(live keys + live tiles) instead of O(seq_len): dead middle tiles
 * are never visited (the head/tail walk stops once both cursors sit
 * in the dead range). window_start <= 0 (nothing evictable yet)
 * reproduces the full order verbatim.
 */
void istaScanOrderInto(int seq_len, int tile, bool head_tail,
                       int sink_tokens, int window_start,
                       std::vector<int> &out);

/**
 * Run PADE sparse attention on one quantized head.
 *
 * Exactness contract: keys that survive all bit planes have exact
 * integer scores (the uncertainty interval collapses at the LSB), so
 * the output equals masked INT8 attention under the final keep mask.
 *
 * @param ws optional reusable workspace (see PadeWorkspace); pass one
 *        per worker thread to make repeated calls allocation-free on
 *        the per-query path.
 */
PadeResult padeAttention(const QuantizedHead &head,
                         const PadeConfig &cfg = {},
                         PadeWorkspace *ws = nullptr);

} // namespace pade

#endif // PADE_CORE_PADE_ATTENTION_H

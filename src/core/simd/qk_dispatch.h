/**
 * @file
 * QK scoring kernel selection — the library's ISA-dispatch seam.
 *
 * Three kernels compute the identical integer plane deltas; outputs,
 * retention masks, and statistics are bit-identical by contract
 * (enforced by the property tests), so the choice is purely a
 * throughput decision:
 *
 *  - QkKernel::kScalar — per-set-bit ctz walk; the exactness oracle.
 *  - QkKernel::kPopcount — word-parallel weighted popcount over
 *    packed 64-bit words (baseline ISA + POPCNT).
 *  - QkKernel::kSimd — the AVX2 backend (vpshufb nibble popcount /
 *    Harley-Seal, see src/core/simd/qk_avx2.h); requires the backend
 *    to be compiled in (CMake option PADE_AVX2) *and* the executing
 *    CPU/OS to support AVX2 (runtime CPUID + XGETBV probe).
 *
 * Selection: PadeConfig::qk_kernel names the requested kernel and
 * defaults to defaultQkKernel() (kSimd when available, else
 * kPopcount). resolveQkKernel() applies the PADE_QK_KERNEL
 * environment override — "scalar" | "popcount" | "simd" | "auto" —
 * and downgrades an unavailable kSimd to kPopcount, so requesting
 * SIMD is always safe. Future backends (AVX-512, NEON, CUDA) plug in
 * as new enumerators resolved here.
 */

#ifndef PADE_CORE_SIMD_QK_DISPATCH_H
#define PADE_CORE_SIMD_QK_DISPATCH_H

#include <optional>
#include <string_view>

namespace pade {

/** QK scoring kernel (see file comment for the dispatch story). */
enum class QkKernel
{
    kScalar,   //!< per-set-bit scalar reference (oracle)
    kPopcount, //!< word-parallel weighted-popcount kernel
    kSimd,     //!< AVX2 backend (falls back to kPopcount if absent)
};

/** Environment variable overriding the configured kernel. */
inline constexpr const char kQkKernelEnv[] = "PADE_QK_KERNEL";

/** Lower-case name of @p k ("scalar" / "popcount" / "simd"). */
const char *qkKernelName(QkKernel k);

/**
 * Parse a kernel name (case-insensitive); nullopt for anything else
 * (including "auto", which is resolveQkKernel()'s job).
 */
std::optional<QkKernel> qkKernelFromName(std::string_view name);

/**
 * True when kSimd can actually execute vector code here: the AVX2
 * translation unit was compiled (PADE_AVX2) and the runtime probe
 * reports AVX2 with OS-saved YMM state. Cached after the first call.
 */
bool qkSimdAvailable();

/** kSimd when qkSimdAvailable(), else kPopcount. */
QkKernel defaultQkKernel();

/**
 * Final dispatch decision for one execution: applies the
 * PADE_QK_KERNEL environment override (if set and valid; "auto"
 * selects defaultQkKernel(), an unknown value warns once on stderr
 * and is ignored), then downgrades kSimd to kPopcount when the
 * backend is unavailable. The environment is re-read on every call
 * so benchmarking harnesses can flip kernels between runs.
 */
QkKernel resolveQkKernel(QkKernel requested);

} // namespace pade

#endif // PADE_CORE_SIMD_QK_DISPATCH_H

/**
 * @file
 * AVX2 implementation of the bit-serial QK scoring primitives.
 *
 * Two entry points cover the QK hot paths:
 *
 *  - maskedSumAvx2: one key plane against all query planes — the
 *    QueryPlanes::maskedSum primitive, used by the guarded attention
 *    loop which must observe the score after every key plane;
 *  - dotPlanesAvx2: the first n key planes of one key fused into one
 *    call (partialDot/exactDot). Fusing amortizes the mask loads and
 *    the vector->scalar reduction over all key planes: the key-plane
 *    weights are powers of two, so the per-plane vector sums fold
 *    into a single accumulator by Horner doubling and only one
 *    horizontal sum runs per (query, key) pair.
 *
 * This translation unit is the only one in the library built with
 * -mavx2; everything else stays baseline-ISA, and callers must gate
 * on qkAvx2Compiled() plus the runtime CPUID probe (see
 * qk_dispatch.h) before calling these functions.
 *
 * Strategy by row shape (words = packed 64-bit words per plane):
 *  - words <= 4 (head_dim <= 256), and any row up to 4064 elements
 *    when the query carries >= 6 planes: the value-domain kernel. The
 *    weighted plane identity sum_t w_t popcount(q_t & m) equals the
 *    sum of the *original int8 query values* under the mask, so the
 *    kernel skips the query planes entirely: 32 mask bits at a time
 *    are broadcast (vpbroadcastd), fanned out to a byte select
 *    (vpshufb + bit-test vpcmpeqb), ANDed with the caller-maintained
 *    byte mirror of the query row (QPlaneView::values), and
 *    accumulated pairwise into 16-bit lanes with vpmaddubsw. One pass
 *    over head_dim bytes per key plane, independent of the query's
 *    bit-width — this is what makes the short rows beat the scalar
 *    popcount kernel, whose work scales with bits * words.
 *  - other rows (wide with a narrow query, or past the value
 *    kernel's 16-bit saturation ceiling): the plane-domain kernel.
 *    Per query plane, full 32-byte chunks accumulate vpshufb
 *    nibble-LUT popcounts in a byte accumulator (flushed through
 *    vpsadbw before any byte can saturate); rows of >= 16 chunks
 *    (head_dim >= 4096) first collapse 16 chunks at a time through a
 *    Harley-Seal carry-save adder tree, quartering the pshufb work.
 *    Here the plane domain wins: it touches bits/8 bytes per element
 *    versus the value kernel's 1, so narrow queries cost
 *    proportionally less.
 *
 * When CMake could not enable AVX2 (PADE_AVX2=OFF or an unsupporting
 * compiler), this file compiles a portable fallback with identical
 * semantics and qkAvx2Compiled() reports false.
 */

#ifndef PADE_CORE_SIMD_QK_AVX2_H
#define PADE_CORE_SIMD_QK_AVX2_H

#include <cstdint>

namespace pade {
namespace simd {

/**
 * Raw view of a QueryPlanes object (QueryPlanes owns the invariants):
 *  - plane t of planes starts at offset t * stride;
 *  - stride is a multiple of 4 words and the pointers are 32-byte
 *    aligned, so plane rows support aligned 32-byte loads;
 *  - padding words beyond the logical row length are zero;
 *  - values holds the cols int8 elements the planes decompose
 *    (exactly their plane reconstruction, so plane-domain and
 *    value-domain sums agree bit for bit), 32-byte aligned and
 *    zero-padded to the next 32-byte boundary.
 */
struct QPlaneView
{
    const uint64_t *planes; //!< packed query planes
    const int8_t *values;   //!< byte mirror of the query row
    int stride;             //!< words between consecutive planes
    int bits;               //!< number of query planes
    int cols;               //!< logical row length in elements
};

/** True when this build carries real AVX2 code paths. */
bool qkAvx2Compiled();

/**
 * Weighted masked popcount sum over the packed query planes:
 * returns sum_{t>0} popcount(q_t & mask) << (bits-1-t)
 *       - popcount(q_0 & mask) << (bits-1).
 *
 * @p mask may be arbitrary caller memory of exactly @p words words:
 * the value-domain path reads 4-byte dwords within the span and the
 * wide path reads its tail chunk with vpmaskmovq — never past the
 * end either way.
 *
 * Must only be called when qkAvx2Compiled() and the runtime AVX2
 * probe both hold; the portable stub in non-AVX2 builds computes the
 * same value in scalar code (bit-identical, just slower).
 */
int64_t maskedSumAvx2(const QPlaneView &q, const uint64_t *mask,
                      int words);

/**
 * Fused partial dot product: the weighted sum of maskedSumAvx2 over
 * the first @p nplanes key planes of one key,
 *
 *   sum_{p < nplanes} w_p * maskedSum(kplane_p),
 *
 * with w_0 = -2^{kbits-1} and w_p = 2^{kbits-1-p}. @p kplanes points
 * at plane 0 of the key's plane block; plane p starts at
 * kplanes + p * kstride, under the same alignment/zero-padding
 * contract as QPlaneView (BitPlaneSet guarantees it), which lets the
 * kernel use full-width loads on both sides with no tail masking.
 * Same availability contract as maskedSumAvx2.
 */
int64_t dotPlanesAvx2(const QPlaneView &q, const uint64_t *kplanes,
                      int kstride, int kbits, int nplanes, int words);

} // namespace simd
} // namespace pade

#endif // PADE_CORE_SIMD_QK_AVX2_H

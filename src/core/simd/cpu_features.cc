#include "core/simd/cpu_features.h"

#include <cstdint>

#if defined(__x86_64__) || defined(__i386__)
#include <cpuid.h>
#endif

namespace pade {
namespace simd {
namespace {

#if defined(__x86_64__) || defined(__i386__)

/** XGETBV(0): which register states the OS saves/restores (XCR0). */
uint64_t
xcr0()
{
    uint32_t eax = 0;
    uint32_t edx = 0;
    // Encoded bytes rather than the _xgetbv intrinsic: the intrinsic
    // requires compiling this (baseline-ISA) file with -mxsave.
    __asm__ volatile(".byte 0x0f, 0x01, 0xd0"
                     : "=a"(eax), "=d"(edx)
                     : "c"(0));
    return (static_cast<uint64_t>(edx) << 32) | eax;
}

CpuFeatures
probe()
{
    CpuFeatures f;
    unsigned eax = 0;
    unsigned ebx = 0;
    unsigned ecx = 0;
    unsigned edx = 0;
    if (!__get_cpuid(1, &eax, &ebx, &ecx, &edx))
        return f;
    f.popcnt = (ecx >> 23) & 1u;
    f.avx = (ecx >> 28) & 1u;

    // XCR0 is only readable when the OS enabled XSAVE (OSXSAVE).
    const bool osxsave = (ecx >> 27) & 1u;
    if (osxsave)
        f.os_ymm = (xcr0() & 0x6) == 0x6; // XMM (bit 1) + YMM (bit 2)

    if (__get_cpuid_count(7, 0, &eax, &ebx, &ecx, &edx))
        f.avx2 = (ebx >> 5) & 1u;
    return f;
}

#else // non-x86: nothing to probe, everything stays false.

CpuFeatures
probe()
{
    return {};
}

#endif

} // namespace

const CpuFeatures &
cpuFeatures()
{
    static const CpuFeatures f = probe();
    return f;
}

} // namespace simd
} // namespace pade

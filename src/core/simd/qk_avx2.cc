#include "core/simd/qk_avx2.h"

#include <cassert>
#include <cstddef>

#ifdef PADE_HAVE_AVX2

#include <cstring>

#include <immintrin.h>

namespace pade {
namespace simd {
namespace {

/** Words per 256-bit chunk; also the QueryPlanes stride quantum. */
constexpr int kChunkWords = 4;

/**
 * Row-length threshold (in words) below which the value-domain
 * kernel always runs; see useValueKernel() for the wide-row rule.
 */
constexpr int kValueWords = 4;

/**
 * Value-kernel row-length ceiling: each 32-element chunk adds one
 * vpmaddubsw pair sum (<= 256 in magnitude, |q| <= 128) to a 16-bit
 * lane, so 127 chunks (= 4064 elements) is the last count that can
 * never reach +-2^15.
 */
constexpr int kValueMaxCols = 127 * 32;

inline __m256i
nibbleLut()
{
    return _mm256_setr_epi8(
        0, 1, 1, 2, 1, 2, 2, 3, 1, 2, 2, 3, 2, 3, 3, 4,
        0, 1, 1, 2, 1, 2, 2, 3, 1, 2, 2, 3, 2, 3, 3, 4);
}

inline __m256i
nibbleMask()
{
    return _mm256_set1_epi8(0x0f);
}

/** Per-byte popcount of @p v via the vpshufb nibble LUT. */
inline __m256i
popcountBytes(__m256i v)
{
    const __m256i lut = nibbleLut();
    const __m256i nib = nibbleMask();
    const __m256i lo = _mm256_and_si256(v, nib);
    const __m256i hi = _mm256_and_si256(_mm256_srli_epi16(v, 4), nib);
    return _mm256_add_epi8(_mm256_shuffle_epi8(lut, lo),
                           _mm256_shuffle_epi8(lut, hi));
}

/** Sum the per-byte counts into the 4 quadword lanes. */
inline __m256i
sumBytes(__m256i byte_counts)
{
    return _mm256_sad_epu8(byte_counts, _mm256_setzero_si256());
}

/** Horizontal sum of the 4 quadword lanes. */
inline int64_t
hsum(__m256i v)
{
    const __m128i s = _mm_add_epi64(_mm256_castsi256_si128(v),
                                    _mm256_extracti128_si256(v, 1));
    return _mm_cvtsi128_si64(s) + _mm_extract_epi64(s, 1);
}

/** Shift all quadword lanes left by the runtime count @p n. */
inline __m256i
shiftLanes(__m256i v, int n)
{
    return _mm256_sll_epi64(v, _mm_cvtsi32_si128(n));
}

/**
 * Load @p valid (1..3) words from @p p into the low lanes, zeroing
 * the rest, without reading past p[valid-1] (vpmaskmovq suppresses
 * masked-out loads architecturally).
 */
inline __m256i
loadTail(const uint64_t *p, int valid)
{
    const __m256i lane = _mm256_setr_epi64x(0, 1, 2, 3);
    const __m256i live =
        _mm256_cmpgt_epi64(_mm256_set1_epi64x(valid), lane);
    return _mm256_maskload_epi64(
        reinterpret_cast<const long long *>(p), live);
}

/** Carry-save adder: (h, l) = full-adder(a, b, c) per bit lane. */
inline void
csa(__m256i &h, __m256i &l, __m256i a, __m256i b, __m256i c)
{
    const __m256i u = _mm256_xor_si256(a, b);
    h = _mm256_or_si256(_mm256_and_si256(a, b),
                        _mm256_and_si256(u, c));
    l = _mm256_xor_si256(u, c);
}

/**
 * Fan 32 mask bits (bits 32c .. 32c+31 of @p mask) out to a 0/-1
 * byte-select register: vpbroadcastd replicates the dword, vpshufb
 * replicates each of its 4 bytes across its 8 byte positions, and a
 * bit-test against 2^{j%8} turns bit j into byte j's select.
 */
inline __m256i
expandMask32(const uint64_t *mask, int c)
{
    int32_t dword;
    std::memcpy(&dword,
                reinterpret_cast<const unsigned char *>(mask) +
                    static_cast<std::size_t>(c) * 4,
                sizeof(dword));
    const __m256i spread = _mm256_shuffle_epi8(
        _mm256_set1_epi32(dword),
        _mm256_setr_epi8(0, 0, 0, 0, 0, 0, 0, 0, 1, 1, 1, 1, 1, 1, 1,
                         1, 2, 2, 2, 2, 2, 2, 2, 2, 3, 3, 3, 3, 3, 3,
                         3, 3));
    const __m256i bit = _mm256_set1_epi64x(
        static_cast<int64_t>(0x8040201008040201ULL));
    return _mm256_cmpeq_epi8(_mm256_and_si256(spread, bit), bit);
}

/**
 * Value-domain masked sum in 16-bit lanes: sum of the int8 query
 * values selected by one key plane, accumulated chunkwise with
 * vpmaddubsw(1, selected). Each chunk contributes one pair sum in
 * [-256, 254] per lane and nothing flushes mid-row, so callers must
 * keep c1 - c0 at or below 127 chunks (the kValueMaxCols ceiling) or
 * the lanes can saturate.
 */
inline __m256i
valuePlaneSum16(const int8_t *values, const uint64_t *mask, int c0,
                int c1)
{
    const __m256i ones = _mm256_set1_epi8(1);
    __m256i acc16 = _mm256_setzero_si256();
    for (int c = c0; c < c1; c++) {
        const __m256i v = _mm256_and_si256(
            expandMask32(mask, c),
            _mm256_load_si256(reinterpret_cast<const __m256i *>(
                values + static_cast<std::size_t>(c) * 32)));
        acc16 = _mm256_add_epi16(acc16,
                                 _mm256_maddubs_epi16(ones, v));
    }
    return acc16;
}

/** Horizontal sum of 8 int32 lanes. */
inline int64_t
hsum32(__m256i v)
{
    const __m128i s = _mm_add_epi32(_mm256_castsi256_si128(v),
                                    _mm256_extracti128_si256(v, 1));
    const __m128i t = _mm_add_epi32(s, _mm_srli_si128(s, 8));
    return _mm_cvtsi128_si32(t) +
        _mm_cvtsi128_si32(_mm_srli_si128(t, 4));
}

/** Widen a 16-bit lane accumulator to 32-bit lanes. */
inline __m256i
widen16(__m256i acc16)
{
    return _mm256_madd_epi16(acc16, _mm256_set1_epi16(1));
}

/**
 * Value-domain maskedSum for one key plane over a row of any length.
 * The chunk count is derived from cols, so at most
 * 4 * ceil(cols/32) <= 8 * words mask bytes are read — never past
 * the caller's span. The query byte mirror's zero padding absorbs
 * mask bits between cols and the chunk boundary.
 */
int64_t
maskedSumValues(const int8_t *values, const uint64_t *mask, int cols)
{
    const int chunks = (cols + 31) / 32;
    return hsum32(widen16(valuePlaneSum16(values, mask, 0, chunks)));
}

/**
 * Fused value-domain dot over the first nplanes key planes of one
 * key: per-plane 16-bit masked value sums widen to 32-bit lanes and
 * fold by Horner doubling (plane weights are descending powers of
 * two), so one horizontal sum runs per (query, key) pair. Row length
 * is bounded by the caller (cols <= kValueMaxCols), so 16-bit lanes
 * cannot saturate and the Horner chain peaks below 2^24 per lane.
 */
int64_t
dotPlanesValues(const int8_t *values, int cols, const uint64_t *kplanes,
                int kstride, int kbits, int nplanes)
{
    const int chunks = (cols + 31) / 32;

    // Key sign plane (p = 0, weight -2^{kbits-1}) on its own.
    const __m256i sign32 =
        widen16(valuePlaneSum16(values, kplanes, 0, chunks));

    // Positive planes p >= 1 Horner-folded in the 32-bit lanes.
    __m256i acc32 = _mm256_setzero_si256();
    for (int p = 1; p < nplanes; p++) {
        const __m256i s = widen16(valuePlaneSum16(
            values, kplanes + static_cast<std::size_t>(p) * kstride, 0,
            chunks));
        acc32 = _mm256_add_epi32(_mm256_add_epi32(acc32, acc32), s);
    }

    // acc32 carries weights 2^{nplanes-1-p}; rescale to 2^{kbits-1-p}
    // and subtract the sign plane at its full magnitude.
    return (hsum32(acc32) << (kbits - nplanes)) -
        (hsum32(sign32) << (kbits - 1));
}

/**
 * Kernel choice per row shape. Short rows (words <= kValueWords)
 * always take the value kernel — per-plane fixed costs dominate
 * there and it has the smallest. On wider rows the trade is bytes
 * touched per element: 1 for the value kernel versus bits/8 for the
 * plane-domain path, with the crossover measured near 6 query
 * planes. Rows past the 16-bit saturation ceiling always take the
 * plane path (which has no length limit).
 */
inline bool
useValueKernel(const QPlaneView &q, int words)
{
    if (words <= kValueWords)
        return true;
    return q.bits >= 6 && q.cols <= kValueMaxCols;
}

/**
 * General rows (words > 4). Per query plane, full 32-byte chunks
 * accumulate nibble popcounts in a byte accumulator, flushed through
 * vpsadbw before any byte can reach 255 (each chunk adds at most 8
 * per byte, so 31 chunks are safe). Rows of >= 16 full chunks first
 * collapse 16 chunks at a time through a Harley-Seal carry-save
 * adder tree so only one in sixteen vectors pays the pshufb popcount
 * at full weight. Plane weights fold in the quadword lanes; a single
 * horizontal sum runs at the end.
 */
int64_t
maskedSumWide(const QPlaneView &q, const uint64_t *mask, int words)
{
    const int full = words / kChunkWords;
    const int tail = words % kChunkWords;

    __m256i weighted = _mm256_setzero_si256();
    for (int t = 0; t < q.bits; t++) {
        const uint64_t *qp =
            q.planes + static_cast<std::size_t>(t) * q.stride;
        const auto chunk = [&](int i) {
            return _mm256_and_si256(
                _mm256_loadu_si256(reinterpret_cast<const __m256i *>(
                    mask + static_cast<std::size_t>(i) * kChunkWords)),
                _mm256_load_si256(reinterpret_cast<const __m256i *>(
                    qp + static_cast<std::size_t>(i) * kChunkWords)));
        };

        __m256i total = _mm256_setzero_si256();
        int i = 0;
        if (full >= 16) {
            __m256i ones = _mm256_setzero_si256();
            __m256i twos = _mm256_setzero_si256();
            __m256i fours = _mm256_setzero_si256();
            __m256i eights = _mm256_setzero_si256();
            for (; i + 16 <= full; i += 16) {
                __m256i twos_a, twos_b, fours_a, fours_b;
                __m256i eights_a, eights_b, sixteens;
                csa(twos_a, ones, ones, chunk(i + 0), chunk(i + 1));
                csa(twos_b, ones, ones, chunk(i + 2), chunk(i + 3));
                csa(fours_a, twos, twos, twos_a, twos_b);
                csa(twos_a, ones, ones, chunk(i + 4), chunk(i + 5));
                csa(twos_b, ones, ones, chunk(i + 6), chunk(i + 7));
                csa(fours_b, twos, twos, twos_a, twos_b);
                csa(eights_a, fours, fours, fours_a, fours_b);
                csa(twos_a, ones, ones, chunk(i + 8), chunk(i + 9));
                csa(twos_b, ones, ones, chunk(i + 10), chunk(i + 11));
                csa(fours_a, twos, twos, twos_a, twos_b);
                csa(twos_a, ones, ones, chunk(i + 12), chunk(i + 13));
                csa(twos_b, ones, ones, chunk(i + 14), chunk(i + 15));
                csa(fours_b, twos, twos, twos_a, twos_b);
                csa(eights_b, fours, fours, fours_a, fours_b);
                csa(sixteens, eights, eights, eights_a, eights_b);
                total = _mm256_add_epi64(
                    total, sumBytes(popcountBytes(sixteens)));
            }
            total = _mm256_slli_epi64(total, 4);
            total = _mm256_add_epi64(
                total, _mm256_slli_epi64(
                           sumBytes(popcountBytes(eights)), 3));
            total = _mm256_add_epi64(
                total, _mm256_slli_epi64(
                           sumBytes(popcountBytes(fours)), 2));
            total = _mm256_add_epi64(
                total, _mm256_slli_epi64(
                           sumBytes(popcountBytes(twos)), 1));
            total = _mm256_add_epi64(total,
                                     sumBytes(popcountBytes(ones)));
        }

        __m256i bytes = _mm256_setzero_si256();
        int pending = 0;
        for (; i < full; i++) {
            bytes = _mm256_add_epi8(bytes, popcountBytes(chunk(i)));
            if (++pending == 31) {
                total = _mm256_add_epi64(total, sumBytes(bytes));
                bytes = _mm256_setzero_si256();
                pending = 0;
            }
        }
        if (tail) {
            // The query padding beyond `words` is zero, so a full
            // aligned load on the q side is safe and the AND drops
            // whatever the masked key load zeroed out.
            const __m256i v = _mm256_and_si256(
                loadTail(mask + static_cast<std::size_t>(full) *
                                    kChunkWords,
                         tail),
                _mm256_load_si256(reinterpret_cast<const __m256i *>(
                    qp + static_cast<std::size_t>(full) *
                             kChunkWords)));
            bytes = _mm256_add_epi8(bytes, popcountBytes(v));
            pending++;
        }
        if (pending)
            total = _mm256_add_epi64(total, sumBytes(bytes));

        const __m256i c = shiftLanes(
            total, t == 0 ? q.bits - 1 : q.bits - 1 - t);
        weighted = t == 0 ? _mm256_sub_epi64(weighted, c)
                          : _mm256_add_epi64(weighted, c);
    }
    return hsum(weighted);
}

} // namespace

bool
qkAvx2Compiled()
{
    return true;
}

int64_t
maskedSumAvx2(const QPlaneView &q, const uint64_t *mask, int words)
{
    assert(q.stride % kChunkWords == 0);
    assert(reinterpret_cast<std::uintptr_t>(q.planes) % 32 == 0);
    assert(reinterpret_cast<std::uintptr_t>(q.values) % 32 == 0);
    if (q.bits == 0 || words == 0)
        return 0;
    if (useValueKernel(q, words))
        return maskedSumValues(q.values, mask, q.cols);
    return maskedSumWide(q, mask, words);
}

int64_t
dotPlanesAvx2(const QPlaneView &q, const uint64_t *kplanes, int kstride,
              int kbits, int nplanes, int words)
{
    assert(q.stride % kChunkWords == 0 && kstride % kChunkWords == 0);
    assert(reinterpret_cast<std::uintptr_t>(kplanes) % 32 == 0);
    assert(nplanes >= 1 && nplanes <= kbits);
    if (q.bits == 0 || words == 0)
        return 0;
    if (useValueKernel(q, words))
        return dotPlanesValues(q.values, q.cols, kplanes, kstride,
                               kbits, nplanes);
    // Long rows: the per-plane work dwarfs the call/reduction
    // overhead the fusion exists to amortize, so reuse the wide
    // kernel per key plane and combine in scalar.
    int64_t total = 0;
    for (int p = 0; p < nplanes; p++) {
        const int64_t s = maskedSumWide(
            q, kplanes + static_cast<std::size_t>(p) * kstride, words);
        const int64_t w = p == 0 ? -(int64_t{1} << (kbits - 1))
                                 : int64_t{1} << (kbits - 1 - p);
        total += w * s;
    }
    return total;
}

} // namespace simd
} // namespace pade

#else // !PADE_HAVE_AVX2: portable stubs with identical semantics.

#include <bit>

namespace pade {
namespace simd {
namespace {

int64_t
maskedSumPortable(const QPlaneView &q, const uint64_t *mask, int words)
{
    int64_t pos = 0;
    int64_t neg = 0;
    for (int t = 0; t < q.bits; t++) {
        const uint64_t *qp =
            q.planes + static_cast<std::size_t>(t) * q.stride;
        int64_t ones = 0;
        for (int w = 0; w < words; w++)
            ones += std::popcount(qp[w] & mask[w]);
        if (t == 0)
            neg = ones;
        else
            pos += ones << (q.bits - 1 - t);
    }
    return pos - (neg << (q.bits - 1));
}

} // namespace

bool
qkAvx2Compiled()
{
    return false;
}

int64_t
maskedSumAvx2(const QPlaneView &q, const uint64_t *mask, int words)
{
    return maskedSumPortable(q, mask, words);
}

int64_t
dotPlanesAvx2(const QPlaneView &q, const uint64_t *kplanes, int kstride,
              int kbits, int nplanes, int words)
{
    int64_t total = 0;
    for (int p = 0; p < nplanes; p++) {
        const int64_t s = maskedSumPortable(
            q, kplanes + static_cast<std::size_t>(p) * kstride, words);
        const int64_t w = p == 0 ? -(int64_t{1} << (kbits - 1))
                                 : int64_t{1} << (kbits - 1 - p);
        total += w * s;
    }
    return total;
}

} // namespace simd
} // namespace pade

#endif // PADE_HAVE_AVX2

#include "core/simd/qk_dispatch.h"

#include <atomic>
#include <cctype>
#include <cstddef>
#include <cstdio>
#include <cstdlib>

#include "core/simd/cpu_features.h"
#include "core/simd/qk_avx2.h"

namespace pade {
namespace {

bool
equalsIgnoreCase(std::string_view a, std::string_view b)
{
    if (a.size() != b.size())
        return false;
    for (std::size_t i = 0; i < a.size(); i++)
        if (std::tolower(static_cast<unsigned char>(a[i])) !=
            std::tolower(static_cast<unsigned char>(b[i])))
            return false;
    return true;
}

} // namespace

const char *
qkKernelName(QkKernel k)
{
    switch (k) {
    case QkKernel::kScalar: return "scalar";
    case QkKernel::kPopcount: return "popcount";
    case QkKernel::kSimd: return "simd";
    }
    return "unknown";
}

std::optional<QkKernel>
qkKernelFromName(std::string_view name)
{
    if (equalsIgnoreCase(name, "scalar"))
        return QkKernel::kScalar;
    if (equalsIgnoreCase(name, "popcount"))
        return QkKernel::kPopcount;
    if (equalsIgnoreCase(name, "simd"))
        return QkKernel::kSimd;
    return std::nullopt;
}

bool
qkSimdAvailable()
{
    static const bool available = [] {
        const simd::CpuFeatures &f = simd::cpuFeatures();
        return simd::qkAvx2Compiled() && f.avx2 && f.os_ymm;
    }();
    return available;
}

QkKernel
defaultQkKernel()
{
    return qkSimdAvailable() ? QkKernel::kSimd : QkKernel::kPopcount;
}

QkKernel
resolveQkKernel(QkKernel requested)
{
    if (const char *env = std::getenv(kQkKernelEnv)) {
        if (const auto k = qkKernelFromName(env)) {
            requested = *k;
        } else if (equalsIgnoreCase(env, "auto")) {
            requested = defaultQkKernel();
        } else {
            // Atomic: padeAttention resolves per call, possibly from
            // many BatchDriver workers at once.
            static std::atomic<bool> warned{false};
            if (!warned.exchange(true, std::memory_order_relaxed))
                std::fprintf(stderr,
                             "pade: ignoring %s=\"%s\" (expected "
                             "scalar|popcount|simd|auto)\n",
                             kQkKernelEnv, env);
        }
    }
    if (requested == QkKernel::kSimd && !qkSimdAvailable())
        return QkKernel::kPopcount;
    return requested;
}

} // namespace pade

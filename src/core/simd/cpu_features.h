/**
 * @file
 * Runtime CPU-feature detection for the ISA-dispatched kernels.
 *
 * The library is compiled for the baseline ISA (plus -mpopcnt); only
 * the files under src/core/simd/ are built with wider ISA flags, and
 * they are entered solely through dispatch decisions made against the
 * flags probed here. The probe uses CPUID directly (leaf 1 for
 * POPCNT/AVX/OSXSAVE, leaf 7 for AVX2) and XGETBV to confirm the OS
 * actually saves the YMM state — an AVX2 CPUID bit without XCR0[2:1]
 * set (e.g. a hypervisor with XSAVE masked) must not dispatch to AVX2
 * code. On non-x86 targets every flag probes false.
 */

#ifndef PADE_CORE_SIMD_CPU_FEATURES_H
#define PADE_CORE_SIMD_CPU_FEATURES_H

namespace pade {
namespace simd {

/** ISA capabilities of the executing CPU (all false off-x86). */
struct CpuFeatures
{
    bool popcnt = false; //!< hardware POPCNT (CPUID.1:ECX[23])
    bool avx = false;    //!< AVX (CPUID.1:ECX[28])
    bool avx2 = false;   //!< AVX2 (CPUID.7.0:EBX[5])
    bool os_ymm = false; //!< OS saves XMM+YMM state (XCR0[2:1] = 11)
};

/**
 * Cached CPUID probe of the executing CPU; the first call runs CPUID,
 * later calls return the cached result. Thread-safe (C++11 static
 * init).
 */
const CpuFeatures &cpuFeatures();

} // namespace simd
} // namespace pade

#endif // PADE_CORE_SIMD_CPU_FEATURES_H

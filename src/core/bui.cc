#include "core/bui.h"

#include <cassert>

namespace pade {

BuiTable
computeBuiTable(std::span<const int8_t> q, int bits)
{
    assert(bits >= 2 && bits <= BuiTable::kMaxPlanes);
    BuiTable t;
    t.bits = bits;
    for (int8_t v : q) {
        t.qsum += v;
        if (v > 0)
            t.qsum_pos += v;
        else
            t.qsum_neg += v;
    }
    for (int r = 0; r < bits; r++) {
        const int64_t m = (1LL << (bits - 1 - r)) - 1;
        t.hi[r] = m * t.qsum_pos;
        t.lo[r] = m * t.qsum_neg;
    }
    return t;
}

std::pair<double, double>
combineGroupBui(std::span<const int64_t> group_lo,
                std::span<const int64_t> group_hi,
                std::span<const float> group_scales)
{
    assert(group_lo.size() == group_hi.size() &&
           group_lo.size() == group_scales.size());
    double lo = 0.0;
    double hi = 0.0;
    for (size_t g = 0; g < group_lo.size(); g++) {
        const double s = group_scales[g];
        assert(s >= 0.0f);
        lo += s * static_cast<double>(group_lo[g]);
        hi += s * static_cast<double>(group_hi[g]);
    }
    return {lo, hi};
}

} // namespace pade

#include "core/bit_serial.h"

#include <algorithm>
#include <cassert>

#include "common/math_util.h"

namespace pade {

PlaneWork
planeWork(const BitPlaneSet &keys, int key, int plane, int subgroup,
          int muxes)
{
    assert(subgroup > 0 && muxes > 0);
    PlaneWork w;
    w.cycles_bs = 0;
    w.cycles_naive = 0;

    const int n = keys.numCols();
    for (int base = 0; base < n; base += subgroup) {
        const int hi = std::min(n, base + subgroup);
        int ones = 0;
        for (int d = base; d < hi; d++)
            if (keys.bit(key, plane, d))
                ones++;
        const int size = hi - base;
        const int zeros = size - ones;
        const int sel = std::min(ones, zeros);

        w.selected_naive += ones;
        w.selected_bs += sel;
        if (zeros < ones)
            w.zero_mode_groups++;

        w.cycles_bs = std::max(w.cycles_bs,
                               static_cast<int>(ceilDiv(sel, muxes)));
        w.cycles_naive = std::max(
            w.cycles_naive, static_cast<int>(ceilDiv(ones, muxes)));
    }
    // A plane always costs at least one cycle to issue/decide.
    w.cycles_bs = std::max(w.cycles_bs, 1);
    w.cycles_naive = std::max(w.cycles_naive, 1);
    return w;
}

int64_t
planeDelta(std::span<const int8_t> q, const BitPlaneSet &keys, int key,
           int plane)
{
    assert(static_cast<int>(q.size()) == keys.numCols());
    int64_t sum = 0;
    auto words = keys.plane(key, plane);
    for (int w = 0; w < keys.wordsPerPlane(); w++) {
        uint64_t bits = words[w];
        while (bits) {
            const int b = __builtin_ctzll(bits);
            sum += q[w * 64 + b];
            bits &= bits - 1;
        }
    }
    return static_cast<int64_t>(keys.planeWeight(plane)) * sum;
}

int64_t
planeDeltaBs(std::span<const int8_t> q, const BitPlaneSet &keys, int key,
             int plane, int subgroup)
{
    assert(static_cast<int>(q.size()) == keys.numCols());
    const int n = keys.numCols();
    int64_t sum = 0;
    for (int base = 0; base < n; base += subgroup) {
        const int hi = std::min(n, base + subgroup);
        int ones = 0;
        int64_t group_qsum = 0;
        int64_t ones_sum = 0;
        int64_t zeros_sum = 0;
        for (int d = base; d < hi; d++) {
            group_qsum += q[d];
            if (keys.bit(key, plane, d)) {
                ones++;
                ones_sum += q[d];
            } else {
                zeros_sum += q[d];
            }
        }
        const int zeros = (hi - base) - ones;
        // Accumulate the rarer side; recover the 1-side sum via the
        // precomputed group Qsum when operating in 0-mode.
        if (zeros < ones)
            sum += group_qsum - zeros_sum;
        else
            sum += ones_sum;
    }
    return static_cast<int64_t>(keys.planeWeight(plane)) * sum;
}

} // namespace pade

#include "core/bit_serial.h"

#include <algorithm>
#include <bit>
#include <cassert>

#include "common/math_util.h"

namespace pade {
namespace {

/**
 * Extract @p size bits of a packed plane starting at bit @p base (the
 * bits of one GSAT sub-group), handling groups that straddle a word
 * boundary. Padding beyond the plane's column count is zero in the
 * packed storage, so the tail group needs no special casing beyond the
 * size mask. Requires size in [1, 64].
 */
uint64_t
groupBits(std::span<const uint64_t> words, int base, int size)
{
    const int w = base / 64;
    const int off = base % 64;
    uint64_t bits = words[w] >> off;
    if (off + size > 64)
        bits |= words[w + 1] << (64 - off);
    if (size < 64)
        bits &= (1ULL << size) - 1;
    return bits;
}

} // namespace

PlaneWork
planeWork(const BitPlaneSet &keys, int key, int plane, int subgroup,
          int muxes)
{
    assert(subgroup > 0 && subgroup <= 64 && muxes > 0);
    PlaneWork w;
    w.cycles_bs = 0;
    w.cycles_naive = 0;

    const int n = keys.numCols();
    auto words = keys.plane(key, plane);
    for (int base = 0; base < n; base += subgroup) {
        const int size = std::min(subgroup, n - base);
        const int ones =
            std::popcount(groupBits(words, base, size));
        const int zeros = size - ones;
        const int sel = std::min(ones, zeros);

        w.selected_naive += ones;
        w.selected_bs += sel;
        if (zeros < ones)
            w.zero_mode_groups++;

        w.cycles_bs = std::max(w.cycles_bs,
                               static_cast<int>(ceilDiv(sel, muxes)));
        w.cycles_naive = std::max(
            w.cycles_naive, static_cast<int>(ceilDiv(ones, muxes)));
    }
    // A plane always costs at least one cycle to issue/decide.
    w.cycles_bs = std::max(w.cycles_bs, 1);
    w.cycles_naive = std::max(w.cycles_naive, 1);
    return w;
}

int64_t
planeDelta(const QueryPlanes &q, const BitPlaneSet &keys, int key,
           int plane)
{
    assert(q.numCols() == keys.numCols());
    return static_cast<int64_t>(keys.planeWeight(plane)) *
        q.maskedSum(keys.plane(key, plane));
}

int64_t
planeDeltaSimd(const QueryPlanes &q, const BitPlaneSet &keys, int key,
               int plane)
{
    assert(q.numCols() == keys.numCols());
    return static_cast<int64_t>(keys.planeWeight(plane)) *
        q.maskedSumSimd(keys.plane(key, plane));
}

int64_t
planeDeltaScalar(std::span<const int8_t> q, const BitPlaneSet &keys,
                 int key, int plane)
{
    assert(static_cast<int>(q.size()) == keys.numCols());
    int64_t sum = 0;
    auto words = keys.plane(key, plane);
    for (int w = 0; w < keys.wordsPerPlane(); w++) {
        uint64_t bits = words[w];
        while (bits) {
            const int b = __builtin_ctzll(bits);
            sum += q[w * 64 + b];
            bits &= bits - 1;
        }
    }
    return static_cast<int64_t>(keys.planeWeight(plane)) * sum;
}

int64_t
planeDeltaBs(std::span<const int8_t> q, const BitPlaneSet &keys, int key,
             int plane, int subgroup)
{
    assert(static_cast<int>(q.size()) == keys.numCols());
    assert(subgroup > 0 && subgroup <= 64);
    const int n = keys.numCols();
    auto words = keys.plane(key, plane);
    int64_t sum = 0;
    for (int base = 0; base < n; base += subgroup) {
        const int size = std::min(subgroup, n - base);
        const uint64_t bits = groupBits(words, base, size);
        const int ones = std::popcount(bits);
        const int zeros = size - ones;
        if (zeros < ones) {
            // 0-mode (Eq. 6): walk only the rarer zero bits and
            // recover the 1-side sum via the sub-group Qsum.
            int64_t qsum = 0;
            for (int d = 0; d < size; d++)
                qsum += q[base + d];
            uint64_t zbits = ~bits;
            if (size < 64)
                zbits &= (1ULL << size) - 1;
            int64_t zeros_sum = 0;
            while (zbits) {
                const int b = __builtin_ctzll(zbits);
                zeros_sum += q[base + b];
                zbits &= zbits - 1;
            }
            sum += qsum - zeros_sum;
        } else {
            // 1-mode: accumulate the set bits directly.
            uint64_t obits = bits;
            int64_t ones_sum = 0;
            while (obits) {
                const int b = __builtin_ctzll(obits);
                ones_sum += q[base + b];
                obits &= obits - 1;
            }
            sum += ones_sum;
        }
    }
    return static_cast<int64_t>(keys.planeWeight(plane)) * sum;
}

} // namespace pade

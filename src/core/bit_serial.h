/**
 * @file
 * Bidirectional-sparsity (BS) bit-serial dot-product kernels — paper
 * §IV-B, Eqs. (5)(6).
 *
 * Per bit plane b of a key, the partial contribution is
 *   2^w_b * sum_{d : k_d^b = 1} q_d
 * and, because bits are binary,
 *   sum_{bit=1} q = Qsum - sum_{bit=0} q,
 * so the hardware may accumulate over whichever bit value is rarer
 * ("0-mode" vs "1-mode"), bounding the selected elements at 50%. PADE
 * applies the mode choice per 8-dim GSAT sub-group, which also bounds
 * the per-sub-group element count at 4 (the paper's 4x 5:1 multiplexer
 * argument, §V-D).
 *
 * These kernels return both the numeric plane delta and the operation
 * counts the cycle model consumes.
 */

#ifndef PADE_CORE_BIT_SERIAL_H
#define PADE_CORE_BIT_SERIAL_H

#include <cstdint>
#include <span>

#include "core/bui.h"
#include "quant/bitplane.h"

namespace pade {

/** Work accounting for one (key, plane) issue on one lane. */
struct PlaneWork
{
    /** Elements selected with per-sub-group BS (sum over groups). */
    int selected_bs = 0;
    /** Elements selected accumulating ones only (naive). */
    int selected_naive = 0;
    /** Cycles with BS through 4 muxes/sub-group (max over groups). */
    int cycles_bs = 1;
    /** Cycles without BS (ones mode, max over groups). */
    int cycles_naive = 1;
    /** Sub-groups that used 0-mode (needs a subtract correction). */
    int zero_mode_groups = 0;
};

/**
 * Count per-sub-group work for one bit plane of one key.
 *
 * @param keys bit planes
 * @param key key index
 * @param plane plane index (0 = MSB)
 * @param subgroup sub-group size (paper: 8)
 * @param muxes parallel mux lanes per sub-group (paper: 4)
 */
PlaneWork planeWork(const BitPlaneSet &keys, int key, int plane,
                    int subgroup = 8, int muxes = 4);

/**
 * Numeric contribution of plane @p plane of key @p key to Q.K:
 * weight(plane) * sum_{bit=1} q. Word-parallel form: the query is
 * bit-plane-packed too, so the per-plane sum reduces to weighted
 * popcount(qplane AND kplane) over the packed 64-bit words
 * (QkKernel::kPopcount). Bit-identical to planeDeltaScalar().
 */
int64_t planeDelta(const QueryPlanes &q, const BitPlaneSet &keys,
                   int key, int plane);

/**
 * planeDelta() through the AVX2 backend (QkKernel::kSimd, the hot
 * path's default where supported): a value-domain masked byte sum
 * for short rows and a vpshufb-nibble / Harley-Seal plane reduction
 * for wide ones — see the strategy comment in src/core/simd/qk_avx2.h.
 * Bit-identical to both other kernels; silently falls back to
 * planeDelta() when AVX2 is compiled out or the CPU lacks it.
 */
int64_t planeDeltaSimd(const QueryPlanes &q, const BitPlaneSet &keys,
                       int key, int plane);

/**
 * Scalar reference implementation of planeDelta(): walks every set key
 * bit with ctz and accumulates q elements one by one (1-mode). Kept as
 * the exactness oracle and selectable via QkKernel::kScalar.
 */
int64_t planeDeltaScalar(std::span<const int8_t> q,
                         const BitPlaneSet &keys, int key, int plane);

/**
 * Same value computed the bidirectional way: per sub-group, accumulate
 * the rarer bit value and correct with the sub-group Qsum (Eq. 6).
 * Exists to prove numeric equivalence of the hardware trick; returns
 * bit-identical results to planeDelta(). The mode decision is made
 * word-parallel (popcount of the packed sub-group bits) and only the
 * rarer side's elements are ever touched. @p subgroup must be <= 64.
 */
int64_t planeDeltaBs(std::span<const int8_t> q, const BitPlaneSet &keys,
                     int key, int plane, int subgroup = 8);

} // namespace pade

#endif // PADE_CORE_BIT_SERIAL_H

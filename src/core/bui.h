/**
 * @file
 * Bit-wise Uncertainty Interval (BUI) tables — paper §IV-A, Fig. 6.
 *
 * For a query row Q_i and a key processed through bit planes 0..r, the
 * exact dot product is bounded by
 *   S^r + I^{r,min}  <=  Q_i . K_j  <=  S^r + I^{r,max}
 * where S^r assumes all unknown key bits are zero and the intervals
 * depend only on the query:
 *   I^{r,max} = M_r * sum(q_d | q_d > 0),
 *   I^{r,min} = M_r * sum(q_d | q_d < 0),
 *   M_r = 2^{p-1-r} - 1  (remaining positive bit weight).
 * The hardware's BUI Generator precomputes the p interval pairs per
 * query into a LUT (Fig. 11(c)); this class is that LUT.
 */

#ifndef PADE_CORE_BUI_H
#define PADE_CORE_BUI_H

#include <array>
#include <cstdint>
#include <span>
#include <utility>

namespace pade {

/** Per-query uncertainty-interval LUT plus BS helper sums. */
struct BuiTable
{
    static constexpr int kMaxPlanes = 8;

    int bits = 8;
    /** I^{r,min} (non-positive) for r = 0..bits-1. */
    std::array<int64_t, kMaxPlanes> lo{};
    /** I^{r,max} (non-negative) for r = 0..bits-1. */
    std::array<int64_t, kMaxPlanes> hi{};
    /** Sum of all query entries (bidirectional-sparsity zero mode). */
    int64_t qsum = 0;
    /** Sum of positive / negative entries (interval building blocks). */
    int64_t qsum_pos = 0;
    int64_t qsum_neg = 0;

    int64_t lower(int r) const { return lo[r]; }
    int64_t upper(int r) const { return hi[r]; }
};

/**
 * Build the BUI table for a query row.
 *
 * @param q full-precision (int8) query entries
 * @param bits key bit-width p (intervals cover planes 0..p-1)
 */
BuiTable computeBuiTable(std::span<const int8_t> q, int bits = 8);

/**
 * Group-wise BUI combination for MXINT-style quantization (paper
 * Fig. 25): the overall interval is the sum of per-group intervals
 * scaled by each group's dequantization factor.
 *
 * @param group_lo per-group I^{r,min} values (already per-plane r)
 * @param group_hi per-group I^{r,max} values
 * @param group_scales per-group combined scale (dQ*dK/dA)
 * @return {overall_lo, overall_hi} in the output scale
 */
std::pair<double, double>
combineGroupBui(std::span<const int64_t> group_lo,
                std::span<const int64_t> group_hi,
                std::span<const float> group_scales);

} // namespace pade

#endif // PADE_CORE_BUI_H

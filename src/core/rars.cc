#include "core/rars.h"

#include <algorithm>
#include <cassert>
#include <map>
#include <set>

namespace pade {

RarsSchedule
scheduleNaive(const std::vector<std::vector<int>> &needs, int per_score)
{
    assert(per_score > 0);
    RarsSchedule sched;
    std::vector<size_t> cursor(needs.size(), 0);

    bool remaining = true;
    while (remaining) {
        remaining = false;
        std::set<int> round_set;
        for (size_t s = 0; s < needs.size(); s++) {
            for (int t = 0; t < per_score && cursor[s] < needs[s].size();
                 t++) {
                round_set.insert(needs[s][cursor[s]++]);
            }
            if (cursor[s] < needs[s].size())
                remaining = true;
        }
        if (!round_set.empty()) {
            sched.rounds.emplace_back(round_set.begin(),
                                      round_set.end());
            sched.loads += round_set.size();
        }
    }
    return sched;
}

RarsSchedule
scheduleRars(const std::vector<std::vector<int>> &needs, int per_score)
{
    assert(per_score > 0);
    RarsSchedule sched;

    // pending[v] = set of score rows still needing V v.
    std::map<int, std::set<int>> pending;
    for (size_t s = 0; s < needs.size(); s++)
        for (int v : needs[s])
            pending[v].insert(static_cast<int>(s));

    while (!pending.empty()) {
        std::vector<int> slots(needs.size(), per_score);
        std::vector<int> round;

        while (true) {
            // Pick the V with the most slot-available consumers;
            // tie-break toward fewer total remaining consumers.
            int best_v = -1;
            int best_avail = 0;
            size_t best_total = 0;
            for (const auto &[v, consumers] : pending) {
                int avail = 0;
                for (int s : consumers)
                    if (slots[s] > 0)
                        avail++;
                if (avail == 0)
                    continue;
                const bool better = avail > best_avail ||
                    (avail == best_avail &&
                     consumers.size() < best_total);
                if (best_v < 0 || better) {
                    best_v = v;
                    best_avail = avail;
                    best_total = consumers.size();
                }
            }
            if (best_v < 0)
                break;

            round.push_back(best_v);
            auto &consumers = pending[best_v];
            for (auto it = consumers.begin(); it != consumers.end();) {
                if (slots[*it] > 0) {
                    slots[*it]--;
                    it = consumers.erase(it);
                } else {
                    ++it;
                }
            }
            if (consumers.empty())
                pending.erase(best_v);
        }

        if (round.empty())
            break; // defensive: cannot make progress
        // Round entries stay in load (greedy-pick) order: consumers'
        // round slots are allocated in that order, so replaying the
        // schedule requires it.
        sched.loads += round.size();
        sched.rounds.push_back(std::move(round));
    }
    return sched;
}

} // namespace pade

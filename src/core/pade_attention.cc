#include "core/pade_attention.h"

#include <cassert>

#include "attention/online_softmax.h"
#include "core/bit_serial.h"
#include "core/bui.h"
#include "core/guard_filter.h"

namespace pade {

std::vector<int>
istaScanOrder(int seq_len, int tile, bool head_tail)
{
    assert(tile > 0);
    const int num_tiles = (seq_len + tile - 1) / tile;
    std::vector<int> tiles;
    if (head_tail) {
        tiles = headTailOrder(num_tiles);
    } else {
        tiles.resize(num_tiles);
        for (int t = 0; t < num_tiles; t++)
            tiles[t] = t;
    }

    std::vector<int> order;
    order.reserve(seq_len);
    for (int t : tiles) {
        const int lo = t * tile;
        const int hi = std::min(seq_len, lo + tile);
        for (int j = lo; j < hi; j++)
            order.push_back(j);
    }
    return order;
}

PadeResult
padeAttention(const QuantizedHead &head, const PadeConfig &cfg)
{
    const int p = head.q.values.rows();
    const int s = head.k.values.rows();
    const int h = head.v.values.cols();
    const int bits = head.k_planes.numPlanes();

    PadeResult res;
    res.out = MatrixF(p, h);
    res.keep = Matrix<uint8_t>(p, s);
    res.planes = Matrix<uint8_t>(p, s);
    res.retained.resize(p);

    const std::vector<int> order = istaScanOrder(s, cfg.tile_bc,
                                                 cfg.head_tail);

    // Per-(key, plane) work counts are query-independent; cache them
    // lazily the first time a plane is consumed by any row.
    std::vector<PlaneWork> work_cache(
        static_cast<size_t>(s) * bits);
    std::vector<uint8_t> work_ready(static_cast<size_t>(s) * bits, 0);
    auto workFor = [&](int key, int r) -> const PlaneWork & {
        const size_t idx = static_cast<size_t>(key) * bits + r;
        if (!work_ready[idx]) {
            work_cache[idx] = planeWork(head.k_planes, key, r,
                                        cfg.subgroup, cfg.muxes);
            work_ready[idx] = 1;
        }
        return work_cache[idx];
    };

    const MatrixF vf = dequantize(head.v);

    for (int i = 0; i < p; i++) {
        auto q = head.q.values.row(i);
        const BuiTable bui = computeBuiTable(q, bits);
        GuardFilter guard(cfg.alpha, cfg.radius, head.logit_scale);

        // Absolute position of this query for causal masking: queries
        // occupy the last p positions of the key sequence.
        const int qpos = s - p + i;

        std::vector<int64_t> retained_scores;
        for (int j : order) {
            if (cfg.causal && j > qpos)
                continue;
            res.stats.keys_total++;
            res.stats.planes_total += bits;

            int64_t score = 0;
            bool pruned = false;
            for (int r = 0; r < bits; r++) {
                score += planeDelta(q, head.k_planes, j, r);
                res.planes.at(i, j) = static_cast<uint8_t>(r + 1);
                res.stats.planes_processed++;

                const PlaneWork &w = workFor(j, r);
                res.stats.ops_bs += w.selected_bs;
                res.stats.ops_naive += w.selected_naive;

                guard.observe(score + bui.lower(r));
                if (cfg.guard_enabled &&
                    guard.shouldPrune(score + bui.upper(r))) {
                    pruned = true;
                    break;
                }
            }
            if (!pruned) {
                res.keep.at(i, j) = 1;
                res.stats.keys_retained++;
                res.retained[i].push_back(j);
                retained_scores.push_back(score);
            }
        }
        res.stats.threshold_updates += guard.updates();

        // ISTA value stage: online softmax over retained keys, tiled
        // by Bc in retained (scan) order. Retained scores are exact.
        OnlineSoftmaxRow acc(h);
        const auto &ids = res.retained[i];
        for (size_t base = 0; base < ids.size();
             base += static_cast<size_t>(cfg.tile_bc)) {
            const size_t hi = std::min(
                ids.size(), base + static_cast<size_t>(cfg.tile_bc));
            std::vector<float> scores;
            std::vector<std::span<const float>> vals;
            for (size_t t = base; t < hi; t++) {
                scores.push_back(head.logit_scale *
                                 static_cast<float>(retained_scores[t]));
                vals.push_back(vf.row(ids[t]));
            }
            acc.update(scores, vals);
        }
        res.stats.max_updates += acc.maxUpdates();
        res.stats.rescale_ops += acc.rescaleOps();

        const std::vector<float> row = acc.finalize();
        for (int d = 0; d < h; d++)
            res.out.at(i, d) = row[d];
    }
    return res;
}

} // namespace pade

#include "core/pade_attention.h"

#include <algorithm>
#include <cassert>

#include "core/bui.h"
#include "core/guard_filter.h"
#include "core/simd/qk_avx2.h"
#include "runtime/thread_pool.h"

namespace pade {

std::vector<int>
istaScanOrder(int seq_len, int tile, bool head_tail)
{
    std::vector<int> order;
    istaScanOrderInto(seq_len, tile, head_tail, order);
    return order;
}

void
istaScanOrderInto(int seq_len, int tile, bool head_tail,
                  std::vector<int> &out)
{
    assert(tile > 0);
    const int num_tiles = (seq_len + tile - 1) / tile;
    out.clear();
    out.reserve(seq_len);
    const auto pushTile = [&](int t) {
        const int lo = t * tile;
        const int hi = std::min(seq_len, lo + tile);
        for (int j = lo; j < hi; j++)
            out.push_back(j);
    };
    if (!head_tail) {
        for (int t = 0; t < num_tiles; t++)
            pushTile(t);
        return;
    }
    // headTailOrder()'s interleave, walked directly so this path is
    // genuinely allocation-free once `out` has capacity (the decode
    // engine's per-token contract).
    int head = 0;
    int tail = num_tiles - 1;
    bool take_head = true;
    while (head <= tail) {
        pushTile(take_head ? head++ : tail--);
        take_head = !take_head;
    }
}

void
istaScanOrderInto(int seq_len, int tile, bool head_tail,
                  int sink_tokens, int window_start,
                  std::vector<int> &out)
{
    assert(tile > 0);
    const int sink = std::clamp(sink_tokens, 0, seq_len);
    const int win = std::clamp(window_start, 0, seq_len);
    const int num_tiles = (seq_len + tile - 1) / tile;
    // Live tiles form a prefix [0, head_live) — tiles touching the
    // pinned sinks — plus a suffix [tail_live, num_tiles) — tiles
    // touching the recency window. Everything between is dead and the
    // walk below never visits it. When the ranges overlap
    // (tail_live < head_live) every tile is live.
    const int head_live = (sink + tile - 1) / tile;
    const int tail_live = win < seq_len ? win / tile : num_tiles;
    out.clear();
    const auto pushTile = [&](int t) {
        const int lo = t * tile;
        const int hi = std::min(seq_len, lo + tile);
        for (int j = lo; j < hi; j++)
            if (j < sink || j >= win)
                out.push_back(j);
    };
    if (!head_tail) {
        for (int t = 0; t < head_live; t++)
            pushTile(t);
        for (int t = std::max(head_live, tail_live); t < num_tiles; t++)
            pushTile(t);
        return;
    }
    // Same alternating cursor walk as the full order so live tiles
    // appear in identical relative order; dead tiles are skipped, and
    // once both cursors sit in the dead middle nothing further can be
    // emitted.
    int head = 0;
    int tail = num_tiles - 1;
    bool take_head = true;
    while (head <= tail) {
        if (head >= head_live && tail < tail_live)
            break;
        const int t = take_head ? head++ : tail--;
        take_head = !take_head;
        if (t < head_live || t >= tail_live)
            pushTile(t);
    }
}

PruneStats &
PruneStats::operator+=(const PruneStats &o)
{
    planes_processed += o.planes_processed;
    planes_total += o.planes_total;
    keys_retained += o.keys_retained;
    keys_total += o.keys_total;
    ops_bs += o.ops_bs;
    ops_naive += o.ops_naive;
    max_updates += o.max_updates;
    rescale_ops += o.rescale_ops;
    threshold_updates += o.threshold_updates;
    return *this;
}

PadeResult
padeAttention(const QuantizedHead &head, const PadeConfig &cfg,
              PadeWorkspace *ws_in)
{
    const int p = head.q.values.rows();
    const int s = head.k.values.rows();
    const int h = head.v.values.cols();
    const int bits = head.k_planes.numPlanes();
    // Final kernel decision: config request + PADE_QK_KERNEL override
    // + capability clamp (kSimd degrades to kPopcount off-AVX2).
    const QkKernel kernel = resolveQkKernel(cfg.qk_kernel);
    const bool packed_qk = kernel != QkKernel::kScalar;

    PadeWorkspace local_ws;
    PadeWorkspace &ws = ws_in ? *ws_in : local_ws;

    PadeResult res;
    res.out = MatrixF(p, h);
    res.keep = Matrix<uint8_t>(p, s);
    res.planes = Matrix<uint8_t>(p, s);
    res.retained.resize(p);

    const std::vector<int> order = istaScanOrder(s, cfg.tile_bc,
                                                 cfg.head_tail);

    // Per-(key, plane) work counts are query-independent: build the
    // whole table eagerly (one pass over the packed planes, parallel
    // across keys when the workspace carries a pool) so the per-query
    // loop below is a pure table lookup. A workspace that already
    // holds the table for these exact planes (pointer + revision +
    // GSAT geometry match) skips the rebuild entirely — the reuse the
    // GQA serving path depends on, where heads/kv_heads query heads
    // score one shared plane set back to back.
    const bool table_cached = ws.plane_work_src == &head.k_planes &&
        ws.plane_work_revision == head.k_planes.revision() &&
        ws.plane_work_subgroup == cfg.subgroup &&
        ws.plane_work_muxes == cfg.muxes;
    if (!table_cached) {
        ws.plane_work.resize(static_cast<size_t>(s) * bits);
        auto workRowFor = [&](int key) {
            for (int r = 0; r < bits; r++)
                ws.plane_work[static_cast<size_t>(key) * bits + r] =
                    planeWork(head.k_planes, key, r, cfg.subgroup,
                              cfg.muxes);
        };
        if (ws.pool && ws.pool->threadCount() > 1) {
            parallelFor(*ws.pool, s, workRowFor);
        } else {
            for (int key = 0; key < s; key++)
                workRowFor(key);
        }
        ws.plane_work_src = &head.k_planes;
        ws.plane_work_revision = head.k_planes.revision();
        ws.plane_work_subgroup = cfg.subgroup;
        ws.plane_work_muxes = cfg.muxes;
        ws.plane_work_builds++;
    }

    const MatrixF vf = dequantize(head.v);

    ws.tile_scores.resize(static_cast<size_t>(cfg.tile_bc));
    for (int i = 0; i < p; i++) {
        auto q = head.q.values.row(i);
        if (packed_qk)
            ws.qplanes.assign(q);
        // Hoisted SIMD dispatch state: kSimd survived resolveQkKernel
        // only if the backend is available, so the view is safe to
        // build here — once per query row, not per (key, plane) call.
        const bool simd_qk = kernel == QkKernel::kSimd;
        const simd::QPlaneView qview =
            simd_qk ? ws.qplanes.simdView() : simd::QPlaneView{};
        const BuiTable bui = computeBuiTable(q, bits);
        GuardFilter guard(cfg.alpha, cfg.radius, head.logit_scale);

        // Absolute position of this query for causal masking: queries
        // occupy the last p positions of the key sequence.
        const int qpos = s - p + i;

        ws.retained_scores.clear();
        for (int j : order) {
            if (cfg.causal && j > qpos)
                continue;
            res.stats.keys_total++;
            res.stats.planes_total += bits;

            int64_t score = 0;
            bool pruned = false;
            for (int r = 0; r < bits; r++) {
                score += simd_qk
                    ? static_cast<int64_t>(
                          head.k_planes.planeWeight(r)) *
                        simd::maskedSumAvx2(
                            qview, head.k_planes.plane(j, r).data(),
                            head.k_planes.wordsPerPlane())
                    : packed_qk
                    ? planeDelta(ws.qplanes, head.k_planes, j, r)
                    : planeDeltaScalar(q, head.k_planes, j, r);
                res.planes.at(i, j) = static_cast<uint8_t>(r + 1);
                res.stats.planes_processed++;

                const PlaneWork &w =
                    ws.plane_work[static_cast<size_t>(j) * bits + r];
                res.stats.ops_bs += w.selected_bs;
                res.stats.ops_naive += w.selected_naive;

                guard.observe(score + bui.lower(r));
                if (cfg.guard_enabled &&
                    guard.shouldPrune(score + bui.upper(r))) {
                    pruned = true;
                    break;
                }
            }
            if (!pruned) {
                res.keep.at(i, j) = 1;
                res.stats.keys_retained++;
                res.retained[i].push_back(j);
                ws.retained_scores.push_back(score);
            }
        }
        res.stats.threshold_updates += guard.updates();

        // ISTA value stage: online softmax over retained keys, tiled
        // by Bc in retained (scan) order. Retained scores are exact.
        // All buffers live in the workspace — no per-query allocation.
        ws.softmax.reset(h);
        const std::span<const int> ids(res.retained[i]);
        for (size_t base = 0; base < ids.size();
             base += static_cast<size_t>(cfg.tile_bc)) {
            const size_t hi = std::min(
                ids.size(), base + static_cast<size_t>(cfg.tile_bc));
            const size_t n = hi - base;
            for (size_t t = 0; t < n; t++)
                ws.tile_scores[t] = head.logit_scale *
                    static_cast<float>(ws.retained_scores[base + t]);
            ws.softmax.update(
                std::span<const float>(ws.tile_scores).first(n), vf,
                ids.subspan(base, n));
        }
        res.stats.max_updates += ws.softmax.maxUpdates();
        res.stats.rescale_ops += ws.softmax.rescaleOps();
        ws.softmax.finalizeInto(res.out.row(i));
    }
    return res;
}

} // namespace pade

/**
 * @file
 * Minimal row-major dense matrix used throughout the repository.
 *
 * Attention operands are 2-D (sequence x hidden), so a simple contiguous
 * matrix with row spans covers every use case; no strided views or
 * broadcasting are needed.
 */

#ifndef PADE_TENSOR_MATRIX_H
#define PADE_TENSOR_MATRIX_H

#include <algorithm>
#include <cassert>
#include <cstddef>
#include <cstdint>
#include <span>
#include <utility>
#include <vector>

namespace pade {

/**
 * Row-major dense matrix of @p T with contiguous storage.
 */
template <typename T>
class Matrix
{
  public:
    Matrix() = default;

    /** Construct rows x cols, zero-initialized. */
    Matrix(int rows, int cols)
        : rows_(rows), cols_(cols),
          data_(static_cast<std::size_t>(rows) * cols, T{})
    {
        assert(rows >= 0 && cols >= 0);
    }

    /** Construct from explicit data (size must equal rows*cols). */
    Matrix(int rows, int cols, std::vector<T> data)
        : rows_(rows), cols_(cols), data_(std::move(data))
    {
        assert(data_.size() == static_cast<std::size_t>(rows) * cols);
    }

    int rows() const { return rows_; }
    int cols() const { return cols_; }
    std::size_t size() const { return data_.size(); }
    bool empty() const { return data_.empty(); }

    T &
    at(int r, int c)
    {
        assert(r >= 0 && r < rows_ && c >= 0 && c < cols_);
        return data_[static_cast<std::size_t>(r) * cols_ + c];
    }

    const T &
    at(int r, int c) const
    {
        assert(r >= 0 && r < rows_ && c >= 0 && c < cols_);
        return data_[static_cast<std::size_t>(r) * cols_ + c];
    }

    T &operator()(int r, int c) { return at(r, c); }
    const T &operator()(int r, int c) const { return at(r, c); }

    /** Mutable span over one row. */
    std::span<T>
    row(int r)
    {
        assert(r >= 0 && r < rows_);
        return {data_.data() + static_cast<std::size_t>(r) * cols_,
                static_cast<std::size_t>(cols_)};
    }

    /** Const span over one row. */
    std::span<const T>
    row(int r) const
    {
        assert(r >= 0 && r < rows_);
        return {data_.data() + static_cast<std::size_t>(r) * cols_,
                static_cast<std::size_t>(cols_)};
    }

    T *data() { return data_.data(); }
    const T *data() const { return data_.data(); }

    /** Fill all entries with @p v. */
    void
    fill(T v)
    {
        std::fill(data_.begin(), data_.end(), v);
    }

    bool
    operator==(const Matrix &other) const
    {
        return rows_ == other.rows_ && cols_ == other.cols_ &&
               data_ == other.data_;
    }

  private:
    int rows_ = 0;
    int cols_ = 0;
    std::vector<T> data_;
};

/**
 * Cache block edges for the matmul kernels below. Sized so one block
 * pair (a few rows of A/B plus the C strip they touch) stays resident
 * in L1/L2 across the inner loops; exact values are uncritical, the
 * win is bounding the reuse distance instead of streaming whole
 * operand rows per output element.
 */
inline constexpr int kMatmulBlockRows = 64;
inline constexpr int kMatmulBlockCols = 256;

/** C = A * B^T ; A is (m x k), B is (n x k), C is (m x n). */
template <typename TA, typename TB, typename TC>
Matrix<TC>
matmulBt(const Matrix<TA> &a, const Matrix<TB> &b)
{
    assert(a.cols() == b.cols());
    const int m = a.rows();
    const int n = b.rows();
    const int kk = a.cols();
    Matrix<TC> c(m, n);
    // Block over B's rows so each strip of B is reused across every
    // row of A while still hot; both dot-product operands stream
    // contiguously. Raw pointers keep the inner loop free of
    // per-element bound asserts.
    for (int j0 = 0; j0 < n; j0 += kMatmulBlockRows) {
        const int j1 = std::min(n, j0 + kMatmulBlockRows);
        for (int i = 0; i < m; i++) {
            const TA *arow = a.data() +
                static_cast<std::size_t>(i) * kk;
            TC *crow = c.data() + static_cast<std::size_t>(i) * n;
            for (int j = j0; j < j1; j++) {
                const TB *brow = b.data() +
                    static_cast<std::size_t>(j) * kk;
                TC acc{};
                for (int k = 0; k < kk; k++)
                    acc += static_cast<TC>(arow[k]) *
                           static_cast<TC>(brow[k]);
                crow[j] = acc;
            }
        }
    }
    return c;
}

/** C = A * B ; A is (m x k), B is (k x n). */
template <typename TA, typename TB, typename TC>
Matrix<TC>
matmul(const Matrix<TA> &a, const Matrix<TB> &b)
{
    assert(a.cols() == b.rows());
    const int m = a.rows();
    const int kk = a.cols();
    const int n = b.cols();
    Matrix<TC> c(m, n);
    // i-k-j with k and j blocked: the C row segment accumulates in
    // cache across the k block, and the (k x j) panel of B is reused
    // by every row of A before eviction.
    for (int k0 = 0; k0 < kk; k0 += kMatmulBlockRows) {
        const int k1 = std::min(kk, k0 + kMatmulBlockRows);
        for (int j0 = 0; j0 < n; j0 += kMatmulBlockCols) {
            const int j1 = std::min(n, j0 + kMatmulBlockCols);
            for (int i = 0; i < m; i++) {
                const TA *arow = a.data() +
                    static_cast<std::size_t>(i) * kk;
                TC *crow = c.data() + static_cast<std::size_t>(i) * n;
                for (int k = k0; k < k1; k++) {
                    const TC av = static_cast<TC>(arow[k]);
                    const TB *brow = b.data() +
                        static_cast<std::size_t>(k) * n;
                    for (int j = j0; j < j1; j++)
                        crow[j] += av * static_cast<TC>(brow[j]);
                }
            }
        }
    }
    return c;
}

using MatrixF = Matrix<float>;
using MatrixI8 = Matrix<int8_t>;
using MatrixI32 = Matrix<int32_t>;

} // namespace pade

#endif // PADE_TENSOR_MATRIX_H

/**
 * @file
 * Minimal row-major dense matrix used throughout the repository.
 *
 * Attention operands are 2-D (sequence x hidden), so a simple contiguous
 * matrix with row spans covers every use case; no strided views or
 * broadcasting are needed.
 */

#ifndef PADE_TENSOR_MATRIX_H
#define PADE_TENSOR_MATRIX_H

#include <algorithm>
#include <cassert>
#include <cstddef>
#include <cstdint>
#include <span>
#include <utility>
#include <vector>

namespace pade {

/**
 * Row-major dense matrix of @p T with contiguous storage.
 */
template <typename T>
class Matrix
{
  public:
    Matrix() = default;

    /** Construct rows x cols, zero-initialized. */
    Matrix(int rows, int cols)
        : rows_(rows), cols_(cols),
          data_(static_cast<std::size_t>(rows) * cols, T{})
    {
        assert(rows >= 0 && cols >= 0);
    }

    /** Construct from explicit data (size must equal rows*cols). */
    Matrix(int rows, int cols, std::vector<T> data)
        : rows_(rows), cols_(cols), data_(std::move(data))
    {
        assert(data_.size() == static_cast<std::size_t>(rows) * cols);
    }

    int rows() const { return rows_; }
    int cols() const { return cols_; }
    std::size_t size() const { return data_.size(); }
    bool empty() const { return data_.empty(); }

    T &
    at(int r, int c)
    {
        assert(r >= 0 && r < rows_ && c >= 0 && c < cols_);
        return data_[static_cast<std::size_t>(r) * cols_ + c];
    }

    const T &
    at(int r, int c) const
    {
        assert(r >= 0 && r < rows_ && c >= 0 && c < cols_);
        return data_[static_cast<std::size_t>(r) * cols_ + c];
    }

    T &operator()(int r, int c) { return at(r, c); }
    const T &operator()(int r, int c) const { return at(r, c); }

    /** Mutable span over one row. */
    std::span<T>
    row(int r)
    {
        assert(r >= 0 && r < rows_);
        return {data_.data() + static_cast<std::size_t>(r) * cols_,
                static_cast<std::size_t>(cols_)};
    }

    /** Const span over one row. */
    std::span<const T>
    row(int r) const
    {
        assert(r >= 0 && r < rows_);
        return {data_.data() + static_cast<std::size_t>(r) * cols_,
                static_cast<std::size_t>(cols_)};
    }

    T *data() { return data_.data(); }
    const T *data() const { return data_.data(); }

    /** Fill all entries with @p v. */
    void
    fill(T v)
    {
        std::fill(data_.begin(), data_.end(), v);
    }

    bool
    operator==(const Matrix &other) const
    {
        return rows_ == other.rows_ && cols_ == other.cols_ &&
               data_ == other.data_;
    }

  private:
    int rows_ = 0;
    int cols_ = 0;
    std::vector<T> data_;
};

/** C = A * B^T ; A is (m x k), B is (n x k), C is (m x n). */
template <typename TA, typename TB, typename TC>
Matrix<TC>
matmulBt(const Matrix<TA> &a, const Matrix<TB> &b)
{
    assert(a.cols() == b.cols());
    Matrix<TC> c(a.rows(), b.rows());
    for (int i = 0; i < a.rows(); i++) {
        auto arow = a.row(i);
        for (int j = 0; j < b.rows(); j++) {
            auto brow = b.row(j);
            TC acc{};
            for (int k = 0; k < a.cols(); k++)
                acc += static_cast<TC>(arow[k]) *
                       static_cast<TC>(brow[k]);
            c.at(i, j) = acc;
        }
    }
    return c;
}

/** C = A * B ; A is (m x k), B is (k x n). */
template <typename TA, typename TB, typename TC>
Matrix<TC>
matmul(const Matrix<TA> &a, const Matrix<TB> &b)
{
    assert(a.cols() == b.rows());
    Matrix<TC> c(a.rows(), b.cols());
    for (int i = 0; i < a.rows(); i++) {
        for (int k = 0; k < a.cols(); k++) {
            const TC av = static_cast<TC>(a.at(i, k));
            for (int j = 0; j < b.cols(); j++)
                c.at(i, j) += av * static_cast<TC>(b.at(k, j));
        }
    }
    return c;
}

using MatrixF = Matrix<float>;
using MatrixI8 = Matrix<int8_t>;
using MatrixI32 = Matrix<int32_t>;

} // namespace pade

#endif // PADE_TENSOR_MATRIX_H

/**
 * @file
 * Synthetic attention workload generator.
 *
 * The paper evaluates on pretrained LLM/ViT checkpoints we cannot run
 * offline, but every PADE mechanism operates on the *attention score
 * distribution*, not on token semantics. This generator synthesizes
 * Q/K/V with the structure those models are documented to exhibit:
 *
 *  - a shared context direction so scores have a low-rank component,
 *  - heavy-tailed per-key importance ("vital tokens"; concentration
 *    controls the tail weight => exploitable sparsity),
 *  - an attention-sink boost on the first token and a recency boost on
 *    the latest tokens (StreamingLLM/locality observations the paper's
 *    head-tail interleaving exploits),
 *  - Gaussian residual noise giving per-query variation.
 *
 * Knobs map one-to-one onto the paper's benchmark axes: sequence length,
 * model concentration, dataset locality, QAT-flattened distributions.
 */

#ifndef PADE_WORKLOAD_GENERATOR_H
#define PADE_WORKLOAD_GENERATOR_H

#include <cstddef>
#include <cstdint>
#include <span>
#include <utility>
#include <vector>

#include "quant/bitplane.h"
#include "quant/quantizer.h"
#include "tensor/matrix.h"
#include "workload/model_config.h"

namespace pade {

/** Full specification of one synthetic attention head workload. */
struct WorkloadSpec
{
    int seq_len = 2048;     //!< number of keys/values
    int query_len = 8;      //!< number of query rows (1 for decode)
    int head_dim = 128;
    double concentration = 1.0; //!< heavy-tail strength (model knob)
    double locality = 0.5;      //!< sink + recency strength (data knob)
    bool qat_uniform = false;   //!< QAT-like flattened distribution
    uint64_t seed = 1;

    /** Convenience: build from model + dataset presets. */
    static WorkloadSpec fromPresets(const ModelConfig &m,
                                    const DatasetConfig &d,
                                    int query_len = 8, uint64_t seed = 1);
};

/** Float-precision operands of one attention head. */
struct AttentionHead
{
    MatrixF q; //!< (query_len x head_dim)
    MatrixF k; //!< (seq_len x head_dim)
    MatrixF v; //!< (seq_len x head_dim)
    float scale = 1.0f; //!< logit scale 1/sqrt(head_dim)
};

/** INT8-quantized operands plus key bit planes, ready for PADE. */
struct QuantizedHead
{
    Quantized q;
    Quantized k;
    Quantized v;
    BitPlaneSet k_planes;
    float logit_scale = 1.0f; //!< sQ*sK/sqrt(H): int score -> logit

    QuantizedHead(Quantized qq, Quantized kq, Quantized vq,
                  int bits, float scale)
        : q(std::move(qq)), k(std::move(kq)), v(std::move(vq)),
          k_planes(k.values, bits),
          logit_scale(q.params.scale * k.params.scale * scale)
    {}
};

/** Generate one head's float operands per the spec. */
AttentionHead generateHead(const WorkloadSpec &spec);

/** Quantize a float head to INT8 (or INT4) with bit planes. */
QuantizedHead quantizeHead(const AttentionHead &head, int bits = 8);

/**
 * Specification of one transformer layer's attention workload with
 * GQA structure: `heads` query heads grouped onto `kv_heads` shared
 * K/V streams (kv_heads must divide heads). Every query head carries
 * one query row per *position* — prompt positions feed the scored
 * chunked-prefill path, decode positions feed autoregressive decode —
 * so a layer workload drives both serving stages.
 */
struct LayerSpec
{
    int heads = 1;
    int kv_heads = 1;
    int head_dim = 64;
    int prompt_len = 0;   //!< prompt positions (prefilled + scored)
    int decode_steps = 0; //!< decode positions
    int bits = 8;         //!< quantization bit-width
    double concentration = 1.0;
    double locality = 0.5;
    uint64_t seed = 1;

    int groupSize() const { return heads / kv_heads; }
    int positions() const { return prompt_len + decode_steps; }

    /** Adopt a model preset's GQA geometry (heads/kv_heads/head_dim,
     *  concentration), keeping the serving knobs of *this. */
    LayerSpec withModel(const ModelConfig &m) const;
};

/**
 * One layer's quantized operands: a QuantizedHead per KV head whose
 * K/V rows are the shared stream and whose query matrix stacks the
 * group's query heads head-major — query head h (global), position
 * pos lives at row `queryRow(h, pos)` of `groups[h / groupSize()]`.
 * Quantization is per KV-head group (one scale for the group's
 * stacked queries), so every query head of a group shares its group's
 * logit_scale — the property that lets a grouped scan score against
 * one plane set with one integer->logit factor.
 */
struct LayerWorkload
{
    LayerSpec spec;
    std::vector<QuantizedHead> groups; //!< one per KV head

    const QuantizedHead &
    groupOf(int head) const
    {
        return groups[static_cast<std::size_t>(head /
                                               spec.groupSize())];
    }
    /** Row of query head @p head, position @p pos inside its group's
     *  q matrix (head-major: a head's positions are contiguous). */
    int
    queryRow(int head, int pos) const
    {
        return (head % spec.groupSize()) * spec.positions() + pos;
    }

    /**
     * Stage position @p pos into the head-major matrices LayerEngine
     * consumes: row kv of @p k / @p v is KV head kv's key/value row
     * (kv_heads x head_dim). The single owner of the row-layout
     * convention — batcher, examples, benches, and tests all stage
     * through here.
     */
    void stageKv(int pos, MatrixI8 &k, MatrixI8 &v) const;

    /** Stage every query head's row for position @p pos
     *  (heads x head_dim; row h = query head h). */
    void stageQueries(int pos, MatrixI8 &q) const;
};

/**
 * Generate a layer workload per @p spec: KV head kv is a synthetic
 * attention head (generateHead) with seq_len = positions() and
 * groupSize() * positions() query rows, seeded from (spec.seed, kv)
 * only — fully deterministic, KV heads independent.
 */
LayerWorkload generateLayerWorkload(const LayerSpec &spec);

/**
 * Measured sparsity oracle: the fraction of (query, key) pairs whose
 * softmax probability is below @p mass_epsilon of the row max. Gives a
 * workload-intrinsic upper bound on exploitable sparsity.
 */
double oracleSparsity(const AttentionHead &head, double mass_epsilon);

/**
 * Specification of one whole-model serving workload: `layers`
 * transformer layers, each with LayerSpec-style GQA geometry, plus an
 * optional *shared prompt prefix*. Positions [0, prefix_len) draw
 * every K/V/Q row from `prefix_seed`; positions beyond draw from
 * `seed` — so two sessions with equal (geometry, prefix_seed,
 * prefix_len) produce byte-identical prefix rows no matter what their
 * suffixes or decode tails are. That per-position stream split is
 * what makes cross-session prefix caching *bit-exact*: a KV page of
 * prefix tokens built by one session is the page every other session
 * would have built.
 */
struct ModelSpec
{
    int layers = 1;
    int heads = 1;
    int kv_heads = 1; //!< must divide heads
    int head_dim = 64;
    int prompt_len = 0;   //!< prompt positions (prefilled + scored)
    int decode_steps = 0; //!< decode positions
    int bits = 8;         //!< K/Q quantization bit-width
    /** Leading prompt tokens drawn from the prefix stream; must be
     *  <= prompt_len. 0 = no shared prefix. */
    int prefix_len = 0;
    uint64_t prefix_seed = 0; //!< identity of the shared prefix
    double concentration = 1.0;
    double locality = 0.5; //!< attention-sink strength (token 0)
    uint64_t seed = 1;

    int groupSize() const { return heads / kv_heads; }
    int positions() const { return prompt_len + decode_steps; }
};

/**
 * Deterministic row source for a ModelSpec. Unlike LayerWorkload this
 * holds no materialized matrices: every row is a pure function of
 * (stream seed, layer, head/KV index, position) re-derived on demand,
 * which is precisely the property prefix sharing needs — a position's
 * rows cannot depend on the session's total length or suffix content.
 *
 * Quantization is *static* (per-model, not per-request): the int8
 * scales are fixed functions of the spec geometry, mirroring real
 * deployments where weights/activations ship with calibrated scales.
 * Dynamic per-request scales would make two sessions' encodings of
 * the same prefix float content differ in the low bits, destroying
 * page identity; static scales make the int8 prefix rows — and hence
 * whole KV pages — byte-equal across sessions.
 *
 * Score structure: each (layer, KV head) has a geometry-seeded unit
 * context direction shared by ALL sessions; keys carry heavy-tailed
 * importance along it (amp * u^tau, concentration-controlled) plus an
 * attention-sink boost at position 0, queries align with it at
 * ~sqrt(head_dim) — the same vital-token/logit-range regime
 * generateHead() synthesizes, minus the suffix-length-dependent
 * recency boost (which would break prefix purity).
 */
class ModelWorkload
{
  public:
    explicit ModelWorkload(const ModelSpec &spec);

    const ModelSpec &spec() const { return spec_; }

    /** Static V dequantization scale (same for every stream). */
    float vScale() const { return v_scale_; }
    /** Static int-score -> logit factor (same for every stream). */
    float logitScale() const { return logit_scale_; }

    /**
     * Stage position @p pos of layer @p layer into the head-major
     * matrices LayerEngine consumes: row kv of @p k / @p v is KV head
     * kv's row (kv_heads x head_dim).
     */
    void stageKv(int layer, int pos, MatrixI8 &k, MatrixI8 &v) const;

    /** Stage every query head's row for (@p layer, @p pos)
     *  (heads x head_dim; row h = query head h). */
    void stageQueries(int layer, int pos, MatrixI8 &q) const;

    /**
     * Prefix identity chain for page size @p page_tokens: entry d
     * hashes the K/V bytes of prefix page d across every layer and KV
     * head, mixed with entry d-1 (and a geometry fingerprint at the
     * root) — the PrefixIndex key. Length prefix_len / page_tokens;
     * a non-aligned prefix tail is simply not shareable.
     */
    std::vector<uint64_t> prefixPageChain(int page_tokens) const;

  private:
    /** Seed stream of position @p pos (prefix vs session). */
    uint64_t streamOf(int pos) const;
    void keyRow(int layer, int kv, int pos,
                std::span<std::int8_t> out) const;
    void valueRow(int layer, int kv, int pos,
                  std::span<std::int8_t> out) const;
    void queryRow(int layer, int head, int pos,
                  std::span<std::int8_t> out) const;

    ModelSpec spec_;
    std::vector<MatrixF> dirs_; //!< per layer: kv_heads x head_dim
    double amp_ = 0.0;
    double tau_ = 0.0;
    float k_scale_ = 0.0f;
    float q_scale_ = 0.0f;
    float v_scale_ = 0.0f;
    float logit_scale_ = 0.0f;
};

/**
 * Specification of a synthetic serving trace: request arrivals follow
 * a Poisson process (exponential inter-arrival gaps at @p rate_per_s),
 * prompt lengths are log-uniform over [prompt_min, prompt_max] — the
 * heavy-tailed mix production serving traces exhibit — and decode
 * lengths are uniform over [decode_min, decode_max]. Fully determined
 * by @p seed; the continuous batcher and examples/batch_serving
 * consume the result.
 */
struct TraceSpec
{
    int num_requests = 32;
    double rate_per_s = 200.0; //!< mean arrival rate
    int prompt_min = 32;       //!< log-uniform prompt length bounds
    int prompt_max = 256;
    int decode_min = 8;        //!< uniform decode-step bounds
    int decode_max = 32;
    /**
     * Scheduling priority classes: requests draw a uniform priority
     * in [0, priority_levels) (higher = more urgent). 1 leaves every
     * request at priority 0 AND draws nothing from the RNG, so
     * existing single-class traces regenerate byte-identically.
     */
    int priority_levels = 1;
    /**
     * Shared-prefix mix: when > 0, every request draws one of
     * prefix_groups prefix identities and prepends prefix_tokens
     * shared tokens to its (still log-uniform) private suffix —
     * modelling fleets where many conversations share a system
     * prompt. 0 draws nothing from the RNG, so prefix-free traces
     * regenerate byte-identically.
     */
    int prefix_groups = 0;
    int prefix_tokens = 0; //!< shared tokens per prefixed request
    uint64_t seed = 1;
};

/** One serving request of a trace. */
struct ServingRequest
{
    double arrival_ms = 0.0; //!< arrival offset from trace start
    int prompt_len = 0;      //!< prompt tokens to prefill (incl. prefix)
    int decode_steps = 0;    //!< tokens to generate
    int priority = 0;        //!< scheduling class (higher first)
    int prefix_len = 0;      //!< leading shared-prefix tokens
    uint64_t prefix_seed = 0; //!< shared-prefix identity stream
    uint64_t seed = 0;       //!< per-request workload seed
};

/**
 * Generate a seeded Poisson arrival trace per @p spec. Arrival times
 * are non-decreasing; every field is a pure function of spec.seed.
 */
std::vector<ServingRequest> poissonArrivalTrace(const TraceSpec &spec);

} // namespace pade

#endif // PADE_WORKLOAD_GENERATOR_H

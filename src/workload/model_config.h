/**
 * @file
 * Transformer model and dataset presets matching the paper's benchmark
 * suite (§VI-A). Only the attention-relevant geometry matters for this
 * reproduction: heads, KV heads (GQA), head dimension, layer count, and
 * per-dataset sequence lengths.
 */

#ifndef PADE_WORKLOAD_MODEL_CONFIG_H
#define PADE_WORKLOAD_MODEL_CONFIG_H

#include <string>
#include <vector>

namespace pade {

/** Attention geometry of one benchmark model. */
struct ModelConfig
{
    std::string name;
    int layers = 1;
    int heads = 32;     //!< query heads
    int kv_heads = 32;  //!< key/value heads (< heads => GQA)
    int head_dim = 128;
    /**
     * Attention concentration knob for the synthetic logit generator:
     * higher = spikier score distribution (more exploitable sparsity).
     * Vision models attend more uniformly than language models.
     */
    double concentration = 1.0;

    bool isGqa() const { return kv_heads < heads; }
    int hidden() const { return heads * head_dim; }
};

/** A benchmark dataset: name, sequence length, task family. */
struct DatasetConfig
{
    std::string name;
    int seq_len = 2048;
    /** "reasoning", "generation", "modeling", "vision", "longctx". */
    std::string task;
    /**
     * Strength of the sink/recency locality structure in attention
     * (long-context language data shows the strongest locality).
     */
    double locality = 0.5;
};

/** Model presets used across the paper's figures. */
ModelConfig llama2_7b();
ModelConfig llama3_8b();
ModelConfig opt_1b3();
ModelConfig bloom_1b7();
ModelConfig qwen_7b();
ModelConfig vit_l16();
ModelConfig pvt();

/** All seven benchmark models in paper order. */
std::vector<ModelConfig> allModels();

/** Dataset presets. */
DatasetConfig dsMmlu();
DatasetConfig dsWikitext2();
DatasetConfig dsWikilingua();
DatasetConfig dsWinogrande();
DatasetConfig dsMbpp();
DatasetConfig dsDolly();
DatasetConfig dsPg19();
DatasetConfig dsInfiniteBench();
DatasetConfig dsNiah1M();
DatasetConfig dsImageNet();
DatasetConfig dsVtab();

/** Look up a model preset by name; throws std::out_of_range if absent. */
ModelConfig modelByName(const std::string &name);

} // namespace pade

#endif // PADE_WORKLOAD_MODEL_CONFIG_H

#include "workload/generator.h"

#include <algorithm>
#include <cassert>
#include <cmath>
#include <initializer_list>

#include "attention/reference.h"
#include "common/check.h"
#include "common/rng.h"

namespace pade {

WorkloadSpec
WorkloadSpec::fromPresets(const ModelConfig &m, const DatasetConfig &d,
                          int query_len, uint64_t seed)
{
    WorkloadSpec spec;
    spec.seq_len = d.seq_len;
    spec.query_len = query_len;
    spec.head_dim = m.head_dim;
    spec.concentration = m.concentration;
    spec.locality = d.locality;
    spec.seed = seed;
    return spec;
}

AttentionHead
generateHead(const WorkloadSpec &spec)
{
    Rng rng(spec.seed);
    const int h = spec.head_dim;
    const int s = spec.seq_len;
    const int p = spec.query_len;

    AttentionHead head;
    head.scale = 1.0f / std::sqrt(static_cast<float>(h));
    head.q = MatrixF(p, h);
    head.k = MatrixF(s, h);
    head.v = MatrixF(s, h);

    // Shared context direction (unit vector).
    std::vector<float> u(h);
    double norm = 0.0;
    for (float &x : u) {
        x = static_cast<float>(rng.gaussian());
        norm += static_cast<double>(x) * x;
    }
    norm = std::sqrt(std::max(norm, 1e-12));
    for (float &x : u)
        x = static_cast<float>(x / norm);

    // Queries: aligned component ~sqrt(H) plus unit noise so that
    // q_i . u ~ sqrt(H) and the scaled logits land in the O(1..10)
    // range LLM attention exhibits.
    const double q_align = std::sqrt(static_cast<double>(h));
    for (int i = 0; i < p; i++) {
        const double c = rng.gaussian(q_align, 0.15 * q_align);
        for (int d = 0; d < h; d++) {
            head.q.at(i, d) = static_cast<float>(
                c * u[d] + rng.gaussian());
        }
    }

    // Per-key importance: a small cluster of "vital" tokens whose
    // logits sit well above a heavy-but-bounded bulk, plus sink
    // (token 0) and recency boosts scaled by locality. Real attention
    // rows concentrate their mass on tens of tokens, so masks must
    // capture a *group* — making predictor precision matter. QAT mode
    // flattens the gap (paper Fig. 26(a) observation). The amplitude
    // grows mildly with log(S) so that vital tokens stay separated
    // from the softmax bulk as the denominator grows — matching the
    // paper's observation that exploitable sparsity increases with
    // sequence length.
    // Importance follows a smooth power-law c = amp * u^tau
    // (u uniform): a continuum from a few near-max vital tokens
    // through a mid band into the bulk. Tuned so that capturing 99.9%
    // of softmax mass needs roughly 20-35% of the keys at LLM-like
    // concentration (matching the sparsity levels the paper's Fig. 15
    // sweeps), and correspondingly fewer for longer sequences.
    const double length_boost = std::max(
        0.55, 1.0 + 0.12 * std::log2(std::max(s, 64) / 2048.0));
    double amp = (6.0 + 5.4 * spec.concentration) * length_boost;
    double tau = 2.0 + 1.6 * spec.concentration;
    if (spec.qat_uniform) {
        // QAT flattens the value distribution (paper Fig. 26(a)).
        amp *= 0.6;
        tau *= 0.6;
    }
    const double recency_window = std::max(4.0, 0.02 * s);

    for (int j = 0; j < s; j++) {
        double c_k = amp * std::pow(rng.uniform(), tau);
        if (j == 0)
            c_k += 0.8 * amp * spec.locality; // attention sink
        const double age = static_cast<double>(s - 1 - j);
        c_k += 0.6 * amp * spec.locality *
            std::exp(-age / recency_window);
        for (int d = 0; d < h; d++) {
            head.k.at(j, d) = static_cast<float>(
                c_k * u[d] + rng.gaussian());
        }
    }

    for (int j = 0; j < s; j++)
        for (int d = 0; d < h; d++)
            head.v.at(j, d) = static_cast<float>(rng.gaussian());

    return head;
}

QuantizedHead
quantizeHead(const AttentionHead &head, int bits)
{
    return QuantizedHead(quantizeSymmetric(head.q, bits),
                         quantizeSymmetric(head.k, bits),
                         quantizeSymmetric(head.v, bits), bits,
                         head.scale);
}

LayerSpec
LayerSpec::withModel(const ModelConfig &m) const
{
    LayerSpec spec = *this;
    spec.heads = m.heads;
    spec.kv_heads = m.kv_heads;
    spec.head_dim = m.head_dim;
    spec.concentration = m.concentration;
    return spec;
}

void
LayerWorkload::stageKv(int pos, MatrixI8 &k, MatrixI8 &v) const
{
    assert(k.rows() == spec.kv_heads && v.rows() == spec.kv_heads);
    for (int kv = 0; kv < spec.kv_heads; kv++) {
        const QuantizedHead &g = groups[static_cast<std::size_t>(kv)];
        std::ranges::copy(g.k.values.row(pos), k.row(kv).begin());
        std::ranges::copy(g.v.values.row(pos), v.row(kv).begin());
    }
}

void
LayerWorkload::stageQueries(int pos, MatrixI8 &q) const
{
    assert(q.rows() == spec.heads);
    for (int h = 0; h < spec.heads; h++)
        std::ranges::copy(groupOf(h).q.values.row(queryRow(h, pos)),
                          q.row(h).begin());
}

LayerWorkload
generateLayerWorkload(const LayerSpec &spec)
{
    assert(spec.heads >= 1 && spec.kv_heads >= 1);
    assert(spec.heads % spec.kv_heads == 0);
    assert(spec.positions() >= 1);

    LayerWorkload layer;
    layer.spec = spec;
    layer.groups.reserve(static_cast<std::size_t>(spec.kv_heads));
    for (int kv = 0; kv < spec.kv_heads; kv++) {
        WorkloadSpec ws;
        ws.seq_len = spec.positions();
        ws.query_len = spec.groupSize() * spec.positions();
        ws.head_dim = spec.head_dim;
        ws.concentration = spec.concentration;
        ws.locality = spec.locality;
        // Derived from (layer seed, KV head index) only, so layers
        // regenerate identically and KV heads stay independent.
        uint64_t state = spec.seed +
            static_cast<uint64_t>(kv + 1) * 0x9e3779b97f4a7c15ULL;
        ws.seed = splitMix64(state);
        layer.groups.push_back(
            quantizeHead(generateHead(ws), spec.bits));
    }
    return layer;
}

namespace {

/** Mix an ordered tuple into one 64-bit seed (order-sensitive). */
uint64_t
mixSeed(std::initializer_list<uint64_t> words)
{
    uint64_t state = 0x5eedc0defacade5fULL;
    uint64_t h = 0;
    for (uint64_t w : words) {
        state = h ^ (w + 0x9e3779b97f4a7c15ULL);
        h = splitMix64(state);
    }
    return h;
}

/** Clamp-quantize one float to a signed @p qmax grid. */
std::int8_t
quantTo(double value, float scale, int qmax)
{
    const double q = std::nearbyint(value / static_cast<double>(scale));
    return static_cast<std::int8_t>(
        std::clamp(q, static_cast<double>(-qmax),
                   static_cast<double>(qmax)));
}

// Row-kind tags keeping the K / V / Q streams of one (layer, lane,
// pos) independent.
constexpr uint64_t kTagKey = 0x4b;
constexpr uint64_t kTagValue = 0x56;
constexpr uint64_t kTagQuery = 0x51;

} // namespace

ModelWorkload::ModelWorkload(const ModelSpec &spec) : spec_(spec)
{
    // Boundary contract, armed in Release too: a malformed spec here
    // (e.g. a positional ServingRequest initializer gone stale) would
    // otherwise silently generate a nonsense workload.
    PADE_CHECK(spec_.layers >= 1);
    PADE_CHECK(spec_.heads >= 1 && spec_.kv_heads >= 1);
    PADE_CHECK(spec_.heads % spec_.kv_heads == 0);
    PADE_CHECK(spec_.prefix_len >= 0 &&
               spec_.prefix_len <= spec_.prompt_len);

    // Static per-model scales: pure functions of geometry, shared by
    // every session of the model (see class comment — dynamic scales
    // would break prefix page identity).
    const int qmax = (1 << (spec_.bits - 1)) - 1;
    k_scale_ = 12.0f / static_cast<float>(qmax);
    q_scale_ = 12.0f / static_cast<float>(qmax);
    v_scale_ = 4.0f / 127.0f;
    logit_scale_ = q_scale_ * k_scale_ /
        std::sqrt(static_cast<float>(spec_.head_dim));

    // Same importance-tail shaping as generateHead(), minus the
    // length boost (a function of total sequence length would leak
    // the session's suffix into prefix rows).
    amp_ = 6.0 + 5.4 * spec_.concentration;
    tau_ = 2.0 + 1.6 * spec_.concentration;

    // Context directions are seeded by geometry alone so prefix and
    // suffix rows of every session align with the same direction —
    // queries stay predictive across the prefix/suffix boundary.
    dirs_.reserve(static_cast<std::size_t>(spec_.layers));
    for (int l = 0; l < spec_.layers; l++) {
        MatrixF u(spec_.kv_heads, spec_.head_dim);
        for (int kv = 0; kv < spec_.kv_heads; kv++) {
            Rng rng(mixSeed({0xd12ec710, static_cast<uint64_t>(l),
                             static_cast<uint64_t>(kv)}));
            double norm = 0.0;
            for (float &x : u.row(kv)) {
                x = static_cast<float>(rng.gaussian());
                norm += static_cast<double>(x) * x;
            }
            norm = std::sqrt(std::max(norm, 1e-12));
            for (float &x : u.row(kv))
                x = static_cast<float>(x / norm);
        }
        dirs_.push_back(std::move(u));
    }
}

uint64_t
ModelWorkload::streamOf(int pos) const
{
    return pos < spec_.prefix_len ? spec_.prefix_seed : spec_.seed;
}

void
ModelWorkload::keyRow(int layer, int kv, int pos,
                      std::span<std::int8_t> out) const
{
    Rng rng(mixSeed({streamOf(pos), kTagKey,
                     static_cast<uint64_t>(layer),
                     static_cast<uint64_t>(kv),
                     static_cast<uint64_t>(pos)}));
    double c = amp_ * std::pow(rng.uniform(), tau_);
    if (pos == 0)
        c += 0.8 * amp_ * spec_.locality; // attention sink
    const int qmax = (1 << (spec_.bits - 1)) - 1;
    const auto u = dirs_[static_cast<std::size_t>(layer)].row(kv);
    for (int d = 0; d < spec_.head_dim; d++)
        out[static_cast<std::size_t>(d)] = quantTo(
            c * u[static_cast<std::size_t>(d)] + rng.gaussian(),
            k_scale_, qmax);
}

void
ModelWorkload::valueRow(int layer, int kv, int pos,
                        std::span<std::int8_t> out) const
{
    Rng rng(mixSeed({streamOf(pos), kTagValue,
                     static_cast<uint64_t>(layer),
                     static_cast<uint64_t>(kv),
                     static_cast<uint64_t>(pos)}));
    for (int d = 0; d < spec_.head_dim; d++)
        out[static_cast<std::size_t>(d)] =
            quantTo(rng.gaussian(), v_scale_, 127);
}

void
ModelWorkload::queryRow(int layer, int head, int pos,
                        std::span<std::int8_t> out) const
{
    Rng rng(mixSeed({streamOf(pos), kTagQuery,
                     static_cast<uint64_t>(layer),
                     static_cast<uint64_t>(head),
                     static_cast<uint64_t>(pos)}));
    const double align = std::sqrt(static_cast<double>(spec_.head_dim));
    const double c = rng.gaussian(align, 0.15 * align);
    const int qmax = (1 << (spec_.bits - 1)) - 1;
    const auto u = dirs_[static_cast<std::size_t>(layer)].row(
        head / spec_.groupSize());
    for (int d = 0; d < spec_.head_dim; d++)
        out[static_cast<std::size_t>(d)] = quantTo(
            c * u[static_cast<std::size_t>(d)] + rng.gaussian(),
            q_scale_, qmax);
}

void
ModelWorkload::stageKv(int layer, int pos, MatrixI8 &k,
                       MatrixI8 &v) const
{
    assert(k.rows() == spec_.kv_heads && v.rows() == spec_.kv_heads);
    for (int kv = 0; kv < spec_.kv_heads; kv++) {
        keyRow(layer, kv, pos, k.row(kv));
        valueRow(layer, kv, pos, v.row(kv));
    }
}

void
ModelWorkload::stageQueries(int layer, int pos, MatrixI8 &q) const
{
    assert(q.rows() == spec_.heads);
    for (int h = 0; h < spec_.heads; h++)
        queryRow(layer, h, pos, q.row(h));
}

std::vector<uint64_t>
ModelWorkload::prefixPageChain(int page_tokens) const
{
    assert(page_tokens >= 1);
    const int pages = spec_.prefix_len / page_tokens;
    std::vector<uint64_t> chain;
    if (pages == 0)
        return chain;
    chain.reserve(static_cast<std::size_t>(pages));

    // Root: the geometry fingerprint. Two models whose pages could
    // never be adopted into each other (different shapes, widths, or
    // page sizes) must diverge at depth 0.
    uint64_t h = mixSeed({static_cast<uint64_t>(spec_.layers),
                          static_cast<uint64_t>(spec_.kv_heads),
                          static_cast<uint64_t>(spec_.head_dim),
                          static_cast<uint64_t>(spec_.bits),
                          static_cast<uint64_t>(page_tokens)});
    std::vector<std::int8_t> row(
        static_cast<std::size_t>(spec_.head_dim));
    const auto mixRow = [&] {
        for (std::int8_t b : row) {
            uint64_t state = h + static_cast<std::uint8_t>(b);
            h = splitMix64(state);
        }
    };
    for (int p = 0; p < pages; p++) {
        for (int pos = p * page_tokens; pos < (p + 1) * page_tokens;
             pos++) {
            for (int l = 0; l < spec_.layers; l++) {
                for (int kv = 0; kv < spec_.kv_heads; kv++) {
                    keyRow(l, kv, pos, row);
                    mixRow();
                    valueRow(l, kv, pos, row);
                    mixRow();
                }
            }
        }
        chain.push_back(h);
    }
    return chain;
}

std::vector<ServingRequest>
poissonArrivalTrace(const TraceSpec &spec)
{
    assert(spec.num_requests >= 0 && spec.rate_per_s > 0.0);
    assert(spec.prompt_min >= 1 && spec.prompt_max >= spec.prompt_min);
    assert(spec.decode_min >= 1 && spec.decode_max >= spec.decode_min);
    assert(spec.priority_levels >= 1);
    assert(spec.prefix_groups >= 0);
    assert(spec.prefix_groups == 0 || spec.prefix_tokens >= 1);

    Rng rng(spec.seed);
    std::vector<ServingRequest> trace;
    trace.reserve(static_cast<std::size_t>(spec.num_requests));

    const double log_lo = std::log(static_cast<double>(spec.prompt_min));
    const double log_hi = std::log(static_cast<double>(spec.prompt_max));
    double now_ms = 0.0;
    for (int i = 0; i < spec.num_requests; i++) {
        // Poisson process: exponential gaps at the given rate
        // (rate_per_s requests/s = rate_per_s/1000 per ms).
        now_ms += rng.exponential(spec.rate_per_s / 1000.0);

        ServingRequest req;
        req.arrival_ms = now_ms;
        req.prompt_len = std::min(
            spec.prompt_max,
            static_cast<int>(std::exp(rng.uniform(log_lo, log_hi))));
        req.prompt_len = std::max(spec.prompt_min, req.prompt_len);
        req.decode_steps = static_cast<int>(
            rng.range(spec.decode_min, spec.decode_max));
        // Drawn only for multi-class traces: single-class specs must
        // keep the historical RNG stream (and thus regenerate
        // byte-identical traces).
        if (spec.priority_levels > 1)
            req.priority = static_cast<int>(
                rng.range(0, spec.priority_levels - 1));
        // Shared prefix: prepend prefix_tokens tokens of one of
        // prefix_groups shared identities to the private suffix drawn
        // above. Guarded so prefix-free specs draw nothing and keep
        // the historical RNG stream.
        if (spec.prefix_groups > 0) {
            const auto group = static_cast<uint64_t>(
                rng.range(0, spec.prefix_groups - 1));
            req.prefix_len = spec.prefix_tokens;
            req.prompt_len += spec.prefix_tokens;
            // Group identity from (trace seed, group) only, so two
            // requests of one group — or of two traces with equal
            // seeds — share the exact prefix stream.
            uint64_t gstate = spec.seed ^
                (0x70726566697865ULL + group * 0x9e3779b97f4a7c15ULL);
            req.prefix_seed = splitMix64(gstate);
        }
        // Per-request workload seed: derived from (trace seed, index)
        // only, so traces re-generate identically.
        uint64_t state = spec.seed +
            static_cast<uint64_t>(i) * 0x9e3779b97f4a7c15ULL;
        req.seed = splitMix64(state);
        trace.push_back(req);
    }
    return trace;
}

double
oracleSparsity(const AttentionHead &head, double mass_epsilon)
{
    const MatrixF logits = attentionLogits(head.q, head.k, head.scale);
    uint64_t prunable = 0;
    for (int i = 0; i < logits.rows(); i++) {
        float mx = logits.at(i, 0);
        for (float v : logits.row(i))
            mx = std::max(mx, v);
        const float cut = mx + static_cast<float>(
            std::log(mass_epsilon));
        for (float v : logits.row(i))
            if (v < cut)
                prunable++;
    }
    return logits.size() ?
        static_cast<double>(prunable) / logits.size() : 0.0;
}

} // namespace pade

#include "workload/generator.h"

#include <algorithm>
#include <cassert>
#include <cmath>

#include "attention/reference.h"
#include "common/rng.h"

namespace pade {

WorkloadSpec
WorkloadSpec::fromPresets(const ModelConfig &m, const DatasetConfig &d,
                          int query_len, uint64_t seed)
{
    WorkloadSpec spec;
    spec.seq_len = d.seq_len;
    spec.query_len = query_len;
    spec.head_dim = m.head_dim;
    spec.concentration = m.concentration;
    spec.locality = d.locality;
    spec.seed = seed;
    return spec;
}

AttentionHead
generateHead(const WorkloadSpec &spec)
{
    Rng rng(spec.seed);
    const int h = spec.head_dim;
    const int s = spec.seq_len;
    const int p = spec.query_len;

    AttentionHead head;
    head.scale = 1.0f / std::sqrt(static_cast<float>(h));
    head.q = MatrixF(p, h);
    head.k = MatrixF(s, h);
    head.v = MatrixF(s, h);

    // Shared context direction (unit vector).
    std::vector<float> u(h);
    double norm = 0.0;
    for (float &x : u) {
        x = static_cast<float>(rng.gaussian());
        norm += static_cast<double>(x) * x;
    }
    norm = std::sqrt(std::max(norm, 1e-12));
    for (float &x : u)
        x = static_cast<float>(x / norm);

    // Queries: aligned component ~sqrt(H) plus unit noise so that
    // q_i . u ~ sqrt(H) and the scaled logits land in the O(1..10)
    // range LLM attention exhibits.
    const double q_align = std::sqrt(static_cast<double>(h));
    for (int i = 0; i < p; i++) {
        const double c = rng.gaussian(q_align, 0.15 * q_align);
        for (int d = 0; d < h; d++) {
            head.q.at(i, d) = static_cast<float>(
                c * u[d] + rng.gaussian());
        }
    }

    // Per-key importance: a small cluster of "vital" tokens whose
    // logits sit well above a heavy-but-bounded bulk, plus sink
    // (token 0) and recency boosts scaled by locality. Real attention
    // rows concentrate their mass on tens of tokens, so masks must
    // capture a *group* — making predictor precision matter. QAT mode
    // flattens the gap (paper Fig. 26(a) observation). The amplitude
    // grows mildly with log(S) so that vital tokens stay separated
    // from the softmax bulk as the denominator grows — matching the
    // paper's observation that exploitable sparsity increases with
    // sequence length.
    // Importance follows a smooth power-law c = amp * u^tau
    // (u uniform): a continuum from a few near-max vital tokens
    // through a mid band into the bulk. Tuned so that capturing 99.9%
    // of softmax mass needs roughly 20-35% of the keys at LLM-like
    // concentration (matching the sparsity levels the paper's Fig. 15
    // sweeps), and correspondingly fewer for longer sequences.
    const double length_boost = std::max(
        0.55, 1.0 + 0.12 * std::log2(std::max(s, 64) / 2048.0));
    double amp = (6.0 + 5.4 * spec.concentration) * length_boost;
    double tau = 2.0 + 1.6 * spec.concentration;
    if (spec.qat_uniform) {
        // QAT flattens the value distribution (paper Fig. 26(a)).
        amp *= 0.6;
        tau *= 0.6;
    }
    const double recency_window = std::max(4.0, 0.02 * s);

    for (int j = 0; j < s; j++) {
        double c_k = amp * std::pow(rng.uniform(), tau);
        if (j == 0)
            c_k += 0.8 * amp * spec.locality; // attention sink
        const double age = static_cast<double>(s - 1 - j);
        c_k += 0.6 * amp * spec.locality *
            std::exp(-age / recency_window);
        for (int d = 0; d < h; d++) {
            head.k.at(j, d) = static_cast<float>(
                c_k * u[d] + rng.gaussian());
        }
    }

    for (int j = 0; j < s; j++)
        for (int d = 0; d < h; d++)
            head.v.at(j, d) = static_cast<float>(rng.gaussian());

    return head;
}

QuantizedHead
quantizeHead(const AttentionHead &head, int bits)
{
    return QuantizedHead(quantizeSymmetric(head.q, bits),
                         quantizeSymmetric(head.k, bits),
                         quantizeSymmetric(head.v, bits), bits,
                         head.scale);
}

LayerSpec
LayerSpec::withModel(const ModelConfig &m) const
{
    LayerSpec spec = *this;
    spec.heads = m.heads;
    spec.kv_heads = m.kv_heads;
    spec.head_dim = m.head_dim;
    spec.concentration = m.concentration;
    return spec;
}

void
LayerWorkload::stageKv(int pos, MatrixI8 &k, MatrixI8 &v) const
{
    assert(k.rows() == spec.kv_heads && v.rows() == spec.kv_heads);
    for (int kv = 0; kv < spec.kv_heads; kv++) {
        const QuantizedHead &g = groups[static_cast<std::size_t>(kv)];
        std::ranges::copy(g.k.values.row(pos), k.row(kv).begin());
        std::ranges::copy(g.v.values.row(pos), v.row(kv).begin());
    }
}

void
LayerWorkload::stageQueries(int pos, MatrixI8 &q) const
{
    assert(q.rows() == spec.heads);
    for (int h = 0; h < spec.heads; h++)
        std::ranges::copy(groupOf(h).q.values.row(queryRow(h, pos)),
                          q.row(h).begin());
}

LayerWorkload
generateLayerWorkload(const LayerSpec &spec)
{
    assert(spec.heads >= 1 && spec.kv_heads >= 1);
    assert(spec.heads % spec.kv_heads == 0);
    assert(spec.positions() >= 1);

    LayerWorkload layer;
    layer.spec = spec;
    layer.groups.reserve(static_cast<std::size_t>(spec.kv_heads));
    for (int kv = 0; kv < spec.kv_heads; kv++) {
        WorkloadSpec ws;
        ws.seq_len = spec.positions();
        ws.query_len = spec.groupSize() * spec.positions();
        ws.head_dim = spec.head_dim;
        ws.concentration = spec.concentration;
        ws.locality = spec.locality;
        // Derived from (layer seed, KV head index) only, so layers
        // regenerate identically and KV heads stay independent.
        uint64_t state = spec.seed +
            static_cast<uint64_t>(kv + 1) * 0x9e3779b97f4a7c15ULL;
        ws.seed = splitMix64(state);
        layer.groups.push_back(
            quantizeHead(generateHead(ws), spec.bits));
    }
    return layer;
}

std::vector<ServingRequest>
poissonArrivalTrace(const TraceSpec &spec)
{
    assert(spec.num_requests >= 0 && spec.rate_per_s > 0.0);
    assert(spec.prompt_min >= 1 && spec.prompt_max >= spec.prompt_min);
    assert(spec.decode_min >= 1 && spec.decode_max >= spec.decode_min);
    assert(spec.priority_levels >= 1);

    Rng rng(spec.seed);
    std::vector<ServingRequest> trace;
    trace.reserve(static_cast<std::size_t>(spec.num_requests));

    const double log_lo = std::log(static_cast<double>(spec.prompt_min));
    const double log_hi = std::log(static_cast<double>(spec.prompt_max));
    double now_ms = 0.0;
    for (int i = 0; i < spec.num_requests; i++) {
        // Poisson process: exponential gaps at the given rate
        // (rate_per_s requests/s = rate_per_s/1000 per ms).
        now_ms += rng.exponential(spec.rate_per_s / 1000.0);

        ServingRequest req;
        req.arrival_ms = now_ms;
        req.prompt_len = std::min(
            spec.prompt_max,
            static_cast<int>(std::exp(rng.uniform(log_lo, log_hi))));
        req.prompt_len = std::max(spec.prompt_min, req.prompt_len);
        req.decode_steps = static_cast<int>(
            rng.range(spec.decode_min, spec.decode_max));
        // Drawn only for multi-class traces: single-class specs must
        // keep the historical RNG stream (and thus regenerate
        // byte-identical traces).
        if (spec.priority_levels > 1)
            req.priority = static_cast<int>(
                rng.range(0, spec.priority_levels - 1));
        // Per-request workload seed: derived from (trace seed, index)
        // only, so traces re-generate identically.
        uint64_t state = spec.seed +
            static_cast<uint64_t>(i) * 0x9e3779b97f4a7c15ULL;
        req.seed = splitMix64(state);
        trace.push_back(req);
    }
    return trace;
}

double
oracleSparsity(const AttentionHead &head, double mass_epsilon)
{
    const MatrixF logits = attentionLogits(head.q, head.k, head.scale);
    uint64_t prunable = 0;
    for (int i = 0; i < logits.rows(); i++) {
        float mx = logits.at(i, 0);
        for (float v : logits.row(i))
            mx = std::max(mx, v);
        const float cut = mx + static_cast<float>(
            std::log(mass_epsilon));
        for (float v : logits.row(i))
            if (v < cut)
                prunable++;
    }
    return logits.size() ?
        static_cast<double>(prunable) / logits.size() : 0.0;
}

} // namespace pade

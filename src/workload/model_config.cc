#include "workload/model_config.h"

#include <stdexcept>

namespace pade {

ModelConfig
llama2_7b()
{
    return {"Llama2-7B", 32, 32, 32, 128, 1.25};
}

ModelConfig
llama3_8b()
{
    // GQA: 32 query heads share 8 KV heads.
    return {"Llama3-8B", 32, 32, 8, 128, 1.3};
}

ModelConfig
opt_1b3()
{
    return {"OPT-1B3", 24, 32, 32, 64, 1.1};
}

ModelConfig
bloom_1b7()
{
    return {"Bloom-1B7", 24, 16, 16, 128, 1.1};
}

ModelConfig
qwen_7b()
{
    return {"Qwen-7B", 32, 32, 32, 128, 1.2};
}

ModelConfig
vit_l16()
{
    // Vision transformers attend more uniformly: lower concentration.
    return {"ViT-L/16", 24, 16, 16, 64, 0.6};
}

ModelConfig
pvt()
{
    return {"PVT", 16, 8, 8, 64, 0.8};
}

std::vector<ModelConfig>
allModels()
{
    return {llama2_7b(), llama3_8b(), opt_1b3(), bloom_1b7(), qwen_7b(),
            vit_l16(), pvt()};
}

DatasetConfig dsMmlu() { return {"MMLU", 512, "reasoning", 0.5}; }
DatasetConfig dsWikitext2() { return {"Wikitext2", 2048, "modeling", 0.5}; }
DatasetConfig dsWikilingua()
{
    return {"Wikilingua", 2048, "generation", 0.5};
}
DatasetConfig dsWinogrande()
{
    return {"Winogrande", 256, "reasoning", 0.4};
}
DatasetConfig dsMbpp() { return {"MBPP", 1024, "generation", 0.5}; }
DatasetConfig dsDolly() { return {"Dolly", 15360, "longctx", 0.7}; }
DatasetConfig dsPg19() { return {"PG-19", 102400, "longctx", 0.75}; }
DatasetConfig dsInfiniteBench()
{
    return {"InfiniteBench", 219136, "longctx", 0.8};
}
DatasetConfig dsNiah1M() { return {"NIAH", 1048576, "longctx", 0.85}; }
DatasetConfig dsImageNet() { return {"ImageNet", 576, "vision", 0.2}; }
DatasetConfig dsVtab() { return {"VTAB", 576, "vision", 0.2}; }

ModelConfig
modelByName(const std::string &name)
{
    for (const auto &m : allModels())
        if (m.name == name)
            return m;
    throw std::out_of_range("unknown model: " + name);
}

} // namespace pade

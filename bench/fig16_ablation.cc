/**
 * @file
 * Paper Fig. 16:
 * (a) latency ablation of BUI-GF, BS-OOE and ISTA against the dense
 *     baseline derived from PADE (sparse modules removed), across four
 *     models;
 * (b) the alpha sweep trading accuracy against sparsity on reasoning
 *     (MMLU) and generation (MBPP) proxies.
 */

#include "attention/metrics.h"
#include "attention/reference.h"
#include "bench/common.h"

using namespace pade;
using namespace pade::bench;

namespace {

ArchConfig
ladder(int stage)
{
    // 0 = dense baseline, 1 = +BUI-GF (guarded bit-serial with the
    // scoreboard lane), 2 = +BS-OOE, 3 = +ISTA (full PADE).
    ArchConfig cfg;
    cfg.enable_guard = stage >= 1;
    cfg.enable_bs = stage >= 2;
    cfg.enable_ooe = stage >= 2;
    cfg.enable_ista = stage >= 3;
    cfg.enable_rars = stage >= 3;
    cfg.enable_head_tail = stage >= 3;
    return cfg;
}

} // namespace

int
main(int argc, char **argv)
{
    Cli cli(argc, argv);
    banner("Fig. 16(a): normalized latency — Baseline / +BUI-GF / "
           "+BS-OOE / +ISTA");

    struct Work
    {
        ModelConfig model;
        DatasetConfig ds;
    };
    const std::vector<Work> works = {
        {llama2_7b(), dsWikitext2()},
        {llama3_8b(), dsWikitext2()},
        {opt_1b3(), dsWikitext2()},
        {pvt(), {"ImageNet", 3072, "vision", 0.2}},
    };

    Table t;
    t.header({"model", "Baseline", "+BUI-GF", "+BS-OOE", "+ISTA"});
    std::vector<double> red1;
    std::vector<double> red2;
    std::vector<double> red3;
    for (const auto &w : works) {
        SimRequest req{w.model, w.ds};
        req.seed = cli.getInt("seed", 4);
        req.max_sim_seq = 2048;
        const OperatingPoints pts = calibratePoints(req);

        double lat[4];
        for (int stage = 0; stage < 4; stage++) {
            lat[stage] = runPade(ladder(stage), req,
                                 pts.alpha_standard).total.time_ns;
        }
        t.row({w.model.name, "1.00", Table::num(lat[1] / lat[0], 2),
               Table::num(lat[2] / lat[0], 2),
               Table::num(lat[3] / lat[0], 2)});
        red1.push_back(1.0 - lat[1] / lat[0]);
        red2.push_back(1.0 - lat[2] / lat[1]);
        red3.push_back(1.0 - lat[3] / lat[2]);
    }
    t.print();
    std::printf("average successive reductions: BUI-GF %.0f%%, BS-OOE "
                "%.0f%%, ISTA %.0f%% (paper: 30%% / 24%% / 27%%)\n",
                100.0 * mean(red1), 100.0 * mean(red2),
                100.0 * mean(red3));

    banner("Fig. 16(b): alpha sweep — accuracy vs sparsity "
           "(MMLU reasoning / MBPP generation proxies)");
    Table tb;
    tb.header({"alpha", "acc MMLU", "spars MMLU", "acc MBPP",
               "spars MBPP"});
    for (double alpha : {0.8, 0.7, 0.6, 0.5, 0.4, 0.3}) {
        std::vector<std::string> row = {Table::num(alpha, 1)};
        for (const DatasetConfig &ds : {dsMmlu(), dsMbpp()}) {
            SimRequest req{llama2_7b(), ds};
            req.seed = cli.getInt("seed", 4);
            const AttentionHead head = calibrationHead(req, 2048);
            const QuantizedHead qh = quantizeHead(head);
            PadeConfig cfg;
            cfg.alpha = alpha;
            // The paper sweeps alpha at its default radius 5.
            const PadeResult res = padeAttention(qh, cfg);
            const MatrixF logits = attentionLogits(head.q, head.k,
                                                   head.scale);
            const double mass = retainedMass(logits, res.keep);
            // Reasoning tolerates pruning better (vital-token
            // redundancy): soften its penalty.
            const bool reasoning = ds.task == "reasoning";
            const double score = reasoning ?
                taskScoreFromMass(0.5 + 0.5 * mass) :
                taskScoreFromMass(mass);
            row.push_back(Table::num(1000.0 * score, 0));
            row.push_back(Table::pct(1.0 - res.stats.keepRate()));
        }
        tb.row(row);
    }
    tb.print();
    std::printf("Paper: generation (MBPP) degrades below alpha 0.6; "
                "reasoning (MMLU) only below 0.5; sparsity gains "
                "flatten below 0.5.\n");
    return 0;
}

/**
 * @file
 * Perf-tracking suite: times the simulator's hot paths and emits a
 * machine-readable BENCH_perf.json so the performance trajectory is
 * visible across PRs (CI uploads the file as an artifact).
 *
 * Four stages are measured:
 *  1. QK scoring kernel — word-parallel popcount exactDot versus the
 *     scalar ctz-walk reference, across {seq, bits} points (the
 *     algebraic win of plane-vs-plane execution);
 *  2. full padeAttention under both kernel dispatches, with a reused
 *     PadeWorkspace (the allocation-free hot path);
 *  3. reference attention — cache-blocked dense matmul path and the
 *     tiled flash recurrence (the oracle every figure bench pays for);
 *  4. a batch-driver sweep across {seq, bits, concentration} points,
 *     fanned over the thread pool (the fig17-style DSE bottleneck).
 *
 * Flags: --quick (CI smoke: fewer/smaller points), --reps=N best-of
 * repetitions (default 3), --out=FILE (default BENCH_perf.json),
 * --threads=N sweep workers (default hardware).
 */

#include <chrono>
#include <cstdint>
#include <cstdio>
#include <string>
#include <vector>

#include "attention/reference.h"
#include "bench/common.h"
#include "core/pade_attention.h"
#include "runtime/batch_driver.h"
#include "workload/generator.h"

using namespace pade;
using namespace pade::bench;

namespace {

/** Wall-clock milliseconds of fn(), best of @p reps runs. */
template <typename F>
double
bestMs(int reps, F &&fn)
{
    double best = 0.0;
    for (int r = 0; r < reps; r++) {
        const auto t0 = std::chrono::steady_clock::now();
        fn();
        const auto t1 = std::chrono::steady_clock::now();
        const double ms =
            std::chrono::duration<double, std::milli>(t1 - t0).count();
        if (r == 0 || ms < best)
            best = ms;
    }
    return best;
}

/** Minimal JSON emitter: objects/arrays of already-formatted fields. */
class Json
{
  public:
    void
    openObject(const std::string &key = "")
    {
        indent(key);
        out_ += "{\n";
        depth_++;
        first_.push_back(true);
    }
    void
    openArray(const std::string &key)
    {
        indent(key);
        out_ += "[\n";
        depth_++;
        first_.push_back(true);
    }
    void
    close(bool array = false)
    {
        out_ += "\n";
        depth_--;
        for (int i = 0; i < depth_; i++)
            out_ += "  ";
        out_ += array ? "]" : "}";
        first_.pop_back();
        if (!first_.empty())
            first_.back() = false;
    }
    void
    field(const std::string &key, const std::string &raw)
    {
        indent(key);
        out_ += raw;
    }
    void
    field(const std::string &key, double v)
    {
        char buf[64];
        std::snprintf(buf, sizeof(buf), "%.6g", v);
        field(key, std::string(buf));
    }
    void
    field(const std::string &key, int64_t v)
    {
        field(key, std::to_string(v));
    }
    void
    str(const std::string &key, const std::string &v)
    {
        field(key, "\"" + v + "\"");
    }

    const std::string &text() const { return out_; }

  private:
    void
    indent(const std::string &key)
    {
        if (!first_.empty()) {
            if (!first_.back())
                out_ += ",\n";
            first_.back() = false;
        }
        for (int i = 0; i < depth_; i++)
            out_ += "  ";
        if (!key.empty())
            out_ += "\"" + key + "\": ";
    }

    std::string out_;
    std::vector<bool> first_;
    int depth_ = 0;
};

QuantizedHead
makeHead(int seq, int bits, int queries = 8, uint64_t seed = 42)
{
    WorkloadSpec spec;
    spec.seq_len = seq;
    spec.query_len = queries;
    spec.head_dim = 128;
    spec.seed = seed;
    return quantizeHead(generateHead(spec), bits);
}

} // namespace

int
main(int argc, char **argv)
{
    Cli cli(argc, argv);
    const bool quick = cli.getBool("quick");
    const int reps = static_cast<int>(cli.getInt("reps", quick ? 2 : 3));
    const std::string out_path = cli.get("out", "BENCH_perf.json");
    const int sweep_threads = static_cast<int>(
        cli.getInt("threads", ThreadPool::hardwareThreads()));

    banner(std::string("PADE perf suite (") +
           (quick ? "quick" : "full") + ", best of " +
           std::to_string(reps) + ")");

    Json json;
    json.openObject();
    json.str("schema", "pade-perf-v1");
    json.field("quick", std::string(quick ? "true" : "false"));
    json.field("reps", static_cast<int64_t>(reps));
    json.field("hardware_threads",
               static_cast<int64_t>(ThreadPool::hardwareThreads()));
    int64_t checksum = 0; // defeats dead-code elimination; recorded

    // ------------------------------------------------------------------
    // 1. QK scoring kernel: popcount vs scalar exactDot over all
    //    (query, key) pairs.
    // ------------------------------------------------------------------
    std::printf("\n[1/4] QK scoring kernel (exactDot over all pairs)\n");
    Table t1;
    t1.header({"seq", "bits", "scalar ns/pair", "popcount ns/pair",
               "speedup"});
    json.openArray("qk_kernel");

    std::vector<std::pair<int, int>> qk_points;
    for (int seq : quick ? std::vector<int>{1024, 4096}
                         : std::vector<int>{1024, 4096, 16384})
        for (int bits : quick ? std::vector<int>{8}
                              : std::vector<int>{4, 8})
            qk_points.emplace_back(seq, bits);

    for (auto [seq, bits] : qk_points) {
        const QuantizedHead head = makeHead(seq, bits);
        const int p = head.q.values.rows();
        const double pairs = static_cast<double>(p) * seq;

        const double scalar_ms = bestMs(reps, [&] {
            for (int i = 0; i < p; i++) {
                auto q = head.q.values.row(i);
                for (int j = 0; j < seq; j++)
                    checksum += exactDotScalar(q, head.k_planes, j);
            }
        });
        QueryPlanes qp;
        const double pop_ms = bestMs(reps, [&] {
            for (int i = 0; i < p; i++) {
                qp.assign(head.q.values.row(i));
                for (int j = 0; j < seq; j++)
                    checksum += exactDot(qp, head.k_planes, j);
            }
        });
        const double speedup = scalar_ms / pop_ms;
        t1.row({std::to_string(seq), std::to_string(bits),
                Table::num(scalar_ms * 1e6 / pairs, 1),
                Table::num(pop_ms * 1e6 / pairs, 1),
                Table::num(speedup, 2)});
        json.openObject();
        json.field("seq", static_cast<int64_t>(seq));
        json.field("bits", static_cast<int64_t>(bits));
        json.field("head_dim", static_cast<int64_t>(128));
        json.field("scalar_ns_per_pair", scalar_ms * 1e6 / pairs);
        json.field("popcount_ns_per_pair", pop_ms * 1e6 / pairs);
        json.field("speedup", speedup);
        json.close();
    }
    json.close(true);
    t1.print();

    // ------------------------------------------------------------------
    // 2. Full padeAttention under both dispatches, reused workspace.
    // ------------------------------------------------------------------
    std::printf("\n[2/4] padeAttention (guarded, workspace reuse)\n");
    Table t2;
    t2.header({"seq", "scalar ms", "popcount ms", "speedup",
               "keep rate"});
    json.openArray("pade_attention");
    for (int seq : quick ? std::vector<int>{1024}
                         : std::vector<int>{1024, 4096}) {
        const QuantizedHead head = makeHead(seq, 8);
        PadeWorkspace ws;
        PadeConfig scalar_cfg;
        scalar_cfg.qk_kernel = QkKernel::kScalar;
        double keep = 0.0;
        const double scalar_ms = bestMs(reps, [&] {
            const PadeResult res = padeAttention(head, scalar_cfg, &ws);
            checksum += static_cast<int64_t>(res.stats.keys_retained);
        });
        const double pop_ms = bestMs(reps, [&] {
            const PadeResult res = padeAttention(head, {}, &ws);
            checksum += static_cast<int64_t>(res.stats.keys_retained);
            keep = res.stats.keepRate();
        });
        t2.row({std::to_string(seq), Table::num(scalar_ms, 2),
                Table::num(pop_ms, 2),
                Table::num(scalar_ms / pop_ms, 2),
                Table::num(keep, 3)});
        json.openObject();
        json.field("seq", static_cast<int64_t>(seq));
        json.field("bits", static_cast<int64_t>(8));
        json.field("scalar_ms", scalar_ms);
        json.field("popcount_ms", pop_ms);
        json.field("speedup", scalar_ms / pop_ms);
        json.field("keep_rate", keep);
        json.close();
    }
    json.close(true);
    t2.print();

    // ------------------------------------------------------------------
    // 3. Reference attention (cache-blocked matmul path + flash).
    // ------------------------------------------------------------------
    std::printf("\n[3/4] reference attention (oracle path)\n");
    Table t3;
    t3.header({"seq", "queries", "dense ms", "flash ms"});
    json.openArray("reference");
    for (int seq : quick ? std::vector<int>{1024}
                         : std::vector<int>{1024, 2048}) {
        WorkloadSpec spec;
        spec.seq_len = seq;
        spec.query_len = 256;
        spec.head_dim = 128;
        const AttentionHead head = generateHead(spec);
        const double dense_ms = bestMs(reps, [&] {
            const MatrixF o = denseAttention(head.q, head.k, head.v,
                                             head.scale);
            checksum += static_cast<int64_t>(o.at(0, 0) * 1e3);
        });
        const double flash_ms = bestMs(reps, [&] {
            const MatrixF o = flashAttention(head.q, head.k, head.v,
                                             head.scale, 64);
            checksum += static_cast<int64_t>(o.at(0, 0) * 1e3);
        });
        t3.row({std::to_string(seq), "256", Table::num(dense_ms, 2),
                Table::num(flash_ms, 2)});
        json.openObject();
        json.field("seq", static_cast<int64_t>(seq));
        json.field("queries", static_cast<int64_t>(256));
        json.field("dense_ms", dense_ms);
        json.field("flash_ms", flash_ms);
        json.close();
    }
    json.close(true);
    t3.print();

    // ------------------------------------------------------------------
    // 4. Batch-driver sweep across {seq, bits, concentration}.
    // ------------------------------------------------------------------
    std::printf("\n[4/4] batch-driver sweep (%d workers)\n",
                sweep_threads);
    std::vector<BatchItem> sweep;
    for (int seq : quick ? std::vector<int>{2048}
                         : std::vector<int>{2048, 8192})
        for (int bits : {8, 4})
            for (double conc : {0.75, 1.25}) {
                BatchItem item;
                item.req.model = llama2_7b();
                item.req.model.concentration = conc;
                item.req.dataset = dsWikitext2();
                item.req.dataset.seq_len = seq;
                item.req.bits = bits;
                item.req.max_sim_seq = 2048;
                sweep.push_back(item);
            }
    const BatchDriver driver(BatchOptions{.threads = sweep_threads,
                                          .seed_base = 7});
    const double sweep_ms = bestMs(1, [&] {
        const BatchResult res = driver.run(sweep);
        checksum += res.completed;
        if (res.failed > 0)
            std::fprintf(stderr, "sweep: %d requests failed\n",
                         res.failed);
    });
    std::printf("%zu requests in %.1f ms\n", sweep.size(), sweep_ms);
    json.openObject("batch_sweep");
    json.field("requests", static_cast<int64_t>(sweep.size()));
    json.field("threads", static_cast<int64_t>(sweep_threads));
    json.field("wall_ms", sweep_ms);
    json.close();

    json.field("checksum", checksum);
    json.close();

    FILE *f = std::fopen(out_path.c_str(), "w");
    if (!f) {
        std::fprintf(stderr, "cannot write %s\n", out_path.c_str());
        return 1;
    }
    std::fprintf(f, "%s\n", json.text().c_str());
    std::fclose(f);
    std::printf("\nwrote %s\n", out_path.c_str());
    return 0;
}

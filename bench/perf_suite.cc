/**
 * @file
 * Perf-tracking suite: times the simulator's hot paths and emits a
 * machine-readable BENCH_perf.json so the performance trajectory is
 * visible across PRs (CI uploads the file as an artifact).
 *
 * Nine stages are measured:
 *  1. QK scoring kernel — the three-way kernel comparison (scalar
 *     ctz-walk oracle, word-parallel popcount, AVX2 SIMD backend)
 *     across {seq, bits, head_dim} points, including the
 *     head_dim >= 128 rows the SIMD backend targets;
 *  2. full padeAttention under all kernel dispatches, with a reused
 *     PadeWorkspace (the allocation-free hot path);
 *  3. reference attention — cache-blocked dense matmul path and the
 *     tiled flash recurrence (the oracle every figure bench pays for);
 *  4. a batch-driver sweep across {seq, bits, concentration} points,
 *     fanned over the thread pool (the fig17-style DSE bottleneck);
 *  5. serving decode — per-token cost of the incremental KvCache
 *     (append + guarded step) against re-packing the full history
 *     every token, across context lengths. The append (cache
 *     maintenance) component is context-independent for the cached
 *     path and linear in context for re-pack — the subsystem's
 *     headline property;
 *  6. GQA layer decode — per-token cost of a whole 8-query-head
 *     layer at KV-sharing ratios 1:1 / 4:1 / 8:1 (LayerEngine with
 *     shared caches), against 8x the single-head cost. Sharing the
 *     KV stream amortizes the append and the per-key page/PlaneWork
 *     lookups across the group, so the grouped cost sits measurably
 *     below heads-times-single — and KV residency scales with
 *     kv_heads, not heads;
 *  7. model serving — (a) the ModelEngine's software-pipelined layer
 *     schedule against the serial layer-by-layer reference at 2 and 4
 *     layers: wall time (same pool for both, so the GQA fan-out is
 *     held equal) plus the round (critical-path span) speedup, the
 *     schedule property the wall ratio realizes once the host has
 *     >= layers cores; and (b) a
 *     ContinuousBatcher run over a shared-prefix trace with the
 *     cross-session prefix cache off vs on — adopted prompt tokens,
 *     KV bytes never re-materialized, and the (bit-identical)
 *     checksum match;
 *  8. telemetry overhead — the pipelined model decode of stage 7
 *     timed with trace-span recording off (metric counters only, the
 *     permanent registry cost) and on (ring-buffered round/unit
 *     spans); the delta is the observability tax and must stay under
 *     2% (docs/OBSERVABILITY.md);
 *  9. cross-session co-scheduling + windowed decode — (a) serving
 *     traces through the ContinuousBatcher with the per-session
 *     nested fan-out vs the global round co-scheduler at slots=8 /
 *     layers=2 / threads=8, two rows: a scheduling-bound shape
 *     (near-free units, so the wall ratio isolates the fan-out
 *     machinery — the co <= 0.6x acceptance row) and the
 *     examples/batch_serving shape (compute-bound; the bubble-ratio
 *     contrast, whose `bubble_ratio_coscheduled` is the committed
 *     baseline the telemetry CI job gates batch_serving runs
 *     against); both rows assert the bit-identical checksum match;
 *     and (b) the window-aware decode scan order — per-token decode
 *     cost of a layer under a sink+recency retention window at
 *     context 4096 vs 16384, which must stay flat (the scan and its
 *     scratch clearing are O(window), not O(context)).
 *
 * Flags: --quick (CI smoke: fewer/smaller points), --reps=N best-of
 * repetitions (default 3), --out=FILE (default BENCH_perf.json),
 * --threads=N sweep workers (default hardware).
 */

#include <chrono>
#include <cstdint>
#include <cstdio>
#include <string>
#include <vector>

#include "attention/reference.h"
#include "bench/common.h"
#include "core/pade_attention.h"
#include "core/simd/qk_dispatch.h"
#include "obs/telemetry.h"
#include "obs/trace.h"
#include "quant/bitplane.h"
#include "runtime/batch_driver.h"
#include "runtime/thread_pool.h"
#include "serving/continuous_batcher.h"
#include "serving/layer_engine.h"
#include "serving/model_engine.h"
#include "workload/generator.h"

using namespace pade;
using namespace pade::bench;

namespace {

/** Wall-clock milliseconds of fn(), best of @p reps runs. */
template <typename F>
double
bestMs(int reps, F &&fn)
{
    double best = 0.0;
    for (int r = 0; r < reps; r++) {
        const auto t0 = std::chrono::steady_clock::now();
        fn();
        const auto t1 = std::chrono::steady_clock::now();
        const double ms =
            std::chrono::duration<double, std::milli>(t1 - t0).count();
        if (r == 0 || ms < best)
            best = ms;
    }
    return best;
}

/** Minimal JSON emitter: objects/arrays of already-formatted fields. */
class Json
{
  public:
    void
    openObject(const std::string &key = "")
    {
        indent(key);
        out_ += "{\n";
        depth_++;
        first_.push_back(true);
    }
    void
    openArray(const std::string &key)
    {
        indent(key);
        out_ += "[\n";
        depth_++;
        first_.push_back(true);
    }
    void
    close(bool array = false)
    {
        out_ += "\n";
        depth_--;
        for (int i = 0; i < depth_; i++)
            out_ += "  ";
        out_ += array ? "]" : "}";
        first_.pop_back();
        if (!first_.empty())
            first_.back() = false;
    }
    void
    field(const std::string &key, const std::string &raw)
    {
        indent(key);
        out_ += raw;
    }
    void
    field(const std::string &key, double v)
    {
        char buf[64];
        std::snprintf(buf, sizeof(buf), "%.6g", v);
        field(key, std::string(buf));
    }
    void
    field(const std::string &key, int64_t v)
    {
        field(key, std::to_string(v));
    }
    void
    str(const std::string &key, const std::string &v)
    {
        field(key, "\"" + v + "\"");
    }

    const std::string &text() const { return out_; }

  private:
    void
    indent(const std::string &key)
    {
        if (!first_.empty()) {
            if (!first_.back())
                out_ += ",\n";
            first_.back() = false;
        }
        for (int i = 0; i < depth_; i++)
            out_ += "  ";
        if (!key.empty())
            out_ += "\"" + key + "\": ";
    }

    std::string out_;
    std::vector<bool> first_;
    int depth_ = 0;
};

QuantizedHead
makeHead(int seq, int bits, int head_dim = 128, int queries = 8,
         uint64_t seed = 42)
{
    WorkloadSpec spec;
    spec.seq_len = seq;
    spec.query_len = queries;
    spec.head_dim = head_dim;
    spec.seed = seed;
    return quantizeHead(generateHead(spec), bits);
}

/** Measured cost of one GQA layer configuration (section 6). */
struct GqaDecodeCost
{
    double layer_us_per_tok = 0.0; //!< whole layer: appends + decode
    std::size_t kv_bytes = 0;      //!< resident KV after the run
};

/**
 * Per-token decode cost of one whole layer: prefill ctx tokens
 * (untimed), then time `steps` rounds of KV append + grouped decode
 * across every head, best of `reps` fresh engines. An enabled
 * @p retention policy windows the decode scan (section 9b measures
 * its context-independence with it).
 */
GqaDecodeCost
measureGqaDecode(int heads, int kv_heads, int ctx, int steps, int reps,
                 int64_t &checksum, RetentionPolicy retention = {})
{
    // A few untimed decode steps absorb one-time costs (grow-once
    // decode scratch sized to the stream) so the timed region sees
    // steady-state us/token.
    const int warmup = 4;
    LayerSpec spec;
    spec.heads = heads;
    spec.kv_heads = kv_heads;
    spec.head_dim = 128;
    spec.prompt_len = ctx;
    spec.decode_steps = warmup + steps;
    spec.seed = 42;
    const LayerWorkload lw = generateLayerWorkload(spec);

    LayerEngineConfig lc;
    lc.heads = heads;
    lc.kv_heads = kv_heads;
    lc.head_dim = spec.head_dim;
    lc.retention = retention;

    std::vector<float> v_scales;
    std::vector<float> logit_scales;
    for (const QuantizedHead &g : lw.groups) {
        v_scales.push_back(g.v.params.scale);
        logit_scales.push_back(g.logit_scale);
    }

    MatrixI8 k_stage(kv_heads, spec.head_dim);
    MatrixI8 v_stage(kv_heads, spec.head_dim);
    MatrixI8 q_stage(heads, spec.head_dim);
    MatrixF out(heads, spec.head_dim);

    GqaDecodeCost cost;
    for (int r = 0; r < std::max(1, reps); r++) {
        LayerEngine layer(lc, v_scales);
        for (int pos = 0; pos < ctx; pos++) {
            lw.stageKv(pos, k_stage, v_stage);
            layer.appendToken(k_stage, v_stage);
        }
        for (int t = 0; t < warmup; t++) {
            const int pos = ctx + t;
            lw.stageKv(pos, k_stage, v_stage);
            lw.stageQueries(pos, q_stage);
            layer.appendToken(k_stage, v_stage);
            const LayerStep st =
                layer.decode(q_stage, logit_scales, out);
            checksum += st.retained;
        }
        const auto t0 = std::chrono::steady_clock::now();
        for (int t = 0; t < steps; t++) {
            const int pos = ctx + warmup + t;
            lw.stageKv(pos, k_stage, v_stage);
            lw.stageQueries(pos, q_stage);
            layer.appendToken(k_stage, v_stage);
            const LayerStep st =
                layer.decode(q_stage, logit_scales, out);
            checksum += st.retained;
        }
        const double us = std::chrono::duration<double, std::micro>(
                              std::chrono::steady_clock::now() - t0)
                              .count() /
            steps;
        if (r == 0 || us < cost.layer_us_per_tok)
            cost.layer_us_per_tok = us;
        cost.kv_bytes = layer.bytesUsed();
    }
    return cost;
}

/** Section 7a measurement: wall time and scheduling-round count. */
struct ModelServeCost
{
    double us_per_tok = 0.0;
    /** advance() rounds to drain the stream. A pipelined round runs
     *  its flights concurrently (one unit of critical-path span);
     *  a serial round runs one whole token (`layers` units of span).
     *  serial_rounds * layers / pipelined_rounds is therefore the
     *  schedule's critical-path speedup given >= layers workers —
     *  deterministic, unlike the wall ratio, which saturates at the
     *  host's actual core count (1.0 on a single-core runner). */
    int64_t rounds = 0;
};

/**
 * Per-position cost of one whole-model token stream (section 7a):
 * every position of a ctx-token prompt plus `steps` decode tokens is
 * fed up front and the engine drained once, so the pipelined schedule
 * keeps its flight window full — layer l of token t overlapping layer
 * l+1 of token t-1 — while the serial reference schedule runs the
 * identical stream layer-by-layer. Both schedules get the SAME pool
 * (the serial one still fans its GQA groups out on it), so the ratio
 * isolates the pipeline overlap.
 */
ModelServeCost
measureModelServe(int layers, bool pipeline, ThreadPool *pool, int ctx,
                  int steps, int reps, int64_t &checksum)
{
    ModelSpec spec;
    spec.layers = layers;
    spec.heads = 8;
    spec.kv_heads = 2;
    spec.head_dim = 64;
    spec.prompt_len = ctx;
    spec.decode_steps = steps;
    spec.seed = 42;
    ModelWorkload work(spec);

    ModelEngineConfig mc;
    mc.layers = layers;
    mc.pipeline = pipeline;
    mc.layer.heads = spec.heads;
    mc.layer.kv_heads = spec.kv_heads;
    mc.layer.head_dim = spec.head_dim;
    mc.layer.page_tokens = 64;

    const auto streams = static_cast<std::size_t>(layers) *
        static_cast<std::size_t>(spec.kv_heads);
    const std::vector<float> v_scales(streams, work.vScale());
    const std::vector<float> logit_scales(streams, work.logitScale());

    ModelServeCost cost;
    for (int r = 0; r < std::max(1, reps); r++) {
        int64_t retained = 0;
        ModelEngine engine(
            mc, v_scales, logit_scales,
            [&work](int layer, int pos, MatrixI8 &k, MatrixI8 &v,
                    MatrixI8 &q) {
                work.stageKv(layer, pos, k, v);
                work.stageQueries(layer, pos, q);
            },
            [&retained](const TokenResult &tr) {
                for (const LayerStep &st : tr.steps)
                    retained += st.retained;
            });
        int64_t rounds = 0;
        const auto t0 = std::chrono::steady_clock::now();
        for (int pos = 0; pos < spec.positions(); pos++)
            engine.feed(pos, spec.prompt_len);
        while (engine.advance(pool))
            rounds++;
        const double us = std::chrono::duration<double, std::micro>(
                              std::chrono::steady_clock::now() - t0)
                              .count() /
            spec.positions();
        checksum += retained;
        cost.rounds = rounds;
        if (r == 0 || us < cost.us_per_tok)
            cost.us_per_tok = us;
    }
    return cost;
}

} // namespace

int
main(int argc, char **argv)
{
    Cli cli(argc, argv);
    const bool quick = cli.getBool("quick");
    const int reps = static_cast<int>(cli.getInt("reps", quick ? 2 : 3));
    const std::string out_path = cli.get("out", "BENCH_perf.json");
    const int sweep_threads = static_cast<int>(
        cli.getInt("threads", ThreadPool::hardwareThreads()));

    banner(std::string("PADE perf suite (") +
           (quick ? "quick" : "full") + ", best of " +
           std::to_string(reps) + ")");

    Json json;
    json.openObject();
    json.str("schema", "pade-perf-v1");
    json.field("quick", std::string(quick ? "true" : "false"));
    json.field("reps", static_cast<int64_t>(reps));
    json.field("hardware_threads",
               static_cast<int64_t>(ThreadPool::hardwareThreads()));
    int64_t checksum = 0; // defeats dead-code elimination; recorded

    // ------------------------------------------------------------------
    // 1. QK scoring kernel: the three-way comparison — scalar oracle,
    //    word-parallel popcount, AVX2 SIMD — exactDot over all
    //    (query, key) pairs. head_dim rows >= 128 are the ones the
    //    SIMD backend targets (ISSUE 3 acceptance: >= 1.5x over
    //    popcount there).
    // ------------------------------------------------------------------
    std::printf("\n[1/9] QK scoring kernel (exactDot over all pairs; "
                "simd %s)\n",
                qkSimdAvailable() ? "available" : "UNAVAILABLE");
    Table t1;
    t1.header({"seq", "bits", "hdim", "scalar ns/pair",
               "popcount ns/pair", "simd ns/pair", "simd/pop"});
    json.field("simd_available",
               std::string(qkSimdAvailable() ? "true" : "false"));
    json.openArray("qk_kernel");

    struct QkPoint
    {
        int seq, bits, head_dim;
    };
    std::vector<QkPoint> qk_points;
    if (quick) {
        qk_points = {{1024, 8, 128}, {4096, 8, 128}, {4096, 8, 256}};
    } else {
        for (int seq : {1024, 4096, 16384})
            for (int bits : {4, 8})
                qk_points.push_back({seq, bits, 128});
        // head_dim sweep at the paper operating point: covers the
        // pair-register kernel (<= 128), the quad kernel (<= 256),
        // and the wide chunked kernel beyond.
        for (int hd : {64, 256, 512})
            qk_points.push_back({4096, 8, hd});
    }

    for (const auto [seq, bits, head_dim] : qk_points) {
        const QuantizedHead head = makeHead(seq, bits, head_dim);
        const int p = head.q.values.rows();
        const double pairs = static_cast<double>(p) * seq;

        const double scalar_ms = bestMs(reps, [&] {
            for (int i = 0; i < p; i++) {
                auto q = head.q.values.row(i);
                for (int j = 0; j < seq; j++)
                    checksum += exactDotScalar(q, head.k_planes, j);
            }
        });
        QueryPlanes qp;
        const double pop_ms = bestMs(reps, [&] {
            for (int i = 0; i < p; i++) {
                qp.assign(head.q.values.row(i));
                for (int j = 0; j < seq; j++)
                    checksum += exactDot(qp, head.k_planes, j);
            }
        });
        const double simd_ms = bestMs(reps, [&] {
            for (int i = 0; i < p; i++) {
                qp.assign(head.q.values.row(i));
                for (int j = 0; j < seq; j++)
                    checksum += exactDotSimd(qp, head.k_planes, j);
            }
        });
        const double simd_vs_pop = pop_ms / simd_ms;
        t1.row({std::to_string(seq), std::to_string(bits),
                std::to_string(head_dim),
                Table::num(scalar_ms * 1e6 / pairs, 1),
                Table::num(pop_ms * 1e6 / pairs, 1),
                Table::num(simd_ms * 1e6 / pairs, 1),
                Table::num(simd_vs_pop, 2)});
        json.openObject();
        json.field("seq", static_cast<int64_t>(seq));
        json.field("bits", static_cast<int64_t>(bits));
        json.field("head_dim", static_cast<int64_t>(head_dim));
        json.field("scalar_ns_per_pair", scalar_ms * 1e6 / pairs);
        json.field("popcount_ns_per_pair", pop_ms * 1e6 / pairs);
        json.field("simd_ns_per_pair", simd_ms * 1e6 / pairs);
        json.field("speedup_pop_vs_scalar", scalar_ms / pop_ms);
        json.field("speedup_simd_vs_pop", simd_vs_pop);
        json.close();
    }
    json.close(true);
    t1.print();

    // ------------------------------------------------------------------
    // 2. Full padeAttention under all three dispatches, reused
    //    workspace. kSimd silently resolves to kPopcount when the
    //    backend is unavailable (the two columns then read the same).
    // ------------------------------------------------------------------
    std::printf("\n[2/9] padeAttention (guarded, workspace reuse)\n");
    Table t2;
    t2.header({"seq", "scalar ms", "popcount ms", "simd ms",
               "simd/scalar", "keep rate"});
    json.openArray("pade_attention");
    for (int seq : quick ? std::vector<int>{1024}
                         : std::vector<int>{1024, 4096}) {
        const QuantizedHead head = makeHead(seq, 8);
        PadeWorkspace ws;
        double keep = 0.0;
        const auto time_kernel = [&](QkKernel k) {
            PadeConfig cfg;
            cfg.qk_kernel = k;
            return bestMs(reps, [&] {
                const PadeResult res = padeAttention(head, cfg, &ws);
                checksum +=
                    static_cast<int64_t>(res.stats.keys_retained);
                keep = res.stats.keepRate();
            });
        };
        const double scalar_ms = time_kernel(QkKernel::kScalar);
        const double pop_ms = time_kernel(QkKernel::kPopcount);
        const double simd_ms = time_kernel(QkKernel::kSimd);
        t2.row({std::to_string(seq), Table::num(scalar_ms, 2),
                Table::num(pop_ms, 2), Table::num(simd_ms, 2),
                Table::num(scalar_ms / simd_ms, 2),
                Table::num(keep, 3)});
        json.openObject();
        json.field("seq", static_cast<int64_t>(seq));
        json.field("bits", static_cast<int64_t>(8));
        json.field("scalar_ms", scalar_ms);
        json.field("popcount_ms", pop_ms);
        json.field("simd_ms", simd_ms);
        json.field("speedup_pop_vs_scalar", scalar_ms / pop_ms);
        json.field("speedup_simd_vs_scalar", scalar_ms / simd_ms);
        json.field("keep_rate", keep);
        json.close();
    }
    json.close(true);
    t2.print();

    // ------------------------------------------------------------------
    // 3. Reference attention (cache-blocked matmul path + flash).
    // ------------------------------------------------------------------
    std::printf("\n[3/9] reference attention (oracle path)\n");
    Table t3;
    t3.header({"seq", "queries", "dense ms", "flash ms"});
    json.openArray("reference");
    for (int seq : quick ? std::vector<int>{1024}
                         : std::vector<int>{1024, 2048}) {
        WorkloadSpec spec;
        spec.seq_len = seq;
        spec.query_len = 256;
        spec.head_dim = 128;
        const AttentionHead head = generateHead(spec);
        const double dense_ms = bestMs(reps, [&] {
            const MatrixF o = denseAttention(head.q, head.k, head.v,
                                             head.scale);
            checksum += static_cast<int64_t>(o.at(0, 0) * 1e3);
        });
        const double flash_ms = bestMs(reps, [&] {
            const MatrixF o = flashAttention(head.q, head.k, head.v,
                                             head.scale, 64);
            checksum += static_cast<int64_t>(o.at(0, 0) * 1e3);
        });
        t3.row({std::to_string(seq), "256", Table::num(dense_ms, 2),
                Table::num(flash_ms, 2)});
        json.openObject();
        json.field("seq", static_cast<int64_t>(seq));
        json.field("queries", static_cast<int64_t>(256));
        json.field("dense_ms", dense_ms);
        json.field("flash_ms", flash_ms);
        json.close();
    }
    json.close(true);
    t3.print();

    // ------------------------------------------------------------------
    // 4. Batch-driver sweep across {seq, bits, concentration}.
    // ------------------------------------------------------------------
    std::printf("\n[4/9] batch-driver sweep (%d workers)\n",
                sweep_threads);
    std::vector<BatchItem> sweep;
    for (int seq : quick ? std::vector<int>{2048}
                         : std::vector<int>{2048, 8192})
        for (int bits : {8, 4})
            for (double conc : {0.75, 1.25}) {
                BatchItem item;
                item.req.model = llama2_7b();
                item.req.model.concentration = conc;
                item.req.dataset = dsWikitext2();
                item.req.dataset.seq_len = seq;
                item.req.bits = bits;
                item.req.max_sim_seq = 2048;
                sweep.push_back(item);
            }
    const BatchDriver driver(BatchOptions{.threads = sweep_threads,
                                          .seed_base = 7});
    const double sweep_ms = bestMs(1, [&] {
        const BatchResult res = driver.run(sweep);
        checksum += res.completed;
        if (res.failed > 0)
            std::fprintf(stderr, "sweep: %d requests failed\n",
                         res.failed);
    });
    std::printf("%zu requests in %.1f ms\n", sweep.size(), sweep_ms);
    json.openObject("batch_sweep");
    json.field("requests", static_cast<int64_t>(sweep.size()));
    json.field("threads", static_cast<int64_t>(sweep_threads));
    json.field("wall_ms", sweep_ms);
    json.close();

    // ------------------------------------------------------------------
    // 5. Serving decode: incremental KvCache vs full re-pack. The
    //    cached pack cost (append only) must stay flat across context
    //    lengths — it is O(bits * head_dim) per token — while the
    //    re-pack cost is O(context); the total step cost additionally
    //    carries the O(context) guarded scan both paths share.
    // ------------------------------------------------------------------
    std::printf("\n[5/9] serving decode (incremental KvCache vs "
                "re-pack)\n");
    Table t5;
    t5.header({"ctx", "append us/tok", "cached us/tok",
               "repack us/tok", "repack/cached", "decode tok/s"});
    json.openArray("serving_decode");
    const int serve_steps = quick ? 6 : 12;
    for (int ctx : quick ? std::vector<int>{512, 1024}
                         : std::vector<int>{1024, 2048, 4096}) {
        ServingDecodePoint pt;
        pt.ctx = ctx;
        pt.steps = serve_steps;
        pt.reps = reps;
        const ServingDecodeCost c =
            measureServingDecode(pt, PadeConfig{});
        checksum += c.pages;
        // Coarse steady_clock ticks can measure a 0 us cached loop;
        // keep the ratios finite so the JSON stays parseable.
        const double cached_us = std::max(c.cached_us_per_tok, 1e-9);

        t5.row({std::to_string(ctx),
                Table::num(c.append_us_per_tok, 2),
                Table::num(c.cached_us_per_tok, 1),
                Table::num(c.repack_us_per_tok, 1),
                Table::num(c.repack_us_per_tok / cached_us, 1),
                Table::num(1e6 / cached_us, 0)});
        json.openObject();
        json.field("ctx", static_cast<int64_t>(ctx));
        json.field("steps", static_cast<int64_t>(serve_steps));
        json.field("append_us_per_tok", c.append_us_per_tok);
        json.field("cached_us_per_tok", c.cached_us_per_tok);
        json.field("repack_us_per_tok", c.repack_us_per_tok);
        json.field("repack_vs_cached",
                   c.repack_us_per_tok / cached_us);
        json.field("decode_tok_per_s", 1e6 / cached_us);
        json.close();
    }
    json.close(true);
    t5.print();

    // ------------------------------------------------------------------
    // 6. GQA layer decode: a whole 8-head layer at KV sharing ratios
    //    1:1 / 4:1 / 8:1 versus 8x the single-head cost. The shared
    //    cache amortizes appends and per-key page/PlaneWork lookups
    //    across the group (acceptance: the 8:1 ratio sits measurably
    //    below 1.0), and KV residency scales with kv_heads.
    // ------------------------------------------------------------------
    std::printf("\n[6/9] GQA layer decode (8 query heads, shared KV "
                "caches)\n");
    Table t6;
    t6.header({"heads", "kv", "ratio", "ctx", "layer us/tok",
               "us/tok/head", "vs heads x single", "KV MB"});
    json.openArray("gqa_decode");
    const int gqa_ctx = quick ? 512 : 1024;
    const int gqa_steps = quick ? 6 : 12;

    const GqaDecodeCost single =
        measureGqaDecode(1, 1, gqa_ctx, gqa_steps, reps, checksum);
    struct GqaRow
    {
        int heads, kv_heads;
    };
    for (const auto [heads, kv_heads] :
         {GqaRow{1, 1}, GqaRow{8, 8}, GqaRow{8, 2}, GqaRow{8, 1}}) {
        const GqaDecodeCost c = heads == 1
            ? single
            : measureGqaDecode(heads, kv_heads, gqa_ctx, gqa_steps,
                               reps, checksum);
        const double vs_single = c.layer_us_per_tok /
            (heads * single.layer_us_per_tok);
        char ratio[16];
        std::snprintf(ratio, sizeof(ratio), "%d:1",
                      heads / kv_heads);
        t6.row({std::to_string(heads), std::to_string(kv_heads),
                ratio, std::to_string(gqa_ctx),
                Table::num(c.layer_us_per_tok, 1),
                Table::num(c.layer_us_per_tok / heads, 1),
                Table::num(vs_single, 3),
                Table::num(static_cast<double>(c.kv_bytes) / 1e6,
                           2)});
        json.openObject();
        json.field("heads", static_cast<int64_t>(heads));
        json.field("kv_heads", static_cast<int64_t>(kv_heads));
        json.field("ctx", static_cast<int64_t>(gqa_ctx));
        json.field("steps", static_cast<int64_t>(gqa_steps));
        json.field("layer_us_per_tok", c.layer_us_per_tok);
        json.field("us_per_tok_per_head",
                   c.layer_us_per_tok / heads);
        json.field("vs_heads_x_single", vs_single);
        json.field("kv_bytes", static_cast<int64_t>(c.kv_bytes));
        json.close();
    }
    json.close(true);
    t6.print();

    // ------------------------------------------------------------------
    // 7. Model serving: (a) pipelined vs serial ModelEngine layer
    //    schedule (same pool, same token stream — the ratio is the
    //    pipeline overlap), (b) cross-session prefix caching in the
    //    ContinuousBatcher (adopted tokens + KV bytes saved; the
    //    checksums must match bit for bit, cache on or off).
    // ------------------------------------------------------------------
    std::printf("\n[7/9] model serving (pipelined layers, prefix "
                "cache)\n");
    Table t7;
    t7.header({"layers", "serial us/tok", "pipelined us/tok",
               "wall speedup", "round speedup"});
    json.openArray("model_pipeline");
    {
        const int ctx = quick ? 192 : 384;
        const int steps = quick ? 16 : 32;
        ThreadPool pool(sweep_threads);
        for (int layers : {2, 4}) {
            const ModelServeCost serial = measureModelServe(
                layers, false, &pool, ctx, steps, reps, checksum);
            const ModelServeCost piped = measureModelServe(
                layers, true, &pool, ctx, steps, reps, checksum);
            // Critical-path span ratio of the two schedules: a serial
            // round is `layers` sequential units, a pipelined round
            // is one (its flights run concurrently). This is the
            // speedup the pipeline delivers given >= layers workers;
            // the wall ratio realizes it up to the host core count.
            const double round_speedup =
                static_cast<double>(serial.rounds * layers) /
                static_cast<double>(piped.rounds);
            t7.row({std::to_string(layers),
                    Table::num(serial.us_per_tok, 1),
                    Table::num(piped.us_per_tok, 1),
                    Table::num(serial.us_per_tok / piped.us_per_tok,
                               2),
                    Table::num(round_speedup, 2)});
            json.openObject();
            json.field("layers", static_cast<int64_t>(layers));
            json.field("ctx", static_cast<int64_t>(ctx));
            json.field("decode_steps", static_cast<int64_t>(steps));
            json.field("serial_us_per_tok", serial.us_per_tok);
            json.field("pipelined_us_per_tok", piped.us_per_tok);
            json.field("serial_rounds", serial.rounds);
            json.field("pipelined_rounds", piped.rounds);
            json.field("wall_speedup",
                       serial.us_per_tok / piped.us_per_tok);
            json.field("round_speedup_pipelined_vs_serial",
                       round_speedup);
            json.close();
        }
    }
    json.close(true);
    t7.print();

    {
        TraceSpec ts;
        ts.num_requests = quick ? 10 : 16;
        ts.rate_per_s = 4000.0;
        ts.prompt_min = 24;
        ts.prompt_max = 48;
        ts.decode_min = 4;
        ts.decode_max = 8;
        ts.seed = 2026;
        ts.prefix_groups = 2;
        ts.prefix_tokens = 128;
        const std::vector<ServingRequest> trace =
            poissonArrivalTrace(ts);

        BatcherOptions opt;
        opt.threads = sweep_threads;
        opt.max_active = 4;
        opt.prefill_chunk = 32;
        opt.layers = 2;
        opt.heads = 4;
        opt.kv_heads = 2;
        opt.head_dim = 64;
        opt.page_tokens = 64; // prefix spans exactly 2 shared pages
        ServingReport cold;
        ServingReport warm;
        const double cold_ms = bestMs(1, [&] {
            cold = ContinuousBatcher(opt).run(trace);
        });
        opt.prefix_cache = true;
        const double warm_ms = bestMs(1, [&] {
            warm = ContinuousBatcher(opt).run(trace);
        });
        checksum += static_cast<int64_t>(warm.checksum & 0xffff);

        const bool match = cold.checksum == warm.checksum &&
            cold.prefill_checksum == warm.prefill_checksum;
        if (!match)
            std::fprintf(stderr,
                         "prefix cache changed outputs (BUG)\n");
        const double hit_rate = warm.tokens_prefilled > 0
            ? static_cast<double>(warm.tokens_prefix_hit) /
                static_cast<double>(warm.tokens_prefilled)
            : 0.0;
        std::printf("prefix cache: %llu/%llu prompt tokens adopted "
                    "(%.0f%%), %.2f MB KV never re-materialized, "
                    "checksums %s (cold %.1f ms, warm %.1f ms)\n",
                    static_cast<unsigned long long>(
                        warm.tokens_prefix_hit),
                    static_cast<unsigned long long>(
                        warm.tokens_prefilled),
                    hit_rate * 100.0,
                    static_cast<double>(warm.prefix_bytes_saved) /
                        1e6,
                    match ? "MATCH" : "MISMATCH",
                    cold_ms, warm_ms);

        json.openObject("prefix_cache");
        json.field("requests",
                   static_cast<int64_t>(trace.size()));
        json.field("prefix_groups",
                   static_cast<int64_t>(ts.prefix_groups));
        json.field("prefix_tokens",
                   static_cast<int64_t>(ts.prefix_tokens));
        json.field("cold_wall_ms", cold_ms);
        json.field("warm_wall_ms", warm_ms);
        json.field("tokens_prefilled",
                   static_cast<int64_t>(warm.tokens_prefilled));
        json.field("tokens_prefix_hit",
                   static_cast<int64_t>(warm.tokens_prefix_hit));
        json.field("hit_rate", hit_rate);
        json.field("prefix_bytes_saved",
                   static_cast<int64_t>(warm.prefix_bytes_saved));
        json.field("index_published",
                   static_cast<int64_t>(warm.prefix.published));
        json.field("index_hit_pages",
                   static_cast<int64_t>(warm.prefix.hit_pages));
        json.field("checksum_match",
                   std::string(match ? "true" : "false"));
        json.close();
    }

    // ------------------------------------------------------------------
    // 8. Telemetry overhead: the same pipelined model decode measured
    //    with span recording disabled (metric counters still run —
    //    that is the permanent, unavoidable cost of the registry) and
    //    enabled (ring-buffer spans on every round/unit). The delta is
    //    the full observability tax; acceptance target is < 2%. A
    //    PADE_TELEMETRY=OFF build compiles both paths to no-ops, so
    //    `telemetry_compiled` records which regime this run measured.
    // ------------------------------------------------------------------
    std::printf("\n[8/9] telemetry overhead (spans off vs on; compiled "
                "%s)\n",
                obs::kTelemetryEnabled ? "ON" : "OFF");
    {
        const int ctx = quick ? 192 : 384;
        const int steps = quick ? 16 : 32;
        ThreadPool pool(sweep_threads);
        obs::setTraceEnabled(false);
        const ModelServeCost spans_off = measureModelServe(
            2, true, &pool, ctx, steps, reps, checksum);
        obs::clearTrace();
        obs::setTraceCapacity(1u << 20); // never wraps during the run
        obs::setTraceEnabled(true);
        const ModelServeCost spans_on = measureModelServe(
            2, true, &pool, ctx, steps, reps, checksum);
        obs::setTraceEnabled(false);
        const obs::TraceStats tstats = obs::traceStats();
        obs::clearTrace();
        obs::setTraceCapacity(16384); // restore the default ring size

        const double overhead_pct = spans_off.us_per_tok > 0.0
            ? (spans_on.us_per_tok / spans_off.us_per_tok - 1.0) *
                100.0
            : 0.0;
        std::printf("pipelined decode %.1f -> %.1f us/tok with spans "
                    "(%+.2f%% overhead, %llu events buffered)\n",
                    spans_off.us_per_tok, spans_on.us_per_tok,
                    overhead_pct,
                    static_cast<unsigned long long>(tstats.recorded));

        json.openObject("telemetry_overhead");
        json.field("telemetry_compiled",
                   std::string(obs::kTelemetryEnabled ? "true"
                                                      : "false"));
        json.field("ctx", static_cast<int64_t>(ctx));
        json.field("decode_steps", static_cast<int64_t>(steps));
        json.field("us_per_tok_spans_off", spans_off.us_per_tok);
        json.field("us_per_tok_spans_on", spans_on.us_per_tok);
        json.field("overhead_pct", overhead_pct);
        json.field("trace_events_recorded",
                   static_cast<int64_t>(tstats.recorded));
        json.close();
    }

    // ------------------------------------------------------------------
    // 9. Cross-session co-scheduling + windowed decode: (a) one
    //    serving trace through the per-session nested fan-out vs the
    //    global round co-scheduler at slots=8 / layers=2 / threads=8
    //    — wall, bubble ratio both ways (same counters, so the two
    //    figures are directly comparable), bit-identical checksums;
    //    (b) windowed decode cost at context 4096 vs 16384 under a
    //    64-sink / 512-recency window — flat, because the scan order
    //    and its scratch clearing are O(window).
    // ------------------------------------------------------------------
    std::printf("\n[9/9] co-scheduling (slots=8, layers=2, threads=8) "
                "+ windowed decode\n");
    {
        // Two A/B rows, both at slots=8 / layers=2 / threads=8:
        //
        //  - scheduling_bound: units deliberately near-free (eight
        //    dim-4 heads, 2-bit keys, a 16-token retention window
        //    keeping every decode scan O(window)) so the row isolates
        //    the fan-out machinery itself — per-session mode pays one
        //    nested parallelFor per engine round per session plus an
        //    8-wide KV-head reduction fan-out per unit, the
        //    co-scheduler one hardware-clamped wave per global round.
        //    This is the wall-clock acceptance row (co <= 0.6x
        //    per-session).
        //  - serving: the exact examples/batch_serving trace and
        //    geometry, where compute dominates and the wall gap
        //    narrows, but the per-session schedule strands the lanes
        //    it asks for whenever few sessions are resident — the
        //    bubble-ratio contrast. `bubble_ratio_coscheduled` of
        //    this row is the committed baseline the telemetry CI job
        //    gates batch_serving --slots 8 --layers 2 --threads 8
        //    runs against.
        struct CoschedShape
        {
            const char *name;
            TraceSpec ts;
            BatcherOptions opt;
            /** Reps beyond the global --reps for this row. The
             *  scheduling-bound row is cheap (~100 ms/arm) and its
             *  ratio IS the acceptance figure, so it buys extra
             *  noise suppression. */
            int extra_reps = 0;
        };
        std::vector<CoschedShape> shapes;
        {
            CoschedShape sched;
            sched.name = "scheduling_bound";
            sched.ts.num_requests = quick ? 16 : 32;
            sched.ts.rate_per_s = 4000.0;
            sched.ts.prompt_min = 8;
            sched.ts.prompt_max = 16;
            sched.ts.decode_min = quick ? 64 : 128;
            sched.ts.decode_max = quick ? 128 : 256;
            sched.ts.seed = 777;
            sched.opt.prefill_chunk = 8;
            // Many tiny KV heads: per-session mode pays its nested
            // KV-head reduction fan-out 8 lanes wide per unit while
            // the unit's compute (8 x dim-4 2-bit rows over a
            // 16-token window) stays near-free — the geometry that
            // maximizes scheduling overhead per unit of work.
            sched.opt.heads = 8;
            sched.opt.kv_heads = 8;
            sched.opt.head_dim = 4;
            sched.opt.bits = 2;
            sched.opt.page_tokens = 16;
            sched.opt.retention.sink_tokens = 4;
            sched.opt.retention.recency_tokens = 12;
            sched.extra_reps = 5;
            shapes.push_back(sched);

            CoschedShape serving;
            serving.name = "serving";
            serving.ts.num_requests = quick ? 12 : 24;
            serving.ts.rate_per_s = 200.0;
            serving.ts.prompt_min = 64;
            serving.ts.prompt_max = 512;
            serving.ts.decode_min = 8;
            serving.ts.decode_max = 48;
            serving.ts.prefix_groups = 2;
            serving.ts.prefix_tokens = 128;
            serving.ts.seed = 42;
            serving.opt.prefill_chunk = 128;
            serving.opt.heads = 1;
            serving.opt.kv_heads = 1;
            serving.opt.head_dim = 64;
            serving.opt.page_tokens = 64;
            serving.opt.prefix_cache = true;
            shapes.push_back(serving);
        }

        Table t9a;
        t9a.header({"shape", "per-session ms", "co-scheduled ms",
                    "co/per", "bubble per", "bubble co"});
        json.openArray("coschedule");
        for (CoschedShape &shape : shapes) {
            shape.opt.threads = 8;
            shape.opt.max_active = 8;
            shape.opt.layers = 2;
            const std::vector<ServingRequest> trace =
                poissonArrivalTrace(shape.ts);

            // Interleaved A/B reps (per, co, per, co, ...): a noisy
            // window on the host — throttling, a neighbor VM — lands
            // on both arms instead of whichever happened to run
            // inside it. Best-of per arm, keeping the fastest run's
            // report (its bubble ratio is the least noise-polluted).
            ServingReport per;
            ServingReport co;
            double per_ms = 0.0;
            double co_ms = 0.0;
            const int ab_reps = std::max(1, reps) + shape.extra_reps;
            for (int r = 0; r < ab_reps; r++) {
                shape.opt.coschedule = false;
                const ServingReport p =
                    ContinuousBatcher(shape.opt).run(trace);
                shape.opt.coschedule = true;
                const ServingReport c =
                    ContinuousBatcher(shape.opt).run(trace);
                if (r == 0 || p.wall_ms < per_ms) {
                    per_ms = p.wall_ms;
                    per = p;
                }
                if (r == 0 || c.wall_ms < co_ms) {
                    co_ms = c.wall_ms;
                    co = c;
                }
            }
            checksum += static_cast<int64_t>(co.checksum & 0xffff);

            const bool match = per.checksum == co.checksum &&
                per.prefill_checksum == co.prefill_checksum &&
                per.peak_cache_bytes == co.peak_cache_bytes;
            if (!match)
                std::fprintf(stderr,
                             "co-scheduler changed outputs (BUG)\n");
            t9a.row({shape.name, Table::num(per_ms, 1),
                     Table::num(co_ms, 1),
                     Table::num(co_ms / per_ms, 2),
                     Table::num(per.pipeline_bubble_ratio, 3),
                     Table::num(co.pipeline_bubble_ratio, 3)});

            json.openObject();
            json.str("shape", shape.name);
            json.field("requests",
                       static_cast<int64_t>(trace.size()));
            json.field("slots",
                       static_cast<int64_t>(shape.opt.max_active));
            json.field("layers",
                       static_cast<int64_t>(shape.opt.layers));
            json.field("threads",
                       static_cast<int64_t>(shape.opt.threads));
            json.field("per_session_wall_ms", per_ms);
            json.field("coscheduled_wall_ms", co_ms);
            json.field("speedup_co_vs_per_session", per_ms / co_ms);
            json.field("wall_ratio_co_vs_per_session",
                       co_ms / per_ms);
            json.field("bubble_ratio_per_session",
                       per.pipeline_bubble_ratio);
            json.field("bubble_ratio_coscheduled",
                       co.pipeline_bubble_ratio);
            json.field("checksum_match",
                       std::string(match ? "true" : "false"));
            json.close();
        }
        json.close(true);
        t9a.print();
    }
    {
        RetentionPolicy rp;
        rp.sink_tokens = 64;
        rp.recency_tokens = 512;
        // Enough timed steps that per-step jitter averages out — the
        // flatness claim compares two ~50 us/token measurements.
        const int win_steps = quick ? 32 : 96;
        Table t9;
        t9.header({"ctx", "window", "decode us/tok"});
        json.openArray("windowed_decode");
        // Interleave the two contexts across reps (4k, 16k, 4k, ...)
        // for the same reason section 9a interleaves its arms: the
        // flatness ratio must compare like conditions, not whichever
        // context drew the quiet window.
        const int ctxs[2] = {4096, 16384};
        double best_us[2] = {0.0, 0.0};
        for (int r = 0; r < std::max(1, reps); r++) {
            for (int i = 0; i < 2; i++) {
                const GqaDecodeCost c = measureGqaDecode(
                    1, 1, ctxs[i], win_steps, 1, checksum, rp);
                if (r == 0 || c.layer_us_per_tok < best_us[i])
                    best_us[i] = c.layer_us_per_tok;
            }
        }
        const double us_small = best_us[0];
        const double us_large = best_us[1];
        for (int i = 0; i < 2; i++) {
            t9.row({std::to_string(ctxs[i]),
                    std::to_string(rp.sink_tokens + rp.recency_tokens),
                    Table::num(best_us[i], 1)});
            json.openObject();
            json.field("ctx", static_cast<int64_t>(ctxs[i]));
            json.field("sink_tokens",
                       static_cast<int64_t>(rp.sink_tokens));
            json.field("recency_tokens",
                       static_cast<int64_t>(rp.recency_tokens));
            json.field("decode_us_per_tok", best_us[i]);
            json.close();
        }
        json.close(true);
        t9.print();
        const double flatness =
            us_large / std::max(us_small, 1e-9);
        std::printf("windowed decode us/tok at 16384 vs 4096 ctx: "
                    "%.2fx (flat target: within 10%%)\n",
                    flatness);
        json.field("windowed_decode_flatness_16k_vs_4k", flatness);
    }

    json.field("checksum", checksum);
    json.close();

    FILE *f = std::fopen(out_path.c_str(), "w");
    if (!f) {
        std::fprintf(stderr, "cannot write %s\n", out_path.c_str());
        return 1;
    }
    std::fprintf(f, "%s\n", json.text().c_str());
    std::fclose(f);
    std::printf("\nwrote %s\n", out_path.c_str());
    return 0;
}

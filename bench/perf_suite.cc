/**
 * @file
 * Perf-tracking suite: times the simulator's hot paths and emits a
 * machine-readable BENCH_perf.json so the performance trajectory is
 * visible across PRs (CI uploads the file as an artifact).
 *
 * Six stages are measured:
 *  1. QK scoring kernel — the three-way kernel comparison (scalar
 *     ctz-walk oracle, word-parallel popcount, AVX2 SIMD backend)
 *     across {seq, bits, head_dim} points, including the
 *     head_dim >= 128 rows the SIMD backend targets;
 *  2. full padeAttention under all kernel dispatches, with a reused
 *     PadeWorkspace (the allocation-free hot path);
 *  3. reference attention — cache-blocked dense matmul path and the
 *     tiled flash recurrence (the oracle every figure bench pays for);
 *  4. a batch-driver sweep across {seq, bits, concentration} points,
 *     fanned over the thread pool (the fig17-style DSE bottleneck);
 *  5. serving decode — per-token cost of the incremental KvCache
 *     (append + guarded step) against re-packing the full history
 *     every token, across context lengths. The append (cache
 *     maintenance) component is context-independent for the cached
 *     path and linear in context for re-pack — the subsystem's
 *     headline property;
 *  6. GQA layer decode — per-token cost of a whole 8-query-head
 *     layer at KV-sharing ratios 1:1 / 4:1 / 8:1 (LayerEngine with
 *     shared caches), against 8x the single-head cost. Sharing the
 *     KV stream amortizes the append and the per-key page/PlaneWork
 *     lookups across the group, so the grouped cost sits measurably
 *     below heads-times-single — and KV residency scales with
 *     kv_heads, not heads.
 *
 * Flags: --quick (CI smoke: fewer/smaller points), --reps=N best-of
 * repetitions (default 3), --out=FILE (default BENCH_perf.json),
 * --threads=N sweep workers (default hardware).
 */

#include <chrono>
#include <cstdint>
#include <cstdio>
#include <string>
#include <vector>

#include "attention/reference.h"
#include "bench/common.h"
#include "core/pade_attention.h"
#include "core/simd/qk_dispatch.h"
#include "quant/bitplane.h"
#include "runtime/batch_driver.h"
#include "serving/layer_engine.h"
#include "workload/generator.h"

using namespace pade;
using namespace pade::bench;

namespace {

/** Wall-clock milliseconds of fn(), best of @p reps runs. */
template <typename F>
double
bestMs(int reps, F &&fn)
{
    double best = 0.0;
    for (int r = 0; r < reps; r++) {
        const auto t0 = std::chrono::steady_clock::now();
        fn();
        const auto t1 = std::chrono::steady_clock::now();
        const double ms =
            std::chrono::duration<double, std::milli>(t1 - t0).count();
        if (r == 0 || ms < best)
            best = ms;
    }
    return best;
}

/** Minimal JSON emitter: objects/arrays of already-formatted fields. */
class Json
{
  public:
    void
    openObject(const std::string &key = "")
    {
        indent(key);
        out_ += "{\n";
        depth_++;
        first_.push_back(true);
    }
    void
    openArray(const std::string &key)
    {
        indent(key);
        out_ += "[\n";
        depth_++;
        first_.push_back(true);
    }
    void
    close(bool array = false)
    {
        out_ += "\n";
        depth_--;
        for (int i = 0; i < depth_; i++)
            out_ += "  ";
        out_ += array ? "]" : "}";
        first_.pop_back();
        if (!first_.empty())
            first_.back() = false;
    }
    void
    field(const std::string &key, const std::string &raw)
    {
        indent(key);
        out_ += raw;
    }
    void
    field(const std::string &key, double v)
    {
        char buf[64];
        std::snprintf(buf, sizeof(buf), "%.6g", v);
        field(key, std::string(buf));
    }
    void
    field(const std::string &key, int64_t v)
    {
        field(key, std::to_string(v));
    }
    void
    str(const std::string &key, const std::string &v)
    {
        field(key, "\"" + v + "\"");
    }

    const std::string &text() const { return out_; }

  private:
    void
    indent(const std::string &key)
    {
        if (!first_.empty()) {
            if (!first_.back())
                out_ += ",\n";
            first_.back() = false;
        }
        for (int i = 0; i < depth_; i++)
            out_ += "  ";
        if (!key.empty())
            out_ += "\"" + key + "\": ";
    }

    std::string out_;
    std::vector<bool> first_;
    int depth_ = 0;
};

QuantizedHead
makeHead(int seq, int bits, int head_dim = 128, int queries = 8,
         uint64_t seed = 42)
{
    WorkloadSpec spec;
    spec.seq_len = seq;
    spec.query_len = queries;
    spec.head_dim = head_dim;
    spec.seed = seed;
    return quantizeHead(generateHead(spec), bits);
}

/** Measured cost of one GQA layer configuration (section 6). */
struct GqaDecodeCost
{
    double layer_us_per_tok = 0.0; //!< whole layer: appends + decode
    std::size_t kv_bytes = 0;      //!< resident KV after the run
};

/**
 * Per-token decode cost of one whole layer: prefill ctx tokens
 * (untimed), then time `steps` rounds of KV append + grouped decode
 * across every head, best of `reps` fresh engines.
 */
GqaDecodeCost
measureGqaDecode(int heads, int kv_heads, int ctx, int steps, int reps,
                 int64_t &checksum)
{
    LayerSpec spec;
    spec.heads = heads;
    spec.kv_heads = kv_heads;
    spec.head_dim = 128;
    spec.prompt_len = ctx;
    spec.decode_steps = steps;
    spec.seed = 42;
    const LayerWorkload lw = generateLayerWorkload(spec);

    LayerEngineConfig lc;
    lc.heads = heads;
    lc.kv_heads = kv_heads;
    lc.head_dim = spec.head_dim;

    std::vector<float> v_scales;
    std::vector<float> logit_scales;
    for (const QuantizedHead &g : lw.groups) {
        v_scales.push_back(g.v.params.scale);
        logit_scales.push_back(g.logit_scale);
    }

    MatrixI8 k_stage(kv_heads, spec.head_dim);
    MatrixI8 v_stage(kv_heads, spec.head_dim);
    MatrixI8 q_stage(heads, spec.head_dim);
    MatrixF out(heads, spec.head_dim);

    GqaDecodeCost cost;
    for (int r = 0; r < std::max(1, reps); r++) {
        LayerEngine layer(lc, v_scales);
        for (int pos = 0; pos < ctx; pos++) {
            lw.stageKv(pos, k_stage, v_stage);
            layer.appendToken(k_stage, v_stage);
        }
        const auto t0 = std::chrono::steady_clock::now();
        for (int t = 0; t < steps; t++) {
            const int pos = ctx + t;
            lw.stageKv(pos, k_stage, v_stage);
            lw.stageQueries(pos, q_stage);
            layer.appendToken(k_stage, v_stage);
            const LayerStep st =
                layer.decode(q_stage, logit_scales, out);
            checksum += st.retained;
        }
        const double us = std::chrono::duration<double, std::micro>(
                              std::chrono::steady_clock::now() - t0)
                              .count() /
            steps;
        if (r == 0 || us < cost.layer_us_per_tok)
            cost.layer_us_per_tok = us;
        cost.kv_bytes = layer.bytesUsed();
    }
    return cost;
}

} // namespace

int
main(int argc, char **argv)
{
    Cli cli(argc, argv);
    const bool quick = cli.getBool("quick");
    const int reps = static_cast<int>(cli.getInt("reps", quick ? 2 : 3));
    const std::string out_path = cli.get("out", "BENCH_perf.json");
    const int sweep_threads = static_cast<int>(
        cli.getInt("threads", ThreadPool::hardwareThreads()));

    banner(std::string("PADE perf suite (") +
           (quick ? "quick" : "full") + ", best of " +
           std::to_string(reps) + ")");

    Json json;
    json.openObject();
    json.str("schema", "pade-perf-v1");
    json.field("quick", std::string(quick ? "true" : "false"));
    json.field("reps", static_cast<int64_t>(reps));
    json.field("hardware_threads",
               static_cast<int64_t>(ThreadPool::hardwareThreads()));
    int64_t checksum = 0; // defeats dead-code elimination; recorded

    // ------------------------------------------------------------------
    // 1. QK scoring kernel: the three-way comparison — scalar oracle,
    //    word-parallel popcount, AVX2 SIMD — exactDot over all
    //    (query, key) pairs. head_dim rows >= 128 are the ones the
    //    SIMD backend targets (ISSUE 3 acceptance: >= 1.5x over
    //    popcount there).
    // ------------------------------------------------------------------
    std::printf("\n[1/6] QK scoring kernel (exactDot over all pairs; "
                "simd %s)\n",
                qkSimdAvailable() ? "available" : "UNAVAILABLE");
    Table t1;
    t1.header({"seq", "bits", "hdim", "scalar ns/pair",
               "popcount ns/pair", "simd ns/pair", "simd/pop"});
    json.field("simd_available",
               std::string(qkSimdAvailable() ? "true" : "false"));
    json.openArray("qk_kernel");

    struct QkPoint
    {
        int seq, bits, head_dim;
    };
    std::vector<QkPoint> qk_points;
    if (quick) {
        qk_points = {{1024, 8, 128}, {4096, 8, 128}, {4096, 8, 256}};
    } else {
        for (int seq : {1024, 4096, 16384})
            for (int bits : {4, 8})
                qk_points.push_back({seq, bits, 128});
        // head_dim sweep at the paper operating point: covers the
        // pair-register kernel (<= 128), the quad kernel (<= 256),
        // and the wide chunked kernel beyond.
        for (int hd : {64, 256, 512})
            qk_points.push_back({4096, 8, hd});
    }

    for (const auto [seq, bits, head_dim] : qk_points) {
        const QuantizedHead head = makeHead(seq, bits, head_dim);
        const int p = head.q.values.rows();
        const double pairs = static_cast<double>(p) * seq;

        const double scalar_ms = bestMs(reps, [&] {
            for (int i = 0; i < p; i++) {
                auto q = head.q.values.row(i);
                for (int j = 0; j < seq; j++)
                    checksum += exactDotScalar(q, head.k_planes, j);
            }
        });
        QueryPlanes qp;
        const double pop_ms = bestMs(reps, [&] {
            for (int i = 0; i < p; i++) {
                qp.assign(head.q.values.row(i));
                for (int j = 0; j < seq; j++)
                    checksum += exactDot(qp, head.k_planes, j);
            }
        });
        const double simd_ms = bestMs(reps, [&] {
            for (int i = 0; i < p; i++) {
                qp.assign(head.q.values.row(i));
                for (int j = 0; j < seq; j++)
                    checksum += exactDotSimd(qp, head.k_planes, j);
            }
        });
        const double simd_vs_pop = pop_ms / simd_ms;
        t1.row({std::to_string(seq), std::to_string(bits),
                std::to_string(head_dim),
                Table::num(scalar_ms * 1e6 / pairs, 1),
                Table::num(pop_ms * 1e6 / pairs, 1),
                Table::num(simd_ms * 1e6 / pairs, 1),
                Table::num(simd_vs_pop, 2)});
        json.openObject();
        json.field("seq", static_cast<int64_t>(seq));
        json.field("bits", static_cast<int64_t>(bits));
        json.field("head_dim", static_cast<int64_t>(head_dim));
        json.field("scalar_ns_per_pair", scalar_ms * 1e6 / pairs);
        json.field("popcount_ns_per_pair", pop_ms * 1e6 / pairs);
        json.field("simd_ns_per_pair", simd_ms * 1e6 / pairs);
        json.field("speedup_pop_vs_scalar", scalar_ms / pop_ms);
        json.field("speedup_simd_vs_pop", simd_vs_pop);
        json.close();
    }
    json.close(true);
    t1.print();

    // ------------------------------------------------------------------
    // 2. Full padeAttention under all three dispatches, reused
    //    workspace. kSimd silently resolves to kPopcount when the
    //    backend is unavailable (the two columns then read the same).
    // ------------------------------------------------------------------
    std::printf("\n[2/6] padeAttention (guarded, workspace reuse)\n");
    Table t2;
    t2.header({"seq", "scalar ms", "popcount ms", "simd ms",
               "simd/scalar", "keep rate"});
    json.openArray("pade_attention");
    for (int seq : quick ? std::vector<int>{1024}
                         : std::vector<int>{1024, 4096}) {
        const QuantizedHead head = makeHead(seq, 8);
        PadeWorkspace ws;
        double keep = 0.0;
        const auto time_kernel = [&](QkKernel k) {
            PadeConfig cfg;
            cfg.qk_kernel = k;
            return bestMs(reps, [&] {
                const PadeResult res = padeAttention(head, cfg, &ws);
                checksum +=
                    static_cast<int64_t>(res.stats.keys_retained);
                keep = res.stats.keepRate();
            });
        };
        const double scalar_ms = time_kernel(QkKernel::kScalar);
        const double pop_ms = time_kernel(QkKernel::kPopcount);
        const double simd_ms = time_kernel(QkKernel::kSimd);
        t2.row({std::to_string(seq), Table::num(scalar_ms, 2),
                Table::num(pop_ms, 2), Table::num(simd_ms, 2),
                Table::num(scalar_ms / simd_ms, 2),
                Table::num(keep, 3)});
        json.openObject();
        json.field("seq", static_cast<int64_t>(seq));
        json.field("bits", static_cast<int64_t>(8));
        json.field("scalar_ms", scalar_ms);
        json.field("popcount_ms", pop_ms);
        json.field("simd_ms", simd_ms);
        json.field("speedup_pop_vs_scalar", scalar_ms / pop_ms);
        json.field("speedup_simd_vs_scalar", scalar_ms / simd_ms);
        json.field("keep_rate", keep);
        json.close();
    }
    json.close(true);
    t2.print();

    // ------------------------------------------------------------------
    // 3. Reference attention (cache-blocked matmul path + flash).
    // ------------------------------------------------------------------
    std::printf("\n[3/6] reference attention (oracle path)\n");
    Table t3;
    t3.header({"seq", "queries", "dense ms", "flash ms"});
    json.openArray("reference");
    for (int seq : quick ? std::vector<int>{1024}
                         : std::vector<int>{1024, 2048}) {
        WorkloadSpec spec;
        spec.seq_len = seq;
        spec.query_len = 256;
        spec.head_dim = 128;
        const AttentionHead head = generateHead(spec);
        const double dense_ms = bestMs(reps, [&] {
            const MatrixF o = denseAttention(head.q, head.k, head.v,
                                             head.scale);
            checksum += static_cast<int64_t>(o.at(0, 0) * 1e3);
        });
        const double flash_ms = bestMs(reps, [&] {
            const MatrixF o = flashAttention(head.q, head.k, head.v,
                                             head.scale, 64);
            checksum += static_cast<int64_t>(o.at(0, 0) * 1e3);
        });
        t3.row({std::to_string(seq), "256", Table::num(dense_ms, 2),
                Table::num(flash_ms, 2)});
        json.openObject();
        json.field("seq", static_cast<int64_t>(seq));
        json.field("queries", static_cast<int64_t>(256));
        json.field("dense_ms", dense_ms);
        json.field("flash_ms", flash_ms);
        json.close();
    }
    json.close(true);
    t3.print();

    // ------------------------------------------------------------------
    // 4. Batch-driver sweep across {seq, bits, concentration}.
    // ------------------------------------------------------------------
    std::printf("\n[4/6] batch-driver sweep (%d workers)\n",
                sweep_threads);
    std::vector<BatchItem> sweep;
    for (int seq : quick ? std::vector<int>{2048}
                         : std::vector<int>{2048, 8192})
        for (int bits : {8, 4})
            for (double conc : {0.75, 1.25}) {
                BatchItem item;
                item.req.model = llama2_7b();
                item.req.model.concentration = conc;
                item.req.dataset = dsWikitext2();
                item.req.dataset.seq_len = seq;
                item.req.bits = bits;
                item.req.max_sim_seq = 2048;
                sweep.push_back(item);
            }
    const BatchDriver driver(BatchOptions{.threads = sweep_threads,
                                          .seed_base = 7});
    const double sweep_ms = bestMs(1, [&] {
        const BatchResult res = driver.run(sweep);
        checksum += res.completed;
        if (res.failed > 0)
            std::fprintf(stderr, "sweep: %d requests failed\n",
                         res.failed);
    });
    std::printf("%zu requests in %.1f ms\n", sweep.size(), sweep_ms);
    json.openObject("batch_sweep");
    json.field("requests", static_cast<int64_t>(sweep.size()));
    json.field("threads", static_cast<int64_t>(sweep_threads));
    json.field("wall_ms", sweep_ms);
    json.close();

    // ------------------------------------------------------------------
    // 5. Serving decode: incremental KvCache vs full re-pack. The
    //    cached pack cost (append only) must stay flat across context
    //    lengths — it is O(bits * head_dim) per token — while the
    //    re-pack cost is O(context); the total step cost additionally
    //    carries the O(context) guarded scan both paths share.
    // ------------------------------------------------------------------
    std::printf("\n[5/6] serving decode (incremental KvCache vs "
                "re-pack)\n");
    Table t5;
    t5.header({"ctx", "append us/tok", "cached us/tok",
               "repack us/tok", "repack/cached", "decode tok/s"});
    json.openArray("serving_decode");
    const int serve_steps = quick ? 6 : 12;
    for (int ctx : quick ? std::vector<int>{512, 1024}
                         : std::vector<int>{1024, 2048, 4096}) {
        ServingDecodePoint pt;
        pt.ctx = ctx;
        pt.steps = serve_steps;
        pt.reps = reps;
        const ServingDecodeCost c =
            measureServingDecode(pt, PadeConfig{});
        checksum += c.pages;
        // Coarse steady_clock ticks can measure a 0 us cached loop;
        // keep the ratios finite so the JSON stays parseable.
        const double cached_us = std::max(c.cached_us_per_tok, 1e-9);

        t5.row({std::to_string(ctx),
                Table::num(c.append_us_per_tok, 2),
                Table::num(c.cached_us_per_tok, 1),
                Table::num(c.repack_us_per_tok, 1),
                Table::num(c.repack_us_per_tok / cached_us, 1),
                Table::num(1e6 / cached_us, 0)});
        json.openObject();
        json.field("ctx", static_cast<int64_t>(ctx));
        json.field("steps", static_cast<int64_t>(serve_steps));
        json.field("append_us_per_tok", c.append_us_per_tok);
        json.field("cached_us_per_tok", c.cached_us_per_tok);
        json.field("repack_us_per_tok", c.repack_us_per_tok);
        json.field("repack_vs_cached",
                   c.repack_us_per_tok / cached_us);
        json.field("decode_tok_per_s", 1e6 / cached_us);
        json.close();
    }
    json.close(true);
    t5.print();

    // ------------------------------------------------------------------
    // 6. GQA layer decode: a whole 8-head layer at KV sharing ratios
    //    1:1 / 4:1 / 8:1 versus 8x the single-head cost. The shared
    //    cache amortizes appends and per-key page/PlaneWork lookups
    //    across the group (acceptance: the 8:1 ratio sits measurably
    //    below 1.0), and KV residency scales with kv_heads.
    // ------------------------------------------------------------------
    std::printf("\n[6/6] GQA layer decode (8 query heads, shared KV "
                "caches)\n");
    Table t6;
    t6.header({"heads", "kv", "ratio", "ctx", "layer us/tok",
               "us/tok/head", "vs heads x single", "KV MB"});
    json.openArray("gqa_decode");
    const int gqa_ctx = quick ? 512 : 1024;
    const int gqa_steps = quick ? 6 : 12;

    const GqaDecodeCost single =
        measureGqaDecode(1, 1, gqa_ctx, gqa_steps, reps, checksum);
    struct GqaRow
    {
        int heads, kv_heads;
    };
    for (const auto [heads, kv_heads] :
         {GqaRow{1, 1}, GqaRow{8, 8}, GqaRow{8, 2}, GqaRow{8, 1}}) {
        const GqaDecodeCost c = heads == 1
            ? single
            : measureGqaDecode(heads, kv_heads, gqa_ctx, gqa_steps,
                               reps, checksum);
        const double vs_single = c.layer_us_per_tok /
            (heads * single.layer_us_per_tok);
        char ratio[16];
        std::snprintf(ratio, sizeof(ratio), "%d:1",
                      heads / kv_heads);
        t6.row({std::to_string(heads), std::to_string(kv_heads),
                ratio, std::to_string(gqa_ctx),
                Table::num(c.layer_us_per_tok, 1),
                Table::num(c.layer_us_per_tok / heads, 1),
                Table::num(vs_single, 3),
                Table::num(static_cast<double>(c.kv_bytes) / 1e6,
                           2)});
        json.openObject();
        json.field("heads", static_cast<int64_t>(heads));
        json.field("kv_heads", static_cast<int64_t>(kv_heads));
        json.field("ctx", static_cast<int64_t>(gqa_ctx));
        json.field("steps", static_cast<int64_t>(gqa_steps));
        json.field("layer_us_per_tok", c.layer_us_per_tok);
        json.field("us_per_tok_per_head",
                   c.layer_us_per_tok / heads);
        json.field("vs_heads_x_single", vs_single);
        json.field("kv_bytes", static_cast<int64_t>(c.kv_bytes));
        json.close();
    }
    json.close(true);
    t6.print();

    json.field("checksum", checksum);
    json.close();

    FILE *f = std::fopen(out_path.c_str(), "w");
    if (!f) {
        std::fprintf(stderr, "cannot write %s\n", out_path.c_str());
        return 1;
    }
    std::fprintf(f, "%s\n", json.text().c_str());
    std::fclose(f);
    std::printf("\nwrote %s\n", out_path.c_str());
    return 0;
}

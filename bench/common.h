/**
 * @file
 * Shared helpers for the figure/table bench harnesses: standard
 * operating points (the paper's "standard" ~0%-loss and "aggressive"
 * ~1%-loss configurations), per-baseline keep-rate calibration at
 * matched accuracy, and common run wrappers.
 *
 * Conventions used by every bench:
 *  - retained-softmax-mass targets: standard = kStandardMass (0.99),
 *    aggressive = kAggressiveMass (0.95) — see the constants below
 *    for the task-score rationale and EXPERIMENTS.md for the mapping;
 *  - long sequences are simulated at a cap and scaled linearly
 *    (SimRequest::max_sim_seq), printed alongside the results;
 *  - calibration uses a guard radius of 10 logits so alpha in [0, 1]
 *    spans both operating points.
 */

#ifndef PADE_BENCH_COMMON_H
#define PADE_BENCH_COMMON_H

#include <cstddef>
#include <cstdint>
#include <string>
#include <vector>

#include "arch/driver.h"
#include "baselines/accelerators.h"
#include "baselines/gpu_model.h"
#include "baselines/predictors.h"
#include "common/cli.h"
#include "common/math_util.h"
#include "common/table.h"
#include "core/pade_attention.h"
#include "runtime/thread_pool.h"

namespace pade {
namespace bench {

/**
 * Retained-mass targets of the two operating points (the single
 * source of truth for every bench). The standard point (0.99) maps to
 * a ~0.5% task-score delta under the metrics.h mapping (between the
 * paper's "0%" and "1%" rows); the aggressive point (0.95) tracks the
 * ~1%-loss row. Calibrated margins land in the paper's default
 * guard-band class (alpha*radius ~ 2.5-5 logits). See EXPERIMENTS.md.
 */
constexpr double kStandardMass = 0.99;
constexpr double kAggressiveMass = 0.95;
constexpr double kCalibRadius = 10.0;

/**
 * Process-wide worker pool shared by the bench harness; calibration
 * helpers fan their independent searches across it, and benches may
 * reuse it for their own sweeps.
 */
ThreadPool &benchPool();

/** PADE operating points for one workload. */
struct OperatingPoints
{
    double alpha_standard = 1.0;
    double alpha_aggressive = 0.5;
};

/** Calibrate both operating points for a request. */
OperatingPoints calibratePoints(SimRequest req);

/** Per-baseline keep rates calibrated to a retained-mass target. */
struct BaselineKeeps
{
    double sanger = 1.0;
    double dota = 1.0;
    double energon = 1.0;
    double spatten = 1.0;       //!< w/o finetune (noisy guidance)
    double spatten_ft = 1.0;    //!< finetuned
    double sofa = 1.0;
};

/**
 * Calibrate every baseline's mechanism on the same workload head.
 * @param cap keys used for calibration (costly masks are quadratic)
 */
BaselineKeeps calibrateBaselines(const SimRequest &req,
                                 double target_mass, int cap = 2048);

/** Build a calibration head (capped sequence) for a request. */
AttentionHead calibrationHead(const SimRequest &req, int cap);

/** Run PADE at an operating point; returns full-model totals. */
SimOutcome runPade(const ArchConfig &cfg, SimRequest req, double alpha);

/** Analytic block dims matching a request's simulated block. */
AttentionDims blockDims(const SimRequest &req, int sim_seq);

/** One point of the serving cached-vs-repack decode measurement. */
struct ServingDecodePoint
{
    int ctx = 4096;        //!< prefill length (tokens)
    int steps = 8;         //!< decode tokens measured
    int head_dim = 128;
    int bits = 8;
    double locality = 0.5; //!< workload-generator locality knob
    uint64_t seed = 42;
    int reps = 1;          //!< best-of reps for the append component
};

/** Measured per-token decode costs of one point. */
struct ServingDecodeCost
{
    double append_us_per_tok = 0.0; //!< cache maintenance alone
    double cached_us_per_tok = 0.0; //!< incremental append + step
    double repack_us_per_tok = 0.0; //!< full history re-pack + step
    double keep_rate = 0.0;         //!< guard keep rate over the run
    int pages = 0;                  //!< final KvCache pages
    std::size_t cache_bytes = 0;    //!< final resident KV bytes
};

/**
 * Shared cached-vs-repack serving harness (perf_suite section 5 and
 * examples/long_context_decode drive the same protocol): prefill a
 * KvCache to ctx tokens, decode `steps` tokens incrementally
 * (append + guarded DecodeEngine step), then decode the same tokens
 * rebuilding the cache from scratch per token. Also times the
 * append-only component at full context — the number that must stay
 * flat as ctx grows.
 */
ServingDecodeCost measureServingDecode(const ServingDecodePoint &pt,
                                       const PadeConfig &cfg);

/** Convenience stdout header for a bench. */
void banner(const std::string &title);

} // namespace bench
} // namespace pade

#endif // PADE_BENCH_COMMON_H

/**
 * @file
 * Paper Fig. 15: comparison with software sparse-attention methods.
 *
 * (a)(b) Accuracy versus "sparsity level" (the ratio of sparse
 * execution cost — prediction + computation — to dense execution) for
 * StreamingLLM, MInference-style, DoubleSparsity-style, SpAtten /
 * DTATrans-style guidance, and PADE, on Dolly (15k) and InfiniteBench
 * (214k, simulated at a cap and scaled).
 *
 * (c) Latency / energy-efficiency gain of PADE (hardware) over the
 * software methods running on the H100 model at matched 1% loss.
 */

#include <functional>

#include "attention/metrics.h"
#include "attention/reference.h"
#include "bench/common.h"

using namespace pade;
using namespace pade::bench;

namespace {

struct MethodPoint
{
    double cost = 1.0;  //!< sparse/dense execution-cost ratio
    double mass = 1.0;
};

/** Cost model: predictor fraction + kept execution fraction. */
double
costRatio(double pred_frac, double keep)
{
    return std::min(1.0, pred_frac + keep);
}

/** Tune a knob so the method's cost ratio hits `level`. */
MethodPoint
atLevel(const std::function<MethodPoint(double)> &fn, double level,
        double lo, double hi)
{
    for (int i = 0; i < 12; i++) {
        const double mid = 0.5 * (lo + hi);
        if (fn(mid).cost > level)
            hi = mid;
        else
            lo = mid;
    }
    return fn(0.5 * (lo + hi));
}

} // namespace

int
main(int argc, char **argv)
{
    Cli cli(argc, argv);
    const int cap = static_cast<int>(cli.getInt("cap", 8192));

    for (const DatasetConfig &ds : {dsDolly(), dsInfiniteBench()}) {
        banner("Fig. 15(a/b): relative score vs sparsity level — " +
               ds.name);
        SimRequest req{llama2_7b(), ds};
        req.seed = cli.getInt("seed", 2);
        req.max_sim_seq = cap;
        const AttentionHead head = calibrationHead(req, cap);
        const int s = head.k.rows();

        auto streaming = [&](double keep) {
            const int w = std::max(1, static_cast<int>(keep * s) - 4);
            const MaskOutcome m = streamingLlmMask(head, 4, w);
            return MethodPoint{costRatio(0.0, m.keep_rate),
                               m.retained_mass};
        };
        auto minfer = [&](double frac) {
            const MaskOutcome m = minferenceMask(head, 4, 64, frac);
            return MethodPoint{costRatio(1.0 / 16.0, m.keep_rate),
                               m.retained_mass};
        };
        auto dsparse = [&](double kfrac) {
            const int k = std::max(1, static_cast<int>(kfrac * s));
            const MaskOutcome m = doubleSparsityMask(head, 16, k);
            return MethodPoint{costRatio(16.0 / head.q.cols(),
                                         m.keep_rate),
                               m.retained_mass};
        };
        auto spatten = [&](double kfrac) {
            const int k = std::max(1, static_cast<int>(kfrac * s));
            const MaskOutcome m = noisyTopkMask(head, k, 2.0);
            return MethodPoint{costRatio(0.0, m.keep_rate),
                               m.retained_mass};
        };
        auto pade_fn = [&](double alpha) {
            const QuantizedHead qh = quantizeHead(head);
            PadeConfig cfg;
            cfg.alpha = alpha;
            cfg.radius = kCalibRadius;
            const PadeResult res = padeAttention(qh, cfg);
            const MatrixF logits = attentionLogits(head.q, head.k,
                                                   head.scale);
            const double qk_cost =
                static_cast<double>(res.stats.planes_processed) /
                std::max<uint64_t>(res.stats.planes_total, 1);
            const double cost = 0.5 * (qk_cost +
                                       res.stats.keepRate());
            return MethodPoint{cost, retainedMass(logits, res.keep)};
        };

        Table t("relative task score (x1000) at each sparsity level");
        t.header({"level", "StrLLM", "MInfer", "DblSparse", "SpAtten",
                  "PADE"});
        for (double level : {1.0, 0.5, 0.25, 0.125, 0.0625}) {
            auto score = [](const MethodPoint &p) {
                return Table::num(1000.0 * taskScoreFromMass(p.mass),
                                  0);
            };
            const MethodPoint m_str = atLevel(streaming, level, 1e-4,
                                              1.0);
            const MethodPoint m_min = atLevel(minfer, level, 1e-3,
                                              1.0);
            const MethodPoint m_dbl = atLevel(dsparse, level, 1e-4,
                                              1.0);
            const MethodPoint m_spa = atLevel(spatten, level, 1e-4,
                                              1.0);
            // PADE's bit-serial cost has a floor (the guard needs a
            // few planes before intervals tighten); below it, PADE
            // simply operates at its floor with undiminished accuracy.
            const MethodPoint pade_floor = pade_fn(0.0);
            const MethodPoint m_pad = level <= pade_floor.cost ?
                pade_floor : atLevel(pade_fn, level, 0.0, 1.0);
            const std::string pad_cell = score(m_pad) +
                (level < pade_floor.cost ? "*" : "");
            t.row({Table::num(level, 4), score(m_str), score(m_min),
                   score(m_dbl), score(m_spa), pad_cell});
        }
        t.print();
        std::printf("* PADE cost floor reached (~%.2f): bit-serial "
                    "speculation needs a few planes per key; accuracy "
                    "does not degrade further.\n",
                    pade_fn(0.0).cost);
    }

    banner("Fig. 15(c): PADE (hardware) vs software methods on the "
           "GPU at ~1% loss");
    Table tc;
    tc.header({"dataset", "method", "latency gain", "energy gain"});
    for (const DatasetConfig &ds :
         {dsDolly(), dsPg19(), dsInfiniteBench()}) {
        SimRequest req{llama2_7b(), ds};
        req.seed = cli.getInt("seed", 2);
        req.max_sim_seq = cap;
        const OperatingPoints pts = calibratePoints(req);
        const SimOutcome pade = runPade(ArchConfig{}, req,
                                        pts.alpha_aggressive);

        // Software methods on the GPU (keeps calibrated at 1% loss).
        const AttentionHead head = calibrationHead(req,
                                                   std::min(cap,
                                                            4096));
        const int s = head.k.rows();
        struct Sw
        {
            const char *name;
            double keep;
            double pred_frac;
        };
        const double k_str = atLevel(
            [&](double k) {
                const int w = std::max(1, static_cast<int>(k * s));
                const MaskOutcome m = streamingLlmMask(head, 4, w);
                return MethodPoint{m.keep_rate, m.retained_mass};
            },
            1.0, 1e-4, 1.0).cost; // full range; pick mass>=target below
        (void)k_str;
        auto keepFor = [&](auto fn) {
            const double knob = calibrateKnob(fn, kAggressiveMass,
                                              1e-4, 1.0);
            return fn(knob).keep_rate;
        };
        const std::vector<Sw> sws = {
            {"StreamingLLM",
             keepFor([&](double k) {
                 return streamingLlmMask(
                     head, 4, std::max(1, static_cast<int>(k * s)));
             }),
             0.0},
            {"MInference",
             keepFor([&](double f) {
                 return minferenceMask(head, 4, 64, std::max(f,
                                                             1e-3));
             }),
             1.0 / 16.0},
            {"DoubleSparsity",
             keepFor([&](double k) {
                 return doubleSparsityMask(
                     head, 16,
                     std::max(1, static_cast<int>(k * s)));
             }),
             16.0 / head.q.cols()},
        };

        for (const auto &sw : sws) {
            GpuOptions opt;
            opt.keep_rate = sw.keep;
            opt.predictor_pass_frac = sw.pred_frac;
            const RunMetrics gpu = gpuModelAttention(req.model, ds,
                                                     opt);
            tc.row({ds.name, sw.name,
                    Table::mult(gpu.time_ns / pade.total.time_ns, 1),
                    Table::mult(pade.total.gopsPerW() /
                                std::max(gpu.gopsPerW(), 1e-9), 1)});
        }
    }
    tc.print();
    std::printf("Paper: PADE averages 5.2x speedup and 10.4x energy "
                "efficiency over the software methods; gains grow "
                "with sequence length.\n");
    return 0;
}

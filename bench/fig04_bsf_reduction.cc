/**
 * @file
 * Paper Fig. 4(c): memory-access and computation reduction of
 * stage-splitting DS (Sanger-style) versus bit-serial stage fusion
 * (BSF) over dense attention, across four Llama2-7B layers.
 *
 * Layers are realized as four workload seeds (attention statistics
 * vary mildly layer to layer). Reductions are relative to the dense
 * INT8 attention's traffic / MAC-equivalent work.
 */

#include "bench/common.h"

using namespace pade;
using namespace pade::bench;

int
main(int argc, char **argv)
{
    Cli cli(argc, argv);
    banner("Fig. 4(c): reduced complexity over dense attention — "
           "stage splitting vs BSF (Llama2-7B, S=2k)");

    Table t;
    t.header({"layer", "split mem red.", "BSF mem red.",
              "split comp red.", "BSF comp red."});

    std::vector<double> sm;
    std::vector<double> bm;
    std::vector<double> sc;
    std::vector<double> bc;

    for (int layer = 1; layer <= 4; layer++) {
        SimRequest req{llama2_7b(), dsWikitext2()};
        req.seed = cli.getInt("seed", 10) + layer;

        // Stage splitting (Sanger mechanism) at matched accuracy. Per
        // the paper's Fig. 4(a), traditional DS executors reload the
        // retained keys at 16-bit precision.
        const AttentionHead head = calibrationHead(req, 2048);
        const double margin = calibrateKnob(
            [&head](double m) { return lowBitMask(head, 4, m); },
            kAggressiveMass, 0.0, 25.0);
        const MaskOutcome sanger_mask = lowBitMask(head, 4, margin);
        const AttentionDims d = blockDims(req, 2048);
        AttentionDims d16 = d;
        d16.exec_bits = 16;
        const BaselineOutcome dense = denseAccelRun(d);
        const BaselineOutcome split = sangerRun(d16,
                                                sanger_mask.keep_rate);

        // BSF: the PADE functional/cycle run at matched accuracy.
        const OperatingPoints pts = calibratePoints(req);
        const SimOutcome pade = runPade(ArchConfig{}, req,
                                        pts.alpha_aggressive);

        const double dense_mem =
            static_cast<double>(dense.metrics.dram_bytes);
        const double dense_ops = 2.0 * d.pairs() * d.h;

        const double split_mem = 1.0 - split.metrics.dram_bytes /
            dense_mem;
        const double bsf_mem = 1.0 -
            static_cast<double>(pade.block.dram_bytes) / dense_mem;

        // MAC-equivalent compute: splitting = 4-bit predictor (1/2) +
        // executor on kept pairs; BSF = selected bit-adds / 8 + kept
        // PV work.
        const double split_ops = 0.5 * d.pairs() * d.h +
            2.0 * split.keep_rate * d.pairs() * d.h;
        const double pade_ops =
            static_cast<double>(pade.block.prune.ops_bs) / 8.0 +
            static_cast<double>(pade.block.prune.keys_retained) * d.h;
        const double split_comp = 1.0 - split_ops / dense_ops;
        const double bsf_comp = 1.0 - pade_ops / dense_ops;

        sm.push_back(split_mem);
        bm.push_back(bsf_mem);
        sc.push_back(split_comp);
        bc.push_back(bsf_comp);
        t.row({std::to_string(layer), Table::pct(split_mem),
               Table::pct(bsf_mem), Table::pct(split_comp),
               Table::pct(bsf_comp)});
    }
    t.row({"GeoMean", Table::pct(mean(sm)), Table::pct(mean(bm)),
           Table::pct(mean(sc)), Table::pct(mean(bc))});
    t.print();

    std::printf("BSF/splitting advantage: %.1fx memory, %.1fx "
                "compute (paper: 4.6x / 2.1x)\n",
                mean(bm) / std::max(mean(sm), 1e-9),
                mean(bc) / std::max(mean(sc), 1e-9));
    return 0;
}

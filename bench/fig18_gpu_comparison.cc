/**
 * @file
 * Paper Fig. 18:
 * (a) latency breakdown of bit-level PADE (compute / memory / bit
 *     shift) versus the value-level INT8 variant of the same
 *     architecture — the 17% bit-shift overhead buys a large latency
 *     reduction;
 * (b) latency and energy-efficiency of GPU+BUI-GF, GPU+BUI-GF+FA3,
 *     PADE standard and PADE aggressive, relative to the dense H100.
 */

#include "bench/common.h"

using namespace pade;
using namespace pade::bench;

int
main(int argc, char **argv)
{
    Cli cli(argc, argv);
    banner("Fig. 18(a): latency breakdown — bit-level PADE vs "
           "value-level INT8 PADE");

    Table ta;
    ta.header({"dataset", "comp%", "mem-stall%", "bit-shift%",
               "vs value-level"});
    for (const DatasetConfig &ds : {dsDolly(), dsWikilingua()}) {
        SimRequest req{llama2_7b(), ds};
        req.seed = cli.getInt("seed", 7);
        req.max_sim_seq = 8192;
        const OperatingPoints pts = calibratePoints(req);
        const SimOutcome pade = runPade(ArchConfig{}, req,
                                        pts.alpha_standard);

        // Value-level INT8 variant: without bit-serial speculation the
        // QK stage must execute all visible pairs at full width (the
        // sparsity decision needs the scores); only the V side keeps
        // the pruning benefit.
        ArchConfig dense_qk;
        dense_qk.enable_guard = false;
        const SimOutcome value_run = runPade(dense_qk, req, 1.0);
        const double value_time = value_run.total.qk_cycles /
            0.8 /* ns */ + pade.total.v_cycles / 0.8;

        const RunMetrics &b = pade.block;
        const double lane_slots = 16.0 * std::max(b.qk_cycles, 1.0);
        const double comp = b.busy_cycles / lane_slots;
        const double stall = b.dram_stall_cycles / lane_slots;
        const double shift = b.bit_shift_cycles / lane_slots;
        const double denom = comp + stall + shift;
        ta.row({ds.name, Table::pct(comp / denom),
                Table::pct(stall / denom), Table::pct(shift / denom),
                Table::mult(value_time /
                            std::max(pade.total.time_ns, 1.0), 1)});
    }
    ta.print();
    std::printf("Paper: ~17%% bit-shift overhead outweighed by a 5x "
                "latency reduction.\n");

    banner("Fig. 18(b): latency / energy efficiency vs dense H100");
    struct Work
    {
        ModelConfig model;
        DatasetConfig ds;
    };
    const std::vector<Work> works = {
        {llama2_7b(), dsWikitext2()},
        {llama3_8b(), dsWikitext2()},
        {opt_1b3(), dsWikitext2()},
        {pvt(), {"ImageNet", 3072, "vision", 0.2}},
    };
    Table tb;
    tb.header({"model", "config", "norm latency", "effic gain"});
    for (const auto &w : works) {
        SimRequest req{w.model, w.ds};
        req.seed = cli.getInt("seed", 7);
        req.max_sim_seq = 2048;
        const OperatingPoints pts = calibratePoints(req);
        const BaselineKeeps keeps = calibrateBaselines(
            req, kAggressiveMass, 2048);

        GpuOptions dense_opt;
        dense_opt.fa3 = false;
        const RunMetrics gpu_dense = gpuModelAttention(w.model, w.ds,
                                                       dense_opt);
        GpuOptions bui_opt;
        bui_opt.fa3 = false;
        bui_opt.keep_rate = keeps.sanger;
        bui_opt.predictor_pass_frac = 0.05;
        const RunMetrics gpu_bui = gpuModelAttention(w.model, w.ds,
                                                     bui_opt);
        GpuOptions bui_fa;
        bui_fa.fa3 = true;
        bui_fa.keep_rate = keeps.sanger;
        bui_fa.predictor_pass_frac = 0.05;
        const RunMetrics gpu_bui_fa = gpuModelAttention(w.model, w.ds,
                                                        bui_fa);
        const SimOutcome p_std = runPade(ArchConfig{}, req,
                                         pts.alpha_standard);
        const SimOutcome p_agg = runPade(ArchConfig{}, req,
                                         pts.alpha_aggressive);

        auto emit = [&](const char *name, double t, double eff) {
            tb.row({w.model.name, name,
                    Table::num(t / gpu_dense.time_ns, 3),
                    Table::mult(eff / gpu_dense.gopsPerW(), 1)});
        };
        emit("GPU(BUI-GF)", gpu_bui.time_ns, gpu_bui.gopsPerW());
        emit("GPU(BUI-GF+FA3)", gpu_bui_fa.time_ns,
             gpu_bui_fa.gopsPerW());
        emit("PADE standard", p_std.total.time_ns,
             p_std.total.gopsPerW());
        emit("PADE aggressive", p_agg.total.time_ns,
             p_agg.total.gopsPerW());
    }
    tb.print();
    std::printf("Paper: PADE standard/aggressive reach 5.8x/7.4x "
                "latency and 28.2x/31.1x efficiency over the H100; "
                "GPU-side BUI-GF gives only ~1.3x (3.1x with FA3).\n");
    return 0;
}

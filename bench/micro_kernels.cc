/**
 * @file
 * google-benchmark microbenchmarks of the core kernels: bit-plane
 * decomposition, BUI table generation, bidirectional-sparsity plane
 * dot products, guard filtering, RARS scheduling, and the full fused
 * attention, so kernel-level regressions are visible independently of
 * the figure harnesses.
 */

#include <benchmark/benchmark.h>

#include "common/rng.h"
#include "core/bit_serial.h"
#include "core/bui.h"
#include "core/guard_filter.h"
#include "core/pade_attention.h"
#include "core/rars.h"
#include "workload/generator.h"

namespace pade {
namespace {

QuantizedHead
makeHead(int s, int h)
{
    WorkloadSpec spec;
    spec.seq_len = s;
    spec.query_len = 8;
    spec.head_dim = h;
    spec.seed = 42;
    return quantizeHead(generateHead(spec));
}

void
BM_BitPlaneDecompose(benchmark::State &state)
{
    const int s = static_cast<int>(state.range(0));
    WorkloadSpec spec;
    spec.seq_len = s;
    spec.query_len = 1;
    spec.head_dim = 128;
    const AttentionHead head = generateHead(spec);
    const Quantized kq = quantizeSymmetric(head.k, 8);
    for (auto _ : state) {
        BitPlaneSet planes(kq.values, 8);
        benchmark::DoNotOptimize(planes.popcount(0, 0));
    }
    state.SetItemsProcessed(state.iterations() * s);
}
BENCHMARK(BM_BitPlaneDecompose)->Arg(256)->Arg(2048);

void
BM_BuiTable(benchmark::State &state)
{
    const QuantizedHead head = makeHead(64, 128);
    for (auto _ : state) {
        const BuiTable t = computeBuiTable(head.q.values.row(0), 8);
        benchmark::DoNotOptimize(t.hi[0]);
    }
}
BENCHMARK(BM_BuiTable);

void
BM_PlaneDelta(benchmark::State &state)
{
    const QuantizedHead head = makeHead(1024, 128);
    const QueryPlanes q(head.q.values.row(0));
    int j = 0;
    for (auto _ : state) {
        const int64_t d = planeDelta(q, head.k_planes, j, 0);
        benchmark::DoNotOptimize(d);
        j = (j + 1) % 1024;
    }
    state.SetItemsProcessed(state.iterations() * 128);
}
BENCHMARK(BM_PlaneDelta);

void
BM_PlaneDeltaScalar(benchmark::State &state)
{
    const QuantizedHead head = makeHead(1024, 128);
    int j = 0;
    for (auto _ : state) {
        const int64_t d = planeDeltaScalar(head.q.values.row(0),
                                           head.k_planes, j, 0);
        benchmark::DoNotOptimize(d);
        j = (j + 1) % 1024;
    }
    state.SetItemsProcessed(state.iterations() * 128);
}
BENCHMARK(BM_PlaneDeltaScalar);

void
BM_PlaneDeltaSimd(benchmark::State &state)
{
    const int h = static_cast<int>(state.range(0));
    const QuantizedHead head = makeHead(1024, h);
    const QueryPlanes q(head.q.values.row(0));
    int j = 0;
    for (auto _ : state) {
        const int64_t d = planeDeltaSimd(q, head.k_planes, j, 0);
        benchmark::DoNotOptimize(d);
        j = (j + 1) % 1024;
    }
    state.SetItemsProcessed(state.iterations() * h);
}
BENCHMARK(BM_PlaneDeltaSimd)->Arg(128)->Arg(256)->Arg(512);

void
BM_ExactDot(benchmark::State &state)
{
    const QuantizedHead head = makeHead(1024, 128);
    const QueryPlanes q(head.q.values.row(0));
    int j = 0;
    for (auto _ : state) {
        const int64_t d = exactDot(q, head.k_planes, j);
        benchmark::DoNotOptimize(d);
        j = (j + 1) % 1024;
    }
    state.SetItemsProcessed(state.iterations() * 128);
}
BENCHMARK(BM_ExactDot);

void
BM_ExactDotScalar(benchmark::State &state)
{
    const QuantizedHead head = makeHead(1024, 128);
    int j = 0;
    for (auto _ : state) {
        const int64_t d = exactDotScalar(head.q.values.row(0),
                                         head.k_planes, j);
        benchmark::DoNotOptimize(d);
        j = (j + 1) % 1024;
    }
    state.SetItemsProcessed(state.iterations() * 128);
}
BENCHMARK(BM_ExactDotScalar);

void
BM_ExactDotSimd(benchmark::State &state)
{
    const int h = static_cast<int>(state.range(0));
    const QuantizedHead head = makeHead(1024, h);
    const QueryPlanes q(head.q.values.row(0));
    int j = 0;
    for (auto _ : state) {
        const int64_t d = exactDotSimd(q, head.k_planes, j);
        benchmark::DoNotOptimize(d);
        j = (j + 1) % 1024;
    }
    state.SetItemsProcessed(state.iterations() * h);
}
BENCHMARK(BM_ExactDotSimd)->Arg(128)->Arg(256)->Arg(512);

void
BM_PlaneDeltaBs(benchmark::State &state)
{
    const QuantizedHead head = makeHead(1024, 128);
    int j = 0;
    for (auto _ : state) {
        const int64_t d = planeDeltaBs(head.q.values.row(0),
                                       head.k_planes, j, 0, 8);
        benchmark::DoNotOptimize(d);
        j = (j + 1) % 1024;
    }
}
BENCHMARK(BM_PlaneDeltaBs);

void
BM_GuardFilter(benchmark::State &state)
{
    GuardFilter g(0.55, 5.0, 1e-4);
    int64_t lb = -1000000;
    for (auto _ : state) {
        g.observe(lb);
        benchmark::DoNotOptimize(g.shouldPrune(lb + 1000));
        lb += 17;
    }
}
BENCHMARK(BM_GuardFilter);

void
BM_RarsSchedule(benchmark::State &state)
{
    const int scores = static_cast<int>(state.range(0));
    Rng rng(7);
    std::vector<std::vector<int>> needs(scores);
    for (auto &n : needs)
        for (int v = 0; v < 64; v++)
            if (rng.bernoulli(0.3))
                n.push_back(v);
    for (auto _ : state) {
        const RarsSchedule sched = scheduleRars(needs, 2);
        benchmark::DoNotOptimize(sched.loads);
    }
}
BENCHMARK(BM_RarsSchedule)->Arg(8)->Arg(32);

void
BM_PadeAttention(benchmark::State &state)
{
    const int s = static_cast<int>(state.range(0));
    const QuantizedHead head = makeHead(s, 128);
    PadeWorkspace ws;
    for (auto _ : state) {
        const PadeResult res = padeAttention(head, {}, &ws);
        benchmark::DoNotOptimize(res.stats.keys_retained);
    }
    state.SetItemsProcessed(state.iterations() * s * 8);
}
BENCHMARK(BM_PadeAttention)->Arg(512)->Arg(2048)
    ->Unit(benchmark::kMillisecond);

void
BM_PadeAttentionScalarKernel(benchmark::State &state)
{
    const int s = static_cast<int>(state.range(0));
    const QuantizedHead head = makeHead(s, 128);
    PadeConfig cfg;
    cfg.qk_kernel = QkKernel::kScalar;
    PadeWorkspace ws;
    for (auto _ : state) {
        const PadeResult res = padeAttention(head, cfg, &ws);
        benchmark::DoNotOptimize(res.stats.keys_retained);
    }
    state.SetItemsProcessed(state.iterations() * s * 8);
}
BENCHMARK(BM_PadeAttentionScalarKernel)->Arg(512)->Arg(2048)
    ->Unit(benchmark::kMillisecond);

void
BM_PadeAttentionSimdKernel(benchmark::State &state)
{
    const int s = static_cast<int>(state.range(0));
    const QuantizedHead head = makeHead(s, 128);
    PadeConfig cfg;
    cfg.qk_kernel = QkKernel::kSimd; // resolves to popcount off-AVX2
    PadeWorkspace ws;
    for (auto _ : state) {
        const PadeResult res = padeAttention(head, cfg, &ws);
        benchmark::DoNotOptimize(res.stats.keys_retained);
    }
    state.SetItemsProcessed(state.iterations() * s * 8);
}
BENCHMARK(BM_PadeAttentionSimdKernel)->Arg(512)->Arg(2048)
    ->Unit(benchmark::kMillisecond);

} // namespace
} // namespace pade

BENCHMARK_MAIN();

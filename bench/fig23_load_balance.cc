/**
 * @file
 * Paper Fig. 23:
 * (a) execution-cycle breakdown (useful / intra-PE stall / inter-PE
 *     stall) versus the number of PE lanes, PADE vs a BitWave-style
 *     bit-serial design (column bit sparsity, no pruning, no OOE);
 * (b) DRAM access, speedup and bandwidth utilization of Dense
 *     attention, Sanger, PADE without the bit-plane data layout, and
 *     PADE with it.
 */

#include "bench/common.h"

using namespace pade;
using namespace pade::bench;

int
main(int argc, char **argv)
{
    Cli cli(argc, argv);
    banner("Fig. 23(a): cycle breakdown vs number of PE lanes "
           "(PADE vs BitWave-style)");

    Table ta;
    ta.header({"dataset", "lanes", "design", "useful%", "intra-PE%",
               "inter-PE%", "dram-stall%", "util"});
    for (const DatasetConfig &ds : {dsMmlu(), dsDolly()}) {
        SimRequest req{llama2_7b(), ds};
        req.seed = cli.getInt("seed", 12);
        req.max_sim_seq = 4096;
        const OperatingPoints pts = calibratePoints(req);

        for (int lanes : {4, 8, 16, 32}) {
            for (int design = 0; design < 2; design++) {
                ArchConfig cfg;
                cfg.lanes_per_row = lanes;
                if (design == 1) {
                    // BitWave-style: bit-column sparsity via flipping
                    // but value-dense (no pruning), in-order.
                    cfg.enable_guard = false;
                    cfg.enable_bs = false;
                    cfg.enable_ooe = false;
                    cfg.enable_ista = false;
                    cfg.enable_rars = false;
                    cfg.enable_head_tail = false;
                }
                const SimOutcome o = runPade(cfg, req,
                                             pts.alpha_standard);
                const RunMetrics &b = o.block;
                const double denom = b.busy_cycles +
                    b.intra_pe_stall_cycles + b.inter_pe_stall_cycles +
                    b.dram_stall_cycles;
                ta.row({ds.name, std::to_string(lanes),
                        design == 0 ? "PADE" : "BitWave",
                        Table::pct(b.busy_cycles / denom),
                        Table::pct(b.intra_pe_stall_cycles / denom),
                        Table::pct(b.inter_pe_stall_cycles / denom),
                        Table::pct(b.dram_stall_cycles / denom),
                        Table::num(b.utilization, 2)});
            }
        }
    }
    ta.print();
    std::printf("Paper: PADE sustains ~30%% higher PE utilization as "
                "lanes scale; BitWave's one-sided bit sparsity "
                "suffers growing intra/inter-PE imbalance.\n");

    banner("Fig. 23(b): DRAM access / speedup / BW utilization");
    Table tb;
    tb.header({"dataset", "design", "norm DRAM", "speedup",
               "BW util"});
    for (const DatasetConfig &ds : {dsMmlu(), dsWikitext2()}) {
        SimRequest req{llama2_7b(), ds};
        req.seed = cli.getInt("seed", 12);
        req.max_sim_seq = 2048;
        const int sim_seq = std::min(req.dataset.seq_len, 2048);
        const OperatingPoints pts = calibratePoints(req);
        const BaselineKeeps keeps = calibrateBaselines(req,
                                                       kStandardMass,
                                                       sim_seq);

        ArchConfig dense_cfg;
        dense_cfg.enable_guard = false;
        const SimOutcome dense = runPade(dense_cfg, req, 1.0);
        const BaselineOutcome sanger =
            sangerRun(blockDims(req, sim_seq), keeps.sanger);
        ArchConfig no_dl;
        no_dl.k_layout = KLayout::ValueMajor;
        const SimOutcome pade_nodl = runPade(no_dl, req,
                                             pts.alpha_standard);
        const SimOutcome pade_dl = runPade(ArchConfig{}, req,
                                           pts.alpha_standard);

        const double base_dram =
            static_cast<double>(dense.block.dram_bytes);
        const double base_time = dense.block.time_ns;
        auto emit = [&](const char *name, double dram, double time,
                        double bw) {
            tb.row({ds.name, name, Table::num(dram / base_dram, 2),
                    Table::mult(base_time / time, 2),
                    Table::pct(bw)});
        };
        emit("Dense", base_dram, base_time,
             dense.block.bw_utilization);
        emit("Sanger",
             static_cast<double>(sanger.metrics.dram_bytes),
             sanger.metrics.time_ns, sanger.metrics.bw_utilization);
        emit("PADE w/o DL",
             static_cast<double>(pade_nodl.block.dram_bytes),
             pade_nodl.block.time_ns,
             pade_nodl.block.bw_utilization);
        emit("PADE w/ DL",
             static_cast<double>(pade_dl.block.dram_bytes),
             pade_dl.block.time_ns, pade_dl.block.bw_utilization);
    }
    tb.print();
    std::printf("Paper: PADE cuts DRAM access >6.7x vs dense for a "
                "3.4x speedup; the bit-plane layout lifts BW "
                "utilization to ~58%% and the speedup to 4.3x.\n");
    return 0;
}

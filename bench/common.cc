#include "bench/common.h"

#include <algorithm>
#include <chrono>
#include <cstdio>
#include <functional>
#include <iterator>

#include "serving/decode_engine.h"
#include "serving/kv_cache.h"

namespace pade {
namespace bench {

ThreadPool &
benchPool()
{
    static ThreadPool pool;
    return pool;
}

OperatingPoints
calibratePoints(SimRequest req)
{
    req.radius = kCalibRadius;
    OperatingPoints pts;
    // The two operating points are independent binary searches; run
    // them side by side on the shared pool.
    parallelFor(benchPool(), 2, [&](int i) {
        if (i == 0)
            pts.alpha_standard = calibrateAlpha(req, kStandardMass);
        else
            pts.alpha_aggressive = calibrateAlpha(req, kAggressiveMass);
    });
    return pts;
}

AttentionHead
calibrationHead(const SimRequest &req, int cap)
{
    WorkloadSpec spec = WorkloadSpec::fromPresets(
        req.model, req.dataset, 8, req.seed);
    spec.seq_len = std::min(req.dataset.seq_len, cap);
    spec.qat_uniform = req.qat;
    return generateHead(spec);
}

BaselineKeeps
calibrateBaselines(const SimRequest &req, double target_mass, int cap)
{
    const AttentionHead head = calibrationHead(req, cap);
    const int s = head.k.rows();
    BaselineKeeps keeps;

    // Un-finetuned prev-layer guidance correlates weakly with the
    // current layer: noise comparable to the logit spread. Finetuning
    // restores a tight estimate.
    constexpr double kNoFtSigma = 8.0;
    constexpr double kFtSigma = 1.0;

    // Each baseline's knob search only reads the shared head, so the
    // six calibrations fan out across the bench pool.
    const std::function<void()> tasks[] = {
        [&] {
            keeps.sanger = lowBitMask(
                head, 4,
                calibrateKnob([&head](double m) {
                    return lowBitMask(head, 4, m);
                }, target_mass, 0.0, 25.0)).keep_rate;
        },
        [&] {
            keeps.dota = lowRankMask(
                head, 16,
                calibrateKnob([&head](double m) {
                    return lowRankMask(head, 16, m);
                }, target_mass, 0.0, 25.0)).keep_rate;
        },
        [&] {
            keeps.energon = progressiveMask(
                head, 0.5,
                calibrateKnob([&head](double m) {
                    return progressiveMask(head, 0.5, m);
                }, target_mass, 0.0, 25.0)).keep_rate;
        },
        [&] {
            keeps.spatten = noisyTopkMask(
                head,
                static_cast<int>(calibrateKnob([&head](double k) {
                    return noisyTopkMask(
                        head, std::max(1, static_cast<int>(k)),
                        kNoFtSigma);
                }, target_mass, 1.0, s)), kNoFtSigma).keep_rate;
        },
        [&] {
            keeps.spatten_ft = noisyTopkMask(
                head,
                static_cast<int>(calibrateKnob([&head](double k) {
                    return noisyTopkMask(
                        head, std::max(1, static_cast<int>(k)),
                        kFtSigma);
                }, target_mass, 1.0, s)), kFtSigma).keep_rate;
        },
        [&] {
            keeps.sofa = logDomainTopkMask(
                head,
                static_cast<int>(calibrateKnob([&head](double k) {
                    return logDomainTopkMask(
                        head, std::max(1, static_cast<int>(k)));
                }, target_mass, 1.0, s))).keep_rate;
        },
    };
    parallelFor(benchPool(), static_cast<int>(std::size(tasks)),
                [&tasks](int i) { tasks[i](); });
    return keeps;
}

SimOutcome
runPade(const ArchConfig &cfg, SimRequest req, double alpha)
{
    req.alpha = alpha;
    req.radius = kCalibRadius;
    return simulatePade(cfg, req);
}

AttentionDims
blockDims(const SimRequest &req, int sim_seq)
{
    AttentionDims d;
    d.p = req.decode ? 1 : 8;
    d.s = std::min(req.dataset.seq_len, sim_seq);
    d.h = req.model.head_dim;
    d.exec_bits = req.bits;
    return d;
}

ServingDecodeCost
measureServingDecode(const ServingDecodePoint &pt,
                     const PadeConfig &cfg)
{
    using Clock = std::chrono::steady_clock;
    const auto usSince = [](Clock::time_point t0) {
        return std::chrono::duration<double, std::micro>(
                   Clock::now() - t0).count();
    };

    WorkloadSpec spec;
    spec.seq_len = pt.ctx + pt.steps;
    spec.query_len = pt.steps;
    spec.head_dim = pt.head_dim;
    spec.locality = pt.locality;
    spec.seed = pt.seed;
    const QuantizedHead head =
        quantizeHead(generateHead(spec), pt.bits);

    KvCacheConfig kc;
    kc.head_dim = pt.head_dim;
    kc.bits = pt.bits;
    kc.subgroup = cfg.subgroup;
    kc.muxes = cfg.muxes;
    kc.v_scale = head.v.params.scale;

    ServingDecodeCost cost;
    std::vector<float> out(static_cast<std::size_t>(pt.head_dim));

    // Cache-maintenance component alone: appends at full context,
    // best of reps (each rep rebuilds to keep the work identical).
    for (int r = 0; r < std::max(1, pt.reps); r++) {
        KvCache cache(kc);
        const auto t0 = Clock::now();
        for (int t = 0; t < pt.ctx; t++)
            cache.appendToken(head.k.values.row(t),
                              head.v.values.row(t));
        const double us = usSince(t0) / pt.ctx;
        if (r == 0 || us < cost.append_us_per_tok)
            cost.append_us_per_tok = us;
    }

    // Incremental path: prefill once (untimed), then append + guarded
    // step per token.
    {
        KvCache cache(kc);
        for (int t = 0; t < pt.ctx; t++)
            cache.appendToken(head.k.values.row(t),
                              head.v.values.row(t));
        DecodeEngine engine(cfg);
        const auto t0 = Clock::now();
        for (int t = 0; t < pt.steps; t++) {
            const int pos = pt.ctx + t;
            cache.appendToken(head.k.values.row(pos),
                              head.v.values.row(pos));
            engine.step(cache, head.q.values.row(t),
                        head.logit_scale, out);
        }
        cost.cached_us_per_tok = usSince(t0) / pt.steps;
        cost.keep_rate = engine.stats().keepRate();
        cost.pages = cache.numPages();
        cost.cache_bytes = cache.bytesUsed();
    }

    // Re-pack baseline: rebuild the whole cache (pack + PlaneWork
    // over the full history) every token, then the identical step —
    // the per-step cost model the serving layer replaced.
    {
        DecodeEngine engine(cfg);
        const auto t0 = Clock::now();
        for (int t = 0; t < pt.steps; t++) {
            KvCache fresh(kc);
            for (int p = 0; p <= pt.ctx + t; p++)
                fresh.appendToken(head.k.values.row(p),
                                  head.v.values.row(p));
            engine.step(fresh, head.q.values.row(t),
                        head.logit_scale, out);
        }
        cost.repack_us_per_tok = usSince(t0) / pt.steps;
    }
    return cost;
}

void
banner(const std::string &title)
{
    std::printf("\n================================================\n"
                "%s\n"
                "================================================\n",
                title.c_str());
}

} // namespace bench
} // namespace pade

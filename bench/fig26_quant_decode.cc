/**
 * @file
 * Paper Fig. 26:
 * (a) energy under PTQ/QAT INT8 and INT4 for SOFA (predictor-bound at
 *     low precision, hurt by QAT's flatter distributions) vs PADE
 *     (predictor-free, nearly insensitive);
 * (b) long-sequence decoding energy breakdown at S = 4k/8k/16k, where
 *     DRAM dominates and SOFA's predictor must stream all keys every
 *     step.
 */

#include "bench/common.h"

using namespace pade;
using namespace pade::bench;

int
main(int argc, char **argv)
{
    Cli cli(argc, argv);
    banner("Fig. 26(a): energy under diverse quantizations "
           "(normalized to each design's PTQ8)");

    Table ta;
    ta.header({"config", "SOFA", "PADE", "SOFA keep", "PADE keep"});
    double sofa_base = 0.0;
    double pade_base = 0.0;
    for (const auto &[name, bits, qat] :
         {std::tuple<const char *, int, bool>{"PTQ8", 8, false},
          {"QAT8", 8, true},
          {"PTQ4", 4, false},
          {"QAT4", 4, true}}) {
        SimRequest req{llama2_7b(), dsWikitext2()};
        req.seed = cli.getInt("seed", 14);
        req.bits = bits;
        req.qat = qat;
        req.max_sim_seq = 2048;

        const AttentionHead head = calibrationHead(req, 2048);
        const int s = head.k.rows();
        const double k_knob = calibrateKnob(
            [&head, s](double k) {
                return logDomainTopkMask(
                    head, std::max(1, static_cast<int>(k)));
            },
            kStandardMass, 1.0, s);
        const MaskOutcome sofa_mask = logDomainTopkMask(
            head, static_cast<int>(k_knob));
        AttentionDims d = blockDims(req, 2048);
        d.exec_bits = bits;
        const BaselineOutcome sofa = sofaRun(d, sofa_mask.keep_rate);

        const OperatingPoints pts = calibratePoints(req);
        const SimOutcome pade = runPade(ArchConfig{}, req,
                                        pts.alpha_standard);

        const double se = sofa.metrics.energy.total();
        const double pe = pade.block.energy.total();
        if (sofa_base == 0.0) {
            sofa_base = se;
            pade_base = pe;
        }
        ta.row({name, Table::num(se / sofa_base, 2),
                Table::num(pe / pade_base, 2),
                Table::pct(sofa_mask.keep_rate),
                Table::pct(pade.block.prune.keepRate())});
    }
    ta.print();
    std::printf("Paper: QAT costs SOFA ~6%% extra energy (flatter "
                "distribution defeats its predictor) and PADE almost "
                "nothing; at 4 bits SOFA's predictor dominates while "
                "PADE loses only ~2%%.\n");

    banner("Fig. 26(b): long-sequence decoding energy breakdown");
    Table tb;
    tb.header({"S", "design", "norm energy", "dram%", "buffer%",
               "comp%"});
    double pade4k = 0.0;
    for (int s : {4096, 8192, 16384}) {
        SimRequest req{llama2_7b(),
                       {"decode", s, "longctx", 0.7}};
        req.seed = cli.getInt("seed", 14);
        req.decode = true;
        req.decode_steps = 1;
        req.max_sim_seq = s;
        const OperatingPoints pts = calibratePoints(req);
        const SimOutcome pade = runPade(ArchConfig{}, req,
                                        pts.alpha_standard);

        const AttentionHead head = calibrationHead(req, 2048);
        const double k_knob = calibrateKnob(
            [&head](double k) {
                return logDomainTopkMask(
                    head, std::max(1, static_cast<int>(k)));
            },
            kStandardMass, 1.0, head.k.rows());
        const double sofa_keep = logDomainTopkMask(
            head, static_cast<int>(k_knob)).keep_rate;
        AttentionDims d;
        d.p = 1;
        d.s = s;
        d.h = req.model.head_dim;
        const BaselineOutcome sofa = sofaRun(d, sofa_keep);

        if (pade4k == 0.0)
            pade4k = pade.block.energy.total();
        auto emit = [&tb, s](const char *name,
                             const EnergyBreakdown &e, double norm) {
            tb.row({std::to_string(s), name, Table::num(norm, 2),
                    Table::pct(e.dram_pj / e.total()),
                    Table::pct(e.sram_pj / e.total()),
                    Table::pct(e.compute_pj / e.total())});
        };
        emit("PADE", pade.block.energy,
             pade.block.energy.total() / pade4k / (s / 4096.0));
        emit("SOFA", sofa.metrics.energy,
             sofa.metrics.energy.total() / pade4k / (s / 4096.0));
    }
    tb.print();
    std::printf("norm energy is per-key (divided by S/4k): PADE grows "
                "~5%% from 4k to 16k while SOFA's predictor keeps "
                "streaming every key (paper: +40%%); DRAM stays "
                ">85%% of decode energy.\n");
    return 0;
}

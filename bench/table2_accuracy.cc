/**
 * @file
 * Paper Table II: task metrics of the benchmark models under MXINT8 /
 * FP16 / INT8 / PADE(standard) / PADE(aggressive).
 *
 * Offline substitution (DESIGN.md §3): task scores are proxied.
 * FP16 is the reference (relative score 1.000); INT8/MXINT8 penalties
 * come from measured attention-output error under quantization; PADE
 * rows additionally apply the retained-softmax-mass -> task-score
 * mapping (attention/metrics.h). The printed numbers are relative
 * scores (x1000) — compare their *ordering and gaps* with the paper's
 * rows, which show PADE(S) ~ INT8 and PADE(A) slightly below.
 */

#include "attention/metrics.h"
#include "attention/reference.h"
#include "bench/common.h"

using namespace pade;
using namespace pade::bench;

namespace {

/** Attention-output relative error -> relative task score. */
double
scoreFromOutputError(double rel_err)
{
    // Small output perturbations cost roughly proportionally; anchors:
    // err 0.01 -> ~0.999, err 0.05 -> ~0.99, err 0.2 -> ~0.95.
    return std::max(0.0, 1.0 - 0.12 * rel_err - 1.0 * rel_err *
                    rel_err);
}

} // namespace

int
main(int argc, char **argv)
{
    Cli cli(argc, argv);
    banner("Table II: relative task score (x1000, FP16 = 1000) under "
           "quantization and PADE operating points");

    struct Row
    {
        ModelConfig model;
        DatasetConfig ds;
    };
    const std::vector<Row> rows = {
        {llama2_7b(), dsWikilingua()}, {llama2_7b(), dsMmlu()},
        {llama3_8b(), dsWikilingua()}, {llama3_8b(), dsMbpp()},
        {opt_1b3(), dsWikilingua()},   {bloom_1b7(), dsMbpp()},
        {qwen_7b(), dsWikilingua()},   {vit_l16(), dsImageNet()},
        {pvt(), dsImageNet()},
    };

    Table t;
    t.header({"model", "task", "MXINT8", "FP16", "INT8", "PADE(S)",
              "PADE(A)", "mass S", "mass A"});

    for (const auto &row : rows) {
        SimRequest req{row.model, row.ds};
        req.seed = cli.getInt("seed", 3);
        req.max_sim_seq = 2048;

        const AttentionHead head = calibrationHead(req, 2048);
        const MatrixF fp = denseAttention(head.q, head.k, head.v,
                                          head.scale);
        const MatrixF i8 = int8Attention(head.q, head.k, head.v,
                                         head.scale);
        const double int8_score =
            scoreFromOutputError(relativeError(i8, fp));
        // MX group scales track outliers better than per-tensor INT8.
        const double mx_err = 0.5 * relativeError(i8, fp);
        const double mx_score = scoreFromOutputError(mx_err);

        const OperatingPoints pts = calibratePoints(req);
        const SimOutcome std_run = runPade(ArchConfig{}, req,
                                           pts.alpha_standard);
        const SimOutcome agg_run = runPade(ArchConfig{}, req,
                                           pts.alpha_aggressive);
        const double s_std = int8_score *
            taskScoreFromMass(std_run.retained_mass);
        const double s_agg = int8_score *
            taskScoreFromMass(agg_run.retained_mass);

        t.row({row.model.name, row.ds.name,
               Table::num(1000.0 * mx_score, 0), "1000",
               Table::num(1000.0 * int8_score, 0),
               Table::num(1000.0 * s_std, 0),
               Table::num(1000.0 * s_agg, 0),
               Table::num(std_run.retained_mass, 4),
               Table::num(agg_run.retained_mass, 4)});
    }
    t.print();
    return 0;
}

/**
 * @file
 * Paper Fig. 5(f): without tiling, row-dependent pruning forces the
 * full score rows of all P parallel queries to stay resident; once the
 * working set exceeds on-chip SRAM it spills to DRAM, so memory access
 * grows super-linearly with P. Reproduced for 240 kB and 320 kB
 * on-chip budgets on Llama2-7B (S=2k).
 */

#include <cmath>

#include "bench/common.h"

using namespace pade;
using namespace pade::bench;

namespace {

/** Untiled memory traffic for P parallel queries (bytes). */
double
untiledTraffic(int p, int s, int h, double sram_budget)
{
    // Without tiling, the row-dependent pruning criterion needs every
    // query's full score row resident before any executor work can
    // start. K/V working tiles and pipeline buffers claim a fixed
    // share of SRAM; the remainder holds scores. Once scores no
    // longer fit, the K stream must be re-run once per resident score
    // partition, and the overflowing scores travel to DRAM and back.
    const double k_bytes = static_cast<double>(s) * h;
    const double v_bytes = static_cast<double>(s) * h;
    const double reserved = 160.0 * 1024; // K/V tiles + pipeline
    const double score_budget = std::max(16.0 * 1024,
                                         sram_budget - reserved);
    const double scores = 4.0 * static_cast<double>(p) * s;
    const double passes = std::ceil(scores / score_budget);
    const double spill = std::max(0.0, scores - score_budget);
    return passes * k_bytes + v_bytes + 2.0 * spill;
}

} // namespace

int
main(int argc, char **argv)
{
    Cli cli(argc, argv);
    (void)cli;
    banner("Fig. 5(f): normalized memory access vs # parallel queries "
           "P without tiling (Llama2-7B, S=2k)");

    const int s = 2048;
    const int h = 128;
    const double base240 = untiledTraffic(8, s, h, 240.0 * 1024);
    const double base320 = untiledTraffic(8, s, h, 320.0 * 1024);

    Table t("normalized to P = 8");
    t.header({"P", "240kB SRAM", "320kB SRAM", "ideal (tiled)"});
    for (int p : {8, 16, 24, 32, 40}) {
        t.row({std::to_string(p),
               Table::num(untiledTraffic(p, s, h, 240.0 * 1024) /
                          base240, 2),
               Table::num(untiledTraffic(p, s, h, 320.0 * 1024) /
                          base320, 2),
               Table::num(p / 8.0, 2)});
    }
    t.print();
    std::printf("ISTA removes the row dependency, so PADE's traffic "
                "follows the 'ideal' column (paper: P=8 -> 32 grows "
                ">12x without tiling).\n");
    return 0;
}

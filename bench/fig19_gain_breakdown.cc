/**
 * @file
 * Paper Fig. 19: energy-efficiency and throughput gain waterfall from
 * the GPU through the baseline ASIC and each PADE mechanism, split
 * into the "software" gain (mechanism alone) and the "hardware" gain
 * (with its tailored engine):
 *
 *  - BUI-GF alone refetches bit planes every round; the scoreboard
 *    result-reuse lane is its hardware engine;
 *  - BS-OOE alone uses mismatched mux granularity (fewer effective
 *    mux lanes); the grouped sparsity ANDer tree is its engine;
 *  - ISTA alone tiles without reuse-aware ordering; RARS + head-tail
 *    interleaving are its engines.
 */

#include "bench/common.h"

using namespace pade;
using namespace pade::bench;

int
main(int argc, char **argv)
{
    Cli cli(argc, argv);
    banner("Fig. 19: efficiency & throughput gain breakdown "
           "(Llama2-7B, Wikitext2)");

    SimRequest req{llama2_7b(), dsWikitext2()};
    req.seed = cli.getInt("seed", 8);
    req.max_sim_seq = 2048;
    const OperatingPoints pts = calibratePoints(req);
    const double alpha = pts.alpha_standard;

    // GPU reference.
    GpuOptions gopt;
    const RunMetrics gpu = gpuModelAttention(req.model, req.dataset,
                                             gopt);

    struct Stage
    {
        const char *name;
        ArchConfig cfg;
    };
    ArchConfig base;
    base.enable_guard = false;
    base.enable_bs = false;
    base.enable_ooe = false;
    base.enable_ista = false;
    base.enable_rars = false;
    base.enable_head_tail = false;

    ArchConfig bui_sw = base;
    bui_sw.enable_guard = true;
    bui_sw.result_reuse = false;
    ArchConfig bui_hw = bui_sw;
    bui_hw.result_reuse = true;

    ArchConfig bsooe_sw = bui_hw;
    bsooe_sw.enable_bs = true;
    bsooe_sw.enable_ooe = true;
    bsooe_sw.muxes = 2; // mismatched mux granularity without GSAT
    ArchConfig bsooe_hw = bsooe_sw;
    bsooe_hw.muxes = 4;

    ArchConfig ista_sw = bsooe_hw;
    ista_sw.enable_ista = true;
    ArchConfig ista_hw = ista_sw;
    ista_hw.enable_rars = true;
    ista_hw.enable_head_tail = true;

    const std::vector<Stage> stages = {
        {"Baseline ASIC", base},
        {"+BUI-GF (sw)", bui_sw},
        {"+BUI-GF (+scoreboard)", bui_hw},
        {"+BS-OOE (sw)", bsooe_sw},
        {"+BS-OOE (+GSAT)", bsooe_hw},
        {"+ISTA (sw)", ista_sw},
        {"+ISTA (+RARS/head-tail)", ista_hw},
    };

    Table t;
    t.header({"stage", "effic (GOPS/W)", "gain vs GPU",
              "step gain", "thruput gain vs GPU"});
    t.row({"GPU (H100)", Table::num(gpu.gopsPerW(), 1), "1.0x", "-",
           "1.0x"});
    double prev_eff = gpu.gopsPerW();
    for (const auto &st : stages) {
        const SimOutcome o = runPade(st.cfg, req, alpha);
        const double eff = o.total.gopsPerW();
        const double thr = o.total.gops() / std::max(gpu.gops(),
                                                     1e-12);
        t.row({st.name, Table::num(eff, 1),
               Table::mult(eff / gpu.gopsPerW(), 2),
               Table::mult(eff / prev_eff, 2), Table::mult(thr, 2)});
        prev_eff = eff;
    }
    t.print();
    std::printf("Paper shape: ASIC 4.0x over GPU; BUI-GF 1.4x alone "
                "-> 2.2x with the scoreboard; BS-OOE 1.58x -> 2.07x "
                "with GSAT; ISTA 1.43x -> 1.69x with RARS; overall "
                "31.1x efficiency / 7.43x throughput.\n");
    return 0;
}

/**
 * @file
 * Paper Fig. 2: the predictor-overhead motivation.
 *
 * (a) Power breakdown of dense attention vs Sanger vs SOFA as the
 *     executor bit-width shrinks from 16 to 8 bits (Llama2-7B, S=2k):
 *     the predictor share grows as the executor gets cheaper.
 * (b) Predictor/executor power ratio versus sequence length at an
 *     8-bit executor: longer sequences are sparser, so the (keep-
 *     independent) predictor dominates more.
 */

#include "bench/common.h"

using namespace pade;
using namespace pade::bench;

int
main(int argc, char **argv)
{
    Cli cli(argc, argv);
    banner("Fig. 2(a): power breakdown vs executor bit-width "
           "(Llama2-7B, Wikitext2 S=2k, 0%-loss operating points)");

    SimRequest req{llama2_7b(), dsWikitext2()};
    req.seed = cli.getInt("seed", 1);
    const BaselineKeeps keeps = calibrateBaselines(req, kStandardMass);

    Table ta("normalized power (dense @16b = 1.0); predictor share in "
             "parentheses");
    ta.header({"exec bits", "Dense", "Sanger", "SOFA",
               "Sanger pred%", "SOFA pred%"});

    const int sim_seq = 2048;
    double dense16 = 0.0;
    for (int bits : {16, 12, 8}) {
        AttentionDims d = blockDims(req, sim_seq);
        d.exec_bits = bits;
        const BaselineOutcome dense = denseAccelRun(d);
        const BaselineOutcome sanger = sangerRun(d, keeps.sanger);
        const BaselineOutcome sofa = sofaRun(d, keeps.sofa);
        // Power = energy / time; normalize energies at equal work.
        if (bits == 16)
            dense16 = dense.metrics.energy.total();
        auto norm = [dense16](const BaselineOutcome &b) {
            return b.metrics.energy.total() / dense16;
        };
        auto pred_share = [](const BaselineOutcome &b) {
            return b.predictor_pj / (b.predictor_pj + b.executor_pj);
        };
        ta.row({std::to_string(bits), Table::num(norm(dense), 3),
                Table::num(norm(sanger), 3), Table::num(norm(sofa), 3),
                Table::pct(pred_share(sanger)),
                Table::pct(pred_share(sofa))});
    }
    ta.print();

    banner("Fig. 2(b): predictor/executor power ratio vs sequence "
           "length (8-bit executor)");
    Table tb;
    tb.header({"SL", "Sanger ratio", "SOFA ratio", "Sanger keep",
               "SOFA keep"});
    for (int sl : {1024, 2048, 4096, 8192}) {
        SimRequest r = req;
        r.dataset.seq_len = sl;
        const BaselineKeeps k = calibrateBaselines(r, kStandardMass,
                                                   sl);
        AttentionDims d = blockDims(r, sl);
        const BaselineOutcome sanger = sangerRun(d, k.sanger);
        const BaselineOutcome sofa = sofaRun(d, k.sofa);
        tb.row({std::to_string(sl),
                Table::num(sanger.predictor_pj / sanger.executor_pj,
                           2),
                Table::num(sofa.predictor_pj / sofa.executor_pj, 2),
                Table::pct(k.sanger), Table::pct(k.sofa)});
    }
    tb.print();
    return 0;
}

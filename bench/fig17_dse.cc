/**
 * @file
 * Paper Fig. 17 design-space exploration:
 * (a) GSAT sub-group size versus normalized area & power (optimum at
 *     8);
 * (b) PE utilization versus scoreboard entries under 95/90/85%
 *     sparsity (saturation at ~32 entries).
 */

#include <algorithm>
#include <cstddef>
#include <cstdio>

#include "bench/common.h"
#include "energy/area_model.h"
#include "runtime/batch_driver.h"

using namespace pade;
using namespace pade::bench;

int
main(int argc, char **argv)
{
    Cli cli(argc, argv);
    banner("Fig. 17(a): GSAT sub-group size DSE (normalized to the "
           "optimum)");

    const double best = gsatCost(64, 8).area_mm2;
    const double best_p = gsatCost(64, 8).power_mw;
    Table ta;
    ta.header({"sub-group", "norm area", "norm power"});
    for (int g : {2, 4, 8, 16, 32, 64}) {
        const GsatCost c = gsatCost(64, g);
        ta.row({std::to_string(g), Table::num(c.area_mm2 / best, 2),
                Table::num(c.power_mw / best_p, 2)});
    }
    ta.print();
    std::printf("optimal point: sub-group size 8 (paper Fig. 17(a))\n");

    banner("Fig. 17(b): PE utilization vs scoreboard entries under "
           "sparsity");
    Table tb;
    tb.header({"entries", "95% sparsity", "90% sparsity",
               "85% sparsity"});

    // Realize target sparsities by adjusting alpha (keep = 1 -
    // sparsity) on a Llama2/Wiki2 workload.
    SimRequest req{llama2_7b(), dsWikitext2()};
    req.seed = cli.getInt("seed", 6);
    req.max_sim_seq = 2048;

    auto alphaForKeep = [&req](double keep_target) {
        const AttentionHead head = calibrationHead(req, 2048);
        const QuantizedHead qh = quantizeHead(head);
        PadeWorkspace ws; // reused across the binary-search re-runs
        double lo = 0.0;
        double hi = 1.0;
        for (int i = 0; i < 10; i++) {
            const double mid = 0.5 * (lo + hi);
            PadeConfig cfg;
            cfg.alpha = mid;
            cfg.radius = kCalibRadius;
            if (padeAttention(qh, cfg, &ws).stats.keepRate() >
                keep_target)
                hi = mid;
            else
                lo = mid;
        }
        return 0.5 * (lo + hi);
    };
    // The three target sparsities calibrate independently.
    double alphas[3];
    const double keep_targets[3] = {0.05, 0.10, 0.15};
    parallelFor(benchPool(), 3, [&](int i) {
        alphas[i] = alphaForKeep(keep_targets[i]);
    });

    // The 6x3 sweep is one batch of independent simulations: fan it
    // across the batch runtime and compare against the sequential
    // path (1 worker) to show the scaling win.
    const int entries_axis[] = {4, 8, 16, 24, 32, 40};
    std::vector<BatchItem> sweep;
    for (int entries : entries_axis) {
        for (double alpha : alphas) {
            BatchItem item;
            item.arch.scoreboard_entries = entries;
            item.req = req;
            item.req.alpha = alpha;
            item.req.radius = kCalibRadius;
            sweep.push_back(item);
        }
    }

    const BatchResult seq =
        BatchDriver(BatchOptions{.threads = 1}).run(sweep);
    const int hw = ThreadPool::hardwareThreads();
    const BatchResult par =
        BatchDriver(BatchOptions{.threads = hw}).run(sweep);

    // A swallowed failure must not masquerade as a 0.00 data point.
    if (seq.failed > 0 || par.failed > 0) {
        for (std::size_t i = 0; i < sweep.size(); i++) {
            if (!par.results[i].ok)
                std::fprintf(stderr, "sweep item %zu failed: %s\n", i,
                             par.results[i].error.c_str());
            else if (!seq.results[i].ok)
                std::fprintf(stderr,
                             "sweep item %zu failed (seq): %s\n", i,
                             seq.results[i].error.c_str());
        }
        return 1;
    }

    bool identical = seq.completed == par.completed;
    for (std::size_t i = 0; identical && i < sweep.size(); i++) {
        identical = seq.results[i].ok == par.results[i].ok &&
            seq.results[i].outcome.block.utilization ==
                par.results[i].outcome.block.utilization;
    }

    std::size_t idx = 0;
    for (int entries : entries_axis) {
        std::vector<std::string> row = {std::to_string(entries)};
        for (int a = 0; a < 3; a++)
            row.push_back(Table::num(
                par.results[idx++].outcome.block.utilization, 2));
        tb.row(row);
    }
    tb.print();
    std::printf("sweep runtime: sequential %.1f ms, parallel (%d "
                "workers) %.1f ms, speedup %.2fx, outcomes %s\n",
                seq.wall_ms, hw, par.wall_ms,
                seq.wall_ms / std::max(par.wall_ms, 1e-9),
                identical ? "identical" : "DIVERGED");
    std::printf("Paper: utilization saturates around 32 entries, the "
                "adopted configuration.\n");
    // Divergence across thread counts means the data above is not
    // trustworthy; scripted figure regeneration must notice.
    return identical ? 0 : 1;
}

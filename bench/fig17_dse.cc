/**
 * @file
 * Paper Fig. 17 design-space exploration:
 * (a) GSAT sub-group size versus normalized area & power (optimum at
 *     8);
 * (b) PE utilization versus scoreboard entries under 95/90/85%
 *     sparsity (saturation at ~32 entries).
 */

#include "bench/common.h"
#include "energy/area_model.h"

using namespace pade;
using namespace pade::bench;

int
main(int argc, char **argv)
{
    Cli cli(argc, argv);
    banner("Fig. 17(a): GSAT sub-group size DSE (normalized to the "
           "optimum)");

    const double best = gsatCost(64, 8).area_mm2;
    const double best_p = gsatCost(64, 8).power_mw;
    Table ta;
    ta.header({"sub-group", "norm area", "norm power"});
    for (int g : {2, 4, 8, 16, 32, 64}) {
        const GsatCost c = gsatCost(64, g);
        ta.row({std::to_string(g), Table::num(c.area_mm2 / best, 2),
                Table::num(c.power_mw / best_p, 2)});
    }
    ta.print();
    std::printf("optimal point: sub-group size 8 (paper Fig. 17(a))\n");

    banner("Fig. 17(b): PE utilization vs scoreboard entries under "
           "sparsity");
    Table tb;
    tb.header({"entries", "95% sparsity", "90% sparsity",
               "85% sparsity"});

    // Realize target sparsities by adjusting alpha (keep = 1 -
    // sparsity) on a Llama2/Wiki2 workload.
    SimRequest req{llama2_7b(), dsWikitext2()};
    req.seed = cli.getInt("seed", 6);
    req.max_sim_seq = 2048;

    auto alphaForKeep = [&req](double keep_target) {
        const AttentionHead head = calibrationHead(req, 2048);
        const QuantizedHead qh = quantizeHead(head);
        double lo = 0.0;
        double hi = 1.0;
        for (int i = 0; i < 10; i++) {
            const double mid = 0.5 * (lo + hi);
            PadeConfig cfg;
            cfg.alpha = mid;
            cfg.radius = kCalibRadius;
            if (padeAttention(qh, cfg).stats.keepRate() > keep_target)
                hi = mid;
            else
                lo = mid;
        }
        return 0.5 * (lo + hi);
    };
    const double alphas[3] = {alphaForKeep(0.05), alphaForKeep(0.10),
                              alphaForKeep(0.15)};

    for (int entries : {4, 8, 16, 24, 32, 40}) {
        std::vector<std::string> row = {std::to_string(entries)};
        for (double alpha : alphas) {
            ArchConfig cfg;
            cfg.scoreboard_entries = entries;
            const SimOutcome o = runPade(cfg, req, alpha);
            row.push_back(Table::num(o.block.utilization, 2));
        }
        tb.row(row);
    }
    tb.print();
    std::printf("Paper: utilization saturates around 32 entries, the "
                "adopted configuration.\n");
    return 0;
}

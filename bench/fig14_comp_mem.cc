/**
 * @file
 * Paper Fig. 14: normalized computation and memory access of seven
 * designs (SpAtten w/o retrain, Sanger, DOTA, Energon, SpAtten*
 * finetuned, SOFA, PADE) across the seven benchmark models, all at the
 * 0%-loss operating point. Computation is normalized to SpAtten w/o
 * retrain (the paper's baseline); memory access to Sanger.
 */

#include "bench/common.h"

using namespace pade;
using namespace pade::bench;

int
main(int argc, char **argv)
{
    Cli cli(argc, argv);
    banner("Fig. 14: normalized computation / memory access at 0% "
           "loss (lower is better)");

    struct Work
    {
        ModelConfig model;
        DatasetConfig ds;
    };
    const std::vector<Work> works = {
        {llama2_7b(), dsWikitext2()}, {llama3_8b(), dsWikitext2()},
        {opt_1b3(), dsWikitext2()},   {bloom_1b7(), dsWikitext2()},
        {qwen_7b(), dsWikitext2()},   {vit_l16(), dsImageNet()},
        {pvt(), {"ImageNet", 3072, "vision", 0.2}},
    };

    Table tc("Computation (norm to SpAtten w/o retrain)");
    Table tm("Memory access (norm to Sanger)");
    const std::vector<std::string> cols = {
        "model", "SpAtten", "Sanger", "DOTA", "Energon", "SpAtten*",
        "SOFA", "PADE"};
    tc.header(cols);
    tm.header(cols);

    for (const auto &w : works) {
        SimRequest req{w.model, w.ds};
        req.seed = cli.getInt("seed", 5);
        req.max_sim_seq = 2048;
        const int sim_seq = std::min(req.dataset.seq_len, 2048);
        const BaselineKeeps keeps = calibrateBaselines(req,
                                                       kStandardMass,
                                                       sim_seq);
        const AttentionDims d = blockDims(req, sim_seq);

        const BaselineOutcome spat = spattenRun(d, keeps.spatten);
        const BaselineOutcome sang = sangerRun(d, keeps.sanger);
        const BaselineOutcome dota = dotaRun(d, keeps.dota, 16);
        const BaselineOutcome ener = energonRun(d, 0.5, keeps.energon);
        const BaselineOutcome spat_ft = spattenRun(d,
                                                   keeps.spatten_ft);
        const BaselineOutcome sofa = sofaRun(d, keeps.sofa);

        const OperatingPoints pts = calibratePoints(req);
        const SimOutcome pade = runPade(ArchConfig{}, req,
                                        pts.alpha_standard);

        // MAC-equivalent computation per design.
        auto comp = [&d](const BaselineOutcome &b, double pred_frac) {
            return pred_frac * d.pairs() * d.h +
                2.0 * b.keep_rate * d.pairs() * d.h;
        };
        const double c_spat = comp(spat, 0.0);
        const double c_base = c_spat;
        const double c_sang = comp(sang, 0.5);
        const double c_dota = comp(dota, 16.0 / d.h);
        const double c_ener = comp(ener, 0.25 + 0.5 * 0.5);
        const double c_spat_ft = comp(spat_ft, 0.0);
        const double c_sofa = comp(sofa, 0.25);
        const double c_pade =
            static_cast<double>(pade.block.prune.ops_bs) / 8.0 +
            static_cast<double>(pade.block.prune.keys_retained) * d.h;

        tc.row({w.model.name, Table::num(c_spat / c_base, 2),
                Table::num(c_sang / c_base, 2),
                Table::num(c_dota / c_base, 2),
                Table::num(c_ener / c_base, 2),
                Table::num(c_spat_ft / c_base, 2),
                Table::num(c_sofa / c_base, 2),
                Table::num(c_pade / c_base, 2)});

        // PADE's effective per-block traffic includes the cross-block
        // retained-KV caching (total / blocks).
        const double pade_block_dram =
            static_cast<double>(pade.total.dram_bytes) /
            pade.scale_factor;
        const double m_base =
            static_cast<double>(sang.metrics.dram_bytes);
        tm.row({w.model.name,
                Table::num(spat.metrics.dram_bytes / m_base, 2),
                Table::num(sang.metrics.dram_bytes / m_base, 2),
                Table::num(dota.metrics.dram_bytes / m_base, 2),
                Table::num(ener.metrics.dram_bytes / m_base, 2),
                Table::num(spat_ft.metrics.dram_bytes / m_base, 2),
                Table::num(sofa.metrics.dram_bytes / m_base, 2),
                Table::num(pade_block_dram / m_base, 2)});
    }
    tc.print();
    tm.print();
    std::printf("Paper: PADE reaches 71.6%% computation and 75.8%% "
                "memory reduction; SpAtten w/o retrain is the weakest "
                "(its noisy prev-layer guidance must keep most "
                "tokens).\n");
    return 0;
}

/**
 * @file
 * Paper Fig. 21: throughput and energy comparison with five SOTA
 * attention accelerators on Llama2-7B (MHA), Llama3-8B (GQA), ViT and
 * PVT, with energy decomposed into computation / on-chip buffer /
 * DRAM. All designs run at the 0%-loss operating point of their own
 * predictor.
 */

#include "bench/common.h"

using namespace pade;
using namespace pade::bench;

int
main(int argc, char **argv)
{
    Cli cli(argc, argv);
    banner("Fig. 21: speedup and energy breakdown vs SOTA "
           "accelerators (0% loss)");

    struct Work
    {
        ModelConfig model;
        DatasetConfig ds;
    };
    const std::vector<Work> works = {
        {llama2_7b(), dsWikitext2()},
        {llama3_8b(), dsWikitext2()},
        {vit_l16(), dsImageNet()},
        {pvt(), {"ImageNet", 3072, "vision", 0.2}},
    };

    Table t;
    t.header({"workload", "design", "speedup", "energy x", "comp%",
              "buffer%", "dram%"});

    std::vector<double> su_sanger;
    std::vector<double> su_dota;
    std::vector<double> su_sofa;
    std::vector<double> en_sanger;
    std::vector<double> en_dota;
    std::vector<double> en_sofa;

    for (const auto &w : works) {
        SimRequest req{w.model, w.ds};
        req.seed = cli.getInt("seed", 11);
        req.max_sim_seq = 2048;
        const int sim_seq = std::min(req.dataset.seq_len, 2048);
        const BaselineKeeps keeps = calibrateBaselines(req,
                                                       kStandardMass,
                                                       sim_seq);
        const OperatingPoints pts = calibratePoints(req);
        const SimOutcome pade = runPade(ArchConfig{}, req,
                                        pts.alpha_standard);
        const AttentionDims d = blockDims(req, sim_seq);

        // GQA: baselines with per-query-head predictors re-stream K
        // for each of the (heads / kv_heads) query groups; PADE's
        // scoreboard lane reuses the shared K stream (paper
        // observation 1).
        const double gqa_pred_penalty = w.model.isGqa() ?
            static_cast<double>(w.model.heads) / w.model.kv_heads :
            1.0;

        struct Entry
        {
            const char *name;
            BaselineOutcome out;
        };
        std::vector<Entry> entries = {
            {"SpAtten", spattenRun(d, keeps.spatten)},
            {"Sanger", sangerRun(d, keeps.sanger)},
            {"DOTA", dotaRun(d, keeps.dota, 16)},
            {"Energon", energonRun(d, 0.5, keeps.energon)},
            {"SOFA", sofaRun(d, keeps.sofa)},
        };
        // Apply the GQA predictor restreaming penalty (half of the
        // per-group K traffic is predictor-side and cannot be shared).
        const double gqa_dram = 1.0 + 0.5 * (gqa_pred_penalty - 1.0);
        for (auto &e : entries) {
            e.out.metrics.time_ns +=
                (gqa_dram - 1.0) * 0.3 * e.out.metrics.time_ns;
            e.out.metrics.energy.dram_pj *= gqa_dram;
        }

        const double pade_time = pade.block.time_ns;
        // Effective per-block energy includes cross-block KV caching.
        const double pade_energy = pade.total.energy.total() /
            pade.scale_factor;
        EnergyBreakdown pade_eb = pade.block.energy;
        const double dram_scale =
            (pade.total.energy.modules.at("dram") / pade.scale_factor) /
            std::max(pade_eb.modules.at("dram"), 1e-9);
        pade_eb.modules.at("dram") *= dram_scale;
        pade_eb.dram_pj *= dram_scale;
        auto emit = [&t, &w](const char *name, double speedup,
                             double energy_x,
                             const EnergyBreakdown &e) {
            const double tot = e.total();
            t.row({w.model.name, name, Table::mult(speedup, 2),
                   Table::mult(energy_x, 2),
                   Table::pct(e.compute_pj / tot),
                   Table::pct(e.sram_pj / tot),
                   Table::pct(e.dram_pj / tot)});
        };
        for (const auto &e : entries) {
            emit(e.name, e.out.metrics.time_ns / pade_time,
                 e.out.metrics.energy.total() / pade_energy,
                 e.out.metrics.energy);
        }
        emit("PADE", 1.0, 1.0, pade_eb);

        su_sanger.push_back(entries[1].out.metrics.time_ns /
                            pade_time);
        su_dota.push_back(entries[2].out.metrics.time_ns / pade_time);
        su_sofa.push_back(entries[4].out.metrics.time_ns / pade_time);
        en_sanger.push_back(entries[1].out.metrics.energy.total() /
                            pade_energy);
        en_dota.push_back(entries[2].out.metrics.energy.total() /
                          pade_energy);
        en_sofa.push_back(entries[4].out.metrics.energy.total() /
                          pade_energy);
    }
    t.print();
    std::printf("geomean speedup over Sanger/DOTA/SOFA: %.1fx / %.1fx "
                "/ %.1fx (paper: 3x / 2.2x / 1.9x); energy: %.1fx / "
                "%.1fx / %.1fx (paper: 5.1x / 4.3x / 3.4x)\n",
                geoMean(su_sanger), geoMean(su_dota),
                geoMean(su_sofa), geoMean(en_sanger),
                geoMean(en_dota), geoMean(en_sofa));
    return 0;
}

/**
 * @file
 * Paper Fig. 20: area and power breakdown of the PADE accelerator at
 * TSMC 28 nm / 800 MHz (paper totals: 4.53 mm^2, 591 mW).
 *
 * Area comes from the structural model (energy/area_model.h); power
 * shares combine a representative workload's per-module dynamic
 * energies with area-proportional leakage.
 */

#include "bench/common.h"
#include "energy/area_model.h"

using namespace pade;
using namespace pade::bench;

int
main(int argc, char **argv)
{
    Cli cli(argc, argv);
    banner("Fig. 20(a): area breakdown (analytic structural model)");

    const AreaReport area = padeArea(AreaParams{});
    Table ta;
    ta.header({"module", "mm^2", "share"});
    for (const auto &kv : area.modules)
        ta.row({kv.first, Table::num(kv.second, 3),
                Table::pct(kv.second / area.total())});
    ta.row({"TOTAL", Table::num(area.total(), 2), "100%"});
    ta.print();
    std::printf("Paper: 4.53 mm^2 — PE lanes 34.1%%, V-PU 28.5%%, "
                "buffers 23%%, scoreboard 3.7%%, BUI modules 4.9%%.\n");

    banner("Fig. 20(b): power breakdown (dynamic energy shares of a "
           "representative run + area-proportional leakage)");

    SimRequest req{llama2_7b(), dsWikitext2()};
    req.seed = cli.getInt("seed", 9);
    req.max_sim_seq = 2048;
    const OperatingPoints pts = calibratePoints(req);
    const SimOutcome o = runPade(ArchConfig{}, req,
                                 pts.alpha_standard);

    // On-chip modules only (DRAM energy is off-chip in Fig. 20).
    std::map<std::string, double> pw;
    for (const auto &kv : o.block.energy.modules) {
        if (kv.first == "dram")
            continue;
        if (kv.first == "static") {
            // Distribute leakage/clock by area share.
            for (const auto &am : area.modules)
                pw[am.first] += kv.second * am.second / area.total();
            continue;
        }
        if (kv.first == "bui") {
            pw["bui_generator"] += 0.5 * kv.second;
            pw["bui_gf_module"] += 0.5 * kv.second;
        } else if (kv.first == "apm" || kv.first == "vpu_rescale") {
            pw["vpu"] += kv.second;
        } else {
            pw[kv.first] += kv.second;
        }
    }
    double total = 0.0;
    for (const auto &kv : pw)
        total += kv.second;

    Table tb;
    tb.header({"module", "share", "mW @ block"});
    for (const auto &kv : pw)
        tb.row({kv.first, Table::pct(kv.second / total),
                Table::num(kv.second / o.block.time_ns, 1)});
    tb.row({"TOTAL", "100%", Table::num(total / o.block.time_ns, 1)});
    tb.print();
    std::printf("Paper: 591 mW — PE lanes 41.6%%, V-PU 29.8%%, "
                "buffers 14.3%%, BUI generator+module 12.1%%, "
                "scoreboard 3.3%%.\n");
    return 0;
}

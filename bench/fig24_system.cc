/**
 * @file
 * Paper Fig. 24(c): end-to-end LLM latency of the GPU-only system
 * versus the GPU+PADE co-processor system, with and without the
 * bit-plane data-layout conversion fused into K generation.
 *
 * The GPU keeps QKV projection and FFN (dense GEMMs); PADE runs
 * attention. The two pipelines interleave consecutive sequences
 * (paper Fig. 24(b)), so system latency per sequence is
 * max(gpu_other, pade_attention) plus any conversion overhead.
 */

#include "bench/common.h"
#include "energy/tech.h"

using namespace pade;
using namespace pade::bench;

namespace {

/** GPU time for the non-attention ops of one prefill (ns). */
double
gpuOtherOpsNs(const ModelConfig &m, int seq_len)
{
    // Per token per layer: QKVO projections (8 h^2) + FFN (~16 h^2
    // for a 4x MLP with gate) MAC ops -> 2 flops each.
    const double h = m.hidden();
    const double flops = 2.0 * (8.0 + 16.0) * h * h *
        static_cast<double>(seq_len) * m.layers;
    const double peak = tech::kGpuPeakTflopsInt8 * 1e3 *
        tech::kGpuGemmEfficiency;
    return flops / peak;
}

} // namespace

int
main(int argc, char **argv)
{
    Cli cli(argc, argv);
    banner("Fig. 24(c): end-to-end latency — GPU vs GPU+PADE "
           "(interleaved pipelines)");

    Table t;
    t.header({"dataset", "config", "norm latency", "attn share",
              "conv overhead"});
    for (const DatasetConfig &ds :
         {dsDolly(), dsInfiniteBench(), dsNiah1M()}) {
        SimRequest req{llama2_7b(), ds};
        req.seed = cli.getInt("seed", 13);
        req.max_sim_seq = static_cast<int>(cli.getInt("cap", 8192));
        const OperatingPoints pts = calibratePoints(req);

        const RunMetrics gpu_attn = gpuModelAttention(
            req.model, ds, GpuOptions{});
        const double gpu_other = gpuOtherOpsNs(req.model, ds.seq_len);
        const double gpu_only = gpu_attn.time_ns + gpu_other;

        // PADE attention with and without the bit-plane layout.
        ArchConfig no_dl;
        no_dl.k_layout = KLayout::ValueMajor;
        const SimOutcome p_nodl = runPade(no_dl, req,
                                          pts.alpha_standard);
        const SimOutcome p_dl = runPade(ArchConfig{}, req,
                                        pts.alpha_standard);

        // Data conversion: fused bit extraction during K generation
        // (paper Fig. 24(a)) costs <2% of the K-generation GEMM.
        const double conv = 0.02 *
            gpuOtherOpsNs(req.model, ds.seq_len) * (8.0 / 24.0);

        const double sys_nodl = std::max(gpu_other,
                                         p_nodl.total.time_ns);
        const double sys_dl = std::max(gpu_other + conv,
                                       p_dl.total.time_ns) ;

        t.row({ds.name, "GPU only", "1.000",
               Table::pct(gpu_attn.time_ns / gpu_only), "-"});
        t.row({ds.name, "GPU+PADE w/o conv",
               Table::num(sys_nodl / gpu_only, 3),
               Table::pct(p_nodl.total.time_ns /
                          std::max(sys_nodl, 1.0)),
               "-"});
        t.row({ds.name, "GPU+PADE w/ conv",
               Table::num(sys_dl / gpu_only, 3),
               Table::pct(p_dl.total.time_ns /
                          std::max(sys_dl, 1.0)),
               Table::pct(conv / gpu_only)});
    }
    t.print();
    std::printf("Paper: 2.1x system speedup at 214k; the fused layout "
                "conversion costs <2%% yet enables a further 1.9x.\n");
    return 0;
}

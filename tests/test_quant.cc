/**
 * @file
 * Unit tests for symmetric PTQ and MXINT group quantization.
 */

#include <gtest/gtest.h>

#include "common/rng.h"
#include "quant/mxint.h"
#include "quant/quantizer.h"

namespace pade {
namespace {

MatrixF
randomMatrix(int r, int c, uint64_t seed, double scale = 1.0)
{
    Rng rng(seed);
    MatrixF m(r, c);
    for (int i = 0; i < r; i++)
        for (int j = 0; j < c; j++)
            m.at(i, j) = static_cast<float>(scale * rng.gaussian());
    return m;
}

TEST(Quantizer, RoundTripSmallError)
{
    const MatrixF m = randomMatrix(16, 64, 1);
    EXPECT_LT(quantizationError(m, 8), 0.01);
}

TEST(Quantizer, Int4ErrorLargerThanInt8)
{
    const MatrixF m = randomMatrix(16, 64, 2);
    EXPECT_GT(quantizationError(m, 4), quantizationError(m, 8));
    EXPECT_LT(quantizationError(m, 4), 0.2);
}

TEST(Quantizer, AbsmaxMapsToQmax)
{
    MatrixF m(1, 3, {-4.0f, 2.0f, 1.0f});
    const Quantized q = quantizeSymmetric(m, 8);
    EXPECT_EQ(q.values.at(0, 0), -127);
    EXPECT_FLOAT_EQ(q.params.scale, 4.0f / 127.0f);
}

TEST(Quantizer, ZeroMatrixSafe)
{
    MatrixF m(4, 4);
    const Quantized q = quantizeSymmetric(m, 8);
    EXPECT_FLOAT_EQ(q.params.scale, 1.0f);
    for (int i = 0; i < 4; i++)
        for (int j = 0; j < 4; j++)
            EXPECT_EQ(q.values.at(i, j), 0);
}

TEST(Quantizer, QuantizeValueSaturates)
{
    QuantParams p{1.0f, 8};
    EXPECT_EQ(quantizeValue(1000.0f, p), 127);
    EXPECT_EQ(quantizeValue(-1000.0f, p), -128);
}

TEST(Quantizer, BitWidthRanges)
{
    QuantParams p8{1.0f, 8};
    QuantParams p4{1.0f, 4};
    EXPECT_EQ(p8.qmax(), 127);
    EXPECT_EQ(p8.qmin(), -128);
    EXPECT_EQ(p4.qmax(), 7);
    EXPECT_EQ(p4.qmin(), -8);
}

TEST(Quantizer, DequantizeShape)
{
    const MatrixF m = randomMatrix(3, 5, 3);
    const MatrixF d = dequantize(quantizeSymmetric(m, 8));
    EXPECT_EQ(d.rows(), 3);
    EXPECT_EQ(d.cols(), 5);
}

TEST(MxInt, RoundTripSmallError)
{
    const MatrixF m = randomMatrix(8, 128, 4);
    EXPECT_LT(mxQuantizationError(m, 32), 0.01);
}

TEST(MxInt, BeatsPerTensorOnOutliers)
{
    // One row with a huge outlier destroys per-tensor scaling but not
    // group scaling.
    MatrixF m = randomMatrix(4, 64, 5);
    m.at(0, 0) = 500.0f;
    EXPECT_LT(mxQuantizationError(m, 32), quantizationError(m, 8));
}

TEST(MxInt, GroupCountAndScales)
{
    const MatrixF m = randomMatrix(2, 70, 6);
    const MxQuantized q = mxQuantize(m, 32);
    EXPECT_EQ(q.groupsPerRow(), 3); // ceil(70/32)
    EXPECT_EQ(q.scales.size(), 6u);
    for (float s : q.scales)
        EXPECT_GT(s, 0.0f);
}

TEST(MxInt, GroupAbsmaxHits127)
{
    MatrixF m(1, 64);
    m.fill(1.0f);
    m.at(0, 10) = -8.0f;  // group 0 absmax
    m.at(0, 40) = 2.0f;   // group 1 absmax
    const MxQuantized q = mxQuantize(m, 32);
    EXPECT_EQ(q.values.at(0, 10), -127);
    EXPECT_EQ(q.values.at(0, 40), 127);
    EXPECT_FLOAT_EQ(q.scaleAt(0, 0), 8.0f / 127.0f);
    EXPECT_FLOAT_EQ(q.scaleAt(0, 1), 2.0f / 127.0f);
}

/** Property sweep: round-trip error shrinks with bit width. */
class QuantBitsTest : public ::testing::TestWithParam<int>
{
};

TEST_P(QuantBitsTest, ErrorBoundedByStepSize)
{
    const int bits = GetParam();
    const MatrixF m = randomMatrix(8, 32, 100 + bits, 2.0);
    const Quantized q = quantizeSymmetric(m, bits);
    const MatrixF d = dequantize(q);
    // Max elementwise error is half a quantization step.
    for (int i = 0; i < m.rows(); i++) {
        for (int j = 0; j < m.cols(); j++) {
            EXPECT_LE(std::fabs(d.at(i, j) - m.at(i, j)),
                      0.5f * q.params.scale + 1e-6f);
        }
    }
}

INSTANTIATE_TEST_SUITE_P(Widths, QuantBitsTest,
                         ::testing::Values(4, 5, 6, 7, 8));

} // namespace
} // namespace pade

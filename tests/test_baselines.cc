/**
 * @file
 * Tests for baseline predictors, accelerator cost models, and the GPU
 * roofline.
 */

#include <gtest/gtest.h>

#include "baselines/accelerators.h"
#include "baselines/gpu_model.h"
#include "baselines/predictors.h"

namespace pade {
namespace {

AttentionHead
testHead(uint64_t seed = 1, int s = 512)
{
    WorkloadSpec spec;
    spec.seq_len = s;
    spec.query_len = 8;
    spec.head_dim = 64;
    spec.concentration = 1.25;
    spec.locality = 0.6;
    spec.seed = seed;
    return generateHead(spec);
}

TEST(Predictors, LowBitMarginMonotone)
{
    const AttentionHead h = testHead();
    const MaskOutcome tight = lowBitMask(h, 4, 1.0);
    const MaskOutcome loose = lowBitMask(h, 4, 6.0);
    EXPECT_LE(tight.keep_rate, loose.keep_rate);
    EXPECT_LE(tight.retained_mass, loose.retained_mass + 1e-9);
}

TEST(Predictors, HigherEstimateBitsMoreAccurate)
{
    // At equal keep rate, an 8-bit estimate should retain at least as
    // much mass as a 2-bit one. Compare at matched keep by
    // calibrating margins to the same keep rate target.
    const AttentionHead h = testHead(2);
    const MaskOutcome coarse = lowBitMask(h, 2, 4.0);
    // Find the 8-bit margin with a similar keep rate.
    double margin = 4.0;
    MaskOutcome fine = lowBitMask(h, 8, margin);
    for (int it = 0; it < 20 && fine.keep_rate < coarse.keep_rate;
         it++) {
        margin += 0.5;
        fine = lowBitMask(h, 8, margin);
    }
    EXPECT_GE(fine.retained_mass, coarse.retained_mass - 0.02);
}

TEST(Predictors, CalibrateKnobHitsTarget)
{
    const AttentionHead h = testHead(3);
    const double margin = calibrateKnob(
        [&h](double m) { return lowBitMask(h, 4, m); }, 0.99, 0.0,
        20.0);
    const MaskOutcome out = lowBitMask(h, 4, margin);
    EXPECT_GE(out.retained_mass, 0.99);
    EXPECT_LT(out.keep_rate, 1.0);
}

TEST(Predictors, LowRankMask)
{
    const AttentionHead h = testHead(4);
    const MaskOutcome out = lowRankMask(h, 16, 6.0);
    EXPECT_GT(out.retained_mass, 0.5);
    EXPECT_LT(out.keep_rate, 1.0);
    // More rank => better estimate at the same margin.
    const MaskOutcome better = lowRankMask(h, 64, 6.0);
    EXPECT_GE(better.retained_mass, out.retained_mass - 0.05);
}

TEST(Predictors, ProgressiveFunnelBounds)
{
    const AttentionHead h = testHead(5);
    const MaskOutcome out = progressiveMask(h, 0.25, 5.0);
    // Stage 1 caps the keep rate at the funnel fraction.
    EXPECT_LE(out.keep_rate, 0.25 + 1e-9);
}

TEST(Predictors, FinetunedTopkBeatsNoisy)
{
    const AttentionHead h = testHead(6);
    const int k = 64;
    const MaskOutcome clean = noisyTopkMask(h, k, 0.0);
    const MaskOutcome noisy = noisyTopkMask(h, k, 3.0);
    EXPECT_GE(clean.retained_mass, noisy.retained_mass);
    EXPECT_NEAR(clean.keep_rate, noisy.keep_rate, 1e-9);
}

TEST(Predictors, LogDomainTopkReasonable)
{
    const AttentionHead h = testHead(7);
    const MaskOutcome out = logDomainTopkMask(h, 128);
    EXPECT_GT(out.retained_mass, 0.7);
    EXPECT_NEAR(out.keep_rate, 128.0 / 512.0, 0.02);
}

TEST(Predictors, StreamingLlmKeepsSinkAndWindow)
{
    const AttentionHead h = testHead(8);
    const MaskOutcome out = streamingLlmMask(h, 4, 64);
    EXPECT_NEAR(out.keep_rate, 68.0 / 512.0, 0.01);
    for (int i = 0; i < out.keep.rows(); i++) {
        EXPECT_EQ(out.keep.at(i, 0), 1);
        EXPECT_EQ(out.keep.at(i, 511), 1);
        EXPECT_EQ(out.keep.at(i, 256), 0);
    }
}

TEST(Predictors, MinferenceAddsDynamicBlocks)
{
    const AttentionHead h = testHead(9);
    const MaskOutcome stat = streamingLlmMask(h, 4, 64);
    const MaskOutcome dyn = minferenceMask(h, 4, 64, 0.15);
    EXPECT_GE(dyn.retained_mass, stat.retained_mass);
}

TEST(Predictors, DoubleSparsityChannels)
{
    const AttentionHead h = testHead(10);
    const MaskOutcome few = doubleSparsityMask(h, 4, 96);
    const MaskOutcome many = doubleSparsityMask(h, 64, 96);
    // Same budget, better estimate with more channels.
    EXPECT_GE(many.retained_mass, few.retained_mass - 0.02);
}

TEST(Accelerators, DenseEnergyHighest)
{
    AttentionDims d{8, 2048, 128, 8};
    const double dense = denseAccelRun(d).metrics.energy.total();
    for (const char *name : {"Sanger", "DOTA", "Energon", "SOFA"}) {
        const double e =
            runBaselineByName(name, d, 0.2).metrics.energy.total();
        EXPECT_LT(e, dense) << name;
    }
}

TEST(Accelerators, PredictorShareGrowsAsExecutorShrinks)
{
    // Paper Fig. 2(a): at 16-bit executors the predictor is a small
    // share; at 8-bit it dominates.
    AttentionDims wide{8, 2048, 128, 16};
    AttentionDims narrow{8, 2048, 128, 8};
    const BaselineOutcome b16 = sangerRun(wide, 0.25);
    const BaselineOutcome b8 = sangerRun(narrow, 0.25);
    const double share16 = b16.predictor_pj /
        (b16.predictor_pj + b16.executor_pj);
    const double share8 = b8.predictor_pj /
        (b8.predictor_pj + b8.executor_pj);
    EXPECT_GT(share8, share16);
}

TEST(Accelerators, SofaPredictorCheaperThanSanger)
{
    AttentionDims d{8, 2048, 128, 8};
    EXPECT_LT(sofaRun(d, 0.25).predictor_pj,
              sangerRun(d, 0.25).predictor_pj);
}

TEST(Accelerators, KeepRateDrivesExecutor)
{
    AttentionDims d{8, 2048, 128, 8};
    const BaselineOutcome lean = sangerRun(d, 0.1);
    const BaselineOutcome fat = sangerRun(d, 0.5);
    EXPECT_LT(lean.executor_pj, fat.executor_pj);
    // Predictor cost is keep-independent (it reads full K).
    EXPECT_NEAR(lean.predictor_pj, fat.predictor_pj, 1e-6);
}

TEST(Accelerators, PredictorOverheadGrowsWithSeqLen)
{
    // Paper Fig. 2(b): predictor/executor ratio grows with S because
    // longer sequences are sparser (smaller keep).
    AttentionDims short_d{8, 1024, 128, 8};
    AttentionDims long_d{8, 8192, 128, 8};
    const BaselineOutcome bs = sangerRun(short_d, 0.3);
    const BaselineOutcome bl = sangerRun(long_d, 0.1);
    EXPECT_GT(bl.predictor_pj / bl.executor_pj,
              bs.predictor_pj / bs.executor_pj);
}

TEST(Accelerators, UnknownNameThrows)
{
    AttentionDims d{8, 512, 64, 8};
    EXPECT_THROW(runBaselineByName("nope", d, 0.2),
                 std::out_of_range);
}

TEST(Gpu, Fa3ReducesTraffic)
{
    AttentionDims d{2048, 2048, 128, 8};
    GpuOptions with;
    GpuOptions without;
    without.fa3 = false;
    EXPECT_LT(gpuAttention(d, with).dram_bytes,
              gpuAttention(d, without).dram_bytes);
    EXPECT_LE(gpuAttention(d, with).time_ns,
              gpuAttention(d, without).time_ns);
}

TEST(Gpu, CausalHalvesWork)
{
    AttentionDims d{2048, 2048, 128, 8};
    GpuOptions causal;
    GpuOptions full;
    full.causal = false;
    EXPECT_NEAR(gpuAttention(d, causal).useful_ops,
                0.5 * gpuAttention(d, full).useful_ops, 1.0);
}

TEST(Gpu, ReplicasScaleLinearly)
{
    AttentionDims d{2048, 2048, 128, 8};
    GpuOptions one;
    one.replicas = 1.0;
    GpuOptions many;
    many.replicas = 32.0;
    const RunMetrics m1 = gpuAttention(d, one);
    const RunMetrics m32 = gpuAttention(d, many);
    EXPECT_GT(m32.time_ns, 10.0 * m1.time_ns);
    EXPECT_NEAR(m32.useful_ops, 32.0 * m1.useful_ops, 1.0);
}

TEST(Gpu, SoftwareSparsityLimitedGain)
{
    // Paper Fig. 18(b): software BUI-GF on GPU yields only modest
    // gains because the detection pass costs a full QK sweep.
    AttentionDims d{8192, 8192, 128, 8};
    const RunMetrics dense = gpuDense(d);
    const RunMetrics sparse = gpuBuiGf(d, 0.1, true);
    EXPECT_LT(sparse.time_ns, dense.time_ns);
    EXPECT_GT(sparse.time_ns, 0.5 * dense.time_ns);
}

TEST(Gpu, ModelAttentionDecodeRuns)
{
    // The GPU model is calibrated to the paper's measured (kernel-
    // bound) attention behaviour, so utilization is low across the
    // board; decode still moves the whole KV footprint.
    const RunMetrics m = gpuModelAttention(llama2_7b(), dsWikitext2(),
                                           GpuOptions{}, true, 16);
    EXPECT_GT(m.time_ns, 0.0);
    EXPECT_GT(m.bw_utilization, 0.01);
    EXPECT_GT(m.dram_bytes,
              16ull * 32 * 32 * 2048 * 128); // steps*L*H*S*h
}

} // namespace
} // namespace pade

/**
 * @file
 * Concurrency stress tests, written for the ThreadSanitizer CI leg
 * (-DPADE_SANITIZE=thread). Each test exercises one of the documented
 * concurrency contracts under real thread contention:
 *
 *  - ContinuousBatcher: many sessions advanced concurrently across a
 *    round share only the RoundAccounting byte counter — outputs must
 *    be bit-identical across thread counts, and TSan must see no
 *    unsynchronized access;
 *  - ThreadPool: nested parallelFor under heavy contention (the
 *    help-drain path runs on many threads at once);
 *  - KvCache: the "const accessors are safe across concurrent readers
 *    between mutations" contract — the GQA decode path's foundation —
 *    with several DecodeEngines scanning ONE shared cache at once.
 *
 * The assertions also run (and pass) in plain builds; under TSan they
 * double as data-race detectors for the serving stack.
 */

#include <gtest/gtest.h>

#include <atomic>
#include <bit>
#include <cstdint>
#include <memory>
#include <span>
#include <thread>
#include <vector>

#include "common/rng.h"
#include "runtime/thread_pool.h"
#include "serving/continuous_batcher.h"
#include "serving/decode_engine.h"
#include "serving/kv_cache.h"
#include "serving/model_engine.h"
#include "serving/prefix_index.h"
#include "workload/generator.h"

namespace pade {
namespace {

// ---------------------------------------------------------------------
// ContinuousBatcher: many sessions, rounds fanned across the pool.
// ---------------------------------------------------------------------

std::vector<ServingRequest>
stressTrace(int requests, uint64_t seed)
{
    TraceSpec ts;
    ts.num_requests = requests;
    ts.rate_per_s = 8000.0; // dense arrivals => full rounds
    ts.prompt_min = 8;
    ts.prompt_max = 32;
    ts.decode_min = 2;
    ts.decode_max = 6;
    ts.seed = seed;
    return poissonArrivalTrace(ts);
}

ServingReport
runStress(const std::vector<ServingRequest> &trace, int threads,
          bool coschedule = true, bool windowed = false)
{
    BatcherOptions opt;
    opt.threads = threads;
    opt.max_active = 6; // > threads for 2, < for 8: both schedules
    opt.prefill_chunk = 8;
    opt.layers = 2; // >1 so pipeline rounds expose multiple units
    opt.heads = 4;
    opt.kv_heads = 2; // GQA: grouped heads share one cache
    opt.head_dim = 32;
    opt.page_tokens = 16; // small pages => frequent page turnover
    opt.coschedule = coschedule;
    if (windowed) {
        // Tight sink+recency window: long prompts stream through it,
        // so the windowed scan order and the middle-page reclamation
        // are genuinely exercised, under contention.
        opt.retention.sink_tokens = 16;
        opt.retention.recency_tokens = 32;
    }
    // Deterministic virtual clock: co-residency (and so peak KV
    // bytes) must be a pure function of the trace, not of how long
    // rounds happened to take on a loaded host.
    opt.fixed_round_ms = 0.25;
    return ContinuousBatcher(opt).run(trace);
}

/** Field-by-field schedule equivalence of two reports on one trace. */
void
expectReportsIdentical(const ServingReport &a, const ServingReport &b,
                       std::size_t requests)
{
    ASSERT_EQ(a.sessions.size(), requests);
    ASSERT_EQ(b.sessions.size(), requests);
    EXPECT_EQ(a.checksum, b.checksum);
    EXPECT_EQ(a.prefill_checksum, b.prefill_checksum);
    for (std::size_t i = 0; i < requests; i++) {
        EXPECT_EQ(a.sessions[i].checksum, b.sessions[i].checksum)
            << "session " << i;
        EXPECT_EQ(a.sessions[i].prefill_checksum,
                  b.sessions[i].prefill_checksum)
            << "session " << i;
    }
    EXPECT_EQ(a.tokens_decoded, b.tokens_decoded);
    EXPECT_EQ(a.tokens_prefilled, b.tokens_prefilled);
    EXPECT_EQ(a.peak_cache_bytes, b.peak_cache_bytes);
    EXPECT_EQ(a.peak_active, b.peak_active);
    EXPECT_EQ(a.rounds, b.rounds);
    EXPECT_GT(a.peak_cache_bytes, 0u);
}

TEST(ConcurrencyStress, BatcherManySessionsIdenticalAtThreads2And8)
{
    const std::vector<ServingRequest> trace = stressTrace(12, 2024);
    const ServingReport a = runStress(trace, 2);
    const ServingReport b = runStress(trace, 8);

    ASSERT_EQ(a.sessions.size(), trace.size());
    ASSERT_EQ(b.sessions.size(), trace.size());
    EXPECT_EQ(a.checksum, b.checksum);
    EXPECT_EQ(a.prefill_checksum, b.prefill_checksum);
    for (std::size_t i = 0; i < trace.size(); i++) {
        EXPECT_EQ(a.sessions[i].checksum, b.sessions[i].checksum);
        EXPECT_EQ(a.sessions[i].prefill_checksum,
                  b.sessions[i].prefill_checksum);
    }
    EXPECT_EQ(a.tokens_decoded, b.tokens_decoded);
    EXPECT_EQ(a.tokens_prefilled, b.tokens_prefilled);
    // RoundAccounting folds per-session KV bytes concurrently
    // (size_t addition commutes) and fixed_round_ms pins the
    // admission schedule, so the peak is thread-invariant too.
    EXPECT_EQ(a.peak_cache_bytes, b.peak_cache_bytes);
    EXPECT_EQ(a.peak_active, b.peak_active);
    EXPECT_EQ(a.rounds, b.rounds);
    EXPECT_GT(a.peak_cache_bytes, 0u);
}

TEST(ConcurrencyStress, BatcherRepeatedRoundsStayDeterministic)
{
    // Same trace served repeatedly on a contended pool: any hidden
    // shared state between runs (or a race inside one) would show up
    // as checksum drift — and as a TSan report in the sanitizer leg.
    const std::vector<ServingRequest> trace = stressTrace(8, 7);
    const ServingReport first = runStress(trace, 8);
    for (int round = 0; round < 3; round++) {
        const ServingReport again = runStress(trace, 8);
        EXPECT_EQ(again.checksum, first.checksum);
        EXPECT_EQ(again.prefill_checksum, first.prefill_checksum);
    }
}

TEST(ConcurrencyStress, CoscheduledMatchesPerSessionAtThreads128)
{
    // The co-scheduler's differential oracle: same trace, same fixed
    // virtual clock — the co-scheduled global waves must reproduce
    // the per-session schedule's outputs AND its schedule-derived
    // aggregates (peak KV bytes, peak co-residency, round count)
    // exactly, at every thread count. Units of distinct sessions are
    // disjoint and each engine sees its own round sequence either
    // way, so any mismatch is a real sharing bug.
    const std::vector<ServingRequest> trace = stressTrace(12, 515);
    for (const int threads : {1, 2, 8}) {
        SCOPED_TRACE(threads);
        const ServingReport per =
            runStress(trace, threads, /*coschedule=*/false);
        const ServingReport co =
            runStress(trace, threads, /*coschedule=*/true);
        expectReportsIdentical(per, co, trace.size());
    }
}

TEST(ConcurrencyStress, CoscheduledWindowedRetentionMatchesPerSession)
{
    // Windowed decode (sink+recency scan order, O(window) scratch)
    // under co-scheduling, against the per-session oracle with the
    // same retention policy: eviction decisions, page reclamation,
    // and the windowed scan must all be schedule-invariant. Under
    // TSan this also races the windowed path's per-head scratch
    // against the global wave fan-out. Streams must outgrow the
    // 16+32-token window for eviction to actually happen, so this
    // trace uses longer prompts than stressTrace().
    TraceSpec ts;
    ts.num_requests = 8;
    ts.rate_per_s = 8000.0;
    ts.prompt_min = 48;
    ts.prompt_max = 96;
    ts.decode_min = 6;
    ts.decode_max = 12;
    ts.seed = 90210;
    const std::vector<ServingRequest> trace = poissonArrivalTrace(ts);
    for (const int threads : {2, 8}) {
        SCOPED_TRACE(threads);
        const ServingReport per = runStress(
            trace, threads, /*coschedule=*/false, /*windowed=*/true);
        const ServingReport co = runStress(
            trace, threads, /*coschedule=*/true, /*windowed=*/true);
        expectReportsIdentical(per, co, trace.size());
    }
}

// ---------------------------------------------------------------------
// ThreadPool: nested fan-out under contention.
// ---------------------------------------------------------------------

TEST(ConcurrencyStress, NestedParallelForUnderContention)
{
    // Every outer task immediately nests another parallelFor, so the
    // workers AND the outer waiters all run the help-drain path at
    // once. Counts prove exactly-once execution; TSan watches the
    // parallelFor State and the pool queue.
    for (const int threads : {2, 8}) {
        ThreadPool pool(threads);
        std::atomic<int> inner{0};
        std::atomic<int> outer{0};
        parallelFor(pool, 16, [&pool, &inner, &outer](int) {
            outer++;
            parallelFor(pool, 16, [&inner](int) { inner++; });
        });
        EXPECT_EQ(outer.load(), 16);
        EXPECT_EQ(inner.load(), 16 * 16);
    }
}

TEST(ConcurrencyStress, SubmitWaitIdleChurn)
{
    // Interleave submit bursts with waitIdle from the main thread
    // while workers drain: stresses cv_task_/cv_idle_ signalling.
    ThreadPool pool(4);
    std::atomic<int> done{0};
    for (int burst = 0; burst < 20; burst++) {
        for (int i = 0; i < 25; i++)
            pool.submit([&done] { done++; });
        pool.waitIdle();
        EXPECT_EQ(done.load(), (burst + 1) * 25);
    }
}

// ---------------------------------------------------------------------
// KvCache: concurrent readers of one shared cache.
// ---------------------------------------------------------------------

TEST(ConcurrencyStress, ConcurrentStepGroupOverSharedCacheMatchesSerial)
{
    // One KV stream, several reader threads. Each thread owns a
    // private DecodeEngine (engines hold mutable scratch) but scans
    // the SAME KvCache concurrently — the documented contract: const
    // accessors are safe between mutations. Every thread's outputs
    // must be bit-identical to a serial reference engine's.
    const int head_dim = 32;
    const int bits = 8;
    const int prompt = 96;
    const int group = 4; // grouped query heads sharing the KV head

    WorkloadSpec spec;
    spec.seq_len = prompt;
    spec.query_len = group;
    spec.head_dim = head_dim;
    spec.seed = 4242;
    const AttentionHead fh = generateHead(spec);
    const QuantizedHead full = quantizeHead(fh, bits);

    KvCacheConfig kc;
    kc.head_dim = head_dim;
    kc.bits = bits;
    kc.page_tokens = 16;
    kc.v_scale = full.v.params.scale;
    KvCache cache(kc);
    for (int t = 0; t < prompt; t++)
        cache.appendToken(full.k.values.row(t), full.v.values.row(t));

    // Serial reference: one engine, one grouped step.
    PadeConfig cfg;
    MatrixF ref(group, head_dim);
    {
        DecodeEngine engine(cfg);
        engine.stepGroup(cache, full.q.values, 0, group,
                         full.logit_scale, ref, 0);
    }

    const int readers = 8;
    std::vector<MatrixF> outs;
    outs.reserve(static_cast<std::size_t>(readers));
    for (int r = 0; r < readers; r++)
        outs.emplace_back(group, head_dim);

    std::vector<std::thread> threads;
    threads.reserve(static_cast<std::size_t>(readers));
    for (int r = 0; r < readers; r++) {
        threads.emplace_back([&cache, &full, &outs, r] {
            DecodeEngine engine{PadeConfig{}};
            // Re-scan several times to lengthen the overlap window.
            for (int rep = 0; rep < 4; rep++)
                engine.stepGroup(cache, full.q.values, 0, group,
                                 full.logit_scale,
                                 outs[static_cast<std::size_t>(r)],
                                 0);
        });
    }
    for (std::thread &t : threads)
        t.join();

    for (int r = 0; r < readers; r++)
        for (int g = 0; g < group; g++)
            for (int d = 0; d < head_dim; d++)
                EXPECT_EQ(std::bit_cast<uint32_t>(
                              outs[static_cast<std::size_t>(r)].at(
                                  g, d)),
                          std::bit_cast<uint32_t>(ref.at(g, d)))
                    << "reader " << r << " head " << g << " dim "
                    << d;
}

TEST(ConcurrencyStress, ReadersInterleavedWithSerializedMutations)
{
    // The full contract: mutations serialized by the owner, readers
    // concurrent BETWEEN mutations. Alternate append phases (single
    // thread) with concurrent read phases and check reader outputs
    // against a serial engine at every phase boundary.
    const int head_dim = 32;
    const int bits = 8;
    const int total = 64;
    const int phase_tokens = 16;

    WorkloadSpec spec;
    spec.seq_len = total;
    spec.query_len = 1;
    spec.head_dim = head_dim;
    spec.seed = 99;
    const AttentionHead fh = generateHead(spec);
    const QuantizedHead full = quantizeHead(fh, bits);

    KvCacheConfig kc;
    kc.head_dim = head_dim;
    kc.bits = bits;
    kc.page_tokens = 8;
    kc.v_scale = full.v.params.scale;
    KvCache cache(kc);

    std::vector<float> ref(static_cast<std::size_t>(head_dim));
    for (int base = 0; base < total; base += phase_tokens) {
        // Mutation phase: owner appends a batch of tokens.
        for (int t = base; t < base + phase_tokens; t++)
            cache.appendToken(full.k.values.row(t),
                              full.v.values.row(t));

        // Reference scan for this history length.
        {
            DecodeEngine engine{PadeConfig{}};
            engine.step(cache, full.q.values.row(0),
                        full.logit_scale, ref);
        }

        // Concurrent read phase.
        const int readers = 4;
        std::vector<std::vector<float>> outs(
            static_cast<std::size_t>(readers),
            std::vector<float>(static_cast<std::size_t>(head_dim)));
        std::vector<std::thread> threads;
        threads.reserve(static_cast<std::size_t>(readers));
        for (int r = 0; r < readers; r++) {
            threads.emplace_back([&cache, &full, &outs, r] {
                DecodeEngine engine{PadeConfig{}};
                engine.step(cache, full.q.values.row(0),
                            full.logit_scale,
                            outs[static_cast<std::size_t>(r)]);
            });
        }
        for (std::thread &t : threads)
            t.join();

        for (int r = 0; r < readers; r++)
            for (int d = 0; d < head_dim; d++)
                EXPECT_EQ(
                    std::bit_cast<uint32_t>(
                        outs[static_cast<std::size_t>(r)]
                            [static_cast<std::size_t>(d)]),
                    std::bit_cast<uint32_t>(
                        ref[static_cast<std::size_t>(d)]))
                    << "history " << base + phase_tokens << " reader "
                    << r << " dim " << d;
    }
}

// ---------------------------------------------------------------------
// Pipelined ModelEngine sessions sharing ONE PrefixIndex and pool.
// ---------------------------------------------------------------------

uint64_t
mixWord(uint64_t acc, uint32_t word)
{
    uint64_t state = acc + word;
    return splitMix64(state);
}

/**
 * Run one whole-model session to completion and return the mix of
 * each retired token's outputs, in retirement (= position) order.
 * @p index, when given, is the SHARED prefix index: the session
 * acquires/adopts the first two chain depths before prefilling and
 * releases them at the end.
 */
std::vector<uint64_t>
runModelSession(const ModelSpec &spec, int page_tokens, bool pipeline,
                ThreadPool *pool, PrefixIndex *index)
{
    ModelWorkload work(spec);
    std::vector<uint64_t> mixes;

    ModelEngineConfig mc;
    mc.layers = spec.layers;
    mc.pipeline = pipeline;
    mc.layer.heads = spec.heads;
    mc.layer.kv_heads = spec.kv_heads;
    mc.layer.head_dim = spec.head_dim;
    mc.layer.bits = spec.bits;
    mc.layer.page_tokens = page_tokens;

    const auto streams = static_cast<std::size_t>(spec.layers) *
        static_cast<std::size_t>(spec.kv_heads);
    const std::vector<float> v_scales(streams, work.vScale());
    const std::vector<float> logit_scales(streams, work.logitScale());
    ModelEngine engine(
        mc, v_scales, logit_scales,
        [&work](int layer, int pos, MatrixI8 &k, MatrixI8 &v,
                MatrixI8 &q) {
            work.stageKv(layer, pos, k, v);
            work.stageQueries(layer, pos, q);
        },
        [&mixes](const TokenResult &tr) {
            uint64_t mix = 0;
            for (const MatrixF &out : tr.outs)
                for (int r = 0; r < out.rows(); r++)
                    for (float v : out.row(r))
                        mix = mixWord(mix,
                                      std::bit_cast<uint32_t>(v));
            mixes.push_back(mix);
        });

    int next = 0;
    std::vector<uint64_t> chain;
    int acquired = 0;
    if (index) {
        chain = work.prefixPageChain(page_tokens);
        const PrefixMatch match = index->acquire(chain);
        acquired = match.pages;
        for (int d = 0; d < match.pages; d++)
            engine.adoptPrefixPages(
                std::span<const std::shared_ptr<const KvPage>>(
                    match.shared)
                    .subspan(static_cast<std::size_t>(d) * streams,
                             streams));
        next = match.pages * page_tokens;
    }

    while (next < spec.prompt_len) {
        for (int c = 0; c < 4 && next < spec.prompt_len; c++)
            engine.feed(next++, spec.prompt_len);
        engine.drain(pool);
    }
    for (int s = 0; s < spec.decode_steps; s++) {
        engine.feed(spec.prompt_len + s, spec.prompt_len);
        engine.drain(pool);
    }
    EXPECT_EQ(engine.pending(), 0);
    if (index && acquired > 0)
        index->release(chain, acquired);
    return mixes;
}

TEST(ConcurrencyStress, PipelinedSessionsShareOnePrefixIndexAndPool)
{
    // The serving hot path under maximal sharing: several pipelined
    // ModelEngines, each on its own thread, adopt the SAME published
    // prefix pages from ONE PrefixIndex (concurrent acquire/release
    // on its mutex) and drain their layer pipelines on ONE ThreadPool
    // (concurrent parallelFor from many external threads). Every
    // session's token stream must be bit-identical to its private
    // serial reference — shared pages share even their cached
    // PlaneWork, so TSan watches the whole read-side.
    const int page_tokens = 8;
    const int sessions = 6;
    ModelSpec base;
    base.layers = 2;
    base.heads = 4;
    base.kv_heads = 2;
    base.head_dim = 32;
    base.bits = 8;
    base.prompt_len = 26;
    base.decode_steps = 4;
    base.prefix_len = 16; // exactly 2 shared pages
    base.prefix_seed = 0xabcdef12u;

    // Donor publishes the prefix pages once.
    PrefixIndexOptions pio;
    pio.streams = base.layers * base.kv_heads;
    PrefixIndex index(pio);
    {
        ModelSpec donor = base;
        donor.seed = 4000;
        ModelWorkload donor_work(donor);
        ModelEngineConfig mc;
        mc.layers = donor.layers;
        mc.pipeline = false;
        mc.layer.heads = donor.heads;
        mc.layer.kv_heads = donor.kv_heads;
        mc.layer.head_dim = donor.head_dim;
        mc.layer.bits = donor.bits;
        mc.layer.page_tokens = page_tokens;
        const auto streams = static_cast<std::size_t>(pio.streams);
        const std::vector<float> vs(streams, donor_work.vScale());
        const std::vector<float> ls(streams,
                                    donor_work.logitScale());
        ModelEngine eng(
            mc, vs, ls,
            [&donor_work](int layer, int pos, MatrixI8 &k,
                          MatrixI8 &v, MatrixI8 &q) {
                donor_work.stageKv(layer, pos, k, v);
                donor_work.stageQueries(layer, pos, q);
            },
            [](const TokenResult &) {});
        for (int p = 0; p < donor.prompt_len; p++)
            eng.feed(p, donor.prompt_len);
        eng.drain(nullptr);
        std::vector<std::shared_ptr<const KvPage>> pages;
        eng.sharePrefixPages(0, pages);
        eng.sharePrefixPages(1, pages);
        const std::vector<uint64_t> chain =
            donor_work.prefixPageChain(page_tokens);
        ASSERT_EQ(index.publish(chain, pages), 2);
    }

    // Private serial references, one per session seed.
    std::vector<ModelSpec> specs;
    std::vector<std::vector<uint64_t>> refs;
    for (int s = 0; s < sessions; s++) {
        ModelSpec spec = base;
        spec.seed = 5000 + static_cast<uint64_t>(s);
        refs.push_back(runModelSession(spec, page_tokens, false,
                                       nullptr, nullptr));
        specs.push_back(spec);
    }

    // Concurrent adopters: own engine per thread, shared pool+index.
    ThreadPool pool(4);
    std::vector<std::vector<uint64_t>> got(
        static_cast<std::size_t>(sessions));
    std::vector<std::thread> threads;
    threads.reserve(static_cast<std::size_t>(sessions));
    for (int s = 0; s < sessions; s++) {
        threads.emplace_back([&, s] {
            got[static_cast<std::size_t>(s)] = runModelSession(
                specs[static_cast<std::size_t>(s)], page_tokens,
                true, &pool, &index);
        });
    }
    for (std::thread &t : threads)
        t.join();

    const int skipped = base.prefix_len; // adopted, never retired
    for (int s = 0; s < sessions; s++) {
        const auto &ref = refs[static_cast<std::size_t>(s)];
        const auto &adopted = got[static_cast<std::size_t>(s)];
        ASSERT_EQ(ref.size(),
                  adopted.size() + static_cast<std::size_t>(skipped))
            << "session " << s;
        for (std::size_t i = 0; i < adopted.size(); i++)
            EXPECT_EQ(adopted[i],
                      ref[i + static_cast<std::size_t>(skipped)])
                << "session " << s << " token " << i;
    }

    const PrefixIndexStats st = index.stats();
    EXPECT_EQ(st.published, 2u);
    EXPECT_EQ(st.hit_pages,
              static_cast<uint64_t>(sessions) * 2u);
    EXPECT_EQ(index.readersOf(
                  ModelWorkload(specs[0]).prefixPageChain(
                      page_tokens)),
              0);
}

} // namespace
} // namespace pade

/**
 * @file
 * Direct tests of the V-PU model: RARS vs naive V loads, score-spill
 * behaviour without ISTA, and MAC/energy accounting.
 */

#include <gtest/gtest.h>

#include "arch/v_pu.h"
#include "workload/generator.h"

namespace pade {
namespace {

QuantizedHead
head(int s = 256, int h = 64)
{
    WorkloadSpec spec;
    spec.seq_len = s;
    spec.query_len = 8;
    spec.head_dim = h;
    spec.seed = 21;
    return quantizeHead(generateHead(spec));
}

std::vector<std::vector<int>>
sharedRetained(int rows, int keys)
{
    // All rows retain the same keys: maximal reuse for RARS.
    std::vector<std::vector<int>> r(rows);
    for (auto &row : r)
        for (int j = 0; j < keys; j++)
            row.push_back(j * 3);
    return r;
}

TEST(VPu, EmptyRetainedIsCheap)
{
    ArchConfig cfg;
    HbmModel hbm(cfg.hbm);
    const QuantizedHead h1 = head();
    const VPuResult r = simulateVPu(cfg, h1,
                                    std::vector<std::vector<int>>(8),
                                    0, hbm, 0, 0.0);
    EXPECT_EQ(r.v_loads, 0u);
    EXPECT_DOUBLE_EQ(r.vpu_mac_pj, 0.0);
}

TEST(VPu, RarsNotWorseThanNaive)
{
    ArchConfig with;
    ArchConfig without;
    without.enable_rars = false;
    const QuantizedHead h1 = head();
    const auto retained = sharedRetained(8, 32);
    HbmModel hbm1(with.hbm);
    HbmModel hbm2(without.hbm);
    const VPuResult a = simulateVPu(with, h1, retained, 0, hbm1, 0,
                                    0.0);
    const VPuResult b = simulateVPu(without, h1, retained, 0, hbm2, 0,
                                    0.0);
    EXPECT_LE(a.v_loads, b.v_loads);
    EXPECT_EQ(a.v_loads_naive, b.v_loads);
}

TEST(VPu, MacEnergyTracksRetained)
{
    ArchConfig cfg;
    const QuantizedHead h1 = head();
    HbmModel hbm1(cfg.hbm);
    HbmModel hbm2(cfg.hbm);
    const VPuResult small = simulateVPu(cfg, h1, sharedRetained(8, 8),
                                        0, hbm1, 0, 0.0);
    const VPuResult large = simulateVPu(cfg, h1, sharedRetained(8, 64),
                                        0, hbm2, 0, 0.0);
    EXPECT_NEAR(large.vpu_mac_pj / small.vpu_mac_pj, 8.0, 1e-6);
    EXPECT_GT(large.makespan_ns, small.makespan_ns);
}

TEST(VPu, RescaleOpsAddTime)
{
    ArchConfig cfg;
    const QuantizedHead h1 = head();
    const auto retained = sharedRetained(8, 32);
    HbmModel hbm1(cfg.hbm);
    HbmModel hbm2(cfg.hbm);
    const VPuResult no_rescale = simulateVPu(cfg, h1, retained, 0,
                                             hbm1, 0, 0.0);
    const VPuResult heavy = simulateVPu(cfg, h1, retained, 1000000,
                                        hbm2, 0, 0.0);
    EXPECT_GT(heavy.makespan_ns, no_rescale.makespan_ns);
    EXPECT_GT(heavy.compute_pj, no_rescale.compute_pj);
}

TEST(VPu, SpillOnlyWithoutIsta)
{
    ArchConfig ista;
    ArchConfig no_ista;
    no_ista.enable_ista = false;
    // Long sequence so full-row scores exceed the score FIFO budget.
    const QuantizedHead h1 = head(4096, 64);
    const auto retained = sharedRetained(8, 16);
    HbmModel hbm1(ista.hbm);
    HbmModel hbm2(no_ista.hbm);
    const VPuResult a = simulateVPu(ista, h1, retained, 0, hbm1, 0,
                                    0.0);
    const VPuResult b = simulateVPu(no_ista, h1, retained, 0, hbm2, 0,
                                    0.0);
    EXPECT_EQ(a.spill_bytes, 0u);
    EXPECT_GT(b.spill_bytes, 0u);
    EXPECT_GT(b.makespan_ns, a.makespan_ns);
}

TEST(VPu, StartTimeShiftsCompletion)
{
    ArchConfig cfg;
    const QuantizedHead h1 = head();
    const auto retained = sharedRetained(8, 32);
    HbmModel hbm1(cfg.hbm);
    HbmModel hbm2(cfg.hbm);
    const VPuResult a = simulateVPu(cfg, h1, retained, 0, hbm1, 0,
                                    0.0);
    const VPuResult b = simulateVPu(cfg, h1, retained, 0, hbm2, 0,
                                    5000.0);
    // Same relative makespan when starting later on a fresh timeline.
    EXPECT_NEAR(a.makespan_ns, b.makespan_ns,
                0.2 * a.makespan_ns + 50.0);
}

} // namespace
} // namespace pade

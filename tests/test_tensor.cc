/**
 * @file
 * Unit tests for the matrix substrate.
 */

#include <gtest/gtest.h>

#include <tuple>

#include "tensor/matrix.h"

namespace pade {
namespace {

TEST(Matrix, ConstructZeroInitialized)
{
    MatrixF m(2, 3);
    EXPECT_EQ(m.rows(), 2);
    EXPECT_EQ(m.cols(), 3);
    for (int i = 0; i < 2; i++)
        for (int j = 0; j < 3; j++)
            EXPECT_FLOAT_EQ(m.at(i, j), 0.0f);
}

TEST(Matrix, RowSpanWritesThrough)
{
    MatrixF m(2, 2);
    auto r = m.row(1);
    r[0] = 5.0f;
    EXPECT_FLOAT_EQ(m.at(1, 0), 5.0f);
}

TEST(Matrix, FillAndEquality)
{
    MatrixI8 a(2, 2);
    MatrixI8 b(2, 2);
    a.fill(3);
    b.fill(3);
    EXPECT_TRUE(a == b);
    b.at(0, 0) = 4;
    EXPECT_FALSE(a == b);
}

TEST(Matrix, FromExplicitData)
{
    Matrix<int> m(2, 2, {1, 2, 3, 4});
    EXPECT_EQ(m.at(0, 0), 1);
    EXPECT_EQ(m.at(0, 1), 2);
    EXPECT_EQ(m.at(1, 0), 3);
    EXPECT_EQ(m.at(1, 1), 4);
}

TEST(Matmul, AgainstHandComputed)
{
    // A (2x3) * B (3x2).
    MatrixF a(2, 3, {1, 2, 3, 4, 5, 6});
    MatrixF b(3, 2, {7, 8, 9, 10, 11, 12});
    auto c = matmul<float, float, float>(a, b);
    EXPECT_FLOAT_EQ(c.at(0, 0), 58.0f);
    EXPECT_FLOAT_EQ(c.at(0, 1), 64.0f);
    EXPECT_FLOAT_EQ(c.at(1, 0), 139.0f);
    EXPECT_FLOAT_EQ(c.at(1, 1), 154.0f);
}

TEST(MatmulBt, MatchesMatmulWithTranspose)
{
    MatrixF a(2, 3, {1, -2, 3, 0, 5, -6});
    MatrixF b(4, 3, {1, 0, 1, 2, 1, 0, -1, -1, -1, 3, 2, 1});
    auto c = matmulBt<float, float, float>(a, b);
    ASSERT_EQ(c.rows(), 2);
    ASSERT_EQ(c.cols(), 4);
    for (int i = 0; i < 2; i++) {
        for (int j = 0; j < 4; j++) {
            float ref = 0.0f;
            for (int k = 0; k < 3; k++)
                ref += a.at(i, k) * b.at(j, k);
            EXPECT_FLOAT_EQ(c.at(i, j), ref);
        }
    }
}

TEST(MatmulBt, IntegerAccumulation)
{
    MatrixI8 a(1, 4, {127, -128, 127, -128});
    MatrixI8 b(1, 4, {127, 127, -128, -128});
    auto c = matmulBt<int8_t, int8_t, int32_t>(a, b);
    // 127*127 - 128*127 - 127*128 + 128*128 = (127-128)*(127-128) = 1.
    EXPECT_EQ(c.at(0, 0), 1);
}

TEST(Matrix, EmptyMatrix)
{
    MatrixF m;
    EXPECT_EQ(m.rows(), 0);
    EXPECT_EQ(m.cols(), 0);
    EXPECT_TRUE(m.empty());
}

TEST(Matmul, BlockedMatchesNaiveAcrossBoundaries)
{
    // The cache-blocked kernels must agree with a naive triple loop
    // on shapes that straddle the block edges (kMatmulBlockRows = 64,
    // kMatmulBlockCols = 256), including exact-multiple and off-by-one
    // dimensions.
    for (auto [m, k, n] : {std::tuple{3, 5, 7},
                           std::tuple{64, 64, 256},
                           std::tuple{65, 70, 257},
                           std::tuple{1, 129, 300},
                           std::tuple{100, 1, 1}}) {
        MatrixF a(m, k);
        MatrixF b(k, n);
        for (int i = 0; i < m; i++)
            for (int j = 0; j < k; j++)
                a.at(i, j) = static_cast<float>((i * 31 + j * 7) % 13)
                    - 6.0f;
        for (int i = 0; i < k; i++)
            for (int j = 0; j < n; j++)
                b.at(i, j) = static_cast<float>((i * 17 + j * 3) % 11)
                    - 5.0f;
        const auto c = matmul<float, float, float>(a, b);
        ASSERT_EQ(c.rows(), m);
        ASSERT_EQ(c.cols(), n);
        for (int i = 0; i < m; i++)
            for (int j = 0; j < n; j++) {
                float ref = 0.0f;
                for (int l = 0; l < k; l++)
                    ref += a.at(i, l) * b.at(l, j);
                ASSERT_FLOAT_EQ(c.at(i, j), ref)
                    << m << "x" << k << "x" << n << " @ (" << i << ","
                    << j << ")";
            }
    }
}

TEST(MatmulBt, BlockedMatchesNaiveAcrossBoundaries)
{
    for (auto [m, n, k] : {std::tuple{3, 7, 5},
                           std::tuple{64, 64, 64},
                           std::tuple{65, 130, 33},
                           std::tuple{1, 200, 128}}) {
        MatrixF a(m, k);
        MatrixF b(n, k);
        for (int i = 0; i < m; i++)
            for (int j = 0; j < k; j++)
                a.at(i, j) = static_cast<float>((i * 13 + j * 5) % 9)
                    - 4.0f;
        for (int i = 0; i < n; i++)
            for (int j = 0; j < k; j++)
                b.at(i, j) = static_cast<float>((i * 11 + j * 2) % 7)
                    - 3.0f;
        const auto c = matmulBt<float, float, float>(a, b);
        ASSERT_EQ(c.rows(), m);
        ASSERT_EQ(c.cols(), n);
        for (int i = 0; i < m; i++)
            for (int j = 0; j < n; j++) {
                float ref = 0.0f;
                for (int l = 0; l < k; l++)
                    ref += a.at(i, l) * b.at(j, l);
                ASSERT_FLOAT_EQ(c.at(i, j), ref)
                    << m << "x" << n << "x" << k << " @ (" << i << ","
                    << j << ")";
            }
    }
}

} // namespace
} // namespace pade

/**
 * @file
 * Unit tests for the matrix substrate.
 */

#include <gtest/gtest.h>

#include "tensor/matrix.h"

namespace pade {
namespace {

TEST(Matrix, ConstructZeroInitialized)
{
    MatrixF m(2, 3);
    EXPECT_EQ(m.rows(), 2);
    EXPECT_EQ(m.cols(), 3);
    for (int i = 0; i < 2; i++)
        for (int j = 0; j < 3; j++)
            EXPECT_FLOAT_EQ(m.at(i, j), 0.0f);
}

TEST(Matrix, RowSpanWritesThrough)
{
    MatrixF m(2, 2);
    auto r = m.row(1);
    r[0] = 5.0f;
    EXPECT_FLOAT_EQ(m.at(1, 0), 5.0f);
}

TEST(Matrix, FillAndEquality)
{
    MatrixI8 a(2, 2);
    MatrixI8 b(2, 2);
    a.fill(3);
    b.fill(3);
    EXPECT_TRUE(a == b);
    b.at(0, 0) = 4;
    EXPECT_FALSE(a == b);
}

TEST(Matrix, FromExplicitData)
{
    Matrix<int> m(2, 2, {1, 2, 3, 4});
    EXPECT_EQ(m.at(0, 0), 1);
    EXPECT_EQ(m.at(0, 1), 2);
    EXPECT_EQ(m.at(1, 0), 3);
    EXPECT_EQ(m.at(1, 1), 4);
}

TEST(Matmul, AgainstHandComputed)
{
    // A (2x3) * B (3x2).
    MatrixF a(2, 3, {1, 2, 3, 4, 5, 6});
    MatrixF b(3, 2, {7, 8, 9, 10, 11, 12});
    auto c = matmul<float, float, float>(a, b);
    EXPECT_FLOAT_EQ(c.at(0, 0), 58.0f);
    EXPECT_FLOAT_EQ(c.at(0, 1), 64.0f);
    EXPECT_FLOAT_EQ(c.at(1, 0), 139.0f);
    EXPECT_FLOAT_EQ(c.at(1, 1), 154.0f);
}

TEST(MatmulBt, MatchesMatmulWithTranspose)
{
    MatrixF a(2, 3, {1, -2, 3, 0, 5, -6});
    MatrixF b(4, 3, {1, 0, 1, 2, 1, 0, -1, -1, -1, 3, 2, 1});
    auto c = matmulBt<float, float, float>(a, b);
    ASSERT_EQ(c.rows(), 2);
    ASSERT_EQ(c.cols(), 4);
    for (int i = 0; i < 2; i++) {
        for (int j = 0; j < 4; j++) {
            float ref = 0.0f;
            for (int k = 0; k < 3; k++)
                ref += a.at(i, k) * b.at(j, k);
            EXPECT_FLOAT_EQ(c.at(i, j), ref);
        }
    }
}

TEST(MatmulBt, IntegerAccumulation)
{
    MatrixI8 a(1, 4, {127, -128, 127, -128});
    MatrixI8 b(1, 4, {127, 127, -128, -128});
    auto c = matmulBt<int8_t, int8_t, int32_t>(a, b);
    // 127*127 - 128*127 - 127*128 + 128*128 = (127-128)*(127-128) = 1.
    EXPECT_EQ(c.at(0, 0), 1);
}

TEST(Matrix, EmptyMatrix)
{
    MatrixF m;
    EXPECT_EQ(m.rows(), 0);
    EXPECT_EQ(m.cols(), 0);
    EXPECT_TRUE(m.empty());
}

} // namespace
} // namespace pade

/**
 * @file
 * Tests for energy accounting and the analytic area model (paper
 * Fig. 17(a) DSE and Fig. 20 breakdown).
 */

#include <gtest/gtest.h>

#include "energy/area_model.h"
#include "energy/energy_model.h"
#include "energy/tech.h"

namespace pade {
namespace {

TEST(EnergyModel, GopsPerWatt)
{
    // 1000 ops at 1 pJ each: 1000 ops / 1000 pJ = 1 op/pJ = 1000 GOPS/W.
    EXPECT_DOUBLE_EQ(gopsPerWatt(1000.0, 1000.0), 1000.0);
    EXPECT_DOUBLE_EQ(gopsPerWatt(100.0, 0.0), 0.0);
}

TEST(EnergyModel, PowerMw)
{
    // 1000 pJ over 1000 ns = 1 mW.
    EXPECT_DOUBLE_EQ(powerMw(1000.0, 1000.0), 1.0);
}

TEST(EnergyModel, BreakdownAccumulates)
{
    EnergyBreakdown e;
    e.add("pe_lane", 10.0, &EnergyBreakdown::compute_pj);
    e.add("buffers", 5.0, &EnergyBreakdown::sram_pj);
    e.add("pe_lane", 2.0, &EnergyBreakdown::compute_pj);
    EXPECT_DOUBLE_EQ(e.compute_pj, 12.0);
    EXPECT_DOUBLE_EQ(e.total(), 17.0);
    EXPECT_DOUBLE_EQ(e.modules.at("pe_lane"), 12.0);
}

TEST(EnergyModel, BreakdownAddition)
{
    EnergyBreakdown a;
    a.add("x", 1.0, &EnergyBreakdown::compute_pj);
    EnergyBreakdown b;
    b.add("x", 2.0, &EnergyBreakdown::dram_pj);
    a += b;
    EXPECT_DOUBLE_EQ(a.total(), 3.0);
    EXPECT_DOUBLE_EQ(a.modules.at("x"), 3.0);
}

TEST(AreaModel, DefaultNearPaperTotal)
{
    const AreaReport rep = padeArea(AreaParams{});
    // Paper: 4.53 mm^2 at 28 nm; the analytic model should land within
    // 15%.
    EXPECT_NEAR(rep.total(), 4.53, 4.53 * 0.15);
}

TEST(AreaModel, ModuleSharesMatchPaperShape)
{
    const AreaReport rep = padeArea(AreaParams{});
    const double total = rep.total();
    // PE lanes are the largest block (paper: 34.1%), V-PU second
    // (28.5%), buffers third (23%).
    const double lanes = rep.modules.at("pe_lane") / total;
    const double vpu = rep.modules.at("vpu") / total;
    const double bufs = rep.modules.at("buffers") / total;
    EXPECT_GT(lanes, vpu);
    EXPECT_GT(vpu, bufs);
    EXPECT_NEAR(lanes, 0.341, 0.08);
    EXPECT_NEAR(vpu, 0.285, 0.08);
    EXPECT_NEAR(bufs, 0.23, 0.08);
    // Sparsity-support modules stay small (paper: BUI ~4.9% area).
    const double bui = (rep.modules.at("bui_generator") +
                        rep.modules.at("bui_gf_module")) / total;
    EXPECT_LT(bui, 0.10);
}

TEST(AreaModel, ScoreboardScalesWithEntries)
{
    AreaParams p;
    const double base = padeArea(p).modules.at("scoreboard");
    p.scoreboard_entries = 64;
    const double doubled = padeArea(p).modules.at("scoreboard");
    EXPECT_NEAR(doubled, 2.0 * base, 1e-9);
}

TEST(AreaModel, GsatOptimumAtSubgroup8)
{
    // Paper Fig. 17(a): sub-group size 8 minimizes area+power.
    const double c8 = gsatCost(64, 8).area_mm2;
    for (int g : {2, 4, 16, 32, 64})
        EXPECT_LT(c8, gsatCost(64, g).area_mm2) << "g=" << g;
}

TEST(AreaModel, GsatCurveShape)
{
    // The curve is a U: both extremes are >1.5x the optimum, matching
    // the paper's normalized plot.
    const double c8 = gsatCost(64, 8).area_mm2;
    EXPECT_GT(gsatCost(64, 2).area_mm2 / c8, 1.5);
    EXPECT_GT(gsatCost(64, 64).area_mm2 / c8, 1.5);
}

TEST(AreaModel, PowerTracksArea)
{
    const GsatCost a = gsatCost(64, 8);
    const GsatCost b = gsatCost(64, 64);
    EXPECT_GT(b.power_mw, a.power_mw);
}

TEST(Tech, ConstantsSane)
{
    EXPECT_GT(tech::kInt8MacPj, tech::kInt4MacPj);
    EXPECT_GT(tech::kFp16ExpPj, tech::kFp16MacPj);
    EXPECT_DOUBLE_EQ(tech::kNsPerCycle, 1.25);
}

} // namespace
} // namespace pade

/**
 * @file
 * Serving-layer tests: incremental bit-plane KV cache, the
 * single-query decode engine's bit-identity with batch padeAttention
 * across all three QK kernels, and the continuous batcher's
 * scheduling/determinism contracts.
 */

#include <gtest/gtest.h>

#include <algorithm>
#include <bit>
#include <cstdint>
#include <vector>

#include "common/rng.h"
#include "core/pade_attention.h"
#include "core/simd/qk_dispatch.h"
#include "serving/continuous_batcher.h"
#include "serving/decode_engine.h"
#include "serving/kv_cache.h"
#include "workload/generator.h"

namespace pade {
namespace {

MatrixI8
randomInt8(int r, int c, uint64_t seed, int bits = 8)
{
    Rng rng(seed);
    MatrixI8 m(r, c);
    const int lo = -(1 << (bits - 1));
    const int hi = (1 << (bits - 1)) - 1;
    for (int i = 0; i < r; i++)
        for (int j = 0; j < c; j++)
            m.at(i, j) = static_cast<int8_t>(rng.range(lo, hi));
    return m;
}

MatrixI8
firstRows(const MatrixI8 &m, int n)
{
    MatrixI8 out(n, m.cols());
    for (int r = 0; r < n; r++)
        for (int c = 0; c < m.cols(); c++)
            out.at(r, c) = m.at(r, c);
    return out;
}

MatrixI8
oneRow(const MatrixI8 &m, int r)
{
    MatrixI8 out(1, m.cols());
    for (int c = 0; c < m.cols(); c++)
        out.at(0, c) = m.at(r, c);
    return out;
}

/**
 * From-scratch reference for decode step: the first @p n_keys rows of
 * @p full packed anew, with query row @p q_row as the only query. The
 * quantization params are shared with @p full, so logit_scale and all
 * integer values match the incremental path exactly.
 */
QuantizedHead
subHead(const QuantizedHead &full, int n_keys, int q_row,
        float base_scale)
{
    const int bits = full.k_planes.numPlanes();
    Quantized q{oneRow(full.q.values, q_row), full.q.params};
    Quantized k{firstRows(full.k.values, n_keys), full.k.params};
    Quantized v{firstRows(full.v.values, n_keys), full.v.params};
    return QuantizedHead(std::move(q), std::move(k), std::move(v),
                         bits, base_scale);
}

// ---------------------------------------------------------------------
// BitPlaneSet::appendToken — bit-identity with the matrix constructor.
// ---------------------------------------------------------------------

TEST(AppendToken, ParityWithFullRepackAtTailShapes)
{
    // The satellite shapes: word boundaries (63/65), the SIMD
    // pair-register edge (127), a single column, and a 5-word row.
    for (int head_dim : {1, 63, 65, 127, 257}) {
        for (int bits : {4, 8}) {
            const MatrixI8 m =
                randomInt8(21, head_dim,
                           17u + static_cast<uint64_t>(head_dim), bits);
            const BitPlaneSet full(m, bits);

            BitPlaneSet inc(head_dim, bits, m.rows());
            EXPECT_EQ(inc.numRows(), 0);
            for (int r = 0; r < m.rows(); r++)
                inc.appendToken(m.row(r));

            ASSERT_EQ(inc.numRows(), full.numRows());
            ASSERT_EQ(inc.numCols(), full.numCols());
            ASSERT_EQ(inc.numPlanes(), full.numPlanes());
            ASSERT_EQ(inc.wordsPerPlane(), full.wordsPerPlane());
            ASSERT_EQ(inc.planeStride(), full.planeStride());
            for (int row = 0; row < m.rows(); row++) {
                for (int p = 0; p < bits; p++) {
                    EXPECT_EQ(inc.popcount(row, p),
                              full.popcount(row, p));
                    auto a = inc.plane(row, p);
                    auto b = full.plane(row, p);
                    for (std::size_t w = 0; w < a.size(); w++)
                        EXPECT_EQ(a[w], b[w])
                            << "hdim " << head_dim << " bits " << bits
                            << " row " << row << " plane " << p
                            << " word " << w;
                }
            }
        }
    }
}

TEST(AppendToken, PaddingStaysZeroForSimdContract)
{
    // The AVX2 backend reads the full aligned stride; appended rows
    // must keep the padding words beyond wordsPerPlane() zeroed.
    const int head_dim = 65; // 2 logical words, stride 4
    const MatrixI8 m = randomInt8(5, head_dim, 3);
    BitPlaneSet inc(head_dim, 8, 5);
    for (int r = 0; r < m.rows(); r++)
        inc.appendToken(m.row(r));
    for (int row = 0; row < m.rows(); row++) {
        auto block = inc.rowPlanes(row);
        ASSERT_EQ(static_cast<int>(block.size()),
                  8 * inc.planeStride());
        for (int p = 0; p < 8; p++)
            for (int w = inc.wordsPerPlane(); w < inc.planeStride();
                 w++)
                EXPECT_EQ(block[static_cast<std::size_t>(
                              p * inc.planeStride() + w)],
                          0u);
    }
}

TEST(AppendToken, GrowthBeyondReservedCapacityStaysCorrect)
{
    // capacity_rows is a reservation, not a limit: exceeding it may
    // reallocate but must preserve contents and alignment.
    const MatrixI8 m = randomInt8(40, 33, 11);
    BitPlaneSet inc(33, 8, 4);
    for (int r = 0; r < m.rows(); r++)
        inc.appendToken(m.row(r));
    const BitPlaneSet full(m, 8);
    for (int row = 0; row < m.rows(); row++)
        for (int p = 0; p < 8; p++) {
            auto a = inc.plane(row, p);
            auto b = full.plane(row, p);
            for (std::size_t w = 0; w < a.size(); w++)
                EXPECT_EQ(a[w], b[w]);
        }
}

// ---------------------------------------------------------------------
// KvCache paging.
// ---------------------------------------------------------------------

TEST(KvCache, PagingGeometryAndValueRows)
{
    KvCacheConfig kc;
    kc.head_dim = 16;
    kc.bits = 8;
    kc.page_tokens = 4;
    kc.v_scale = 0.5f;
    KvCache cache(kc);
    EXPECT_EQ(cache.size(), 0);
    EXPECT_EQ(cache.numPages(), 0);

    const MatrixI8 keys = randomInt8(11, 16, 5);
    const MatrixI8 vals = randomInt8(11, 16, 6);
    for (int t = 0; t < 11; t++)
        cache.appendToken(keys.row(t), vals.row(t));

    EXPECT_EQ(cache.size(), 11);
    EXPECT_EQ(cache.numPages(), 3);
    EXPECT_EQ(cache.pageOf(0), 0);
    EXPECT_EQ(cache.pageOf(3), 0);
    EXPECT_EQ(cache.pageOf(4), 1);
    EXPECT_EQ(cache.rowOf(4), 0);
    EXPECT_EQ(cache.pageOf(10), 2);
    EXPECT_EQ(cache.rowOf(10), 2);
    EXPECT_EQ(cache.pagePlanes(0).numRows(), 4);
    EXPECT_EQ(cache.pagePlanes(2).numRows(), 3);
    EXPECT_GT(cache.bytesUsed(), 0u);

    // Value rows are the dequantized floats, addressable globally.
    for (int t = 0; t < 11; t++) {
        auto v = cache.valueRow(t);
        ASSERT_EQ(static_cast<int>(v.size()), 16);
        for (int d = 0; d < 16; d++)
            EXPECT_EQ(v[d], 0.5f * vals.at(t, d));
    }

    // Cached PlaneWork matches a fresh computation on the page.
    for (int t = 0; t < 11; t++) {
        const BitPlaneSet &p = cache.pagePlanes(cache.pageOf(t));
        for (int r = 0; r < kc.bits; r++) {
            const PlaneWork fresh = planeWork(p, cache.rowOf(t), r,
                                              kc.subgroup, kc.muxes);
            const PlaneWork &cached = cache.work(t, r);
            EXPECT_EQ(cached.selected_bs, fresh.selected_bs);
            EXPECT_EQ(cached.selected_naive, fresh.selected_naive);
            EXPECT_EQ(cached.cycles_bs, fresh.cycles_bs);
            EXPECT_EQ(cached.cycles_naive, fresh.cycles_naive);
        }
    }
}

TEST(KvCache, SpansStayValidAcrossAppends)
{
    // Fixed-capacity pages must never relocate existing storage: a
    // span taken before later appends still reads the same memory.
    KvCacheConfig kc;
    kc.head_dim = 32;
    kc.page_tokens = 8;
    KvCache cache(kc);
    const MatrixI8 keys = randomInt8(24, 32, 7);
    const MatrixI8 vals = randomInt8(24, 32, 8);
    cache.appendToken(keys.row(0), vals.row(0));
    const float *v0 = cache.valueRow(0).data();
    const uint64_t *p0 = cache.pagePlanes(0).plane(0, 0).data();
    for (int t = 1; t < 24; t++)
        cache.appendToken(keys.row(t), vals.row(t));
    EXPECT_EQ(cache.valueRow(0).data(), v0);
    EXPECT_EQ(cache.pagePlanes(0).plane(0, 0).data(), p0);
}

// ---------------------------------------------------------------------
// DecodeEngine — bit-identity with batch padeAttention.
// ---------------------------------------------------------------------

void
expectDecodeMatchesBatch(QkKernel kernel, int bits, int page_tokens,
                         int head_dim)
{
    const int prompt = 70;
    const int steps = 5;
    WorkloadSpec spec;
    spec.seq_len = prompt + steps;
    spec.query_len = steps;
    spec.head_dim = head_dim;
    spec.seed = 99;
    const AttentionHead fh = generateHead(spec);
    const QuantizedHead full = quantizeHead(fh, bits);

    PadeConfig cfg;
    cfg.qk_kernel = kernel;

    KvCacheConfig kc;
    kc.head_dim = head_dim;
    kc.bits = bits;
    kc.page_tokens = page_tokens;
    kc.v_scale = full.v.params.scale;
    KvCache cache(kc);
    DecodeEngine engine(cfg);

    for (int t = 0; t < prompt; t++)
        cache.appendToken(full.k.values.row(t), full.v.values.row(t));

    std::vector<float> out(static_cast<std::size_t>(head_dim));
    for (int t = 0; t < steps; t++) {
        const int pos = prompt + t;
        cache.appendToken(full.k.values.row(pos),
                          full.v.values.row(pos));

        const PruneStats before = engine.stats();
        const DecodeStep st = engine.step(cache, full.q.values.row(t),
                                          full.logit_scale, out);

        // From-scratch reference: re-pack the whole history, run the
        // batch algorithm with this step's query as the only row.
        const QuantizedHead ref = subHead(full, pos + 1, t, fh.scale);
        const PadeResult r = padeAttention(ref, cfg);

        EXPECT_EQ(st.keys, pos + 1);
        EXPECT_EQ(static_cast<uint64_t>(st.retained),
                  r.stats.keys_retained);
        EXPECT_EQ(st.planes, r.stats.planes_processed);

        // Output row: bit-for-bit.
        for (int d = 0; d < head_dim; d++)
            EXPECT_EQ(std::bit_cast<uint32_t>(out[static_cast<
                          std::size_t>(d)]),
                      std::bit_cast<uint32_t>(r.out.at(0, d)))
                << "step " << t << " dim " << d;

        // Keep mask, planes-consumed trace, retained scan order.
        auto keep = engine.lastKeep();
        auto planes = engine.lastPlanes();
        ASSERT_EQ(static_cast<int>(keep.size()), pos + 1);
        for (int j = 0; j <= pos; j++) {
            EXPECT_EQ(keep[static_cast<std::size_t>(j)],
                      r.keep.at(0, j));
            EXPECT_EQ(planes[static_cast<std::size_t>(j)],
                      r.planes.at(0, j));
        }
        auto retained = engine.lastRetained();
        ASSERT_EQ(retained.size(), r.retained[0].size());
        for (std::size_t i = 0; i < retained.size(); i++)
            EXPECT_EQ(retained[i], r.retained[0][i]);

        // Stats: the step's deltas equal the one-query batch stats.
        const PruneStats &after = engine.stats();
        EXPECT_EQ(after.planes_processed - before.planes_processed,
                  r.stats.planes_processed);
        EXPECT_EQ(after.planes_total - before.planes_total,
                  r.stats.planes_total);
        EXPECT_EQ(after.keys_retained - before.keys_retained,
                  r.stats.keys_retained);
        EXPECT_EQ(after.keys_total - before.keys_total,
                  r.stats.keys_total);
        EXPECT_EQ(after.ops_bs - before.ops_bs, r.stats.ops_bs);
        EXPECT_EQ(after.ops_naive - before.ops_naive,
                  r.stats.ops_naive);
        EXPECT_EQ(after.max_updates - before.max_updates,
                  r.stats.max_updates);
        EXPECT_EQ(after.rescale_ops - before.rescale_ops,
                  r.stats.rescale_ops);
        EXPECT_EQ(after.threshold_updates - before.threshold_updates,
                  r.stats.threshold_updates);
    }
}

TEST(DecodeEngine, BitIdenticalToBatchScalar)
{
    expectDecodeMatchesBatch(QkKernel::kScalar, 8, 16, 64);
}

TEST(DecodeEngine, BitIdenticalToBatchPopcount)
{
    expectDecodeMatchesBatch(QkKernel::kPopcount, 8, 16, 64);
}

TEST(DecodeEngine, BitIdenticalToBatchSimd)
{
    // Resolves to kPopcount when AVX2 is compiled out/unavailable;
    // the parity contract must hold either way.
    expectDecodeMatchesBatch(QkKernel::kSimd, 8, 16, 64);
}

TEST(DecodeEngine, BitIdenticalAtInt4AndOddShapes)
{
    // Narrow planes, page boundary inside a tile, non-power-of-two
    // head_dim exercising the SIMD tail path.
    expectDecodeMatchesBatch(QkKernel::kSimd, 4, 16, 96);
    expectDecodeMatchesBatch(QkKernel::kPopcount, 4, 10, 65);
}

TEST(DecodeEngine, SinglePageAndUnguardedDense)
{
    // guard_enabled=false runs every plane of every key (dense
    // bit-serial) — the ablation config must match batch too.
    const int h = 32;
    const int prompt = 20;
    WorkloadSpec spec;
    spec.seq_len = prompt + 1;
    spec.query_len = 1;
    spec.head_dim = h;
    spec.seed = 5;
    const AttentionHead fh = generateHead(spec);
    const QuantizedHead full = quantizeHead(fh, 8);

    PadeConfig cfg;
    cfg.guard_enabled = false;

    KvCacheConfig kc;
    kc.head_dim = h;
    kc.page_tokens = 256;
    kc.v_scale = full.v.params.scale;
    KvCache cache(kc);
    for (int t = 0; t <= prompt; t++)
        cache.appendToken(full.k.values.row(t), full.v.values.row(t));
    EXPECT_EQ(cache.numPages(), 1);

    DecodeEngine engine(cfg);
    std::vector<float> out(h);
    const DecodeStep st = engine.step(cache, full.q.values.row(0),
                                      full.logit_scale, out);
    EXPECT_EQ(st.retained, prompt + 1);
    EXPECT_EQ(st.planes, static_cast<uint64_t>(8 * (prompt + 1)));

    const QuantizedHead ref = subHead(full, prompt + 1, 0, fh.scale);
    const PadeResult r = padeAttention(ref, cfg);
    for (int d = 0; d < h; d++)
        EXPECT_EQ(std::bit_cast<uint32_t>(out[static_cast<std::size_t>(
                      d)]),
                  std::bit_cast<uint32_t>(r.out.at(0, d)));
}

// ---------------------------------------------------------------------
// ContinuousBatcher.
// ---------------------------------------------------------------------

TEST(ContinuousBatcher, CompletesEveryRequestAndRespectsSlots)
{
    TraceSpec ts;
    ts.num_requests = 6;
    ts.rate_per_s = 5000.0;
    ts.prompt_min = 8;
    ts.prompt_max = 24;
    ts.decode_min = 2;
    ts.decode_max = 5;
    ts.seed = 21;
    const std::vector<ServingRequest> trace = poissonArrivalTrace(ts);

    BatcherOptions opt;
    opt.threads = 2;
    opt.max_active = 2;
    opt.prefill_chunk = 8;
    opt.head_dim = 32;
    const ServingReport rep = ContinuousBatcher(opt).run(trace);

    ASSERT_EQ(rep.sessions.size(), trace.size());
    EXPECT_LE(rep.peak_active, 2);
    EXPECT_GE(rep.peak_active, 1);
    EXPECT_GT(rep.rounds, 0);
    EXPECT_GT(rep.peak_cache_bytes, 0u);

    uint64_t decoded = 0;
    uint64_t prefilled = 0;
    for (std::size_t i = 0; i < trace.size(); i++) {
        const SessionStats &s = rep.sessions[i];
        EXPECT_EQ(s.prompt_len, trace[i].prompt_len);
        EXPECT_EQ(s.decode_steps, trace[i].decode_steps);
        EXPECT_GE(s.admit_ms, s.arrival_ms);
        EXPECT_GE(s.first_token_ms, s.admit_ms);
        EXPECT_GE(s.finish_ms, s.first_token_ms);
        EXPECT_NE(s.checksum, 0u);
        decoded += static_cast<uint64_t>(s.decode_steps);
        prefilled += static_cast<uint64_t>(s.prompt_len);
    }
    EXPECT_EQ(rep.tokens_decoded, decoded);
    EXPECT_EQ(rep.tokens_prefilled, prefilled);
    EXPECT_GE(rep.latency_ms.p99, rep.latency_ms.p95);
    EXPECT_GE(rep.latency_ms.p95, rep.latency_ms.p50);
    EXPECT_GT(rep.latency_ms.p50, 0.0);
}

TEST(ContinuousBatcher, TokenOutputsDeterministicAcrossThreadCounts)
{
    TraceSpec ts;
    ts.num_requests = 5;
    ts.rate_per_s = 2000.0;
    ts.prompt_min = 8;
    ts.prompt_max = 16;
    ts.decode_min = 2;
    ts.decode_max = 4;
    ts.seed = 77;
    const std::vector<ServingRequest> trace = poissonArrivalTrace(ts);

    auto runWith = [&](int threads, int max_active) {
        BatcherOptions opt;
        opt.threads = threads;
        opt.max_active = max_active;
        opt.head_dim = 32;
        opt.prefill_chunk = 4;
        return ContinuousBatcher(opt).run(trace);
    };
    const ServingReport a = runWith(1, 2);
    const ServingReport b = runWith(4, 2);
    // Latencies are host timings and may differ; the decoded token
    // streams may not. Scheduling order (which request lands in which
    // slot) is arrival-driven, so per-session checksums line up too.
    EXPECT_EQ(a.checksum, b.checksum);
    for (std::size_t i = 0; i < trace.size(); i++)
        EXPECT_EQ(a.sessions[i].checksum, b.sessions[i].checksum);
    EXPECT_EQ(a.tokens_decoded, b.tokens_decoded);

    // A different slot count changes interleaving but not outputs:
    // each session's token stream depends only on its own seed.
    const ServingReport c = runWith(2, 4);
    EXPECT_EQ(a.checksum, c.checksum);
}

TEST(ContinuousBatcher, PrefillOnlyRequestCompletesItsPrompt)
{
    // decode_steps == 0 is a legal prefill-only request: the batcher
    // must still do the prompt work — which is now *scored* chunked
    // prefill, so it produces real outputs — before evicting, must
    // not emit a decode token, and must keep the (empty) TTFT sample
    // set clean.
    std::vector<ServingRequest> trace(2);
    trace[0] = {.prompt_len = 12, .seed = 5};
    trace[1] = {.prompt_len = 7, .seed = 6};

    BatcherOptions opt;
    opt.threads = 1;
    opt.head_dim = 16;
    opt.prefill_chunk = 4;
    const ServingReport rep = ContinuousBatcher(opt).run(trace);

    EXPECT_EQ(rep.tokens_prefilled, 19u);
    EXPECT_EQ(rep.tokens_decoded, 0u);
    EXPECT_EQ(rep.checksum, 0u);
    EXPECT_NE(rep.prefill_checksum, 0u);
    for (const SessionStats &s : rep.sessions) {
        EXPECT_GE(s.finish_ms, s.admit_ms);
        EXPECT_LT(s.first_token_ms, 0.0);
        EXPECT_NE(s.prefill_checksum, 0u);
    }
    EXPECT_EQ(rep.ttft_ms.p50, 0.0);
    EXPECT_GT(rep.latency_ms.p50, 0.0);
}

TEST(ContinuousBatcher, PriorityThenArrivalAdmission)
{
    // Four same-instant arrivals, one slot: admission must follow
    // priority (higher first) with trace order as the tie-break, and
    // the timeline must record both the class and the global
    // admission sequence.
    std::vector<ServingRequest> trace(4);
    trace[0] = {.prompt_len = 8, .decode_steps = 2, .priority = 0, .seed = 11};
    trace[1] = {.prompt_len = 8, .decode_steps = 2, .priority = 2, .seed = 12};
    trace[2] = {.prompt_len = 8, .decode_steps = 2, .priority = 2, .seed = 13};
    trace[3] = {.prompt_len = 8, .decode_steps = 2, .priority = 5, .seed = 14};

    BatcherOptions opt;
    opt.threads = 1;
    opt.max_active = 1;
    opt.head_dim = 16;
    opt.prefill_chunk = 8;
    const ServingReport rep = ContinuousBatcher(opt).run(trace);

    EXPECT_EQ(rep.sessions[3].admit_seq, 0); // priority 5
    EXPECT_EQ(rep.sessions[1].admit_seq, 1); // priority 2, earlier
    EXPECT_EQ(rep.sessions[2].admit_seq, 2); // priority 2, later
    EXPECT_EQ(rep.sessions[0].admit_seq, 3); // priority 0
    for (std::size_t i = 0; i < trace.size(); i++)
        EXPECT_EQ(rep.sessions[i].priority, trace[i].priority);
    EXPECT_LE(rep.sessions[3].admit_ms, rep.sessions[1].admit_ms);
    EXPECT_LE(rep.sessions[1].admit_ms, rep.sessions[2].admit_ms);
    EXPECT_LE(rep.sessions[2].admit_ms, rep.sessions[0].admit_ms);
}

TEST(ContinuousBatcher, GqaSessionsDeterministicAcrossThreadCounts)
{
    // Model-granularity sessions (4 query heads on 2 shared KV
    // streams) with the in-session KV-head fan-out nested on the
    // pool: decode AND prefill token streams must be bit-identical
    // for every thread count.
    TraceSpec ts;
    ts.num_requests = 4;
    ts.rate_per_s = 2000.0;
    ts.prompt_min = 8;
    ts.prompt_max = 16;
    ts.decode_min = 2;
    ts.decode_max = 4;
    ts.seed = 31;
    const std::vector<ServingRequest> trace = poissonArrivalTrace(ts);

    auto runWith = [&](int threads) {
        BatcherOptions opt;
        opt.threads = threads;
        opt.max_active = 2;
        opt.heads = 4;
        opt.kv_heads = 2;
        opt.head_dim = 32;
        opt.prefill_chunk = 4;
        return ContinuousBatcher(opt).run(trace);
    };
    const ServingReport a = runWith(1);
    const ServingReport b = runWith(4);
    EXPECT_EQ(a.checksum, b.checksum);
    EXPECT_EQ(a.prefill_checksum, b.prefill_checksum);
    EXPECT_NE(a.checksum, 0u);
    EXPECT_NE(a.prefill_checksum, 0u);
    for (std::size_t i = 0; i < trace.size(); i++) {
        EXPECT_EQ(a.sessions[i].checksum, b.sessions[i].checksum);
        EXPECT_EQ(a.sessions[i].prefill_checksum,
                  b.sessions[i].prefill_checksum);
    }
}

TEST(ContinuousBatcher, MultiLayerPipelinedMatchesSerialSchedule)
{
    // Whole-model sessions (3 layers): the software-pipelined layer
    // schedule must reproduce the serial layer-by-layer reference bit
    // for bit — per session and in aggregate — at any thread count.
    TraceSpec ts;
    ts.num_requests = 4;
    ts.rate_per_s = 2000.0;
    ts.prompt_min = 8;
    ts.prompt_max = 14;
    ts.decode_min = 2;
    ts.decode_max = 4;
    ts.seed = 43;
    const std::vector<ServingRequest> trace = poissonArrivalTrace(ts);

    auto runWith = [&](int threads, bool pipeline) {
        BatcherOptions opt;
        opt.threads = threads;
        opt.max_active = 2;
        opt.layers = 3;
        opt.heads = 2;
        opt.kv_heads = 2;
        opt.head_dim = 24;
        opt.prefill_chunk = 4;
        opt.page_tokens = 8;
        opt.pipeline = pipeline;
        return ContinuousBatcher(opt).run(trace);
    };
    const ServingReport serial = runWith(1, false);
    const ServingReport piped1 = runWith(1, true);
    const ServingReport piped4 = runWith(4, true);
    EXPECT_NE(serial.checksum, 0u);
    EXPECT_NE(serial.prefill_checksum, 0u);
    for (const ServingReport *r : {&piped1, &piped4}) {
        EXPECT_EQ(serial.checksum, r->checksum);
        EXPECT_EQ(serial.prefill_checksum, r->prefill_checksum);
        for (std::size_t i = 0; i < trace.size(); i++) {
            EXPECT_EQ(serial.sessions[i].checksum,
                      r->sessions[i].checksum);
            EXPECT_EQ(serial.sessions[i].prefill_checksum,
                      r->sessions[i].prefill_checksum);
        }
    }
}

TEST(ContinuousBatcher, PrefixCacheSavesWorkWithoutChangingOutputs)
{
    // One shared-prefix group, one slot: sessions run strictly in
    // sequence, so every request after the first adopts the published
    // prefix pages. Checksums must not care — prefill_checksum mixes
    // only suffix positions and adopted pages are byte-identical to
    // privately built ones.
    TraceSpec ts;
    ts.num_requests = 5;
    ts.rate_per_s = 3000.0;
    ts.prompt_min = 6;
    ts.prompt_max = 12;
    ts.decode_min = 2;
    ts.decode_max = 3;
    ts.seed = 91;
    ts.prefix_groups = 1;
    ts.prefix_tokens = 16;
    const std::vector<ServingRequest> trace = poissonArrivalTrace(ts);
    for (const ServingRequest &req : trace) {
        EXPECT_EQ(req.prefix_len, 16);
        EXPECT_GT(req.prompt_len, req.prefix_len);
    }

    auto runWith = [&](int threads, bool cache) {
        BatcherOptions opt;
        opt.threads = threads;
        opt.max_active = 1;
        opt.layers = 2;
        opt.heads = 2;
        opt.kv_heads = 2;
        opt.head_dim = 24;
        opt.prefill_chunk = 4;
        opt.page_tokens = 8; // prefix spans exactly 2 shared pages
        opt.prefix_cache = cache;
        return ContinuousBatcher(opt).run(trace);
    };
    const ServingReport cold = runWith(1, false);
    const ServingReport warm = runWith(1, true);
    const ServingReport warm4 = runWith(4, true);

    // Outputs: hit/miss- and thread-count-invariant.
    EXPECT_NE(cold.checksum, 0u);
    EXPECT_NE(cold.prefill_checksum, 0u);
    for (const ServingReport *r : {&warm, &warm4}) {
        EXPECT_EQ(cold.checksum, r->checksum);
        EXPECT_EQ(cold.prefill_checksum, r->prefill_checksum);
        for (std::size_t i = 0; i < trace.size(); i++) {
            EXPECT_EQ(cold.sessions[i].checksum,
                      r->sessions[i].checksum);
            EXPECT_EQ(cold.sessions[i].prefill_checksum,
                      r->sessions[i].prefill_checksum);
        }
    }

    // Work: with one slot the first session publishes both prefix
    // pages and every later session adopts them.
    EXPECT_EQ(cold.tokens_prefix_hit, 0u);
    EXPECT_EQ(warm.tokens_prefix_hit, 4u * 16u);
    EXPECT_GT(warm.prefix_bytes_saved, 0u);
    EXPECT_EQ(warm.prefix.published, 2u); // both chain depths, once
    EXPECT_EQ(warm.prefix.hit_pages, 4u * 2u);
    EXPECT_EQ(warm.prefix.evictions, 0u);
    for (std::size_t i = 0; i < trace.size(); i++) {
        EXPECT_EQ(warm.sessions[i].prefix_len, 16);
        if (warm.sessions[i].admit_seq == 0)
            EXPECT_EQ(warm.sessions[i].prefix_hit_tokens, 0);
        else
            EXPECT_EQ(warm.sessions[i].prefix_hit_tokens, 16);
    }
}

TEST(PoissonTrace, PriorityClassesAreDeterministicAndBounded)
{
    TraceSpec ts;
    ts.num_requests = 40;
    ts.priority_levels = 4;
    ts.seed = 17;
    const auto a = poissonArrivalTrace(ts);
    const auto b = poissonArrivalTrace(ts);
    bool any_nonzero = false;
    for (std::size_t i = 0; i < a.size(); i++) {
        EXPECT_GE(a[i].priority, 0);
        EXPECT_LT(a[i].priority, 4);
        EXPECT_EQ(a[i].priority, b[i].priority);
        any_nonzero |= a[i].priority != 0;
    }
    EXPECT_TRUE(any_nonzero);

    // Single-class traces stay all-zero (and draw nothing extra).
    ts.priority_levels = 1;
    for (const ServingRequest &r : poissonArrivalTrace(ts))
        EXPECT_EQ(r.priority, 0);
}

// ---------------------------------------------------------------------
// Percentiles.
// ---------------------------------------------------------------------

TEST(Percentiles, NearestRankOnKnownSet)
{
    std::vector<double> v;
    for (int i = 100; i >= 1; i--)
        v.push_back(static_cast<double>(i));
    const Percentiles p = Percentiles::of(v);
    EXPECT_DOUBLE_EQ(p.p50, 50.0);
    EXPECT_DOUBLE_EQ(p.p95, 95.0);
    EXPECT_DOUBLE_EQ(p.p99, 99.0);
    // Below 1000 samples the 0.999 nearest rank is the last sample.
    EXPECT_DOUBLE_EQ(p.p999, 100.0);
    EXPECT_DOUBLE_EQ(p.mean, 50.5);
    EXPECT_DOUBLE_EQ(p.max, 100.0);
    EXPECT_EQ(p.count, 100);
}

TEST(Percentiles, P999SeparatesFromMaxAtScale)
{
    // 2000 samples 1..2000: nearest rank ceil(0.999 * 2000) = 1998.
    std::vector<double> v;
    for (int i = 1; i <= 2000; i++)
        v.push_back(static_cast<double>(i));
    const Percentiles p = Percentiles::of(v);
    EXPECT_DOUBLE_EQ(p.p999, 1998.0);
    EXPECT_DOUBLE_EQ(p.max, 2000.0);
    EXPECT_EQ(p.count, 2000);
}

TEST(Percentiles, SmallAndEmptySets)
{
    const Percentiles empty = Percentiles::of({});
    EXPECT_EQ(empty.p50, 0.0);
    EXPECT_EQ(empty.p95, 0.0);
    EXPECT_EQ(empty.p99, 0.0);
    EXPECT_EQ(empty.p999, 0.0);
    EXPECT_EQ(empty.mean, 0.0);
    EXPECT_EQ(empty.max, 0.0);
    EXPECT_EQ(empty.count, 0);

    const std::vector<double> one = {42.0};
    const Percentiles p1 = Percentiles::of(one);
    EXPECT_DOUBLE_EQ(p1.p50, 42.0);
    EXPECT_DOUBLE_EQ(p1.p99, 42.0);
    EXPECT_DOUBLE_EQ(p1.p999, 42.0);
    EXPECT_DOUBLE_EQ(p1.mean, 42.0);
    EXPECT_DOUBLE_EQ(p1.max, 42.0);
    EXPECT_EQ(p1.count, 1);

    const std::vector<double> two = {10.0, 20.0};
    const Percentiles p2 = Percentiles::of(two);
    EXPECT_DOUBLE_EQ(p2.p50, 10.0);
    EXPECT_DOUBLE_EQ(p2.p95, 20.0);
    EXPECT_DOUBLE_EQ(p2.mean, 15.0);
    EXPECT_DOUBLE_EQ(p2.max, 20.0);
    EXPECT_EQ(p2.count, 2);
}

} // namespace
} // namespace pade

/**
 * @file
 * Tests for the batch runtime: thread pool exception safety, and
 * BatchDriver determinism / edge cases / failure isolation.
 */

#include <gtest/gtest.h>

#include <atomic>
#include <stdexcept>
#include <thread>
#include <vector>

#include "runtime/batch_driver.h"
#include "runtime/thread_pool.h"

namespace pade {
namespace {

// --------------------------------------------------------------------
// ThreadPool
// --------------------------------------------------------------------

TEST(ThreadPool, RunsAllSubmittedTasks)
{
    ThreadPool pool(4);
    std::atomic<int> count{0};
    for (int i = 0; i < 100; i++)
        pool.submit([&count] { count++; });
    pool.waitIdle();
    EXPECT_EQ(count.load(), 100);
}

TEST(ThreadPool, ParallelForCoversEveryIndexOnce)
{
    ThreadPool pool(3);
    std::vector<std::atomic<int>> hits(64);
    parallelFor(pool, 64, [&hits](int i) { hits[i]++; });
    for (const auto &h : hits)
        EXPECT_EQ(h.load(), 1);
}

TEST(ThreadPool, ThrowingTaskDoesNotDeadlockOrKillWorkers)
{
    ThreadPool pool(2);
    std::atomic<int> survived{0};
    EXPECT_THROW(
        parallelFor(pool, 8,
                    [](int i) {
                        if (i % 2 == 0)
                            throw std::runtime_error("boom");
                    }),
        std::runtime_error);
    // The pool must still be fully operational afterwards.
    parallelFor(pool, 16, [&survived](int) { survived++; });
    EXPECT_EQ(survived.load(), 16);
}

TEST(ThreadPool, NestedParallelForOnOnePoolDoesNotDeadlock)
{
    // With 1 worker, every outer task blocking in an inner
    // parallelFor would wedge the pool forever if waiters did not
    // help drain the queue (ThreadPool::tryRunOne).
    ThreadPool pool(1);
    std::atomic<int> inner_runs{0};
    parallelFor(pool, 3, [&pool, &inner_runs](int) {
        parallelFor(pool, 4, [&inner_runs](int) { inner_runs++; });
    });
    EXPECT_EQ(inner_runs.load(), 12);
}

TEST(ThreadPool, DestructorCompletesQueuedWork)
{
    // The dtor contract: queued tasks are drained, not dropped. Stall
    // the single worker so submissions pile up behind it, then
    // destroy the pool while the queue is provably non-empty.
    std::atomic<int> done{0};
    std::atomic<bool> release{false};
    {
        ThreadPool pool(1);
        pool.submit([&release] {
            while (!release.load())
                std::this_thread::yield();
        });
        for (int i = 0; i < 32; i++)
            pool.submit([&done] { done++; });
        release.store(true);
    } // ~ThreadPool joins here
    EXPECT_EQ(done.load(), 32);
}

TEST(ThreadPool, TryRunOneOnEmptyQueueReturnsFalse)
{
    ThreadPool pool(1);
    pool.waitIdle();
    EXPECT_FALSE(pool.tryRunOne());
}

TEST(ThreadPool, TryRunOneDrainsQueueWithoutWorkers)
{
    // Starvation case: the only worker is pinned, so the caller's
    // tryRunOne loop is the sole source of progress for queued tasks.
    ThreadPool pool(1);
    std::atomic<bool> started{false};
    std::atomic<bool> release{false};
    pool.submit([&started, &release] {
        started.store(true);
        while (!release.load())
            std::this_thread::yield();
    });
    // Wait until the WORKER holds the pinned task; otherwise the
    // tryRunOne loop below could dequeue it on this thread and spin
    // forever (release is only set after the loop).
    while (!started.load())
        std::this_thread::yield();
    std::atomic<int> ran{0};
    for (int i = 0; i < 8; i++)
        pool.submit([&ran] { ran++; });
    while (pool.tryRunOne()) {
    }
    EXPECT_EQ(ran.load(), 8);
    release.store(true);
    pool.waitIdle();
}

TEST(ThreadPool, ZeroThreadsPicksHardwareConcurrency)
{
    ThreadPool pool(0);
    EXPECT_EQ(pool.threadCount(), ThreadPool::hardwareThreads());
    EXPECT_GE(pool.threadCount(), 1);
    std::atomic<int> count{0};
    parallelFor(pool, 10, [&count](int) { count++; });
    EXPECT_EQ(count.load(), 10);
}

TEST(ThreadPool, ParallelForEveryTaskThrowingRethrowsOne)
{
    // Even when every index throws, exactly one exception surfaces
    // after ALL tasks finish — no cancelled task, no lost worker.
    ThreadPool pool(2);
    std::atomic<int> attempts{0};
    EXPECT_THROW(parallelFor(pool, 8,
                             [&attempts](int) {
                                 attempts++;
                                 throw std::runtime_error("all fail");
                             }),
                 std::runtime_error);
    EXPECT_EQ(attempts.load(), 8);
    std::atomic<int> after{0};
    parallelFor(pool, 4, [&after](int) { after++; });
    EXPECT_EQ(after.load(), 4);
}

TEST(ThreadPool, WaitIdleOnEmptyPoolReturnsImmediately)
{
    ThreadPool pool(1);
    pool.waitIdle();
    parallelFor(pool, 0, [](int) { FAIL(); });
}

// --------------------------------------------------------------------
// BatchDriver
// --------------------------------------------------------------------

SimRequest
smallRequest(uint64_t seed)
{
    SimRequest req{llama2_7b(), dsMmlu()};
    req.seed = seed;
    req.max_sim_seq = 256;
    return req;
}

std::vector<SimRequest>
smallBatch(int n)
{
    std::vector<SimRequest> reqs;
    for (int i = 0; i < n; i++)
        reqs.push_back(smallRequest(100 + static_cast<uint64_t>(i)));
    return reqs;
}

void
expectIdenticalAggregates(const BatchResult &a, const BatchResult &b)
{
    EXPECT_EQ(a.completed, b.completed);
    EXPECT_EQ(a.failed, b.failed);
    EXPECT_EQ(a.aggregate.cycles, b.aggregate.cycles);
    EXPECT_EQ(a.aggregate.time_ns, b.aggregate.time_ns);
    EXPECT_EQ(a.aggregate.useful_ops, b.aggregate.useful_ops);
    EXPECT_EQ(a.aggregate.dram_bytes, b.aggregate.dram_bytes);
    EXPECT_EQ(a.aggregate.sram_bytes, b.aggregate.sram_bytes);
    EXPECT_EQ(a.aggregate.utilization, b.aggregate.utilization);
    EXPECT_EQ(a.aggregate.energy.total(), b.aggregate.energy.total());
    EXPECT_EQ(a.aggregate.prune.keys_retained,
              b.aggregate.prune.keys_retained);
    EXPECT_EQ(a.retained_mass_min, b.retained_mass_min);
    ASSERT_EQ(a.results.size(), b.results.size());
    for (size_t i = 0; i < a.results.size(); i++) {
        EXPECT_EQ(a.results[i].ok, b.results[i].ok);
        EXPECT_EQ(a.results[i].outcome.total.time_ns,
                  b.results[i].outcome.total.time_ns);
        EXPECT_EQ(a.results[i].outcome.retained_mass,
                  b.results[i].outcome.retained_mass);
    }
}

TEST(BatchDriver, AggregatesIdenticalAcrossThreadCounts)
{
    const std::vector<SimRequest> batch = smallBatch(6);
    const ArchConfig arch;
    BatchResult baseline;
    bool first = true;
    for (int threads : {1, 2, 8}) {
        const BatchResult r =
            BatchDriver(BatchOptions{.threads = threads,
                                     .seed_base = 7}).run(arch, batch);
        EXPECT_EQ(r.completed, 6);
        EXPECT_EQ(r.failed, 0);
        if (first) {
            baseline = r;
            first = false;
        } else {
            expectIdenticalAggregates(baseline, r);
        }
    }
}

TEST(BatchDriver, EmptyBatch)
{
    const BatchResult r =
        BatchDriver(BatchOptions{.threads = 4}).run(ArchConfig{}, {});
    EXPECT_EQ(r.completed, 0);
    EXPECT_EQ(r.failed, 0);
    EXPECT_TRUE(r.results.empty());
    EXPECT_EQ(r.aggregate.cycles, 0.0);
    EXPECT_EQ(r.aggregate.dram_bytes, 0u);
}

TEST(BatchDriver, SingleRequestMatchesDirectSimulation)
{
    const SimRequest req = smallRequest(5);
    const ArchConfig arch;
    const SimOutcome direct = simulatePade(arch, req);
    const BatchResult r =
        BatchDriver(BatchOptions{.threads = 4}).run(arch, {req});
    ASSERT_EQ(r.completed, 1);
    EXPECT_EQ(r.results[0].outcome.total.time_ns, direct.total.time_ns);
    EXPECT_EQ(r.results[0].outcome.total.cycles, direct.total.cycles);
    EXPECT_EQ(r.results[0].outcome.retained_mass, direct.retained_mass);
    EXPECT_EQ(r.aggregate.time_ns, direct.total.time_ns);
}

TEST(BatchDriver, SeedBaseOverridesRequestSeedsDeterministically)
{
    BatchDriver d(BatchOptions{.threads = 2, .seed_base = 99});
    EXPECT_EQ(d.seedFor(0), d.seedFor(0));
    EXPECT_NE(d.seedFor(0), d.seedFor(1));
    // Two full runs with the same seed_base agree even though the
    // requests carry different (overridden) seeds.
    const std::vector<SimRequest> batch = {smallRequest(1),
                                           smallRequest(2)};
    const BatchResult a = d.run(ArchConfig{}, batch);
    const BatchResult b = d.run(ArchConfig{}, batch);
    expectIdenticalAggregates(a, b);
}

TEST(BatchDriver, FailingRequestIsIsolated)
{
    // Inject a simulator that fails on one index; the rest of the
    // batch must complete and the pool must not deadlock.
    std::atomic<int> calls{0};
    BatchDriver driver(
        BatchOptions{.threads = 4},
        [&calls](const ArchConfig &arch, const SimRequest &req) {
            calls++;
            if (req.seed == 101)
                throw std::runtime_error("request exploded");
            return simulatePade(arch, req);
        });
    const BatchResult r = driver.run(ArchConfig{}, smallBatch(4));
    EXPECT_EQ(calls.load(), 4);
    EXPECT_EQ(r.completed, 3);
    EXPECT_EQ(r.failed, 1);
    EXPECT_FALSE(r.results[1].ok);
    EXPECT_EQ(r.results[1].error, "request exploded");
    EXPECT_TRUE(r.results[0].ok);
    EXPECT_TRUE(r.results[2].ok);
    EXPECT_TRUE(r.results[3].ok);
    EXPECT_GT(r.aggregate.time_ns, 0.0);
}

TEST(BatchDriver, HeterogeneousItemsKeepTheirOwnArch)
{
    // Same request under two scoreboard depths: the batch API must
    // not leak one item's ArchConfig into another.
    BatchItem deep;
    deep.req = smallRequest(3);
    deep.arch.scoreboard_entries = 32;
    BatchItem shallow = deep;
    shallow.arch.scoreboard_entries = 2;

    const BatchResult r = BatchDriver(BatchOptions{.threads = 2})
                              .run({deep, shallow, deep});
    ASSERT_EQ(r.completed, 3);
    EXPECT_EQ(r.results[0].outcome.block.cycles,
              r.results[2].outcome.block.cycles);
    // A 2-entry scoreboard stalls the lanes; cycle counts must differ.
    EXPECT_NE(r.results[0].outcome.block.cycles,
              r.results[1].outcome.block.cycles);
}

TEST(BatchDriver, LatencyPercentilesCoverSuccessfulRequests)
{
    // Injectable simulator: request i "runs" with a known wall cost.
    // Percentiles summarize only successful requests, and every
    // successful slot records a positive wall_ms.
    const BatchDriver driver(
        BatchOptions{.threads = 3},
        [](const ArchConfig &, const SimRequest &req) {
            if (req.seed == 4)
                throw std::runtime_error("injected failure");
            return SimOutcome{};
        });
    std::vector<SimRequest> reqs(8);
    for (std::size_t i = 0; i < reqs.size(); i++)
        reqs[i].seed = static_cast<uint64_t>(i);

    const BatchResult r = driver.run(ArchConfig{}, reqs);
    ASSERT_EQ(r.completed, 7);
    ASSERT_EQ(r.failed, 1);
    for (std::size_t i = 0; i < reqs.size(); i++) {
        if (r.results[i].ok) {
            EXPECT_GE(r.results[i].wall_ms, 0.0);
        }
    }
    EXPECT_GE(r.latency_ms.p99, r.latency_ms.p95);
    EXPECT_GE(r.latency_ms.p95, r.latency_ms.p50);
    EXPECT_GE(r.latency_ms.p50, 0.0);
}

TEST(BatchDriver, PercentilesEmptyWhenEverythingFails)
{
    const BatchDriver driver(
        BatchOptions{},
        [](const ArchConfig &, const SimRequest &) -> SimOutcome {
            throw std::runtime_error("always fails");
        });
    const BatchResult r =
        driver.run(ArchConfig{}, std::vector<SimRequest>(3));
    EXPECT_EQ(r.completed, 0);
    EXPECT_EQ(r.failed, 3);
    EXPECT_EQ(r.latency_ms.p50, 0.0);
    EXPECT_EQ(r.latency_ms.p99, 0.0);
}

} // namespace
} // namespace pade

/**
 * @file
 * Unit and property tests for the bit-plane decomposition, including the
 * paper's Fig. 6 worked example.
 */

#include <gtest/gtest.h>

#include <algorithm>

#include "common/rng.h"
#include "quant/bitplane.h"

namespace pade {
namespace {

MatrixI8
randomInt8(int r, int c, uint64_t seed, int bits = 8)
{
    Rng rng(seed);
    MatrixI8 m(r, c);
    const int lo = -(1 << (bits - 1));
    const int hi = (1 << (bits - 1)) - 1;
    for (int i = 0; i < r; i++)
        for (int j = 0; j < c; j++)
            m.at(i, j) = static_cast<int8_t>(rng.range(lo, hi));
    return m;
}

TEST(BitPlane, PlaneWeights8Bit)
{
    MatrixI8 m(1, 1);
    BitPlaneSet p(m, 8);
    EXPECT_EQ(p.planeWeight(0), -128);
    EXPECT_EQ(p.planeWeight(1), 64);
    EXPECT_EQ(p.planeWeight(7), 1);
}

TEST(BitPlane, RemainingMagnitude)
{
    MatrixI8 m(1, 1);
    BitPlaneSet p(m, 8);
    EXPECT_EQ(p.remainingMagnitude(0), 127);
    EXPECT_EQ(p.remainingMagnitude(1), 63);
    EXPECT_EQ(p.remainingMagnitude(6), 1);
    EXPECT_EQ(p.remainingMagnitude(7), 0);
}

TEST(BitPlane, ReconstructAllInt8Values)
{
    // Property: full reconstruction is exact for every representable
    // value.
    MatrixI8 m(1, 256);
    for (int v = -128; v <= 127; v++)
        m.at(0, v + 128) = static_cast<int8_t>(v);
    BitPlaneSet p(m, 8);
    for (int v = -128; v <= 127; v++)
        EXPECT_EQ(p.reconstruct(0, v + 128, 7), v);
}

TEST(BitPlane, PartialReconstructConservative)
{
    // With unknown bits zero, the partial value plus the remaining
    // magnitude must bracket the true value.
    MatrixI8 m = randomInt8(4, 32, 11);
    BitPlaneSet p(m, 8);
    for (int row = 0; row < 4; row++) {
        for (int col = 0; col < 32; col++) {
            const int truth = m.at(row, col);
            for (int r = 0; r < 8; r++) {
                const int partial = p.reconstruct(row, col, r);
                EXPECT_LE(partial, truth);
                EXPECT_GE(partial + p.remainingMagnitude(r), truth);
            }
        }
    }
}

TEST(BitPlane, PopcountMatchesBits)
{
    MatrixI8 m = randomInt8(3, 100, 12);
    BitPlaneSet p(m, 8);
    for (int row = 0; row < 3; row++) {
        for (int r = 0; r < 8; r++) {
            int count = 0;
            for (int col = 0; col < 100; col++)
                count += p.bit(row, r, col) ? 1 : 0;
            EXPECT_EQ(p.popcount(row, r), count);
        }
    }
}

TEST(BitPlane, MsbPlaneIsSign)
{
    MatrixI8 m(1, 4, {-5, 5, -128, 127});
    BitPlaneSet p(m, 8);
    EXPECT_TRUE(p.bit(0, 0, 0));
    EXPECT_FALSE(p.bit(0, 0, 1));
    EXPECT_TRUE(p.bit(0, 0, 2));
    EXPECT_FALSE(p.bit(0, 0, 3));
}

TEST(BitPlane, ExactDotEqualsInteger)
{
    MatrixI8 q = randomInt8(1, 64, 13);
    MatrixI8 k = randomInt8(8, 64, 14);
    BitPlaneSet planes(k, 8);
    for (int j = 0; j < 8; j++) {
        int64_t ref = 0;
        for (int d = 0; d < 64; d++)
            ref += static_cast<int64_t>(q.at(0, d)) * k.at(j, d);
        EXPECT_EQ(exactDot(q.row(0), planes, j), ref);
    }
}

TEST(QueryPlanes, RoundTripAndWeights)
{
    MatrixI8 q = randomInt8(1, 70, 21);
    const QueryPlanes qp(q.row(0), 8);
    ASSERT_EQ(qp.numCols(), 70);
    ASSERT_EQ(qp.numPlanes(), 8);
    ASSERT_EQ(qp.wordsPerPlane(), 2);
    EXPECT_EQ(qp.planeWeight(0), -128);
    EXPECT_EQ(qp.planeWeight(1), 64);
    EXPECT_EQ(qp.planeWeight(7), 1);
    // Summing plane weights over set bits reconstructs every value.
    for (int d = 0; d < 70; d++) {
        int v = 0;
        for (int t = 0; t < 8; t++)
            if (qp.bit(t, d))
                v += qp.planeWeight(t);
        EXPECT_EQ(v, q.at(0, d));
    }
}

TEST(QueryPlanes, MaskedSumMatchesDirectSum)
{
    // maskedSum over a key plane is sum of q over that plane's set
    // bits — the primitive both popcount kernels build on. Exercise
    // every word-count specialization (1..4 words and the generic
    // path at 5 words = 289 cols).
    for (int cols : {40, 64, 100, 128, 180, 256, 289}) {
        MatrixI8 q = randomInt8(1, cols, 22 + cols);
        MatrixI8 k = randomInt8(3, cols, 23 + cols);
        BitPlaneSet planes(k, 8);
        const QueryPlanes qp(q.row(0));
        for (int j = 0; j < 3; j++)
            for (int r = 0; r < 8; r++) {
                int64_t ref = 0;
                for (int d = 0; d < cols; d++)
                    if (planes.bit(j, r, d))
                        ref += q.at(0, d);
                EXPECT_EQ(qp.maskedSum(planes.plane(j, r)), ref)
                    << "cols=" << cols << " j=" << j << " r=" << r;
            }
    }
}

TEST(BitPlane, PartialDotPopcountMatchesScalar)
{
    for (int bits : {2, 5, 8}) {
        MatrixI8 q = randomInt8(1, 96, 31);
        MatrixI8 k = randomInt8(4, 96, 32);
        // Clamp keys into the bit range.
        const int lo = -(1 << (bits - 1));
        const int hi = (1 << (bits - 1)) - 1;
        for (int i = 0; i < 4; i++)
            for (int d = 0; d < 96; d++)
                k.at(i, d) = static_cast<int8_t>(
                    std::clamp<int>(k.at(i, d), lo, hi));
        BitPlaneSet planes(k, bits);
        const QueryPlanes qp(q.row(0));
        for (int j = 0; j < 4; j++)
            for (int r = 0; r < bits; r++) {
                EXPECT_EQ(partialDot(qp, planes, j, r),
                          partialDotScalar(q.row(0), planes, j, r));
                EXPECT_EQ(partialDot(q.row(0), planes, j, r),
                          partialDotScalar(q.row(0), planes, j, r));
            }
        EXPECT_EQ(exactDot(qp, planes, 0),
                  exactDotScalar(q.row(0), planes, 0));
    }
}

TEST(BitPlane, PartialDotMonotoneConvergence)
{
    MatrixI8 q = randomInt8(1, 32, 15);
    MatrixI8 k = randomInt8(4, 32, 16);
    BitPlaneSet planes(k, 8);
    for (int j = 0; j < 4; j++) {
        const int64_t exact = exactDot(q.row(0), planes, j);
        EXPECT_EQ(partialDot(q.row(0), planes, j, 7), exact);
    }
}

TEST(BitPlane, Fig6WorkedExample)
{
    // Paper Fig. 6 uses a 6-bit format with weights
    // (-2^3, 2^2, 2^1, 2^0, 2^-1, 2^-2): that equals a 6-bit integer
    // with weights (-32, 16, 8, 4, 2, 1) divided by 4. Keys are
    // k = [0, -0.25, -8, 7.75] -> integer [0, -1, -32, 31];
    // Q = [6, -5, 9, -4].
    MatrixI8 k(4, 4);
    k.at(0, 0) = 0;
    k.at(0, 1) = -1;
    k.at(0, 2) = -32;
    k.at(0, 3) = 31;
    BitPlaneSet planes(k, 6);

    std::vector<int8_t> q = {6, -5, 9, -4};
    std::span<const int8_t> qs(q);

    // Exact dot: 6*0 + (-5)*(-0.25) + 9*(-8) + (-4)*7.75 = -101.75.
    const double exact = exactDot(qs, planes, 0) / 4.0;
    EXPECT_DOUBLE_EQ(exact, -101.75);

    // After the MSB plane only: S^0 = -32 (paper Fig. 6(a)).
    const double s0 = partialDot(qs, planes, 0, 0) / 4.0;
    EXPECT_DOUBLE_EQ(s0, -32.0);

    // Remaining magnitude after MSB: (2^5 - 1)/4 = 7.75 in the
    // fractional scale.
    EXPECT_EQ(planes.remainingMagnitude(0), 31);
}

/** Parameterized over bit width: decomposition must be exact. */
class BitWidthTest : public ::testing::TestWithParam<int>
{
};

TEST_P(BitWidthTest, ReconstructionExact)
{
    const int bits = GetParam();
    MatrixI8 m = randomInt8(2, 40, 20 + bits, bits);
    BitPlaneSet p(m, bits);
    for (int row = 0; row < 2; row++)
        for (int col = 0; col < 40; col++)
            EXPECT_EQ(p.reconstruct(row, col, bits - 1),
                      m.at(row, col));
}

TEST_P(BitWidthTest, ExactDotMatchesDirect)
{
    const int bits = GetParam();
    MatrixI8 q = randomInt8(1, 24, 30 + bits, 8);
    MatrixI8 k = randomInt8(5, 24, 40 + bits, bits);
    BitPlaneSet planes(k, bits);
    for (int j = 0; j < 5; j++) {
        int64_t ref = 0;
        for (int d = 0; d < 24; d++)
            ref += static_cast<int64_t>(q.at(0, d)) * k.at(j, d);
        EXPECT_EQ(exactDot(q.row(0), planes, j), ref);
    }
}

INSTANTIATE_TEST_SUITE_P(Widths, BitWidthTest,
                         ::testing::Values(2, 3, 4, 5, 6, 7, 8));

TEST(BitPlane, PlaneBytes)
{
    MatrixI8 m(1, 64);
    BitPlaneSet p(m, 8);
    EXPECT_EQ(p.planeBytes(), 8);
    MatrixI8 m2(1, 65);
    BitPlaneSet p2(m2, 8);
    EXPECT_EQ(p2.planeBytes(), 9);
}

TEST(BitPlane, MultiWordColumns)
{
    // Columns beyond 64 exercise the multi-word path.
    MatrixI8 m = randomInt8(2, 130, 17);
    BitPlaneSet p(m, 8);
    EXPECT_EQ(p.wordsPerPlane(), 3);
    for (int col : {0, 63, 64, 127, 128, 129})
        EXPECT_EQ(p.reconstruct(0, col, 7), m.at(0, col));
}

} // namespace
} // namespace pade

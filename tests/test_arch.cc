/**
 * @file
 * Integration tests for the cycle-level PADE accelerator: metric
 * sanity, mechanism-toggle monotonicity, layout effects, and metric
 * scaling.
 */

#include <gtest/gtest.h>

#include "arch/pade_accelerator.h"
#include "workload/generator.h"

namespace pade {
namespace {

QuantizedHead
head(int s = 512, int h = 64, uint64_t seed = 1, int p = 8)
{
    WorkloadSpec spec;
    spec.seq_len = s;
    spec.query_len = p;
    spec.head_dim = h;
    spec.concentration = 1.25;
    spec.locality = 0.6;
    spec.seed = seed;
    return quantizeHead(generateHead(spec));
}

TEST(Accelerator, MetricsSanity)
{
    PadeAccelerator accel;
    const RunMetrics m = accel.runHead(head());
    EXPECT_GT(m.cycles, 0.0);
    EXPECT_GT(m.time_ns, 0.0);
    EXPECT_GT(m.qk_cycles, 0.0);
    EXPECT_GT(m.v_cycles, 0.0);
    EXPECT_GT(m.useful_ops, 0.0);
    EXPECT_GT(m.dram_bytes, 0u);
    EXPECT_GT(m.energy.compute_pj, 0.0);
    EXPECT_GT(m.energy.sram_pj, 0.0);
    EXPECT_GT(m.energy.dram_pj, 0.0);
    EXPECT_GT(m.utilization, 0.0);
    EXPECT_LE(m.utilization, 1.0);
    EXPECT_GT(m.row_hit_rate, 0.0);
    EXPECT_GT(m.gopsPerW(), 0.0);
}

TEST(Accelerator, GuardReducesWorkAndTraffic)
{
    ArchConfig dense;
    dense.enable_guard = false;
    ArchConfig sparse;
    sparse.enable_guard = true;
    const auto h1 = head();
    const RunMetrics md = PadeAccelerator(dense).runHead(h1);
    const RunMetrics ms = PadeAccelerator(sparse).runHead(h1);
    EXPECT_LT(ms.dram_bytes, md.dram_bytes);
    EXPECT_LT(ms.time_ns, md.time_ns);
    EXPECT_LT(ms.energy.total(), md.energy.total());
    EXPECT_LT(ms.prune.keys_retained, ms.prune.keys_total);
}

TEST(Accelerator, OoeHidesLatency)
{
    ArchConfig in_order;
    in_order.enable_ooe = false;
    ArchConfig ooe;
    ooe.enable_ooe = true;
    const auto h1 = head();
    const RunMetrics mi = PadeAccelerator(in_order).runHead(h1);
    const RunMetrics mo = PadeAccelerator(ooe).runHead(h1);
    EXPECT_LT(mo.qk_cycles, mi.qk_cycles);
    EXPECT_LT(mo.dram_stall_cycles, mi.dram_stall_cycles);
    EXPECT_GT(mo.utilization, mi.utilization);
}

TEST(Accelerator, ResultReuseCutsDramTraffic)
{
    ArchConfig reuse;
    ArchConfig no_reuse;
    no_reuse.result_reuse = false;
    const auto h1 = head();
    const RunMetrics mr = PadeAccelerator(reuse).runHead(h1);
    const RunMetrics mn = PadeAccelerator(no_reuse).runHead(h1);
    EXPECT_LT(mr.dram_bytes, mn.dram_bytes);
    EXPECT_LT(mr.energy.dram_pj, mn.energy.dram_pj);
}

TEST(Accelerator, BsNeverSlower)
{
    ArchConfig with_bs;
    ArchConfig no_bs;
    no_bs.enable_bs = false;
    const auto h1 = head();
    const RunMetrics mb = PadeAccelerator(with_bs).runHead(h1);
    const RunMetrics mn = PadeAccelerator(no_bs).runHead(h1);
    EXPECT_LE(mb.busy_cycles, mn.busy_cycles);
    EXPECT_LE(mb.intra_pe_stall_cycles, mn.intra_pe_stall_cycles);
}

TEST(Accelerator, BitPlaneLayoutBeatsValueMajor)
{
    ArchConfig plane;
    plane.k_layout = KLayout::BitPlaneInterleaved;
    ArchConfig value;
    value.k_layout = KLayout::ValueMajor;
    const auto h1 = head(4096, 128);
    const RunMetrics mp = PadeAccelerator(plane).runHead(h1);
    const RunMetrics mv = PadeAccelerator(value).runHead(h1);
    EXPECT_GT(mp.row_hit_rate, mv.row_hit_rate);
    // Time advantage depends on how memory-bound the run is; it must
    // at least not regress materially.
    EXPECT_LE(mp.time_ns, 1.1 * mv.time_ns);
}

TEST(Accelerator, RarsReducesVLoads)
{
    ArchConfig with;
    ArchConfig without;
    without.enable_rars = false;
    const auto h1 = head();
    const RunMetrics mw = PadeAccelerator(with).runHead(h1);
    const RunMetrics mo = PadeAccelerator(without).runHead(h1);
    EXPECT_LE(mw.dram_bytes, mo.dram_bytes);
}

TEST(Accelerator, IstaOverlapsValueStage)
{
    ArchConfig with;
    ArchConfig without;
    without.enable_ista = false;
    const auto h1 = head(2048, 128);
    const RunMetrics mw = PadeAccelerator(with).runHead(h1);
    const RunMetrics mo = PadeAccelerator(without).runHead(h1);
    EXPECT_LT(mw.time_ns, mo.time_ns);
}

TEST(Accelerator, DecodeModeStreamsPerRow)
{
    ArchConfig prefill;
    ArchConfig decode;
    decode.shared_k = false;
    // Decode: one query row.
    const auto h1 = head(512, 64, 3, 1);
    const RunMetrics mp = PadeAccelerator(prefill).runHead(h1);
    const RunMetrics md = PadeAccelerator(decode).runHead(h1);
    // Same single-row workload; both must complete with traffic.
    EXPECT_GT(md.dram_bytes, 0u);
    EXPECT_GT(mp.dram_bytes, 0u);
}

TEST(Accelerator, ScaledMultipliesExtensives)
{
    PadeAccelerator accel;
    const RunMetrics m = accel.runHead(head());
    const RunMetrics m2 = m.scaled(3.0);
    EXPECT_DOUBLE_EQ(m2.time_ns, 3.0 * m.time_ns);
    EXPECT_DOUBLE_EQ(m2.useful_ops, 3.0 * m.useful_ops);
    EXPECT_NEAR(m2.energy.total(), 3.0 * m.energy.total(), 1e-6);
    EXPECT_EQ(m2.dram_bytes, 3 * m.dram_bytes);
    // Efficiency is intensive: unchanged by scaling.
    EXPECT_NEAR(m2.gopsPerW(), m.gopsPerW(), 1e-9);
}

TEST(Accelerator, EnergyBucketsConsistent)
{
    PadeAccelerator accel;
    const RunMetrics m = accel.runHead(head());
    double module_sum = 0.0;
    for (const auto &kv : m.energy.modules)
        module_sum += kv.second;
    EXPECT_NEAR(module_sum, m.energy.total(), 1e-6 * m.energy.total());
}

TEST(Accelerator, SmallerScoreboardStallsMore)
{
    ArchConfig big;
    big.scoreboard_entries = 32;
    ArchConfig small;
    small.scoreboard_entries = 2;
    const auto h1 = head(1024);
    const RunMetrics mb = PadeAccelerator(big).runHead(h1);
    const RunMetrics ms = PadeAccelerator(small).runHead(h1);
    EXPECT_LE(mb.qk_cycles, ms.qk_cycles);
    EXPECT_GE(ms.dram_stall_cycles, mb.dram_stall_cycles);
}

/** Sweep alpha through the accelerator: traffic falls monotonically. */
class ArchAlphaTest : public ::testing::TestWithParam<double>
{
};

TEST_P(ArchAlphaTest, TrafficBoundedByDense)
{
    ArchConfig cfg;
    cfg.algo.alpha = GetParam();
    const RunMetrics m = PadeAccelerator(cfg).runHead(head());
    ArchConfig dense;
    dense.enable_guard = false;
    const RunMetrics md = PadeAccelerator(dense).runHead(head());
    EXPECT_LE(m.dram_bytes, md.dram_bytes);
}

INSTANTIATE_TEST_SUITE_P(Alphas, ArchAlphaTest,
                         ::testing::Values(0.2, 0.55, 1.0));

} // namespace
} // namespace pade

/**
 * @file
 * Differential fuzz harness for the pipelined ModelEngine and the
 * cross-session prefix cache.
 *
 * Oracle convention (docs/TESTING.md): every randomized trial runs
 * the same token stream through the serial layer-by-layer reference
 * schedule (pipeline = false, no pool) and through the systolic
 * pipeline at several thread counts, then asserts the retired-token
 * outputs, the per-token scan accounting, and the engine-wide
 * PruneStats are *bit-identical* — not approximately equal. A second
 * family of trials shares a prompt prefix between two sessions
 * through a PrefixIndex and asserts the adopter's decode stream is
 * bit-identical to the same session run fully privately.
 *
 * Every trial derives from one reproducer seed; failures print it
 * (SCOPED_TRACE), so `--gtest_filter=ModelEngineFuzz.* ` plus the
 * seed replays a single counterexample deterministically.
 */

#include <gtest/gtest.h>

#include <algorithm>
#include <bit>
#include <cstdint>
#include <memory>
#include <optional>
#include <span>
#include <sstream>
#include <vector>

#include "common/rng.h"
#include "core/pade_attention.h"
#include "serving/decode_engine.h"
#include "core/simd/qk_dispatch.h"
#include "runtime/thread_pool.h"
#include "serving/model_engine.h"
#include "serving/prefix_index.h"
#include "workload/generator.h"

namespace pade {
namespace {

uint64_t
mixChecksum(uint64_t acc, uint32_t word)
{
    uint64_t state = acc + word;
    return splitMix64(state);
}

uint64_t
mixMatrix(uint64_t acc, const MatrixF &m)
{
    for (int r = 0; r < m.rows(); r++)
        for (float v : m.row(r))
            acc = mixChecksum(acc, std::bit_cast<uint32_t>(v));
    return acc;
}

/** One retired token, reduced to comparable words. */
struct TokenRecord
{
    int pos = 0;
    uint64_t out_mix = 0;  //!< all layers' outputs, layer-ascending
    uint64_t step_mix = 0; //!< all layers' LayerStep accounting
};

struct RunResult
{
    std::vector<TokenRecord> tokens;
    PruneStats stats;
};

/** The randomized shape of one fuzz trial. */
struct TrialConfig
{
    ModelSpec spec;
    int page_tokens = 16;
    /** Sink+recency eviction; .enabled() (recency > 0) turns the
     *  window-aware decode scan order on. */
    RetentionPolicy retention;
    QkKernel kernel = QkKernel::kScalar;
    std::vector<int> chunks; //!< prefill chunk split of prompt_len

    std::string
    describe(uint64_t seed) const
    {
        std::ostringstream os;
        os << "reproducer seed=" << seed << " layers=" << spec.layers
           << " heads=" << spec.heads << " kv=" << spec.kv_heads
           << " dim=" << spec.head_dim << " bits=" << spec.bits
           << " prompt=" << spec.prompt_len
           << " decode=" << spec.decode_steps
           << " prefix=" << spec.prefix_len
           << " page=" << page_tokens << " retention="
           << retention.sink_tokens << "/" << retention.recency_tokens
           << " kernel=" << static_cast<int>(kernel);
        return os.str();
    }
};

ModelEngineConfig
engineConfig(const TrialConfig &t, bool pipeline)
{
    ModelEngineConfig mc;
    mc.layers = t.spec.layers;
    mc.pipeline = pipeline;
    mc.layer.heads = t.spec.heads;
    mc.layer.kv_heads = t.spec.kv_heads;
    mc.layer.head_dim = t.spec.head_dim;
    mc.layer.bits = t.spec.bits;
    mc.layer.page_tokens = t.page_tokens;
    mc.layer.pade.qk_kernel = t.kernel;
    mc.layer.retention = t.retention;
    return mc;
}

/**
 * Run one trial's token stream to completion. @p adopt_from, when
 * given, publishes @p adopt_pages prefix page depths from that
 * finished engine into a fresh index and adopts them here before
 * feeding (the cross-session path); prefilling then starts past the
 * adopted tokens.
 */
RunResult
runModel(const TrialConfig &t, bool pipeline, int threads,
         std::span<const int> chunks,
         const ModelEngine *adopt_from = nullptr, int adopt_pages = 0)
{
    ModelWorkload work(t.spec);
    RunResult result;

    const auto streams = static_cast<std::size_t>(t.spec.layers) *
        static_cast<std::size_t>(t.spec.kv_heads);
    const std::vector<float> v_scales(streams, work.vScale());
    const std::vector<float> logit_scales(streams, work.logitScale());
    ModelEngine engine(
        engineConfig(t, pipeline), v_scales, logit_scales,
        [&work](int layer, int pos, MatrixI8 &k, MatrixI8 &v,
                MatrixI8 &q) {
            work.stageKv(layer, pos, k, v);
            work.stageQueries(layer, pos, q);
        },
        [&result](const TokenResult &tr) {
            TokenRecord rec;
            rec.pos = tr.pos;
            for (const MatrixF &out : tr.outs)
                rec.out_mix = mixMatrix(rec.out_mix, out);
            for (const LayerStep &st : tr.steps) {
                rec.step_mix = mixChecksum(
                    rec.step_mix, static_cast<uint32_t>(st.keys));
                rec.step_mix = mixChecksum(
                    rec.step_mix, static_cast<uint32_t>(st.retained));
                rec.step_mix = mixChecksum(
                    rec.step_mix, static_cast<uint32_t>(st.planes));
            }
            result.tokens.push_back(rec);
        });

    std::optional<ThreadPool> pool;
    if (threads > 1)
        pool.emplace(threads);
    ThreadPool *pool_ptr = pool ? &*pool : nullptr;

    int next = 0;
    if (adopt_from) {
        std::vector<std::shared_ptr<const KvPage>> pages;
        for (int d = 0; d < adopt_pages; d++)
            adopt_from->sharePrefixPages(d, pages);
        // Round-trip the pages through an index, as serving does.
        ModelWorkload donor_work(t.spec);
        const std::vector<uint64_t> chain =
            donor_work.prefixPageChain(t.page_tokens);
        PrefixIndexOptions pio;
        pio.streams = static_cast<int>(streams);
        PrefixIndex index(pio);
        index.publish(
            std::span<const uint64_t>(chain).first(
                static_cast<std::size_t>(adopt_pages)),
            pages);
        PrefixMatch match = index.acquire(std::span<const uint64_t>(
            chain).first(static_cast<std::size_t>(adopt_pages)));
        EXPECT_EQ(match.pages, adopt_pages);
        for (int d = 0; d < match.pages; d++)
            engine.adoptPrefixPages(
                std::span<const std::shared_ptr<const KvPage>>(
                    match.shared)
                    .subspan(static_cast<std::size_t>(d) * streams,
                             streams));
        next = adopt_pages * t.page_tokens;
        index.release(std::span<const uint64_t>(chain).first(
                          static_cast<std::size_t>(adopt_pages)),
                      match.pages);
    }

    // Prompt in the trial's chunk split (drain between chunks, as the
    // batcher's scheduling rounds do), then token-at-a-time decode.
    for (int chunk : chunks) {
        for (int t2 = 0; t2 < chunk && next < t.spec.prompt_len; t2++)
            engine.feed(next++, t.spec.prompt_len);
        engine.drain(pool_ptr);
    }
    while (next < t.spec.prompt_len)
        engine.feed(next++, t.spec.prompt_len);
    engine.drain(pool_ptr);
    for (int s = 0; s < t.spec.decode_steps; s++) {
        engine.feed(t.spec.prompt_len + s, t.spec.prompt_len);
        engine.drain(pool_ptr);
    }
    EXPECT_EQ(engine.pending(), 0);
    result.stats = engine.stats();
    return result;
}

void
expectStatsEqual(const PruneStats &a, const PruneStats &b)
{
    EXPECT_EQ(a.planes_processed, b.planes_processed);
    EXPECT_EQ(a.planes_total, b.planes_total);
    EXPECT_EQ(a.keys_retained, b.keys_retained);
    EXPECT_EQ(a.keys_total, b.keys_total);
    EXPECT_EQ(a.ops_bs, b.ops_bs);
    EXPECT_EQ(a.ops_naive, b.ops_naive);
    EXPECT_EQ(a.max_updates, b.max_updates);
    EXPECT_EQ(a.rescale_ops, b.rescale_ops);
    EXPECT_EQ(a.threshold_updates, b.threshold_updates);
}

void
expectRunsIdentical(const RunResult &oracle, const RunResult &got,
                    const char *what)
{
    ASSERT_EQ(oracle.tokens.size(), got.tokens.size()) << what;
    for (std::size_t i = 0; i < oracle.tokens.size(); i++) {
        EXPECT_EQ(oracle.tokens[i].pos, got.tokens[i].pos)
            << what << " token " << i;
        EXPECT_EQ(oracle.tokens[i].out_mix, got.tokens[i].out_mix)
            << what << " token " << i << " outputs";
        EXPECT_EQ(oracle.tokens[i].step_mix, got.tokens[i].step_mix)
            << what << " token " << i << " accounting";
    }
    expectStatsEqual(oracle.stats, got.stats);
}

/** Draw one random trial shape from the reproducer seed. */
TrialConfig
drawTrial(uint64_t seed, bool with_prefix)
{
    Rng rng(seed);
    TrialConfig t;
    const int layer_choices[] = {1, 2, 4};
    const int kv_choices[] = {1, 4, 8};
    const int dim_choices[] = {17, 24, 33}; // odd shapes on purpose
    const int bit_choices[] = {4, 8};
    t.spec.layers = layer_choices[rng.below(3)];
    t.spec.kv_heads = kv_choices[rng.below(3)];
    t.spec.heads =
        t.spec.kv_heads * static_cast<int>(rng.range(1, 2));
    t.spec.head_dim = dim_choices[rng.below(3)];
    t.spec.bits = bit_choices[rng.below(2)];
    t.page_tokens = static_cast<int>(rng.range(1, 2)) * 8;
    t.spec.prompt_len = static_cast<int>(rng.range(6, 40));
    t.spec.decode_steps = static_cast<int>(rng.range(0, 6));
    t.spec.seed = splitMix64(seed);
    t.kernel = static_cast<QkKernel>(rng.below(3));
    // Retention exercises middle-page reclamation under the pipeline;
    // keep it off prefix trials' donors so every prefix page stays
    // resident for publication.
    if (!with_prefix && rng.bernoulli(0.25)) {
        t.retention.sink_tokens = t.page_tokens;
        t.retention.recency_tokens = 2 * t.page_tokens;
    }
    if (with_prefix) {
        // Room for at least one whole shared page plus a private
        // suffix.
        t.spec.prompt_len =
            std::max(t.spec.prompt_len, 2 * t.page_tokens + 3);
        // One to as many whole pages as fit, plus sometimes a ragged
        // (unshareable) prefix tail.
        const int max_pages =
            std::max(1, t.spec.prompt_len / t.page_tokens - 1);
        const int pages =
            static_cast<int>(rng.range(1, max_pages));
        t.spec.prefix_len = pages * t.page_tokens +
            (rng.bernoulli(0.3) ? static_cast<int>(rng.range(
                                      1, t.page_tokens - 1))
                                : 0);
        t.spec.prefix_len =
            std::min(t.spec.prefix_len, t.spec.prompt_len);
        t.spec.prefix_seed = splitMix64(t.spec.seed);
        if (t.spec.decode_steps == 0)
            t.spec.decode_steps = 2; // parity needs a decode stream
    }
    // Random chunked-prefill split.
    int left = t.spec.prompt_len;
    while (left > 0) {
        const int c =
            static_cast<int>(rng.range(1, std::max(1, left)));
        t.chunks.push_back(c);
        left -= c;
    }
    return t;
}

/**
 * The tentpole invariant: for ~200 random configurations, the
 * pipelined schedule retires bit-identical tokens, accounting, and
 * PruneStats as the serial oracle, at 1, 2, and 8 threads, and under
 * a different prefill chunking.
 */
TEST(ModelEngineFuzz, PipelineMatchesSerialOracle)
{
    constexpr uint64_t kBase = 0xf022ed5eedULL;
    constexpr int kTrials = 140;
    for (int i = 0; i < kTrials; i++) {
        uint64_t state = kBase + static_cast<uint64_t>(i);
        const uint64_t seed = splitMix64(state);
        const TrialConfig t = drawTrial(seed, /*with_prefix=*/false);
        SCOPED_TRACE(t.describe(seed));

        const RunResult oracle =
            runModel(t, /*pipeline=*/false, /*threads=*/1, t.chunks);
        for (int threads : {1, 2, 8}) {
            const RunResult piped =
                runModel(t, /*pipeline=*/true, threads, t.chunks);
            expectRunsIdentical(oracle, piped, "pipelined");
        }
        // Chunking invariance: one whole-prompt chunk vs the random
        // split (prefill scoring tiles over the full-prompt ISTA
        // order, so the split cannot matter).
        const std::vector<int> whole{t.spec.prompt_len};
        const RunResult onechunk =
            runModel(t, /*pipeline=*/true, 2, whole);
        expectRunsIdentical(oracle, onechunk, "one-chunk");
    }
}

/**
 * Prefix-sharing parity: a session that adopts published prefix
 * pages (skipping their packing and scoring entirely) decodes a
 * bit-identical token stream to the same session run fully
 * privately — at every thread count.
 */
TEST(ModelEngineFuzz, AdoptedPrefixMatchesPrivateDecode)
{
    constexpr uint64_t kBase = 0x9a5e5aa11ULL;
    constexpr int kTrials = 60;
    for (int i = 0; i < kTrials; i++) {
        uint64_t state = kBase + static_cast<uint64_t>(i);
        const uint64_t seed = splitMix64(state);
        TrialConfig t = drawTrial(seed, /*with_prefix=*/true);
        SCOPED_TRACE(t.describe(seed));
        const int shared_pages = t.spec.prefix_len / t.page_tokens;
        ASSERT_GE(shared_pages, 1);

        // Donor session: same prefix identity, its own suffix. Runs
        // fully, donating its prefix pages.
        TrialConfig donor = t;
        donor.spec.seed = splitMix64(t.spec.seed) ^ 0xd0;
        ModelWorkload donor_work(donor.spec);
        const auto streams =
            static_cast<std::size_t>(t.spec.layers) *
            static_cast<std::size_t>(t.spec.kv_heads);
        const std::vector<float> v_scales(streams,
                                          donor_work.vScale());
        const std::vector<float> logit_scales(
            streams, donor_work.logitScale());
        ModelEngine donor_engine(
            engineConfig(donor, /*pipeline=*/true), v_scales,
            logit_scales,
            [&donor_work](int layer, int pos, MatrixI8 &k, MatrixI8 &v,
                          MatrixI8 &q) {
                donor_work.stageKv(layer, pos, k, v);
                donor_work.stageQueries(layer, pos, q);
            },
            [](const TokenResult &) {});
        for (int pos = 0; pos < donor.spec.prompt_len; pos++)
            donor_engine.feed(pos, donor.spec.prompt_len);
        donor_engine.drain(nullptr);

        // Prefix chains agree between donor and adopter by content.
        EXPECT_EQ(donor_work.prefixPageChain(t.page_tokens),
                  ModelWorkload(t.spec).prefixPageChain(
                      t.page_tokens));

        const RunResult priv =
            runModel(t, /*pipeline=*/true, 1, t.chunks);
        for (int threads : {1, 2, 8}) {
            const RunResult adopted =
                runModel(t, /*pipeline=*/true, threads, t.chunks,
                         &donor_engine, shared_pages);
            // Adopted prefix positions are never scored, so compare
            // the streams from the first post-prefix token on.
            const int skipped = shared_pages * t.page_tokens;
            ASSERT_EQ(priv.tokens.size(),
                      adopted.tokens.size() +
                          static_cast<std::size_t>(skipped));
            for (std::size_t j = 0; j < adopted.tokens.size(); j++) {
                const TokenRecord &want =
                    priv.tokens[j + static_cast<std::size_t>(skipped)];
                EXPECT_EQ(want.pos, adopted.tokens[j].pos);
                EXPECT_EQ(want.out_mix, adopted.tokens[j].out_mix)
                    << "token " << adopted.tokens[j].pos
                    << " threads=" << threads;
                EXPECT_EQ(want.step_mix, adopted.tokens[j].step_mix)
                    << "token " << adopted.tokens[j].pos
                    << " threads=" << threads;
            }
        }
    }
}

/**
 * The windowed scan order is by definition a filter of the full
 * order: for any (seq_len, tile, head_tail, sink, window_start) —
 * out-of-range live bounds included, the overload clamps — the 5-arg
 * istaScanOrderInto must emit exactly the subsequence of the 4-arg
 * order whose keys satisfy `j < sink || j >= window_start`. That
 * subsequence property is what lets DecodeEngine drop the per-key
 * retention test from its scan loop, so it is fuzzed directly here.
 */
TEST(ModelEngineFuzz, WindowedScanOrderIsFilteredFullOrder)
{
    constexpr uint64_t kBase = 0x5ca12f117e2ULL;
    constexpr int kTrials = 500;
    std::vector<int> full;
    std::vector<int> windowed;
    std::vector<int> expect;
    for (int i = 0; i < kTrials; i++) {
        uint64_t state = kBase + static_cast<uint64_t>(i);
        const uint64_t seed = splitMix64(state);
        Rng rng(seed);
        const int seq_len = static_cast<int>(rng.range(1, 300));
        const int tile = static_cast<int>(rng.range(1, 40));
        const bool head_tail = rng.bernoulli(0.5);
        const int sink = static_cast<int>(rng.range(0, seq_len + 8));
        const int win = static_cast<int>(rng.range(0, seq_len + 8));
        std::ostringstream os;
        os << "seed=" << seed << " seq=" << seq_len << " tile=" << tile
           << " head_tail=" << head_tail << " sink=" << sink
           << " win=" << win;
        SCOPED_TRACE(os.str());

        istaScanOrderInto(seq_len, tile, head_tail, full);
        istaScanOrderInto(seq_len, tile, head_tail, sink, win,
                          windowed);
        const int live_sink = std::min(sink, seq_len);
        const int live_win = std::min(win, seq_len);
        expect.clear();
        for (int j : full)
            if (j < live_sink || j >= live_win)
                expect.push_back(j);
        EXPECT_EQ(windowed, expect);

        // window_start = 0 keeps every key live: the windowed order
        // must reproduce the full order verbatim (the nothing-evicted
        // degenerate case the engine hits on short streams).
        istaScanOrderInto(seq_len, tile, head_tail, sink, 0, windowed);
        EXPECT_EQ(windowed, full);
    }
}

/**
 * A retention window wide enough to cover the whole stream never
 * evicts, so the windowed engine — live-range scan order, touched-set
 * scratch clearing and all — must be bit-identical to the same trial
 * with retention disabled, including PruneStats.
 */
TEST(ModelEngineFuzz, CoveringWindowMatchesRetentionOff)
{
    constexpr uint64_t kBase = 0xc0ffee11aaULL;
    constexpr int kTrials = 40;
    for (int i = 0; i < kTrials; i++) {
        uint64_t state = kBase + static_cast<uint64_t>(i);
        const uint64_t seed = splitMix64(state);
        TrialConfig t = drawTrial(seed, /*with_prefix=*/false);
        t.retention = RetentionPolicy{};
        if (t.spec.decode_steps == 0)
            t.spec.decode_steps = 2; // exercise the decode scan too
        SCOPED_TRACE(t.describe(seed));

        const RunResult bare =
            runModel(t, /*pipeline=*/true, /*threads=*/2, t.chunks);

        TrialConfig covered = t;
        uint64_t knob_state = seed ^ 0xc0;
        Rng rng(splitMix64(knob_state));
        covered.retention.sink_tokens = static_cast<int>(rng.range(0, 4));
        covered.retention.recency_tokens =
            t.spec.prompt_len + t.spec.decode_steps +
            static_cast<int>(rng.range(1, 9));
        const RunResult windowed = runModel(covered, /*pipeline=*/true,
                                            /*threads=*/2, t.chunks);
        expectRunsIdentical(bare, windowed, "covering-window");
    }
}

/**
 * Windowed (actually-evicting) streams are checksum-stable across
 * everything that must not matter: the serial-vs-pipelined schedule
 * at several thread counts, the prefill chunking, and the QK kernel
 * (kScalar / kPopcount / kSimd are bit-identical by contract, and the
 * live-range order must not break that).
 */
TEST(ModelEngineFuzz, WindowedRunStableAcrossKernelsChunksThreads)
{
    constexpr uint64_t kBase = 0x91d0e5caULL;
    constexpr int kTrials = 30;
    for (int i = 0; i < kTrials; i++) {
        uint64_t state = kBase + static_cast<uint64_t>(i);
        const uint64_t seed = splitMix64(state);
        TrialConfig t = drawTrial(seed, /*with_prefix=*/false);
        // Force an evicting window: sink + recency well inside the
        // stream so middle keys actually die and the windowed order
        // diverges from the full order.
        t.retention.sink_tokens = t.page_tokens;
        t.retention.recency_tokens = 2 * t.page_tokens;
        t.spec.prompt_len =
            std::max(t.spec.prompt_len, 4 * t.page_tokens + 5);
        t.spec.decode_steps = std::max(t.spec.decode_steps, 3);
        t.kernel = QkKernel::kScalar;
        SCOPED_TRACE(t.describe(seed));
        // (runModel feeds any prompt tail past t.chunks as one final
        // chunk, so the grown prompt still has a valid split.)

        const RunResult oracle =
            runModel(t, /*pipeline=*/false, /*threads=*/1, t.chunks);
        for (int threads : {1, 2, 8}) {
            const RunResult piped =
                runModel(t, /*pipeline=*/true, threads, t.chunks);
            expectRunsIdentical(oracle, piped, "windowed-pipelined");
        }
        const std::vector<int> whole{t.spec.prompt_len};
        const RunResult onechunk =
            runModel(t, /*pipeline=*/true, 2, whole);
        expectRunsIdentical(oracle, onechunk, "windowed-one-chunk");
        for (QkKernel k : {QkKernel::kPopcount, QkKernel::kSimd}) {
            TrialConfig alt = t;
            alt.kernel = k;
            const RunResult crossed =
                runModel(alt, /*pipeline=*/true, 2, t.chunks);
            expectRunsIdentical(oracle, crossed, "windowed-kernel");
        }
    }
}

} // namespace
} // namespace pade

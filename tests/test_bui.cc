/**
 * @file
 * Property tests for the bit-wise uncertainty interval (BUI), including
 * the paper's Fig. 6 worked example.
 */

#include <gtest/gtest.h>

#include "common/rng.h"
#include "core/bui.h"
#include "quant/bitplane.h"

namespace pade {
namespace {

MatrixI8
randomInt8(int r, int c, uint64_t seed, int bits = 8)
{
    Rng rng(seed);
    MatrixI8 m(r, c);
    const int lo = -(1 << (bits - 1));
    const int hi = (1 << (bits - 1)) - 1;
    for (int i = 0; i < r; i++)
        for (int j = 0; j < c; j++)
            m.at(i, j) = static_cast<int8_t>(rng.range(lo, hi));
    return m;
}

TEST(Bui, QsumDecomposition)
{
    std::vector<int8_t> q = {5, -3, 0, 7, -2};
    const BuiTable t = computeBuiTable(q, 8);
    EXPECT_EQ(t.qsum, 7);
    EXPECT_EQ(t.qsum_pos, 12);
    EXPECT_EQ(t.qsum_neg, -5);
    EXPECT_EQ(t.qsum, t.qsum_pos + t.qsum_neg);
}

TEST(Bui, IntervalSigns)
{
    std::vector<int8_t> q = {5, -3, 7};
    const BuiTable t = computeBuiTable(q, 8);
    for (int r = 0; r < 8; r++) {
        EXPECT_LE(t.lower(r), 0);
        EXPECT_GE(t.upper(r), 0);
    }
}

TEST(Bui, IntervalCollapsesAtLsb)
{
    std::vector<int8_t> q = {5, -3, 7, 100, -100};
    const BuiTable t = computeBuiTable(q, 8);
    EXPECT_EQ(t.lower(7), 0);
    EXPECT_EQ(t.upper(7), 0);
}

TEST(Bui, IntervalShrinksMonotonically)
{
    std::vector<int8_t> q = {5, -3, 7, 100, -100, 1};
    const BuiTable t = computeBuiTable(q, 8);
    for (int r = 1; r < 8; r++) {
        EXPECT_GE(t.lower(r), t.lower(r - 1));
        EXPECT_LE(t.upper(r), t.upper(r - 1));
    }
}

TEST(Bui, Fig6WorkedExample)
{
    // 6-bit format with two fractional bits: integers are 4x the
    // fractional values. Q = [6, -5, 9, -4]; after the MSB plane the
    // paper reports I^{0,min} = -69.75 and I^{0,max} = +116.25.
    std::vector<int8_t> q = {6, -5, 9, -4};
    const BuiTable t = computeBuiTable(q, 6);
    // M_0 = 2^5 - 1 = 31 integer units = 7.75 fractional.
    EXPECT_DOUBLE_EQ(t.lower(0) / 4.0, -69.75);
    EXPECT_DOUBLE_EQ(t.upper(0) / 4.0, 116.25);
    // With (MSB, MSB-1) known (paper Fig. 6(b)): M_1 = 15 -> 3.75.
    EXPECT_DOUBLE_EQ(t.lower(1) / 4.0, -33.75);
    EXPECT_DOUBLE_EQ(t.upper(1) / 4.0, 56.25);
}

TEST(Bui, Fig6BoundsOnScores)
{
    // Continue the worked example: S^0 = -32 gives bounds
    // [-101.75, 84.25] (paper Fig. 6(a)).
    std::vector<int8_t> q = {6, -5, 9, -4};
    MatrixI8 k(1, 4);
    k.at(0, 0) = 0;
    k.at(0, 1) = -1;
    k.at(0, 2) = -32;
    k.at(0, 3) = 31;
    BitPlaneSet planes(k, 6);
    const BuiTable t = computeBuiTable(q, 6);

    const int64_t s0 = partialDot(q, planes, 0, 0);
    EXPECT_DOUBLE_EQ(s0 / 4.0, -32.0);
    EXPECT_DOUBLE_EQ((s0 + t.lower(0)) / 4.0, -101.75);
    EXPECT_DOUBLE_EQ((s0 + t.upper(0)) / 4.0, 84.25);
}

/**
 * Core soundness property (parameterized over bit width): at every
 * plane depth r, the exact dot product lies inside
 * [S^r + I^{r,min}, S^r + I^{r,max}], and the bounds nest as r grows.
 */
class BuiSoundnessTest : public ::testing::TestWithParam<int>
{
};

TEST_P(BuiSoundnessTest, BoundsContainExactScore)
{
    const int bits = GetParam();
    const int dims = 48;
    const int keys = 32;
    MatrixI8 q = randomInt8(4, dims, 500 + bits, 8);
    MatrixI8 k = randomInt8(keys, dims, 600 + bits, bits);
    BitPlaneSet planes(k, bits);

    for (int i = 0; i < 4; i++) {
        const BuiTable t = computeBuiTable(q.row(i), bits);
        for (int j = 0; j < keys; j++) {
            const int64_t exact = exactDot(q.row(i), planes, j);
            int64_t prev_lb = INT64_MIN;
            int64_t prev_ub = INT64_MAX;
            for (int r = 0; r < bits; r++) {
                const int64_t s = partialDot(q.row(i), planes, j, r);
                const int64_t lb = s + t.lower(r);
                const int64_t ub = s + t.upper(r);
                ASSERT_LE(lb, exact)
                    << "bits=" << bits << " r=" << r;
                ASSERT_GE(ub, exact)
                    << "bits=" << bits << " r=" << r;
                // Nesting: more planes never widen the interval.
                ASSERT_GE(lb, prev_lb);
                ASSERT_LE(ub, prev_ub);
                prev_lb = lb;
                prev_ub = ub;
            }
            // Interval collapses exactly at the LSB.
            const int64_t s_last =
                partialDot(q.row(i), planes, j, bits - 1);
            ASSERT_EQ(s_last, exact);
        }
    }
}

INSTANTIATE_TEST_SUITE_P(Widths, BuiSoundnessTest,
                         ::testing::Values(4, 6, 8));

TEST(Bui, GroupCombineMatchesPaperFig25Structure)
{
    // Two groups with different scales; the combined interval is the
    // scale-weighted sum.
    std::vector<int64_t> lo = {-100, -50};
    std::vector<int64_t> hi = {200, 80};
    std::vector<float> scales = {0.5f, 2.0f};
    const auto [l, h] = combineGroupBui(lo, hi, scales);
    EXPECT_DOUBLE_EQ(l, -100 * 0.5 + -50 * 2.0);
    EXPECT_DOUBLE_EQ(h, 200 * 0.5 + 80 * 2.0);
}

TEST(Bui, GroupCombineSoundness)
{
    // Split a 64-dim dot product into two 32-dim groups and verify the
    // combined group-wise interval still contains the exact value.
    Rng rng(321);
    MatrixI8 q = randomInt8(1, 64, 700);
    MatrixI8 k = randomInt8(1, 64, 701);
    BitPlaneSet full(k, 8);
    const int64_t exact = exactDot(q.row(0), full, 0);

    // Per-group tables and partial scores at plane depth r.
    MatrixI8 k0(1, 32);
    MatrixI8 k1(1, 32);
    for (int d = 0; d < 32; d++) {
        k0.at(0, d) = k.at(0, d);
        k1.at(0, d) = k.at(0, d + 32);
    }
    BitPlaneSet p0(k0, 8);
    BitPlaneSet p1(k1, 8);
    std::vector<int8_t> q0(q.row(0).begin(), q.row(0).begin() + 32);
    std::vector<int8_t> q1(q.row(0).begin() + 32, q.row(0).end());
    const BuiTable t0 = computeBuiTable(q0, 8);
    const BuiTable t1 = computeBuiTable(q1, 8);

    for (int r = 0; r < 8; r++) {
        const int64_t s0 = partialDot(q0, p0, 0, r);
        const int64_t s1 = partialDot(q1, p1, 0, r);
        std::vector<int64_t> lo = {s0 + t0.lower(r), s1 + t1.lower(r)};
        std::vector<int64_t> hi = {s0 + t0.upper(r), s1 + t1.upper(r)};
        std::vector<float> scales = {1.0f, 1.0f};
        const auto [l, h] = combineGroupBui(lo, hi, scales);
        EXPECT_LE(l, static_cast<double>(exact));
        EXPECT_GE(h, static_cast<double>(exact));
    }
}

} // namespace
} // namespace pade

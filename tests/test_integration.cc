/**
 * @file
 * Cross-module integration sweeps: the full pipeline (generator ->
 * quantization -> fused attention -> cycle simulator) must uphold its
 * invariants across seeds, models, sequence lengths and bit-widths.
 */

#include <gtest/gtest.h>

#include <cmath>

#include "arch/pade_accelerator.h"
#include "attention/metrics.h"
#include "attention/reference.h"
#include "core/pade_attention.h"
#include "workload/generator.h"

namespace pade {
namespace {

struct SweepParam
{
    uint64_t seed;
    int seq;
    int head_dim;
    int bits;
};

class PipelineSweep : public ::testing::TestWithParam<SweepParam>
{
};

TEST_P(PipelineSweep, EndToEndInvariants)
{
    const SweepParam p = GetParam();
    WorkloadSpec spec;
    spec.seq_len = p.seq;
    spec.query_len = 8;
    spec.head_dim = p.head_dim;
    spec.concentration = 1.25;
    spec.locality = 0.6;
    spec.seed = p.seed;

    const AttentionHead head = generateHead(spec);
    const QuantizedHead qh = quantizeHead(head, p.bits);

    PadeConfig cfg;
    cfg.alpha = 0.7;
    cfg.radius = 10.0;
    const PadeResult res = padeAttention(qh, cfg);

    // 1. Exactness: output == masked attention on dequantized ops.
    const MatrixF ref = maskedAttention(dequantize(qh.q),
                                        dequantize(qh.k),
                                        dequantize(qh.v), head.scale,
                                        res.keep);
    ASSERT_LT(relativeError(res.out, ref), 1e-4)
        << "seed=" << p.seed << " seq=" << p.seq;

    // 2. Every row keeps its argmax key (never prunes the max).
    const MatrixF logits = attentionLogits(head.q, head.k, head.scale);
    for (int i = 0; i < logits.rows(); i++) {
        int argmax = 0;
        for (int j = 1; j < logits.cols(); j++)
            if (logits.at(i, j) > logits.at(i, argmax))
                argmax = j;
        // The INT-domain argmax can differ by quantization at the
        // very top; accept keeping either the FP argmax or a key
        // within one quantization step of it.
        if (!res.keep.at(i, argmax)) {
            float best_kept = -1e30f;
            for (int j = 0; j < logits.cols(); j++)
                if (res.keep.at(i, j))
                    best_kept = std::max(best_kept, logits.at(i, j));
            EXPECT_GT(best_kept,
                      logits.at(i, argmax) - 0.5f)
                << "row " << i;
        }
    }

    // 3. Work accounting bounds.
    EXPECT_LE(res.stats.planes_processed, res.stats.planes_total);
    EXPECT_LE(res.stats.ops_bs, res.stats.ops_naive);
    EXPECT_LE(res.stats.keys_retained, res.stats.keys_total);

    // 4. Cycle simulator consumes the same workload coherently.
    ArchConfig arch;
    arch.algo = cfg;
    const RunMetrics m = PadeAccelerator(arch).runHead(qh);
    EXPECT_GT(m.time_ns, 0.0);
    EXPECT_GT(m.dram_bytes, 0u);
    // Traffic never exceeds a dense stream of K planes (+slack for V,
    // outputs, and burst rounding).
    const double dense_k = static_cast<double>(p.seq) * p.bits *
        qh.k_planes.planeBytes();
    const double v_all = static_cast<double>(p.seq) * p.head_dim;
    EXPECT_LT(static_cast<double>(m.dram_bytes),
              1.3 * (dense_k + v_all) + 65536.0);
    // Energy buckets are all populated and finite.
    EXPECT_GT(m.energy.compute_pj, 0.0);
    EXPECT_GT(m.energy.dram_pj, 0.0);
    EXPECT_TRUE(std::isfinite(m.energy.total()));
}

INSTANTIATE_TEST_SUITE_P(
    Sweep, PipelineSweep,
    ::testing::Values(SweepParam{1, 256, 64, 8},
                      SweepParam{2, 512, 64, 8},
                      SweepParam{3, 512, 128, 8},
                      SweepParam{4, 1024, 128, 8},
                      SweepParam{5, 256, 64, 4},
                      SweepParam{6, 512, 128, 4},
                      SweepParam{7, 333, 96, 8},
                      SweepParam{8, 1024, 64, 6}));

TEST(Integration, DeterministicAcrossRuns)
{
    WorkloadSpec spec;
    spec.seq_len = 512;
    spec.seed = 99;
    const QuantizedHead qh = quantizeHead(generateHead(spec));
    const PadeResult a = padeAttention(qh);
    const PadeResult b = padeAttention(qh);
    EXPECT_TRUE(a.keep == b.keep);
    EXPECT_EQ(a.stats.planes_processed, b.stats.planes_processed);
    const RunMetrics m1 = PadeAccelerator().runHead(qh);
    const RunMetrics m2 = PadeAccelerator().runHead(qh);
    EXPECT_DOUBLE_EQ(m1.time_ns, m2.time_ns);
    EXPECT_DOUBLE_EQ(m1.energy.total(), m2.energy.total());
}

TEST(Integration, MoreAggressiveNeverCostsMore)
{
    WorkloadSpec spec;
    spec.seq_len = 1024;
    spec.seed = 7;
    const QuantizedHead qh = quantizeHead(generateHead(spec));
    double prev_bytes = 1e18;
    for (double alpha : {1.0, 0.6, 0.2}) {
        ArchConfig arch;
        arch.algo.alpha = alpha;
        arch.algo.radius = 10.0;
        const RunMetrics m = PadeAccelerator(arch).runHead(qh);
        EXPECT_LE(static_cast<double>(m.dram_bytes),
                  prev_bytes * 1.01)
            << "alpha=" << alpha;
        prev_bytes = static_cast<double>(m.dram_bytes);
    }
}

} // namespace
} // namespace pade

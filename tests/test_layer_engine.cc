/**
 * @file
 * Model-granularity serving tests: GQA grouped execution against the
 * per-head-private-cache oracle, chunked-prefill bit-identity with
 * whole-prompt causal padeAttention, KV retention/eviction, and the
 * deterministic KV-head fan-out.
 */

#include <gtest/gtest.h>

#include <algorithm>
#include <bit>
#include <cmath>
#include <cstdint>
#include <vector>

#include "core/pade_attention.h"
#include "core/simd/qk_dispatch.h"
#include "runtime/thread_pool.h"
#include "serving/decode_engine.h"
#include "serving/kv_cache.h"
#include "serving/layer_engine.h"
#include "workload/generator.h"

namespace pade {
namespace {

/** Bitwise float-row comparison (the exactness bar of PRs 2-5). */
void
expectRowsBitEqual(std::span<const float> a, std::span<const float> b,
                   const char *what)
{
    ASSERT_EQ(a.size(), b.size());
    for (std::size_t d = 0; d < a.size(); d++)
        EXPECT_EQ(std::bit_cast<uint32_t>(a[d]),
                  std::bit_cast<uint32_t>(b[d]))
            << what << " dim " << d;
}

void
expectStatsEqual(const PruneStats &a, const PruneStats &b)
{
    EXPECT_EQ(a.planes_processed, b.planes_processed);
    EXPECT_EQ(a.planes_total, b.planes_total);
    EXPECT_EQ(a.keys_retained, b.keys_retained);
    EXPECT_EQ(a.keys_total, b.keys_total);
    EXPECT_EQ(a.ops_bs, b.ops_bs);
    EXPECT_EQ(a.ops_naive, b.ops_naive);
    EXPECT_EQ(a.max_updates, b.max_updates);
    EXPECT_EQ(a.rescale_ops, b.rescale_ops);
    EXPECT_EQ(a.threshold_updates, b.threshold_updates);
}

LayerSpec
smallSpec(int heads, int kv_heads, int head_dim, int bits, int prompt,
          int steps, uint64_t seed)
{
    LayerSpec spec;
    spec.heads = heads;
    spec.kv_heads = kv_heads;
    spec.head_dim = head_dim;
    spec.bits = bits;
    spec.prompt_len = prompt;
    spec.decode_steps = steps;
    spec.seed = seed;
    return spec;
}

// ---------------------------------------------------------------------
// Tentpole contract: grouped GQA decode == per-head private caches.
// ---------------------------------------------------------------------

/**
 * The acceptance oracle: every query head of the layer decodes
 * against its OWN private copy of its KV head's stream through the
 * single-query step(), and the grouped layer execution must reproduce
 * it bit for bit — outputs, keep masks, plane traces, retained lists,
 * and summed statistics.
 */
void
expectGqaMatchesPrivateCaches(int heads, int kv_heads, QkKernel kernel,
                              int bits, int head_dim, int page_tokens,
                              int pool_threads)
{
    const int prompt = 43;
    const int steps = 3;
    const LayerWorkload lw = generateLayerWorkload(
        smallSpec(heads, kv_heads, head_dim, bits, prompt, steps,
                  301u + static_cast<uint64_t>(heads * 31 + kv_heads)));
    const int group = lw.spec.groupSize();

    LayerEngineConfig lc;
    lc.heads = heads;
    lc.kv_heads = kv_heads;
    lc.head_dim = head_dim;
    lc.bits = bits;
    lc.page_tokens = page_tokens;
    lc.pade.qk_kernel = kernel;

    std::vector<float> v_scales;
    std::vector<float> logit_scales;
    for (const QuantizedHead &g : lw.groups) {
        v_scales.push_back(g.v.params.scale);
        logit_scales.push_back(g.logit_scale);
    }
    LayerEngine layer(lc, v_scales);

    // Oracle state: a private cache + engine per QUERY head, fed the
    // same KV stream as the head's group.
    std::vector<KvCache> priv_caches;
    std::vector<DecodeEngine> priv_engines;
    for (int h = 0; h < heads; h++) {
        KvCacheConfig kc;
        kc.head_dim = head_dim;
        kc.bits = bits;
        kc.page_tokens = page_tokens;
        kc.v_scale = v_scales[static_cast<std::size_t>(h / group)];
        priv_caches.emplace_back(kc);
        priv_engines.emplace_back(lc.pade);
    }

    ThreadPool pool(pool_threads);
    ThreadPool *pool_arg = pool_threads > 1 ? &pool : nullptr;

    MatrixI8 k_stage(kv_heads, head_dim);
    MatrixI8 v_stage(kv_heads, head_dim);
    MatrixI8 q_stage(heads, head_dim);
    MatrixF out(heads, head_dim);
    std::vector<float> priv_out(static_cast<std::size_t>(head_dim));

    const auto appendAll = [&](int pos) {
        lw.stageKv(pos, k_stage, v_stage);
        layer.appendToken(k_stage, v_stage);
        for (int h = 0; h < heads; h++) {
            const QuantizedHead &g = lw.groupOf(h);
            priv_caches[static_cast<std::size_t>(h)].appendToken(
                g.k.values.row(pos), g.v.values.row(pos));
        }
    };

    for (int pos = 0; pos < prompt; pos++)
        appendAll(pos);

    for (int t = 0; t < steps; t++) {
        const int pos = prompt + t;
        appendAll(pos);
        lw.stageQueries(pos, q_stage);
        const LayerStep st =
            layer.decode(q_stage, logit_scales, out, pool_arg);
        EXPECT_EQ(st.keys, pos + 1);

        int retained_sum = 0;
        for (int h = 0; h < heads; h++) {
            const int kv = h / group;
            const int g = h % group;
            const QuantizedHead &grp = lw.groupOf(h);
            const DecodeStep ds =
                priv_engines[static_cast<std::size_t>(h)].step(
                    priv_caches[static_cast<std::size_t>(h)],
                    grp.q.values.row(lw.queryRow(h, pos)),
                    grp.logit_scale, priv_out);
            retained_sum += ds.retained;

            expectRowsBitEqual(out.row(h), priv_out, "decode out");

            const DecodeEngine &ge = layer.engine(kv);
            const DecodeEngine &pe =
                priv_engines[static_cast<std::size_t>(h)];
            auto gk = ge.lastKeep(g);
            auto pk = pe.lastKeep();
            auto gp = ge.lastPlanes(g);
            auto pp = pe.lastPlanes();
            ASSERT_EQ(gk.size(), pk.size());
            for (std::size_t j = 0; j < gk.size(); j++) {
                EXPECT_EQ(gk[j], pk[j]) << "keep " << j;
                EXPECT_EQ(gp[j], pp[j]) << "planes " << j;
            }
            auto gr = ge.lastRetained(g);
            auto pr = pe.lastRetained();
            ASSERT_EQ(gr.size(), pr.size());
            for (std::size_t j = 0; j < gr.size(); j++)
                EXPECT_EQ(gr[j], pr[j]);
        }
        EXPECT_EQ(st.retained, retained_sum);
    }

    PruneStats priv_sum;
    for (const DecodeEngine &e : priv_engines)
        priv_sum += e.stats();
    expectStatsEqual(layer.stats(), priv_sum);
}

TEST(LayerEngine, GqaParityAcrossKvHeadCounts)
{
    // The satellite matrix: kv_heads in {1, 4, heads} at heads = 8.
    for (int kv_heads : {1, 4, 8})
        expectGqaMatchesPrivateCaches(8, kv_heads,
                                      QkKernel::kPopcount, 8, 64, 16,
                                      1);
}

TEST(LayerEngine, GqaParityAllKernels)
{
    for (QkKernel k :
         {QkKernel::kScalar, QkKernel::kPopcount, QkKernel::kSimd})
        expectGqaMatchesPrivateCaches(4, 2, k, 8, 64, 16, 1);
}

TEST(LayerEngine, GqaParityOddHeadDimAndInt4)
{
    // Odd head_dims exercise the SIMD tail path; int4 the narrow
    // planes; page_tokens = 10 puts page boundaries inside tiles.
    for (QkKernel k :
         {QkKernel::kScalar, QkKernel::kPopcount, QkKernel::kSimd}) {
        expectGqaMatchesPrivateCaches(4, 1, k, 4, 65, 10, 1);
        expectGqaMatchesPrivateCaches(4, 2, k, 4, 97, 16, 1);
    }
}

TEST(LayerEngine, GqaParityWithThreadPoolFanOut)
{
    // The pooled KV-head fan-out must not change a single bit.
    expectGqaMatchesPrivateCaches(8, 4, QkKernel::kPopcount, 8, 64,
                                  16, 4);
}

// ---------------------------------------------------------------------
// Chunked prefill == whole-prompt causal padeAttention.
// ---------------------------------------------------------------------

/**
 * Score a full prompt through LayerEngine in chunks of @p chunk and
 * compare, per query head, with ONE whole-prompt padeAttention call
 * under cfg.causal — outputs, keep masks, plane traces, and the
 * per-group stats totals must be bit-identical regardless of the
 * chunking.
 */
void
expectPrefillMatchesWholePrompt(int chunk, QkKernel kernel, int bits,
                                int head_dim)
{
    const int heads = 4;
    const int kv_heads = 2;
    const int prompt = 52;
    const LayerWorkload lw = generateLayerWorkload(smallSpec(
        heads, kv_heads, head_dim, bits, prompt, 0,
        700u + static_cast<uint64_t>(chunk)));
    const int group = lw.spec.groupSize();

    LayerEngineConfig lc;
    lc.heads = heads;
    lc.kv_heads = kv_heads;
    lc.head_dim = head_dim;
    lc.bits = bits;
    lc.page_tokens = 16;
    lc.pade.qk_kernel = kernel;

    std::vector<float> v_scales;
    std::vector<float> logit_scales;
    for (const QuantizedHead &g : lw.groups) {
        v_scales.push_back(g.v.params.scale);
        logit_scales.push_back(g.logit_scale);
    }
    LayerEngine layer(lc, v_scales);

    MatrixI8 k_stage(kv_heads, head_dim);
    MatrixI8 v_stage(kv_heads, head_dim);
    MatrixI8 q_stage(heads, head_dim);
    MatrixF out(heads, head_dim);

    // Chunked scored prefill, recording every position's outputs and
    // per-head keep/plane traces as they stream out.
    std::vector<MatrixF> outs(static_cast<std::size_t>(prompt));
    std::vector<std::vector<std::vector<uint8_t>>> keeps(
        static_cast<std::size_t>(heads));
    std::vector<std::vector<std::vector<uint8_t>>> planes(
        static_cast<std::size_t>(heads));
    for (int h = 0; h < heads; h++) {
        keeps[static_cast<std::size_t>(h)].resize(
            static_cast<std::size_t>(prompt));
        planes[static_cast<std::size_t>(h)].resize(
            static_cast<std::size_t>(prompt));
    }
    for (int base = 0; base < prompt; base += chunk) {
        const int n = std::min(chunk, prompt - base);
        for (int t = 0; t < n; t++) {
            lw.stageKv(base + t, k_stage, v_stage);
            layer.appendToken(k_stage, v_stage);
        }
        for (int t = 0; t < n; t++) {
            const int pos = base + t;
            lw.stageQueries(pos, q_stage);
            layer.prefillPosition(q_stage, pos, prompt, logit_scales,
                                  out);
            outs[static_cast<std::size_t>(pos)] = out;
            for (int h = 0; h < heads; h++) {
                const DecodeEngine &e = layer.engine(h / group);
                auto k = e.lastKeep(h % group);
                auto p = e.lastPlanes(h % group);
                keeps[static_cast<std::size_t>(h)]
                     [static_cast<std::size_t>(pos)]
                         .assign(k.begin(), k.end());
                planes[static_cast<std::size_t>(h)]
                      [static_cast<std::size_t>(pos)]
                          .assign(p.begin(), p.end());
            }
        }
    }

    // Whole-prompt reference per query head: its prompt query rows
    // (shared group quantization params) against the group's K/V,
    // causally masked. generateHead fixes scale = 1/sqrt(head_dim).
    const float base_scale =
        1.0f / std::sqrt(static_cast<float>(head_dim));
    PadeConfig ref_cfg = lc.pade;
    ref_cfg.causal = true;
    std::vector<PruneStats> group_ref(
        static_cast<std::size_t>(kv_heads));
    for (int h = 0; h < heads; h++) {
        const QuantizedHead &grp = lw.groupOf(h);
        MatrixI8 qrows(prompt, head_dim);
        for (int pos = 0; pos < prompt; pos++)
            std::ranges::copy(
                grp.q.values.row(lw.queryRow(h, pos)),
                qrows.row(pos).begin());
        MatrixI8 krows(prompt, head_dim);
        MatrixI8 vrows(prompt, head_dim);
        for (int pos = 0; pos < prompt; pos++) {
            std::ranges::copy(grp.k.values.row(pos),
                              krows.row(pos).begin());
            std::ranges::copy(grp.v.values.row(pos),
                              vrows.row(pos).begin());
        }
        const QuantizedHead ref(
            Quantized{std::move(qrows), grp.q.params},
            Quantized{std::move(krows), grp.k.params},
            Quantized{std::move(vrows), grp.v.params}, bits,
            base_scale);
        ASSERT_EQ(ref.logit_scale, grp.logit_scale);
        const PadeResult r = padeAttention(ref, ref_cfg);
        group_ref[static_cast<std::size_t>(h / group)] += r.stats;

        for (int pos = 0; pos < prompt; pos++) {
            expectRowsBitEqual(
                outs[static_cast<std::size_t>(pos)].row(h),
                r.out.row(pos), "prefill out");
            const auto &k = keeps[static_cast<std::size_t>(h)]
                                 [static_cast<std::size_t>(pos)];
            const auto &p = planes[static_cast<std::size_t>(h)]
                                  [static_cast<std::size_t>(pos)];
            ASSERT_EQ(static_cast<int>(k.size()), prompt);
            for (int j = 0; j < prompt; j++) {
                EXPECT_EQ(k[static_cast<std::size_t>(j)],
                          r.keep.at(pos, j))
                    << "head " << h << " pos " << pos << " key " << j;
                EXPECT_EQ(p[static_cast<std::size_t>(j)],
                          r.planes.at(pos, j))
                    << "head " << h << " pos " << pos << " key " << j;
            }
        }
    }
    for (int kv = 0; kv < kv_heads; kv++)
        expectStatsEqual(layer.engine(kv).stats(),
                         group_ref[static_cast<std::size_t>(kv)]);
}

TEST(ChunkedPrefill, BitIdenticalToWholePromptAcrossChunkings)
{
    // Chunk sizes: sub-tile, tile-aligned, whole prompt at once.
    for (int chunk : {7, 16, 52})
        expectPrefillMatchesWholePrompt(chunk, QkKernel::kPopcount, 8,
                                        64);
}

TEST(ChunkedPrefill, BitIdenticalForAllKernelsAndInt4)
{
    for (QkKernel k :
         {QkKernel::kScalar, QkKernel::kPopcount, QkKernel::kSimd})
        expectPrefillMatchesWholePrompt(16, k, 8, 64);
    expectPrefillMatchesWholePrompt(16, QkKernel::kSimd, 4, 65);
}

// ---------------------------------------------------------------------
// KV eviction: dropPagesBefore + the sink/recency retention policy.
// ---------------------------------------------------------------------

TEST(KvCacheEviction, DropPagesBeforeFreesWholePagesOnly)
{
    KvCacheConfig kc;
    kc.head_dim = 16;
    kc.page_tokens = 8;
    KvCache cache(kc);
    std::vector<int8_t> row(16, 1);
    for (int t = 0; t < 26; t++)
        cache.appendToken(row, row);
    ASSERT_EQ(cache.numPages(), 4);
    const std::size_t full_bytes = cache.bytesUsed();

    // Token 9 lives in page 1: only page 0 is wholly before it.
    cache.dropPagesBefore(9);
    EXPECT_EQ(cache.firstLiveToken(), 8);
    EXPECT_EQ(cache.numPages(), 4);
    EXPECT_EQ(cache.livePages(), 3);
    EXPECT_LT(cache.bytesUsed(), full_bytes);

    // Surviving tokens keep their global indices and contents.
    EXPECT_EQ(cache.pageOf(8), 1);
    EXPECT_EQ(static_cast<int>(cache.valueRow(8).size()), 16);
    EXPECT_EQ(cache.pagePlanes(cache.pageOf(20)).numRows(), 8);

    // Dropping at a page boundary frees through the boundary; the
    // partial tail page always survives.
    cache.dropPagesBefore(24);
    EXPECT_EQ(cache.firstLiveToken(), 24);
    EXPECT_EQ(cache.livePages(), 1);
    // Idempotent / monotonic: an earlier horizon is a no-op.
    cache.dropPagesBefore(4);
    EXPECT_EQ(cache.firstLiveToken(), 24);

    // Appends continue normally after eviction.
    for (int t = 26; t < 34; t++)
        cache.appendToken(row, row);
    EXPECT_EQ(cache.size(), 34);
    EXPECT_EQ(cache.pageOf(33), 4);
    EXPECT_EQ(cache.rowOf(33), 1);
}

TEST(KvCacheEviction, DropPagesInReclaimsDeadMiddlePages)
{
    // Regression: dropPagesBefore can only free from the stream front,
    // so a sink-pinned stream (page 0 alive forever) used to retain
    // every page between the sinks and the recency window. dropPagesIn
    // nulls those middle slots in place — indices never renumber.
    KvCacheConfig kc;
    kc.head_dim = 16;
    kc.page_tokens = 8;
    KvCache cache(kc);
    std::vector<int8_t> row(16, 1);
    for (int t = 0; t < 42; t++)
        cache.appendToken(row, row);
    ASSERT_EQ(cache.numPages(), 6);
    const std::size_t full_bytes = cache.bytesUsed();

    // Tokens [8, 32) are dead: pages 1..3 die, page 0 (sinks) and the
    // recency pages survive. No renumbering: firstLiveToken stays 0.
    cache.dropPagesIn(8, 32);
    EXPECT_EQ(cache.firstLiveToken(), 0);
    EXPECT_EQ(cache.numPages(), 6);
    EXPECT_EQ(cache.livePages(), 3);
    EXPECT_LT(cache.bytesUsed(), full_bytes);
    EXPECT_TRUE(cache.pageLive(0));
    for (int p = 1; p <= 3; p++)
        EXPECT_FALSE(cache.pageLive(p));
    EXPECT_TRUE(cache.pageLive(4));
    EXPECT_TRUE(cache.pageLive(5));

    // Live tokens on both sides of the hole stay addressable.
    EXPECT_EQ(static_cast<int>(cache.valueRow(7).size()), 16);
    EXPECT_EQ(static_cast<int>(cache.valueRow(33).size()), 16);

    // Partially-dead pages survive: killing [4, 12) covers no whole
    // live page (page 0 has live tokens 0..3, page 1 is gone already).
    cache.dropPagesIn(4, 12);
    EXPECT_TRUE(cache.pageLive(0));

    // The append frontier never dies, even when its tokens are all in
    // range — appendToken must not resurrect a reclaimed slot.
    cache.dropPagesIn(40, 48);
    EXPECT_TRUE(cache.pageLive(5));
    for (int t = 42; t < 50; t++)
        cache.appendToken(row, row);
    EXPECT_EQ(cache.size(), 50);
    EXPECT_EQ(cache.pageOf(49), 6);
    EXPECT_EQ(cache.livePages(), 4);

    // Middle holes compose with front eviction: the horizon moving
    // past the hole re-frees from the front without double-counting.
    cache.dropPagesBefore(16);
    EXPECT_EQ(cache.firstLiveToken(), 16);
    EXPECT_EQ(cache.livePages(), 3);
}

TEST(KvCacheEvictionDeathTest, TouchingReclaimedMiddlePageAborts)
{
    KvCacheConfig kc;
    kc.head_dim = 8;
    kc.page_tokens = 4;
    KvCache cache(kc);
    std::vector<int8_t> row(8, 1);
    for (int t = 0; t < 12; t++)
        cache.appendToken(row, row);
    cache.dropPagesIn(4, 8); // page 1 dies
    ASSERT_FALSE(cache.pageLive(1));
    // Liveness is a hard invariant of the scan side: reading a
    // reclaimed slot is a use-after-free, not a soft miss.
    EXPECT_DEATH((void)cache.valueRow(5), "PADE_CHECK");
    EXPECT_DEATH((void)cache.pagePlanes(1), "PADE_CHECK");
}

TEST(Retention, SinkPinnedStreamReclaimsDeadMiddleBitIdentically)
{
    // The satellite regression: with sinks pinned, applyRetention now
    // frees the dead middle via dropPagesIn — and because the scan
    // only visits kept tokens, decode over the holed cache is bit-
    // identical to decode over the never-evicted one.
    const int head_dim = 32;
    const int prompt = 56;
    const int steps = 6;
    WorkloadSpec spec;
    spec.seq_len = prompt + steps;
    spec.query_len = steps;
    spec.head_dim = head_dim;
    spec.seed = 29;
    const QuantizedHead full = quantizeHead(generateHead(spec), 8);

    KvCacheConfig kc;
    kc.head_dim = head_dim;
    kc.page_tokens = 8;
    kc.v_scale = full.v.params.scale;
    KvCache evicted(kc);
    KvCache resident(kc);

    RetentionPolicy sinks;
    sinks.sink_tokens = 8;
    sinks.recency_tokens = 16;
    DecodeEngine on_evicted{PadeConfig{}, sinks};
    DecodeEngine on_resident{PadeConfig{}, sinks};

    std::vector<float> out_a(head_dim);
    std::vector<float> out_b(head_dim);
    for (int t = 0; t < prompt; t++) {
        evicted.appendToken(full.k.values.row(t), full.v.values.row(t));
        resident.appendToken(full.k.values.row(t),
                             full.v.values.row(t));
    }
    for (int t = 0; t < steps; t++) {
        const int pos = prompt + t;
        evicted.appendToken(full.k.values.row(pos),
                            full.v.values.row(pos));
        resident.appendToken(full.k.values.row(pos),
                             full.v.values.row(pos));
        const DecodeStep a = on_evicted.step(
            evicted, full.q.values.row(t), full.logit_scale, out_a);
        on_evicted.applyRetention(evicted);
        const DecodeStep b = on_resident.step(
            resident, full.q.values.row(t), full.logit_scale, out_b);
        EXPECT_EQ(a.keys, b.keys);
        EXPECT_EQ(a.retained, b.retained);
        EXPECT_EQ(a.planes, b.planes);
        expectRowsBitEqual(out_a, out_b, "middle-drop parity");
    }
    expectStatsEqual(on_evicted.stats(), on_resident.stats());

    // And memory really came back: sinks pin page 0 so the front is
    // frozen, yet whole middle pages are gone.
    EXPECT_EQ(evicted.firstLiveToken(), 0);
    EXPECT_LT(evicted.livePages(), evicted.numPages());
    EXPECT_LT(evicted.bytesUsed(), resident.bytesUsed());
}

TEST(Retention, WindowCoveringHistoryIsBitIdenticalToFullDecode)
{
    // The satellite contract: when nothing is actually evicted (the
    // sink+recency window covers the whole history), retained-window
    // decode equals full-history decode bit for bit.
    const int head_dim = 48;
    const int prompt = 40;
    const int steps = 4;
    WorkloadSpec spec;
    spec.seq_len = prompt + steps;
    spec.query_len = steps;
    spec.head_dim = head_dim;
    spec.seed = 88;
    const QuantizedHead full = quantizeHead(generateHead(spec), 8);

    KvCacheConfig kc;
    kc.head_dim = head_dim;
    kc.page_tokens = 16;
    kc.v_scale = full.v.params.scale;
    KvCache cache_a(kc);
    KvCache cache_b(kc);

    RetentionPolicy wide;
    wide.sink_tokens = 8;
    wide.recency_tokens = prompt + steps; // always covers everything
    ASSERT_TRUE(wide.enabled());

    DecodeEngine plain{PadeConfig{}};
    DecodeEngine windowed{PadeConfig{}, wide};

    std::vector<float> out_a(head_dim);
    std::vector<float> out_b(head_dim);
    for (int t = 0; t < prompt; t++) {
        cache_a.appendToken(full.k.values.row(t), full.v.values.row(t));
        cache_b.appendToken(full.k.values.row(t), full.v.values.row(t));
    }
    for (int t = 0; t < steps; t++) {
        const int pos = prompt + t;
        cache_a.appendToken(full.k.values.row(pos),
                            full.v.values.row(pos));
        cache_b.appendToken(full.k.values.row(pos),
                            full.v.values.row(pos));
        const DecodeStep a = plain.step(
            cache_a, full.q.values.row(t), full.logit_scale, out_a);
        const DecodeStep b = windowed.step(
            cache_b, full.q.values.row(t), full.logit_scale, out_b);
        windowed.applyRetention(cache_b);
        EXPECT_EQ(cache_b.firstLiveToken(), 0); // sinks pin the head
        EXPECT_EQ(a.keys, b.keys);
        EXPECT_EQ(a.retained, b.retained);
        EXPECT_EQ(a.planes, b.planes);
        expectRowsBitEqual(out_a, out_b, "retention parity");
        auto ka = plain.lastKeep();
        auto kb = windowed.lastKeep();
        ASSERT_EQ(ka.size(), kb.size());
        for (std::size_t j = 0; j < ka.size(); j++)
            EXPECT_EQ(ka[j], kb[j]);
    }
    expectStatsEqual(plain.stats(), windowed.stats());
}

TEST(Retention, SlidingWindowScansOnlyTheWindowAndReclaimsPages)
{
    const int head_dim = 32;
    WorkloadSpec spec;
    spec.seq_len = 40;
    spec.query_len = 4;
    spec.head_dim = head_dim;
    spec.seed = 12;
    const QuantizedHead full = quantizeHead(generateHead(spec), 8);

    KvCacheConfig kc;
    kc.head_dim = head_dim;
    kc.page_tokens = 4;
    kc.v_scale = full.v.params.scale;
    KvCache cache(kc);

    RetentionPolicy window;
    window.sink_tokens = 0;
    window.recency_tokens = 8;
    DecodeEngine engine{PadeConfig{}, window};

    std::vector<float> out(head_dim);
    for (int t = 0; t < 36; t++)
        cache.appendToken(full.k.values.row(t), full.v.values.row(t));
    const DecodeStep st = engine.step(cache, full.q.values.row(0),
                                      full.logit_scale, out);
    EXPECT_EQ(st.keys, 8); // only the trailing window is visited
    for (int id : engine.lastRetained())
        EXPECT_GE(id, 36 - 8);

    engine.applyRetention(cache);
    // horizon = 36 - 8 = 28 -> pages 0..6 dropped (page_tokens = 4).
    EXPECT_EQ(cache.firstLiveToken(), 28);
    EXPECT_EQ(cache.livePages(), 2);

    // Decode continues over the evicted cache.
    cache.appendToken(full.k.values.row(36), full.v.values.row(36));
    const DecodeStep st2 = engine.step(cache, full.q.values.row(1),
                                       full.logit_scale, out);
    EXPECT_EQ(st2.keys, 8);
    for (float v : out)
        EXPECT_TRUE(std::isfinite(v));
}

TEST(Retention, ScoredPrefillWindowIsChunkIndependent)
{
    // The retention window during prefill anchors at the query's own
    // position (tokens 0..qpos), not at the append frontier — so the
    // scored outputs are identical no matter how the prompt is
    // chunked, and early positions always see their own (short)
    // history rather than an empty window.
    const int heads = 2;
    const int prompt = 24;
    const LayerWorkload lw = generateLayerWorkload(
        smallSpec(heads, 1, 32, 8, prompt, 0, 44));
    std::vector<float> v_scales{lw.groups[0].v.params.scale};
    std::vector<float> logit_scales{lw.groups[0].logit_scale};

    LayerEngineConfig lc;
    lc.heads = heads;
    lc.kv_heads = 1;
    lc.head_dim = 32;
    lc.page_tokens = 8;
    lc.retention.sink_tokens = 0;
    lc.retention.recency_tokens = 6;

    auto runChunked = [&](int chunk) {
        LayerEngine layer(lc, v_scales);
        MatrixI8 k_stage(1, 32);
        MatrixI8 v_stage(1, 32);
        MatrixI8 q_stage(heads, 32);
        MatrixF out(heads, 32);
        std::vector<MatrixF> outs;
        for (int base = 0; base < prompt; base += chunk) {
            const int n = std::min(chunk, prompt - base);
            for (int t = 0; t < n; t++) {
                lw.stageKv(base + t, k_stage, v_stage);
                layer.appendToken(k_stage, v_stage);
            }
            for (int t = 0; t < n; t++) {
                const int pos = base + t;
                lw.stageQueries(pos, q_stage);
                layer.prefillPosition(q_stage, pos, prompt,
                                      logit_scales, out);
                outs.push_back(out);
            }
        }
        return outs;
    };
    const auto whole = runChunked(prompt);
    const auto tiled = runChunked(5);
    ASSERT_EQ(whole.size(), tiled.size());
    for (int pos = 0; pos < prompt; pos++)
        for (int h = 0; h < heads; h++) {
            expectRowsBitEqual(
                whole[static_cast<std::size_t>(pos)].row(h),
                tiled[static_cast<std::size_t>(pos)].row(h),
                "windowed prefill");
            for (float v :
                 whole[static_cast<std::size_t>(pos)].row(h))
                EXPECT_TRUE(std::isfinite(v))
                    << "pos " << pos << " head " << h;
        }
}

TEST(Retention, SinkPlusRecencyVisitsBothRegions)
{
    const int head_dim = 32;
    WorkloadSpec spec;
    spec.seq_len = 33;
    spec.query_len = 1;
    spec.head_dim = head_dim;
    spec.seed = 9;
    const QuantizedHead full = quantizeHead(generateHead(spec), 8);

    KvCacheConfig kc;
    kc.head_dim = head_dim;
    kc.page_tokens = 8;
    kc.v_scale = full.v.params.scale;
    KvCache cache(kc);
    for (int t = 0; t < 33; t++)
        cache.appendToken(full.k.values.row(t), full.v.values.row(t));

    RetentionPolicy policy;
    policy.sink_tokens = 4;
    policy.recency_tokens = 8;
    DecodeEngine engine{PadeConfig{}, policy};
    std::vector<float> out(head_dim);
    const DecodeStep st = engine.step(cache, full.q.values.row(0),
                                      full.logit_scale, out);
    EXPECT_EQ(st.keys, 12); // 4 sinks + 8 recent
    auto planes = engine.lastPlanes();
    for (int j = 0; j < 33; j++) {
        const bool in_window = j < 4 || j >= 33 - 8;
        EXPECT_EQ(planes[static_cast<std::size_t>(j)] > 0, in_window)
            << "token " << j;
    }
}

// ---------------------------------------------------------------------
// Workload layer: GQA shapes.
// ---------------------------------------------------------------------

TEST(LayerWorkload, ShapesAndDeterminism)
{
    LayerSpec spec = smallSpec(8, 2, 32, 8, 10, 3, 5);
    spec.concentration = 1.2;
    const LayerWorkload a = generateLayerWorkload(spec);
    const LayerWorkload b = generateLayerWorkload(spec);
    ASSERT_EQ(a.groups.size(), 2u);
    EXPECT_EQ(a.spec.groupSize(), 4);
    for (int kv = 0; kv < 2; kv++) {
        const QuantizedHead &g =
            a.groups[static_cast<std::size_t>(kv)];
        EXPECT_EQ(g.k.values.rows(), 13);
        EXPECT_EQ(g.q.values.rows(), 4 * 13);
        EXPECT_EQ(g.k.values.cols(), 32);
        EXPECT_TRUE(g.k.values ==
                    b.groups[static_cast<std::size_t>(kv)].k.values);
        EXPECT_TRUE(g.q.values ==
                    b.groups[static_cast<std::size_t>(kv)].q.values);
    }
    // KV heads are distinct streams.
    EXPECT_FALSE(a.groups[0].k.values == a.groups[1].k.values);
    // Head-major query rows: head h, position p.
    EXPECT_EQ(a.queryRow(0, 0), 0);
    EXPECT_EQ(a.queryRow(1, 2), 13 + 2);
    EXPECT_EQ(a.queryRow(5, 2), 13 + 2); // second group, same slot
    EXPECT_EQ(&a.groupOf(5), &a.groups[1]);
}

TEST(LayerWorkload, WithModelAdoptsGqaGeometry)
{
    const ModelConfig m = llama3_8b();
    ASSERT_TRUE(m.isGqa());
    LayerSpec spec = smallSpec(1, 1, 16, 8, 4, 2, 1).withModel(m);
    EXPECT_EQ(spec.heads, m.heads);
    EXPECT_EQ(spec.kv_heads, m.kv_heads);
    EXPECT_EQ(spec.head_dim, m.head_dim);
    EXPECT_EQ(spec.prompt_len, 4);
    EXPECT_EQ(spec.decode_steps, 2);
}

// ---------------------------------------------------------------------
// Workspace plane-table reuse (the GQA batch-level seam in core/).
// ---------------------------------------------------------------------

TEST(PlaneWorkReuse, WorkspaceSkipsRebuildForSamePlanes)
{
    WorkloadSpec spec;
    spec.seq_len = 64;
    spec.query_len = 4;
    spec.head_dim = 32;
    spec.seed = 3;
    const QuantizedHead head = quantizeHead(generateHead(spec), 8);
    const QuantizedHead other = quantizeHead(generateHead(spec), 8);

    PadeWorkspace ws;
    const PadeResult fresh = padeAttention(head, {}, nullptr);
    const PadeResult first = padeAttention(head, {}, &ws);
    EXPECT_EQ(ws.plane_work_builds, 1u);
    const PadeResult second = padeAttention(head, {}, &ws);
    EXPECT_EQ(ws.plane_work_builds, 1u); // reused, not rebuilt

    // Reuse must be invisible in the numbers.
    for (int i = 0; i < first.out.rows(); i++)
        for (int d = 0; d < first.out.cols(); d++) {
            EXPECT_EQ(std::bit_cast<uint32_t>(first.out.at(i, d)),
                      std::bit_cast<uint32_t>(fresh.out.at(i, d)));
            EXPECT_EQ(std::bit_cast<uint32_t>(second.out.at(i, d)),
                      std::bit_cast<uint32_t>(fresh.out.at(i, d)));
        }
    expectStatsEqual(first.stats, fresh.stats);
    expectStatsEqual(second.stats, fresh.stats);

    // A different plane set rebuilds; different GSAT geometry too.
    padeAttention(other, {}, &ws);
    EXPECT_EQ(ws.plane_work_builds, 2u);
    PadeConfig other_gsat;
    other_gsat.subgroup = 16;
    padeAttention(other, other_gsat, &ws);
    EXPECT_EQ(ws.plane_work_builds, 3u);
}

TEST(PlaneWorkReuse, RevisionAdvancesOnAppend)
{
    BitPlaneSet planes(16, 8, 4);
    const uint64_t r0 = planes.revision();
    std::vector<int8_t> row(16, 3);
    planes.appendToken(row);
    EXPECT_NE(planes.revision(), r0);
    BitPlaneSet other(16, 8, 4);
    EXPECT_NE(other.revision(), planes.revision());
}

} // namespace
} // namespace pade

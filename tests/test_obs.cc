/**
 * @file
 * Telemetry subsystem tests (src/obs): metric registry semantics,
 * histogram bucket geometry, snapshot deltas and JSON export, trace
 * span recording / ring wrap / Chrome export — plus the two
 * system-level contracts PR 9 rides on: concurrent writers against a
 * concurrent snapshot/export reader (the TSan stress target), and
 * bit-identity of serving outputs with telemetry recording on vs off.
 *
 * Compile-mode note: in a PADE_TELEMETRY=OFF build the recording
 * paths are no-ops by design; tests asserting counters move are
 * skipped there (obs::kTelemetryEnabled), while the export-validity
 * and bit-identity tests run in both modes.
 */

#include <gtest/gtest.h>

#include <atomic>
#include <cstdio>
#include <string>
#include <thread>
#include <vector>

#include "obs/telemetry.h"
#include "obs/trace.h"
#include "runtime/thread_pool.h"
#include "serving/continuous_batcher.h"
#include "serving/layer_engine.h"
#include "workload/generator.h"

namespace pade {
namespace {

using obs::Histogram;
using obs::HistogramStat;
using obs::MetricsSnapshot;
using obs::Registry;

// ---------------------------------------------------------------------
// Counters, gauges, histograms.
// ---------------------------------------------------------------------

TEST(ObsCounter, ShardsSumOnRead)
{
    if (!obs::kTelemetryEnabled)
        GTEST_SKIP() << "built with PADE_TELEMETRY=OFF";
    obs::Counter &c = Registry::instance().counter("test.ctr_basic");
    const uint64_t before = c.value();
    c.add();
    c.add(41);
    EXPECT_EQ(c.value(), before + 42);
}

TEST(ObsCounter, ConcurrentAddsAreExact)
{
    if (!obs::kTelemetryEnabled)
        GTEST_SKIP() << "built with PADE_TELEMETRY=OFF";
    obs::Counter &c =
        Registry::instance().counter("test.ctr_concurrent");
    const uint64_t before = c.value();
    constexpr int kThreads = 8;
    constexpr uint64_t kAdds = 50000;
    std::vector<std::thread> threads;
    threads.reserve(kThreads);
    for (int t = 0; t < kThreads; t++)
        threads.emplace_back([&c] {
            for (uint64_t i = 0; i < kAdds; i++)
                c.add();
        });
    for (std::thread &t : threads)
        t.join();
    // Relaxed atomics lose no adds: the total is exact, not
    // approximate — the property that makes deltas trustworthy.
    EXPECT_EQ(c.value(), before + kThreads * kAdds);
}

TEST(ObsCounter, SameNameSameObject)
{
    obs::Counter &a = Registry::instance().counter("test.ctr_alias");
    obs::Counter &b = Registry::instance().counter("test.ctr_alias");
    obs::Counter &c = Registry::instance().counter("test.ctr_other");
    EXPECT_EQ(&a, &b);
    EXPECT_NE(&a, &c);
}

TEST(ObsGauge, LastWriteWins)
{
    if (!obs::kTelemetryEnabled)
        GTEST_SKIP() << "built with PADE_TELEMETRY=OFF";
    obs::Gauge &g = Registry::instance().gauge("test.gauge");
    g.set(3.0);
    g.set(7.5);
    EXPECT_DOUBLE_EQ(g.value(), 7.5);
}

TEST(ObsHistogram, BucketGeometry)
{
    // Bucket 0 is [0, 1); bucket b >= 1 is [2^(b-1), 2^b).
    EXPECT_EQ(Histogram::bucketOf(0.0), 0u);
    EXPECT_EQ(Histogram::bucketOf(0.99), 0u);
    EXPECT_EQ(Histogram::bucketOf(-5.0), 0u);
    EXPECT_EQ(Histogram::bucketOf(1.0), 1u);
    EXPECT_EQ(Histogram::bucketOf(1.5), 1u);
    EXPECT_EQ(Histogram::bucketOf(2.0), 2u);
    EXPECT_EQ(Histogram::bucketOf(3.9), 2u);
    EXPECT_EQ(Histogram::bucketOf(4.0), 3u);
    EXPECT_EQ(Histogram::bucketOf(1024.0), 11u);
    EXPECT_EQ(Histogram::bucketOf(1e30), Histogram::kBuckets - 1);
    EXPECT_DOUBLE_EQ(Histogram::bucketUpperBound(0), 1.0);
    EXPECT_DOUBLE_EQ(Histogram::bucketUpperBound(11), 2048.0);
}

TEST(ObsHistogram, ExactMomentsAndQuantizedPercentiles)
{
    if (!obs::kTelemetryEnabled)
        GTEST_SKIP() << "built with PADE_TELEMETRY=OFF";
    obs::Histogram &h =
        Registry::instance().histogram("test.hist_moments");
    for (int i = 1; i <= 100; i++)
        h.record(static_cast<double>(i));
    const MetricsSnapshot snap = Registry::instance().snapshot();
    const HistogramStat *stat = snap.histogram("test.hist_moments");
    ASSERT_NE(stat, nullptr);
    EXPECT_EQ(stat->count, 100u);
    EXPECT_DOUBLE_EQ(stat->sum, 5050.0);
    EXPECT_DOUBLE_EQ(stat->mean(), 50.5);
    EXPECT_DOUBLE_EQ(stat->max, 100.0);
    // Percentile estimates quantize to bucket upper bounds: the p50
    // sample (50) lives in bucket (32, 64], so the estimate is 64 —
    // an upper bound within 2x of the true nearest-rank value.
    EXPECT_DOUBLE_EQ(stat->percentile(0.50), 64.0);
    EXPECT_DOUBLE_EQ(stat->percentile(0.99), 128.0);
    EXPECT_GE(stat->percentile(0.50), 50.0);
    EXPECT_LE(stat->percentile(0.50), 2.0 * 50.0);
}

// ---------------------------------------------------------------------
// Snapshots: delta semantics and JSON export.
// ---------------------------------------------------------------------

TEST(ObsSnapshot, DeltaIsolatesOneRun)
{
    if (!obs::kTelemetryEnabled)
        GTEST_SKIP() << "built with PADE_TELEMETRY=OFF";
    obs::Counter &c = Registry::instance().counter("test.ctr_delta");
    obs::Histogram &h =
        Registry::instance().histogram("test.hist_delta");
    c.add(100);
    h.record(10.0);

    const MetricsSnapshot before = Registry::instance().snapshot();
    c.add(5);
    h.record(20.0);
    h.record(30.0);
    const MetricsSnapshot after = Registry::instance().snapshot();

    const MetricsSnapshot d = MetricsSnapshot::delta(before, after);
    EXPECT_EQ(d.counter("test.ctr_delta"), 5u);
    const HistogramStat *hd = d.histogram("test.hist_delta");
    ASSERT_NE(hd, nullptr);
    EXPECT_EQ(hd->count, 2u);
    EXPECT_DOUBLE_EQ(hd->sum, 50.0);
    // max is instantaneous (absolute over the histogram's lifetime).
    EXPECT_GE(hd->max, 30.0);
    EXPECT_EQ(d.counter("test.never_registered"), 0u);
}

TEST(ObsSnapshot, JsonIsWellFormed)
{
    Registry::instance().counter("test.ctr_json").add(3);
    Registry::instance().gauge("test.gauge_json").set(1.25);
    Registry::instance().histogram("test.hist_json").record(7.0);
    const std::string json = obs::statsSnapshotJson();
    ASSERT_FALSE(json.empty());
    EXPECT_EQ(json.front(), '{');
    EXPECT_EQ(json.back(), '}');
    EXPECT_NE(json.find("\"schema\":\"pade-metrics-v1\""),
              std::string::npos);
    EXPECT_NE(json.find("\"counters\""), std::string::npos);
    EXPECT_NE(json.find("\"gauges\""), std::string::npos);
    EXPECT_NE(json.find("\"histograms\""), std::string::npos);
    // Balanced braces — cheap structural sanity without a parser
    // (CI additionally runs python3 -m json.tool on the artifact).
    int depth = 0;
    for (const char ch : json) {
        depth += ch == '{';
        depth -= ch == '}';
        ASSERT_GE(depth, 0);
    }
    EXPECT_EQ(depth, 0);
    if (obs::kTelemetryEnabled) {
        EXPECT_NE(json.find("\"enabled\":true"), std::string::npos);
        EXPECT_NE(json.find("\"test.ctr_json\""), std::string::npos);
    } else {
        EXPECT_NE(json.find("\"enabled\":false"), std::string::npos);
    }
}

// ---------------------------------------------------------------------
// Trace spans.
// ---------------------------------------------------------------------

/** RAII guard: every trace test leaves tracing off and empty. */
struct TraceSandbox
{
    TraceSandbox()
    {
        obs::setTraceEnabled(false);
        obs::clearTrace();
    }
    ~TraceSandbox()
    {
        obs::setTraceEnabled(false);
        obs::setTraceCapacity(16384); // restore the default
        obs::clearTrace();
    }
};

TEST(ObsTrace, SpanRecordsCompleteEvent)
{
    if (!obs::kTelemetryEnabled)
        GTEST_SKIP() << "built with PADE_TELEMETRY=OFF";
    TraceSandbox sandbox;
    obs::setTraceEnabled(true);
    {
        const obs::ScopedSpan span("test.span",
                                   {{"layer", 3}, {"pos", 17}});
    }
    obs::traceInstant("test.instant", {{"request", 9}});
    obs::setTraceEnabled(false);

    EXPECT_EQ(obs::traceStats().recorded, 2u);
    const std::string json = obs::chromeTraceJson();
    EXPECT_NE(json.find("\"name\":\"test.span\""), std::string::npos);
    EXPECT_NE(json.find("\"ph\":\"X\""), std::string::npos);
    EXPECT_NE(json.find("\"layer\":3"), std::string::npos);
    EXPECT_NE(json.find("\"pos\":17"), std::string::npos);
    EXPECT_NE(json.find("\"name\":\"test.instant\""),
              std::string::npos);
    // Instant events carry a scope so Perfetto renders them.
    EXPECT_NE(json.find("\"s\":\"t\""), std::string::npos);
}

TEST(ObsTrace, DisabledRecordsNothing)
{
    TraceSandbox sandbox;
    {
        const obs::ScopedSpan span("test.dead_span");
    }
    obs::traceInstant("test.dead_instant");
    EXPECT_EQ(obs::traceStats().recorded, 0u);
    // The exporter still emits a valid (empty) document.
    const std::string json = obs::chromeTraceJson();
    EXPECT_NE(json.find("\"traceEvents\":["), std::string::npos);
    EXPECT_EQ(json.find("test.dead_span"), std::string::npos);
}

TEST(ObsTrace, RingWrapsAndCountsDrops)
{
    if (!obs::kTelemetryEnabled)
        GTEST_SKIP() << "built with PADE_TELEMETRY=OFF";
    TraceSandbox sandbox;
    obs::setTraceCapacity(16);
    obs::setTraceEnabled(true);
    for (int i = 0; i < 40; i++)
        obs::traceInstant("test.wrap");
    obs::setTraceEnabled(false);
    const obs::TraceStats stats = obs::traceStats();
    EXPECT_EQ(stats.recorded, 40u);
    EXPECT_EQ(stats.dropped, 24u); // oldest overwritten, not lost count
}

TEST(ObsTrace, WritesParseableFile)
{
    if (!obs::kTelemetryEnabled)
        GTEST_SKIP() << "built with PADE_TELEMETRY=OFF";
    TraceSandbox sandbox;
    obs::setTraceEnabled(true);
    {
        const obs::ScopedSpan span("test.file_span");
    }
    obs::setTraceEnabled(false);

    const std::string path =
        testing::TempDir() + "pade_test_trace.json";
    ASSERT_TRUE(obs::writeChromeTrace(path));
    std::FILE *f = std::fopen(path.c_str(), "rb");
    ASSERT_NE(f, nullptr);
    std::string content;
    char buf[4096];
    std::size_t got = 0;
    while ((got = std::fread(buf, 1, sizeof buf, f)) > 0)
        content.append(buf, got);
    std::fclose(f);
    std::remove(path.c_str());
    EXPECT_NE(content.find("\"traceEvents\""), std::string::npos);
    EXPECT_NE(content.find("test.file_span"), std::string::npos);
    EXPECT_NE(content.find("\"displayTimeUnit\":\"ms\""),
              std::string::npos);
}

// ---------------------------------------------------------------------
// Concurrency: writers vs snapshot/export reader (TSan target).
// ---------------------------------------------------------------------

class ObsStress : public testing::TestWithParam<int>
{
};

TEST_P(ObsStress, WritersAgainstConcurrentReader)
{
    const int writers = GetParam();
    TraceSandbox sandbox;
    obs::setTraceEnabled(true);

    obs::Counter &ctr =
        Registry::instance().counter("test.stress_ctr");
    obs::Histogram &hist =
        Registry::instance().histogram("test.stress_hist");
    const uint64_t ctr_before = ctr.value();

    constexpr int kIters = 4000;
    std::atomic<bool> stop{false};
    std::thread reader([&stop] {
        // Hammer every aggregate path while writers run: snapshots,
        // JSON serialization, trace export, stats. TSan watches.
        while (!stop.load(std::memory_order_relaxed)) {
            const MetricsSnapshot snap =
                Registry::instance().snapshot();
            (void)snap.toJson();
            (void)obs::chromeTraceJson();
            (void)obs::traceStats();
        }
    });

    std::vector<std::thread> threads;
    threads.reserve(static_cast<std::size_t>(writers));
    for (int t = 0; t < writers; t++)
        threads.emplace_back([&ctr, &hist, t] {
            for (int i = 0; i < kIters; i++) {
                ctr.add();
                hist.record(static_cast<double>(i % 97));
                const obs::ScopedSpan span("test.stress_span",
                                           {{"writer", t}});
                if (i % 16 == 0)
                    obs::traceInstant("test.stress_instant");
            }
        });
    for (std::thread &t : threads)
        t.join();
    stop.store(true, std::memory_order_relaxed);
    reader.join();
    obs::setTraceEnabled(false);

    if (obs::kTelemetryEnabled) {
        EXPECT_EQ(ctr.value(),
                  ctr_before +
                      static_cast<uint64_t>(writers) * kIters);
        EXPECT_GT(obs::traceStats().recorded, 0u);
    }
}

INSTANTIATE_TEST_SUITE_P(ThreadCounts, ObsStress,
                         testing::Values(2, 8));

// ---------------------------------------------------------------------
// Bit-identity: recording must never perturb computation.
// ---------------------------------------------------------------------

TEST(ObsBitIdentity, BatcherChecksumsUnchangedByTracing)
{
    TraceSandbox sandbox;
    TraceSpec ts;
    ts.num_requests = 6;
    ts.rate_per_s = 500.0;
    ts.prompt_min = 24;
    ts.prompt_max = 48;
    ts.decode_min = 2;
    ts.decode_max = 6;
    ts.seed = 99;
    const std::vector<ServingRequest> trace = poissonArrivalTrace(ts);

    BatcherOptions opt;
    opt.threads = 2;
    opt.max_active = 3;
    opt.prefill_chunk = 16;
    opt.layers = 2;
    opt.heads = 2;
    opt.kv_heads = 1;
    opt.head_dim = 32;
    opt.fixed_round_ms = 1.0;

    const ServingReport plain = ContinuousBatcher(opt).run(trace);
    opt.trace_file =
        testing::TempDir() + "pade_test_identity_trace.json";
    const ServingReport traced = ContinuousBatcher(opt).run(trace);
    std::remove(opt.trace_file.c_str());

    EXPECT_EQ(plain.checksum, traced.checksum);
    EXPECT_EQ(plain.prefill_checksum, traced.prefill_checksum);
    EXPECT_EQ(plain.tokens_prefilled, traced.tokens_prefilled);
    EXPECT_EQ(plain.tokens_decoded, traced.tokens_decoded);
    ASSERT_EQ(plain.sessions.size(), traced.sessions.size());
    for (std::size_t i = 0; i < plain.sessions.size(); i++) {
        EXPECT_EQ(plain.sessions[i].checksum,
                  traced.sessions[i].checksum);
        EXPECT_EQ(plain.sessions[i].prefill_checksum,
                  traced.sessions[i].prefill_checksum);
    }
    // The traced run carries a telemetry blob either way (all zeros
    // when compiled out), and it is always structurally valid.
    EXPECT_NE(traced.telemetry.find(
                  "\"schema\":\"pade-serving-telemetry-v1\""),
              std::string::npos);
    EXPECT_NE(
        traced.telemetry.find("\"pipeline_bubble_ratio\""),
        std::string::npos);
    EXPECT_NE(traced.telemetry.find("\"kv_bytes_per_token\""),
              std::string::npos);
}

TEST(ObsBitIdentity, LayerOutputsAndPruneStatsUnchangedByTracing)
{
    TraceSandbox sandbox;
    LayerSpec spec;
    spec.heads = 4;
    spec.kv_heads = 2;
    spec.head_dim = 32;
    spec.prompt_len = 40;
    spec.decode_steps = 8;
    spec.bits = 8;
    spec.seed = 7;
    const LayerWorkload lw = generateLayerWorkload(spec);

    LayerEngineConfig lc;
    lc.heads = spec.heads;
    lc.kv_heads = spec.kv_heads;
    lc.head_dim = spec.head_dim;
    lc.bits = spec.bits;

    const auto serve = [&](bool traced, std::vector<float> &flat,
                           PruneStats &stats) {
        obs::setTraceEnabled(traced);
        std::vector<float> v_scales;
        std::vector<float> logit_scales;
        for (const QuantizedHead &g : lw.groups) {
            v_scales.push_back(g.v.params.scale);
            logit_scales.push_back(g.logit_scale);
        }
        LayerEngine layer(lc, v_scales);
        MatrixI8 k(lc.kv_heads, lc.head_dim);
        MatrixI8 v(lc.kv_heads, lc.head_dim);
        MatrixI8 q(lc.heads, lc.head_dim);
        MatrixF out(lc.heads, lc.head_dim);
        for (int pos = 0; pos < spec.positions(); pos++) {
            lw.stageKv(pos, k, v);
            layer.appendToken(k, v);
            if (pos < spec.prompt_len)
                continue;
            lw.stageQueries(pos, q);
            layer.decode(q, logit_scales, out, nullptr);
            for (int r = 0; r < out.rows(); r++)
                for (const float x : out.row(r))
                    flat.push_back(x);
        }
        stats = layer.stats();
        obs::setTraceEnabled(false);
    };

    std::vector<float> out_plain;
    std::vector<float> out_traced;
    PruneStats st_plain;
    PruneStats st_traced;
    serve(false, out_plain, st_plain);
    serve(true, out_traced, st_traced);

    ASSERT_EQ(out_plain.size(), out_traced.size());
    for (std::size_t i = 0; i < out_plain.size(); i++)
        ASSERT_EQ(out_plain[i], out_traced[i]) << "at " << i;
    EXPECT_EQ(st_plain.planes_processed, st_traced.planes_processed);
    EXPECT_EQ(st_plain.planes_total, st_traced.planes_total);
    EXPECT_EQ(st_plain.keys_retained, st_traced.keys_retained);
    EXPECT_EQ(st_plain.keys_total, st_traced.keys_total);
    EXPECT_EQ(st_plain.ops_bs, st_traced.ops_bs);
    EXPECT_EQ(st_plain.ops_naive, st_traced.ops_naive);
    EXPECT_EQ(st_plain.max_updates, st_traced.max_updates);
    EXPECT_EQ(st_plain.rescale_ops, st_traced.rescale_ops);
    EXPECT_EQ(st_plain.threshold_updates,
              st_traced.threshold_updates);
}

// ---------------------------------------------------------------------
// Wiring: a serving run moves the subsystem counters it claims to.
// ---------------------------------------------------------------------

TEST(ObsWiring, ServingRunPopulatesSubsystemCounters)
{
    if (!obs::kTelemetryEnabled)
        GTEST_SKIP() << "built with PADE_TELEMETRY=OFF";
    TraceSandbox sandbox;
    TraceSpec ts;
    ts.num_requests = 4;
    ts.rate_per_s = 500.0;
    ts.prompt_min = 64;
    ts.prompt_max = 96;
    ts.decode_min = 2;
    ts.decode_max = 4;
    ts.prefix_groups = 1;
    ts.prefix_tokens = 64;
    ts.seed = 3;
    const std::vector<ServingRequest> trace = poissonArrivalTrace(ts);

    BatcherOptions opt;
    opt.threads = 2;
    opt.max_active = 2;
    opt.prefill_chunk = 32;
    opt.layers = 2;
    opt.heads = 2;
    opt.kv_heads = 1;
    opt.head_dim = 32;
    opt.page_tokens = 32;
    opt.prefix_cache = true;
    opt.fixed_round_ms = 1.0;

    const MetricsSnapshot before = Registry::instance().snapshot();
    const ServingReport report = ContinuousBatcher(opt).run(trace);
    const MetricsSnapshot d = MetricsSnapshot::delta(
        before, Registry::instance().snapshot());

    EXPECT_GT(d.counter("kv.tokens_appended"), 0u);
    EXPECT_GT(d.counter("kv.bytes_appended"), 0u);
    EXPECT_GT(d.counter("kv.bytes_shared"), 0u); // prefix adoption
    EXPECT_GT(d.counter("decode.steps"), 0u);
    EXPECT_GT(d.counter("decode.keys_scanned"), 0u);
    EXPECT_GT(d.counter("decode.planes_total"), 0u);
    EXPECT_GE(d.counter("decode.planes_total"),
              d.counter("decode.planes_consumed"));
    EXPECT_GT(d.counter("model.rounds"), 0u);
    EXPECT_GT(d.counter("model.unit_busy_us"), 0u);
    EXPECT_GT(d.counter("model.round_capacity_us"), 0u);
    EXPECT_GT(d.counter("prefix.lookups"), 0u);
    // The co-scheduled batcher clamps wave fan-out to the hardware
    // width: on a single-core host every wave legitimately runs
    // inline on the scheduler thread and the run may submit no pool
    // tasks at all.
    if (ThreadPool::hardwareThreads() > 1)
        EXPECT_GT(d.counter("pool.tasks"), 0u);
    const HistogramStat *lat = d.histogram("serving.latency_us");
    ASSERT_NE(lat, nullptr);
    EXPECT_EQ(lat->count, 4u);
    EXPECT_GE(report.pipeline_bubble_ratio, 0.0);
    EXPECT_LE(report.pipeline_bubble_ratio, 1.0);
    EXPECT_GT(report.kv_bytes_per_token, 0.0);
}

} // namespace
} // namespace pade

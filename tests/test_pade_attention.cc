/**
 * @file
 * Integration tests for the functional PADE sparse attention (BSF +
 * BUI-GF + ISTA).
 */

#include <gtest/gtest.h>

#include "attention/metrics.h"
#include "attention/online_softmax.h"
#include "attention/reference.h"
#include "core/pade_attention.h"
#include "runtime/thread_pool.h"
#include "workload/generator.h"

namespace pade {
namespace {

WorkloadSpec
smallSpec(uint64_t seed = 1)
{
    WorkloadSpec spec;
    spec.seq_len = 256;
    spec.query_len = 4;
    spec.head_dim = 64;
    spec.concentration = 1.25;
    spec.locality = 0.6;
    spec.seed = seed;
    return spec;
}

TEST(ScanOrder, PermutationProperty)
{
    for (bool ht : {false, true}) {
        const auto order = istaScanOrder(100, 16, ht);
        ASSERT_EQ(order.size(), 100u);
        std::vector<bool> seen(100, false);
        for (int j : order) {
            ASSERT_GE(j, 0);
            ASSERT_LT(j, 100);
            EXPECT_FALSE(seen[j]);
            seen[j] = true;
        }
    }
}

TEST(ScanOrder, NaturalWhenDisabled)
{
    const auto order = istaScanOrder(32, 8, false);
    for (int j = 0; j < 32; j++)
        EXPECT_EQ(order[j], j);
}

TEST(ScanOrder, HeadTailVisitsLastTileSecond)
{
    const auto order = istaScanOrder(64, 16, true);
    // First tile: keys 0..15; second visited tile: keys 48..63.
    EXPECT_EQ(order[0], 0);
    EXPECT_EQ(order[16], 48);
}

TEST(PadeAttention, GuardDisabledKeepsEverything)
{
    const QuantizedHead head = quantizeHead(generateHead(smallSpec()));
    PadeConfig cfg;
    cfg.guard_enabled = false;
    const PadeResult res = padeAttention(head, cfg);
    EXPECT_EQ(res.stats.keys_retained, res.stats.keys_total);
    EXPECT_EQ(res.stats.planes_processed, res.stats.planes_total);
    EXPECT_DOUBLE_EQ(prunedFraction(res.keep), 0.0);
}

TEST(PadeAttention, GuardDisabledMatchesDenseInt8)
{
    // With no pruning, PADE output must equal dense attention computed
    // over the same quantized operands.
    const AttentionHead head = generateHead(smallSpec(2));
    const QuantizedHead qh = quantizeHead(head);
    PadeConfig cfg;
    cfg.guard_enabled = false;
    const PadeResult res = padeAttention(qh, cfg);

    const MatrixF qf = dequantize(qh.q);
    const MatrixF kf = dequantize(qh.k);
    const MatrixF vf = dequantize(qh.v);
    const MatrixF ref = denseAttention(qf, kf, vf, head.scale);
    EXPECT_LT(relativeError(res.out, ref), 1e-4);
}

TEST(PadeAttention, OutputMatchesMaskedOracle)
{
    // Retained scores are exact, so the output must equal masked
    // attention under the produced keep mask.
    const AttentionHead head = generateHead(smallSpec(3));
    const QuantizedHead qh = quantizeHead(head);
    const PadeResult res = padeAttention(qh);

    const MatrixF qf = dequantize(qh.q);
    const MatrixF kf = dequantize(qh.k);
    const MatrixF vf = dequantize(qh.v);
    const MatrixF ref = maskedAttention(qf, kf, vf, head.scale,
                                        res.keep);
    EXPECT_LT(relativeError(res.out, ref), 1e-4);
}

TEST(PadeAttention, AtLeastOneKeyRetainedPerRow)
{
    // The argmax key can never be pruned (its upper bound stays above
    // any threshold derived from lower bounds).
    for (uint64_t seed = 1; seed <= 8; seed++) {
        const QuantizedHead head =
            quantizeHead(generateHead(smallSpec(seed)));
        PadeConfig cfg;
        cfg.alpha = 0.0; // most aggressive
        const PadeResult res = padeAttention(head, cfg);
        for (const auto &row : res.retained)
            EXPECT_GE(row.size(), 1u);
    }
}

TEST(PadeAttention, PrunesOnSpikyWorkload)
{
    const QuantizedHead head = quantizeHead(generateHead(smallSpec(4)));
    const PadeResult res = padeAttention(head);
    EXPECT_LT(res.stats.keepRate(), 0.9);
    EXPECT_GT(res.stats.planeReduction(), 0.2);
}

TEST(PadeAttention, RetainedMassHighAtDefaults)
{
    // Paper defaults (radius 5, alpha 0.55) land near the "1% loss"
    // aggressive point on continuum workloads.
    const AttentionHead head = generateHead(smallSpec(5));
    const QuantizedHead qh = quantizeHead(head);
    const PadeResult res = padeAttention(qh);
    const MatrixF logits = attentionLogits(head.q, head.k, head.scale);
    EXPECT_GT(retainedMass(logits, res.keep), 0.85);
}

TEST(PadeAttention, WideGuardReachesLosslessMass)
{
    // A wider guard band (margin = alpha * radius = 10 logits)
    // realizes the paper's "standard" ~0%-loss operating point. Use a
    // longer sequence: exploitable sparsity grows with length.
    WorkloadSpec spec = smallSpec(5);
    spec.seq_len = 1024;
    const AttentionHead head = generateHead(spec);
    const QuantizedHead qh = quantizeHead(head);
    PadeConfig cfg;
    cfg.alpha = 1.0;
    cfg.radius = 10.0;
    const PadeResult res = padeAttention(qh, cfg);
    const MatrixF logits = attentionLogits(head.q, head.k, head.scale);
    EXPECT_GT(retainedMass(logits, res.keep), 0.995);
    // And it still prunes a meaningful fraction of the pair space.
    EXPECT_LT(res.stats.keepRate(), 0.8);
}

TEST(PadeAttention, AlphaMonotonicity)
{
    const QuantizedHead head = quantizeHead(generateHead(smallSpec(6)));
    uint64_t prev_retained = 0;
    for (double alpha : {0.0, 0.3, 0.6, 1.0}) {
        PadeConfig cfg;
        cfg.alpha = alpha;
        const PadeResult res = padeAttention(head, cfg);
        EXPECT_GE(res.stats.keys_retained, prev_retained)
            << "alpha=" << alpha;
        prev_retained = res.stats.keys_retained;
    }
}

TEST(PadeAttention, StatsConsistency)
{
    const QuantizedHead head = quantizeHead(generateHead(smallSpec(7)));
    const PadeResult res = padeAttention(head);

    uint64_t kept = 0;
    uint64_t planes = 0;
    for (int i = 0; i < res.keep.rows(); i++) {
        for (int j = 0; j < res.keep.cols(); j++) {
            kept += res.keep.at(i, j);
            planes += res.planes.at(i, j);
            if (res.keep.at(i, j)) {
                EXPECT_EQ(res.planes.at(i, j), 8);
            }
            if (res.planes.at(i, j) == 0) {
                EXPECT_EQ(res.keep.at(i, j), 0);
            }
        }
    }
    EXPECT_EQ(kept, res.stats.keys_retained);
    EXPECT_EQ(planes, res.stats.planes_processed);
    EXPECT_EQ(res.stats.keys_total,
              static_cast<uint64_t>(res.keep.rows()) *
              res.keep.cols());
    EXPECT_LE(res.stats.ops_bs, res.stats.ops_naive +
              res.stats.planes_processed);
}

TEST(PadeAttention, CausalMasksFutureKeys)
{
    WorkloadSpec spec = smallSpec(8);
    spec.query_len = 4;
    const QuantizedHead head = quantizeHead(generateHead(spec));
    PadeConfig cfg;
    cfg.causal = true;
    const PadeResult res = padeAttention(head, cfg);
    const int s = spec.seq_len;
    const int p = spec.query_len;
    for (int i = 0; i < p; i++) {
        const int qpos = s - p + i;
        for (int j = qpos + 1; j < s; j++) {
            EXPECT_EQ(res.keep.at(i, j), 0);
            EXPECT_EQ(res.planes.at(i, j), 0);
        }
    }
    // keys_total counts only the visible keys.
    uint64_t visible = 0;
    for (int i = 0; i < p; i++)
        visible += static_cast<uint64_t>(s - p + i + 1);
    EXPECT_EQ(res.stats.keys_total, visible);
}

TEST(PadeAttention, HeadTailReducesMaxUpdates)
{
    // On locality-heavy workloads the interleaved order should not do
    // more max updates than natural order (paper Fig. 10).
    WorkloadSpec spec = smallSpec(9);
    spec.locality = 0.9;
    spec.seq_len = 512;
    const QuantizedHead head = quantizeHead(generateHead(spec));

    PadeConfig natural;
    natural.head_tail = false;
    PadeConfig interleaved;
    interleaved.head_tail = true;
    const PadeResult a = padeAttention(head, natural);
    const PadeResult b = padeAttention(head, interleaved);
    EXPECT_LE(b.stats.max_updates, a.stats.max_updates);
}

TEST(PadeAttention, BothScanOrdersAccurate)
{
    // The scan order changes how the threshold evolves (head-tail sees
    // strong sink/recent tokens first), so the keep masks may differ —
    // but both must remain faithful to the dense reference.
    const AttentionHead head = generateHead(smallSpec(10));
    const QuantizedHead qh = quantizeHead(head);
    const MatrixF ref = denseAttention(head.q, head.k, head.v,
                                       head.scale);
    for (bool ht : {false, true}) {
        PadeConfig cfg;
        cfg.head_tail = ht;
        cfg.alpha = 1.0;
        cfg.radius = 10.0; // standard (lossless-class) guard band
        const PadeResult res = padeAttention(qh, cfg);
        EXPECT_LT(relativeError(res.out, ref), 0.08) << "ht=" << ht;
    }
}

/** Expect two padeAttention results to agree on every observable. */
void
expectBitIdentical(const PadeResult &a, const PadeResult &b,
                   const char *what)
{
    EXPECT_TRUE(a.out == b.out) << what;
    EXPECT_TRUE(a.keep == b.keep) << what;
    EXPECT_TRUE(a.planes == b.planes) << what;
    EXPECT_EQ(a.retained, b.retained) << what;
    EXPECT_EQ(a.stats.planes_processed, b.stats.planes_processed)
        << what;
    EXPECT_EQ(a.stats.keys_retained, b.stats.keys_retained) << what;
    EXPECT_EQ(a.stats.ops_bs, b.stats.ops_bs) << what;
    EXPECT_EQ(a.stats.ops_naive, b.stats.ops_naive) << what;
    EXPECT_EQ(a.stats.max_updates, b.stats.max_updates) << what;
    EXPECT_EQ(a.stats.rescale_ops, b.stats.rescale_ops) << what;
    EXPECT_EQ(a.stats.threshold_updates, b.stats.threshold_updates)
        << what;
}

TEST(PadeAttention, KernelDispatchBitIdentical)
{
    // All three QK kernels compute the same integer plane deltas, so
    // every observable — output, masks, per-pair plane counts,
    // statistics — must be bit-identical under every dispatch mode,
    // across bit-widths and guard settings. (kSimd falls back to
    // kPopcount off-AVX2, which keeps this test meaningful there.)
    for (int bits : {2, 4, 8}) {
        for (bool guard : {true, false}) {
            const AttentionHead head = generateHead(smallSpec(21));
            const QuantizedHead qh = quantizeHead(head, bits);
            PadeConfig sc_cfg;
            sc_cfg.qk_kernel = QkKernel::kScalar;
            sc_cfg.guard_enabled = guard;
            PadeConfig pop_cfg = sc_cfg;
            pop_cfg.qk_kernel = QkKernel::kPopcount;
            PadeConfig simd_cfg = sc_cfg;
            simd_cfg.qk_kernel = QkKernel::kSimd;

            const PadeResult oracle = padeAttention(qh, sc_cfg);
            expectBitIdentical(padeAttention(qh, pop_cfg), oracle,
                               "popcount vs scalar");
            expectBitIdentical(padeAttention(qh, simd_cfg), oracle,
                               "simd vs scalar");
        }
    }
}

TEST(PadeAttention, KernelDispatchBitIdenticalOnTailShapes)
{
    // head_dims off the SIMD width (65, 127) leave masked remainders
    // in the vector kernels, and tiny seq/query counts (1, 3)
    // degenerate the tile loop; all three kernels must still agree
    // bit for bit.
    struct Shape
    {
        int seq, queries, head_dim;
    };
    for (const auto [seq, queries, head_dim] :
         {Shape{1, 1, 65}, Shape{3, 2, 127}, Shape{256, 3, 65},
          Shape{257, 4, 127}, Shape{129, 1, 96}, Shape{64, 2, 300}}) {
        WorkloadSpec spec = smallSpec(37);
        spec.seq_len = seq;
        spec.query_len = queries;
        spec.head_dim = head_dim;
        const QuantizedHead qh = quantizeHead(generateHead(spec));
        PadeConfig sc_cfg;
        sc_cfg.qk_kernel = QkKernel::kScalar;
        PadeConfig pop_cfg;
        pop_cfg.qk_kernel = QkKernel::kPopcount;
        PadeConfig simd_cfg;
        simd_cfg.qk_kernel = QkKernel::kSimd;

        const PadeResult oracle = padeAttention(qh, sc_cfg);
        expectBitIdentical(padeAttention(qh, pop_cfg), oracle,
                           "popcount vs scalar (tail)");
        expectBitIdentical(padeAttention(qh, simd_cfg), oracle,
                           "simd vs scalar (tail)");
    }
}

TEST(PadeAttention, WorkspaceReuseBitIdentical)
{
    // One workspace carried across heads of different shapes must
    // never change results relative to fresh per-call state.
    PadeWorkspace ws;
    for (uint64_t seed : {31, 32, 33}) {
        WorkloadSpec spec = smallSpec(seed);
        spec.seq_len = seed == 32 ? 512 : 256; // vary shapes
        spec.head_dim = seed == 33 ? 128 : 64;
        const QuantizedHead head = quantizeHead(generateHead(spec));
        const PadeResult with_ws = padeAttention(head, {}, &ws);
        const PadeResult fresh = padeAttention(head, {});
        EXPECT_TRUE(with_ws.out == fresh.out);
        EXPECT_TRUE(with_ws.keep == fresh.keep);
        EXPECT_EQ(with_ws.stats.planes_processed,
                  fresh.stats.planes_processed);
        EXPECT_EQ(with_ws.stats.max_updates, fresh.stats.max_updates);
    }
}

TEST(PadeAttention, PooledPlaneWorkBitIdentical)
{
    // The eager PlaneWork table may be built across a thread pool;
    // results and work statistics must not depend on it.
    ThreadPool pool(2);
    PadeWorkspace pooled;
    pooled.pool = &pool;
    const QuantizedHead head = quantizeHead(generateHead(smallSpec(34)));
    const PadeResult a = padeAttention(head, {}, &pooled);
    const PadeResult b = padeAttention(head, {});
    EXPECT_TRUE(a.out == b.out);
    EXPECT_EQ(a.stats.ops_bs, b.stats.ops_bs);
    EXPECT_EQ(a.stats.ops_naive, b.stats.ops_naive);
}

TEST(PadeAttention, BsOpsNeverExceedNaive)
{
    const QuantizedHead head =
        quantizeHead(generateHead(smallSpec(11)));
    const PadeResult res = padeAttention(head);
    EXPECT_LE(res.stats.ops_bs, res.stats.ops_naive);
}

TEST(PadeAttention, Int4KeysSupported)
{
    const AttentionHead head = generateHead(smallSpec(12));
    const QuantizedHead qh = quantizeHead(head, 4);
    EXPECT_EQ(qh.k_planes.numPlanes(), 4);
    const PadeResult res = padeAttention(qh);
    EXPECT_GE(res.stats.keys_retained, 1u);
    // Exactness contract holds at 4 bits too: the output equals masked
    // attention over the INT4-dequantized operands.
    const MatrixF ref = maskedAttention(dequantize(qh.q),
                                        dequantize(qh.k),
                                        dequantize(qh.v), head.scale,
                                        res.keep);
    EXPECT_LT(relativeError(res.out, ref), 1e-4);
}

/** Alpha sweep property: retained mass decreases monotonically-ish. */
class AlphaSweepTest : public ::testing::TestWithParam<double>
{
};

TEST_P(AlphaSweepTest, MassAboveFloor)
{
    const double alpha = GetParam();
    const AttentionHead head = generateHead(smallSpec(13));
    const QuantizedHead qh = quantizeHead(head);
    PadeConfig cfg;
    cfg.alpha = alpha;
    const PadeResult res = padeAttention(qh, cfg);
    const MatrixF logits = attentionLogits(head.q, head.k, head.scale);
    // Even aggressive pruning keeps the argmax, so mass stays
    // meaningful; conservative alpha keeps nearly everything.
    const double mass = retainedMass(logits, res.keep);
    EXPECT_GT(mass, 0.5);
    if (alpha >= 0.8) {
        EXPECT_GT(mass, 0.95);
    }
}

INSTANTIATE_TEST_SUITE_P(Alphas, AlphaSweepTest,
                         ::testing::Values(0.2, 0.4, 0.6, 0.8, 1.0));

} // namespace
} // namespace pade

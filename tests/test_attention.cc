/**
 * @file
 * Tests for the attention substrate: references, online softmax,
 * head-tail ordering, metrics.
 */

#include <gtest/gtest.h>

#include <cmath>

#include "attention/metrics.h"
#include "attention/online_softmax.h"
#include "attention/reference.h"
#include "common/rng.h"

namespace pade {
namespace {

MatrixF
randomMatrix(int r, int c, uint64_t seed)
{
    Rng rng(seed);
    MatrixF m(r, c);
    for (int i = 0; i < r; i++)
        for (int j = 0; j < c; j++)
            m.at(i, j) = static_cast<float>(rng.gaussian());
    return m;
}

TEST(Softmax, RowSumsToOne)
{
    std::vector<float> row = {1.0f, 2.0f, 3.0f, -1.0f};
    softmaxRow(row);
    float sum = 0.0f;
    for (float v : row)
        sum += v;
    EXPECT_NEAR(sum, 1.0f, 1e-6f);
}

TEST(Softmax, LargeLogitsStable)
{
    std::vector<float> row = {1000.0f, 999.0f};
    softmaxRow(row);
    EXPECT_NEAR(row[0], 1.0f / (1.0f + std::exp(-1.0f)), 1e-5f);
    EXPECT_FALSE(std::isnan(row[0]));
}

TEST(Softmax, MonotoneInLogits)
{
    std::vector<float> row = {0.0f, 1.0f, 2.0f};
    softmaxRow(row);
    EXPECT_LT(row[0], row[1]);
    EXPECT_LT(row[1], row[2]);
}

TEST(DenseAttention, UniformForEqualLogits)
{
    // All-zero queries produce uniform attention: output = mean of V.
    MatrixF q(1, 4);
    MatrixF k = randomMatrix(5, 4, 1);
    MatrixF v = randomMatrix(5, 3, 2);
    const MatrixF o = denseAttention(q, k, v, 0.5f);
    for (int d = 0; d < 3; d++) {
        float m = 0.0f;
        for (int j = 0; j < 5; j++)
            m += v.at(j, d);
        EXPECT_NEAR(o.at(0, d), m / 5.0f, 1e-5f);
    }
}

TEST(DenseAttention, OneHotSelectsValue)
{
    // A key perfectly aligned with the query dominates.
    MatrixF q(1, 2, {50.0f, 0.0f});
    MatrixF k(2, 2, {1.0f, 0.0f, -1.0f, 0.0f});
    MatrixF v(2, 2, {1.0f, 2.0f, 3.0f, 4.0f});
    const MatrixF o = denseAttention(q, k, v, 1.0f);
    EXPECT_NEAR(o.at(0, 0), 1.0f, 1e-4f);
    EXPECT_NEAR(o.at(0, 1), 2.0f, 1e-4f);
}

TEST(DenseAttention, CausalMasksFuture)
{
    // With two queries at the last two positions of three keys, query 0
    // (position 1) must ignore key 2.
    MatrixF q = randomMatrix(2, 4, 3);
    MatrixF k = randomMatrix(3, 4, 4);
    MatrixF v = randomMatrix(3, 4, 5);
    const MatrixF causal = denseAttention(q, k, v, 0.5f, true);

    // Reference: query 0 over keys {0,1} only.
    MatrixF k2(2, 4);
    MatrixF v2(2, 4);
    for (int j = 0; j < 2; j++) {
        for (int d = 0; d < 4; d++) {
            k2.at(j, d) = k.at(j, d);
            v2.at(j, d) = v.at(j, d);
        }
    }
    MatrixF q0(1, 4);
    for (int d = 0; d < 4; d++)
        q0.at(0, d) = q.at(0, d);
    const MatrixF ref = denseAttention(q0, k2, v2, 0.5f);
    for (int d = 0; d < 4; d++)
        EXPECT_NEAR(causal.at(0, d), ref.at(0, d), 1e-5f);
}

TEST(Int8Attention, CloseToFp32)
{
    MatrixF q = randomMatrix(4, 32, 6);
    MatrixF k = randomMatrix(64, 32, 7);
    MatrixF v = randomMatrix(64, 32, 8);
    const float scale = 1.0f / std::sqrt(32.0f);
    const MatrixF fp = denseAttention(q, k, v, scale);
    const MatrixF i8 = int8Attention(q, k, v, scale);
    EXPECT_LT(relativeError(i8, fp), 0.05);
}

TEST(MaskedAttention, AllKeepEqualsDense)
{
    MatrixF q = randomMatrix(3, 16, 9);
    MatrixF k = randomMatrix(20, 16, 10);
    MatrixF v = randomMatrix(20, 16, 11);
    Matrix<uint8_t> keep(3, 20);
    keep.fill(1);
    const float scale = 0.25f;
    EXPECT_LT(relativeError(maskedAttention(q, k, v, scale, keep),
                            denseAttention(q, k, v, scale)),
              1e-6);
}

TEST(FlashAttention, MatchesDense)
{
    MatrixF q = randomMatrix(4, 16, 12);
    MatrixF k = randomMatrix(50, 16, 13);
    MatrixF v = randomMatrix(50, 16, 14);
    const float scale = 0.25f;
    const MatrixF dense = denseAttention(q, k, v, scale);
    for (int tile : {1, 7, 16, 64}) {
        const MatrixF flash = flashAttention(q, k, v, scale, tile);
        EXPECT_LT(relativeError(flash, dense), 1e-5)
            << "tile=" << tile;
    }
}

TEST(OnlineSoftmax, SingleTileMatchesSoftmax)
{
    OnlineSoftmaxRow acc(2);
    std::vector<float> scores = {1.0f, 2.0f};
    std::vector<float> v0 = {1.0f, 0.0f};
    std::vector<float> v1 = {0.0f, 1.0f};
    acc.update(scores, {std::span<const float>(v0),
                        std::span<const float>(v1)});
    auto out = acc.finalize();
    std::vector<float> probs = scores;
    softmaxRow(probs);
    EXPECT_NEAR(out[0], probs[0], 1e-6f);
    EXPECT_NEAR(out[1], probs[1], 1e-6f);
}

TEST(OnlineSoftmax, MaxUpdateCounting)
{
    OnlineSoftmaxRow inc(1);
    std::vector<float> v = {1.0f};
    auto vs = std::vector<std::span<const float>>{
        std::span<const float>(v)};
    // Ascending scores: every tile after the first raises the max.
    for (float s : {1.0f, 2.0f, 3.0f, 4.0f}) {
        std::vector<float> sc = {s};
        inc.update(sc, vs);
    }
    EXPECT_EQ(inc.maxUpdates(), 3u);

    OnlineSoftmaxRow dec(1);
    // Descending: the first tile sets the max, never updated again.
    for (float s : {4.0f, 3.0f, 2.0f, 1.0f}) {
        std::vector<float> sc = {s};
        dec.update(sc, vs);
    }
    EXPECT_EQ(dec.maxUpdates(), 0u);
    EXPECT_EQ(dec.rescaleOps(), 0u);
}

TEST(OnlineSoftmax, OrderInvariantResult)
{
    Rng rng(15);
    std::vector<float> scores(32);
    std::vector<std::vector<float>> values(32, std::vector<float>(4));
    for (int i = 0; i < 32; i++) {
        scores[i] = static_cast<float>(rng.gaussian(0.0, 3.0));
        for (auto &x : values[i])
            x = static_cast<float>(rng.gaussian());
    }

    auto run = [&](const std::vector<int> &order) {
        OnlineSoftmaxRow acc(4);
        for (int idx : order) {
            std::vector<float> sc = {scores[idx]};
            std::vector<std::span<const float>> vv = {
                std::span<const float>(values[idx])};
            acc.update(sc, vv);
        }
        return acc.finalize();
    };

    std::vector<int> fwd(32);
    std::vector<int> rev(32);
    for (int i = 0; i < 32; i++) {
        fwd[i] = i;
        rev[i] = 31 - i;
    }
    auto a = run(fwd);
    auto b = run(rev);
    for (int d = 0; d < 4; d++)
        EXPECT_NEAR(a[d], b[d], 1e-5f);
}

TEST(OnlineSoftmax, NoAllocOverloadsMatchSpanApi)
{
    // The allocation-free overloads (matrix + id list, matrix +
    // contiguous first row, finalizeInto) must be bit-identical to
    // the original vector-of-spans API.
    Rng rng(16);
    const MatrixF v = randomMatrix(12, 5, 17);
    std::vector<float> scores(12);
    for (auto &s : scores)
        s = static_cast<float>(rng.gaussian(0.0, 2.0));
    std::vector<int> ids = {3, 7, 1, 11, 0, 5, 9, 2, 10, 4, 8, 6};

    OnlineSoftmaxRow a(5);
    OnlineSoftmaxRow b(5);
    for (size_t base = 0; base < ids.size(); base += 4) {
        std::vector<float> sc;
        std::vector<std::span<const float>> vv;
        for (size_t t = base; t < base + 4; t++) {
            sc.push_back(scores[t]);
            vv.push_back(v.row(ids[t]));
        }
        a.update(sc, vv);
        b.update(std::span<const float>(scores).subspan(base, 4), v,
                 std::span<const int>(ids).subspan(base, 4));
    }
    EXPECT_EQ(a.maxUpdates(), b.maxUpdates());
    EXPECT_EQ(a.rescaleOps(), b.rescaleOps());
    const auto fa = a.finalize();
    std::vector<float> fb(5);
    b.finalizeInto(fb);
    for (int d = 0; d < 5; d++)
        EXPECT_EQ(fa[d], fb[d]);

    // Contiguous-row overload against explicit consecutive ids.
    OnlineSoftmaxRow c(5);
    OnlineSoftmaxRow d(5);
    std::vector<int> seq_ids = {4, 5, 6, 7};
    c.update(std::span<const float>(scores).first(4), v,
             std::span<const int>(seq_ids));
    d.update(std::span<const float>(scores).first(4), v, 4);
    EXPECT_EQ(c.finalize(), d.finalize());

    // reset() must restore a pristine accumulator.
    d.reset(5);
    EXPECT_EQ(d.maxUpdates(), 0u);
    EXPECT_EQ(d.denominator(), 0.0f);
    d.update(std::span<const float>(scores).first(4), v, 4);
    EXPECT_EQ(c.finalize(), d.finalize());
}

TEST(OnlineSoftmax, ResetReuseAcrossRowsOfDifferentLengths)
{
    // The workspace-reuse contract the serving decode engine leans
    // on: one accumulator, reset() across rows of different dims and
    // retained-set sizes (shrinking then growing), must match a fresh
    // accumulator bit for bit — including its counters.
    Rng rng(31);
    const MatrixF v = randomMatrix(32, 8, 23);
    OnlineSoftmaxRow reused(8);

    struct Row
    {
        int dim;
        int keys;
    };
    const Row rows[] = {{5, 12}, {3, 1}, {8, 32}, {5, 7}, {1, 3}};
    for (const Row &row : rows) {
        std::vector<float> scores(static_cast<size_t>(row.keys));
        for (auto &s : scores)
            s = static_cast<float>(rng.gaussian(0.0, 3.0));

        reused.reset(row.dim);
        EXPECT_EQ(reused.maxUpdates(), 0u);
        EXPECT_EQ(reused.rescaleOps(), 0u);
        EXPECT_EQ(reused.denominator(), 0.0f);

        OnlineSoftmaxRow fresh(row.dim);
        for (int base = 0; base < row.keys; base += 4) {
            const int n = std::min(4, row.keys - base);
            std::vector<float> sc;
            std::vector<std::span<const float>> vv;
            for (int t = base; t < base + n; t++) {
                sc.push_back(scores[static_cast<size_t>(t)]);
                vv.push_back(v.row(t % v.rows()).first(
                    static_cast<size_t>(row.dim)));
            }
            reused.update(sc, vv);
            fresh.update(sc, vv);
        }
        EXPECT_EQ(reused.maxUpdates(), fresh.maxUpdates());
        EXPECT_EQ(reused.rescaleOps(), fresh.rescaleOps());
        std::vector<float> a(static_cast<size_t>(row.dim));
        std::vector<float> b(static_cast<size_t>(row.dim));
        reused.finalizeInto(a);
        fresh.finalizeInto(b);
        for (int d = 0; d < row.dim; d++)
            EXPECT_EQ(a[static_cast<size_t>(d)],
                      b[static_cast<size_t>(d)])
                << "dim " << row.dim << " keys " << row.keys;
    }
}

TEST(HeadTail, OrderIsPermutation)
{
    for (int n : {1, 2, 3, 8, 15}) {
        auto order = headTailOrder(n);
        ASSERT_EQ(static_cast<int>(order.size()), n);
        std::vector<bool> seen(n, false);
        for (int t : order) {
            ASSERT_GE(t, 0);
            ASSERT_LT(t, n);
            EXPECT_FALSE(seen[t]);
            seen[t] = true;
        }
    }
}

TEST(HeadTail, InterleavesEnds)
{
    auto order = headTailOrder(6);
    std::vector<int> expect = {0, 5, 1, 4, 2, 3};
    EXPECT_EQ(order, expect);
}

TEST(HeadTail, FewerMaxUpdatesOnLocalityPattern)
{
    // Sink (first) and recent tokens carry the highest scores; visiting
    // them first means later tiles rarely raise the max.
    const int n = 64;
    std::vector<float> scores(n, 0.0f);
    scores[0] = 10.0f;
    for (int i = n - 8; i < n; i++)
        scores[i] = 8.0f;
    std::vector<float> v = {1.0f};

    auto count = [&](const std::vector<int> &tile_order) {
        OnlineSoftmaxRow acc(1);
        for (int t : tile_order) {
            std::vector<float> sc;
            std::vector<std::span<const float>> vv;
            for (int i = t * 8; i < (t + 1) * 8; i++) {
                sc.push_back(scores[i]);
                vv.push_back(std::span<const float>(v));
            }
            acc.update(sc, vv);
        }
        return acc.maxUpdates();
    };

    std::vector<int> natural = {0, 1, 2, 3, 4, 5, 6, 7};
    EXPECT_LE(count(headTailOrder(8)), count(natural));
}

TEST(Metrics, RelativeErrorZeroForIdentical)
{
    const MatrixF m = randomMatrix(4, 4, 16);
    EXPECT_DOUBLE_EQ(relativeError(m, m), 0.0);
}

TEST(Metrics, CosineOneForScaled)
{
    MatrixF a = randomMatrix(3, 8, 17);
    MatrixF b = a;
    for (int i = 0; i < 3; i++)
        for (int j = 0; j < 8; j++)
            b.at(i, j) *= 2.5f;
    EXPECT_NEAR(cosineSimilarity(a, b), 1.0, 1e-9);
}

TEST(Metrics, RetainedMassFullMask)
{
    const MatrixF logits = randomMatrix(4, 10, 18);
    Matrix<uint8_t> keep(4, 10);
    keep.fill(1);
    EXPECT_NEAR(retainedMass(logits, keep), 1.0, 1e-6);
}

TEST(Metrics, RetainedMassDropsWithPruning)
{
    MatrixF logits(1, 3, {10.0f, 0.0f, 0.0f});
    Matrix<uint8_t> keep(1, 3);
    keep.at(0, 0) = 1;
    // Keeping only the dominant logit retains almost all mass.
    EXPECT_GT(retainedMass(logits, keep), 0.99);
    Matrix<uint8_t> keep2(1, 3);
    keep2.at(0, 1) = 1;
    EXPECT_LT(retainedMass(logits, keep2), 0.01);
}

TEST(Metrics, TopkRecall)
{
    MatrixF logits(1, 4, {4.0f, 3.0f, 2.0f, 1.0f});
    Matrix<uint8_t> keep(1, 4);
    keep.at(0, 0) = 1;
    keep.at(0, 2) = 1;
    EXPECT_DOUBLE_EQ(topkRecall(logits, keep, 2), 0.5);
    EXPECT_DOUBLE_EQ(topkRecall(logits, keep, 1), 1.0);
}

TEST(Metrics, PrunedFraction)
{
    Matrix<uint8_t> keep(2, 4);
    keep.at(0, 0) = 1;
    keep.at(1, 0) = 1;
    EXPECT_DOUBLE_EQ(prunedFraction(keep), 0.75);
}

TEST(Metrics, TaskScoreMapping)
{
    EXPECT_DOUBLE_EQ(taskScoreFromMass(1.0), 1.0);
    EXPECT_GT(taskScoreFromMass(0.999), 0.999);
    EXPECT_GT(taskScoreFromMass(0.99), taskScoreFromMass(0.9));
    EXPECT_GT(taskScoreFromMass(0.9), taskScoreFromMass(0.5));
}

} // namespace
} // namespace pade

/**
 * @file
 * Tests for the workload driver: model scaling, calibration, decode.
 */

#include <gtest/gtest.h>

#include "arch/driver.h"

namespace pade {
namespace {

SimRequest
request()
{
    SimRequest req{llama2_7b(), dsMmlu()};
    req.max_sim_seq = 512;
    return req;
}

TEST(Driver, BlockAndTotalConsistent)
{
    const SimOutcome o = simulatePade(ArchConfig{}, request());
    EXPECT_GT(o.scale_factor, 1.0);
    EXPECT_NEAR(o.total.time_ns, o.block.time_ns * o.scale_factor,
                1e-6 * o.total.time_ns);
    // Energy is at most linear scaling; cross-block retained-KV
    // caching discounts part of the DRAM term.
    EXPECT_LE(o.total.energy.total(),
              o.block.energy.total() * o.scale_factor * (1 + 1e-9));
    EXPECT_GT(o.total.energy.total(),
              0.3 * o.block.energy.total() * o.scale_factor);
}

TEST(Driver, CrossBlockCachingReducesDram)
{
    const SimOutcome o = simulatePade(ArchConfig{}, request());
    EXPECT_LT(static_cast<double>(o.total.dram_bytes),
              static_cast<double>(o.block.dram_bytes) *
              o.scale_factor);
}

TEST(Driver, ScaleFactorFormula)
{
    SimRequest req = request();
    // Llama2: 32 layers, 32 KV heads, group 1, 512 queries / 8 per
    // block = 64 blocks, x0.5 causal, sim_seq == seq_len.
    const double f = modelScaleFactor(req, 512, 8);
    EXPECT_DOUBLE_EQ(f, 0.5 * 32.0 * 32.0 * 64.0);
}

TEST(Driver, GqaSharesKvStreams)
{
    SimRequest mha = request();
    SimRequest gqa = request();
    gqa.model = llama3_8b(); // 32 heads, 8 KV heads
    const double f_mha = modelScaleFactor(mha, 512, 8);
    const double f_gqa = modelScaleFactor(gqa, 512, 8);
    // Same query count, but GQA runs 4x fewer KV streams with 4x the
    // blocks each => identical block count overall.
    EXPECT_DOUBLE_EQ(f_mha, f_gqa);
}

TEST(Driver, DecodeScaling)
{
    SimRequest req = request();
    req.decode = true;
    req.decode_steps = 10;
    const double f = modelScaleFactor(req, 512, 1);
    EXPECT_DOUBLE_EQ(f, 10.0 * 32.0 * 32.0);
}

TEST(Driver, LongSequencesCapped)
{
    SimRequest req{llama2_7b(), dsDolly()};
    req.max_sim_seq = 2048;
    const SimOutcome o = simulatePade(ArchConfig{}, req);
    EXPECT_EQ(o.simulated_seq, 2048);
    // The cap is made up by a larger scale factor.
    EXPECT_GT(o.scale_factor,
              modelScaleFactor(req, req.dataset.seq_len, 8) *
              0.9 * 2048.0 / req.dataset.seq_len);
}

TEST(Driver, CalibrationReachesTarget)
{
    SimRequest req = request();
    req.radius = 10.0;
    const double alpha = calibrateAlpha(req, 0.99);
    req.alpha = alpha;
    const SimOutcome o = simulatePade(ArchConfig{}, req);
    EXPECT_GE(o.retained_mass, 0.985);
}

TEST(Driver, CalibrationMonotone)
{
    SimRequest req = request();
    req.radius = 10.0;
    const double a_loose = calibrateAlpha(req, 0.95);
    const double a_tight = calibrateAlpha(req, 0.995);
    EXPECT_LE(a_loose, a_tight);
}

TEST(Driver, QatReducesSparsity)
{
    SimRequest normal = request();
    SimRequest qat = request();
    qat.qat = true;
    const SimOutcome on = simulatePade(ArchConfig{}, normal);
    const SimOutcome oq = simulatePade(ArchConfig{}, qat);
    EXPECT_GT(oq.block.prune.keepRate(), on.block.prune.keepRate());
}

TEST(Driver, Int4FewerPlanes)
{
    SimRequest req = request();
    req.bits = 4;
    const SimOutcome o = simulatePade(ArchConfig{}, req);
    EXPECT_LE(o.block.prune.avgPlanesPerKey(), 4.0);
}

} // namespace
} // namespace pade

/**
 * @file
 * Tests for the HBM2 model, SRAM buffers, and the bit-plane layouts.
 */

#include <gtest/gtest.h>

#include "memory/hbm.h"
#include "memory/layout.h"
#include "memory/sram.h"

namespace pade {
namespace {

TEST(Hbm, SequentialReadsHitRowBuffer)
{
    HbmModel hbm;
    double t = 0.0;
    // Stay inside one channel-interleave granule and one row.
    auto a0 = hbm.read(0, 32, t);
    EXPECT_FALSE(a0.row_hit);
    auto a1 = hbm.read(32, 32, a0.complete_ns);
    EXPECT_TRUE(a1.row_hit);
    auto a2 = hbm.read(64, 32, a1.complete_ns);
    EXPECT_TRUE(a2.row_hit);
}

TEST(Hbm, RowMissAfterConflict)
{
    HbmModel hbm;
    const auto &cfg = hbm.config();
    auto a0 = hbm.read(0, 32, 0.0);
    // Same channel+bank, different row.
    const uint64_t far = static_cast<uint64_t>(cfg.row_bytes) *
        cfg.channels * cfg.banks_per_channel *
        (cfg.channel_interleave_bytes / cfg.row_bytes + 1) * 64;
    auto a1 = hbm.read(far - far % cfg.channel_interleave_bytes, 32,
                       a0.complete_ns);
    // Either a different bank (hit state empty -> miss) or same bank
    // different row (miss): first touch of any row is a miss.
    EXPECT_FALSE(a1.row_hit);
}

TEST(Hbm, LatencyOrdering)
{
    HbmModel hbm;
    const auto miss = hbm.read(0, 32, 0.0);
    const auto hit = hbm.read(32, 32, miss.complete_ns);
    const double miss_lat = miss.complete_ns - miss.issue_ns;
    const double hit_lat = hit.complete_ns - hit.issue_ns;
    EXPECT_GT(miss_lat, hit_lat);
    EXPECT_NEAR(miss_lat - hit_lat,
                hbm.config().t_rc_ns - hbm.config().t_cl_ns, 1e-9);
}

TEST(Hbm, BurstRounding)
{
    HbmModel hbm;
    hbm.read(0, 8, 0.0); // 8 useful bytes -> one 32-byte burst
    EXPECT_EQ(hbm.busBytes(), 32u);
    EXPECT_EQ(hbm.usefulBytes(), 8u);
    hbm.read(1024, 33, 100.0); // 33 bytes -> two bursts
    EXPECT_EQ(hbm.busBytes(), 32u + 64u);
}

TEST(Hbm, ChannelsServeInParallel)
{
    HbmModel hbm;
    const int granule = hbm.config().channel_interleave_bytes;
    // Two requests to different channels both start at t=0.
    auto a = hbm.read(0, 32, 0.0);
    auto b = hbm.read(granule, 32, 0.0);
    EXPECT_DOUBLE_EQ(a.issue_ns, 0.0);
    EXPECT_DOUBLE_EQ(b.issue_ns, 0.0);
    // Same channel back-to-back queues behind the first request's
    // occupancy (transfer + activation gap for the row miss).
    auto c = hbm.read(32, 32, 0.0);
    const double burst_ns = hbm.config().burst_bytes /
        hbm.config().channel_gbps;
    EXPECT_GE(c.issue_ns, burst_ns + hbm.config().t_activate_ns -
              1e-9);
}

TEST(Hbm, EnergyTracksBusBytes)
{
    HbmModel hbm;
    hbm.read(0, 32, 0.0);
    EXPECT_DOUBLE_EQ(hbm.energyPj(),
                     32.0 * 8.0 * hbm.config().energy_pj_per_bit);
}

TEST(Hbm, BandwidthUtilizationBounded)
{
    HbmModel hbm;
    double t = 0.0;
    for (int i = 0; i < 100; i++)
        t = hbm.read(static_cast<uint64_t>(i) * 32, 32, t).complete_ns;
    const double u = hbm.bandwidthUtilization(t);
    EXPECT_GT(u, 0.0);
    EXPECT_LE(u, 1.0);
}

TEST(Hbm, ResetClearsCounters)
{
    HbmModel hbm;
    hbm.read(0, 32, 0.0);
    hbm.reset();
    EXPECT_EQ(hbm.busBytes(), 0u);
    EXPECT_EQ(hbm.usefulBytes(), 0u);
}

TEST(Hbm, RowHitRate)
{
    HbmModel hbm;
    double t = 0.0;
    for (int i = 0; i < 8; i++)
        t = hbm.read(static_cast<uint64_t>(i) * 32, 32, t).complete_ns;
    // 1 miss + 7 hits within one 256B granule... 256/32 = 8 accesses
    // in row 0 of channel 0.
    EXPECT_NEAR(hbm.rowHitRate(), 7.0 / 8.0, 1e-9);
}

TEST(Sram, CountsAndEnergy)
{
    SramBuffer buf("kv", 320 * 1024);
    buf.read(64);
    buf.write(32);
    EXPECT_EQ(buf.bytesRead(), 64u);
    EXPECT_EQ(buf.bytesWritten(), 32u);
    EXPECT_GT(buf.energyPj(), 0.0);
    buf.reset();
    EXPECT_EQ(buf.bytesRead(), 0u);
}

TEST(Sram, EnergyScalesWithCapacity)
{
    SramBuffer small("s", 32 * 1024);
    SramBuffer big("b", 512 * 1024);
    EXPECT_GT(big.readEnergyPerByte(), small.readEnergyPerByte());
}

TEST(Sram, AreaScalesLinearly)
{
    SramBuffer a("a", 32 * 1024);
    SramBuffer b("b", 64 * 1024);
    EXPECT_NEAR(b.areaMm2(), 2.0 * a.areaMm2(), 1e-9);
}

TEST(Layout, BitPlaneInterleavedIsPlaneMajor)
{
    KAddressMap map(KLayout::BitPlaneInterleaved, 100, 8, 8);
    // Consecutive keys of the same plane are adjacent.
    EXPECT_EQ(map.address(1, 0) - map.address(0, 0), 8u);
    // Planes are far apart (plane stride = seq_len * plane_bytes).
    EXPECT_EQ(map.address(0, 1) - map.address(0, 0), 800u);
}

TEST(Layout, ValueMajorIsKeyMajor)
{
    KAddressMap map(KLayout::ValueMajor, 100, 8, 8);
    EXPECT_EQ(map.address(0, 1) - map.address(0, 0), 8u);
    EXPECT_EQ(map.address(1, 0) - map.address(0, 0), 64u);
}

TEST(Layout, RegionBytesIdentical)
{
    KAddressMap a(KLayout::BitPlaneInterleaved, 64, 8, 8);
    KAddressMap b(KLayout::ValueMajor, 64, 8, 8);
    EXPECT_EQ(a.regionBytes(), b.regionBytes());
    EXPECT_EQ(a.regionBytes(), 64u * 8u * 8u);
}

TEST(Layout, AddressesUniquePerPlaneKey)
{
    KAddressMap map(KLayout::BitPlaneInterleaved, 16, 8, 8);
    std::set<uint64_t> seen;
    for (int j = 0; j < 16; j++)
        for (int r = 0; r < 8; r++)
            EXPECT_TRUE(seen.insert(map.address(j, r)).second);
}

TEST(Layout, StreamingPlaneHitsRowsMoreThanValueMajor)
{
    // Reading the MSB plane of many keys: the plane-major layout should
    // produce a higher row-hit rate than value-major.
    const int s = 512;
    const int plane_bytes = 8;
    KAddressMap plane_major(KLayout::BitPlaneInterleaved, s,
                            plane_bytes, 8);
    KAddressMap value_major(KLayout::ValueMajor, s, plane_bytes, 8);

    auto run = [&](const KAddressMap &map) {
        HbmModel hbm;
        double t = 0.0;
        for (int j = 0; j < s; j++)
            t = hbm.read(map.address(j, 0), plane_bytes, t).complete_ns;
        return hbm.rowHitRate();
    };
    EXPECT_GT(run(plane_major), run(value_major));
}

TEST(Layout, RowMajorAddress)
{
    EXPECT_EQ(rowMajorAddress(1000, 3, 128), 1000u + 384u);
}

} // namespace
} // namespace pade

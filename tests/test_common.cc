/**
 * @file
 * Unit tests for the common substrate: RNG, stats, table, CLI, math.
 */

#include <gtest/gtest.h>

#include "common/cli.h"
#include "common/math_util.h"
#include "common/rng.h"
#include "common/stats.h"
#include "common/table.h"

namespace pade {
namespace {

TEST(Rng, DeterministicForSameSeed)
{
    Rng a(42);
    Rng b(42);
    for (int i = 0; i < 1000; i++)
        EXPECT_EQ(a.next(), b.next());
}

TEST(Rng, DifferentSeedsDiverge)
{
    Rng a(1);
    Rng b(2);
    int same = 0;
    for (int i = 0; i < 100; i++)
        if (a.next() == b.next())
            same++;
    EXPECT_LT(same, 2);
}

TEST(Rng, UniformInUnitInterval)
{
    Rng rng(7);
    for (int i = 0; i < 10000; i++) {
        const double u = rng.uniform();
        EXPECT_GE(u, 0.0);
        EXPECT_LT(u, 1.0);
    }
}

TEST(Rng, UniformRangeRespectsBounds)
{
    Rng rng(7);
    for (int i = 0; i < 1000; i++) {
        const double u = rng.uniform(-3.0, 5.0);
        EXPECT_GE(u, -3.0);
        EXPECT_LT(u, 5.0);
    }
}

TEST(Rng, GaussianMoments)
{
    Rng rng(123);
    const int n = 200000;
    double sum = 0.0;
    double sq = 0.0;
    for (int i = 0; i < n; i++) {
        const double g = rng.gaussian();
        sum += g;
        sq += g * g;
    }
    EXPECT_NEAR(sum / n, 0.0, 0.02);
    EXPECT_NEAR(sq / n, 1.0, 0.03);
}

TEST(Rng, BelowStaysBelow)
{
    Rng rng(5);
    for (int i = 0; i < 1000; i++)
        EXPECT_LT(rng.below(17), 17u);
}

TEST(Rng, RangeInclusive)
{
    Rng rng(5);
    bool saw_lo = false;
    bool saw_hi = false;
    for (int i = 0; i < 2000; i++) {
        const int64_t v = rng.range(-2, 2);
        EXPECT_GE(v, -2);
        EXPECT_LE(v, 2);
        saw_lo |= v == -2;
        saw_hi |= v == 2;
    }
    EXPECT_TRUE(saw_lo);
    EXPECT_TRUE(saw_hi);
}

TEST(Rng, BernoulliRate)
{
    Rng rng(9);
    int hits = 0;
    const int n = 50000;
    for (int i = 0; i < n; i++)
        hits += rng.bernoulli(0.3) ? 1 : 0;
    EXPECT_NEAR(static_cast<double>(hits) / n, 0.3, 0.01);
}

TEST(MathUtil, CeilDiv)
{
    EXPECT_EQ(ceilDiv(0, 4), 0);
    EXPECT_EQ(ceilDiv(1, 4), 1);
    EXPECT_EQ(ceilDiv(4, 4), 1);
    EXPECT_EQ(ceilDiv(5, 4), 2);
}

TEST(MathUtil, RoundUp)
{
    EXPECT_EQ(roundUp(0, 8), 0);
    EXPECT_EQ(roundUp(1, 8), 8);
    EXPECT_EQ(roundUp(8, 8), 8);
    EXPECT_EQ(roundUp(9, 8), 16);
}

TEST(MathUtil, SaturateInt8)
{
    EXPECT_EQ(saturateInt8(300.0f), 127);
    EXPECT_EQ(saturateInt8(-300.0f), -128);
    EXPECT_EQ(saturateInt8(1.4f), 1);
    EXPECT_EQ(saturateInt8(-1.6f), -2);
}

TEST(MathUtil, Pow2Helpers)
{
    EXPECT_TRUE(isPow2(1));
    EXPECT_TRUE(isPow2(64));
    EXPECT_FALSE(isPow2(0));
    EXPECT_FALSE(isPow2(12));
    EXPECT_EQ(log2Exact(64), 6);
}

TEST(MathUtil, GeoMean)
{
    EXPECT_DOUBLE_EQ(geoMean({}), 0.0);
    EXPECT_NEAR(geoMean({2.0, 8.0}), 4.0, 1e-12);
    EXPECT_NEAR(geoMean({1.0, 1.0, 1.0}), 1.0, 1e-12);
}

TEST(MathUtil, MeanOfVector)
{
    EXPECT_DOUBLE_EQ(mean({}), 0.0);
    EXPECT_DOUBLE_EQ(mean({1.0, 2.0, 3.0}), 2.0);
}

TEST(Stats, ScalarAccumulates)
{
    StatGroup g("g");
    g.scalar("x") += 2.0;
    g.scalar("x") += 3.0;
    g.scalar("y")++;
    EXPECT_DOUBLE_EQ(g.get("x"), 5.0);
    EXPECT_DOUBLE_EQ(g.get("y"), 1.0);
    EXPECT_DOUBLE_EQ(g.get("missing"), 0.0);
    EXPECT_TRUE(g.has("x"));
    EXPECT_FALSE(g.has("missing"));
}

TEST(Stats, DistributionMoments)
{
    StatGroup g("g");
    auto &d = g.distribution("d");
    for (double v : {1.0, 2.0, 3.0, 4.0})
        d.sample(v);
    EXPECT_EQ(d.count(), 4u);
    EXPECT_DOUBLE_EQ(d.min(), 1.0);
    EXPECT_DOUBLE_EQ(d.max(), 4.0);
    EXPECT_DOUBLE_EQ(d.mean(), 2.5);
    EXPECT_NEAR(d.stddev(), std::sqrt(1.25), 1e-12);
}

TEST(Stats, MergeSumsScalars)
{
    StatGroup a("a");
    StatGroup b("b");
    a.scalar("x") += 1.0;
    b.scalar("x") += 2.0;
    b.scalar("z") += 4.0;
    a.mergeFrom(b);
    EXPECT_DOUBLE_EQ(a.get("x"), 3.0);
    EXPECT_DOUBLE_EQ(a.get("z"), 4.0);
}

TEST(Stats, ResetClears)
{
    StatGroup g("g");
    g.scalar("x") += 1.0;
    g.distribution("d").sample(1.0);
    g.reset();
    EXPECT_DOUBLE_EQ(g.get("x"), 0.0);
    EXPECT_EQ(g.distribution("d").count(), 0u);
}

TEST(Table, RendersAlignedColumns)
{
    Table t("caption");
    t.header({"name", "value"});
    t.row({"a", "1"});
    t.row({"long-name", "2"});
    const std::string s = t.render();
    EXPECT_NE(s.find("caption"), std::string::npos);
    EXPECT_NE(s.find("long-name"), std::string::npos);
    EXPECT_NE(s.find("----"), std::string::npos);
}

TEST(Table, Formatters)
{
    EXPECT_EQ(Table::num(1.23456, 2), "1.23");
    EXPECT_EQ(Table::mult(2.5, 1), "2.5x");
    EXPECT_EQ(Table::pct(0.123, 1), "12.3%");
}

TEST(Cli, ParsesFlagsAndPositional)
{
    // Positionals come before flags: a bare "--flag" would otherwise
    // greedily bind the next token as its value ("--name value" form).
    const char *argv[] = {"prog", "pos1", "--alpha=0.5", "--seq",
                          "2048", "--flag"};
    Cli cli(6, const_cast<char **>(argv));
    EXPECT_DOUBLE_EQ(cli.getDouble("alpha", 0.0), 0.5);
    EXPECT_EQ(cli.getInt("seq", 0), 2048);
    EXPECT_TRUE(cli.getBool("flag"));
    EXPECT_FALSE(cli.getBool("other"));
    ASSERT_EQ(cli.positional().size(), 1u);
    EXPECT_EQ(cli.positional()[0], "pos1");
}

TEST(Cli, DefaultsWhenAbsent)
{
    const char *argv[] = {"prog"};
    Cli cli(1, const_cast<char **>(argv));
    EXPECT_EQ(cli.get("name", "def"), "def");
    EXPECT_EQ(cli.getInt("n", 7), 7);
    EXPECT_FALSE(cli.has("n"));
}

TEST(Cli, BoolFalseString)
{
    const char *argv[] = {"prog", "--flag=false"};
    Cli cli(2, const_cast<char **>(argv));
    EXPECT_FALSE(cli.getBool("flag", true));
}

} // namespace
} // namespace pade
